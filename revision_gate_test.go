package repro

import (
	"os"
	"testing"

	"repro/internal/experiments"
)

// The revision gate pins the version-diff engine's evaluation story:
// across seeded regression chains the diff must rank the true culprit
// edit first (ISSUE floor: >= 90%), the CI gate must catch the
// regression hop at the same rate while staying silent on clean chains,
// and the delta-fed analysis must demonstrably reuse work (shared
// corpus fraction, Step-1 revisit hit rate). Opt-in like the other
// gates and enforced in CI:
//
//	REVISION_GATE=1 go test -run TestRevisionGate .
const revisionGateSeed = 2020

func TestRevisionGate(t *testing.T) {
	if os.Getenv("REVISION_GATE") == "" {
		t.Skip("set REVISION_GATE=1 to run the version-diff regression gate")
	}
	res, err := experiments.RunRevisions(revisionGateSeed)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*experiments.RevisionsResult)
	if r.RegressionChains == 0 || r.CleanChains == 0 {
		t.Fatalf("degenerate sweep: %d regression chains, %d clean chains", r.RegressionChains, r.CleanChains)
	}

	if acc := r.DetectionAccuracy(); acc < 0.9 {
		t.Errorf("culprit detection accuracy %.2f (%d/%d), want >= 0.90",
			acc, r.Detected, r.RegressionChains)
	}
	if rate := float64(r.GateCaught) / float64(r.RegressionChains); rate < 0.9 {
		t.Errorf("gate caught %.2f of regressions (%d/%d), want >= 0.90",
			rate, r.GateCaught, r.RegressionChains)
	}
	if r.FalseTrips != 0 {
		t.Errorf("gate false-tripped %d/%d clean hops, want 0 (the gate presumes a healthy baseline)",
			r.FalseTrips, r.CleanHops)
	}

	// Cache reuse: the chain analyzer must actually be delta-fed, not
	// silently re-analyzing each version from scratch.
	if r.MeanShared < 0.5 {
		t.Errorf("mean shared corpus fraction %.2f, want >= 0.50", r.MeanShared)
	}
	if r.RevisitChains == 0 {
		t.Fatal("no chain's revisit made any Step-1 cache lookups")
	}
	if r.MeanRevisitRate < 0.9 {
		t.Errorf("mean revisit Step-1 hit rate %.2f over %d chains, want >= 0.90",
			r.MeanRevisitRate, r.RevisitChains)
	}
}
