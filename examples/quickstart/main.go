// Quickstart: the minimal end-to-end EnergyDx pipeline.
//
//  1. Pick an app with a known abnormal-battery-drain (ABD) bug.
//  2. Simulate a fleet of users running the instrumented app; a fraction
//     of them hit the interaction sequence that triggers the ABD.
//  3. Run the 5-step manifestation analysis over the collected traces.
//  4. Print the ranked events and the code-reduction metric.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Tinfoil (Table III app 18): tapping the newsfeed menu starts a
	// refresh loop that keeps syncing after the app is backgrounded.
	app, err := apps.ByAppID("tinfoil")
	if err != nil {
		return err
	}

	// Collect traces from 20 simulated volunteers; 20% of them trigger
	// the bug during their session.
	cfg := workload.DefaultConfig(app, 42)
	cfg.Users = 20
	cfg.ImpactedFraction = 0.2
	corpus, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("collected %d trace bundles (%.0f%% of users impacted)\n\n",
		len(corpus.Bundles), corpus.ImpactedPercent)

	// Diagnose: the developer knows roughly what fraction of users
	// complain about battery drain and feeds it to Step 5.
	acfg := core.DefaultConfig()
	acfg.DeveloperImpactPercent = corpus.ImpactedPercent
	analyzer, err := core.NewAnalyzer(acfg)
	if err != nil {
		return err
	}
	report, err := analyzer.Analyze(corpus.Bundles)
	if err != nil {
		return err
	}
	fmt.Println(report)

	// How much code does the developer avoid reading?
	cr, err := core.ComputeCodeReduction(report, app.Package(), 6)
	if err != nil {
		return err
	}
	fmt.Printf("code reduction: inspect %d of %d lines (%.1f%% reduction)\n",
		cr.DiagnosisLines, cr.TotalLines, cr.Reduction*100)
	return nil
}
