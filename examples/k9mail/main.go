// The K-9 Mail walkthrough: the paper's running example (§III-B) from
// instrumentation to diagnosis.
//
// It shows each stage a real deployment would go through:
//
//  1. Instrument the APK (unpack -> disassemble -> inject probes ->
//     reassemble) with the Table I event pool.
//  2. Simulate volunteers; the impacted ones raise the IMAP connection
//     count past the server's limit, so K-9 retries connections forever
//     (the Fig 2 / Fig 3 scenario).
//  3. Run the manifestation analysis and print the per-step vectors of
//     one impacted trace (the Figs 7-8 view) and the ranked event table
//     (Table II).
//
// Run with: go run ./examples/k9mail
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/apk"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	app, err := apps.K9Mail()
	if err != nil {
		return err
	}

	// Stage 1: the instrumenter pipeline on the disassembled APK.
	text := apk.DisassembleString(app.Package())
	var instrumented strings.Builder
	res, err := instrument.InstrumentText(strings.NewReader(text), instrument.DefaultPool(), &instrumented)
	if err != nil {
		return err
	}
	fmt.Printf("instrumented %d callbacks (%d probes) out of a %d-line app\n\n",
		len(res.Keys), res.ProbeCount, app.TotalSourceLines())

	// Stage 2: trace collection from 20 volunteers, 15% impacted (the
	// paper's developer-reported percentage for K-9).
	cfg := workload.DefaultConfig(app, 7)
	cfg.Users = 20
	cfg.ImpactedFraction = 0.15
	corpus, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("collected %d bundles; ground truth: %.1f%% of users impacted\n\n",
		len(corpus.Bundles), corpus.ImpactedPercent)

	// Stage 3: the 5-step analysis.
	acfg := core.DefaultConfig()
	acfg.DeveloperImpactPercent = corpus.ImpactedPercent
	analyzer, err := core.NewAnalyzer(acfg)
	if err != nil {
		return err
	}
	report, err := analyzer.Analyze(corpus.Bundles)
	if err != nil {
		return err
	}

	// The Figs 7-8 view: one impacted trace's step-by-step vectors
	// around its first manifestation point.
	for _, at := range report.Traces {
		if !corpus.ImpactedUsers[at.UserID] || len(at.Manifestations) == 0 {
			continue
		}
		m := at.Manifestations[0]
		fmt.Printf("impacted trace %s: manifestation at event %d, fence %.2f\n",
			at.TraceID, m, at.Fence)
		lo, hi := m-3, m+3
		if lo < 0 {
			lo = 0
		}
		if hi >= len(at.Events) {
			hi = len(at.Events) - 1
		}
		fmt.Printf("%-4s %-40s %9s %8s %8s\n", "idx", "event", "raw mW", "norm", "ampl")
		for i := lo; i <= hi; i++ {
			marker := "  "
			if i == m {
				marker = "=>"
			}
			fmt.Printf("%s %-3d %-40s %8.1f %8.2f %8.2f\n", marker, i,
				trace.ShortKey(at.Events[i].Instance.Key),
				at.Events[i].PowerMW, at.NormPower[i], at.Amplitude[i])
		}
		fmt.Println()
		break
	}

	// The Table II view.
	fmt.Println("Table II: top events reported by EnergyDx")
	for i, im := range report.TopEvents(6) {
		fmt.Printf("%d, %-44s %.1f%%\n", i+1, trace.ShortKey(im.Key), im.Percent)
	}
	cr, err := core.ComputeCodeReduction(report, app.Package(), 6)
	if err != nil {
		return err
	}
	fmt.Printf("\nsearch space: %d of %d lines (paper: 161 of 98,532)\n",
		cr.DiagnosisLines, cr.TotalLines)
	return nil
}
