// The OpenGPS case study (paper §IV-C, Figs 9-11, Table IV): a no-sleep
// bug where the location listener acquired by the LoggerMap activity is
// never released, so GPS keeps drawing power after the app is
// backgrounded.
//
// This example contrasts three views of the same bug:
//
//   - the dynamic view: EnergyDx's diagnosis from user traces, including
//     the Fig-11 power breakdown (GPS drawing power with display off);
//   - the static view: the No-sleep Detection baseline finding the
//     acquire-without-release path in the bytecode;
//   - the fix: the same workload on the fixed app draws far less power.
//
// Run with: go run ./examples/opengps
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	app, err := apps.OpenGPS()
	if err != nil {
		return err
	}

	// Dynamic diagnosis.
	cfg := workload.DefaultConfig(app, 11)
	cfg.Users = 20
	cfg.ImpactedFraction = 0.2
	corpus, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	acfg := core.DefaultConfig()
	acfg.DeveloperImpactPercent = corpus.ImpactedPercent
	analyzer, err := core.NewAnalyzer(acfg)
	if err != nil {
		return err
	}
	report, err := analyzer.Analyze(corpus.Bundles)
	if err != nil {
		return err
	}
	fmt.Println("Table IV: events reported to developers")
	for i, im := range report.TopEvents(4) {
		fmt.Printf("%d, [%s] %.1f%%\n", i+1, trace.ShortKey(im.Key), im.Percent)
	}
	cr, err := core.ComputeCodeReduction(report, app.Package(), 6)
	if err != nil {
		return err
	}
	fmt.Printf("search space: %d of %d lines (paper: 569 of 5,060)\n\n",
		cr.DiagnosisLines, cr.TotalLines)

	// Fig 11: power breakdown during the background drain of one
	// impacted session.
	one := workload.DefaultConfig(app, 12)
	one.Users = 1
	one.ImpactedFraction = 1
	one.Devices = []string{"nexus6"}
	single, err := workload.Generate(one)
	if err != nil {
		return err
	}
	model := power.NewModel(device.Nexus6())
	pt, err := model.Estimate(&single.Bundles[0].Util)
	if err != nil {
		return err
	}
	end := pt.Samples[len(pt.Samples)-1].TimestampMS
	bd, err := power.BreakdownBetween(pt, end-10_000, end)
	if err != nil {
		return err
	}
	fmt.Println("Fig 11: power breakdown while backgrounded with the ABD active")
	for _, c := range trace.Components() {
		fmt.Printf("  %-8s %7.1f mW\n", c, bd.ByComponent[c])
	}
	fmt.Println()

	// Static view: the no-sleep baseline sees the same bug in the code.
	ns, err := baseline.DetectNoSleep(app.Package())
	if err != nil {
		return err
	}
	fmt.Println("No-sleep Detection (static dataflow) findings:")
	for _, f := range ns.Findings {
		fmt.Printf("  %s leaks %q\n", trace.ShortKey(f.Key), f.Resource)
	}
	fmt.Println()

	// The fix: identical workload, resources released on pause.
	buggyMean, err := corpusMeanPower(model, corpus)
	if err != nil {
		return err
	}
	fixedCfg := cfg
	fixedCfg.Fixed = true
	fixedCorpus, err := workload.Generate(fixedCfg)
	if err != nil {
		return err
	}
	fixedMean, err := corpusMeanPower(model, fixedCorpus)
	if err != nil {
		return err
	}
	fmt.Printf("mean app power: %.0f mW buggy -> %.0f mW fixed (%.1f%% reduction)\n",
		buggyMean, fixedMean, 100*(buggyMean-fixedMean)/buggyMean)
	return nil
}

func corpusMeanPower(model *power.Model, res *workload.Result) (float64, error) {
	var sum float64
	for _, b := range res.Bundles {
		pt, err := model.Estimate(&b.Util)
		if err != nil {
			return 0, err
		}
		m, err := power.MeanPowerMW(pt)
		if err != nil {
			return 0, err
		}
		sum += m
	}
	return sum / float64(len(res.Bundles)), nil
}
