// Fleet: the distributed trace-collection tier end to end.
//
// A collection server starts on the loopback interface; a fleet of
// simulated phones generates sessions of the Wallabag app and uploads
// its trace bundles over TCP — but only when the phone is charging on
// WiFi (the paper's upload policy). Phones that are not eligible defer;
// a later retry succeeds once they plug in. The backend then runs the
// manifestation analysis over everything the server stored.
//
// Run with: go run ./examples/fleet
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	srv, err := collect.NewServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("collection server on %s\n", srv.Addr())

	app, err := apps.ByAppID("wallabag")
	if err != nil {
		return err
	}
	// Generate the whole study corpus, then partition it into per-phone
	// shards: each phone holds one user's bundle and uploads it itself.
	cfg := workload.DefaultConfig(app, 33)
	cfg.Users = 18
	cfg.ImpactedFraction = 0.22
	cfg.Scrub = false // the *client* scrubs before upload, like a phone would
	corpus, err := workload.Generate(cfg)
	if err != nil {
		return err
	}

	client := collect.NewClient(srv.Addr())
	deferred := 0
	var retry []*trace.TraceBundle
	for i, bundle := range corpus.Bundles {
		// A third of the phones are unplugged or on cellular when the
		// uploader wakes up; their uploads are deferred.
		state := collect.PhoneState{Charging: i%3 != 1, OnWiFi: i%4 != 2}
		err := client.Upload(state, []*trace.TraceBundle{bundle})
		switch {
		case errors.Is(err, collect.ErrNotEligible):
			deferred++
			retry = append(retry, bundle)
		case err != nil:
			return fmt.Errorf("phone %d: %w", i, err)
		}
	}
	fmt.Printf("first pass: %d stored, %d deferred by the charging/WiFi policy\n",
		srv.Count(), deferred)

	// Overnight, everyone is charging on WiFi.
	plugged := collect.PhoneState{Charging: true, OnWiFi: true}
	if err := client.Upload(plugged, retry); err != nil {
		return fmt.Errorf("retry: %w", err)
	}
	fmt.Printf("after retries: %d bundles on the server\n\n", srv.Count())

	// Backend analysis over the server's stored (scrubbed) corpus.
	stored := srv.Bundles(app.AppID)
	acfg := core.DefaultConfig()
	acfg.DeveloperImpactPercent = corpus.ImpactedPercent
	analyzer, err := core.NewAnalyzer(acfg)
	if err != nil {
		return err
	}
	report, err := analyzer.Analyze(stored)
	if err != nil {
		return err
	}
	fmt.Printf("diagnosis over %d traces (%d with manifestation points):\n",
		report.TotalTraces, report.ImpactedTraces)
	for i, im := range report.TopEvents(6) {
		fmt.Printf("%d, [%s] %.1f%%\n", i+1, trace.ShortKey(im.Key), im.Percent)
	}
	cr, err := core.ComputeCodeReduction(report, app.Package(), 6)
	if err != nil {
		return err
	}
	fmt.Printf("\ncode reduction: %d of %d lines (%.1f%%)\n",
		cr.DiagnosisLines, cr.TotalLines, cr.Reduction*100)
	return nil
}
