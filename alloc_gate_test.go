package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The allocation gate pins the hot path's allocation profile: each
// gated benchmark's allocs/op and bytes/op must stay within
// allocGateSlackPct of the checked-in BENCH_alloc_baseline.json. The
// gate is opt-in (a benchmark run costs seconds) and is enforced in CI:
//
//	ALLOC_GATE=1      go test -run TestAllocGate .   # enforce
//	ALLOC_GATE=update go test -run TestAllocGate .   # regenerate baseline
//
// Only regressions fail; improvements pass with a notice to re-baseline.

const (
	allocBaselinePath = "BENCH_alloc_baseline.json"
	allocGateSlackPct = 10
)

type allocEntry struct {
	AllocsPerOp int64 `json:"allocsPerOp"`
	BytesPerOp  int64 `json:"bytesPerOp"`
}

type allocBaseline struct {
	Note    string                `json:"note"`
	Entries map[string]allocEntry `json:"entries"`
}

// gatedBenchmarks are the measurements under the gate. All run serial
// so the counts are reproducible across worker counts.
func gatedBenchmarks(t *testing.T) map[string]allocEntry {
	app, err := apps.K9Mail()
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig(app, benchSeed)
	wcfg.Users = 20
	wcfg.ImpactedFraction = 0.2
	corpus, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.DeveloperImpactPercent = corpus.ImpactedPercent
	cfg.Parallelism = 1
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := core.NewStageBench(cfg, corpus.Bundles)
	if err != nil {
		t.Fatal(err)
	}
	text := corpus.Bundles[0].Event.Text()

	benches := map[string]func(b *testing.B){
		"analyze/serial": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := analyzer.Analyze(corpus.Bundles); err != nil {
					b.Fatal(err)
				}
			}
		},
		"stage/step1": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := sb.StepOne(); err != nil {
					b.Fatal(err)
				}
			}
		},
		"stage/rank": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := sb.RankAndBase(); err != nil {
					b.Fatal(err)
				}
			}
		},
		"stage/normalize": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sb.Normalize()
			}
		},
		"stage/detect": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := sb.Detect(); err != nil {
					b.Fatal(err)
				}
			}
		},
		"codec/readtext": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := trace.ReadText(strings.NewReader(text)); err != nil {
					b.Fatal(err)
				}
			}
		},
	}
	got := make(map[string]allocEntry, len(benches))
	for name, fn := range benches {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		got[name] = allocEntry{AllocsPerOp: res.AllocsPerOp(), BytesPerOp: res.AllocedBytesPerOp()}
	}
	return got
}

func TestAllocGate(t *testing.T) {
	mode := os.Getenv("ALLOC_GATE")
	if mode == "" {
		t.Skip("set ALLOC_GATE=1 to enforce, ALLOC_GATE=update to regenerate the baseline")
	}
	got := gatedBenchmarks(t)

	if mode == "update" {
		doc := allocBaseline{
			Note:    fmt.Sprintf("Serial allocation baseline for the gated hot paths; regenerate with ALLOC_GATE=update. Gate fails on >%d%% regression.", allocGateSlackPct),
			Entries: got,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(allocBaselinePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", allocBaselinePath)
		return
	}

	data, err := os.ReadFile(allocBaselinePath)
	if err != nil {
		t.Fatalf("no baseline: %v (run ALLOC_GATE=update to create it)", err)
	}
	var base allocBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}

	names := make([]string, 0, len(base.Entries))
	for name := range base.Entries {
		names = append(names, name)
	}
	sort.Strings(names)
	over := func(got, want int64) bool {
		return float64(got) > float64(want)*(1+allocGateSlackPct/100.0)
	}
	for _, name := range names {
		want := base.Entries[name]
		cur, ok := got[name]
		if !ok {
			t.Errorf("%s: in baseline but no longer measured; run ALLOC_GATE=update", name)
			continue
		}
		if over(cur.AllocsPerOp, want.AllocsPerOp) {
			t.Errorf("%s: allocs/op regressed: %d vs baseline %d (+%d%% allowed)",
				name, cur.AllocsPerOp, want.AllocsPerOp, allocGateSlackPct)
		}
		if over(cur.BytesPerOp, want.BytesPerOp) {
			t.Errorf("%s: bytes/op regressed: %d vs baseline %d (+%d%% allowed)",
				name, cur.BytesPerOp, want.BytesPerOp, allocGateSlackPct)
		}
		if !t.Failed() && (cur.AllocsPerOp*2 < want.AllocsPerOp || cur.BytesPerOp*2 < want.BytesPerOp) {
			t.Logf("%s: improved well past baseline (%d allocs, %d B vs %d, %d) — consider ALLOC_GATE=update",
				name, cur.AllocsPerOp, cur.BytesPerOp, want.AllocsPerOp, want.BytesPerOp)
		}
	}
	for name := range got {
		if _, ok := base.Entries[name]; !ok {
			t.Errorf("%s: measured but missing from baseline; run ALLOC_GATE=update", name)
		}
	}
}
