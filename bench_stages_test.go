package repro

import (
	"testing"

	"repro/internal/core"
)

// Per-stage micro-benchmarks over the fixed 20-user K-9 corpus. Each
// drives exactly one pipeline stage through core.StageBench against
// pre-primed inputs, serial (Parallelism=1) so allocs/op is stable for
// the allocation gate. BenchmarkAnalyzePipeline in bench_test.go covers
// the end-to-end composition.

func stageHarness(b *testing.B) *core.StageBench {
	b.Helper()
	_, corpus := k9Corpus(b)
	cfg := core.DefaultConfig()
	cfg.DeveloperImpactPercent = corpus.ImpactedPercent
	cfg.Parallelism = 1
	sb, err := core.NewStageBench(cfg, corpus.Bundles)
	if err != nil {
		b.Fatal(err)
	}
	return sb
}

func BenchmarkStepOne(b *testing.B) {
	sb := stageHarness(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sb.StepOne(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRankAndBase(b *testing.B) {
	sb := stageHarness(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sb.RankAndBase(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalize(b *testing.B) {
	sb := stageHarness(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Normalize()
	}
}

func BenchmarkDetect(b *testing.B) {
	sb := stageHarness(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sb.Detect(); err != nil {
			b.Fatal(err)
		}
	}
}
