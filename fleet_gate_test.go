package repro

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/collect"
	"repro/internal/collect/seglog"
	"repro/internal/experiments"
	"repro/internal/trace"
)

// The fleet gate pins the fleet-scale ingest path's two headline
// properties in CI:
//
//   - Group commit amortizes durability: with 64 concurrent uploaders
//     hammering one SegStore-backed server, fsyncs-per-bundle must stay
//     under 0.25 and throughput at least 5x the per-bundle-Sync
//     FileStore baseline.
//   - The whole sharded fleet (router → shards → group-commit log →
//     per-shard analysis) sustains its floors end to end: every session
//     accepted exactly once, QPS above floor, p99 report staleness
//     bounded.
//
// Like the other expensive gates it is opt-in: CI's fleet-gate job runs
// FLEET_GATE=1 FLEET_SESSIONS=10000 FLEET_APPS=500 go test -run TestFleetGate .

// fleetGateSession synthesizes one tiny upload session for the ingest
// microbenchmarks: the smallest bundle the validator accepts, so the
// measurement weighs the ingest path (framing, dedup, group commit),
// not record processing.
func fleetGateSession(i, apps int) *trace.TraceBundle {
	app := fmt.Sprintf("fleet%04d", i%apps)
	base := int64(1 + i)
	key := trace.EventKey{Class: "Lfleet/Worker", Callback: "cb"}
	return &trace.TraceBundle{
		Event: trace.EventTrace{
			AppID: app, UserID: fmt.Sprintf("user%d", i), Device: "nexus6",
			TraceID: fmt.Sprintf("s%08d", i),
			Records: []trace.Record{
				{TimestampMS: base, Dir: trace.Enter, Key: key},
				{TimestampMS: base + 4, Dir: trace.Exit, Key: key},
			},
		},
		Util: trace.UtilizationTrace{
			AppID: app, PID: 42, PeriodMS: 500,
			Samples: []trace.UtilizationSample{{TimestampMS: base}},
		},
	}
}

// fleetStoreRun drives Store.Append directly from `uploaders`
// concurrent appenders — the server's ingest handlers do exactly this
// once a bundle is validated — and returns the wall time to persist
// every bundle. Working at the store layer isolates the durability
// strategy under test (group commit vs per-bundle Sync) from wire and
// codec CPU, which on a small runner would otherwise cap the arrival
// rate below the fsync rate and hide the batching.
func fleetStoreRun(tb testing.TB, store collect.Store, uploaders int, bundles []*trace.TraceBundle) time.Duration {
	tb.Helper()
	per := (len(bundles) + uploaders - 1) / uploaders
	errs := make([]error, uploaders)
	var wg sync.WaitGroup
	start := time.Now()
	for u := 0; u < uploaders; u++ {
		lo, hi := u*per, (u+1)*per
		if hi > len(bundles) {
			hi = len(bundles)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(u, lo, hi int) {
			defer wg.Done()
			for _, b := range bundles[lo:hi] {
				if err := store.Append(b); err != nil {
					errs[u] = err
					return
				}
			}
		}(u, lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for u, err := range errs {
		if err != nil {
			tb.Fatalf("appender %d: %v", u, err)
		}
	}
	return elapsed
}

// fleetIngestUploaders and fleetIngestSessions shape the group-commit
// microbenchmark (shared by the gate and the BENCH_sweep entries).
const (
	fleetIngestUploaders = 64
	fleetIngestSessions  = 12800
)

// ingestSweepEntries measures the group-commit SegStore against the
// per-bundle-Sync FileStore under the standard 64-uploader load and
// returns the two BENCH_sweep entries ("ingest/group-commit" and
// "ingest/sync-per-bundle").
func ingestSweepEntries(tb testing.TB) []sweepEntry {
	tb.Helper()
	bundles := make([]*trace.TraceBundle, fleetIngestSessions)
	for i := range bundles {
		b := fleetGateSession(i, 500)
		b.Key = trace.ContentKey(b)
		bundles[i] = b
	}

	seg, err := collect.NewSegStore(tb.TempDir(), seglog.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	defer seg.Close()
	segElapsed := fleetStoreRun(tb, seg, fleetIngestUploaders, bundles)
	ls := seg.Log().Stats()

	fs, err := collect.NewFileStore(tb.TempDir())
	if err != nil {
		tb.Fatal(err)
	}
	defer fs.Close()
	fsElapsed := fleetStoreRun(tb, fs, fleetIngestUploaders, bundles)

	segEntry := sweepEntry{
		Name:            "ingest/group-commit",
		Workers:         fleetIngestUploaders,
		Iterations:      fleetIngestSessions,
		NsPerOp:         segElapsed.Nanoseconds() / int64(fleetIngestSessions),
		QPS:             float64(fleetIngestSessions) / segElapsed.Seconds(),
		FsyncsPerBundle: float64(ls.Commits) / float64(ls.Appends),
	}
	syncEntry := sweepEntry{
		Name:       "ingest/sync-per-bundle",
		Workers:    fleetIngestUploaders,
		Iterations: fleetIngestSessions,
		NsPerOp:    fsElapsed.Nanoseconds() / int64(fleetIngestSessions),
		QPS:        float64(fleetIngestSessions) / fsElapsed.Seconds(),
		// One fsync per accepted bundle by construction.
		FsyncsPerBundle: 1,
	}
	if syncEntry.NsPerOp > 0 {
		segEntry.Speedup = float64(syncEntry.NsPerOp) / float64(segEntry.NsPerOp)
	}
	return []sweepEntry{segEntry, syncEntry}
}

// fleetSweepBlock runs the fleet experiment (FLEET_* env overrides
// apply) and converts the result into the BENCH_sweep fleet block.
func fleetSweepBlock(tb testing.TB, seed int64) (*fleetSweep, *experiments.FleetResult) {
	tb.Helper()
	res, err := experiments.RunFleet(seed)
	if err != nil {
		tb.Fatal(err)
	}
	fr := res.(*experiments.FleetResult)
	return &fleetSweep{
		Sessions:        fr.Config.Sessions,
		Apps:            fr.Config.Apps,
		Shards:          fr.Config.Shards,
		Uploaders:       fr.Config.Uploaders,
		ElapsedNs:       fr.Elapsed.Nanoseconds(),
		QPS:             fr.QPS,
		AckP50Ns:        fr.AckP50.Nanoseconds(),
		AckP99Ns:        fr.AckP99.Nanoseconds(),
		FsyncsPerBundle: fr.FsyncsPerBundle,
		StalenessP50Ns:  fr.StalenessP50.Nanoseconds(),
		StalenessP99Ns:  fr.StalenessP99.Nanoseconds(),
		AnalyzedApps:    fr.AnalyzedApps,
	}, fr
}

// TestFleetGate enforces the fleet-scale ingest floors. Opt-in via
// FLEET_GATE=1 (CI's fleet-gate job); the run shape comes from the
// FLEET_* environment overrides, defaulting to the quick fleet shape.
func TestFleetGate(t *testing.T) {
	if os.Getenv("FLEET_GATE") == "" {
		t.Skip("set FLEET_GATE=1 to run the fleet-scale ingest gate")
	}

	// Group commit: durability amortization under concurrent uploaders.
	entries := ingestSweepEntries(t)
	seg, syncBase := entries[0], entries[1]
	t.Logf("group-commit ingest: %.0f qps, %.4f fsyncs/bundle (%.1fx the per-bundle-Sync store's %.0f qps)",
		seg.QPS, seg.FsyncsPerBundle, seg.Speedup, syncBase.QPS)
	if seg.FsyncsPerBundle >= 0.25 {
		t.Errorf("group commit fsyncs-per-bundle = %.4f, want < 0.25", seg.FsyncsPerBundle)
	}
	if seg.Speedup < 5 {
		t.Errorf("group-commit QPS is %.2fx the per-bundle-Sync baseline, want >= 5x", seg.Speedup)
	}

	// Whole-fleet floors: sharded ingest with per-shard analysis.
	block, fr := fleetSweepBlock(t, benchSeed)
	t.Log(fr.Render())
	if fr.Accepted != int64(fr.Config.Sessions) || fr.Duplicated != 0 || fr.Quarantined != 0 {
		t.Errorf("fleet ingest not exactly-once: %d accepted / %d dup / %d quarantined of %d sessions",
			fr.Accepted, fr.Duplicated, fr.Quarantined, fr.Config.Sessions)
	}
	// Floors are deliberately loose: CI runners are slow and shared. A
	// healthy run on one modern core sustains >1000 sessions/s.
	if block.QPS < 250 {
		t.Errorf("fleet QPS = %.0f, want >= 250", block.QPS)
	}
	if p99 := time.Duration(block.StalenessP99Ns); p99 > 30*time.Second {
		t.Errorf("fleet p99 report staleness = %v, want <= 30s", p99)
	}
	if block.AnalyzedApps != fr.Config.Apps {
		t.Errorf("analyzed %d of %d apps after final drain", block.AnalyzedApps, fr.Config.Apps)
	}
}
