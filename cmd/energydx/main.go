// Command energydx runs the 5-step manifestation analysis over a corpus
// of trace bundles (JSON lines, as produced by cmd/tracegen or dumped by
// cmd/collectd) and prints the diagnosis report. When the corpus belongs
// to one of the catalog apps, the code-reduction metric is computed
// against that app's APK model.
//
// Usage:
//
//	tracegen -app k9mail -out corpus.jsonl
//	energydx -in corpus.jsonl -impacted-pct 15
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "energydx:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("in", "-", "corpus file of JSON-lines bundles ('-' for stdin)")
		impacted = flag.Float64("impacted-pct", 0, "developer-estimated percentage of impacted users (0 = sort by impact)")
		window   = flag.Int("window", 2, "manifestation window half-width in events")
		fence    = flag.Float64("fence", 3, "IQR fence multiplier")
		normBase = flag.Float64("norm-base", 10, "normalization base percentile")
		top      = flag.Int("top", 6, "events to report for the code-reduction metric")
		asJSON   = flag.Bool("json", false, "emit the full report as JSON instead of text")
		par      = flag.Int("parallel", 0, "analysis worker goroutines for Steps 1-4 (0 = GOMAXPROCS, 1 = serial); output is identical at any count")
		lenient  = flag.Bool("lenient", false, "tolerate corrupt input: skip undecodable corpus lines and invalid traces (accounted on stderr / in the report) instead of failing")
	)
	flag.Parse()

	bundles, err := readCorpus(*in, *lenient)
	if err != nil {
		return err
	}
	if len(bundles) == 0 {
		return errors.New("corpus is empty")
	}

	cfg := core.DefaultConfig()
	cfg.DeveloperImpactPercent = *impacted
	cfg.WindowEvents = *window
	cfg.FenceMultiplier = *fence
	cfg.NormBasePercentile = *normBase
	cfg.Parallelism = *par
	cfg.SkipInvalidTraces = *lenient
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return err
	}
	report, err := analyzer.Analyze(bundles)
	if err != nil {
		return err
	}
	for _, sk := range report.Skipped {
		fmt.Fprintf(os.Stderr, "energydx: skipped invalid trace %d (%s): %s\n", sk.Index, sk.TraceID, sk.Reason)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	if err := report.WriteText(os.Stdout); err != nil {
		return err
	}

	// Code reduction, when we know the app's APK model.
	if app, err := apps.ByAppID(report.AppID); err == nil {
		cr, err := core.ComputeCodeReduction(report, app.Package(), *top)
		if err != nil {
			return err
		}
		fmt.Printf("\ncode reduction: %d of %d lines to inspect (%.1f%% reduction)\n",
			cr.DiagnosisLines, cr.TotalLines, cr.Reduction*100)
	}
	return nil
}

func readCorpus(path string, lenient bool) ([]*trace.TraceBundle, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if !lenient {
		return trace.ReadBundles(r)
	}
	var bundles []*trace.TraceBundle
	skipped := 0
	err := trace.ScanBundlesLenient(r,
		func(b *trace.TraceBundle) error {
			bundles = append(bundles, b)
			return nil
		},
		func(bad trace.BadBundleLine) error {
			skipped++
			fmt.Fprintf(os.Stderr, "energydx: skipping corpus line %d: %v\n", bad.Line, bad.Err)
			return nil
		})
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "energydx: skipped %d undecodable corpus line(s)\n", skipped)
	}
	return bundles, nil
}
