// Command energydx runs the 5-step manifestation analysis over a corpus
// of trace bundles (JSON lines, as produced by cmd/tracegen or dumped by
// cmd/collectd) and prints the diagnosis report. When the corpus belongs
// to one of the catalog apps, the code-reduction metric is computed
// against that app's APK model.
//
// Observability: -stats prints the per-step (1-5) wall/CPU latency
// breakdown sourced from the analysis spans, -trace exports every span
// (including one per worker task) as JSONL, and -cpuprofile/-memprofile
// write pprof profiles of the run.
//
// Usage:
//
//	tracegen -app k9mail -out corpus.jsonl
//	energydx -in corpus.jsonl -impacted-pct 15
//	energydx -in corpus.jsonl -stats -trace spans.jsonl -cpuprofile cpu.pb.gz
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "energydx:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in         = flag.String("in", "-", "corpus file of JSON-lines bundles ('-' for stdin)")
		impacted   = flag.Float64("impacted-pct", 0, "developer-estimated percentage of impacted users (0 = sort by impact)")
		window     = flag.Int("window", 2, "manifestation window half-width in events")
		fence      = flag.Float64("fence", 3, "IQR fence multiplier")
		normBase   = flag.Float64("norm-base", 10, "normalization base percentile")
		top        = flag.Int("top", 6, "events to report for the code-reduction metric")
		asJSON     = flag.Bool("json", false, "emit the full report as JSON instead of text")
		par        = flag.Int("parallel", 0, "analysis worker goroutines for Steps 1-4 (0 = GOMAXPROCS, 1 = serial); output is identical at any count")
		lenient    = flag.Bool("lenient", false, "tolerate corrupt input: skip undecodable corpus lines and invalid traces (accounted on stderr / in the report) instead of failing")
		stats      = flag.Bool("stats", false, "print the per-step wall/CPU latency breakdown to stderr after the report")
		traceOut   = flag.String("trace", "", "write the analysis spans (steps + per-trace worker tasks) as JSONL to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		logLevel   = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat  = flag.String("log-format", "text", "log output format: text|json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)

	stopCPU, err := obs.StartCPUProfile(*cpuProfile)
	if err != nil {
		return err
	}
	defer stopCPU()

	bundles, err := readCorpus(*in, *lenient, logger)
	if err != nil {
		return err
	}
	if len(bundles) == 0 {
		return errors.New("corpus is empty")
	}

	cfg := core.DefaultConfig()
	cfg.DeveloperImpactPercent = *impacted
	cfg.WindowEvents = *window
	cfg.FenceMultiplier = *fence
	cfg.NormBasePercentile = *normBase
	cfg.Parallelism = *par
	cfg.SkipInvalidTraces = *lenient
	var tracer *obs.Tracer
	if *traceOut != "" {
		// Per-task spans are only worth their cost when they will be
		// exported; the step-level breakdown for -stats is always on.
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return err
	}
	report, err := analyzer.Analyze(bundles)
	if err != nil {
		return err
	}
	for _, sk := range report.Skipped {
		logger.Warn("skipped invalid trace", "index", sk.Index, "trace", sk.TraceID, "reason", sk.Reason)
	}
	if tracer != nil {
		if err := writeSpans(*traceOut, tracer); err != nil {
			return err
		}
		logger.Info("wrote span trace", "path", *traceOut, "spans", len(tracer.Records()))
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		if err := report.WriteText(os.Stdout); err != nil {
			return err
		}

		// Code reduction, when we know the app's APK model.
		if app, err := apps.ByAppID(report.AppID); err == nil {
			cr, err := core.ComputeCodeReduction(report, app.Package(), *top)
			if err != nil {
				return err
			}
			fmt.Printf("\ncode reduction: %d of %d lines to inspect (%.1f%% reduction)\n",
				cr.DiagnosisLines, cr.TotalLines, cr.Reduction*100)
		}
	}
	if *stats {
		if err := report.WriteStages(os.Stderr); err != nil {
			return err
		}
	}
	return obs.WriteHeapProfile(*memProfile)
}

// writeSpans exports the tracer's spans as JSONL.
func writeSpans(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tracer.WriteJSONL(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func readCorpus(path string, lenient bool, logger *slog.Logger) ([]*trace.TraceBundle, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if !lenient {
		return trace.ReadBundles(r)
	}
	var bundles []*trace.TraceBundle
	skipped := 0
	err := trace.ScanBundlesLenient(r,
		func(b *trace.TraceBundle) error {
			bundles = append(bundles, b)
			return nil
		},
		func(bad trace.BadBundleLine) error {
			skipped++
			logger.Warn("skipping corpus line", "line", bad.Line, "err", bad.Err)
			return nil
		})
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		logger.Warn("skipped undecodable corpus lines", "count", skipped)
	}
	return bundles, nil
}
