// Command energydx runs the 5-step manifestation analysis over a corpus
// of trace bundles (JSON lines, as produced by cmd/tracegen or dumped by
// cmd/collectd) and prints the diagnosis report. When the corpus belongs
// to one of the catalog apps, the code-reduction metric is computed
// against that app's APK model.
//
// Observability: -stats prints the per-step (1-5) wall/CPU latency
// breakdown sourced from the analysis spans, -trace exports every span
// (including one per worker task) as JSONL, and -cpuprofile/-memprofile
// write pprof profiles of the run.
//
// The -watch flag keeps the process alive and re-analyzes whenever the
// corpus file changes (polled every -watch-interval): reloads go
// through an incremental analyzer that caches per-trace Step-1 power
// estimation by content key, so appending one bundle to a large corpus
// re-runs Steps 2-5 but recomputes Step 1 only for the new bundle.
//
// When -in is an http(s) URL of a collectd -serve-analysis instance,
// -watch switches from file polling to the server's /analysis/events
// SSE stream: each report-update event triggers one conditional
// (If-None-Match) fetch of the versioned report, and the connection is
// resumed with Last-Event-ID after transient drops. -app selects which
// app to follow (required for remote watch).
//
// Usage:
//
//	tracegen -app k9mail -out corpus.jsonl
//	energydx -in corpus.jsonl -impacted-pct 15
//	energydx -in corpus.jsonl -stats -trace spans.jsonl -cpuprofile cpu.pb.gz
//	energydx -in corpus.jsonl -watch -watch-interval 2s
//	energydx -in http://127.0.0.1:7601 -app k9mail -watch
//
// Version comparison: -diff analyzes two corpora (a baseline and a
// candidate version of the same app) and prints the revision report —
// per-event-key power deltas, newly-manifesting and disappeared
// manifestation points, and culprit-ranked suspects. -gate evaluates
// the same diff against regression thresholds (defaults overridable
// via a -gate-config JSON file) and exits non-zero when the candidate
// regresses past any fence, so a CI job can fail the build:
//
//	energydx -diff base.jsonl candidate.jsonl
//	energydx -gate base.jsonl candidate.jsonl -gate-config gate.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/revision"
	"repro/internal/serve"
	"repro/internal/trace"
)

// errGateFailed marks a gate verdict (already rendered to stdout) as
// opposed to an operational error; both exit non-zero.
var errGateFailed = errors.New("regression gate failed")

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "energydx:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in         = flag.String("in", "-", "corpus file of JSON-lines bundles ('-' for stdin)")
		impacted   = flag.Float64("impacted-pct", 0, "developer-estimated percentage of impacted users (0 = sort by impact)")
		window     = flag.Int("window", 2, "manifestation window half-width in events")
		fence      = flag.Float64("fence", 3, "IQR fence multiplier")
		normBase   = flag.Float64("norm-base", 10, "normalization base percentile")
		top        = flag.Int("top", 6, "events to report for the code-reduction metric")
		asJSON     = flag.Bool("json", false, "emit the full report as JSON instead of text")
		par        = flag.Int("parallel", 0, "analysis worker goroutines for Steps 1-4 (0 = GOMAXPROCS, 1 = serial); output is identical at any count")
		lenient    = flag.Bool("lenient", false, "tolerate corrupt input: skip undecodable corpus lines and invalid traces (accounted on stderr / in the report) instead of failing")
		watch      = flag.Bool("watch", false, "stay alive and re-analyze incrementally whenever -in changes (file path, not stdin); with an http(s) -in, follow the server's SSE event stream instead; exit on SIGINT/SIGTERM")
		appID      = flag.String("app", "", "app to follow when -watch points -in at a collectd analysis server URL")
		watchEvery = flag.Duration("watch-interval", 2*time.Second, "corpus file poll interval for -watch")
		diffMode   = flag.Bool("diff", false, "compare two corpora: energydx -diff <baseline> <candidate>; print the revision report")
		gateMode   = flag.Bool("gate", false, "CI regression gate: energydx -gate <baseline> <candidate>; exit non-zero when the candidate regresses past the thresholds")
		gateConfig = flag.String("gate-config", "", "JSON file overriding the default -gate thresholds")
		stats      = flag.Bool("stats", false, "print the per-step wall/CPU latency breakdown to stderr after the report")
		traceOut   = flag.String("trace", "", "write the analysis spans (steps + per-trace worker tasks) as JSONL to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		logLevel   = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat  = flag.String("log-format", "text", "log output format: text|json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)

	stopCPU, err := obs.StartCPUProfile(*cpuProfile)
	if err != nil {
		return err
	}
	defer stopCPU()

	cfg := core.DefaultConfig()
	cfg.DeveloperImpactPercent = *impacted
	cfg.WindowEvents = *window
	cfg.FenceMultiplier = *fence
	cfg.NormBasePercentile = *normBase
	cfg.Parallelism = *par
	cfg.SkipInvalidTraces = *lenient

	if *diffMode || *gateMode {
		if *watch {
			return errors.New("-diff/-gate and -watch are mutually exclusive")
		}
		if flag.NArg() != 2 {
			return fmt.Errorf("-diff/-gate take exactly two corpus files (baseline, candidate), got %d args", flag.NArg())
		}
		return runDiff(flag.Arg(0), flag.Arg(1), cfg, diffOptions{
			gate:       *gateMode,
			gateConfig: *gateConfig,
			asJSON:     *asJSON,
			lenient:    *lenient,
		}, logger)
	}

	if *watch {
		if *in == "-" {
			return errors.New("-watch requires -in to be a file or server URL, not stdin")
		}
		if *traceOut != "" {
			return errors.New("-trace is not supported with -watch (spans would accumulate without bound)")
		}
		if strings.HasPrefix(*in, "http://") || strings.HasPrefix(*in, "https://") {
			if *appID == "" {
				return errors.New("remote -watch requires -app (which app's reports to follow)")
			}
			if err := watchRemote(*in, *appID, *asJSON, *top, logger); err != nil {
				return err
			}
			return obs.WriteHeapProfile(*memProfile)
		}
		if err := watchLoop(*in, *watchEvery, cfg, *lenient, *asJSON, *top, *stats, logger); err != nil {
			return err
		}
		return obs.WriteHeapProfile(*memProfile)
	}

	bundles, err := readCorpus(*in, *lenient, logger)
	if err != nil {
		return err
	}
	if len(bundles) == 0 {
		return errors.New("corpus is empty")
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		// Per-task spans are only worth their cost when they will be
		// exported; the step-level breakdown for -stats is always on.
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return err
	}
	report, err := analyzer.Analyze(bundles)
	if err != nil {
		return err
	}
	for _, sk := range report.Skipped {
		logger.Warn("skipped invalid trace", "index", sk.Index, "trace", sk.TraceID, "reason", sk.Reason)
	}
	if tracer != nil {
		if err := writeSpans(*traceOut, tracer); err != nil {
			return err
		}
		logger.Info("wrote span trace", "path", *traceOut, "spans", len(tracer.Records()))
	}
	if err := printReport(report, *asJSON, *top); err != nil {
		return err
	}
	if *stats {
		if err := report.WriteStages(os.Stderr); err != nil {
			return err
		}
	}
	return obs.WriteHeapProfile(*memProfile)
}

// printReport renders one diagnosis report to stdout: full JSON under
// -json, else the developer-facing text rendering followed by the
// code-reduction metric when the app's APK model is in the catalog.
func printReport(report *core.Report, asJSON bool, top int) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	if err := report.WriteText(os.Stdout); err != nil {
		return err
	}
	if app, err := apps.ByAppID(report.AppID); err == nil {
		cr, err := core.ComputeCodeReduction(report, app.Package(), top)
		if err != nil {
			return err
		}
		fmt.Printf("\ncode reduction: %d of %d lines to inspect (%.1f%% reduction)\n",
			cr.DiagnosisLines, cr.TotalLines, cr.Reduction*100)
	}
	return nil
}

type diffOptions struct {
	gate       bool
	gateConfig string
	asJSON     bool
	lenient    bool
}

// runDiff analyzes the baseline and candidate corpora with identical
// configuration, compares the reports into a revision diff, and either
// prints it (-diff) or evaluates it against the regression gate
// (-gate). A gate failure is reported on stdout and surfaces as
// errGateFailed so the process exits non-zero for CI.
func runDiff(basePath, candPath string, cfg core.Config, opts diffOptions, logger *slog.Logger) error {
	analyze := func(path string) (*core.Report, error) {
		bundles, err := readCorpus(path, opts.lenient, logger)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if len(bundles) == 0 {
			return nil, fmt.Errorf("%s: corpus is empty", path)
		}
		a, err := core.NewAnalyzer(cfg)
		if err != nil {
			return nil, err
		}
		return a.Analyze(bundles)
	}
	base, err := analyze(basePath)
	if err != nil {
		return err
	}
	cand, err := analyze(candPath)
	if err != nil {
		return err
	}
	if base.AppID != cand.AppID {
		return fmt.Errorf("corpora belong to different apps: %q vs %q", base.AppID, cand.AppID)
	}
	d := revision.Compare(base, cand)

	if !opts.gate {
		if opts.asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(d)
		}
		return d.WriteText(os.Stdout)
	}

	g := revision.DefaultGate()
	if opts.gateConfig != "" {
		if g, err = revision.LoadGate(opts.gateConfig); err != nil {
			return err
		}
	}
	res := g.Evaluate(d)
	if opts.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Diff *revision.Diff      `json:"diff"`
			Gate revision.GateResult `json:"gate"`
		}{d, res}); err != nil {
			return err
		}
	} else if err := res.WriteText(os.Stdout); err != nil {
		return err
	}
	if !res.Pass {
		return errGateFailed
	}
	return nil
}

// watchLoop polls the corpus file and re-analyzes it through an
// incremental analyzer whenever its mtime or size changes. Bundles
// whose content survives a rewrite keep their cached Step-1 results,
// so an append costs one Step-1 computation plus Steps 2-5.
func watchLoop(path string, interval time.Duration, cfg core.Config, lenient, asJSON bool, top int, stats bool, logger *slog.Logger) error {
	inc, err := core.NewIncrementalAnalyzer(cfg, 0)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	logger.Info("watching corpus", "path", path, "interval", interval)

	var lastMod time.Time
	lastSize := int64(-1)
	for {
		if fi, err := os.Stat(path); err != nil {
			logger.Warn("watch: stat failed; corpus may be mid-rewrite", "path", path, "err", err)
		} else if fi.ModTime() != lastMod || fi.Size() != lastSize {
			lastMod, lastSize = fi.ModTime(), fi.Size()
			if err := watchRefresh(inc, path, lenient, asJSON, top, stats, logger); err != nil {
				return err
			}
		}
		select {
		case got := <-sig:
			logger.Info("watch: shutting down", "signal", got.String())
			return nil
		case <-ticker.C:
		}
	}
}

// watchRefresh reloads the corpus, syncs the incremental analyzer's
// bundle set to it (content-key diff: additions computed, removals
// dropped, survivors served from cache), and reprints the report when
// anything actually changed. Transient read/analysis failures are
// logged and retried on the next poll, never fatal.
func watchRefresh(inc *core.IncrementalAnalyzer, path string, lenient, asJSON bool, top int, stats bool, logger *slog.Logger) error {
	bundles, err := readCorpus(path, lenient, logger)
	if err != nil {
		logger.Warn("watch: corpus reload failed", "err", err)
		return nil
	}
	live := make(map[string]bool, len(bundles))
	added := 0
	for _, b := range bundles {
		key, ok := inc.Add(b)
		live[key] = true
		if ok {
			added++
		}
	}
	removed := 0
	for _, key := range inc.Keys() {
		if !live[key] {
			inc.Remove(key)
			removed++
		}
	}
	if added == 0 && removed == 0 {
		return nil // touched but content-identical: nothing to redo
	}
	start := time.Now()
	report, err := inc.Report()
	if err != nil {
		logger.Warn("watch: analysis failed", "err", err)
		return nil
	}
	for _, sk := range report.Skipped {
		logger.Warn("skipped invalid trace", "index", sk.Index, "trace", sk.TraceID, "reason", sk.Reason)
	}
	cs := inc.CacheStats()
	logger.Info("watch: re-analyzed corpus",
		"bundles", report.TotalTraces, "added", added, "removed", removed,
		"wall", time.Since(start).Round(time.Millisecond),
		"cache_hit_rate", fmt.Sprintf("%.3f", cs.HitRate()))
	fmt.Printf("=== corpus changed (+%d/-%d bundles) ===\n", added, removed)
	if err := printReport(report, asJSON, top); err != nil {
		return err
	}
	if stats {
		return report.WriteStages(os.Stderr)
	}
	return nil
}

// watchRemote follows a collectd analysis server: it subscribes to the
// /analysis/events SSE stream (resuming with Last-Event-ID across
// reconnects) and, on every report-update event for the app, fetches
// the versioned report conditionally — If-None-Match with the last
// printed ETag, so a replayed or duplicate event costs one 304, not a
// report transfer. Exits cleanly on SIGINT/SIGTERM.
func watchRemote(baseURL, app string, asJSON bool, top int, logger *slog.Logger) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	client := &http.Client{}
	var lastID uint64
	var lastETag string
	logger.Info("watching analysis server", "url", baseURL, "app", app)

	backoff := time.Second
	for {
		err := serve.WatchEvents(ctx, client, baseURL, app, lastID, func(ev serve.StreamEvent) error {
			if ev.ID > lastID {
				lastID = ev.ID
			}
			backoff = time.Second // stream is delivering; reset reconnect delay
			return fetchRemoteReport(ctx, client, baseURL, app, &lastETag, asJSON, top, ev, logger)
		})
		if ctx.Err() != nil {
			logger.Info("watch: shutting down")
			return nil
		}
		if err == nil {
			err = io.EOF
		}
		logger.Warn("watch: event stream disconnected; reconnecting",
			"err", err, "last_event_id", lastID, "backoff", backoff)
		select {
		case <-ctx.Done():
			logger.Info("watch: shutting down")
			return nil
		case <-time.After(backoff):
		}
		if backoff < 30*time.Second {
			backoff *= 2
		}
	}
}

// fetchRemoteReport performs the conditional report fetch behind one
// stream event and prints the report when it actually changed.
// Transient failures log and return nil — the stream stays up and the
// next event retries.
func fetchRemoteReport(ctx context.Context, client *http.Client, baseURL, app string, lastETag *string, asJSON bool, top int, ev serve.StreamEvent, logger *slog.Logger) error {
	u := strings.TrimSuffix(baseURL, "/") + "/analysis/report?app=" + url.QueryEscape(app)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	if *lastETag != "" {
		req.Header.Set("If-None-Match", *lastETag)
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		logger.Warn("watch: report fetch failed", "err", err)
		return nil
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil // replayed/duplicate event: already printed this version
	case http.StatusOK:
	default:
		_, _ = io.Copy(io.Discard, resp.Body)
		logger.Warn("watch: report fetch failed", "status", resp.Status)
		return nil
	}
	var report core.Report
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		logger.Warn("watch: report decode failed", "err", err)
		return nil
	}
	*lastETag = resp.Header.Get("ETag")
	fmt.Printf("=== report update: %s v%d (etag %s) ===\n", ev.Event.App, ev.Event.Version, ev.Event.ETag)
	return printReport(&report, asJSON, top)
}

// writeSpans exports the tracer's spans as JSONL.
func writeSpans(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tracer.WriteJSONL(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func readCorpus(path string, lenient bool, logger *slog.Logger) ([]*trace.TraceBundle, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if !lenient {
		return trace.ReadBundles(r)
	}
	var bundles []*trace.TraceBundle
	skipped := 0
	err := trace.ScanBundlesLenient(r,
		func(b *trace.TraceBundle) error {
			bundles = append(bundles, b)
			return nil
		},
		func(bad trace.BadBundleLine) error {
			skipped++
			logger.Warn("skipping corpus line", "line", bad.Line, "err", bad.Err)
			return nil
		})
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		logger.Warn("skipped undecodable corpus lines", "count", skipped)
	}
	return bundles, nil
}
