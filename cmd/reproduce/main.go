// Command reproduce regenerates the paper's tables and figures.
//
// Usage:
//
//	reproduce -exp all            # every experiment, paper order
//	reproduce -exp fig16          # one experiment
//	reproduce -list               # list experiment IDs
//	reproduce -exp table3 -seed 7 # different corpus seed
//	reproduce -exp ingest         # fault-injected collection convergence
//	reproduce -exp all -debug-addr 127.0.0.1:7601 -cpuprofile cpu.pb.gz
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp         = flag.String("exp", "all", "experiment ID to run, or 'all'")
		seed        = flag.Int64("seed", 2020, "corpus generation seed")
		list        = flag.Bool("list", false, "list experiment IDs and exit")
		csvDir      = flag.String("csv", "", "also write the experiments' data series as CSV files into this directory")
		parallelism = flag.Int("parallelism", 0, "worker count for per-app sweeps and the analysis pipeline (0 = GOMAXPROCS, 1 = serial); results are identical at any count")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /healthz, /readyz, /debug/vars and /debug/pprof while experiments run ('' = disabled)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile at exit to this file")
		logLevel    = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat   = flag.String("log-format", "text", "log output format: text|json")
	)
	flag.Parse()
	experiments.SetParallelism(*parallelism)

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)

	if *debugAddr != "" {
		health := obs.NewHealth()
		debug, err := obs.ServeDebug(*debugAddr, obs.DebugMux(obs.Default, health))
		if err != nil {
			return err
		}
		defer debug.Close()
		health.SetReady(true)
		logger.Info("debug endpoints up", "addr", debug.Addr())
	}
	stopCPU, err := obs.StartCPUProfile(*cpuProfile)
	if err != nil {
		return err
	}
	defer stopCPU()
	defer func() {
		if err := obs.WriteHeapProfile(*memProfile); err != nil {
			logger.Error("heap profile failed", "err", err)
		}
	}()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	if *exp == "all" {
		for _, e := range experiments.Registry() {
			fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
			res, err := e.Run(*seed)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Println(res.Render())
			if err := exportCSV(*csvDir, res); err != nil {
				return err
			}
		}
		return nil
	}
	runner, title, err := experiments.Lookup(*exp)
	if err != nil {
		return err
	}
	fmt.Printf("==== %s: %s ====\n", *exp, title)
	res, err := runner(*seed)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return exportCSV(*csvDir, res)
}

// exportCSV writes the result's data tables when it has any.
func exportCSV(dir string, res experiments.Result) error {
	if dir == "" {
		return nil
	}
	exporter, ok := res.(experiments.CSVExporter)
	if !ok {
		return nil
	}
	for name, rows := range exporter.CSVFiles() {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = experiments.WriteCSV(f, rows)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		slog.Info("wrote CSV", "path", path)
	}
	return nil
}
