// Command tracegen generates a synthetic trace corpus for one of the
// evaluated apps and writes it as JSON-lines bundles, or uploads it to a
// running collection server (cmd/collectd).
//
// With -revisions N it instead generates an N-version revision chain
// of the app (seeded mutation operators, optionally one injected energy
// regression) and writes one corpus per version to <out>.v<i>.jsonl —
// the inputs `energydx -diff` and `-gate` compare.
//
// Usage:
//
//	tracegen -app k9mail -users 30 -impacted 0.15 -out corpus.jsonl
//	tracegen -app opengps -upload 127.0.0.1:7600
//	tracegen -app k9mail -revisions 3 -regression-at 2 -impacted 0 -out chain
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"repro/internal/apps"
	"repro/internal/collect"
	"repro/internal/obs"
	"repro/internal/revision"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appID     = flag.String("app", "k9mail", "app to simulate (catalog ID, e.g. k9mail, opengps)")
		users     = flag.Int("users", 30, "number of volunteer users")
		impacted  = flag.Float64("impacted", 0.15, "fraction of users that trigger the ABD")
		seed      = flag.Int64("seed", 1, "simulation seed")
		fixed     = flag.Bool("fixed", false, "simulate the fixed app variant")
		out       = flag.String("out", "-", "output file ('-' for stdout); with -revisions, the per-version file prefix")
		upload    = flag.String("upload", "", "upload to a collectd address instead of writing a file")
		binary    = flag.Bool("binary", false, "negotiate the binary columnar wire codec for -upload (falls back to text if the server declines)")
		revisions = flag.Int("revisions", 0, "generate a version chain of this many versions (including v0) and write one corpus per version to <out>.v<i>.jsonl")
		regrAt    = flag.Int("regression-at", 0, "inject an energy regression at this chain version (1-based; 0 = clean chain)")
		regrKind  = flag.String("kind", "", "regression family: hold|loop|hot (default: drawn from the seed)")
		rewires   = flag.Bool("rewires", false, "also draw callback-rewire edits into the chain")
		logLevel  = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "log output format: text|json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)

	app, err := apps.ByAppID(*appID)
	if err != nil {
		return err
	}
	if *revisions > 0 {
		if *upload != "" {
			return fmt.Errorf("-revisions cannot be combined with -upload")
		}
		if *out == "-" {
			return fmt.Errorf("-revisions needs -out as a file prefix, not stdout")
		}
		return writeChain(app, chainOptions{
			out: *out, versions: *revisions, seed: *seed, regressionAt: *regrAt,
			kind: *regrKind, rewires: *rewires, users: *users, impacted: *impacted,
		}, logger)
	}

	cfg := workload.DefaultConfig(app, *seed)
	cfg.Users = *users
	cfg.ImpactedFraction = *impacted
	cfg.Fixed = *fixed

	if *upload != "" {
		// The upload client batches and retries over the whole corpus, so
		// this path still materializes it.
		res, err := workload.Generate(cfg)
		if err != nil {
			return err
		}
		logger.Info("generated corpus", "bundles", len(res.Bundles), "app", app.Name,
			"impacted_pct", fmt.Sprintf("%.1f", res.ImpactedPercent))
		var copts []collect.ClientOption
		if *binary {
			copts = append(copts, collect.WithBinary())
		}
		client := collect.NewClient(*upload, copts...)
		state := collect.PhoneState{Charging: true, OnWiFi: true}
		if err := client.Upload(state, res.Bundles); err != nil {
			return fmt.Errorf("upload: %w", err)
		}
		st := client.Stats()
		logger.Info("uploaded", "addr", *upload, "acked", st.Acked,
			"lines_sent", st.LinesSent, "attempts", st.Attempts)
		return nil
	}

	// File and stdout output stream each bundle to the writer as its
	// session completes: peak memory is one user's traces, not the
	// corpus.
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	bundles := 0
	res, err := workload.GenerateStream(cfg, func(b *trace.TraceBundle) error {
		bundles++
		return trace.EncodeBundle(bw, b)
	})
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("write corpus: %w", err)
	}
	logger.Info("generated corpus", "bundles", bundles, "app", app.Name,
		"impacted_pct", fmt.Sprintf("%.1f", res.ImpactedPercent))
	return nil
}

type chainOptions struct {
	out          string
	versions     int
	seed         int64
	regressionAt int
	kind         string
	rewires      bool
	users        int
	impacted     float64
}

// writeChain generates a revision chain and writes each version's
// corpus to <out>.v<i>.jsonl. The ground-truth culprit of a regression
// chain is logged so CI smoke tests can assert the gate's verdict
// against it.
func writeChain(app *apps.App, opts chainOptions, logger *slog.Logger) error {
	if opts.kind != "" {
		valid := false
		for _, k := range revision.Kinds() {
			if string(k) == opts.kind {
				valid = true
			}
		}
		if !valid {
			return fmt.Errorf("unknown regression kind %q (want one of %v)", opts.kind, revision.Kinds())
		}
	}
	ccfg := revision.ChainConfig{
		App:          app,
		Versions:     opts.versions,
		Seed:         opts.seed,
		RegressionAt: opts.regressionAt,
		Kind:         revision.Kind(opts.kind),
		Rewires:      opts.rewires,
	}
	chain, err := revision.GenerateChain(ccfg)
	if err != nil {
		return err
	}
	corpora, err := revision.ChainCorpora(chain, ccfg, revision.CorpusConfig{
		Users:            opts.users,
		ImpactedFraction: opts.impacted,
	})
	if err != nil {
		return err
	}
	for i, bundles := range corpora {
		path := fmt.Sprintf("%s.v%d.jsonl", opts.out, i)
		if err := writeCorpus(path, bundles); err != nil {
			return err
		}
		logger.Info("wrote version corpus", "path", path,
			"version", chain.Versions[i].App.Package().ID(), "bundles", len(bundles))
	}
	if chain.RegressionAt > 0 {
		logger.Info("chain ground truth", "regression_at", chain.RegressionAt,
			"kind", chain.Kind, "culprit", chain.Culprit.String())
	}
	return nil
}

// writeCorpus writes one version's bundles as JSON lines.
func writeCorpus(path string, bundles []*trace.TraceBundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	for _, b := range bundles {
		if err := trace.EncodeBundle(bw, b); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
