// Command tracegen generates a synthetic trace corpus for one of the
// evaluated apps and writes it as JSON-lines bundles, or uploads it to a
// running collection server (cmd/collectd).
//
// Usage:
//
//	tracegen -app k9mail -users 30 -impacted 0.15 -out corpus.jsonl
//	tracegen -app opengps -upload 127.0.0.1:7600
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"repro/internal/apps"
	"repro/internal/collect"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appID     = flag.String("app", "k9mail", "app to simulate (catalog ID, e.g. k9mail, opengps)")
		users     = flag.Int("users", 30, "number of volunteer users")
		impacted  = flag.Float64("impacted", 0.15, "fraction of users that trigger the ABD")
		seed      = flag.Int64("seed", 1, "simulation seed")
		fixed     = flag.Bool("fixed", false, "simulate the fixed app variant")
		out       = flag.String("out", "-", "output file ('-' for stdout)")
		upload    = flag.String("upload", "", "upload to a collectd address instead of writing a file")
		logLevel  = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "log output format: text|json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)

	app, err := apps.ByAppID(*appID)
	if err != nil {
		return err
	}
	cfg := workload.DefaultConfig(app, *seed)
	cfg.Users = *users
	cfg.ImpactedFraction = *impacted
	cfg.Fixed = *fixed

	if *upload != "" {
		// The upload client batches and retries over the whole corpus, so
		// this path still materializes it.
		res, err := workload.Generate(cfg)
		if err != nil {
			return err
		}
		logger.Info("generated corpus", "bundles", len(res.Bundles), "app", app.Name,
			"impacted_pct", fmt.Sprintf("%.1f", res.ImpactedPercent))
		client := collect.NewClient(*upload)
		state := collect.PhoneState{Charging: true, OnWiFi: true}
		if err := client.Upload(state, res.Bundles); err != nil {
			return fmt.Errorf("upload: %w", err)
		}
		st := client.Stats()
		logger.Info("uploaded", "addr", *upload, "acked", st.Acked,
			"lines_sent", st.LinesSent, "attempts", st.Attempts)
		return nil
	}

	// File and stdout output stream each bundle to the writer as its
	// session completes: peak memory is one user's traces, not the
	// corpus.
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	bundles := 0
	res, err := workload.GenerateStream(cfg, func(b *trace.TraceBundle) error {
		bundles++
		return trace.EncodeBundle(bw, b)
	})
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("write corpus: %w", err)
	}
	logger.Info("generated corpus", "bundles", bundles, "app", app.Name,
		"impacted_pct", fmt.Sprintf("%.1f", res.ImpactedPercent))
	return nil
}
