// Command collectd runs the EnergyDx trace-collection server. Phones
// (or cmd/tracegen) upload JSON-lines trace bundles over TCP; on
// shutdown (SIGINT/SIGTERM) the server dumps its stored corpus as one
// JSONL file per app.
//
// The -faults flag turns the server into a chaos rig: received lines
// are corrupted, truncated, duplicated, delayed or their connections
// dropped behind a seeded RNG, which exercises client retry and the
// server's quarantine exactly as an unreliable network would.
//
// Usage:
//
//	collectd -addr 127.0.0.1:7600 -out ./corpora
//	collectd -store ./store -faults 'corrupt=0.1,drop=0.05,seed=7'
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/collect"
	"repro/internal/faults"
	"repro/internal/parallel"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:7600", "listen address")
		out          = flag.String("out", ".", "directory for per-app corpus dumps on shutdown")
		storeDir     = flag.String("store", "", "durable store directory: bundles are persisted as they arrive and reloaded on restart")
		parallelism  = flag.Int("parallelism", 0, "worker count for the shutdown corpus dump (0 = GOMAXPROCS, 1 = serial)")
		faultSpec    = flag.String("faults", "", "chaos fault injection on received lines, e.g. 'corrupt=0.1,truncate=0.05,duplicate=0.1,drop=0.05,delay=0.2,seed=7'")
		maxLineBytes = flag.Int("max-line-bytes", 0, "reject serialized bundles over this size (0 = default 16 MiB)")
		maxRecords   = flag.Int("max-records", 0, "reject bundles with more event records than this (0 = default)")
	)
	flag.Parse()

	var opts []collect.ServerOption
	if *storeDir != "" {
		store, err := collect.NewFileStore(*storeDir)
		if err != nil {
			return err
		}
		defer store.Close()
		opts = append(opts, collect.WithFileStore(store))
	}
	opts = append(opts, collect.WithLimits(collect.Limits{
		MaxLineBytes: *maxLineBytes,
		MaxRecords:   *maxRecords,
	}))
	var injector *faults.Injector
	if *faultSpec != "" {
		fcfg, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			return err
		}
		injector, err = faults.New(fcfg)
		if err != nil {
			return err
		}
		opts = append(opts, collect.WithServerFaults(injector))
		fmt.Fprintf(os.Stderr, "collectd: CHAOS MODE, injecting faults: %s\n", *faultSpec)
	}
	srv, err := collect.NewServer(*addr, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "collectd: listening on %s (%d bundles restored)\n", srv.Addr(), srv.Count())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintf(os.Stderr, "collectd: shutting down with %d bundles (%d lines quarantined)\n",
		srv.Count(), srv.QuarantineCount())
	if injector != nil {
		fmt.Fprintf(os.Stderr, "collectd: injected faults: %s\n", injector.Stats())
	}
	if err := srv.Close(); err != nil {
		return err
	}
	// Per-app dumps are independent files, so they fan out through the
	// pool; paths print serially afterwards to keep the log readable.
	appIDs := srv.Apps()
	paths, err := parallel.Map(*parallelism, len(appIDs), func(i int) (string, error) {
		path := filepath.Join(*out, appIDs[i]+".jsonl")
		if err := dump(path, srv.Bundles(appIDs[i])); err != nil {
			return "", fmt.Errorf("%s: %w", appIDs[i], err)
		}
		return path, nil
	})
	if err != nil {
		return err
	}
	for _, path := range paths {
		fmt.Fprintf(os.Stderr, "collectd: wrote %s\n", path)
	}
	return nil
}

func dump(path string, bundles []*trace.TraceBundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteBundles(f, bundles)
}
