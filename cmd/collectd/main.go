// Command collectd runs the EnergyDx trace-collection server. Phones
// (or cmd/tracegen) upload JSON-lines trace bundles over TCP; on
// shutdown (SIGINT/SIGTERM) the server dumps its stored corpus as one
// JSONL file per app.
//
// The -faults flag turns the server into a chaos rig: received lines
// are corrupted, truncated, duplicated, delayed or their connections
// dropped behind a seeded RNG, which exercises client retry and the
// server's quarantine exactly as an unreliable network would.
//
// The -debug-addr flag exposes the observability surface: /metrics
// (Prometheus text, ?format=json for expvar JSON), /healthz, /readyz,
// /debug/vars and the net/http/pprof suite. /readyz flips to 503 the
// moment a shutdown signal arrives, so a load balancer drains the
// instance before the listener closes.
//
// The -serve-analysis flag turns the collector into an online
// diagnosis service: accepted bundles feed per-app incremental
// analyzers (Step-1 results cached by content key), re-analysis is
// debounced behind upload bursts, and the latest report per app is
// served under /analysis/ on the debug mux — versioned (strong ETag,
// If-None-Match/304, ?wait= long-poll), with a snapshot history ring,
// a live SSE update stream and read-only what-if re-analysis:
//
//	curl http://127.0.0.1:7601/analysis/apps
//	curl http://127.0.0.1:7601/analysis/report?app=k9mail
//	curl -N http://127.0.0.1:7601/analysis/events
//	curl 'http://127.0.0.1:7601/analysis/whatif?app=k9mail&fence=2'
//
// The same service backs the embedded operator dashboard at /ui/ —
// fleet overview with live SSE row updates, per-app power-vs-rank
// charts with manifestation windows and the amplitude fence, snapshot
// history and what-if knobs. All debug-mux traffic is instrumented
// with per-endpoint request counters and latency histograms.
//
// For fleet-scale ingest, -shards N splits the listener into N
// in-process shards behind a hash(appID) router, each owning its apps'
// store partition and analyzers, and -store-format seg switches the
// durable store to the segmented binary log with group commit
// (fsyncs are amortized across concurrent uploads). In sharded mode
// the analysis surface is served through a fanout that delegates
// app-scoped endpoints to the owning shard.
//
// Usage:
//
//	collectd -addr 127.0.0.1:7600 -out ./corpora
//	collectd -store ./store -faults 'corrupt=0.1,drop=0.05,seed=7'
//	collectd -debug-addr 127.0.0.1:7601 -serve-analysis
//	collectd -shards 4 -store ./store -store-format seg
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/collect"
	"repro/internal/collect/seglog"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/ui"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:7600", "listen address")
		out          = flag.String("out", ".", "directory for per-app corpus dumps on shutdown")
		storeDir     = flag.String("store", "", "durable store directory: bundles are persisted as they arrive and reloaded on restart")
		storeFormat  = flag.String("store-format", "jsonl", "durable store format: 'jsonl' (one JSONL file per app, one fsync per bundle) or 'seg' (segmented binary log with group commit — the fleet-scale format)")
		shards       = flag.Int("shards", 1, "in-process ingest shards partitioned by hash(appID) behind a router; each shard owns its apps' store partition and analyzers (1 = single server, no router)")
		parallelism  = flag.Int("parallelism", 0, "worker count for the shutdown corpus dump (0 = GOMAXPROCS, 1 = serial)")
		faultSpec    = flag.String("faults", "", "chaos fault injection on received lines, e.g. 'corrupt=0.1,truncate=0.05,duplicate=0.1,drop=0.05,delay=0.2,seed=7'")
		maxLineBytes = flag.Int("max-line-bytes", 0, "reject serialized bundles over this size (0 = default 16 MiB)")
		maxRecords   = flag.Int("max-records", 0, "reject bundles with more event records than this (0 = default)")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics, /healthz, /readyz, /debug/vars and /debug/pprof on this address ('' = disabled)")
		serveAnal    = flag.Bool("serve-analysis", false, "incrementally re-analyze ingested bundles and serve the latest per-app report under /analysis/ on -debug-addr")
		analDebounce = flag.Duration("analysis-debounce", 500*time.Millisecond, "quiet period after the last upload before a dirty app is re-analyzed")
		analCache    = flag.Int("analysis-cache", 0, "per-app Step-1 result cache capacity in bundles (0 = default)")
		logLevel     = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat    = flag.String("log-format", "text", "log output format: text|json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)

	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", *shards)
	}
	if *storeFormat != "jsonl" && *storeFormat != "seg" {
		return fmt.Errorf("unknown -store-format %q (want jsonl or seg)", *storeFormat)
	}
	newStore := func(dir string) (collect.Store, error) {
		if *storeFormat == "seg" {
			return collect.NewSegStore(dir, seglog.Options{})
		}
		return collect.NewFileStore(dir)
	}

	var injector *faults.Injector
	if *faultSpec != "" {
		fcfg, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			return err
		}
		injector, err = faults.New(fcfg)
		if err != nil {
			return err
		}
		logger.Warn("CHAOS MODE: injecting faults on received lines", "spec", *faultSpec)
	}
	// baseOpts are the options every ingest server (the single one, or
	// each shard) runs with; store and analysis hook are added per shard.
	baseOpts := func() []collect.ServerOption {
		o := []collect.ServerOption{collect.WithLimits(collect.Limits{
			MaxLineBytes: *maxLineBytes,
			MaxRecords:   *maxRecords,
		})}
		if injector != nil {
			o = append(o, collect.WithServerFaults(injector))
		}
		return o
	}

	// One serving layer per shard: each owns exactly its shard's apps, so
	// the analysis partition mirrors the ingest partition. The HTTP
	// surface is re-unified below (directly, or through serve.Fanout).
	var svcs []*serve.Service
	if *serveAnal {
		if *debugAddr == "" {
			return errors.New("-serve-analysis requires -debug-addr (reports are served on the debug mux)")
		}
		svcs = make([]*serve.Service, *shards)
		for i := range svcs {
			svc, err := serve.New(serve.Config{
				Analysis: core.DefaultConfig(),
				CacheCap: *analCache,
				Debounce: *analDebounce,
				Logger:   logger,
			})
			if err != nil {
				return err
			}
			defer svc.Close()
			svcs[i] = svc
		}
	}

	health := obs.NewHealth()
	var debug *obs.DebugServer
	if *debugAddr != "" {
		mux := obs.DebugMux(obs.Default, health)
		paths := "/metrics /healthz /readyz /debug/vars /debug/pprof"
		switch {
		case len(svcs) == 1:
			mux.Handle("/analysis/", svcs[0].Handler())
			paths += " /analysis"
			dash, err := ui.New(svcs[0], obs.Default)
			if err != nil {
				return err
			}
			mux.Handle("/ui/", dash.Handler())
			mux.Handle("/ui", dash.Handler())
			paths += " /ui"
		case len(svcs) > 1:
			fan, err := serve.NewFanout(svcs...)
			if err != nil {
				return err
			}
			mux.Handle("/analysis/", fan.Handler())
			paths += " /analysis"
			logger.Info("sharded analysis surface: app-scoped endpoints delegate to the owning shard; /analysis/events and /ui are single-shard only")
		}
		// Per-endpoint request counters and latency histograms over the
		// whole debug surface (dashboard and SSE stream included).
		debug, err = obs.ServeDebug(*debugAddr, obs.Default.InstrumentHTTP(mux, nil))
		if err != nil {
			return err
		}
		defer debug.Close()
		logger.Info("debug endpoints up", "addr", debug.Addr(), "paths", paths)
	}

	// ingestServer is the surface shared by the single server and the
	// sharded router, so startup/shutdown below handle both.
	type ingestServer interface {
		Addr() string
		Close() error
		Stats() collect.ServerStats
		Count() int
		QuarantineCount() int
		Apps() []string
		Bundles(appID string) []*trace.TraceBundle
	}
	var srv ingestServer
	var stores []collect.Store
	defer func() {
		for _, st := range stores {
			st.Close()
		}
	}()
	shardOpts := func(i int) ([]collect.ServerOption, error) {
		o := baseOpts()
		if *storeDir != "" {
			dir := *storeDir
			if *shards > 1 {
				dir = filepath.Join(dir, fmt.Sprintf("shard-%d", i))
			}
			store, err := newStore(dir)
			if err != nil {
				return nil, err
			}
			stores = append(stores, store)
			o = append(o, collect.WithStore(store))
		}
		if len(svcs) > 0 {
			o = append(o, collect.WithIngestHook(svcs[i].Notify))
		}
		return o, nil
	}
	if *shards == 1 {
		opts, err := shardOpts(0)
		if err != nil {
			return err
		}
		srv, err = collect.NewServer(*addr, opts...)
		if err != nil {
			return err
		}
	} else {
		var buildErr error
		ss, err := collect.NewShardedServer(*addr, *shards, func(i int) []collect.ServerOption {
			o, err := shardOpts(i)
			if err != nil && buildErr == nil {
				buildErr = err
			}
			return o
		})
		if buildErr != nil {
			return buildErr
		}
		if err != nil {
			return err
		}
		srv = ss
	}
	// Warm the analysis services from the restored stores so reports are
	// available before the first new upload arrives. Each app warms the
	// service of the shard that owns it — the same partition the router
	// enforces for live traffic.
	if len(svcs) > 0 && srv.Count() > 0 {
		for _, app := range srv.Apps() {
			svc := svcs[collect.ShardOf(app, *shards)]
			for _, b := range srv.Bundles(app) {
				svc.Notify(b)
			}
		}
		for _, svc := range svcs {
			svc.Flush()
		}
		logger.Info("analysis warmed from restored store", "bundles", srv.Count())
	}
	health.SetReady(true)
	logger.Info("listening", "addr", srv.Addr(), "restored_bundles", srv.Count(),
		"shards", *shards, "store_format", *storeFormat)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	// Drain: flip the health endpoints before touching the listener so
	// load balancers stop routing, then close and wait for in-flight
	// handlers.
	health.ShuttingDown()
	preClose := srv.Stats()
	logger.Info("shutdown signal received", "signal", got.String(),
		"bundles", srv.Count(), "quarantined", srv.QuarantineCount(),
		"connections_inflight", preClose.ConnsOpen)
	start := time.Now()
	if err := srv.Close(); err != nil {
		return err
	}
	st := srv.Stats()
	logger.Info("drained",
		"connections_drained", preClose.ConnsOpen,
		"connections_total", st.ConnsTotal,
		"drain_elapsed", time.Since(start).Round(time.Millisecond),
		"accepted", st.Accepted, "duplicated", st.Duplicated,
		"quarantined", st.Quarantined, "bytes_ingested", st.BytesIngested)
	if injector != nil {
		logger.Info("injected faults", "stats", injector.Stats().String())
	}
	// Per-app dumps are independent files, so they fan out through the
	// pool; paths log serially afterwards to keep the output readable.
	appIDs := srv.Apps()
	type dumpStat struct {
		path    string
		bundles int
	}
	dumps, err := parallel.Map(*parallelism, len(appIDs), func(i int) (dumpStat, error) {
		bundles := srv.Bundles(appIDs[i])
		path := filepath.Join(*out, appIDs[i]+".jsonl")
		if err := dump(path, bundles); err != nil {
			return dumpStat{}, fmt.Errorf("%s: %w", appIDs[i], err)
		}
		return dumpStat{path: path, bundles: len(bundles)}, nil
	})
	if err != nil {
		return err
	}
	flushed := 0
	for _, d := range dumps {
		flushed += d.bundles
		logger.Info("wrote corpus dump", "path", d.path, "bundles", d.bundles)
	}
	logger.Info("shutdown complete", "apps_flushed", len(dumps), "bundles_flushed", flushed)
	return nil
}

func dump(path string, bundles []*trace.TraceBundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteBundles(f, bundles)
}
