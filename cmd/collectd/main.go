// Command collectd runs the EnergyDx trace-collection server. Phones
// (or cmd/tracegen) upload JSON-lines trace bundles over TCP; on
// shutdown (SIGINT/SIGTERM) the server dumps its stored corpus as one
// JSONL file per app.
//
// Usage:
//
//	collectd -addr 127.0.0.1:7600 -out ./corpora
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/collect"
	"repro/internal/parallel"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:7600", "listen address")
		out         = flag.String("out", ".", "directory for per-app corpus dumps on shutdown")
		storeDir    = flag.String("store", "", "durable store directory: bundles are persisted as they arrive and reloaded on restart")
		parallelism = flag.Int("parallelism", 0, "worker count for the shutdown corpus dump (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	var opts []collect.ServerOption
	if *storeDir != "" {
		store, err := collect.NewFileStore(*storeDir)
		if err != nil {
			return err
		}
		defer store.Close()
		opts = append(opts, collect.WithFileStore(store))
	}
	srv, err := collect.NewServer(*addr, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "collectd: listening on %s (%d bundles restored)\n", srv.Addr(), srv.Count())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintf(os.Stderr, "collectd: shutting down with %d bundles\n", srv.Count())
	if err := srv.Close(); err != nil {
		return err
	}
	// Per-app dumps are independent files, so they fan out through the
	// pool; paths print serially afterwards to keep the log readable.
	appIDs := srv.Apps()
	paths, err := parallel.Map(*parallelism, len(appIDs), func(i int) (string, error) {
		path := filepath.Join(*out, appIDs[i]+".jsonl")
		if err := dump(path, srv.Bundles(appIDs[i])); err != nil {
			return "", fmt.Errorf("%s: %w", appIDs[i], err)
		}
		return path, nil
	})
	if err != nil {
		return err
	}
	for _, path := range paths {
		fmt.Fprintf(os.Stderr, "collectd: wrote %s\n", path)
	}
	return nil
}

func dump(path string, bundles []*trace.TraceBundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteBundles(f, bundles)
}
