// Command collectd runs the EnergyDx trace-collection server. Phones
// (or cmd/tracegen) upload JSON-lines trace bundles over TCP; on
// shutdown (SIGINT/SIGTERM) the server dumps its stored corpus as one
// JSONL file per app.
//
// The -faults flag turns the server into a chaos rig: received lines
// are corrupted, truncated, duplicated, delayed or their connections
// dropped behind a seeded RNG, which exercises client retry and the
// server's quarantine exactly as an unreliable network would.
//
// The -debug-addr flag exposes the observability surface: /metrics
// (Prometheus text, ?format=json for expvar JSON), /healthz, /readyz,
// /debug/vars and the net/http/pprof suite. /readyz flips to 503 the
// moment a shutdown signal arrives, so a load balancer drains the
// instance before the listener closes.
//
// The -serve-analysis flag turns the collector into an online
// diagnosis service: accepted bundles feed per-app incremental
// analyzers (Step-1 results cached by content key), re-analysis is
// debounced behind upload bursts, and the latest report per app is
// served under /analysis/ on the debug mux — versioned (strong ETag,
// If-None-Match/304, ?wait= long-poll), with a snapshot history ring,
// a live SSE update stream and read-only what-if re-analysis:
//
//	curl http://127.0.0.1:7601/analysis/apps
//	curl http://127.0.0.1:7601/analysis/report?app=k9mail
//	curl -N http://127.0.0.1:7601/analysis/events
//	curl 'http://127.0.0.1:7601/analysis/whatif?app=k9mail&fence=2'
//
// The same service backs the embedded operator dashboard at /ui/ —
// fleet overview with live SSE row updates, per-app power-vs-rank
// charts with manifestation windows and the amplitude fence, snapshot
// history and what-if knobs. All debug-mux traffic is instrumented
// with per-endpoint request counters and latency histograms.
//
// Usage:
//
//	collectd -addr 127.0.0.1:7600 -out ./corpora
//	collectd -store ./store -faults 'corrupt=0.1,drop=0.05,seed=7'
//	collectd -debug-addr 127.0.0.1:7601 -serve-analysis
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/ui"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:7600", "listen address")
		out          = flag.String("out", ".", "directory for per-app corpus dumps on shutdown")
		storeDir     = flag.String("store", "", "durable store directory: bundles are persisted as they arrive and reloaded on restart")
		parallelism  = flag.Int("parallelism", 0, "worker count for the shutdown corpus dump (0 = GOMAXPROCS, 1 = serial)")
		faultSpec    = flag.String("faults", "", "chaos fault injection on received lines, e.g. 'corrupt=0.1,truncate=0.05,duplicate=0.1,drop=0.05,delay=0.2,seed=7'")
		maxLineBytes = flag.Int("max-line-bytes", 0, "reject serialized bundles over this size (0 = default 16 MiB)")
		maxRecords   = flag.Int("max-records", 0, "reject bundles with more event records than this (0 = default)")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics, /healthz, /readyz, /debug/vars and /debug/pprof on this address ('' = disabled)")
		serveAnal    = flag.Bool("serve-analysis", false, "incrementally re-analyze ingested bundles and serve the latest per-app report under /analysis/ on -debug-addr")
		analDebounce = flag.Duration("analysis-debounce", 500*time.Millisecond, "quiet period after the last upload before a dirty app is re-analyzed")
		analCache    = flag.Int("analysis-cache", 0, "per-app Step-1 result cache capacity in bundles (0 = default)")
		logLevel     = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat    = flag.String("log-format", "text", "log output format: text|json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)

	var opts []collect.ServerOption
	if *storeDir != "" {
		store, err := collect.NewFileStore(*storeDir)
		if err != nil {
			return err
		}
		defer store.Close()
		opts = append(opts, collect.WithFileStore(store))
	}
	opts = append(opts, collect.WithLimits(collect.Limits{
		MaxLineBytes: *maxLineBytes,
		MaxRecords:   *maxRecords,
	}))
	var injector *faults.Injector
	if *faultSpec != "" {
		fcfg, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			return err
		}
		injector, err = faults.New(fcfg)
		if err != nil {
			return err
		}
		opts = append(opts, collect.WithServerFaults(injector))
		logger.Warn("CHAOS MODE: injecting faults on received lines", "spec", *faultSpec)
	}

	var svc *serve.Service
	if *serveAnal {
		if *debugAddr == "" {
			return errors.New("-serve-analysis requires -debug-addr (reports are served on the debug mux)")
		}
		svc, err = serve.New(serve.Config{
			Analysis: core.DefaultConfig(),
			CacheCap: *analCache,
			Debounce: *analDebounce,
			Logger:   logger,
		})
		if err != nil {
			return err
		}
		defer svc.Close()
		opts = append(opts, collect.WithIngestHook(svc.Notify))
	}

	health := obs.NewHealth()
	var debug *obs.DebugServer
	if *debugAddr != "" {
		mux := obs.DebugMux(obs.Default, health)
		paths := "/metrics /healthz /readyz /debug/vars /debug/pprof"
		if svc != nil {
			mux.Handle("/analysis/", svc.Handler())
			paths += " /analysis"
			dash, err := ui.New(svc, obs.Default)
			if err != nil {
				return err
			}
			mux.Handle("/ui/", dash.Handler())
			mux.Handle("/ui", dash.Handler())
			paths += " /ui"
		}
		// Per-endpoint request counters and latency histograms over the
		// whole debug surface (dashboard and SSE stream included).
		debug, err = obs.ServeDebug(*debugAddr, obs.Default.InstrumentHTTP(mux, nil))
		if err != nil {
			return err
		}
		defer debug.Close()
		logger.Info("debug endpoints up", "addr", debug.Addr(), "paths", paths)
	}

	srv, err := collect.NewServer(*addr, opts...)
	if err != nil {
		return err
	}
	// Warm the analysis service from the restored store so reports are
	// available before the first new upload arrives.
	if svc != nil && srv.Count() > 0 {
		for _, app := range srv.Apps() {
			for _, b := range srv.Bundles(app) {
				svc.Notify(b)
			}
		}
		svc.Flush()
		logger.Info("analysis warmed from restored store", "bundles", srv.Count())
	}
	health.SetReady(true)
	logger.Info("listening", "addr", srv.Addr(), "restored_bundles", srv.Count())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	// Drain: flip the health endpoints before touching the listener so
	// load balancers stop routing, then close and wait for in-flight
	// handlers.
	health.ShuttingDown()
	preClose := srv.Stats()
	logger.Info("shutdown signal received", "signal", got.String(),
		"bundles", srv.Count(), "quarantined", srv.QuarantineCount(),
		"connections_inflight", preClose.ConnsOpen)
	start := time.Now()
	if err := srv.Close(); err != nil {
		return err
	}
	st := srv.Stats()
	logger.Info("drained",
		"connections_drained", preClose.ConnsOpen,
		"connections_total", st.ConnsTotal,
		"drain_elapsed", time.Since(start).Round(time.Millisecond),
		"accepted", st.Accepted, "duplicated", st.Duplicated,
		"quarantined", st.Quarantined, "bytes_ingested", st.BytesIngested)
	if injector != nil {
		logger.Info("injected faults", "stats", injector.Stats().String())
	}
	// Per-app dumps are independent files, so they fan out through the
	// pool; paths log serially afterwards to keep the output readable.
	appIDs := srv.Apps()
	type dumpStat struct {
		path    string
		bundles int
	}
	dumps, err := parallel.Map(*parallelism, len(appIDs), func(i int) (dumpStat, error) {
		bundles := srv.Bundles(appIDs[i])
		path := filepath.Join(*out, appIDs[i]+".jsonl")
		if err := dump(path, bundles); err != nil {
			return dumpStat{}, fmt.Errorf("%s: %w", appIDs[i], err)
		}
		return dumpStat{path: path, bundles: len(bundles)}, nil
	})
	if err != nil {
		return err
	}
	flushed := 0
	for _, d := range dumps {
		flushed += d.bundles
		logger.Info("wrote corpus dump", "path", d.path, "bundles", d.bundles)
	}
	logger.Info("shutdown complete", "apps_flushed", len(dumps), "bundles_flushed", flushed)
	return nil
}

func dump(path string, bundles []*trace.TraceBundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteBundles(f, bundles)
}
