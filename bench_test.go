// Package repro's benchmark harness regenerates every table and figure
// of the paper (one benchmark per artifact, delegating to
// internal/experiments) and adds ablation benchmarks for the design
// choices called out in DESIGN.md §5. Headline numbers are attached to
// each benchmark via ReportMetric so `go test -bench` output doubles as
// the paper-vs-measured record.
package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/instrument"
	"repro/internal/trace"
	"repro/internal/workload"
)

const benchSeed = 2020

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string, metric func(experiments.Result) (float64, string)) {
	b.Helper()
	run, _, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := run(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if metric != nil && last != nil {
		v, unit := metric(last)
		b.ReportMetric(v, unit)
	}
}

// --- One benchmark per paper artifact -------------------------------

func BenchmarkFig1EventDistance(b *testing.B) {
	benchExperiment(b, "fig1", func(r experiments.Result) (float64, string) {
		return r.(*experiments.Fig1Result).P90, "p90-events"
	})
}

func BenchmarkFig3K9PowerTrace(b *testing.B) {
	benchExperiment(b, "fig3", func(r experiments.Result) (float64, string) {
		res := r.(*experiments.Fig3Result)
		if res.MeanBeforeMW == 0 {
			return 0, "power-ratio"
		}
		return res.MeanAfterMW / res.MeanBeforeMW, "power-ratio"
	})
}

func BenchmarkFig7K9Diagnosis(b *testing.B) {
	benchExperiment(b, "fig7", func(r experiments.Result) (float64, string) {
		return float64(r.(*experiments.Fig7Result).NormManifestations), "points"
	})
}

func BenchmarkTable2K9Report(b *testing.B) {
	benchExperiment(b, "table2", func(r experiments.Result) (float64, string) {
		return float64(r.(*experiments.Table2Result).DiagnosisLines), "lines"
	})
}

func BenchmarkTable3AllApps(b *testing.B) {
	benchExperiment(b, "table3", func(r experiments.Result) (float64, string) {
		return r.(*experiments.Table3Result).AverageMeas, "pct-reduction"
	})
}

func BenchmarkBaselineComparison(b *testing.B) {
	benchExperiment(b, "baselines", func(r experiments.Result) (float64, string) {
		return r.(*experiments.BaselinesResult).EnergyDxAvg, "pct-reduction"
	})
}

func BenchmarkOpenGPSDiagnosis(b *testing.B) {
	benchExperiment(b, "opengps", func(r experiments.Result) (float64, string) {
		return float64(r.(*experiments.CaseStudyResult).DiagnosisLines), "lines"
	})
}

func BenchmarkFig11OpenGPSBreakdown(b *testing.B) {
	benchExperiment(b, "fig11", func(r experiments.Result) (float64, string) {
		return r.(*experiments.BreakdownResult).MeanTotalMW, "mW"
	})
}

func BenchmarkWallabagDiagnosis(b *testing.B) {
	benchExperiment(b, "wallabag", func(r experiments.Result) (float64, string) {
		return float64(r.(*experiments.CaseStudyResult).DiagnosisLines), "lines"
	})
}

func BenchmarkFig14WallabagBreakdown(b *testing.B) {
	benchExperiment(b, "fig14", func(r experiments.Result) (float64, string) {
		return r.(*experiments.BreakdownResult).MeanTotalMW, "mW"
	})
}

func BenchmarkTinfoilDiagnosis(b *testing.B) {
	benchExperiment(b, "tinfoil", func(r experiments.Result) (float64, string) {
		return float64(r.(*experiments.CaseStudyResult).DiagnosisLines), "lines"
	})
}

func BenchmarkFig16CodeReduction(b *testing.B) {
	benchExperiment(b, "fig16", func(r experiments.Result) (float64, string) {
		return r.(*experiments.Fig16Result).CheckAvgLines, "checkall-lines"
	})
}

func BenchmarkFig17PowerReduction(b *testing.B) {
	benchExperiment(b, "fig17", func(r experiments.Result) (float64, string) {
		return r.(*experiments.Fig17Result).AvgDropPct, "pct-drop"
	})
}

func BenchmarkInstrumentationOverhead(b *testing.B) {
	benchExperiment(b, "overheads", func(r experiments.Result) (float64, string) {
		return r.(*experiments.OverheadsResult).LatencyOverheadPct, "pct-latency"
	})
}

// --- Ablations (DESIGN.md §5) ----------------------------------------

// k9Corpus caches one corpus for the ablation benchmarks.
func k9Corpus(b *testing.B) (*apps.App, *workload.Result) {
	b.Helper()
	app, err := apps.K9Mail()
	if err != nil {
		b.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, benchSeed)
	cfg.Users = 20
	cfg.ImpactedFraction = 0.2
	corpus, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return app, corpus
}

// ablate runs the analysis with a modified configuration and reports the
// resulting code reduction and detection recall.
func ablate(b *testing.B, app *apps.App, corpus *workload.Result, mutate func(*core.Config)) {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.DeveloperImpactPercent = corpus.ImpactedPercent
	mutate(&cfg)
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var report *core.Report
	for i := 0; i < b.N; i++ {
		report, err = analyzer.Analyze(corpus.Bundles)
		if err != nil {
			b.Fatal(err)
		}
	}
	cr, err := core.ComputeCodeReduction(report, app.Package(), 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(cr.Reduction*100, "pct-reduction")
	b.ReportMetric(float64(report.ImpactedTraces), "impacted-traces")
}

func BenchmarkAblationNormBase(b *testing.B) {
	app, corpus := k9Corpus(b)
	for _, pct := range []float64{5, 10, 25, 50} {
		b.Run(name("p", pct), func(b *testing.B) {
			ablate(b, app, corpus, func(c *core.Config) { c.NormBasePercentile = pct })
		})
	}
}

func BenchmarkAblationFence(b *testing.B) {
	app, corpus := k9Corpus(b)
	for _, k := range []float64{1.5, 3, 4.5, 6} {
		b.Run(name("k", k), func(b *testing.B) {
			ablate(b, app, corpus, func(c *core.Config) { c.FenceMultiplier = k })
		})
	}
}

func BenchmarkAblationWindow(b *testing.B) {
	app, corpus := k9Corpus(b)
	for _, w := range []int{0, 1, 2, 4, 8} {
		b.Run(name("w", float64(w)), func(b *testing.B) {
			ablate(b, app, corpus, func(c *core.Config) { c.WindowEvents = w })
		})
	}
}

func BenchmarkAblationMinAmplitude(b *testing.B) {
	app, corpus := k9Corpus(b)
	for _, a := range []float64{0, 0.25, 0.5, 1, 2} {
		b.Run(name("a", a), func(b *testing.B) {
			ablate(b, app, corpus, func(c *core.Config) { c.MinAmplitude = a })
		})
	}
}

func BenchmarkAblationAmplitude(b *testing.B) {
	app, corpus := k9Corpus(b)
	b.Run("monotone-run", func(b *testing.B) {
		ablate(b, app, corpus, func(c *core.Config) { c.SingleStepAmplitude = false })
	})
	b.Run("single-step", func(b *testing.B) {
		ablate(b, app, corpus, func(c *core.Config) { c.SingleStepAmplitude = true })
	})
}

func BenchmarkAblationSampling(b *testing.B) {
	app, err := apps.K9Mail()
	if err != nil {
		b.Fatal(err)
	}
	for _, period := range []int64{250, 500, 1000, 2000} {
		b.Run(name("ms", float64(period)), func(b *testing.B) {
			cfg := workload.DefaultConfig(app, benchSeed)
			cfg.Users = 20
			cfg.ImpactedFraction = 0.2
			cfg.SamplePeriodMS = period
			corpus, err := workload.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			ablate(b, app, corpus, func(c *core.Config) {})
		})
	}
}

// name builds a stable sub-benchmark name like "k=1.5" or "w=2".
func name(prefix string, v float64) string {
	return prefix + "=" + strconv.FormatFloat(v, 'f', -1, 64)
}

// --- Pipeline micro-benchmarks ---------------------------------------

// BenchmarkAnalyzePipeline measures raw 5-step analysis throughput on a
// fixed 20-user corpus (no workload generation in the loop).
func BenchmarkAnalyzePipeline(b *testing.B) {
	_, corpus := k9Corpus(b)
	cfg := core.DefaultConfig()
	cfg.DeveloperImpactPercent = corpus.ImpactedPercent
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyzer.Analyze(corpus.Bundles); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeParallelism compares the serial pipeline against the
// pooled fan-out (Steps 1-4) on the same fixed corpus. Reports are
// byte-identical either way; only the wall clock differs.
func BenchmarkAnalyzeParallelism(b *testing.B) {
	_, corpus := k9Corpus(b)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.DeveloperImpactPercent = corpus.ImpactedPercent
			cfg.Parallelism = bc.workers
			analyzer, err := core.NewAnalyzer(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := analyzer.Analyze(corpus.Bundles); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Parallelism compares the full 40-app Table III sweep
// serial vs pooled. The corpus cache is flushed every iteration so both
// variants pay the same (cold) generation cost.
func BenchmarkTable3Parallelism(b *testing.B) {
	defer experiments.SetParallelism(0)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			experiments.SetParallelism(bc.workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				workload.FlushCache()
				if _, err := experiments.RunTable3(benchSeed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloadGeneration measures corpus simulation throughput.
func BenchmarkWorkloadGeneration(b *testing.B) {
	app, err := apps.ByAppID("tinfoil")
	if err != nil {
		b.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, benchSeed)
	cfg.Users = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrumenter measures the APK instrumentation pipeline on the
// 98k-line K-9 package.
func BenchmarkInstrumenter(b *testing.B) {
	app, err := apps.K9Mail()
	if err != nil {
		b.Fatal(err)
	}
	pool := instrument.DefaultPool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := instrument.Instrument(app.Package(), pool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckAllBaseline measures the CheckAll baseline on a corpus.
func BenchmarkCheckAllBaseline(b *testing.B) {
	_, corpus := k9Corpus(b)
	cfg := baseline.DefaultCheckAllConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.CheckAll(cfg, corpus.Bundles); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceTextCodec measures the Fig-5 text round trip on a
// realistic session trace.
func BenchmarkTraceTextCodec(b *testing.B) {
	_, corpus := k9Corpus(b)
	ev := corpus.Bundles[0].Event
	text := ev.Text()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadText(strings.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}
