package repro

import (
	"os"
	"testing"

	"repro/internal/experiments"
)

// The accuracy gate pins the evaluation story of the scenario ×
// detector matrix: EnergyDx must dominate every baseline on overall
// detection accuracy and code reduction, and each baseline's published
// blind spot must keep reproducing (a blind spot that silently heals
// means the scenario generator stopped exercising it). The gate is
// opt-in (a full matrix run costs a few seconds) and enforced in CI:
//
//	ACCURACY_GATE=1 go test -run TestAccuracyGate .
const accuracyGateSeed = 2020

func TestAccuracyGate(t *testing.T) {
	if os.Getenv("ACCURACY_GATE") == "" {
		t.Skip("set ACCURACY_GATE=1 to run the scenario × detector accuracy gate")
	}
	res, err := experiments.RunMatrix(accuracyGateSeed)
	if err != nil {
		t.Fatal(err)
	}
	m := res.(*experiments.MatrixResult)

	dx := m.OverallFor("EnergyDx")
	if dx == nil {
		t.Fatal("matrix has no EnergyDx overall row")
	}
	if dx.Accuracy.Mean < 100 {
		t.Errorf("EnergyDx overall accuracy %.1f%%, want 100%% on every injected scenario", dx.Accuracy.Mean)
	}
	for _, det := range experiments.MatrixDetectors {
		if det == "EnergyDx" {
			continue
		}
		ov := m.OverallFor(det)
		if ov == nil {
			t.Fatalf("matrix has no overall row for %s", det)
		}
		if dx.Accuracy.Mean < ov.Accuracy.Mean {
			t.Errorf("EnergyDx overall accuracy %.1f%% below %s's %.1f%%",
				dx.Accuracy.Mean, det, ov.Accuracy.Mean)
		}
		if dx.Reduction.Mean < ov.Reduction.Mean {
			t.Errorf("EnergyDx overall code reduction %.1f%% below %s's %.1f%%",
				dx.Reduction.Mean, det, ov.Reduction.Mean)
		}
	}

	// Per-family dominance: no baseline beats EnergyDx on any scenario.
	for _, fam := range m.Families {
		dxCell := m.Cell(fam, "EnergyDx")
		if dxCell == nil {
			t.Fatalf("no EnergyDx cell for family %s", fam)
		}
		for _, det := range experiments.MatrixDetectors {
			c := m.Cell(fam, det)
			if c == nil {
				t.Fatalf("no %s cell for family %s", det, fam)
			}
			if dxCell.Accuracy.Mean < c.Accuracy.Mean {
				t.Errorf("%s: EnergyDx accuracy %.1f%% below %s's %.1f%%",
					fam, dxCell.Accuracy.Mean, det, c.Accuracy.Mean)
			}
		}
	}

	// Blind spots. eDelta's absolute power-deviation threshold misses
	// weak-but-long drains: the tail-energy family's cellular holds sit
	// below its DeviationThresholdMW, so its accuracy there must stay 0.
	if c := m.Cell("tail-energy", "eDelta"); c == nil {
		t.Error("matrix lost the tail-energy family")
	} else if c.Accuracy.Mean != 0 {
		t.Errorf("eDelta detects tail-energy at %.1f%%; the weak-but-long blind spot stopped reproducing", c.Accuracy.Mean)
	}

	// No-sleep Detection only sees statically acquire-shaped leaks; the
	// families without a matching acquire/release pair must stay invisible.
	for _, fam := range []string{"loop", "configuration", "media-stream", "sync-storm", "tail-energy"} {
		c := m.Cell(fam, "No-sleep")
		if c == nil {
			t.Errorf("matrix lost the %s family", fam)
			continue
		}
		if c.Accuracy.Mean != 0 {
			t.Errorf("No-sleep Detection flags %s at %.1f%%; its static blind spot stopped reproducing", fam, c.Accuracy.Mean)
		}
	}

	// eDoctor's app-level verdict names no code, so its code reduction is
	// 0% by the paper's accounting, everywhere.
	if ov := m.OverallFor("eDoctor"); ov != nil && ov.Reduction.Mean != 0 {
		t.Errorf("eDoctor overall code reduction %.1f%%, want 0%% (app-level verdicts name no code)", ov.Reduction.Mean)
	}
}
