package repro

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/revision"
	"repro/internal/trace"
	"repro/internal/workload"
)

// sweepEntry is one timed configuration in the machine-readable sweep.
// The memstats fields are whole-run runtime.MemStats deltas around the
// measurement (including warm-up iterations), recording the GC pressure
// each configuration generates rather than per-op averages alone.
type sweepEntry struct {
	Name           string  `json:"name"`
	Workers        int     `json:"workers"` // 0 = GOMAXPROCS
	CorpusSize     int     `json:"corpusSize,omitempty"`
	Iterations     int     `json:"iterations"`
	NsPerOp        int64   `json:"nsPerOp"`
	AllocsPerOp    int64   `json:"allocsPerOp"`
	BytesPerOp     int64   `json:"bytesPerOp"`
	TotalAllocB    uint64  `json:"totalAllocBytes"`
	NumGC          uint32  `json:"numGC"`
	GCPauseNs      uint64  `json:"gcPauseTotalNs"`
	Speedup        float64 `json:"speedupVsSerial,omitempty"`
	SpeedupVsBatch float64 `json:"speedupVsBatch,omitempty"`
	SpeedupVsInc   float64 `json:"speedupVsIncremental,omitempty"`
	CacheHitRate   float64 `json:"cacheHitRate,omitempty"`
	// Ingest-path entries (the group-commit benchmark) report
	// throughput and durability amortization instead of allocations.
	QPS             float64 `json:"qps,omitempty"`
	FsyncsPerBundle float64 `json:"fsyncsPerBundle,omitempty"`
}

// growthFit is a fitted power law ns/op ~ N^exponent over one entry
// family measured at several corpus sizes: the least-squares slope of
// log(ns/op) against log(N). An exponent near 0 means per-ingest cost
// is flat in corpus size; 1 means linear.
type growthFit struct {
	Name     string  `json:"name"`
	Sizes    []int   `json:"sizes"`
	NsPerOp  []int64 `json:"nsPerOp"`
	Exponent float64 `json:"exponent"`
}

// revisionsSweep is the version-diff engine's evaluation block: culprit
// detection and gate behavior over seeded regression chains, and the
// cross-version cache-reuse evidence (ISSUE 9 acceptance records both
// here).
type revisionsSweep struct {
	RegressionChains  int     `json:"regressionChains"`
	Detected          int     `json:"detected"`
	DetectionAccuracy float64 `json:"detectionAccuracy"`
	GateCaught        int     `json:"gateCaught"`
	CleanChains       int     `json:"cleanChains"`
	CleanHops         int     `json:"cleanHops"`
	FalseTrips        int     `json:"falseTrips"`
	// MeanSharedFraction is how much of each version's corpus the
	// delta-fed analyzer carried over unchanged from the parent;
	// RevisitCacheHitRate is the Step-1 cache hit rate when a chain is
	// revisited (revert/bisect access pattern).
	MeanSharedFraction  float64 `json:"meanSharedFraction"`
	RevisitCacheHitRate float64 `json:"revisitCacheHitRate"`
	RevisitChains       int     `json:"revisitChains"`
}

// fleetSweep is the fleet benchmark's BENCH_sweep block: the sharded
// ingest path (router → hashed shards → group-commit log → per-shard
// incremental analysis) measured end to end (ISSUE 10 acceptance
// records QPS, ack latency, fsync amortization and report staleness
// here).
type fleetSweep struct {
	Sessions        int     `json:"sessions"`
	Apps            int     `json:"apps"`
	Shards          int     `json:"shards"`
	Uploaders       int     `json:"uploaders"`
	ElapsedNs       int64   `json:"elapsedNs"`
	QPS             float64 `json:"qps"`
	AckP50Ns        int64   `json:"ackP50Ns"`
	AckP99Ns        int64   `json:"ackP99Ns"`
	FsyncsPerBundle float64 `json:"fsyncsPerBundle"`
	StalenessP50Ns  int64   `json:"stalenessP50Ns"`
	StalenessP99Ns  int64   `json:"stalenessP99Ns"`
	AnalyzedApps    int     `json:"analyzedApps"`
}

// sweepReport is the BENCH_sweep.json document.
type sweepReport struct {
	GoVersion  string          `json:"goVersion"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numCPU"`
	Seed       int64           `json:"seed"`
	Entries    []sweepEntry    `json:"entries"`
	Growth     []growthFit     `json:"growth,omitempty"`
	Revisions  *revisionsSweep `json:"revisions,omitempty"`
	Fleet      *fleetSweep     `json:"fleet,omitempty"`
}

// timeOne runs fn under testing.Benchmark and records per-op stats plus
// whole-run runtime.MemStats deltas (including warm-up iterations).
func timeOne(name string, workers int, fn func(b *testing.B)) sweepEntry {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res := testing.Benchmark(fn)
	runtime.ReadMemStats(&after)
	return sweepEntry{
		Name:        name,
		Workers:     workers,
		Iterations:  res.N,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		TotalAllocB: after.TotalAlloc - before.TotalAlloc,
		NumGC:       after.NumGC - before.NumGC,
		GCPauseNs:   after.PauseTotalNs - before.PauseTotalNs,
	}
}

// TestBenchSweepJSON times the analysis pipeline and the full Table III
// sweep serial vs pooled and writes the results as JSON to the path in
// BENCH_SWEEP_OUT. Skipped when the variable is unset, so it costs
// nothing in a normal `go test` run. Regenerate the checked-in file
// with:
//
//	BENCH_SWEEP_OUT=BENCH_sweep.json go test -run TestBenchSweepJSON .
func TestBenchSweepJSON(t *testing.T) {
	out := os.Getenv("BENCH_SWEEP_OUT")
	if out == "" {
		t.Skip("set BENCH_SWEEP_OUT=<path> to emit the timing sweep")
	}
	report := sweepReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       benchSeed,
	}

	app, err := apps.K9Mail()
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, benchSeed)
	cfg.Users = 20
	cfg.ImpactedFraction = 0.2
	corpus, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	analyzeBench := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			acfg := core.DefaultConfig()
			acfg.DeveloperImpactPercent = corpus.ImpactedPercent
			acfg.Parallelism = workers
			analyzer, err := core.NewAnalyzer(acfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := analyzer.Analyze(corpus.Bundles); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	table3Bench := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			experiments.SetParallelism(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				workload.FlushCache()
				if _, err := experiments.RunTable3(benchSeed); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	defer experiments.SetParallelism(0)

	pairs := []struct {
		serial, parallel sweepEntry
	}{
		{
			timeOne("analyze/serial", 1, analyzeBench(1)),
			timeOne("analyze/parallel", 0, analyzeBench(0)),
		},
		{
			timeOne("table3/serial", 1, table3Bench(1)),
			timeOne("table3/parallel", 0, table3Bench(0)),
		},
	}
	for _, p := range pairs {
		if p.parallel.NsPerOp > 0 {
			p.parallel.Speedup = float64(p.serial.NsPerOp) / float64(p.parallel.NsPerOp)
		}
		report.Entries = append(report.Entries, p.serial, p.parallel)
	}

	// Pool serial fast path: at GOMAXPROCS=1 the "parallel" analyze
	// configuration resolves to one effective worker and must degenerate
	// to a plain loop. Before parallel.ForEach grew its fast path this
	// sat at 0.83x serial (per-task gauge/histogram instrumentation);
	// fail the sweep if that regression comes back.
	if runtime.GOMAXPROCS(0) == 1 && pairs[0].parallel.NsPerOp > 0 {
		speedup := float64(pairs[0].serial.NsPerOp) / float64(pairs[0].parallel.NsPerOp)
		if speedup < 0.9 {
			t.Errorf("analyze/parallel at GOMAXPROCS=1 runs at %.2fx serial, want >= 0.9x (pool serial fast path regressed)", speedup)
		}
	}

	// Per-stage allocation profile: each of the four pipeline stages in
	// isolation (serial), matching the allocation gate's entries.
	stageCfg := core.DefaultConfig()
	stageCfg.DeveloperImpactPercent = corpus.ImpactedPercent
	stageCfg.Parallelism = 1
	sb, err := core.NewStageBench(stageCfg, corpus.Bundles)
	if err != nil {
		t.Fatal(err)
	}
	stageBench := func(fn func() error) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	report.Entries = append(report.Entries,
		timeOne("stage/step1", 1, stageBench(sb.StepOne)),
		timeOne("stage/rank", 1, stageBench(sb.RankAndBase)),
		timeOne("stage/normalize", 1, stageBench(func() error { sb.Normalize(); return nil })),
		timeOne("stage/detect", 1, stageBench(sb.Detect)),
	)

	// Incremental engine: re-analysis after one bundle joins an
	// already-analyzed corpus. Batch redoes Step 1 for all N bundles;
	// the sublinear engine does Step-1 work only for the bundle that
	// changed — a single add costs at most one content-keyed cache
	// lookup, regardless of corpus size.
	incCfg := core.DefaultConfig()
	incCfg.DeveloperImpactPercent = corpus.ImpactedPercent
	n := len(corpus.Bundles)
	inc, err := core.NewIncrementalAnalyzer(incCfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, bd := range corpus.Bundles[:n-1] {
		inc.Add(bd)
	}
	if _, err := inc.Report(); err != nil {
		t.Fatal(err)
	}
	before := inc.CacheStats()
	inc.Add(corpus.Bundles[n-1])
	if _, err := inc.Report(); err != nil {
		t.Fatal(err)
	}
	after := inc.CacheStats()
	if dl := after.Lookups - before.Lookups; dl > 1 {
		t.Fatalf("single-add re-analysis did %d Step-1 cache lookups, want <= 1: Step-1 work is not O(1) per ingest", dl)
	}

	incBench := func(b *testing.B) {
		inc, err := core.NewIncrementalAnalyzer(incCfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, bd := range corpus.Bundles[:n-1] {
			inc.Add(bd)
		}
		if _, err := inc.Report(); err != nil {
			b.Fatal(err)
		}
		last := corpus.Bundles[n-1]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key, _ := inc.Add(last)
			if _, err := inc.Report(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			inc.Remove(key)
			inc.Refresh() // apply the retraction now, or the next Add would cancel it
			b.StartTimer()
		}
	}
	batchEntry := timeOne("reanalyze-after-add/batch", 0, analyzeBench(0))
	incEntry := timeOne("reanalyze-after-add/incremental", 0, incBench)
	lifetime := inc.CacheStats()
	if lifetime.Lookups > 0 {
		incEntry.CacheHitRate = float64(lifetime.Hits) / float64(lifetime.Lookups)
	}
	if incEntry.NsPerOp > 0 {
		incEntry.SpeedupVsBatch = float64(batchEntry.NsPerOp) / float64(incEntry.NsPerOp)
	}
	report.Entries = append(report.Entries, batchEntry, incEntry)

	// Corpus-size sweep: summary maintenance (sublinear) vs full report
	// materialization (incremental) at 100 / 1k / 10k bundles, with
	// fitted growth exponents. The sublinear exponent is the headline
	// claim: per-ingest cost must stay ~O(log N).
	sweepEntries, fits := reanalyzeSweep(t, sweepSizes)
	report.Entries = append(report.Entries, sweepEntries...)
	report.Growth = fits

	// Version-chain walk: one delta-fed incremental analyzer across the
	// whole chain vs a fresh batch Analyze per version. Both stay
	// byte-identical (the differential battery pins that); this records
	// the wall-clock ratio. Note the delta walk does NOT win here: with
	// ~40% of bundles changing per hop, the Step-1 work it skips is
	// smaller than the extra cost of materializing each version's report
	// from the order-statistic summaries (Ω(N), ~5x a batch pass — see
	// the reanalyze-after-add/incremental growth entries). The engine's
	// wins are single-bundle churn and revisit/bisect reuse, recorded
	// above and in the revisions block below.
	report.Entries = append(report.Entries, revisionChainBench(t)...)

	// Evaluation block: culprit detection accuracy and gate behavior
	// over seeded regression + clean chains (same sweep the REVISION_GATE
	// CI job enforces floors on).
	revRes, err := experiments.RunRevisions(benchSeed)
	if err != nil {
		t.Fatal(err)
	}
	rr := revRes.(*experiments.RevisionsResult)
	report.Revisions = &revisionsSweep{
		RegressionChains:    rr.RegressionChains,
		Detected:            rr.Detected,
		DetectionAccuracy:   rr.DetectionAccuracy(),
		GateCaught:          rr.GateCaught,
		CleanChains:         rr.CleanChains,
		CleanHops:           rr.CleanHops,
		FalseTrips:          rr.FalseTrips,
		MeanSharedFraction:  rr.MeanShared,
		RevisitCacheHitRate: rr.MeanRevisitRate,
		RevisitChains:       rr.RevisitChains,
	}

	// Fleet-scale ingest: the group-commit log vs the per-bundle-Sync
	// store under the standard 64-uploader load, then the whole sharded
	// fleet (router, shards, per-shard analysis) end to end. The same
	// helpers back TestFleetGate's CI floors.
	report.Entries = append(report.Entries, ingestSweepEntries(t)...)
	report.Fleet, _ = fleetSweepBlock(t, benchSeed)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// sweepSizes are the corpus sizes (sessions ~= bundles) the re-analysis
// growth sweep measures. Shared with TestSublinearGate.
var sweepSizes = []int{100, 1000, 10000}

// sweepCorpus generates a corpus of n light sessions (few browse
// phases, coarse utilization sampling) so the 10k-bundle point stays
// cheap to build while exercising the same event-key population.
func sweepCorpus(tb testing.TB, users int) []*trace.TraceBundle {
	tb.Helper()
	app, err := apps.K9Mail()
	if err != nil {
		tb.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, benchSeed)
	cfg.Users = users
	cfg.ImpactedFraction = 0.2
	cfg.BrowsePhases = 3
	cfg.SamplePeriodMS = 2000
	corpus, err := workload.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return corpus.Bundles
}

// reanalyzeSweep times single-bundle churn against steady-state corpora
// of each size and fits growth exponents across sizes:
//
//   - reanalyze-after-add/sublinear/N: Add + Refresh + Remove + Refresh —
//     pure summary maintenance, the O(E log N) ingest path. The new
//     bundle's own diagnosis (Steps 2-4) is complete when Refresh
//     returns; no corpus-wide report is materialized.
//   - reanalyze-after-add/incremental/N: Add + Report + (untimed-free)
//     Remove + Refresh — the full re-analysis a serving layer runs to
//     publish a refreshed report, which is Ω(N) because the report
//     itself is O(N) bytes.
//
// Used by both TestBenchSweepJSON (records the numbers) and
// TestSublinearGate (fails CI when the sublinear exponent regresses).
func reanalyzeSweep(tb testing.TB, sizes []int) ([]sweepEntry, []growthFit) {
	tb.Helper()
	var entries []sweepEntry
	ns := make([]int, 0, len(sizes))
	subNs := make([]int64, 0, len(sizes))
	incNs := make([]int64, 0, len(sizes))
	for _, size := range sizes {
		bundles := sweepCorpus(tb, size)
		n := len(bundles)
		extra := bundles[n-1]
		build := func() *core.IncrementalAnalyzer {
			inc, err := core.NewIncrementalAnalyzer(core.DefaultConfig(), 0)
			if err != nil {
				tb.Fatal(err)
			}
			for _, b := range bundles[:n-1] {
				inc.Add(b)
			}
			inc.Refresh()
			if _, err := inc.Report(); err != nil {
				tb.Fatal(err)
			}
			// One warm-up churn cycle so the extra bundle's Step-1
			// result is in the content-keyed cache before timing.
			key, _ := inc.Add(extra)
			inc.Refresh()
			inc.Remove(key)
			inc.Refresh()
			return inc
		}

		subInc := build()
		sub := timeOne(fmt.Sprintf("reanalyze-after-add/sublinear/%d", n), 1, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key, _ := subInc.Add(extra)
				subInc.Refresh()
				subInc.Remove(key)
				subInc.Refresh()
			}
		})
		sub.CorpusSize = n

		incInc := build()
		inc := timeOne(fmt.Sprintf("reanalyze-after-add/incremental/%d", n), 1, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key, _ := incInc.Add(extra)
				if _, err := incInc.Report(); err != nil {
					b.Fatal(err)
				}
				incInc.Remove(key)
				incInc.Refresh()
			}
		})
		inc.CorpusSize = n

		if sub.NsPerOp > 0 {
			sub.SpeedupVsInc = float64(inc.NsPerOp) / float64(sub.NsPerOp)
		}
		entries = append(entries, sub, inc)
		ns = append(ns, n)
		subNs = append(subNs, sub.NsPerOp)
		incNs = append(incNs, inc.NsPerOp)
	}
	fits := []growthFit{
		{Name: "reanalyze-after-add/sublinear", Sizes: ns, NsPerOp: subNs, Exponent: fitGrowthExponent(ns, subNs)},
		{Name: "reanalyze-after-add/incremental", Sizes: ns, NsPerOp: incNs, Exponent: fitGrowthExponent(ns, incNs)},
	}
	return entries, fits
}

// revisionChainBench times walking one regression chain (4 versions,
// hold regression at v2, benign rewires elsewhere) two ways: a fresh
// batch Analyze per version vs a single delta-fed incremental analyzer
// syncing add/remove deltas between versions. The delta entry records
// the walk's cross-version Step-1 cache hit rate (0 on a pure forward
// walk — shared bundles are never re-looked-up, only re-added ones).
func revisionChainBench(tb testing.TB) []sweepEntry {
	tb.Helper()
	app, err := apps.K9Mail()
	if err != nil {
		tb.Fatal(err)
	}
	ccfg := revision.ChainConfig{
		App: app, Versions: 4, Seed: benchSeed,
		RegressionAt: 2, Kind: revision.KindHold, Rewires: true,
	}
	chain, err := revision.GenerateChain(ccfg)
	if err != nil {
		tb.Fatal(err)
	}
	corpora, err := revision.ChainCorpora(chain, ccfg, revision.CorpusConfig{Users: 12, Seed: 7, Cached: true})
	if err != nil {
		tb.Fatal(err)
	}
	acfg := core.DefaultConfig()

	batch := timeOne("revision-chain/batch", 1, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, bundles := range corpora {
				analyzer, err := core.NewAnalyzer(acfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := analyzer.Analyze(bundles); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	var hits, lookups int64
	delta := timeOne("revision-chain/delta", 1, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, err := revision.NewAnalyzer(revision.AnalyzeConfig{Core: acfg})
			if err != nil {
				b.Fatal(err)
			}
			for v, bundles := range corpora {
				if _, err := a.AnalyzeVersion(v, bundles); err != nil {
					b.Fatal(err)
				}
			}
			st := a.CacheStats()
			hits, lookups = st.Hits, st.Lookups
		}
	})
	if lookups > 0 {
		delta.CacheHitRate = float64(hits) / float64(lookups)
	}
	if delta.NsPerOp > 0 {
		delta.SpeedupVsBatch = float64(batch.NsPerOp) / float64(delta.NsPerOp)
	}
	return []sweepEntry{batch, delta}
}

// fitGrowthExponent returns the least-squares slope of log(ns/op)
// against log(corpus size): the exponent of the best-fit power law.
func fitGrowthExponent(sizes []int, nsPerOp []int64) float64 {
	var sx, sy, sxx, sxy float64
	n := float64(len(sizes))
	for i := range sizes {
		x := math.Log(float64(sizes[i]))
		y := math.Log(float64(nsPerOp[i]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
