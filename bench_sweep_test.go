package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// sweepEntry is one timed configuration in the machine-readable sweep.
// The memstats fields are whole-run runtime.MemStats deltas around the
// measurement (including warm-up iterations), recording the GC pressure
// each configuration generates rather than per-op averages alone.
type sweepEntry struct {
	Name           string  `json:"name"`
	Workers        int     `json:"workers"` // 0 = GOMAXPROCS
	Iterations     int     `json:"iterations"`
	NsPerOp        int64   `json:"nsPerOp"`
	AllocsPerOp    int64   `json:"allocsPerOp"`
	BytesPerOp     int64   `json:"bytesPerOp"`
	TotalAllocB    uint64  `json:"totalAllocBytes"`
	NumGC          uint32  `json:"numGC"`
	GCPauseNs      uint64  `json:"gcPauseTotalNs"`
	Speedup        float64 `json:"speedupVsSerial,omitempty"`
	SpeedupVsBatch float64 `json:"speedupVsBatch,omitempty"`
	CacheHitRate   float64 `json:"cacheHitRate,omitempty"`
}

// sweepReport is the BENCH_sweep.json document.
type sweepReport struct {
	GoVersion  string       `json:"goVersion"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numCPU"`
	Seed       int64        `json:"seed"`
	Entries    []sweepEntry `json:"entries"`
}

// TestBenchSweepJSON times the analysis pipeline and the full Table III
// sweep serial vs pooled and writes the results as JSON to the path in
// BENCH_SWEEP_OUT. Skipped when the variable is unset, so it costs
// nothing in a normal `go test` run. Regenerate the checked-in file
// with:
//
//	BENCH_SWEEP_OUT=BENCH_sweep.json go test -run TestBenchSweepJSON .
func TestBenchSweepJSON(t *testing.T) {
	out := os.Getenv("BENCH_SWEEP_OUT")
	if out == "" {
		t.Skip("set BENCH_SWEEP_OUT=<path> to emit the timing sweep")
	}
	report := sweepReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       benchSeed,
	}

	app, err := apps.K9Mail()
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, benchSeed)
	cfg.Users = 20
	cfg.ImpactedFraction = 0.2
	corpus, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	timeOne := func(name string, workers int, fn func(b *testing.B)) sweepEntry {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res := testing.Benchmark(fn)
		runtime.ReadMemStats(&after)
		return sweepEntry{
			Name:        name,
			Workers:     workers,
			Iterations:  res.N,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			TotalAllocB: after.TotalAlloc - before.TotalAlloc,
			NumGC:       after.NumGC - before.NumGC,
			GCPauseNs:   after.PauseTotalNs - before.PauseTotalNs,
		}
	}
	analyzeBench := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			acfg := core.DefaultConfig()
			acfg.DeveloperImpactPercent = corpus.ImpactedPercent
			acfg.Parallelism = workers
			analyzer, err := core.NewAnalyzer(acfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := analyzer.Analyze(corpus.Bundles); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	table3Bench := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			experiments.SetParallelism(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				workload.FlushCache()
				if _, err := experiments.RunTable3(benchSeed); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	defer experiments.SetParallelism(0)

	pairs := []struct {
		serial, parallel sweepEntry
	}{
		{
			timeOne("analyze/serial", 1, analyzeBench(1)),
			timeOne("analyze/parallel", 0, analyzeBench(0)),
		},
		{
			timeOne("table3/serial", 1, table3Bench(1)),
			timeOne("table3/parallel", 0, table3Bench(0)),
		},
	}
	for _, p := range pairs {
		if p.parallel.NsPerOp > 0 {
			p.parallel.Speedup = float64(p.serial.NsPerOp) / float64(p.parallel.NsPerOp)
		}
		report.Entries = append(report.Entries, p.serial, p.parallel)
	}

	// Per-stage allocation profile: each of the four pipeline stages in
	// isolation (serial), matching the allocation gate's entries.
	stageCfg := core.DefaultConfig()
	stageCfg.DeveloperImpactPercent = corpus.ImpactedPercent
	stageCfg.Parallelism = 1
	sb, err := core.NewStageBench(stageCfg, corpus.Bundles)
	if err != nil {
		t.Fatal(err)
	}
	stageBench := func(fn func() error) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	report.Entries = append(report.Entries,
		timeOne("stage/step1", 1, stageBench(sb.StepOne)),
		timeOne("stage/rank", 1, stageBench(sb.RankAndBase)),
		timeOne("stage/normalize", 1, stageBench(func() error { sb.Normalize(); return nil })),
		timeOne("stage/detect", 1, stageBench(sb.Detect)),
	)

	// Incremental engine: re-analysis after one bundle joins an
	// already-analyzed corpus. Batch redoes Step 1 for all N bundles;
	// incremental serves N-1 from the content-keyed cache and computes
	// exactly one, so its per-report hit rate must be >= (N-1)/N.
	incCfg := core.DefaultConfig()
	incCfg.DeveloperImpactPercent = corpus.ImpactedPercent
	n := len(corpus.Bundles)
	inc, err := core.NewIncrementalAnalyzer(incCfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, bd := range corpus.Bundles[:n-1] {
		inc.Add(bd)
	}
	if _, err := inc.Report(); err != nil {
		t.Fatal(err)
	}
	before := inc.CacheStats()
	inc.Add(corpus.Bundles[n-1])
	if _, err := inc.Report(); err != nil {
		t.Fatal(err)
	}
	after := inc.CacheStats()
	hitRate := float64(after.Hits-before.Hits) / float64(after.Lookups-before.Lookups)
	if want := float64(n-1) / float64(n); hitRate < want {
		t.Fatalf("single-add re-analysis hit rate %.4f < (N-1)/N = %.4f: Step-1 work is not O(1)", hitRate, want)
	}

	incBench := func(b *testing.B) {
		inc, err := core.NewIncrementalAnalyzer(incCfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, bd := range corpus.Bundles[:n-1] {
			inc.Add(bd)
		}
		if _, err := inc.Report(); err != nil {
			b.Fatal(err)
		}
		last := corpus.Bundles[n-1]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key, _ := inc.Add(last)
			if _, err := inc.Report(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			inc.Remove(key) // next iteration re-adds; cache entry survives
			b.StartTimer()
		}
	}
	batchEntry := timeOne("reanalyze-after-add/batch", 0, analyzeBench(0))
	incEntry := timeOne("reanalyze-after-add/incremental", 0, incBench)
	incEntry.CacheHitRate = hitRate
	if incEntry.NsPerOp > 0 {
		incEntry.SpeedupVsBatch = float64(batchEntry.NsPerOp) / float64(incEntry.NsPerOp)
	}
	report.Entries = append(report.Entries, batchEntry, incEntry)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
