package evaluate

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/workload"
)

func labelledCorpus(t *testing.T, appID string, seed int64) TrainingSet {
	t.Helper()
	app, err := apps.ByAppID(appID)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, seed)
	cfg.Users = 12
	cfg.ImpactedFraction = 0.25
	res, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return TrainingSet{Bundles: res.Bundles, ImpactedUsers: res.ImpactedUsers}
}

func TestScoreArithmetic(t *testing.T) {
	report := &core.Report{Traces: []*core.AnalyzedTrace{
		{UserID: "a", Manifestations: []int{1}}, // TP
		{UserID: "b", Manifestations: []int{2}}, // FP
		{UserID: "c"},                           // FN
		{UserID: "d"},                           // TN
	}}
	q := Score(report, map[string]bool{"a": true, "c": true})
	if q.TruePositives != 1 || q.FalsePositives != 1 || q.FalseNegatives != 1 || q.TrueNegatives != 1 {
		t.Fatalf("confusion = %+v", q)
	}
	if q.Precision != 0.5 || q.Recall != 0.5 || q.F1 != 0.5 {
		t.Errorf("metrics = %+v", q)
	}
}

func TestScoreDegenerate(t *testing.T) {
	// No detections at all: precision undefined -> 0, recall 0, F1 0.
	report := &core.Report{Traces: []*core.AnalyzedTrace{{UserID: "a"}}}
	q := Score(report, map[string]bool{"a": true})
	if q.Precision != 0 || q.Recall != 0 || q.F1 != 0 {
		t.Errorf("degenerate metrics = %+v", q)
	}
}

func TestScoreOnRealDiagnosis(t *testing.T) {
	set := labelledCorpus(t, "opengps", 5)
	analyzer, err := core.NewAnalyzer(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	report, err := analyzer.Analyze(set.Bundles)
	if err != nil {
		t.Fatal(err)
	}
	q := Score(report, set.ImpactedUsers)
	// The defaults should classify this strong GPS leak near-perfectly.
	if q.F1 < 0.8 {
		t.Errorf("F1 = %.2f (%+v)", q.F1, q)
	}
}

func TestTuneRanksPaperDefaultsHighly(t *testing.T) {
	sets := []TrainingSet{
		labelledCorpus(t, "opengps", 5),
		labelledCorpus(t, "tinfoil", 6),
	}
	candidates, err := Tune(sets, TuneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(candidates) != 12 { // 4 percentiles x 3 fences
		t.Fatalf("candidates = %d", len(candidates))
	}
	best := candidates[0]
	if best.MeanF1 < 0.8 {
		t.Errorf("best candidate F1 = %.2f: tuning found nothing usable", best.MeanF1)
	}
	// Sorted descending by F1.
	for i := 1; i < len(candidates); i++ {
		if candidates[i].MeanF1 > candidates[i-1].MeanF1 {
			t.Errorf("candidates not sorted at %d", i)
		}
	}
	// The paper's published operating point must be competitive: within
	// the top half of the grid.
	for i, c := range candidates {
		if c.NormBasePercentile == 10 && c.FenceMultiplier == 3 {
			if i >= len(candidates)/2 {
				t.Errorf("paper defaults ranked %d of %d (F1 %.2f)", i+1, len(candidates), c.MeanF1)
			}
			return
		}
	}
	t.Error("paper defaults missing from the grid")
}

func TestTuneValidation(t *testing.T) {
	if _, err := Tune(nil, TuneOptions{}); err == nil {
		t.Error("empty training set accepted")
	}
	set := labelledCorpus(t, "tinfoil", 7)
	bad := TuneOptions{NormBasePercentiles: []float64{200}}
	if _, err := Tune([]TrainingSet{set}, bad); err == nil {
		t.Error("invalid percentile candidate accepted")
	}
}

func TestSingleStepAmplitudeAblation(t *testing.T) {
	// A gradually manifesting drain: the monotone-run amplitude must
	// produce a larger peak amplitude than the single-step variant.
	norm := []float64{1, 1, 1.5, 2.2, 3.1, 4.4, 4.4, 4.4}
	run := core.VariationAmplitudes(norm)
	single := core.SingleStepAmplitudes(norm)
	maxRun, maxSingle := 0.0, 0.0
	for i := range norm {
		if run[i] > maxRun {
			maxRun = run[i]
		}
		if single[i] > maxSingle {
			maxSingle = single[i]
		}
	}
	if maxRun <= maxSingle {
		t.Errorf("monotone-run max %.2f <= single-step max %.2f", maxRun, maxSingle)
	}
	if diff := maxRun - 3.4; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("run amplitude = %v, want full rise 3.4", maxRun)
	}
}
