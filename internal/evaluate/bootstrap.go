package evaluate

import (
	"math"
	"math/rand"
	"sort"
)

// Interval is a two-sided confidence interval around a sample mean.
type Interval struct {
	Mean float64 `json:"mean"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies inside the interval (inclusive).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// BootstrapCI estimates a percentile-bootstrap confidence interval for
// the mean of values. confidence is the two-sided coverage (e.g. 0.95),
// resamples the number of bootstrap replicates, and seed drives the
// resampling RNG, so a fixed (values, confidence, resamples, seed)
// tuple always yields the same interval — the matrix experiment depends
// on that for byte-identical output across runs.
//
// Degenerate inputs collapse sensibly: an empty corpus returns the zero
// Interval; a single value or an all-same corpus returns Lo == Mean ==
// Hi (zero width), since every resample is identical.
func BootstrapCI(values []float64, confidence float64, resamples int, seed int64) Interval {
	if len(values) == 0 {
		return Interval{}
	}
	mean := meanOf(values)
	iv := Interval{Mean: mean, Lo: mean, Hi: mean}
	if len(values) == 1 || allSame(values) || resamples <= 0 {
		return iv
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}

	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	sample := make([]float64, len(values))
	for r := 0; r < resamples; r++ {
		for i := range sample {
			sample[i] = values[rng.Intn(len(values))]
		}
		means[r] = meanOf(sample)
	}
	sort.Float64s(means)

	alpha := (1 - confidence) / 2
	iv.Lo = percentileSorted(means, alpha)
	iv.Hi = percentileSorted(means, 1-alpha)
	return iv
}

func meanOf(values []float64) float64 {
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

func allSame(values []float64) bool {
	for _, v := range values[1:] {
		if v != values[0] {
			return false
		}
	}
	return true
}

// percentileSorted returns the p-quantile (0 ≤ p ≤ 1) of a sorted
// slice, with linear interpolation between order statistics.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		lo = 0
	}
	if hi >= len(sorted) {
		hi = len(sorted) - 1
	}
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
