package evaluate

import (
	"math/rand"
	"testing"
)

func TestBootstrapCICoverage(t *testing.T) {
	// Draw corpora from a known distribution and check the 95% interval
	// contains the true mean at roughly its nominal rate. The RNG is
	// seeded, so this is a deterministic regression test, not a flaky
	// statistical one.
	rng := rand.New(rand.NewSource(42))
	const trials = 200
	trueMean := 5.0
	covered := 0
	for trial := 0; trial < trials; trial++ {
		values := make([]float64, 30)
		for i := range values {
			values[i] = trueMean + rng.NormFloat64()*2
		}
		iv := BootstrapCI(values, 0.95, 500, int64(trial))
		if iv.Lo > iv.Mean || iv.Hi < iv.Mean {
			t.Fatalf("trial %d: interval [%v, %v] excludes its own mean %v", trial, iv.Lo, iv.Hi, iv.Mean)
		}
		if iv.Contains(trueMean) {
			covered++
		}
	}
	// Nominal 95%; allow slack for small-sample bootstrap undercoverage.
	if covered < trials*85/100 {
		t.Errorf("true mean covered in %d/%d trials, want >= 85%%", covered, trials)
	}
	if covered == trials {
		t.Errorf("true mean covered in all %d trials; interval suspiciously wide", trials)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	if iv := BootstrapCI(nil, 0.95, 100, 1); iv != (Interval{}) {
		t.Errorf("empty corpus interval = %+v, want zero", iv)
	}
	iv := BootstrapCI([]float64{7.5}, 0.95, 100, 1)
	if iv.Mean != 7.5 || iv.Lo != 7.5 || iv.Hi != 7.5 {
		t.Errorf("single value interval = %+v, want degenerate at 7.5", iv)
	}
	iv = BootstrapCI([]float64{3, 3, 3, 3, 3}, 0.95, 100, 1)
	if iv.Mean != 3 || iv.Lo != 3 || iv.Hi != 3 || iv.Width() != 0 {
		t.Errorf("all-same corpus interval = %+v, want zero width at 3", iv)
	}
	// Resamples <= 0 degrades to the point estimate rather than panicking.
	iv = BootstrapCI([]float64{1, 2, 3}, 0.95, 0, 1)
	if iv.Lo != iv.Mean || iv.Hi != iv.Mean {
		t.Errorf("zero-resample interval = %+v, want degenerate", iv)
	}
}

func TestBootstrapCISeedStability(t *testing.T) {
	values := []float64{0.91, 0.84, 0.97, 0.88, 0.93, 0.79, 0.95}
	a := BootstrapCI(values, 0.95, 2000, 1234)
	b := BootstrapCI(values, 0.95, 2000, 1234)
	if a != b {
		t.Errorf("same seed gave different intervals: %+v vs %+v", a, b)
	}
	c := BootstrapCI(values, 0.95, 2000, 5678)
	if a == c {
		t.Errorf("different seeds gave identical intervals %+v; RNG not wired through", a)
	}
	// Different seeds must still agree closely on a well-behaved corpus.
	if d := c.Lo - a.Lo; d > 0.05 || d < -0.05 {
		t.Errorf("seed-to-seed Lo drift %v too large (a=%+v c=%+v)", d, a, c)
	}
	if a.Lo >= a.Hi {
		t.Errorf("non-degenerate corpus produced empty interval %+v", a)
	}
	if !a.Contains(a.Mean) {
		t.Errorf("interval %+v excludes its own mean", a)
	}
}
