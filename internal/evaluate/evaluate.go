// Package evaluate scores an EnergyDx diagnosis against the workload
// simulator's ground truth and tunes analysis parameters on labelled
// training corpora.
//
// The paper leaves two calibration knobs open: "the selection of power
// value at the 10th percentile gives us good experimental results, but
// this value can be adjusted for different training sets" (Step 3), and
// the fence parameters "are decided through experiments" (Step 4). The
// simulator knows exactly which users triggered the ABD, so this
// package implements that training loop: classify traces by whether a
// manifestation point was detected, score precision/recall against the
// ground truth, and grid-search the knobs.
package evaluate

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Quality is the trace-classification quality of one diagnosis run:
// a true positive is an impacted trace with at least one detected
// manifestation point.
type Quality struct {
	TruePositives  int     `json:"truePositives"`
	FalsePositives int     `json:"falsePositives"`
	FalseNegatives int     `json:"falseNegatives"`
	TrueNegatives  int     `json:"trueNegatives"`
	Precision      float64 `json:"precision"`
	Recall         float64 `json:"recall"`
	F1             float64 `json:"f1"`
}

// Score classifies each analyzed trace (manifestation detected or not)
// against the ground-truth set of impacted user IDs.
func Score(report *core.Report, impactedUsers map[string]bool) Quality {
	var q Quality
	for _, at := range report.Traces {
		detected := len(at.Manifestations) > 0
		impacted := impactedUsers[at.UserID]
		switch {
		case detected && impacted:
			q.TruePositives++
		case detected && !impacted:
			q.FalsePositives++
		case !detected && impacted:
			q.FalseNegatives++
		default:
			q.TrueNegatives++
		}
	}
	if q.TruePositives+q.FalsePositives > 0 {
		q.Precision = float64(q.TruePositives) / float64(q.TruePositives+q.FalsePositives)
	}
	if q.TruePositives+q.FalseNegatives > 0 {
		q.Recall = float64(q.TruePositives) / float64(q.TruePositives+q.FalseNegatives)
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}

// TrainingSet is one labelled corpus.
type TrainingSet struct {
	Bundles       []*trace.TraceBundle
	ImpactedUsers map[string]bool
}

// Candidate is one parameterization with its aggregate score.
type Candidate struct {
	NormBasePercentile float64 `json:"normBasePercentile"`
	FenceMultiplier    float64 `json:"fenceMultiplier"`
	MinAmplitude       float64 `json:"minAmplitude"`
	MeanF1             float64 `json:"meanF1"`
}

// TuneOptions bounds the grid search.
type TuneOptions struct {
	// NormBasePercentiles to try (default 5, 10, 25, 50).
	NormBasePercentiles []float64
	// FenceMultipliers to try (default 1.5, 3, 4.5).
	FenceMultipliers []float64
	// MinAmplitudes to try (default just the base config's value).
	MinAmplitudes []float64
	// Base is the configuration every candidate starts from (default
	// core.DefaultConfig).
	Base *core.Config
	// Parallelism is the worker count for the grid search: each grid
	// cell scores independently, so cells fan out through the shared
	// pool (0 = GOMAXPROCS, 1 = serial). Scores are identical at any
	// worker count.
	Parallelism int
}

func (o *TuneOptions) defaults() {
	if len(o.NormBasePercentiles) == 0 {
		o.NormBasePercentiles = []float64{5, 10, 25, 50}
	}
	if len(o.FenceMultipliers) == 0 {
		o.FenceMultipliers = []float64{1.5, 3, 4.5}
	}
	if o.Base == nil {
		cfg := core.DefaultConfig()
		o.Base = &cfg
	}
	if len(o.MinAmplitudes) == 0 {
		o.MinAmplitudes = []float64{o.Base.MinAmplitude}
	}
}

// Tune grid-searches the Step-3 base percentile and Step-4 fence
// multiplier over labelled training corpora and returns every candidate
// sorted by mean F1 (best first). The best candidate is first.
func Tune(sets []TrainingSet, opts TuneOptions) ([]Candidate, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("evaluate: no training sets")
	}
	opts.defaults()
	// Materialize the grid, then fan the independent cells out through
	// the pool; results land in grid order, so the sorted candidate
	// list (and its tie-breaking) is identical at any worker count.
	type cell struct{ pct, k, amp float64 }
	var cells []cell
	for _, pct := range opts.NormBasePercentiles {
		for _, k := range opts.FenceMultipliers {
			for _, amp := range opts.MinAmplitudes {
				cells = append(cells, cell{pct, k, amp})
			}
		}
	}
	out, err := parallel.Map(opts.Parallelism, len(cells), func(c int) (Candidate, error) {
		pct, k, amp := cells[c].pct, cells[c].k, cells[c].amp
		cfg := *opts.Base
		cfg.NormBasePercentile = pct
		cfg.FenceMultiplier = k
		cfg.MinAmplitude = amp
		analyzer, err := core.NewAnalyzer(cfg)
		if err != nil {
			return Candidate{}, fmt.Errorf("evaluate: candidate p%.0f k%.1f a%.2f: %w", pct, k, amp, err)
		}
		var sum float64
		for i, set := range sets {
			report, err := analyzer.Analyze(set.Bundles)
			if err != nil {
				return Candidate{}, fmt.Errorf("evaluate: candidate p%.0f k%.1f a%.2f set %d: %w", pct, k, amp, i, err)
			}
			sum += Score(report, set.ImpactedUsers).F1
		}
		return Candidate{
			NormBasePercentile: pct,
			FenceMultiplier:    k,
			MinAmplitude:       amp,
			MeanF1:             sum / float64(len(sets)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].MeanF1 != out[b].MeanF1 {
			return out[a].MeanF1 > out[b].MeanF1
		}
		// Prefer the paper's defaults on ties, then stable order.
		da := tieBreak(out[a])
		db := tieBreak(out[b])
		if da != db {
			return da < db
		}
		if out[a].NormBasePercentile != out[b].NormBasePercentile {
			return out[a].NormBasePercentile < out[b].NormBasePercentile
		}
		if out[a].FenceMultiplier != out[b].FenceMultiplier {
			return out[a].FenceMultiplier < out[b].FenceMultiplier
		}
		return out[a].MinAmplitude < out[b].MinAmplitude
	})
	return out, nil
}

// tieBreak measures distance from the published/default operating point
// (p10, 3xIQR, amplitude floor 0.5).
func tieBreak(c Candidate) float64 {
	d := c.NormBasePercentile - 10
	if d < 0 {
		d = -d
	}
	k := c.FenceMultiplier - 3
	if k < 0 {
		k = -k
	}
	a := c.MinAmplitude - 0.5
	if a < 0 {
		a = -a
	}
	return d + 10*k + 10*a
}
