// Package device models smartphone hardware for the EnergyDx power
// estimation path: per-component power coefficients in the style of the
// utilization-based power model of Zhang et al. [20] ("Accurate online
// power estimation..."), plus the cross-device power-model scaling of
// Mittal et al. [22] that Step 1 of the paper applies so traces collected
// on heterogeneous volunteer phones become comparable.
//
// The coefficient values are representative of published smartphone power
// models (hundreds of mW for a saturated CPU, ~400 mW for a GPS fix,
// display power dominated by brightness); absolute accuracy does not
// matter for the reproduction because the manifestation analysis consumes
// *normalized* power.
package device

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Profile describes one phone model's power characteristics.
type Profile struct {
	// Name identifies the profile (e.g. "nexus6").
	Name string
	// BaseMW is the idle (suspended-screen-off) floor power of the whole
	// phone attributed to the app while it runs, in milliwatts.
	BaseMW float64
	// CoeffMW maps full (100%) utilization of each component to its power
	// draw in milliwatts. Power is linear in utilization, per [20].
	CoeffMW [trace.NumComponents]float64
}

// Coeff returns the full-utilization power of component c in mW.
func (p *Profile) Coeff(c trace.Component) float64 {
	i := int(c) - 1
	if i < 0 || i >= trace.NumComponents {
		return 0
	}
	return p.CoeffMW[i]
}

// setCoeff is a construction helper.
func (p *Profile) setCoeff(c trace.Component, mw float64) {
	i := int(c) - 1
	if i >= 0 && i < trace.NumComponents {
		p.CoeffMW[i] = mw
	}
}

// newProfile builds a profile from per-component coefficients.
func newProfile(name string, baseMW float64, coeffs map[trace.Component]float64) Profile {
	p := Profile{Name: name, BaseMW: baseMW}
	for c, mw := range coeffs {
		p.setCoeff(c, mw)
	}
	return p
}

// Nexus6 is the reference device: the paper measures EnergyDx overhead on
// a Nexus 6 with a Monsoon power monitor (§IV-F), so all scaled power is
// expressed in Nexus 6 terms.
func Nexus6() Profile {
	return newProfile("nexus6", 25, map[trace.Component]float64{
		trace.CPU:      900,
		trace.Display:  1100,
		trace.WiFi:     700,
		trace.Cellular: 850,
		trace.GPS:      420,
		trace.Audio:    180,
		trace.Sensor:   60,
	})
}

// Nexus5 models a slightly less power-hungry device.
func Nexus5() Profile {
	return newProfile("nexus5", 20, map[trace.Component]float64{
		trace.CPU:      750,
		trace.Display:  950,
		trace.WiFi:     620,
		trace.Cellular: 780,
		trace.GPS:      380,
		trace.Audio:    150,
		trace.Sensor:   55,
	})
}

// GalaxyS5 models a contemporary Samsung flagship.
func GalaxyS5() Profile {
	return newProfile("galaxys5", 30, map[trace.Component]float64{
		trace.CPU:      980,
		trace.Display:  1250,
		trace.WiFi:     730,
		trace.Cellular: 900,
		trace.GPS:      450,
		trace.Audio:    200,
		trace.Sensor:   70,
	})
}

// MotoG models a budget device with a small display and modest SoC.
func MotoG() Profile {
	return newProfile("motog", 15, map[trace.Component]float64{
		trace.CPU:      520,
		trace.Display:  700,
		trace.WiFi:     540,
		trace.Cellular: 650,
		trace.GPS:      330,
		trace.Audio:    120,
		trace.Sensor:   45,
	})
}

// XperiaZ3 models a Sony flagship with an efficient SoC.
func XperiaZ3() Profile {
	return newProfile("xperiaz3", 22, map[trace.Component]float64{
		trace.CPU:      800,
		trace.Display:  1050,
		trace.WiFi:     660,
		trace.Cellular: 820,
		trace.GPS:      400,
		trace.Audio:    170,
		trace.Sensor:   58,
	})
}

// LGG3 models an LG flagship with a QHD display (high display power).
func LGG3() Profile {
	return newProfile("lgg3", 28, map[trace.Component]float64{
		trace.CPU:      870,
		trace.Display:  1400,
		trace.WiFi:     690,
		trace.Cellular: 860,
		trace.GPS:      430,
		trace.Audio:    175,
		trace.Sensor:   62,
	})
}

// Registry resolves profile names to profiles. The zero value is unusable;
// construct with NewRegistry.
type Registry struct {
	profiles map[string]Profile
}

// NewRegistry returns a registry pre-populated with the built-in fleet of
// device profiles.
func NewRegistry() *Registry {
	r := &Registry{profiles: make(map[string]Profile, 8)}
	for _, p := range []Profile{Nexus6(), Nexus5(), GalaxyS5(), MotoG(), XperiaZ3(), LGG3()} {
		r.profiles[p.Name] = p
	}
	return r
}

// Register adds or replaces a profile.
func (r *Registry) Register(p Profile) {
	r.profiles[p.Name] = p
}

// Lookup returns the named profile.
func (r *Registry) Lookup(name string) (Profile, error) {
	p, ok := r.profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("device: unknown profile %q", name)
	}
	return p, nil
}

// Names lists registered profile names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.profiles))
	for n := range r.profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ScaleFactor returns the multiplicative factor that converts power
// measured on `from` into the reference device `to`'s terms, following
// the whole-model scaling approach of [22]: the ratio of the devices'
// total dynamic-range power (sum of component coefficients plus base).
// Scaling whole-app power by a single factor preserves the *shape* of the
// power trace, which is all the normalization-based analysis needs.
func ScaleFactor(from, to *Profile) float64 {
	fromTotal := from.BaseMW
	toTotal := to.BaseMW
	for i := 0; i < trace.NumComponents; i++ {
		fromTotal += from.CoeffMW[i]
		toTotal += to.CoeffMW[i]
	}
	if fromTotal == 0 {
		return 1
	}
	return toTotal / fromTotal
}
