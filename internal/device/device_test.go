package device

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func TestBuiltinProfilesHavePositiveCoefficients(t *testing.T) {
	for _, p := range []Profile{Nexus6(), Nexus5(), GalaxyS5(), MotoG(), XperiaZ3(), LGG3()} {
		if p.Name == "" {
			t.Error("profile with empty name")
		}
		if p.BaseMW <= 0 {
			t.Errorf("%s: base power %v <= 0", p.Name, p.BaseMW)
		}
		for _, c := range trace.Components() {
			if p.Coeff(c) <= 0 {
				t.Errorf("%s: coefficient for %v is %v", p.Name, c, p.Coeff(c))
			}
		}
	}
}

func TestCoeffUnknownComponent(t *testing.T) {
	p := Nexus6()
	if p.Coeff(trace.Component(0)) != 0 || p.Coeff(trace.Component(99)) != 0 {
		t.Error("unknown component should have 0 coefficient")
	}
}

func TestDisplayDominatesSensor(t *testing.T) {
	// Sanity ordering every published smartphone power model satisfies.
	for _, p := range []Profile{Nexus6(), Nexus5(), GalaxyS5(), MotoG(), XperiaZ3(), LGG3()} {
		if p.Coeff(trace.Display) <= p.Coeff(trace.Sensor) {
			t.Errorf("%s: display (%v) should exceed sensor (%v)",
				p.Name, p.Coeff(trace.Display), p.Coeff(trace.Sensor))
		}
		if p.Coeff(trace.CPU) <= p.Coeff(trace.GPS) {
			t.Errorf("%s: saturated CPU (%v) should exceed GPS (%v)",
				p.Name, p.Coeff(trace.CPU), p.Coeff(trace.GPS))
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	p, err := r.Lookup("nexus6")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "nexus6" {
		t.Errorf("got %q", p.Name)
	}
	if _, err := r.Lookup("iphone"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestRegistryRegisterAndNames(t *testing.T) {
	r := NewRegistry()
	custom := Profile{Name: "custom", BaseMW: 10}
	r.Register(custom)
	got, err := r.Lookup("custom")
	if err != nil || got.BaseMW != 10 {
		t.Errorf("Lookup(custom) = %+v, %v", got, err)
	}
	names := r.Names()
	if len(names) != 7 {
		t.Fatalf("got %d names, want 7: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

func TestScaleFactorIdentity(t *testing.T) {
	n6 := Nexus6()
	if f := ScaleFactor(&n6, &n6); f != 1 {
		t.Errorf("self scale = %v, want 1", f)
	}
}

func TestScaleFactorSymmetry(t *testing.T) {
	n6, mg := Nexus6(), MotoG()
	up := ScaleFactor(&mg, &n6)
	down := ScaleFactor(&n6, &mg)
	if math.Abs(up*down-1) > 1e-12 {
		t.Errorf("scale factors not reciprocal: %v * %v = %v", up, down, up*down)
	}
	// A budget phone's power scaled into Nexus-6 terms must grow.
	if up <= 1 {
		t.Errorf("MotoG->Nexus6 factor = %v, want > 1", up)
	}
}

func TestScaleFactorZeroGuard(t *testing.T) {
	var zero Profile
	n6 := Nexus6()
	if f := ScaleFactor(&zero, &n6); f != 1 {
		t.Errorf("zero-total profile scale = %v, want fallback 1", f)
	}
}
