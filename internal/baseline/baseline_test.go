package baseline

import (
	"testing"

	"repro/internal/abd"
	"repro/internal/apk"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/workload"
)

func corpusFor(t *testing.T, appID string, seed int64) (*apps.App, *workload.Result) {
	t.Helper()
	app, err := apps.ByAppID(appID)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, seed)
	cfg.Users = 12
	cfg.ImpactedFraction = 0.25
	res, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return app, res
}

func TestCheckAllReportsManyMoreEventsThanEnergyDx(t *testing.T) {
	app, res := corpusFor(t, "k9mail", 11)

	ca, err := CheckAll(DefaultCheckAllConfig(), res.Bundles)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Transitions == 0 {
		t.Fatal("CheckAll found no transitions at all")
	}
	if len(ca.Keys) == 0 {
		t.Fatal("CheckAll reported no events")
	}

	acfg := core.DefaultConfig()
	acfg.DeveloperImpactPercent = res.ImpactedPercent
	analyzer, err := core.NewAnalyzer(acfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := analyzer.Analyze(res.Bundles)
	if err != nil {
		t.Fatal(err)
	}
	dxLines := app.Package().LinesFor(report.TopKeys(6))
	caLines := app.Package().LinesFor(ca.Keys)
	if caLines <= dxLines {
		t.Errorf("CheckAll lines %d <= EnergyDx lines %d; baseline should be worse",
			caLines, dxLines)
	}
}

func TestCheckAllValidation(t *testing.T) {
	if _, err := CheckAll(DefaultCheckAllConfig(), nil); err == nil {
		t.Error("empty corpus accepted")
	}
	_, res := corpusFor(t, "tinfoil", 3)
	cfg := DefaultCheckAllConfig()
	cfg.WindowEvents = -1
	if _, err := CheckAll(cfg, res.Bundles); err == nil {
		t.Error("negative window accepted")
	}
	cfg = DefaultCheckAllConfig()
	cfg.TransitionFraction = 0 // falls back to default rather than flagging all
	if _, err := CheckAll(cfg, res.Bundles); err != nil {
		t.Errorf("zero fraction: %v", err)
	}
}

func TestNoSleepDetectionOnCatalog(t *testing.T) {
	catalog, err := apps.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range catalog {
		report, err := DetectNoSleep(app.Package())
		if err != nil {
			t.Fatalf("%s: %v", app.AppID, err)
		}
		isNoSleep := app.RootCause == abd.NoSleep
		if report.Detected() != isNoSleep {
			t.Errorf("%s (%v): detected=%v", app.AppID, app.RootCause, report.Detected())
		}
		if isNoSleep {
			// The finding must point at the real trigger.
			found := false
			for _, f := range report.Findings {
				if f.Key == app.Fault.Trigger {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: findings %v miss trigger %v",
					app.AppID, report.Findings, app.Fault.Trigger)
			}
		}
	}
}

func TestEDeltaDetectsStrongDrainMissesWeak(t *testing.T) {
	// OpenGPS's leaked GPS listener is a strong (420 mW-class) drain:
	// eDelta must flag it.
	_, resStrong := corpusFor(t, "opengps", 21)
	strong, err := EDelta(DefaultEDeltaConfig(), resStrong.Bundles)
	if err != nil {
		t.Fatal(err)
	}
	if !strong.Detected() {
		t.Error("eDelta missed the GPS leak")
	}

	// A clean corpus must not be flagged.
	app, err := apps.ByAppID("opengps")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, 22)
	cfg.Users = 10
	cfg.ImpactedFraction = 0
	clean, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cleanReport, err := EDelta(DefaultEDeltaConfig(), clean.Bundles)
	if err != nil {
		t.Fatal(err)
	}
	if cleanReport.Detected() {
		t.Errorf("eDelta flagged a clean corpus: %+v", cleanReport.Findings)
	}
}

func TestEDeltaValidation(t *testing.T) {
	if _, err := EDelta(DefaultEDeltaConfig(), nil); err == nil {
		t.Error("empty corpus accepted")
	}
	_, res := corpusFor(t, "tinfoil", 4)
	cfg := DefaultEDeltaConfig()
	cfg.DeviationThresholdMW = 0
	if _, err := EDelta(cfg, res.Bundles); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestDetectNoSleepMalformedBody(t *testing.T) {
	pkg := &apk.Package{
		AppID: "broken",
		Classes: []apk.Class{{
			Name: "LA",
			Methods: []apk.Method{{
				Name: "m", SourceLines: 5,
				Body: []apk.Instruction{
					{Op: apk.OpAcquire, Args: []string{"wl"}},
					{Op: apk.OpGoto, Args: []string{"nowhere"}},
				},
			}},
		}},
	}
	if _, err := DetectNoSleep(pkg); err == nil {
		t.Error("malformed method body silently skipped by the analyzer")
	}
}

func TestDetectNoSleepEmptyPackage(t *testing.T) {
	report, err := DetectNoSleep(&apk.Package{AppID: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if report.Detected() {
		t.Error("empty package flagged")
	}
}

func TestEDeltaMinInstancesFilter(t *testing.T) {
	_, res := corpusFor(t, "opengps", 31)
	cfg := DefaultEDeltaConfig()
	cfg.MinInstances = 1_000_000 // nothing has this many observations
	report, err := EDelta(cfg, res.Bundles)
	if err != nil {
		t.Fatal(err)
	}
	if report.Detected() {
		t.Errorf("findings despite impossible MinInstances: %+v", report.Findings)
	}
	// A too-small MinInstances is clamped, not rejected.
	cfg = DefaultEDeltaConfig()
	cfg.MinInstances = 0
	if _, err := EDelta(cfg, res.Bundles); err != nil {
		t.Errorf("clamped MinInstances rejected: %v", err)
	}
}

func TestEDeltaFindingsSortedByDeviation(t *testing.T) {
	_, res := corpusFor(t, "opengps", 23)
	report, err := EDelta(DefaultEDeltaConfig(), res.Bundles)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(report.Findings); i++ {
		if report.Findings[i].DeviationMW > report.Findings[i-1].DeviationMW {
			t.Errorf("findings not sorted: %v", report.Findings)
		}
	}
}
