package baseline

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file implements an eDoctor-style app-level detector (Ma et al.,
// NSDI'13 — the paper's related-work category 1): given one phone's
// per-app resource usage, cluster each app's execution into phases and
// flag the app that entered an abnormal high-drain phase. Its verdict is
// an *app*, not an event: "the reported app-level information is often
// too coarse-grained for developers to pinpoint the root cause in the
// app code" (paper §V), which the comparison experiment quantifies as a
// 0% code reduction inside the flagged app.

// EDoctorConfig parameterizes the app-level detector.
type EDoctorConfig struct {
	// Device names the phone's power profile (default nexus6).
	Device string
	// Devices resolves profile names (default built-in registry).
	Devices *device.Registry
	// PhaseRatio is the abnormal-phase threshold: an app is flagged
	// when the mean power of its highest phase exceeds PhaseRatio times
	// its baseline (lowest) phase and the high phase is sustained.
	PhaseRatio float64
	// MinSustainedSamples is how many samples the high phase must last
	// (transient spikes are normal usage, not ABDs).
	MinSustainedSamples int
}

// DefaultEDoctorConfig mirrors eDoctor's "abnormal phase" intuition.
func DefaultEDoctorConfig() EDoctorConfig {
	return EDoctorConfig{
		Device:              "nexus6",
		PhaseRatio:          3,
		MinSustainedSamples: 20, // 10 s at the 500 ms period
	}
}

// AppSuspicion is one app's verdict.
type AppSuspicion struct {
	AppID string `json:"appId"`
	// PhasePowerRatio is high-phase power over baseline-phase power.
	PhasePowerRatio float64 `json:"phasePowerRatio"`
	// SustainedSamples is the length of the high phase.
	SustainedSamples int  `json:"sustainedSamples"`
	Flagged          bool `json:"flagged"`
}

// EDoctorReport ranks a phone's apps by suspicion.
type EDoctorReport struct {
	Apps []AppSuspicion `json:"apps"`
}

// Flagged returns the flagged apps, most suspicious first.
func (r *EDoctorReport) Flagged() []AppSuspicion {
	var out []AppSuspicion
	for _, a := range r.Apps {
		if a.Flagged {
			out = append(out, a)
		}
	}
	return out
}

// EDoctor analyzes one phone's per-app utilization traces and flags the
// apps with an abnormal sustained high-power phase.
func EDoctor(cfg EDoctorConfig, utils []*trace.UtilizationTrace) (*EDoctorReport, error) {
	if len(utils) == 0 {
		return nil, core.ErrNoTraces
	}
	if cfg.PhaseRatio <= 1 {
		return nil, fmt.Errorf("baseline: eDoctor phase ratio must exceed 1")
	}
	if cfg.MinSustainedSamples < 1 {
		cfg.MinSustainedSamples = 1
	}
	if cfg.Devices == nil {
		cfg.Devices = device.NewRegistry()
	}
	if cfg.Device == "" {
		cfg.Device = "nexus6"
	}
	profile, err := cfg.Devices.Lookup(cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	model := power.NewModel(profile)

	report := &EDoctorReport{}
	for _, ut := range utils {
		pt, err := model.Estimate(ut)
		if err != nil {
			return nil, fmt.Errorf("baseline: eDoctor %s: %w", ut.AppID, err)
		}
		s := suspicion(cfg, pt)
		s.AppID = ut.AppID
		report.Apps = append(report.Apps, s)
	}
	sort.Slice(report.Apps, func(a, b int) bool {
		if report.Apps[a].PhasePowerRatio != report.Apps[b].PhasePowerRatio {
			return report.Apps[a].PhasePowerRatio > report.Apps[b].PhasePowerRatio
		}
		return report.Apps[a].AppID < report.Apps[b].AppID
	})
	return report, nil
}

// suspicion clusters one app's *screen-off* power series into phases and
// measures the high phase's power ratio and the longest sustained high
// run. Foreground samples are excluded: an app legitimately draws power
// while the user looks at it; the abnormal-battery-drain complaint is
// about power drawn with the screen off, which is also where eDoctor's
// phase analysis separates cleanly.
func suspicion(cfg EDoctorConfig, pt *trace.PowerTrace) AppSuspicion {
	powers := make([]float64, 0, len(pt.Samples))
	for _, s := range pt.Samples {
		if s.Breakdown.Get(trace.Display) > 0 {
			continue
		}
		powers = append(powers, s.PowerMW)
	}
	if len(powers) == 0 {
		return AppSuspicion{}
	}
	// Baseline phase: the lower quartile of samples (idle floor).
	q, err := stats.ComputeQuartiles(powers)
	if err != nil {
		return AppSuspicion{}
	}
	baseline := q.Q1
	if baseline <= 0 {
		baseline = 1
	}
	// High phase: the longest run of samples above PhaseRatio*baseline.
	threshold := cfg.PhaseRatio * baseline
	longest, cur := 0, 0
	var highSum float64
	var highN int
	for _, p := range powers {
		if p > threshold {
			cur++
			highSum += p
			highN++
			if cur > longest {
				longest = cur
			}
		} else {
			cur = 0
		}
	}
	s := AppSuspicion{SustainedSamples: longest}
	if highN > 0 {
		s.PhasePowerRatio = (highSum / float64(highN)) / baseline
	} else {
		s.PhasePowerRatio = 1
	}
	s.Flagged = longest >= cfg.MinSustainedSamples
	return s
}
