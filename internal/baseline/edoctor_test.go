package baseline

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/workload"
)

func phone(t *testing.T, abdIdx int, seed int64) ([]*apps.App, *workload.PhoneResult) {
	t.Helper()
	var installed []*apps.App
	for _, id := range []string{"opengps", "tinfoil", "simplenote"} {
		a, err := apps.ByAppID(id)
		if err != nil {
			t.Fatal(err)
		}
		installed = append(installed, a)
	}
	res, err := workload.GeneratePhone(workload.PhoneConfig{
		Apps: installed, ABDApp: abdIdx, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return installed, res
}

func TestEDoctorFlagsTheDrainingApp(t *testing.T) {
	_, res := phone(t, 0, 101) // opengps has the triggered ABD
	report, err := EDoctor(DefaultEDoctorConfig(), res.Utils)
	if err != nil {
		t.Fatal(err)
	}
	flagged := report.Flagged()
	if len(flagged) == 0 {
		t.Fatalf("nothing flagged; report: %+v", report.Apps)
	}
	if flagged[0].AppID != res.ABDAppID {
		t.Errorf("top suspect = %s, want %s (report %+v)", flagged[0].AppID, res.ABDAppID, report.Apps)
	}
}

func TestEDoctorQuietOnHealthyPhone(t *testing.T) {
	_, res := phone(t, -1, 102)
	report, err := EDoctor(DefaultEDoctorConfig(), res.Utils)
	if err != nil {
		t.Fatal(err)
	}
	if flagged := report.Flagged(); len(flagged) != 0 {
		t.Errorf("healthy phone flagged: %+v", flagged)
	}
}

func TestEDoctorValidation(t *testing.T) {
	if _, err := EDoctor(DefaultEDoctorConfig(), nil); err == nil {
		t.Error("empty input accepted")
	}
	_, res := phone(t, -1, 103)
	cfg := DefaultEDoctorConfig()
	cfg.PhaseRatio = 1
	if _, err := EDoctor(cfg, res.Utils); err == nil {
		t.Error("ratio <= 1 accepted")
	}
	cfg = DefaultEDoctorConfig()
	cfg.Device = "no-such-phone"
	if _, err := EDoctor(cfg, res.Utils); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestPhoneIsolationAcrossApps(t *testing.T) {
	// The healthy apps' utilization must not be contaminated by the
	// draining app's GPS (the procfs per-PID isolation claim).
	installed, res := phone(t, 0, 104)
	for i, ut := range res.Utils {
		if installed[i].AppID == res.ABDAppID {
			continue
		}
		for _, s := range ut.Samples {
			if s.Util[4] > 0 { // GPS slot; only opengps holds GPS
				t.Fatalf("app %s shows GPS utilization at %d",
					installed[i].AppID, s.TimestampMS)
			}
		}
	}
}

func TestGeneratePhoneValidation(t *testing.T) {
	if _, err := workload.GeneratePhone(workload.PhoneConfig{}); err == nil {
		t.Error("empty phone accepted")
	}
	a, err := apps.ByAppID("tinfoil")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.GeneratePhone(workload.PhoneConfig{
		Apps: []*apps.App{a}, ABDApp: 5,
	}); err == nil {
		t.Error("out-of-range ABD index accepted")
	}
}
