// Package baseline implements the three comparison systems of the
// paper's evaluation:
//
//   - CheckAll (§IV-D): performs only Step 1 of EnergyDx and reports the
//     events around *every* raw power transition point, without
//     distinguishing real ABD manifestations from normal transitions.
//   - No-sleep Detection (§IV-B, after Pathak et al. [9]): static
//     dataflow analysis over app code that finds acquire-without-release
//     paths; it detects only no-sleep ABDs.
//   - eDelta (§IV-B, after Li et al. [10]): detects APIs whose energy
//     deviation rises above a threshold; it misses ABDs whose deviation
//     is small even if long-lasting.
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CheckAllConfig parameterizes the CheckAll baseline.
type CheckAllConfig struct {
	// Analysis supplies Step 1 (device registry, reference device).
	Analysis core.Config
	// TransitionFraction is the raw power change (relative to the
	// trace's mean power) above which two consecutive events form a
	// transition point. CheckAll deliberately has no normalization, so
	// raw inter-event power differences routinely exceed it.
	TransitionFraction float64
	// WindowEvents is the reporting window around each transition.
	WindowEvents int
}

// DefaultCheckAllConfig mirrors EnergyDx's window with a 25% transition
// threshold.
func DefaultCheckAllConfig() CheckAllConfig {
	return CheckAllConfig{
		Analysis:           core.DefaultConfig(),
		TransitionFraction: 0.25,
		WindowEvents:       2,
	}
}

// CheckAllReport is the CheckAll output: every event near any raw power
// transition in any trace.
type CheckAllReport struct {
	AppID       string           `json:"appId"`
	TotalTraces int              `json:"totalTraces"`
	Transitions int              `json:"transitions"`
	Keys        []trace.EventKey `json:"keys"`
}

// CheckAll runs the baseline over a corpus.
func CheckAll(cfg CheckAllConfig, bundles []*trace.TraceBundle) (*CheckAllReport, error) {
	if len(bundles) == 0 {
		return nil, core.ErrNoTraces
	}
	if cfg.TransitionFraction <= 0 {
		cfg.TransitionFraction = 0.25
	}
	if cfg.WindowEvents < 0 {
		return nil, fmt.Errorf("baseline: negative window")
	}
	analyzer, err := core.NewAnalyzer(cfg.Analysis)
	if err != nil {
		return nil, err
	}
	report := &CheckAllReport{TotalTraces: len(bundles)}
	seen := make(map[trace.EventKey]struct{})
	for i, b := range bundles {
		at, err := analyzer.StepOne(b)
		if err != nil {
			return nil, fmt.Errorf("trace %d: %w", i, err)
		}
		if report.AppID == "" {
			report.AppID = b.Event.AppID
		}
		raw := make([]float64, len(at.Events))
		for j, ep := range at.Events {
			raw[j] = ep.PowerMW
		}
		if len(raw) == 0 {
			continue
		}
		mean, err := stats.Mean(raw)
		if err != nil {
			return nil, fmt.Errorf("trace %d: %w", i, err)
		}
		threshold := cfg.TransitionFraction * mean
		for j := 0; j+1 < len(raw); j++ {
			delta := raw[j+1] - raw[j]
			if delta < 0 {
				delta = -delta
			}
			if delta <= threshold {
				continue
			}
			report.Transitions++
			lo, hi := j-cfg.WindowEvents, j+cfg.WindowEvents
			if lo < 0 {
				lo = 0
			}
			if hi >= len(at.Events) {
				hi = len(at.Events) - 1
			}
			for k := lo; k <= hi; k++ {
				seen[at.Events[k].Instance.Key] = struct{}{}
			}
		}
	}
	report.Keys = make([]trace.EventKey, 0, len(seen))
	for k := range seen {
		report.Keys = append(report.Keys, k)
	}
	sort.Slice(report.Keys, func(a, b int) bool {
		if report.Keys[a].Class != report.Keys[b].Class {
			return report.Keys[a].Class < report.Keys[b].Class
		}
		return report.Keys[a].Callback < report.Keys[b].Callback
	})
	return report, nil
}
