package baseline

import (
	"sort"

	"repro/internal/apk"
	"repro/internal/trace"
)

// NoSleepFinding is one statically detected acquire-without-release.
type NoSleepFinding struct {
	Key      trace.EventKey `json:"key"`
	Resource string         `json:"resource"`
}

// NoSleepReport is the static analysis result for one app.
type NoSleepReport struct {
	AppID    string           `json:"appId"`
	Findings []NoSleepFinding `json:"findings"`
}

// Detected reports whether any leak was found.
func (r *NoSleepReport) Detected() bool { return len(r.Findings) > 0 }

// DetectNoSleep runs the [9]-style dataflow analysis over every method
// of the package: for each acquire instruction, it searches the method's
// control-flow graph for a path that reaches an exit without releasing
// the same resource. Methods whose CFG cannot be built (malformed
// bodies) are reported as errors rather than silently skipped — a static
// analyzer that skips code it cannot parse under-reports leaks.
func DetectNoSleep(pkg *apk.Package) (*NoSleepReport, error) {
	report := &NoSleepReport{AppID: pkg.AppID}
	for _, cls := range pkg.Classes {
		for _, m := range cls.Methods {
			acquires := apk.Acquires(m.Body)
			if len(acquires) == 0 {
				continue
			}
			g, err := apk.BuildCFG(m.Body)
			if err != nil {
				return nil, err
			}
			for _, acq := range acquires {
				if g.LeakPathExists(acq.Index, acq.Resource) {
					report.Findings = append(report.Findings, NoSleepFinding{
						Key:      trace.EventKey{Class: cls.Name, Callback: m.Name},
						Resource: acq.Resource,
					})
				}
			}
		}
	}
	sort.Slice(report.Findings, func(a, b int) bool {
		ka, kb := report.Findings[a].Key, report.Findings[b].Key
		if ka.Class != kb.Class {
			return ka.Class < kb.Class
		}
		if ka.Callback != kb.Callback {
			return ka.Callback < kb.Callback
		}
		return report.Findings[a].Resource < report.Findings[b].Resource
	})
	return report, nil
}
