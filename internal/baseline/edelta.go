package baseline

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// EDeltaConfig parameterizes the eDelta baseline.
type EDeltaConfig struct {
	// Analysis supplies Step 1.
	Analysis core.Config
	// DeviationThresholdMW is the absolute energy deviation (95th
	// percentile minus median of an API's instance power) above which an
	// API is flagged. eDelta "assumes that the energy consumption of
	// some APIs would rise above a certain threshold after ABD
	// manifestation"; drains whose deviation stays below it — small but
	// long-lasting, like a leaked low-power sensor — are missed.
	DeviationThresholdMW float64
	// MinInstances is the minimum number of observations of an API
	// before a deviation is trusted.
	MinInstances int
	// MinDurationMS excludes instances shorter than this from the
	// comparison: eDelta requires fine-grained API instrumentation, and
	// APIs shorter than the utilization sampling period cannot be
	// attributed meaningful energy ("an API that is not instrumented"
	// is the baseline's published blind spot).
	MinDurationMS int64
}

// DefaultEDeltaConfig returns a threshold calibrated so strong drains
// (GPS, radio loops) are caught while weak-but-long drains are missed,
// matching the baseline's published failure mode.
func DefaultEDeltaConfig() EDeltaConfig {
	return EDeltaConfig{
		Analysis:             core.DefaultConfig(),
		DeviationThresholdMW: 250,
		MinInstances:         5,
		MinDurationMS:        1000,
	}
}

// EDeltaFinding is one flagged high-deviation API.
type EDeltaFinding struct {
	Key         trace.EventKey `json:"key"`
	DeviationMW float64        `json:"deviationMilliwatts"`
	Instances   int            `json:"instances"`
}

// EDeltaReport is the eDelta output for one corpus.
type EDeltaReport struct {
	AppID    string          `json:"appId"`
	Findings []EDeltaFinding `json:"findings"`
}

// Detected reports whether any API was flagged.
func (r *EDeltaReport) Detected() bool { return len(r.Findings) > 0 }

// EDelta runs the comparative trace analysis ("Pinpointing Energy
// Deviations in Smartphone Apps via Comparative Trace Analysis" [10]):
// it estimates per-instance power (Step 1), reduces each API to its
// *typical* (median) power per trace, and flags APIs whose typical power
// in the most-draining traces exceeds the fleet-wide typical power by
// more than the threshold. Using per-trace medians makes the comparison
// robust against within-trace context noise (concurrent fetches, display
// state), which single-instance power is full of.
func EDelta(cfg EDeltaConfig, bundles []*trace.TraceBundle) (*EDeltaReport, error) {
	if len(bundles) == 0 {
		return nil, core.ErrNoTraces
	}
	if cfg.DeviationThresholdMW <= 0 {
		return nil, fmt.Errorf("baseline: eDelta threshold must be positive")
	}
	if cfg.MinInstances < 2 {
		cfg.MinInstances = 2
	}
	analyzer, err := core.NewAnalyzer(cfg.Analysis)
	if err != nil {
		return nil, err
	}
	report := &EDeltaReport{}
	perTrace := make(map[trace.EventKey][]float64) // per-trace medians
	counts := make(map[trace.EventKey]int)         // total instances
	for i, b := range bundles {
		at, err := analyzer.StepOne(b)
		if err != nil {
			return nil, fmt.Errorf("trace %d: %w", i, err)
		}
		if report.AppID == "" {
			report.AppID = b.Event.AppID
		}
		byKey := make(map[trace.EventKey][]float64)
		for _, ep := range at.Events {
			if ep.Instance.DurationMS() < cfg.MinDurationMS {
				continue
			}
			byKey[ep.Instance.Key] = append(byKey[ep.Instance.Key], ep.PowerMW)
			counts[ep.Instance.Key]++
		}
		for key, xs := range byKey {
			med, err := stats.Percentile(xs, 50)
			if err != nil {
				return nil, fmt.Errorf("trace %d, %s: %w", i, key, err)
			}
			perTrace[key] = append(perTrace[key], med)
		}
	}
	for key, medians := range perTrace {
		if counts[key] < cfg.MinInstances || len(medians) < 2 {
			continue
		}
		hi, err := stats.Percentile(medians, 95)
		if err != nil {
			return nil, fmt.Errorf("deviation of %s: %w", key, err)
		}
		typical, err := stats.Percentile(medians, 50)
		if err != nil {
			return nil, fmt.Errorf("deviation of %s: %w", key, err)
		}
		if dev := hi - typical; dev > cfg.DeviationThresholdMW {
			report.Findings = append(report.Findings, EDeltaFinding{
				Key: key, DeviationMW: dev, Instances: counts[key],
			})
		}
	}
	sort.Slice(report.Findings, func(a, b int) bool {
		if report.Findings[a].DeviationMW != report.Findings[b].DeviationMW {
			return report.Findings[a].DeviationMW > report.Findings[b].DeviationMW
		}
		ka, kb := report.Findings[a].Key, report.Findings[b].Key
		if ka.Class != kb.Class {
			return ka.Class < kb.Class
		}
		return ka.Callback < kb.Callback
	})
	return report, nil
}
