package procfs

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestUtilizationTextRoundTrip(t *testing.T) {
	ut := &trace.UtilizationTrace{AppID: "com.fsck.k9", PID: 1234, PeriodMS: 500}
	s0 := trace.UtilizationSample{TimestampMS: 0}
	s0.Util.Set(trace.CPU, 0.5)
	s0.Util.Set(trace.WiFi, 0.125)
	s1 := trace.UtilizationSample{TimestampMS: 500}
	s1.Util.Set(trace.GPS, 1)
	ut.Samples = []trace.UtilizationSample{s0, s1, {TimestampMS: 1000}}

	var buf bytes.Buffer
	if err := WriteUtilizationText(&buf, ut); err != nil {
		t.Fatal(err)
	}
	back, err := ParseUtilizationText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ut, back) {
		t.Errorf("round trip changed the trace:\n  wrote %+v\n  read  %+v", ut, back)
	}
}

func TestParseUtilizationTextHeadersAndComments(t *testing.T) {
	in := strings.Join([]string{
		"# vendor procfs-sampler 1.2", // unknown header: a comment
		"# app com.example",
		"# pid 42",
		"# period 250",
		"0 cpu=0.25",
		"250",
	}, "\n") + "\n"
	ut, err := ParseUtilizationText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ut.AppID != "com.example" || ut.PID != 42 || ut.PeriodMS != 250 {
		t.Errorf("headers = %q/%d/%d", ut.AppID, ut.PID, ut.PeriodMS)
	}
	if len(ut.Samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(ut.Samples))
	}
	if got := ut.Samples[0].Util.Get(trace.CPU); got != 0.25 {
		t.Errorf("cpu = %v", got)
	}
	if ut.Samples[1].Util != (trace.UtilizationVector{}) {
		t.Errorf("bare timestamp sample is not all-idle: %+v", ut.Samples[1].Util)
	}
}

func TestParseUtilizationTextErrors(t *testing.T) {
	for _, tc := range []struct{ name, in, wantMsg string }{
		{"bad timestamp", "x cpu=0.5\n", "bad timestamp"},
		{"negative timestamp", "-1 cpu=0.5\n", "negative timestamp"},
		{"out of range", "0 cpu=1.5\n", "outside [0, 1]"},
		{"nan", "0 cpu=NaN\n", "outside [0, 1]"},
		{"unknown component", "0 warp=0.5\n", "unknown component"},
		{"duplicate component", "0 cpu=0.1 cpu=0.2\n", "duplicate component"},
		{"bad token", "0 cpu\n", "bad token"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseUtilizationText(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("parse accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

func TestWriteUtilizationTextRejectsUnwritable(t *testing.T) {
	bad := &trace.UtilizationTrace{PeriodMS: 500,
		Samples: []trace.UtilizationSample{{TimestampMS: -1}}}
	if err := WriteUtilizationText(&bytes.Buffer{}, bad); err == nil {
		t.Error("negative timestamp serialized")
	}
	nan := &trace.UtilizationTrace{PeriodMS: 500,
		Samples: []trace.UtilizationSample{{TimestampMS: 0}}}
	nan.Samples[0].Util[0] = math.NaN() // bypass Set, as a decoded wire value can
	if err := WriteUtilizationText(&bytes.Buffer{}, nan); err == nil {
		t.Error("NaN utilization serialized")
	}
	crlf := &trace.UtilizationTrace{AppID: "a\rb", PeriodMS: 500}
	if err := WriteUtilizationText(&bytes.Buffer{}, crlf); err == nil {
		t.Error("app id with a control character serialized")
	}
}
