// Package procfs simulates the Linux proc filesystem's per-process
// hardware accounting that the EnergyDx background service polls: "it
// monitors the proc filesystem (procfs) to gather hardware utilization
// assigned to the target app ... limited only to the suspect app
// identified by its PID" (paper §II-C).
//
// The simulated Android substrate records component-usage intervals into
// a Ledger as apps execute; a Sampler then reads the ledger at a fixed
// period (500 ms in the paper) to produce the utilization trace for one
// PID. Because the ledger is keyed by PID, concurrent apps do not
// contaminate each other's traces — the same isolation property the
// paper relies on.
package procfs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/trace"
)

// interval is one component-usage span attributed to a PID.
type interval struct {
	comp    trace.Component
	startMS int64
	endMS   int64 // exclusive; endMS == openEnd means still running
	level   float64
}

// openEnd marks an interval whose end is not yet known.
const openEnd = int64(1<<62 - 1)

// Ledger accumulates component-usage intervals per PID. It is safe for
// concurrent use: app threads record usage while the sampler reads.
type Ledger struct {
	mu        sync.RWMutex
	intervals map[int][]interval
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{intervals: make(map[int][]interval)}
}

// Record attributes `level` utilization of component c to pid over
// [startMS, endMS). Levels from overlapping intervals add up and are
// clamped to 1.0 at sampling time (a component cannot be more than fully
// busy). Recording with endMS <= startMS is rejected.
func (l *Ledger) Record(pid int, c trace.Component, startMS, endMS int64, level float64) error {
	if endMS <= startMS {
		return fmt.Errorf("procfs: empty interval [%d, %d)", startMS, endMS)
	}
	if level < 0 {
		return fmt.Errorf("procfs: negative level %v", level)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.intervals[pid] = append(l.intervals[pid], interval{comp: c, startMS: startMS, endMS: endMS, level: level})
	return nil
}

// Open starts an open-ended usage interval (e.g. a wakelock or GPS
// listener that has not been released) and returns a handle to close it.
func (l *Ledger) Open(pid int, c trace.Component, startMS int64, level float64) *OpenUsage {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.intervals[pid] = append(l.intervals[pid], interval{comp: c, startMS: startMS, endMS: openEnd, level: level})
	return &OpenUsage{ledger: l, pid: pid, idx: len(l.intervals[pid]) - 1}
}

// OpenUsage is a handle to an open-ended usage interval.
type OpenUsage struct {
	ledger *Ledger
	pid    int
	idx    int
	closed bool
}

// Close ends the interval at endMS. Closing twice is a no-op.
func (o *OpenUsage) Close(endMS int64) {
	if o == nil || o.closed {
		return
	}
	o.ledger.mu.Lock()
	defer o.ledger.mu.Unlock()
	iv := &o.ledger.intervals[o.pid][o.idx]
	if endMS <= iv.startMS {
		endMS = iv.startMS + 1
	}
	iv.endMS = endMS
	o.closed = true
}

// UtilizationAt returns the instantaneous utilization vector of pid at
// time tMS: the clamped sum of all interval levels covering tMS.
func (l *Ledger) UtilizationAt(pid int, tMS int64) trace.UtilizationVector {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var u trace.UtilizationVector
	for _, iv := range l.intervals[pid] {
		if tMS >= iv.startMS && tMS < iv.endMS {
			u.Add(iv.comp, iv.level)
		}
	}
	return u
}

// PIDs returns the PIDs with recorded activity, sorted.
func (l *Ledger) PIDs() []int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	pids := make([]int, 0, len(l.intervals))
	for pid := range l.intervals {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	return pids
}

// IntervalCount returns how many intervals are recorded for pid.
func (l *Ledger) IntervalCount(pid int) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.intervals[pid])
}

// Sampler produces utilization traces from a ledger at a fixed period,
// mirroring the EnergyDx background service. The paper uses 500 ms as the
// accuracy/overhead trade-off.
type Sampler struct {
	ledger   *Ledger
	periodMS int64
}

// DefaultPeriodMS is the paper's tracking period.
const DefaultPeriodMS = 500

// NewSampler creates a sampler over the ledger. A non-positive period is
// replaced by DefaultPeriodMS.
func NewSampler(l *Ledger, periodMS int64) *Sampler {
	if periodMS <= 0 {
		periodMS = DefaultPeriodMS
	}
	return &Sampler{ledger: l, periodMS: periodMS}
}

// PeriodMS returns the sampling period.
func (s *Sampler) PeriodMS() int64 { return s.periodMS }

// Trace samples pid's utilization over [startMS, endMS] and returns the
// utilization trace, one sample every period starting at startMS.
func (s *Sampler) Trace(appID string, pid int, startMS, endMS int64) *trace.UtilizationTrace {
	ut := &trace.UtilizationTrace{AppID: appID, PID: pid, PeriodMS: s.periodMS}
	if endMS < startMS {
		return ut
	}
	n := (endMS-startMS)/s.periodMS + 1
	ut.Samples = make([]trace.UtilizationSample, 0, n)
	for t := startMS; t <= endMS; t += s.periodMS {
		ut.Samples = append(ut.Samples, trace.UtilizationSample{
			TimestampMS: t,
			Util:        s.ledger.UtilizationAt(pid, t),
		})
	}
	return ut
}
