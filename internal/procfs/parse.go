package procfs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// This file implements the text serialization of utilization traces,
// mirroring what the on-device background service writes as it polls
// procfs (paper §II-C). The format is line-oriented so a sampler can
// append one line per period and a partially-written file still parses
// up to the last complete line.
//
// # Accepted grammar
//
//	trace   = { header } { sample }
//	header  = "# app " appID | "# pid " int | "# period " int(ms)
//	sample  = timestamp { SP component "=" fraction }
//
//	timestamp = decimal int64, milliseconds, >= 0
//	component = "cpu" | "display" | "wifi" | "cellular" | "gps" |
//	            "audio" | "sensor"
//	fraction  = finite float in [0, 1]
//
// Components absent from a sample line are 0; a bare timestamp is a
// valid all-idle sample. Other "#" lines are comments. Each component
// may appear at most once per line. Sample ordering is not a grammar
// concern — trace.UtilizationTrace.Validate enforces it, so tooling
// can still load an out-of-order file for inspection.

// ParseUtilizationError reports a malformed line in a utilization text
// trace.
type ParseUtilizationError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseUtilizationError) Error() string {
	return fmt.Sprintf("procfs: line %d %q: %s", e.Line, e.Text, e.Msg)
}

// WriteUtilizationText serializes a utilization trace in the procfs
// text format. Zero components are omitted from sample lines.
func WriteUtilizationText(w io.Writer, ut *trace.UtilizationTrace) error {
	bw := bufio.NewWriter(w)
	if ut.AppID != "" {
		if strings.ContainsAny(ut.AppID, "\n\r") || ut.AppID != strings.TrimSpace(ut.AppID) {
			return fmt.Errorf("procfs: app id %q not writable as a header", ut.AppID)
		}
		fmt.Fprintf(bw, "# app %s\n", ut.AppID)
	}
	if ut.PID != 0 {
		fmt.Fprintf(bw, "# pid %d\n", ut.PID)
	}
	fmt.Fprintf(bw, "# period %d\n", ut.PeriodMS)
	for _, s := range ut.Samples {
		if s.TimestampMS < 0 {
			return fmt.Errorf("procfs: negative sample timestamp %d", s.TimestampMS)
		}
		bw.WriteString(strconv.FormatInt(s.TimestampMS, 10))
		for _, c := range trace.Components() {
			v := s.Util.Get(c)
			if math.IsNaN(v) || v < 0 || v > 1 {
				return fmt.Errorf("procfs: component %s = %v outside [0, 1]", c, v)
			}
			if v == 0 {
				continue
			}
			bw.WriteString(" " + c.String() + "=" + strconv.FormatFloat(v, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("procfs: write utilization trace: %w", err)
	}
	return nil
}

// ParseUtilizationText parses a utilization trace from the procfs text
// format, rejecting the whole trace at the first malformed line.
func ParseUtilizationText(r io.Reader) (*trace.UtilizationTrace, error) {
	ut := &trace.UtilizationTrace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parseHeader(ut, line)
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, &ParseUtilizationError{Line: lineNo, Text: line, Msg: err.Error()}
		}
		ut.Samples = append(ut.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("procfs: scan utilization trace: %w", err)
	}
	return ut, nil
}

// parseHeader applies a recognized "# key value" header; anything else
// is a comment and ignored.
func parseHeader(ut *trace.UtilizationTrace, line string) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	key, val, ok := strings.Cut(rest, " ")
	if !ok {
		return
	}
	val = strings.TrimSpace(val)
	switch key {
	case "app":
		// An app id with an interior control character could never have
		// been written by WriteUtilizationText; treat it as a comment so
		// every parsed trace re-serializes.
		if !strings.ContainsAny(val, "\r\n") {
			ut.AppID = val
		}
	case "pid":
		if pid, err := strconv.Atoi(val); err == nil {
			ut.PID = pid
		}
	case "period":
		if p, err := strconv.ParseInt(val, 10, 64); err == nil {
			ut.PeriodMS = p
		}
	}
}

func parseSampleLine(line string) (trace.UtilizationSample, error) {
	fields := strings.Fields(line)
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return trace.UtilizationSample{}, fmt.Errorf("bad timestamp: %v", err)
	}
	if ts < 0 {
		return trace.UtilizationSample{}, fmt.Errorf("negative timestamp %d", ts)
	}
	s := trace.UtilizationSample{TimestampMS: ts}
	seen := make(map[trace.Component]bool, len(fields)-1)
	for _, f := range fields[1:] {
		name, val, ok := strings.Cut(f, "=")
		if !ok {
			return trace.UtilizationSample{}, fmt.Errorf("bad token %q (want component=fraction)", f)
		}
		c, ok := trace.ParseComponent(name)
		if !ok {
			return trace.UtilizationSample{}, fmt.Errorf("unknown component %q", name)
		}
		if seen[c] {
			return trace.UtilizationSample{}, fmt.Errorf("duplicate component %q", name)
		}
		seen[c] = true
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return trace.UtilizationSample{}, fmt.Errorf("bad fraction %q: %v", val, err)
		}
		if math.IsNaN(v) || v < 0 || v > 1 {
			return trace.UtilizationSample{}, fmt.Errorf("fraction %q outside [0, 1]", val)
		}
		s.Util.Set(c, v)
	}
	return s, nil
}
