package procfs

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzParseUtilizationText pins down the utilization text codec:
// parsing never panics, every trace the parser accepts re-serializes
// through WriteUtilizationText, and the written form parses back to the
// identical trace (headers included). This is the file format a
// partially-written on-device log is recovered from, so the parser sees
// genuinely arbitrary bytes in production.
func FuzzParseUtilizationText(f *testing.F) {
	seeds := []string{
		"",
		"# just a comment\n",
		"# app com.fsck.k9\n# pid 1234\n# period 500\n" +
			"0 cpu=0.5 wifi=0.125\n500 cpu=0.25 gps=1\n1000\n",
		// Bare timestamps: valid all-idle samples.
		"0\n500\n1000\n",
		// Unknown header keys are comments.
		"# vendor procfs-sampler 1.2\n# period 250\n0 cpu=1\n",
		// Malformed lines of every kind.
		"x cpu=0.5\n",
		"-1 cpu=0.5\n",
		"0 cpu=1.5\n",
		"0 cpu=NaN\n",
		"0 bogus=0.5\n",
		"0 cpu=0.1 cpu=0.2\n",
		"0 cpu\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ut, err := ParseUtilizationText(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := WriteUtilizationText(&buf, ut); werr != nil {
			t.Fatalf("parsed trace does not re-serialize: %v", werr)
		}
		again, rerr := ParseUtilizationText(&buf)
		if rerr != nil {
			t.Fatalf("re-parse of serialized trace failed: %v", rerr)
		}
		if !reflect.DeepEqual(ut, again) {
			t.Fatalf("round trip changed the trace:\n  first  %+v\n  second %+v", ut, again)
		}
	})
}
