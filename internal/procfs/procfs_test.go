package procfs

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

func TestRecordAndUtilizationAt(t *testing.T) {
	l := NewLedger()
	if err := l.Record(1, trace.CPU, 0, 1000, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(1, trace.CPU, 500, 1500, 0.3); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		at   int64
		want float64
	}{
		{0, 0.5},
		{499, 0.5},
		{500, 0.8},  // overlap adds
		{999, 0.8},  // both still active
		{1000, 0.3}, // first interval's end is exclusive
		{1499, 0.3},
		{1500, 0},
	}
	for _, tt := range tests {
		if got := l.UtilizationAt(1, tt.at).Get(trace.CPU); got != tt.want {
			t.Errorf("UtilizationAt(%d) cpu = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestRecordClampsAtSampling(t *testing.T) {
	l := NewLedger()
	_ = l.Record(1, trace.CPU, 0, 100, 0.8)
	_ = l.Record(1, trace.CPU, 0, 100, 0.8)
	if got := l.UtilizationAt(1, 50).Get(trace.CPU); got != 1 {
		t.Errorf("summed utilization = %v, want clamped 1", got)
	}
}

func TestRecordErrors(t *testing.T) {
	l := NewLedger()
	if err := l.Record(1, trace.CPU, 100, 100, 0.5); err == nil {
		t.Error("empty interval accepted")
	}
	if err := l.Record(1, trace.CPU, 100, 50, 0.5); err == nil {
		t.Error("inverted interval accepted")
	}
	if err := l.Record(1, trace.CPU, 0, 100, -0.5); err == nil {
		t.Error("negative level accepted")
	}
}

func TestPIDIsolation(t *testing.T) {
	// The paper: "the existence of multiple running apps does not affect
	// utilization tracking of the suspect app."
	l := NewLedger()
	_ = l.Record(1, trace.CPU, 0, 1000, 0.9)
	_ = l.Record(2, trace.GPS, 0, 1000, 1.0)
	if got := l.UtilizationAt(1, 500).Get(trace.GPS); got != 0 {
		t.Errorf("pid 1 sees pid 2's GPS: %v", got)
	}
	if got := l.UtilizationAt(2, 500).Get(trace.CPU); got != 0 {
		t.Errorf("pid 2 sees pid 1's CPU: %v", got)
	}
}

func TestOpenUsageLifecycle(t *testing.T) {
	l := NewLedger()
	h := l.Open(1, trace.GPS, 100, 1.0)
	// Open-ended: visible arbitrarily far in the future (a no-sleep bug).
	if got := l.UtilizationAt(1, 1_000_000).Get(trace.GPS); got != 1 {
		t.Errorf("open usage not visible: %v", got)
	}
	h.Close(500)
	if got := l.UtilizationAt(1, 400).Get(trace.GPS); got != 1 {
		t.Errorf("closed usage lost inside span: %v", got)
	}
	if got := l.UtilizationAt(1, 600).Get(trace.GPS); got != 0 {
		t.Errorf("usage visible after close: %v", got)
	}
	// Double close is a no-op.
	h.Close(900)
	if got := l.UtilizationAt(1, 600).Get(trace.GPS); got != 0 {
		t.Errorf("double close extended interval: %v", got)
	}
	// Nil handle close is safe.
	var nilH *OpenUsage
	nilH.Close(1)
}

func TestOpenUsageCloseBeforeStart(t *testing.T) {
	l := NewLedger()
	h := l.Open(1, trace.CPU, 100, 0.5)
	h.Close(50) // clamped to start+1
	if got := l.UtilizationAt(1, 100).Get(trace.CPU); got != 0.5 {
		t.Errorf("clamped interval missing: %v", got)
	}
	if got := l.UtilizationAt(1, 101).Get(trace.CPU); got != 0 {
		t.Errorf("clamped interval too long: %v", got)
	}
}

func TestSamplerTrace(t *testing.T) {
	l := NewLedger()
	_ = l.Record(7, trace.CPU, 0, 1000, 0.4)
	s := NewSampler(l, 500)
	ut := s.Trace("app", 7, 0, 2000)
	if ut.PeriodMS != 500 || ut.PID != 7 || ut.AppID != "app" {
		t.Errorf("trace metadata = %+v", ut)
	}
	if len(ut.Samples) != 5 {
		t.Fatalf("got %d samples, want 5", len(ut.Samples))
	}
	wantCPU := []float64{0.4, 0.4, 0, 0, 0}
	for i, s := range ut.Samples {
		if got := s.Util.Get(trace.CPU); got != wantCPU[i] {
			t.Errorf("sample %d cpu = %v, want %v", i, got, wantCPU[i])
		}
		if s.TimestampMS != int64(i)*500 {
			t.Errorf("sample %d ts = %d", i, s.TimestampMS)
		}
	}
	if err := ut.Validate(); err != nil {
		t.Errorf("sampled trace invalid: %v", err)
	}
}

func TestSamplerDefaults(t *testing.T) {
	s := NewSampler(NewLedger(), 0)
	if s.PeriodMS() != DefaultPeriodMS {
		t.Errorf("default period = %d, want %d", s.PeriodMS(), DefaultPeriodMS)
	}
	ut := s.Trace("app", 1, 100, 50) // inverted span
	if len(ut.Samples) != 0 {
		t.Errorf("inverted span produced %d samples", len(ut.Samples))
	}
}

func TestLedgerConcurrentAccess(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = l.Record(g, trace.CPU, int64(i), int64(i)+10, 0.1)
				_ = l.UtilizationAt(g, int64(i))
			}
		}(g)
	}
	wg.Wait()
	if len(l.PIDs()) != 8 {
		t.Errorf("got %d pids, want 8", len(l.PIDs()))
	}
	for _, pid := range l.PIDs() {
		if n := l.IntervalCount(pid); n != 100 {
			t.Errorf("pid %d has %d intervals, want 100", pid, n)
		}
	}
}
