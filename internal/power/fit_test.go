package power

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/trace"
)

// calibrationRun produces observations that cycle every component
// through its range, the way a real power-model calibration does.
func calibrationRun(p Profile, n int, noiseMW float64, seed int64) []Observation {
	rng := rand.New(rand.NewSource(seed))
	model := NewModel(p)
	obs := make([]Observation, 0, n)
	for i := 0; i < n; i++ {
		var u trace.UtilizationVector
		for _, c := range trace.Components() {
			u.Set(c, rng.Float64())
		}
		truth, _ := model.At(u)
		obs = append(obs, Observation{Util: u, PowerMW: truth + rng.NormFloat64()*noiseMW})
	}
	return obs
}

func TestFitRecoversNexus6(t *testing.T) {
	truth := device.Nexus6()
	obs := calibrationRun(truth, 500, 10, 1)
	res, err := Fit("nexus6-fitted", obs)
	if err != nil {
		t.Fatal(err)
	}
	if res.RSquared < 0.995 {
		t.Errorf("R2 = %.4f", res.RSquared)
	}
	if math.Abs(res.Profile.BaseMW-truth.BaseMW) > 10 {
		t.Errorf("base = %.1f, want ~%.1f", res.Profile.BaseMW, truth.BaseMW)
	}
	for _, c := range trace.Components() {
		got, want := res.Profile.Coeff(c), truth.Coeff(c)
		if math.Abs(got-want) > 0.05*want+10 {
			t.Errorf("%v coefficient = %.1f, want ~%.1f", c, got, want)
		}
	}
}

func TestFitNoiseFreeIsExact(t *testing.T) {
	truth := device.MotoG()
	obs := calibrationRun(truth, 100, 0, 2)
	res, err := Fit("motog-fitted", obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RSquared-1) > 1e-9 {
		t.Errorf("noise-free R2 = %v", res.RSquared)
	}
	for _, c := range trace.Components() {
		if math.Abs(res.Profile.Coeff(c)-truth.Coeff(c)) > 1e-6 {
			t.Errorf("%v coefficient = %v, want %v", c, res.Profile.Coeff(c), truth.Coeff(c))
		}
	}
}

func TestFitSingularWithoutComponentCoverage(t *testing.T) {
	// Calibration that never exercises the GPS cannot determine its
	// coefficient.
	truth := device.Nexus6()
	model := NewModel(truth)
	rng := rand.New(rand.NewSource(3))
	var obs []Observation
	for i := 0; i < 100; i++ {
		var u trace.UtilizationVector
		u.Set(trace.CPU, rng.Float64()) // only CPU varies
		p, _ := model.At(u)
		obs = append(obs, Observation{Util: u, PowerMW: p})
	}
	if _, err := Fit("partial", obs); err == nil {
		t.Error("fit with unexercised components accepted")
	}
}

func TestFitEmpty(t *testing.T) {
	if _, err := Fit("x", nil); err == nil {
		t.Error("empty observations accepted")
	}
}

func TestFittedModelMatchesTruthOnFreshInputs(t *testing.T) {
	truth := device.GalaxyS5()
	obs := calibrationRun(truth, 400, 5, 4)
	res, err := Fit("galaxys5-fitted", obs)
	if err != nil {
		t.Fatal(err)
	}
	truthModel := NewModel(truth)
	fitModel := NewModel(res.Profile)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		var u trace.UtilizationVector
		for _, c := range trace.Components() {
			u.Set(c, rng.Float64())
		}
		want, _ := truthModel.At(u)
		got, _ := fitModel.At(u)
		if RelativeError(got, want) > 0.025 {
			// The paper's model error bound: < 2.5%.
			t.Errorf("fresh input %d: fitted %.1f vs truth %.1f", i, got, want)
		}
	}
}
