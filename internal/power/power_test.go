package power

import (
	"errors"
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/trace"
)

func utilTrace(periodMS int64, cpuLevels ...float64) *trace.UtilizationTrace {
	ut := &trace.UtilizationTrace{AppID: "app", PID: 1, PeriodMS: periodMS}
	for i, lvl := range cpuLevels {
		var u trace.UtilizationVector
		u.Set(trace.CPU, lvl)
		ut.Samples = append(ut.Samples, trace.UtilizationSample{
			TimestampMS: int64(i) * periodMS,
			Util:        u,
		})
	}
	return ut
}

func TestAtLinearity(t *testing.T) {
	n6 := device.Nexus6()
	m := NewModel(n6)
	var idle trace.UtilizationVector
	total, _ := m.At(idle)
	if total != n6.BaseMW {
		t.Errorf("idle power = %v, want base %v", total, n6.BaseMW)
	}
	var busy trace.UtilizationVector
	busy.Set(trace.CPU, 1)
	total, breakdown := m.At(busy)
	want := n6.BaseMW + n6.Coeff(trace.CPU)
	if total != want {
		t.Errorf("full-CPU power = %v, want %v", total, want)
	}
	if breakdown.Get(trace.CPU) != n6.Coeff(trace.CPU) {
		t.Errorf("breakdown cpu = %v", breakdown.Get(trace.CPU))
	}
	if breakdown.Get(trace.GPS) != 0 {
		t.Errorf("breakdown gps = %v, want 0", breakdown.Get(trace.GPS))
	}
	// Half utilization -> half component power.
	var half trace.UtilizationVector
	half.Set(trace.CPU, 0.5)
	total, _ = m.At(half)
	if got := total - n6.BaseMW; math.Abs(got-n6.Coeff(trace.CPU)/2) > 1e-9 {
		t.Errorf("half-CPU dynamic power = %v", got)
	}
}

func TestEstimateTrace(t *testing.T) {
	m := NewModel(device.Nexus6())
	ut := utilTrace(500, 0, 0.5, 1)
	pt, err := m.Estimate(ut)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Samples) != 3 {
		t.Fatalf("got %d samples", len(pt.Samples))
	}
	if pt.Device != "nexus6" || pt.AppID != "app" {
		t.Errorf("metadata = %+v", pt)
	}
	if !(pt.Samples[0].PowerMW < pt.Samples[1].PowerMW && pt.Samples[1].PowerMW < pt.Samples[2].PowerMW) {
		t.Errorf("power not increasing with utilization: %v", pt.Samples)
	}
}

func TestEstimateRejectsInvalid(t *testing.T) {
	m := NewModel(device.Nexus6())
	bad := &trace.UtilizationTrace{PeriodMS: 0}
	if _, err := m.Estimate(bad); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestNoiseBoundedAndReproducible(t *testing.T) {
	n6 := device.Nexus6()
	clean := NewModel(n6)
	noisy1 := NewModel(n6, WithNoise(PaperNoiseFrac, 42))
	noisy2 := NewModel(n6, WithNoise(PaperNoiseFrac, 42))
	var u trace.UtilizationVector
	u.Set(trace.CPU, 0.8)
	truth, _ := clean.At(u)
	maxErr := 0.0
	for i := 0; i < 1000; i++ {
		e1, _ := noisy1.At(u)
		e2, _ := noisy2.At(u)
		if e1 != e2 {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, e1, e2)
		}
		if re := RelativeError(e1, truth); re > maxErr {
			maxErr = re
		}
	}
	// Noise is truncated at 3 sigma = 7.5%.
	if maxErr > 3*PaperNoiseFrac+1e-9 {
		t.Errorf("max relative error %v exceeds 3-sigma bound", maxErr)
	}
	if maxErr == 0 {
		t.Error("noise enabled but all estimates exact")
	}
}

func TestScale(t *testing.T) {
	n6, mg := device.Nexus6(), device.MotoG()
	m := NewModel(mg)
	pt, err := m.Estimate(utilTrace(500, 0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	scaled := Scale(pt, &mg, &n6)
	if scaled.Device != "nexus6" {
		t.Errorf("scaled device = %q", scaled.Device)
	}
	factor := device.ScaleFactor(&mg, &n6)
	for i := range pt.Samples {
		want := pt.Samples[i].PowerMW * factor
		if math.Abs(scaled.Samples[i].PowerMW-want) > 1e-9 {
			t.Errorf("sample %d = %v, want %v", i, scaled.Samples[i].PowerMW, want)
		}
	}
	// Original untouched.
	if pt.Device != "motog" {
		t.Error("Scale mutated input")
	}
}

func TestMeanPower(t *testing.T) {
	pt := &trace.PowerTrace{Samples: []trace.PowerSample{
		{PowerMW: 100}, {PowerMW: 300},
	}}
	mean, err := MeanPowerMW(pt)
	if err != nil {
		t.Fatal(err)
	}
	if mean != 200 {
		t.Errorf("mean = %v", mean)
	}
	if _, err := MeanPowerMW(&trace.PowerTrace{}); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty trace error = %v", err)
	}
}

func TestBreakdownBetween(t *testing.T) {
	m := NewModel(device.Nexus6())
	// GPS on with display off — the OpenGPS ABD signature (Fig 11).
	ut := &trace.UtilizationTrace{AppID: "opengps", PeriodMS: 500}
	for i := 0; i < 10; i++ {
		var u trace.UtilizationVector
		u.Set(trace.GPS, 1)
		u.Set(trace.CPU, 0.1)
		ut.Samples = append(ut.Samples, trace.UtilizationSample{TimestampMS: int64(i) * 500, Util: u})
	}
	pt, err := m.Estimate(ut)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BreakdownBetween(pt, 0, 4500)
	if err != nil {
		t.Fatal(err)
	}
	if b.ByComponent[trace.Display] != 0 {
		t.Errorf("display power = %v, want 0", b.ByComponent[trace.Display])
	}
	if b.ByComponent[trace.GPS] <= b.ByComponent[trace.CPU] {
		t.Errorf("GPS (%v) should dominate CPU (%v) in this window",
			b.ByComponent[trace.GPS], b.ByComponent[trace.CPU])
	}
	if b.MeanTotalMW <= 0 {
		t.Error("mean total not positive")
	}
	// Named items align with the map.
	for i, c := range trace.Components() {
		if b.Components[i].Component != c.String() {
			t.Errorf("component %d named %q", i, b.Components[i].Component)
		}
		if b.Components[i].MeanMW != b.ByComponent[c] {
			t.Errorf("component %v mismatch", c)
		}
	}
}

func TestBreakdownBetweenEmptyWindow(t *testing.T) {
	pt := &trace.PowerTrace{Samples: []trace.PowerSample{{TimestampMS: 0}}}
	if _, err := BreakdownBetween(pt, 1000, 2000); !errors.Is(err, ErrNoSamples) {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(110, 100) != 0.1 {
		t.Error("basic relative error")
	}
	if RelativeError(0, 0) != 0 {
		t.Error("0/0 should be 0")
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Error("x/0 should be +Inf")
	}
}
