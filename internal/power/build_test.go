package power

import (
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/trace"
)

// randomUtilTrace builds a valid utilization trace with seeded random
// per-component utilization.
func randomUtilTrace(rng *rand.Rand, samples int) *trace.UtilizationTrace {
	ut := &trace.UtilizationTrace{AppID: "app", PID: 1, PeriodMS: 500}
	for i := 0; i < samples; i++ {
		var s trace.UtilizationSample
		s.TimestampMS = int64(i) * 500
		for _, c := range trace.Components() {
			s.Util.Set(c, rng.Float64())
		}
		ut.Samples = append(ut.Samples, s)
	}
	return ut
}

// TestBuildScaledMatchesUnfusedPath pins the fused Estimate+Scale+Index
// build to the three-call path it replaced: bit-identical interval
// means for every query, with and without estimation noise, across
// in-place index reuse.
func TestBuildScaledMatchesUnfusedPath(t *testing.T) {
	devs := device.NewRegistry()
	from, err := devs.Lookup("nexus6")
	if err != nil {
		t.Fatal(err)
	}
	to, err := devs.Lookup("galaxys5")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var reused Index
	for _, tc := range []struct {
		name  string
		noise float64
		seed  int64
	}{
		{"no-noise", 0, 0},
		{"paper-noise", PaperNoiseFrac, 42},
	} {
		for _, samples := range []int{0, 1, 2, 17, 256} {
			ut := randomUtilTrace(rng, samples)

			var opts []Option
			if tc.noise > 0 {
				opts = append(opts, WithNoise(tc.noise, tc.seed))
			}
			ref := NewModel(from, opts...)
			pt, err := ref.Estimate(ut)
			if err != nil {
				t.Fatal(err)
			}
			pt = Scale(pt, &from, &to)
			want := NewIndex(pt)

			fused := NewModel(from)
			fused.Reset(from, tc.noise, tc.seed)
			factor := device.ScaleFactor(&from, &to)
			if err := reused.BuildScaled(fused, ut, factor); err != nil {
				t.Fatal(err)
			}

			if reused.Len() != want.Len() {
				t.Fatalf("%s/%d: fused index has %d samples, want %d", tc.name, samples, reused.Len(), want.Len())
			}
			for q := 0; q < 50; q++ {
				lo := rng.Int63n(int64(samples)*500 + 1000)
				hi := lo + rng.Int63n(2000)
				wantP, wantOK := want.MeanBetween(lo, hi)
				gotP, gotOK := reused.MeanBetween(lo, hi)
				if wantOK != gotOK || wantP != gotP {
					t.Fatalf("%s/%d: MeanBetween(%d, %d) = (%v, %v), want (%v, %v)",
						tc.name, samples, lo, hi, gotP, gotOK, wantP, wantOK)
				}
			}
		}
	}
}

// TestModelResetReplaysNoiseSequence checks that reseeding a pooled
// model reproduces a fresh model's noise draws exactly.
func TestModelResetReplaysNoiseSequence(t *testing.T) {
	devs := device.NewRegistry()
	p, err := devs.Lookup("nexus6")
	if err != nil {
		t.Fatal(err)
	}
	var u trace.UtilizationVector
	u.Set(trace.CPU, 0.5)

	fresh := func() []float64 {
		m := NewModel(p, WithNoise(PaperNoiseFrac, 99))
		var out []float64
		for i := 0; i < 16; i++ {
			v, _ := m.At(u)
			out = append(out, v)
		}
		return out
	}
	want := fresh()

	m := NewModel(p, WithNoise(PaperNoiseFrac, 1))
	for i := 0; i < 3; i++ {
		v, _ := m.At(u) // burn draws so Reset must truly rewind
		_ = v
	}
	m.Reset(p, PaperNoiseFrac, 99)
	for i, w := range want {
		v, _ := m.At(u)
		if v != w {
			t.Fatalf("draw %d after Reset = %v, fresh model gives %v", i, v, w)
		}
	}

	// Disabling noise via Reset must produce deterministic estimates.
	m.Reset(p, 0, 0)
	a, _ := m.At(u)
	b, _ := m.At(u)
	if a != b {
		t.Fatalf("noiseless resets still vary: %v vs %v", a, b)
	}
}

// TestBuildScaledValidationError checks the fused path returns the same
// wrapped validation error Estimate would.
func TestBuildScaledValidationError(t *testing.T) {
	devs := device.NewRegistry()
	p, err := devs.Lookup("nexus6")
	if err != nil {
		t.Fatal(err)
	}
	bad := &trace.UtilizationTrace{PeriodMS: 0}
	m := NewModel(p)
	_, wantErr := m.Estimate(bad)
	var ix Index
	gotErr := ix.BuildScaled(m, bad, 1)
	if wantErr == nil || gotErr == nil {
		t.Fatalf("expected errors, got %v and %v", wantErr, gotErr)
	}
	if wantErr.Error() != gotErr.Error() {
		t.Fatalf("error text diverged:\n  Estimate:    %s\n  BuildScaled: %s", wantErr, gotErr)
	}
}
