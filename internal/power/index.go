package power

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Attribution-path counters: one lookup per event instance, one build
// per bundle. Their ratio on /metrics shows whether the O(log S) index
// is amortizing (many lookups per build) on a live corpus.
var (
	mIndexBuilds  = obs.Default.Counter("power_index_builds_total", "prefix-sum power indexes built")
	mIndexLookups = obs.Default.Counter("power_index_lookups_total", "interval mean-power queries answered by the index")
)

// Index is a precomputed prefix-sum index over a power trace that
// answers interval mean-power queries in O(log S) instead of the
// O(S) scan of a naive implementation. Step 1 of the analysis builds
// one per bundle and queries it once per event instance, so power
// attribution drops from O(events x samples) to O(events x log
// samples) per trace.
//
// The index preserves the exact semantics of the scan it replaces:
// the interval is [startMS, endMS) (end-exclusive — a sample taken at
// the instant an event completes reflects the state the event left
// behind, not the event itself), and when no sample falls inside the
// interval the sample nearest to the interval midpoint is used, ties
// and duplicate timestamps resolving to the earliest sample.
type Index struct {
	ts     []int64
	power  []float64
	prefix []float64 // prefix[i] = sum of power[:i]
}

// NewIndex builds the index for a power trace. Samples are expected in
// non-decreasing timestamp order (the order trace validation enforces
// and the power model emits); out-of-order samples are sorted into a
// private copy, stably, so queries still answer over the same sample
// multiset.
func NewIndex(pt *trace.PowerTrace) *Index {
	n := len(pt.Samples)
	ix := &Index{
		ts:     make([]int64, n),
		power:  make([]float64, n),
		prefix: make([]float64, n+1),
	}
	sorted := true
	for i, s := range pt.Samples {
		ix.ts[i] = s.TimestampMS
		ix.power[i] = s.PowerMW
		if i > 0 && s.TimestampMS < ix.ts[i-1] {
			sorted = false
		}
	}
	if !sorted {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return pt.Samples[idx[a]].TimestampMS < pt.Samples[idx[b]].TimestampMS
		})
		for i, j := range idx {
			ix.ts[i] = pt.Samples[j].TimestampMS
			ix.power[i] = pt.Samples[j].PowerMW
		}
	}
	for i, p := range ix.power {
		ix.prefix[i+1] = ix.prefix[i] + p
	}
	mIndexBuilds.Inc()
	return ix
}

// Len returns the number of indexed samples.
func (ix *Index) Len() int { return len(ix.ts) }

// MeanBetween returns the mean power of samples with timestamps in
// [startMS, endMS), falling back to the sample nearest to the interval
// midpoint when the interval holds none (events shorter than the
// sampling period). The boolean is false only for an empty trace.
func (ix *Index) MeanBetween(startMS, endMS int64) (float64, bool) {
	mIndexLookups.Inc()
	n := len(ix.ts)
	if n == 0 {
		return 0, false
	}
	lo := sort.Search(n, func(i int) bool { return ix.ts[i] >= startMS })
	hi := sort.Search(n, func(i int) bool { return ix.ts[i] >= endMS })
	if hi > lo {
		return (ix.prefix[hi] - ix.prefix[lo]) / float64(hi-lo), true
	}

	// Nearest-sample fallback: the candidates are the last sample
	// before the midpoint and the first at-or-after it; distance ties
	// go to the earlier sample, and duplicate timestamps resolve to
	// the first sample bearing the winning timestamp, matching the
	// left-to-right scan this replaced.
	mid := (startMS + endMS) / 2
	pos := sort.Search(n, func(i int) bool { return ix.ts[i] >= mid })
	best := pos
	if pos == n {
		best = n - 1
	} else if pos > 0 && mid-ix.ts[pos-1] <= ix.ts[pos]-mid {
		best = pos - 1
	}
	if t := ix.ts[best]; best > 0 && ix.ts[best-1] == t {
		best = sort.Search(n, func(i int) bool { return ix.ts[i] >= t })
	}
	return ix.power[best], true
}
