package power

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Attribution-path counters: one lookup per event instance, one build
// per bundle. Their ratio on /metrics shows whether the O(log S) index
// is amortizing (many lookups per build) on a live corpus.
var (
	mIndexBuilds  = obs.Default.Counter("power_index_builds_total", "prefix-sum power indexes built")
	mIndexLookups = obs.Default.Counter("power_index_lookups_total", "interval mean-power queries answered by the index")
)

// Index is a precomputed prefix-sum index over a power trace that
// answers interval mean-power queries in O(log S) instead of the
// O(S) scan of a naive implementation. Step 1 of the analysis builds
// one per bundle and queries it once per event instance, so power
// attribution drops from O(events x samples) to O(events x log
// samples) per trace.
//
// The index preserves the exact semantics of the scan it replaces:
// the interval is [startMS, endMS) (end-exclusive — a sample taken at
// the instant an event completes reflects the state the event left
// behind, not the event itself), and when no sample falls inside the
// interval the sample nearest to the interval midpoint is used, ties
// and duplicate timestamps resolving to the earliest sample.
type Index struct {
	ts     []int64
	power  []float64
	prefix []float64 // prefix[i] = sum of power[:i]
}

// NewIndex builds the index for a power trace. Samples are expected in
// non-decreasing timestamp order (the order trace validation enforces
// and the power model emits); out-of-order samples are sorted into a
// private copy, stably, so queries still answer over the same sample
// multiset.
func NewIndex(pt *trace.PowerTrace) *Index {
	n := len(pt.Samples)
	ix := &Index{
		ts:     make([]int64, n),
		power:  make([]float64, n),
		prefix: make([]float64, n+1),
	}
	sorted := true
	for i, s := range pt.Samples {
		ix.ts[i] = s.TimestampMS
		ix.power[i] = s.PowerMW
		if i > 0 && s.TimestampMS < ix.ts[i-1] {
			sorted = false
		}
	}
	if !sorted {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return pt.Samples[idx[a]].TimestampMS < pt.Samples[idx[b]].TimestampMS
		})
		for i, j := range idx {
			ix.ts[i] = pt.Samples[j].TimestampMS
			ix.power[i] = pt.Samples[j].PowerMW
		}
	}
	for i, p := range ix.power {
		ix.prefix[i+1] = ix.prefix[i] + p
	}
	mIndexBuilds.Inc()
	return ix
}

// Len returns the number of indexed samples.
func (ix *Index) Len() int { return len(ix.ts) }

// BuildScaled refills the index in place from a utilization trace: each
// sample's power is the model's estimate scaled by factor. It fuses
// Model.Estimate + Scale + NewIndex without materializing the two
// intermediate PowerTraces, and reuses the index's backing arrays, so a
// pooled Index makes steady-state Step-1 attribution allocation-free.
// The arithmetic is performed in the same order as the fused calls
// (estimate the total, then multiply by the factor), so the resulting
// prefix sums are bit-identical to the unfused path. Validation failures
// return the same wrapped error Estimate would.
func (ix *Index) BuildScaled(m *Model, ut *trace.UtilizationTrace, factor float64) error {
	if err := ut.Validate(); err != nil {
		return fmt.Errorf("estimate power: %w", err)
	}
	n := len(ut.Samples)
	ix.ts = growI64(ix.ts, n)
	ix.power = growF64(ix.power, n)
	ix.prefix = growF64(ix.prefix, n+1)
	ix.prefix[0] = 0
	// A validated utilization trace is sorted, so no sort pass is needed:
	// the timestamps land in the index exactly as NewIndex would store
	// them.
	for i := range ut.Samples {
		s := &ut.Samples[i]
		total, _ := m.At(s.Util)
		total *= factor
		ix.ts[i] = s.TimestampMS
		ix.power[i] = total
		ix.prefix[i+1] = ix.prefix[i] + total
	}
	mIndexBuilds.Inc()
	return nil
}

// growI64 returns s resized to n, reallocating only when capacity is
// short; contents are not preserved.
func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// MeanBetween returns the mean power of samples with timestamps in
// [startMS, endMS), falling back to the sample nearest to the interval
// midpoint when the interval holds none (events shorter than the
// sampling period). The boolean is false only for an empty trace.
func (ix *Index) MeanBetween(startMS, endMS int64) (float64, bool) {
	mIndexLookups.Inc()
	n := len(ix.ts)
	if n == 0 {
		return 0, false
	}
	lo := sort.Search(n, func(i int) bool { return ix.ts[i] >= startMS })
	hi := sort.Search(n, func(i int) bool { return ix.ts[i] >= endMS })
	if hi > lo {
		return (ix.prefix[hi] - ix.prefix[lo]) / float64(hi-lo), true
	}

	// Nearest-sample fallback: the candidates are the last sample
	// before the midpoint and the first at-or-after it; distance ties
	// go to the earlier sample, and duplicate timestamps resolve to
	// the first sample bearing the winning timestamp, matching the
	// left-to-right scan this replaced.
	mid := (startMS + endMS) / 2
	pos := sort.Search(n, func(i int) bool { return ix.ts[i] >= mid })
	best := pos
	if pos == n {
		best = n - 1
	} else if pos > 0 && mid-ix.ts[pos-1] <= ix.ts[pos]-mid {
		best = pos - 1
	}
	if t := ix.ts[best]; best > 0 && ix.ts[best-1] == t {
		best = sort.Search(n, func(i int) bool { return ix.ts[i] >= t })
	}
	return ix.power[best], true
}
