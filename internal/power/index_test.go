package power

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// naiveMeanBetween is the O(S) reference implementation the index
// replaced (kept here as the oracle for equivalence testing).
func naiveMeanBetween(pt *trace.PowerTrace, startMS, endMS int64) (float64, bool) {
	if len(pt.Samples) == 0 {
		return 0, false
	}
	var sum float64
	n := 0
	for _, s := range pt.Samples {
		if s.TimestampMS >= startMS && s.TimestampMS < endMS {
			sum += s.PowerMW
			n++
		}
	}
	if n > 0 {
		return sum / float64(n), true
	}
	mid := (startMS + endMS) / 2
	best := pt.Samples[0]
	bestDist := absI64(best.TimestampMS - mid)
	for _, s := range pt.Samples[1:] {
		if d := absI64(s.TimestampMS - mid); d < bestDist {
			best, bestDist = s, d
		}
	}
	return best.PowerMW, true
}

func absI64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func makeTrace(ts []int64, mw []float64) *trace.PowerTrace {
	pt := &trace.PowerTrace{AppID: "test", Device: "nexus6"}
	for i := range ts {
		pt.Samples = append(pt.Samples, trace.PowerSample{TimestampMS: ts[i], PowerMW: mw[i]})
	}
	return pt
}

func TestIndexEmptyTrace(t *testing.T) {
	ix := NewIndex(&trace.PowerTrace{})
	if _, ok := ix.MeanBetween(0, 1000); ok {
		t.Fatal("empty trace should report no samples")
	}
}

func TestIndexIntervalMean(t *testing.T) {
	pt := makeTrace(
		[]int64{0, 500, 1000, 1500, 2000, 2500},
		[]float64{100, 200, 300, 400, 500, 600},
	)
	ix := NewIndex(pt)
	cases := []struct {
		start, end int64
		want       float64
	}{
		{0, 3000, 350},   // whole trace
		{500, 1501, 300}, // samples at 500, 1000, 1500
		{500, 1500, 250}, // end-exclusive: 1500 excluded
		{0, 1, 100},      // single sample
		{2400, 9999, 600},
	}
	for _, c := range cases {
		got, ok := ix.MeanBetween(c.start, c.end)
		if !ok {
			t.Fatalf("[%d, %d): no samples", c.start, c.end)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("[%d, %d): got %v, want %v", c.start, c.end, got, c.want)
		}
	}
}

func TestIndexNearestFallback(t *testing.T) {
	pt := makeTrace(
		[]int64{0, 1000, 2000},
		[]float64{10, 20, 30},
	)
	ix := NewIndex(pt)
	cases := []struct {
		start, end int64
		want       float64
	}{
		{1100, 1200, 20}, // mid 1150 nearest 1000
		{1600, 1900, 30}, // mid 1750 nearest 2000
		{-500, -100, 10}, // before the trace
		{5000, 6000, 30}, // after the trace
		{400, 600, 10},   // mid 500: equidistant, earlier sample wins
		{1400, 1600, 20}, // mid 1500: equidistant, earlier sample wins
	}
	for _, c := range cases {
		got, ok := ix.MeanBetween(c.start, c.end)
		if !ok {
			t.Fatalf("[%d, %d): no result", c.start, c.end)
		}
		if got != c.want {
			t.Errorf("[%d, %d): got %v, want %v", c.start, c.end, got, c.want)
		}
	}
}

func TestIndexDuplicateTimestamps(t *testing.T) {
	// Two samples share t=1000 with different powers; the earliest one
	// must win the fallback, as in the linear scan.
	pt := makeTrace(
		[]int64{0, 1000, 1000, 3000},
		[]float64{1, 42, 99, 7},
	)
	ix := NewIndex(pt)
	got, ok := ix.MeanBetween(900, 1000) // mid 950, nearest ts 1000
	if !ok || got != 42 {
		t.Fatalf("duplicate fallback: got %v ok=%v, want 42", got, ok)
	}
}

// TestIndexMatchesNaive cross-checks the index against the linear
// reference on randomized sorted traces and randomized query windows,
// including degenerate and out-of-range windows.
func TestIndexMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		n := 1 + rng.Intn(60)
		ts := make([]int64, n)
		mw := make([]float64, n)
		cur := int64(rng.Intn(100))
		for i := 0; i < n; i++ {
			ts[i] = cur
			cur += int64(rng.Intn(700)) // 0 step => duplicate timestamps
			mw[i] = 50 + 2000*rng.Float64()
		}
		pt := makeTrace(ts, mw)
		ix := NewIndex(pt)
		span := ts[n-1] - ts[0] + 1000
		for q := 0; q < 200; q++ {
			start := ts[0] - 500 + int64(rng.Int63n(span+1000))
			end := start + int64(rng.Intn(2000))
			want, wok := naiveMeanBetween(pt, start, end)
			got, gok := ix.MeanBetween(start, end)
			if wok != gok {
				t.Fatalf("round %d [%d, %d): ok mismatch naive=%v index=%v", round, start, end, wok, gok)
			}
			if !wok {
				continue
			}
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("round %d [%d, %d): naive %v, index %v", round, start, end, want, got)
			}
		}
	}
}

func BenchmarkIndexMeanBetween(b *testing.B) {
	const n = 2048
	ts := make([]int64, n)
	mw := make([]float64, n)
	for i := range ts {
		ts[i] = int64(i) * 500
		mw[i] = float64(300 + i%700)
	}
	pt := makeTrace(ts, mw)
	ix := NewIndex(pt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := int64((i % n) * 500)
		if _, ok := ix.MeanBetween(start, start+1700); !ok {
			b.Fatal("no samples")
		}
	}
}
