// Package power implements the utilization-based online power model that
// EnergyDx adopts from Zhang et al. [20]: the app's power at each sample
// is a linear combination of per-component utilization and device-specific
// coefficients, plus a base term. The paper reports the model's estimation
// error is below 2.5%, "sufficient to characterize the app power
// transition"; the estimator therefore supports injecting bounded Gaussian
// noise so downstream analysis is exercised under realistic error.
//
// The package also implements the power-model scaling of Mittal et al.
// [22] that Step 1 applies so traces from heterogeneous phones become
// comparable, and power breakdowns by component (paper Figs 11 and 14).
package power

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/device"
	"repro/internal/trace"
)

// ErrNoSamples is returned when an estimation input has no samples.
var ErrNoSamples = errors.New("power: utilization trace has no samples")

// Model estimates app power from utilization on a specific device.
type Model struct {
	profile Profile
	// noiseFrac is the standard deviation of multiplicative Gaussian
	// noise applied to each estimate (0 disables noise). The paper's
	// model error bound of 2.5% corresponds to noiseFrac = 0.025.
	noiseFrac float64
	rng       *rand.Rand
}

// Profile is an alias re-exported so callers do not need to import
// device directly when constructing models.
type Profile = device.Profile

// Option configures a Model.
type Option func(*Model)

// WithNoise enables multiplicative Gaussian estimation noise with the
// given fractional standard deviation (e.g. 0.025 for the paper's 2.5%
// bound), driven by the given seed for reproducibility.
func WithNoise(frac float64, seed int64) Option {
	return func(m *Model) {
		m.noiseFrac = frac
		m.rng = rand.New(rand.NewSource(seed))
	}
}

// NewModel builds a power model for the given device profile.
func NewModel(p Profile, opts ...Option) *Model {
	m := &Model{profile: p}
	for _, o := range opts {
		o(m)
	}
	return m
}

// PaperNoiseFrac is the paper's reported power-model error bound (2.5%).
const PaperNoiseFrac = 0.025

// Reset reconfigures the model in place for a new device profile and
// noise setting, so a pooled Model can be reused across bundles without
// reallocating. Reseeding the retained RNG yields the same draw sequence
// as a freshly constructed rand.New(rand.NewSource(seed)), so estimates
// are identical to a NewModel(p, WithNoise(frac, seed)) model.
func (m *Model) Reset(p Profile, noiseFrac float64, seed int64) {
	m.profile = p
	m.noiseFrac = noiseFrac
	if noiseFrac <= 0 {
		return
	}
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(seed))
		return
	}
	m.rng.Seed(seed)
}

// At estimates instantaneous app power (mW) and its per-component
// breakdown from one utilization vector. The breakdown excludes the base
// term and estimation noise so components always sum to at most the total.
func (m *Model) At(u trace.UtilizationVector) (totalMW float64, breakdown trace.UtilizationVector) {
	total := m.profile.BaseMW
	for i, c := range trace.Components() {
		p := u[i] * m.profile.Coeff(c)
		breakdown[i] = p
		total += p
	}
	if m.noiseFrac > 0 && m.rng != nil {
		// Truncate at 3 sigma so a single unlucky draw cannot fabricate
		// a power transition.
		n := m.rng.NormFloat64() * m.noiseFrac
		if n > 3*m.noiseFrac {
			n = 3 * m.noiseFrac
		}
		if n < -3*m.noiseFrac {
			n = -3 * m.noiseFrac
		}
		total *= 1 + n
	}
	return total, breakdown
}

// Estimate converts a utilization trace into a power trace sample by
// sample.
func (m *Model) Estimate(ut *trace.UtilizationTrace) (*trace.PowerTrace, error) {
	if err := ut.Validate(); err != nil {
		return nil, fmt.Errorf("estimate power: %w", err)
	}
	pt := &trace.PowerTrace{
		AppID:   ut.AppID,
		Device:  m.profile.Name,
		Samples: make([]trace.PowerSample, 0, len(ut.Samples)),
	}
	for _, s := range ut.Samples {
		total, breakdown := m.At(s.Util)
		pt.Samples = append(pt.Samples, trace.PowerSample{
			TimestampMS: s.TimestampMS,
			PowerMW:     total,
			Breakdown:   breakdown,
		})
	}
	return pt, nil
}

// Scale converts a power trace measured on device `from` into the
// reference device `to`'s terms using the whole-model scaling factor of
// [22]. The input is not modified.
func Scale(pt *trace.PowerTrace, from, to *device.Profile) *trace.PowerTrace {
	factor := device.ScaleFactor(from, to)
	out := &trace.PowerTrace{
		AppID:   pt.AppID,
		Device:  to.Name,
		Samples: make([]trace.PowerSample, len(pt.Samples)),
	}
	for i, s := range pt.Samples {
		ns := s
		ns.PowerMW *= factor
		for j := range ns.Breakdown {
			ns.Breakdown[j] *= factor
		}
		out.Samples[i] = ns
	}
	return out
}

// MeanPowerMW returns the average total power of a trace (used for the
// Fig-17 before/after-fix comparison).
func MeanPowerMW(pt *trace.PowerTrace) (float64, error) {
	if len(pt.Samples) == 0 {
		return 0, ErrNoSamples
	}
	var sum float64
	for _, s := range pt.Samples {
		sum += s.PowerMW
	}
	return sum / float64(len(pt.Samples)), nil
}

// Breakdown is the average per-component power over a window, the data
// behind the paper's power-breakdown figures (Fig 11: GPS draws power
// with the display off; Fig 14: CPU-heavy retry loop).
type Breakdown struct {
	StartMS     int64                              `json:"startMillis"`
	EndMS       int64                              `json:"endMillis"`
	MeanTotalMW float64                            `json:"meanTotalMilliwatts"`
	ByComponent map[trace.Component]float64        `json:"-"`
	Components  [trace.NumComponents]BreakdownItem `json:"components"`
}

// BreakdownItem names one component's share for serialization.
type BreakdownItem struct {
	Component string  `json:"component"`
	MeanMW    float64 `json:"meanMilliwatts"`
}

// BreakdownBetween averages per-component power over samples whose
// timestamps fall inside [startMS, endMS].
func BreakdownBetween(pt *trace.PowerTrace, startMS, endMS int64) (Breakdown, error) {
	b := Breakdown{
		StartMS:     startMS,
		EndMS:       endMS,
		ByComponent: make(map[trace.Component]float64, trace.NumComponents),
	}
	var acc trace.UtilizationVector
	var total float64
	n := 0
	for _, s := range pt.Samples {
		if s.TimestampMS < startMS || s.TimestampMS > endMS {
			continue
		}
		for i := range acc {
			acc[i] += s.Breakdown[i]
		}
		total += s.PowerMW
		n++
	}
	if n == 0 {
		return Breakdown{}, fmt.Errorf("power: no samples in window [%d, %d]: %w", startMS, endMS, ErrNoSamples)
	}
	b.MeanTotalMW = total / float64(n)
	for i, c := range trace.Components() {
		mean := acc[i] / float64(n)
		b.ByComponent[c] = mean
		b.Components[i] = BreakdownItem{Component: c.String(), MeanMW: mean}
	}
	return b, nil
}

// RelativeError returns |est-truth|/truth, a helper for verifying the
// model's error bound in tests and the overhead experiment.
func RelativeError(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}
