package power

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

// This file implements power-model *generation*: the procedure of Zhang
// et al. [20] that regresses measured whole-phone power against
// component utilization to obtain a device's per-component coefficients
// and base power. A deployed EnergyDx would run this once per device
// model against battery-fuel-gauge readings; here it lets tests and
// experiments recover a device profile from labelled samples and
// verifies the model's linearity assumption end to end.

// Observation pairs one utilization snapshot with the measured power.
type Observation struct {
	Util    trace.UtilizationVector `json:"util"`
	PowerMW float64                 `json:"powerMilliwatts"`
}

// FitResult is a trained power model with its goodness of fit.
type FitResult struct {
	Profile  Profile `json:"profile"`
	RSquared float64 `json:"rSquared"`
}

// Fit trains a device profile from observations via ordinary least
// squares: power = base + sum(coeff_c * util_c). At least one
// observation must exercise each component, otherwise the system is
// singular and an error is returned (a real calibration run cycles each
// component through its range for exactly this reason).
func Fit(name string, obs []Observation) (FitResult, error) {
	if len(obs) == 0 {
		return FitResult{}, fmt.Errorf("power: no observations: %w", stats.ErrEmpty)
	}
	const p = trace.NumComponents + 1 // intercept + one coefficient per component
	x := make([][]float64, len(obs))
	y := make([]float64, len(obs))
	for i, o := range obs {
		row := make([]float64, p)
		row[0] = 1
		for j := 0; j < trace.NumComponents; j++ {
			row[j+1] = o.Util[j]
		}
		x[i] = row
		y[i] = o.PowerMW
	}
	beta, err := stats.LeastSquares(x, y)
	if err != nil {
		return FitResult{}, fmt.Errorf("power: fit %q: %w", name, err)
	}
	res := FitResult{Profile: Profile{Name: name, BaseMW: beta[0]}}
	for j := 0; j < trace.NumComponents; j++ {
		res.Profile.CoeffMW[j] = beta[j+1]
	}
	// Goodness of fit on the training data.
	model := NewModel(res.Profile)
	pred := make([]float64, len(obs))
	for i, o := range obs {
		pred[i], _ = model.At(o.Util)
	}
	r2, err := stats.RSquared(pred, y)
	if err != nil {
		return FitResult{}, fmt.Errorf("power: fit %q: %w", name, err)
	}
	res.RSquared = r2
	return res, nil
}
