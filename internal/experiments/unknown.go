package experiments

import (
	"fmt"
	"strings"

	"repro/internal/abd"
	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// UnknownResult backs the paper's central differentiation claim:
// "EnergyDx can diagnose ABD caused by various (and even unknown)
// issues" (§V). We inject a fault class that is NOT in the abd taxonomy
// — an animation storm: after the user opens a fancy gallery view, the
// app keeps re-rendering at full frame rate even when nothing changes,
// burning CPU *only while the app is foreground*. There is no leaked
// resource (No-sleep Detection finds nothing), and the drain rides on
// top of normal foreground power rather than any single API's energy
// (eDelta's per-API deviation stays under threshold) — yet the power
// transition at manifestation is exactly what Steps 2-4 detect.
type UnknownResult struct {
	EnergyDxDetected int
	ImpactedTraces   int
	TopEvents        []string
	TriggerReported  bool
	NoSleepDetected  bool
	EDeltaDetected   bool
	DiagnosisLines   int
	TotalLines       int
}

// ExperimentID implements Result.
func (r *UnknownResult) ExperimentID() string { return "unknown" }

// Render implements Result.
func (r *UnknownResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Unknown-issue diagnosis (extension, paper §V claim)\n")
	fmt.Fprintf(&sb, "fault: animation storm (full-rate re-render while foreground) — not in the\n")
	fmt.Fprintf(&sb, "no-sleep/loop/configuration taxonomy\n\n")
	fmt.Fprintf(&sb, "EnergyDx: manifestation points in %d of %d impacted traces; trigger reported: %v\n",
		r.EnergyDxDetected, r.ImpactedTraces, r.TriggerReported)
	for _, e := range r.TopEvents {
		fmt.Fprintln(&sb, "  "+e)
	}
	fmt.Fprintf(&sb, "  -> %d of %d lines to inspect\n\n", r.DiagnosisLines, r.TotalLines)
	fmt.Fprintf(&sb, "No-sleep Detection: detected=%v (no acquire/release to find)\n", r.NoSleepDetected)
	fmt.Fprintf(&sb, "eDelta:             detected=%v (deviation hides under normal foreground power)\n", r.EDeltaDetected)
	return sb.String()
}

// galleryStormApp builds an app with the un-taxonomized fault. The storm
// is wired directly into behaviors (an Acquire of CPU that the Home
// path's display loss doesn't stop would be a no-sleep; instead the
// storm runs only while foreground, stopping by itself in background —
// the event stream, not a leak, is the only clue).
func galleryStormApp() (*apps.App, error) {
	// Start from a healthy generated app shape by building a catalog
	// app and replacing its fault surface... simpler: hand-build.
	const (
		mainAct  = "Lcom/gallery/MainActivity"
		gallery  = "Lcom/gallery/GalleryView"
		settings = "Lcom/gallery/Settings"
	)
	b := android.BehaviorMap{}
	pkg := &apk.Package{AppID: "gallerystorm"}
	pkg.Classes = append(pkg.Classes,
		lifecycleClassForUnknown(mainAct, b, 24),
		lifecycleClassForUnknown(gallery, b, 31),
		lifecycleClassForUnknown(settings, b, 18),
	)

	// The storm: enabling the fancy-animation toggle starts continuous
	// re-rendering. It is modelled as a high-duty CPU loop that the
	// *pause* of the gallery stops — nothing leaks into the background,
	// so no-sleep analysis and background-power heuristics have nothing
	// to see; only the elevated power of the victim's subsequent
	// interactions betrays it.
	stormOn := trace.EventKey{Class: gallery, Callback: "onClick"}
	b[stormOn] = android.Behavior{
		LatencyMS: 600,
		Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: 0.3, DurationMS: 600}},
		Effects: []android.Effect{{
			Kind: android.EffectStartLoop, Name: "render-storm",
			Loop: android.LoopSpec{
				PeriodMS: 600, BurstMS: 560,
				Usages: []android.ComponentUsage{{Component: trace.CPU, Level: 0.75}},
			},
		}},
	}
	pause := trace.EventKey{Class: gallery, Callback: android.OnPause}
	pb := b[pause]
	pb.Effects = append(pb.Effects, android.Effect{Kind: android.EffectStopLoop, Name: "render-storm"})
	b[pause] = pb

	a := &apps.App{
		ID: 0, AppID: "gallerystorm", Name: "Gallery Storm", Downloads: "n/a",
		RootCause:          abd.Loop, // closest taxon; the *injection* below bypasses abd
		PaperCodeReduction: 0,
		MainActivity:       mainAct,
		// Normal users browse the gallery too (swipes give every trace
		// baseline instances of GalleryView:onTouch); only impacted
		// users hit the animation toggle.
		BrowseActivities: []string{mainAct, gallery, settings},
		Widgets: map[string][]string{
			mainAct:  {"onTouch"},
			gallery:  {"onTouch"},
			settings: {"onClick"},
		},
		TriggerScript: []android.Step{
			android.Launch(gallery),
			android.Tap("onClick"), // the storm starts
			android.Tap("onTouch"), // the user keeps swiping while it rages
			android.Wait(3_000),
			android.Tap("onTouch"),
			android.Wait(3_000),
			android.Tap("onTouch"),
			android.Wait(3_000),
			android.Home(),
		},
	}
	return apps.NewCustom(a, pkg, b)
}

// lifecycleClassForUnknown mirrors the case-study class builder without
// exporting it from apps: lifecycle methods with blocking behaviors.
func lifecycleClassForUnknown(name string, b android.BehaviorMap, widgetLines int) apk.Class {
	cls := apk.Class{Name: name}
	lines := map[string]int{
		android.OnCreate: 65, android.OnStart: 11, android.OnRestart: 9,
		android.OnResume: 22, android.OnPause: 17, android.OnStop: 12, android.OnDestroy: 10,
	}
	for _, cb := range []string{android.OnCreate, android.OnStart, android.OnRestart,
		android.OnResume, android.OnPause, android.OnStop, android.OnDestroy} {
		cls.Methods = append(cls.Methods, apk.Method{
			Name: cb, SourceLines: lines[cb],
			Body: []apk.Instruction{{Op: apk.OpWork}, {Op: apk.OpReturn}},
		})
		dur := int64(540)
		level := 0.3
		if cb == android.OnCreate {
			dur, level = 650, 0.5
		}
		b[trace.EventKey{Class: name, Callback: cb}] = android.Behavior{
			LatencyMS: dur,
			Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: level, DurationMS: dur}},
		}
	}
	for _, w := range []string{"onClick", "onTouch"} {
		cls.Methods = append(cls.Methods, apk.Method{
			Name: w, SourceLines: widgetLines,
			Body: []apk.Instruction{{Op: apk.OpWork}, {Op: apk.OpReturn}},
		})
		b[trace.EventKey{Class: name, Callback: w}] = android.Behavior{
			LatencyMS: 540,
			Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: 0.25, DurationMS: 540}},
		}
	}
	for i := 0; i < 4; i++ {
		cls.Methods = append(cls.Methods, apk.Method{
			Name: fmt.Sprintf("helper%d", i), SourceLines: 120 + 40*i,
			Body: []apk.Instruction{{Op: apk.OpWork}, {Op: apk.OpReturn}},
		})
	}
	return cls
}

// RunUnknown diagnoses the un-taxonomized fault with all three tools.
func RunUnknown(seed int64) (Result, error) {
	app, err := galleryStormApp()
	if err != nil {
		return nil, err
	}
	cfg := workload.DefaultConfig(app, seed)
	cfg.Users = corpusUsers
	cfg.ImpactedFraction = defaultImpacted
	corpus, err := workload.GenerateCached(cfg)
	if err != nil {
		return nil, err
	}

	acfg := core.DefaultConfig()
	acfg.DeveloperImpactPercent = corpus.ImpactedPercent
	analyzer, err := core.NewAnalyzer(acfg)
	if err != nil {
		return nil, err
	}
	report, err := analyzer.Analyze(corpus.Bundles)
	if err != nil {
		return nil, err
	}
	res := &UnknownResult{
		EnergyDxDetected: report.ImpactedTraces,
		ImpactedTraces:   len(corpus.ImpactedUsers),
		TotalLines:       app.TotalSourceLines(),
	}
	trigger := trace.EventKey{Class: "Lcom/gallery/GalleryView", Callback: "onClick"}
	for i, im := range report.TopEvents(2 * reportedEvents) {
		if im.Key == trigger || im.Key.Class == trigger.Class {
			res.TriggerReported = true
		}
		if i < reportedEvents {
			res.TopEvents = append(res.TopEvents,
				fmt.Sprintf("%d, [%s] %s", i+1, trace.ShortKey(im.Key), fmtPct(im.Percent)))
		}
	}
	cr, err := core.ComputeCodeReduction(report, app.Package(), reportedEvents)
	if err != nil {
		return nil, err
	}
	res.DiagnosisLines = cr.DiagnosisLines

	ns, err := baseline.DetectNoSleep(app.Package())
	if err != nil {
		return nil, err
	}
	res.NoSleepDetected = ns.Detected()

	ed, err := baseline.EDelta(baseline.DefaultEDeltaConfig(), corpus.Bundles)
	if err != nil {
		return nil, err
	}
	res.EDeltaDetected = ed.Detected()
	return res, nil
}
