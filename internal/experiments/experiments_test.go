package experiments

import (
	"strings"
	"testing"
)

// The experiment tests check the *shapes* the paper reports: who wins,
// by roughly what factor, and where the qualitative claims hold. They
// run the real pipeline end-to-end, so they are the system's integration
// tests.

const testSeed = 2020

func TestLookup(t *testing.T) {
	for _, e := range Registry() {
		run, title, err := Lookup(e.ID)
		if err != nil || run == nil || title == "" {
			t.Errorf("Lookup(%q): %v", e.ID, err)
		}
	}
	if _, _, err := Lookup("fig99"); err == nil {
		t.Error("unknown experiment resolved")
	}
}

func TestFig1EventDistanceShape(t *testing.T) {
	r, err := RunFig1(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := r.(*Fig1Result)
	if !ok {
		t.Fatalf("wrong type %T", r)
	}
	if len(res.Distances) < 30 {
		t.Errorf("only %d of 40 apps produced distances (undetected: %v)",
			len(res.Distances), res.Undetected)
	}
	// Paper: 90th percentile of event distances is 3 or shorter. Allow
	// modest slack for the synthetic workload's extra interleavings.
	if res.P90 > 6 {
		t.Errorf("90th percentile distance = %.1f, paper reports <= 3", res.P90)
	}
	if !strings.Contains(res.Render(), "90th percentile") {
		t.Error("render missing percentile line")
	}
}

func TestFig3PowerTransition(t *testing.T) {
	r, err := RunFig3(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig3Result)
	if res.Samples == 0 {
		t.Fatal("no power samples")
	}
	// The ABD must raise sustained power clearly (Fig 3's low->high).
	if res.MeanAfterMW < res.MeanBeforeMW*1.3 {
		t.Errorf("after %.0f mW vs before %.0f mW: no clear transition",
			res.MeanAfterMW, res.MeanBeforeMW)
	}
	if len(res.Sparkline) == 0 {
		t.Error("no sparkline")
	}
}

func TestFig7NormalizationRemovesRawTransitions(t *testing.T) {
	r, err := RunFig7(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig7Result)
	if res.NormManifestations == 0 {
		t.Fatal("no manifestation point detected")
	}
	// The whole point of Steps 2-3: far fewer points survive
	// normalization than raw transition counting.
	if res.NormManifestations >= res.RawTransitions && res.RawTransitions > 0 {
		t.Errorf("normalization did not reduce transitions: raw %d, norm %d",
			res.RawTransitions, res.NormManifestations)
	}
	// Normal traces stay clean (a few stragglers tolerated).
	if res.NormalTraces == 0 {
		t.Fatal("no normal traces in corpus")
	}
	cleanFrac := float64(res.NormalTracesClean) / float64(res.NormalTraces)
	if cleanFrac < 0.75 {
		t.Errorf("only %.0f%% of normal traces clean", cleanFrac*100)
	}
}

func TestTable2K9Events(t *testing.T) {
	r, err := RunTable2(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Table2Result)
	if len(res.Rows) == 0 {
		t.Fatal("no events reported")
	}
	text := strings.Join(res.Rows, "\n")
	// The reported events must concentrate on the K-9 ABD flow: the
	// MessageList the user returns to (the fault trigger), the
	// AccountSettings / MailService path, and the background idle that
	// makes the drain visible (paper Table II and Fig 2).
	related := 0
	for _, surface := range []string{"MessageList", "AccountSettings", "MailService", "Idle"} {
		related += strings.Count(text, surface)
	}
	if related < 3 {
		t.Errorf("reported events miss the K-9 ABD flow:\n%s", text)
	}
	if !strings.Contains(text, "MessageList:onResume") {
		t.Errorf("fault trigger MessageList:onResume not reported:\n%s", text)
	}
	if res.TotalLines != 98532 {
		t.Errorf("total lines = %d", res.TotalLines)
	}
	// The diagnosis set must be a tiny slice of the 98k-line app.
	if res.DiagnosisLines == 0 || res.DiagnosisLines > 2000 {
		t.Errorf("diagnosis lines = %d", res.DiagnosisLines)
	}
	if res.Reduction < 0.97 {
		t.Errorf("K-9 reduction = %.3f, paper reports 99%%", res.Reduction)
	}
}

func TestTable3AverageReduction(t *testing.T) {
	r, err := RunTable3(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Table3Result)
	if len(res.Apps) != 40 {
		t.Fatalf("apps = %d", len(res.Apps))
	}
	detected := 0
	for _, a := range res.Apps {
		if a.Detected {
			detected++
		}
	}
	if detected < 36 {
		t.Errorf("only %d/40 apps had manifestation points detected", detected)
	}
	// Paper headline: 93% average. The shape bound: clearly above the
	// CheckAll-style 67% and near 90.
	if res.AverageMeas < 85 {
		t.Errorf("average reduction = %.1f%%, paper reports 93%%", res.AverageMeas)
	}
}

func TestBaselineOrdering(t *testing.T) {
	r, err := RunBaselines(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*BaselinesResult)
	// No-sleep Detection finds exactly the no-sleep apps (24 in the
	// table; the paper's text says 21 — we follow the table).
	if res.NoSleepHits != 24 {
		t.Errorf("no-sleep hits = %d, want 24", res.NoSleepHits)
	}
	// The ordering the paper reports: EnergyDx beats both baselines.
	if res.EnergyDxAvg <= res.NoSleepAvg {
		t.Errorf("EnergyDx %.1f%% <= No-sleep %.1f%%", res.EnergyDxAvg, res.NoSleepAvg)
	}
	if res.EnergyDxAvg <= res.EDeltaAvg {
		t.Errorf("EnergyDx %.1f%% <= eDelta %.1f%%", res.EnergyDxAvg, res.EDeltaAvg)
	}
	// eDelta detects more than nothing but misses some apps (the
	// weak-drain blind spot).
	if res.EDeltaHits == 0 || res.EDeltaHits == res.Apps {
		t.Errorf("eDelta hits = %d of %d; expected partial coverage", res.EDeltaHits, res.Apps)
	}
}

func TestCaseStudies(t *testing.T) {
	tests := []struct {
		name string
		run  Runner
		// minExpected is how many paper-reported events must appear.
		minExpected int
	}{
		{"opengps", RunOpenGPS, 2},
		{"wallabag", RunWallabag, 1},
		{"tinfoil", RunTinfoil, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r, err := tt.run(testSeed)
			if err != nil {
				t.Fatal(err)
			}
			res := r.(*CaseStudyResult)
			if res.Manifestations == 0 {
				t.Fatal("no manifestation points")
			}
			if len(res.FoundExpected) < tt.minExpected {
				t.Errorf("found %v of expected %v\nreport:\n%s",
					res.FoundExpected, res.ExpectedEvents, res.Render())
			}
			if res.DiagnosisLines >= res.TotalLines/2 {
				t.Errorf("diagnosis %d of %d lines: no meaningful reduction",
					res.DiagnosisLines, res.TotalLines)
			}
		})
	}
}

func TestFig11GPSDominatesWithDisplayOff(t *testing.T) {
	r, err := RunFig11(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*BreakdownResult)
	if res.Dominant != "gps" {
		t.Errorf("dominant component = %s, want gps\n%s", res.Dominant, res.Render())
	}
	if res.DisplayMW != 0 {
		t.Errorf("display power = %.1f mW, want 0 (app is backgrounded)", res.DisplayMW)
	}
}

func TestFig14CPUDominates(t *testing.T) {
	r, err := RunFig14(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*BreakdownResult)
	if res.Dominant != "cpu" {
		t.Errorf("dominant component = %s, want cpu\n%s", res.Dominant, res.Render())
	}
}

func TestFig16EnergyDxBeatsCheckAll(t *testing.T) {
	r, err := RunFig16(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig16Result)
	if res.DxAvgLines >= res.CheckAvgLines {
		t.Errorf("EnergyDx lines %.0f >= CheckAll lines %.0f", res.DxAvgLines, res.CheckAvgLines)
	}
	if res.DxAvgPct <= res.CheckAvgPct {
		t.Errorf("EnergyDx %.1f%% <= CheckAll %.1f%%", res.DxAvgPct, res.CheckAvgPct)
	}
	// Paper: CheckAll makes developers read ~7x more code.
	if res.CheckAvgLines < 2*res.DxAvgLines {
		t.Errorf("CheckAll %.0f lines not clearly worse than EnergyDx %.0f",
			res.CheckAvgLines, res.DxAvgLines)
	}
}

func TestFig17PowerDropsAfterFix(t *testing.T) {
	r, err := RunFig17(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig17Result)
	if len(res.PerApp) != 40 {
		t.Fatalf("rows = %d", len(res.PerApp))
	}
	for _, row := range res.PerApp {
		if row.BuggyMW <= 0 || row.FixedMW <= 0 {
			t.Errorf("%s: non-positive power %v/%v", row.AppID, row.BuggyMW, row.FixedMW)
		}
	}
	// Paper: 27.2% average drop. Shape: a solid double-digit drop.
	if res.AvgDropPct < 10 {
		t.Errorf("average power drop = %.1f%%, paper reports 27.2%%", res.AvgDropPct)
	}
	if res.AvgDropPct > 90 {
		t.Errorf("average power drop = %.1f%%: implausibly large", res.AvgDropPct)
	}
}

func TestOverheadsModerate(t *testing.T) {
	r, err := RunOverheads(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*OverheadsResult)
	// Paper: +8.3% latency; our probes are calibrated to that figure.
	if res.LatencyOverheadPct < 4 || res.LatencyOverheadPct > 15 {
		t.Errorf("latency overhead = %.1f%%, paper reports 8.3%%", res.LatencyOverheadPct)
	}
	// Simulated callbacks block for their full operation (hundreds of
	// ms) so the absolute latency is not comparable to the paper's
	// 9.38 ms; the overhead *fraction* above is the calibrated metric.
	if res.MeanLatencyMS <= 0 || res.MeanLatencyMS > 3000 {
		t.Errorf("mean latency = %.2f ms", res.MeanLatencyMS)
	}
	if res.PowerOverheadMW <= 0 {
		t.Errorf("power overhead = %.1f mW, want positive", res.PowerOverheadMW)
	}
	if res.PowerOverheadPct > 15 {
		t.Errorf("power overhead = %.1f%%: not moderate", res.PowerOverheadPct)
	}
}

func TestTuneExtension(t *testing.T) {
	r, err := RunTune(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*TuneResult)
	if len(res.Candidates) != 2*3*4 {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
	if res.Best.MeanF1 < 0.8 {
		t.Errorf("best F1 = %.3f", res.Best.MeanF1)
	}
	if res.PaperRank == 0 {
		t.Fatal("paper operating point missing from grid")
	}
	// The published point must be competitive on training data.
	if res.PaperF1 < res.Best.MeanF1-0.1 {
		t.Errorf("paper point F1 %.3f far below best %.3f", res.PaperF1, res.Best.MeanF1)
	}
	// A zero amplitude floor under 2.5%% estimation noise must cost F1
	// somewhere in the grid (that is what the floor is for).
	sawWeakerNoFloor := false
	for _, c := range res.Candidates {
		if c.MinAmplitude == 0 && c.MeanF1 < res.Best.MeanF1 {
			sawWeakerNoFloor = true
		}
	}
	if !sawWeakerNoFloor {
		t.Error("amplitude floor never mattered; grid is degenerate")
	}
}

func TestEDoctorExtension(t *testing.T) {
	r, err := RunEDoctor(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*EDoctorResult)
	// App-level detection names the right app on most phones...
	if res.CorrectApp < res.Phones/2 {
		t.Errorf("eDoctor correct on %d of %d phones", res.CorrectApp, res.Phones)
	}
	// ...but EnergyDx narrows the same data to a small slice of the app.
	if res.EnergyDxLines == 0 || res.EnergyDxLines > res.TotalLines/10 {
		t.Errorf("EnergyDx lines = %d of %d", res.EnergyDxLines, res.TotalLines)
	}
	if len(res.TopEvents) == 0 {
		t.Error("no events reported")
	}
}

func TestStabilityExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("3x 40-app sweep in short mode")
	}
	r, err := RunStability(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*StabilityResult)
	if len(res.Reductions) != 3 {
		t.Fatalf("runs = %d", len(res.Reductions))
	}
	if res.Stddev > 2 {
		t.Errorf("cross-seed stddev = %.2f%%: conclusions seed-sensitive", res.Stddev)
	}
	if res.Mean < 85 {
		t.Errorf("mean reduction = %.1f%%", res.Mean)
	}
}

func TestUnknownFaultOnlyEnergyDxDiagnoses(t *testing.T) {
	r, err := RunUnknown(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*UnknownResult)
	// The paper's differentiation claim: the detection baselines are
	// blind to a fault class they were not designed for...
	if res.NoSleepDetected {
		t.Error("No-sleep Detection flagged a fault with no resource leak")
	}
	if res.EDeltaDetected {
		t.Error("eDelta flagged a fault below its deviation threshold")
	}
	// ...while the manifestation analysis still finds it.
	if res.EnergyDxDetected < res.ImpactedTraces/2+1 {
		t.Errorf("EnergyDx found %d of %d impacted traces", res.EnergyDxDetected, res.ImpactedTraces)
	}
	if !res.TriggerReported {
		t.Error("the gallery trigger surface was not reported")
	}
	if res.DiagnosisLines == 0 || res.DiagnosisLines > res.TotalLines/5 {
		t.Errorf("diagnosis lines = %d of %d", res.DiagnosisLines, res.TotalLines)
	}
}

func TestFig5Format(t *testing.T) {
	r, err := RunFig5(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig5Result)
	if len(res.Excerpt) == 0 || res.TotalRecords == 0 {
		t.Fatal("empty excerpt")
	}
	// Each line is "<ts> <+|-> <class>; <callback>".
	for _, line := range res.Excerpt {
		if !strings.Contains(line, " + ") && !strings.Contains(line, " - ") {
			t.Errorf("line %q lacks direction sigil", line)
		}
		if !strings.Contains(line, "; ") {
			t.Errorf("line %q lacks class/callback separator", line)
		}
	}
}

func TestAllRendersNonEmpty(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep in short mode")
	}
	for _, e := range Registry() {
		r, err := e.Run(testSeed)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if r.ExperimentID() != e.ID {
			t.Errorf("%s: result reports ID %q", e.ID, r.ExperimentID())
		}
		if len(r.Render()) < 40 {
			t.Errorf("%s: render too short", e.ID)
		}
	}
}

func TestIngestExtensionConverges(t *testing.T) {
	r, err := RunIngest(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*IngestResult)
	if res.Stored != res.Users {
		t.Errorf("stored %d of %d sessions; want exactly-once convergence", res.Stored, res.Users)
	}
	if mangled := res.Faults.Corrupted + res.Faults.Truncated; mangled == 0 {
		t.Error("fault schedule exercised no corruption")
	} else if res.Quarantined < mangled {
		t.Errorf("quarantined %d lines, want at least the %d mangled ones", res.Quarantined, mangled)
	}
	if !res.ReportIdentical {
		t.Error("diagnosis diverged from the fault-free golden")
	}
}
