package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/evaluate"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The scenario × detector matrix is the living extension of Table III:
// every scenario family (the paper's three root causes, the four new
// ABD kinds, and the battery-saver perturbation) runs through all five
// detectors, and each cell carries seed-bootstrap 95% confidence
// intervals so a new scenario ships with an accuracy verdict instead of
// a single point estimate.

// MatrixDetectors is the detector column order, fixed so rendered
// output is byte-stable.
var MatrixDetectors = []string{"EnergyDx", "CheckAll", "No-sleep", "eDelta", "eDoctor"}

// matrixSeeds is how many independent corpus seeds each (family, app)
// pair is run with; cells aggregate appsPerFamily × matrixSeeds runs.
const matrixSeeds = 3

// matrixResamples is the bootstrap replicate count per interval.
const matrixResamples = 1000

// matrixConfidence is the two-sided CI coverage.
const matrixConfidence = 0.95

// MatrixCell is one (scenario family, detector) measurement.
type MatrixCell struct {
	Family   string
	Detector string
	Runs     int
	// Accuracy is the detection rate in percent (a run scores 100 when
	// the detector's verdict points at the injected fault, 0 otherwise)
	// with its bootstrap CI.
	Accuracy evaluate.Interval
	// Reduction is the code-reduction percentage with its bootstrap CI.
	// Detection-only baselines follow the paper's accounting: 100% on a
	// hit, 0% on a miss; CheckAll and EnergyDx report measured values;
	// eDoctor's app-level verdict is always 0%.
	Reduction evaluate.Interval
}

// MatrixOverall is one detector's aggregate over every run of every
// family.
type MatrixOverall struct {
	Detector  string
	Runs      int
	Accuracy  evaluate.Interval
	Reduction evaluate.Interval
}

// MatrixResult is the full scenario × detector accuracy surface.
type MatrixResult struct {
	Families  []string
	Detectors []string
	// Cells is families × detectors, row-major in the order above.
	Cells []MatrixCell
	// Overall aggregates per detector across all runs, in detector order.
	Overall []MatrixOverall
	// Notes explains each family (what makes it hard), in family order.
	Notes []string
}

// ExperimentID implements Result.
func (r *MatrixResult) ExperimentID() string { return "matrix" }

// Cell returns the (family, detector) cell, or nil.
func (r *MatrixResult) Cell(family, detector string) *MatrixCell {
	for i := range r.Cells {
		if r.Cells[i].Family == family && r.Cells[i].Detector == detector {
			return &r.Cells[i]
		}
	}
	return nil
}

// OverallFor returns a detector's aggregate, or nil.
func (r *MatrixResult) OverallFor(detector string) *MatrixOverall {
	for i := range r.Overall {
		if r.Overall[i].Detector == detector {
			return &r.Overall[i]
		}
	}
	return nil
}

func fmtCI(iv evaluate.Interval) string {
	return fmt.Sprintf("%.1f [%.1f, %.1f]", iv.Mean, iv.Lo, iv.Hi)
}

// Render returns the matrix as GitHub-flavored markdown: one accuracy
// table, one code-reduction table, the per-detector overall row, and
// the per-family notes.
func (r *MatrixResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## Scenario × detector matrix (%d families × %d detectors, %d runs/cell, %v%% bootstrap CIs)\n",
		len(r.Families), len(r.Detectors), r.Cells[0].Runs, matrixConfidence*100)

	writeTable := func(title string, pick func(MatrixCell) evaluate.Interval, overall func(MatrixOverall) evaluate.Interval) {
		fmt.Fprintf(&sb, "\n### %s\n\n", title)
		fmt.Fprintf(&sb, "| scenario |")
		for _, d := range r.Detectors {
			fmt.Fprintf(&sb, " %s |", d)
		}
		fmt.Fprintf(&sb, "\n|---|")
		for range r.Detectors {
			fmt.Fprintf(&sb, "---|")
		}
		fmt.Fprintln(&sb)
		for fi, fam := range r.Families {
			fmt.Fprintf(&sb, "| %s |", fam)
			for di := range r.Detectors {
				fmt.Fprintf(&sb, " %s |", fmtCI(pick(r.Cells[fi*len(r.Detectors)+di])))
			}
			fmt.Fprintln(&sb)
		}
		fmt.Fprintf(&sb, "| **overall** |")
		for _, o := range r.Overall {
			fmt.Fprintf(&sb, " %s |", fmtCI(overall(o)))
		}
		fmt.Fprintln(&sb)
	}
	writeTable("Detection accuracy (%)",
		func(c MatrixCell) evaluate.Interval { return c.Accuracy },
		func(o MatrixOverall) evaluate.Interval { return o.Accuracy })
	writeTable("Code reduction (%)",
		func(c MatrixCell) evaluate.Interval { return c.Reduction },
		func(o MatrixOverall) evaluate.Interval { return o.Reduction })

	fmt.Fprintf(&sb, "\n### Scenario notes\n\n")
	for i, fam := range r.Families {
		fmt.Fprintf(&sb, "- **%s** — %s\n", fam, r.Notes[i])
	}
	return sb.String()
}

// CSVFiles exports the per-cell and overall tables.
func (r *MatrixResult) CSVFiles() map[string][][]string {
	cells := [][]string{{"family", "detector", "runs",
		"accuracy_pct", "accuracy_lo", "accuracy_hi",
		"reduction_pct", "reduction_lo", "reduction_hi"}}
	for _, c := range r.Cells {
		cells = append(cells, []string{
			c.Family, c.Detector, itoa(c.Runs),
			ftoa(c.Accuracy.Mean), ftoa(c.Accuracy.Lo), ftoa(c.Accuracy.Hi),
			ftoa(c.Reduction.Mean), ftoa(c.Reduction.Lo), ftoa(c.Reduction.Hi),
		})
	}
	overall := [][]string{{"detector", "runs",
		"accuracy_pct", "accuracy_lo", "accuracy_hi",
		"reduction_pct", "reduction_lo", "reduction_hi"}}
	for _, o := range r.Overall {
		overall = append(overall, []string{
			o.Detector, itoa(o.Runs),
			ftoa(o.Accuracy.Mean), ftoa(o.Accuracy.Lo), ftoa(o.Accuracy.Hi),
			ftoa(o.Reduction.Mean), ftoa(o.Reduction.Lo), ftoa(o.Reduction.Hi),
		})
	}
	return map[string][][]string{
		"matrix_cells.csv":   cells,
		"matrix_overall.csv": overall,
	}
}

var _ CSVExporter = (*MatrixResult)(nil)

// matrixRun is one (family, app, seed) run's five detector outcomes,
// in MatrixDetectors order.
type matrixRun struct {
	hit [5]bool
	red [5]float64
}

// relatedKey decides whether a reported event points at the injected
// fault: the trigger, the missed release point, anything in the
// trigger's class, or the background-idle pseudo-event the drain
// elevates (same relatedness the §IV-B comparison uses).
func relatedKey(key trace.EventKey, app *apps.App) bool { return eDeltaRelated(key, app) }

// runMatrixCell runs every detector over one corpus.
func runMatrixCell(app *apps.App, sc workload.Scenario, seed int64) (matrixRun, error) {
	var out matrixRun
	cfg := workload.DefaultConfig(app, seed)
	cfg.Users = corpusUsers
	cfg.ImpactedFraction = defaultImpacted
	cfg.BatterySaverPhase = sc.BatterySaverPhase
	corpus, err := workload.GenerateCached(cfg)
	if err != nil {
		return out, err
	}
	total := app.TotalSourceLines()

	// EnergyDx: full five-step pipeline; a hit requires a detected
	// manifestation AND a fault-related key among the reported events.
	report, err := diagnose(corpus)
	if err != nil {
		return out, fmt.Errorf("energydx: %w", err)
	}
	cr, err := core.ComputeCodeReduction(report, app.Package(), reportedEvents)
	if err != nil {
		return out, fmt.Errorf("energydx: %w", err)
	}
	if report.ImpactedTraces > 0 {
		for _, key := range report.TopKeys(reportedEvents) {
			if relatedKey(key, app) {
				out.hit[0] = true
				break
			}
		}
	}
	out.red[0] = cr.Reduction * 100

	// CheckAll: Step-1-only transition windows; measured code reduction.
	ca, err := baseline.CheckAll(baseline.DefaultCheckAllConfig(), corpus.Bundles)
	if err != nil {
		return out, fmt.Errorf("checkall: %w", err)
	}
	for _, key := range ca.Keys {
		if relatedKey(key, app) {
			out.hit[1] = true
			break
		}
	}
	caLines := app.Package().LinesFor(ca.Keys)
	out.red[1] = 100 * float64(total-caLines) / float64(total)

	// No-sleep Detection: static acquire-without-release; per the
	// paper's accounting a detection baseline scores 100% reduction on
	// a hit and 0% on a miss.
	ns, err := baseline.DetectNoSleep(app.Package())
	if err != nil {
		return out, fmt.Errorf("no-sleep: %w", err)
	}
	for _, f := range ns.Findings {
		if f.Key == app.Fault.Trigger || f.Key.Class == app.Fault.Trigger.Class {
			out.hit[2] = true
			break
		}
	}
	if out.hit[2] {
		out.red[2] = 100
	}

	// eDelta: absolute per-API deviation threshold.
	ed, err := baseline.EDelta(baseline.DefaultEDeltaConfig(), corpus.Bundles)
	if err != nil {
		return out, fmt.Errorf("edelta: %w", err)
	}
	for _, f := range ed.Findings {
		if relatedKey(f.Key, app) {
			out.hit[3] = true
			break
		}
	}
	if out.hit[3] {
		out.red[3] = 100
	}

	// eDoctor: app-level abnormal-phase verdict per user phone; a hit
	// flags the app on at least one phone, and the in-app code
	// reduction is 0 by construction.
	utils := make([]*trace.UtilizationTrace, len(corpus.Bundles))
	for i, b := range corpus.Bundles {
		utils[i] = &b.Util
	}
	edoc, err := baseline.EDoctor(baseline.DefaultEDoctorConfig(), utils)
	if err != nil {
		return out, fmt.Errorf("edoctor: %w", err)
	}
	for _, a := range edoc.Apps {
		if a.Flagged {
			out.hit[4] = true
			break
		}
	}
	out.red[4] = 0
	return out, nil
}

// RunMatrix measures the scenario × detector matrix. Runs fan out
// through the shared pool — one item per (family, app, seed), joined
// in input order — and per-cell bootstrap RNGs are seeded from the cell
// position, so the result is byte-identical at any parallelism.
func RunMatrix(seed int64) (Result, error) {
	scenarios := workload.Scenarios()

	type runKey struct {
		fam, app, seedIdx int
	}
	var keys []runKey
	var scApps [][]*apps.App
	for fi, sc := range scenarios {
		resolved := make([]*apps.App, len(sc.AppIDs))
		for ai, id := range sc.AppIDs {
			a, err := apps.ByAppID(id)
			if err != nil {
				return nil, fmt.Errorf("matrix: scenario %s: %w", sc.Family, err)
			}
			resolved[ai] = a
			for s := 0; s < matrixSeeds; s++ {
				keys = append(keys, runKey{fam: fi, app: ai, seedIdx: s})
			}
		}
		scApps = append(scApps, resolved)
	}

	runs, err := parallel.Map(sweepParallelism, len(keys), func(i int) (matrixRun, error) {
		k := keys[i]
		sc := scenarios[k.fam]
		app := scApps[k.fam][k.app]
		runSeed := seed + int64(k.fam)*10_000 + int64(k.app)*1_000 + int64(k.seedIdx)
		run, err := runMatrixCell(app, sc, runSeed)
		if err != nil {
			return matrixRun{}, fmt.Errorf("%s/%s seed %d: %w", sc.Family, app.AppID, k.seedIdx, err)
		}
		return run, nil
	})
	if err != nil {
		return nil, err
	}

	res := &MatrixResult{Detectors: MatrixDetectors}
	// Group runs per family (keys are family-major, so runs are too).
	perFam := make([][]matrixRun, len(scenarios))
	for i, k := range keys {
		perFam[k.fam] = append(perFam[k.fam], runs[i])
	}
	allAcc := make([][]float64, len(MatrixDetectors))
	allRed := make([][]float64, len(MatrixDetectors))
	for fi, sc := range scenarios {
		res.Families = append(res.Families, sc.Family)
		res.Notes = append(res.Notes, sc.Notes)
		for di, det := range MatrixDetectors {
			var acc, red []float64
			for _, run := range perFam[fi] {
				v := 0.0
				if run.hit[di] {
					v = 100
				}
				acc = append(acc, v)
				red = append(red, run.red[di])
			}
			allAcc[di] = append(allAcc[di], acc...)
			allRed[di] = append(allRed[di], red...)
			cellSeed := seed + int64(fi)*100 + int64(di)
			cell := MatrixCell{
				Family:    sc.Family,
				Detector:  det,
				Runs:      len(acc),
				Accuracy:  evaluate.BootstrapCI(acc, matrixConfidence, matrixResamples, cellSeed),
				Reduction: evaluate.BootstrapCI(red, matrixConfidence, matrixResamples, cellSeed+50),
			}
			res.Cells = append(res.Cells, cell)
			exportMatrixCell(cell)
		}
	}
	for di, det := range MatrixDetectors {
		o := MatrixOverall{
			Detector:  det,
			Runs:      len(allAcc[di]),
			Accuracy:  evaluate.BootstrapCI(allAcc[di], matrixConfidence, matrixResamples, seed+90_000+int64(di)),
			Reduction: evaluate.BootstrapCI(allRed[di], matrixConfidence, matrixResamples, seed+91_000+int64(di)),
		}
		res.Overall = append(res.Overall, o)
		obs.Default.Gauge("matrix_overall_accuracy_pct_"+metricName(det),
			"overall detection accuracy of "+det+" across all scenario families").Set(o.Accuracy.Mean)
		obs.Default.Gauge("matrix_overall_reduction_pct_"+metricName(det),
			"overall code reduction of "+det+" across all scenario families").Set(o.Reduction.Mean)
	}
	return res, nil
}

// exportMatrixCell publishes one cell's point estimates as gauges.
func exportMatrixCell(c MatrixCell) {
	suffix := metricName(c.Family) + "_" + metricName(c.Detector)
	obs.Default.Gauge("matrix_accuracy_pct_"+suffix,
		"detection accuracy of "+c.Detector+" on the "+c.Family+" scenario family").Set(c.Accuracy.Mean)
	obs.Default.Gauge("matrix_reduction_pct_"+suffix,
		"code reduction of "+c.Detector+" on the "+c.Family+" scenario family").Set(c.Reduction.Mean)
}

// metricName lowercases a family/detector name and maps every
// non-alphanumeric rune to '_' (the obs registry accepts only
// [a-zA-Z0-9_]).
func metricName(s string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
