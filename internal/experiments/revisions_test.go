package experiments

import "testing"

func runRevisions(t *testing.T, seed int64) *RevisionsResult {
	t.Helper()
	r, err := RunRevisions(seed)
	if err != nil {
		t.Fatal(err)
	}
	return r.(*RevisionsResult)
}

// TestRevisionsAccuracy pins the ISSUE acceptance floor: the version
// diff must rank the true culprit edit first in at least 90% of the
// regression chains, and the gate must catch at least as many.
func TestRevisionsAccuracy(t *testing.T) {
	res := runRevisions(t, testSeed)
	if want := len(revisionApps) * len([]string{"hold", "loop", "hot"}) * revisionSeedsPerCell; res.RegressionChains != want {
		t.Fatalf("regression chains = %d, want %d", res.RegressionChains, want)
	}
	if res.CleanChains != len(revisionApps)*revisionCleanSeeds {
		t.Fatalf("clean chains = %d, want %d", res.CleanChains, len(revisionApps)*revisionCleanSeeds)
	}
	if acc := res.DetectionAccuracy(); acc < 0.9 {
		t.Errorf("culprit detection accuracy %.2f (%d/%d), want >= 0.90",
			acc, res.Detected, res.RegressionChains)
	}
	if res.GateCaught < res.Detected {
		t.Errorf("gate caught %d regressions but %d were detectable", res.GateCaught, res.Detected)
	}
}

// TestRevisionsGateClean: a healthy baseline evolving through benign
// edits must not trip the gate.
func TestRevisionsGateClean(t *testing.T) {
	res := runRevisions(t, testSeed)
	if res.CleanHops == 0 {
		t.Fatal("no clean hops evaluated")
	}
	if res.FalseTrips != 0 {
		t.Errorf("gate false-tripped %d/%d clean hops", res.FalseTrips, res.CleanHops)
	}
}

// TestRevisionsCacheReuse: delta feeding must actually reuse work — the
// shared corpus fraction and the revisit hit rate are the ISSUE's
// cache-reuse metrics.
func TestRevisionsCacheReuse(t *testing.T) {
	res := runRevisions(t, testSeed)
	if res.MeanShared < 0.5 {
		t.Errorf("mean shared corpus fraction %.2f, want >= 0.50 (delta feeding broken?)", res.MeanShared)
	}
	if res.RevisitChains == 0 {
		t.Fatal("no chain's revisit made any cache lookups")
	}
	if res.MeanRevisitRate < 0.9 {
		t.Errorf("mean revisit hit rate %.2f over %d chains, want >= 0.90 (step-1 cache not reused)",
			res.MeanRevisitRate, res.RevisitChains)
	}
	for _, row := range res.Rows {
		if row.Hops != revisionVersions-1 {
			t.Errorf("%s/%s seed %d: %d hops, want %d", row.AppID, row.Kind, row.Seed, row.Hops, revisionVersions-1)
		}
	}
}

// TestRevisionsCSV: the per-chain CSV export carries one row per chain.
func TestRevisionsCSV(t *testing.T) {
	res := runRevisions(t, testSeed)
	files := res.CSVFiles()
	rows, ok := files["revisions_chains.csv"]
	if !ok {
		t.Fatal("no revisions_chains.csv export")
	}
	if len(rows) != len(res.Rows)+1 {
		t.Fatalf("csv has %d data rows, want %d", len(rows)-1, len(res.Rows))
	}
	for i, r := range rows {
		if len(r) != len(rows[0]) {
			t.Fatalf("csv row %d has %d columns, want %d", i, len(r), len(rows[0]))
		}
	}
}
