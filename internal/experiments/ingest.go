package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/trace"
	"repro/internal/workload"
)

// IngestResult reports the fault-injected ingestion experiment: a
// volunteer fleet uploads a corpus through an unreliable network
// (seeded fault injection on the wire), and the collection tier must
// converge to the fault-free state.
type IngestResult struct {
	Users       int
	Faults      faults.Stats
	Stored      int
	Quarantined int
	// ReportIdentical is whether the diagnosis over the surviving
	// corpus is byte-identical to the fault-free analysis.
	ReportIdentical bool
}

// ExperimentID implements Result.
func (r *IngestResult) ExperimentID() string { return "ingest" }

// Render implements Result.
func (r *IngestResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ingest (extension): fault-injected collection convergence\n")
	fmt.Fprintf(&sb, "  %d user sessions, faults: %s\n", r.Users, r.Faults)
	fmt.Fprintf(&sb, "  stored exactly-once %d/%d, quarantined %d mangled lines\n",
		r.Stored, r.Users, r.Quarantined)
	verdict := "IDENTICAL"
	if !r.ReportIdentical {
		verdict = "DIVERGED"
	}
	fmt.Fprintf(&sb, "  diagnosis vs fault-free golden: %s\n", verdict)
	return sb.String()
}

// RunIngest pushes a corpus through the collection tier over localhost
// TCP with seeded fault injection (corruption, truncation, duplication,
// dropped connections) on every uploader and verifies the paper's
// pipeline is insensitive to collection-side failures: retries converge
// to exactly-once storage, mangled lines land in quarantine, and the
// §III analysis over the survivors is byte-identical to the fault-free
// run.
func RunIngest(seed int64) (Result, error) {
	const (
		uploaders      = 4
		usersPerClient = 3
	)
	app, err := apps.ByAppID("opengps")
	if err != nil {
		return nil, err
	}
	wcfg := workload.DefaultConfig(app, seed)
	wcfg.Users = uploaders * usersPerClient
	wcfg.ImpactedFraction = 0.25
	wcfg.Scrub = false // clients scrub on upload
	corpus, err := workload.GenerateCached(wcfg)
	if err != nil {
		return nil, err
	}

	golden := make([]*trace.TraceBundle, len(corpus.Bundles))
	for i, b := range corpus.Bundles {
		sb := trace.ScrubBundle(b)
		sb.Key = trace.ContentKey(sb)
		golden[i] = sb
	}
	goldenReport, err := ingestReport(golden, corpus.ImpactedPercent)
	if err != nil {
		return nil, err
	}

	srv, err := collect.NewServer("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	fcfg := faults.Config{
		CorruptProb:   0.12,
		TruncateProb:  0.10,
		DuplicateProb: 0.10,
		DropProb:      0.12,
		ReorderProb:   0.5,
	}
	injectors := make([]*faults.Injector, uploaders)
	uploadErrs := make([]error, uploaders)
	var wg sync.WaitGroup
	for ci := 0; ci < uploaders; ci++ {
		// Widely spaced seeds: adjacent math/rand seeds draw correlated
		// early values.
		fcfg.Seed = seed + int64(ci+1)*2654435761
		in, err := faults.New(fcfg)
		if err != nil {
			return nil, err
		}
		injectors[ci] = in
		chunk := corpus.Bundles[ci*usersPerClient : (ci+1)*usersPerClient]
		wg.Add(1)
		go func(ci int, in *faults.Injector, chunk []*trace.TraceBundle) {
			defer wg.Done()
			client := collect.NewClient(srv.Addr(),
				collect.WithFaults(in),
				collect.WithJitterSeed(seed+int64(ci)),
				collect.WithRetry(60, time.Millisecond, 4*time.Millisecond),
				collect.WithTimeout(500*time.Millisecond))
			uploadErrs[ci] = client.Upload(collect.PhoneState{Charging: true, OnWiFi: true}, chunk)
		}(ci, in, chunk)
	}
	wg.Wait()
	for ci, err := range uploadErrs {
		if err != nil {
			return nil, fmt.Errorf("experiments: uploader %d did not converge: %w", ci, err)
		}
	}

	res := &IngestResult{Users: wcfg.Users}
	for _, in := range injectors {
		s := in.Stats()
		res.Faults.Lines += s.Lines
		res.Faults.Corrupted += s.Corrupted
		res.Faults.Truncated += s.Truncated
		res.Faults.Duplicated += s.Duplicated
		res.Faults.Dropped += s.Dropped
	}
	res.Stored = srv.Count()
	res.Quarantined = srv.QuarantineCount()
	got, err := ingestReport(srv.Bundles(app.AppID), corpus.ImpactedPercent)
	if err != nil {
		return nil, err
	}
	res.ReportIdentical = bytes.Equal(got, goldenReport)
	return res, nil
}

// ingestReport renders the analysis of a bundle set as JSON after
// sorting by (user, trace), so arrival order cannot leak into the
// comparison.
func ingestReport(bundles []*trace.TraceBundle, impactedPct float64) ([]byte, error) {
	sorted := make([]*trace.TraceBundle, len(bundles))
	copy(sorted, bundles)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Event.UserID != sorted[j].Event.UserID {
			return sorted[i].Event.UserID < sorted[j].Event.UserID
		}
		return sorted[i].Event.TraceID < sorted[j].Event.TraceID
	})
	cfg := core.DefaultConfig()
	cfg.DeveloperImpactPercent = impactedPct
	cfg.Parallelism = Parallelism()
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	report, err := analyzer.Analyze(sorted)
	if err != nil {
		return nil, err
	}
	return json.Marshal(report)
}
