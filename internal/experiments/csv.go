package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVExporter is implemented by results whose underlying data series are
// worth re-plotting. CSVFiles returns one table per output file name
// (without directory), header row first.
type CSVExporter interface {
	CSVFiles() map[string][][]string
}

// WriteCSV renders one table to w.
func WriteCSV(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return fmt.Errorf("experiments: write csv: %w", err)
	}
	return nil
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
func itoa(v int) string     { return strconv.Itoa(v) }

// CSVFiles exports the event-distance distribution (Fig 1).
func (r *Fig1Result) CSVFiles() map[string][][]string {
	dist := [][]string{{"app", "median_event_distance"}}
	for _, id := range sortedKeys(r.Distances) {
		dist = append(dist, []string{id, ftoa(r.Distances[id])})
	}
	cdf := [][]string{{"distance", "fraction_of_apps"}}
	for _, p := range r.CDF {
		cdf = append(cdf, []string{ftoa(p.Value), ftoa(p.Fraction)})
	}
	return map[string][][]string{
		"fig1_distances.csv": dist,
		"fig1_cdf.csv":       cdf,
	}
}

// CSVFiles exports the K-9 power series (Fig 3).
func (r *Fig3Result) CSVFiles() map[string][][]string {
	rows := [][]string{{"sample", "power_mw"}}
	for i, p := range r.Series {
		rows = append(rows, []string{itoa(i), ftoa(p)})
	}
	return map[string][][]string{"fig3_power_trace.csv": rows}
}

// CSVFiles exports the 40-app code-reduction table (Table III).
func (r *Table3Result) CSVFiles() map[string][][]string {
	rows := [][]string{{"id", "app", "root_cause", "diagnosis_lines", "total_lines",
		"measured_reduction_pct", "paper_reduction_pct"}}
	for _, a := range r.Apps {
		rows = append(rows, []string{
			itoa(a.ID), a.AppID, a.Cause, itoa(a.Lines), itoa(a.Total),
			ftoa(a.Measured), ftoa(a.PaperPct),
		})
	}
	return map[string][][]string{"table3_code_reduction.csv": rows}
}

// CSVFiles exports the EnergyDx-vs-CheckAll comparison (Fig 16).
func (r *Fig16Result) CSVFiles() map[string][][]string {
	rows := [][]string{{"id", "app", "energydx_lines", "checkall_lines"}}
	for _, row := range r.PerApp {
		rows = append(rows, []string{
			itoa(row.ID), row.AppID, itoa(row.DxLines), itoa(row.CheckLines),
		})
	}
	return map[string][][]string{"fig16_vs_checkall.csv": rows}
}

// CSVFiles exports the before/after-fix power comparison (Fig 17).
func (r *Fig17Result) CSVFiles() map[string][][]string {
	rows := [][]string{{"id", "app", "buggy_mw", "fixed_mw", "drop_pct"}}
	for _, row := range r.PerApp {
		rows = append(rows, []string{
			itoa(row.ID), row.AppID, ftoa(row.BuggyMW), ftoa(row.FixedMW), ftoa(row.DropPct),
		})
	}
	return map[string][][]string{"fig17_power_fix.csv": rows}
}

// CSVFiles exports the parameter-training grid.
func (r *TuneResult) CSVFiles() map[string][][]string {
	rows := [][]string{{"norm_base_percentile", "fence_multiplier", "min_amplitude", "mean_f1"}}
	for _, c := range r.Candidates {
		rows = append(rows, []string{
			ftoa(c.NormBasePercentile), ftoa(c.FenceMultiplier), ftoa(c.MinAmplitude), ftoa(c.MeanF1),
		})
	}
	return map[string][][]string{"tune_grid.csv": rows}
}

// Compile-time checks: the plottable results export CSV.
var (
	_ CSVExporter = (*Fig1Result)(nil)
	_ CSVExporter = (*Fig3Result)(nil)
	_ CSVExporter = (*Table3Result)(nil)
	_ CSVExporter = (*Fig16Result)(nil)
	_ CSVExporter = (*Fig17Result)(nil)
	_ CSVExporter = (*TuneResult)(nil)
)
