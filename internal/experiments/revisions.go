package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/parallel"
	"repro/internal/revision"
)

// revisionApps are the catalog apps the version-chain experiment runs
// over: one mail client, one sensor app, one camera app — distinct
// callback topologies and power profiles.
var revisionApps = []string{"k9mail", "sensorium", "opencamera"}

// Chain shape shared by every run: four versions with the regression
// landing mid-chain, so the analyzer sees benign hops on both sides.
const (
	revisionVersions     = 4
	revisionRegressionAt = 2
	revisionSeedsPerCell = 2
	revisionCleanSeeds   = 3
	revisionUsers        = 12
	revisionCorpusSeed   = 7
)

// RevisionRow is one analyzed version chain.
type RevisionRow struct {
	AppID string
	Kind  string
	Seed  int64
	// Clean marks a regression-free control chain (Kind empty).
	Clean bool
	// Detected is whether the top-ranked suspect at the regression hop
	// is the chain's ground-truth culprit.
	Detected bool
	// GateCaught is whether the regression gate failed the regression
	// hop; for clean chains, GateFalseTrips counts hops the gate failed
	// (every one a false positive).
	GateCaught     bool
	GateFalseTrips int
	Hops           int
	// SharedFraction is the mean fraction of each version's corpus
	// served unchanged from the previous version (delta feeding).
	SharedFraction float64
	// RevisitHitRate is the Step-1 cache hit rate when the chain is
	// re-visited (revert to v0, jump back to vN) after the forward walk;
	// RevisitLookups is how many lookups those hops made (0 when every
	// hop was static-only, which makes the rate meaningless).
	RevisitHitRate float64
	RevisitLookups int64
}

// RevisionsResult is the version-diff regression engine evaluation:
// culprit detection accuracy and gate behavior over seeded regression
// chains, plus gate false-trip rate over clean control chains.
type RevisionsResult struct {
	Rows []RevisionRow

	RegressionChains int
	Detected         int
	GateCaught       int
	CleanChains      int
	CleanHops        int
	FalseTrips       int
	MeanShared       float64
	// MeanRevisitRate averages RevisitHitRate over the RevisitChains
	// whose revert hops actually looked bundles up.
	MeanRevisitRate float64
	RevisitChains   int
}

// ExperimentID implements Result.
func (r *RevisionsResult) ExperimentID() string { return "revisions" }

// DetectionAccuracy is the fraction of regression chains whose
// ground-truth culprit tops the suspect ranking.
func (r *RevisionsResult) DetectionAccuracy() float64 {
	if r.RegressionChains == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.RegressionChains)
}

// FalseTripRate is the fraction of clean-chain hops the gate failed.
func (r *RevisionsResult) FalseTripRate() float64 {
	if r.CleanHops == 0 {
		return 0
	}
	return float64(r.FalseTrips) / float64(r.CleanHops)
}

// Render implements Result.
func (r *RevisionsResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Revisions (extension): version-diff energy regression engine\n")
	fmt.Fprintf(&sb, "  %d regression chains (%d apps × {hold,loop,hot} × %d seeds, %d versions each)\n",
		r.RegressionChains, len(revisionApps), revisionSeedsPerCell, revisionVersions)
	fmt.Fprintf(&sb, "  culprit detection: %d/%d (%s) ranked the true edit first\n",
		r.Detected, r.RegressionChains, fmtPct(r.DetectionAccuracy()*100))
	fmt.Fprintf(&sb, "  regression gate:   caught %d/%d regressions, %d/%d clean hops false-tripped (%s)\n",
		r.GateCaught, r.RegressionChains, r.FalseTrips, r.CleanHops, fmtPct(r.FalseTripRate()*100))
	fmt.Fprintf(&sb, "  delta feeding:     %s of each version's corpus reused from the parent\n",
		fmtPct(r.MeanShared*100))
	fmt.Fprintf(&sb, "  step-1 cache:      %s hit rate on revert/bisect revisits (%d chains with lookups)\n",
		fmtPct(r.MeanRevisitRate*100), r.RevisitChains)
	return sb.String()
}

// CSVFiles exports the per-chain outcomes.
func (r *RevisionsResult) CSVFiles() map[string][][]string {
	rows := [][]string{{"app", "kind", "seed", "clean", "detected", "gate_caught",
		"false_trips", "hops", "shared_fraction", "revisit_hit_rate", "revisit_lookups"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.AppID, row.Kind, fmt.Sprintf("%d", row.Seed),
			fmt.Sprintf("%t", row.Clean), fmt.Sprintf("%t", row.Detected),
			fmt.Sprintf("%t", row.GateCaught), itoa(row.GateFalseTrips), itoa(row.Hops),
			ftoa(row.SharedFraction), ftoa(row.RevisitHitRate),
			fmt.Sprintf("%d", row.RevisitLookups),
		})
	}
	return map[string][][]string{"revisions_chains.csv": rows}
}

var _ CSVExporter = (*RevisionsResult)(nil)

// revisionJob describes one chain to analyze.
type revisionJob struct {
	appID string
	kind  revision.Kind
	seed  int64
	clean bool
}

// RunRevisions evaluates the version-diff engine end to end: for each
// app × regression kind × seed it generates a version chain with one
// injected regression, feeds the per-version corpora through the
// delta-fed incremental analyzer, and checks that (a) the revision
// diff's top suspect at the regression hop is the ground-truth culprit
// and (b) the regression gate fails that hop. Clean control chains
// measure the gate's false-trip rate and the corpus fraction the delta
// feeding reuses across versions.
func RunRevisions(seed int64) (Result, error) {
	var jobs []revisionJob
	for _, appID := range revisionApps {
		for _, kind := range revision.Kinds() {
			for s := int64(0); s < revisionSeedsPerCell; s++ {
				jobs = append(jobs, revisionJob{appID: appID, kind: kind, seed: seed + s})
			}
		}
		for s := int64(0); s < revisionCleanSeeds; s++ {
			jobs = append(jobs, revisionJob{appID: appID, seed: seed + s, clean: true})
		}
	}
	rows, err := parallel.Map(sweepParallelism, len(jobs), func(i int) (RevisionRow, error) {
		return runRevisionChain(jobs[i])
	})
	if err != nil {
		return nil, err
	}

	res := &RevisionsResult{Rows: rows}
	var sharedSum, revisitSum float64
	for _, row := range rows {
		sharedSum += row.SharedFraction
		if row.RevisitLookups > 0 {
			revisitSum += row.RevisitHitRate
			res.RevisitChains++
		}
		if row.Clean {
			res.CleanChains++
			res.CleanHops += row.Hops
			res.FalseTrips += row.GateFalseTrips
			continue
		}
		res.RegressionChains++
		if row.Detected {
			res.Detected++
		}
		if row.GateCaught {
			res.GateCaught++
		}
	}
	if len(rows) > 0 {
		res.MeanShared = sharedSum / float64(len(rows))
	}
	if res.RevisitChains > 0 {
		res.MeanRevisitRate = revisitSum / float64(res.RevisitChains)
	}
	return res, nil
}

// runRevisionChain generates and analyzes one chain.
func runRevisionChain(job revisionJob) (RevisionRow, error) {
	row := RevisionRow{AppID: job.appID, Kind: string(job.kind), Seed: job.seed, Clean: job.clean}
	app, err := apps.ByAppID(job.appID)
	if err != nil {
		return row, err
	}
	ccfg := revision.ChainConfig{
		App:      app,
		Versions: revisionVersions,
		Seed:     job.seed,
		Kind:     job.kind,
	}
	if !job.clean {
		ccfg.RegressionAt = revisionRegressionAt
		ccfg.Rewires = true
	}
	chain, err := revision.GenerateChain(ccfg)
	if err != nil {
		return row, err
	}
	cres, err := revision.RunChain(chain, ccfg,
		revision.CorpusConfig{Users: revisionUsers, Seed: revisionCorpusSeed, Cached: true},
		revision.AnalyzeConfig{Revisit: true})
	if err != nil {
		return row, err
	}
	row.Hops = len(cres.Diffs)
	row.SharedFraction = cres.SharedFraction
	row.RevisitHitRate = cres.RevisitHitRate
	row.RevisitLookups = cres.RevisitLookups

	gate := revision.DefaultGate()
	for hop, d := range cres.Diffs {
		verdict := gate.Evaluate(d)
		if job.clean {
			if !verdict.Pass {
				row.GateFalseTrips++
			}
			continue
		}
		if hop == chain.RegressionAt-1 {
			if !verdict.Pass {
				row.GateCaught = true
			}
			if top, ok := d.TopSuspect(); ok && top.Key == chain.Culprit {
				row.Detected = true
			}
		}
	}
	return row, nil
}
