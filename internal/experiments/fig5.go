package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig5Result shows the event-log wire format (paper Fig 5): timestamped
// entry/exit records of instrumented callbacks, excerpted from a real
// simulated K-9 Mail session.
type Fig5Result struct {
	Excerpt      []string
	TotalRecords int
}

// ExperimentID implements Result.
func (r *Fig5Result) ExperimentID() string { return "fig5" }

// Render implements Result.
func (r *Fig5Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 5: event-log format (excerpt of %d records)\n", r.TotalRecords)
	for _, line := range r.Excerpt {
		fmt.Fprintln(&sb, "  "+line)
	}
	return sb.String()
}

// RunFig5 renders an excerpt of one session's event trace in the Fig-5
// text format.
func RunFig5(seed int64) (Result, error) {
	app, err := apps.K9Mail()
	if err != nil {
		return nil, err
	}
	cfg := workload.DefaultConfig(app, seed)
	cfg.Users = 1
	cfg.ImpactedFraction = 0
	corpus, err := workload.GenerateCached(cfg)
	if err != nil {
		return nil, err
	}
	text := corpus.Bundles[0].Event.Text()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	res := &Fig5Result{TotalRecords: len(lines)}
	n := 10
	if n > len(lines) {
		n = len(lines)
	}
	res.Excerpt = lines[:n]
	return res, nil
}

// StabilityResult measures run-to-run variance of the headline metric:
// the 40-app average code reduction across independent corpus seeds.
// The paper reports a single deployment's numbers; a simulation should
// demonstrate its conclusions do not hinge on one seed.
type StabilityResult struct {
	Seeds      []int64
	Reductions []float64
	Mean       float64
	Stddev     float64
}

// ExperimentID implements Result.
func (r *StabilityResult) ExperimentID() string { return "stability" }

// Render implements Result.
func (r *StabilityResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Stability (extension): Table III average code reduction across seeds\n")
	for i, seed := range r.Seeds {
		fmt.Fprintf(&sb, "  seed %-6d %5.1f%%\n", seed, r.Reductions[i])
	}
	fmt.Fprintf(&sb, "mean %.1f%% +- %.2f%% (paper single deployment: 93%%)\n", r.Mean, r.Stddev)
	return sb.String()
}

// RunStability reruns the Table III sweep under several seeds. The
// seeds fan out through the pool (each inner RunTable3 fans out again
// over apps; both pools bound their own workers, and every corpus is
// keyed by its seed in the cache, so reruns are conflict-free).
func RunStability(seed int64) (Result, error) {
	const rounds = 3
	res := &StabilityResult{}
	for i := int64(0); i < rounds; i++ {
		res.Seeds = append(res.Seeds, seed+i*101)
	}
	reductions, err := parallel.Map(Parallelism(), rounds, func(i int) (float64, error) {
		r, err := RunTable3(res.Seeds[i])
		if err != nil {
			return 0, fmt.Errorf("seed %d: %w", res.Seeds[i], err)
		}
		return r.(*Table3Result).AverageMeas, nil
	})
	if err != nil {
		return nil, err
	}
	res.Reductions = reductions
	summary, err := stats.Summarize(res.Reductions)
	if err != nil {
		return nil, err
	}
	res.Mean, res.Stddev = summary.Mean, summary.Stddev
	return res, nil
}
