// Package experiments regenerates every table and figure of the paper's
// evaluation (§II-A Fig 1, §III-B Figs 3/7/8 + Table II, §IV-B Table III
// and the baseline comparison, §IV-C case studies, §IV-D Fig 16, §IV-E
// Fig 17, §IV-F overheads). Each experiment is a named runner that
// returns a renderable result; cmd/reproduce and the root benchmarks are
// thin wrappers over this package.
//
// Absolute numbers differ from the paper (the substrate is a simulator,
// not 30 volunteers' phones), but each result records the paper's value
// next to the measured one so the shape comparison is explicit.
package experiments

import (
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Sweep-level metrics: how many experiment runs the process has served
// and how long each took end to end. The per-stage detail underneath
// (pool task latency, analysis step spans) lives on the layers below.
var (
	mExpRuns    = obs.Default.Counter("experiments_runs_total", "experiment runs completed (including failed ones)")
	mExpErrors  = obs.Default.Counter("experiments_errors_total", "experiment runs that returned an error")
	hExpSeconds = obs.Default.Histogram("experiments_run_seconds", "end-to-end experiment wall time", nil)
)

// instrumented wraps a runner with run counters, latency observation
// and a debug-level structured log line.
func instrumented(id string, run Runner) Runner {
	return func(seed int64) (Result, error) {
		start := time.Now()
		res, err := run(seed)
		elapsed := time.Since(start)
		mExpRuns.Inc()
		hExpSeconds.Observe(elapsed.Seconds())
		if err != nil {
			mExpErrors.Inc()
			slog.Debug("experiment failed", "id", id, "seed", seed, "elapsed", elapsed, "err", err)
		} else {
			slog.Debug("experiment complete", "id", id, "seed", seed, "elapsed", elapsed)
		}
		return res, err
	}
}

// sweepParallelism is the worker count used by the per-app experiment
// sweeps, the stability seeds, the tune grid and the inner analysis
// pipeline. 0 means one worker per CPU (GOMAXPROCS). Every sweep is
// deterministic at any worker count: items carry their own seeds and
// results are joined in input order.
var sweepParallelism int

// SetParallelism sets the worker count for all experiment fan-outs
// (0 = GOMAXPROCS, 1 = serial). It is not safe to call concurrently
// with running experiments; set it once at startup (cmd/reproduce's
// -parallelism flag does).
func SetParallelism(n int) { sweepParallelism = n }

// Parallelism reports the configured experiment worker count
// (0 = GOMAXPROCS).
func Parallelism() int { return sweepParallelism }

// Result is a rendered experiment outcome.
type Result interface {
	// ExperimentID is the registry key (e.g. "fig16").
	ExperimentID() string
	// Render returns the human-readable rows.
	Render() string
}

// Runner regenerates one experiment.
type Runner func(seed int64) (Result, error)

// registryEntry pairs a runner with its description.
type registryEntry struct {
	ID    string
	Title string
	Run   Runner
}

// Registry lists all experiments in paper order. Every runner is
// instrumented: run counts and wall-time land on the metrics registry,
// completions on the debug log.
func Registry() []registryEntry {
	entries := []registryEntry{
		{"fig1", "Fig 1: event distance of 40 ABD cases", RunFig1},
		{"fig3", "Fig 3: K-9 Mail power trace", RunFig3},
		{"fig5", "Fig 5: event-log format", RunFig5},
		{"fig7", "Figs 7-8: K-9 Mail diagnosis pipeline", RunFig7},
		{"table2", "Table II: top K-9 Mail events", RunTable2},
		{"table3", "Table III: code reduction across 40 apps", RunTable3},
		{"baselines", "§IV-B: EnergyDx vs No-sleep Detection vs eDelta", RunBaselines},
		{"opengps", "Figs 9-10 + Table IV: OpenGPS case study", RunOpenGPS},
		{"fig11", "Fig 11: OpenGPS power breakdown", RunFig11},
		{"wallabag", "Figs 12-13 + Table V: Wallabag case study", RunWallabag},
		{"fig14", "Fig 14: Wallabag power breakdown", RunFig14},
		{"tinfoil", "Fig 15 + Table VI: Tinfoil case study", RunTinfoil},
		{"fig16", "Fig 16: code reduction, EnergyDx vs CheckAll", RunFig16},
		{"fig17", "Fig 17: app power before vs after fix", RunFig17},
		{"overheads", "§IV-F: instrumentation overheads", RunOverheads},
		{"tune", "Extension: train Step-3/4 parameters on labelled corpora", RunTune},
		{"stability", "Extension: Table III average across seeds", RunStability},
		{"edoctor", "Extension: app-level (eDoctor-style) vs event-level diagnosis", RunEDoctor},
		{"unknown", "Extension: diagnosing an un-taxonomized (unknown) fault class", RunUnknown},
		{"matrix", "Extension: scenario × detector accuracy matrix with bootstrap CIs", RunMatrix},
		{"ingest", "Extension: fault-injected ingestion convergence (chaos collection tier)", RunIngest},
		{"fleet", "Extension: fleet-scale sharded binary ingest benchmark (QPS, ack latency, fsyncs/bundle, report staleness)", RunFleet},
		{"revisions", "Extension: version-diff regression engine (culprit detection + gate)", RunRevisions},
	}
	for i := range entries {
		entries[i].Run = instrumented(entries[i].ID, entries[i].Run)
	}
	return entries
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Runner, string, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, e.Title, nil
		}
	}
	var known []string
	for _, e := range Registry() {
		known = append(known, e.ID)
	}
	return nil, "", fmt.Errorf("experiments: unknown experiment %q (known: %s)",
		id, strings.Join(known, ", "))
}

// corpusUsers is the per-app corpus size. The paper collected traces
// from 30+ volunteers; 20 keeps the full 40-app sweep fast while leaving
// the statistics intact.
const corpusUsers = 20

// defaultImpacted is the fraction of users that trigger the ABD.
const defaultImpacted = 0.2

// genCorpus produces the standard evaluation corpus for one app. It
// goes through the process-wide corpus cache: the sweeps (table3,
// baselines, fig1, fig16) request identical (app, seed) corpora, and
// regenerating them dominated sweep wall time before the cache.
func genCorpus(app *apps.App, seed int64) (*workload.Result, error) {
	cfg := workload.DefaultConfig(app, seed)
	cfg.Users = corpusUsers
	cfg.ImpactedFraction = defaultImpacted
	return workload.GenerateCached(cfg)
}

// diagnose runs the full EnergyDx pipeline over a corpus with the
// ground-truth developer percentage.
func diagnose(res *workload.Result) (*core.Report, error) {
	cfg := core.DefaultConfig()
	cfg.DeveloperImpactPercent = res.ImpactedPercent
	cfg.Parallelism = sweepParallelism
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	return analyzer.Analyze(res.Bundles)
}

// reportedEvents is how many top events EnergyDx hands to the developer
// (the paper's Table II shows six).
const reportedEvents = 6

// fmtPct renders a percentage with one decimal.
func fmtPct(p float64) string { return fmt.Sprintf("%.1f%%", p) }

// sortedKeys returns map keys in sorted order (deterministic rendering).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
