package experiments

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestSweepsDeterministicAcrossWorkers runs the two heaviest sweeps at
// several worker counts and requires identical results: the parallel
// rewrite must not change a single byte of any table. The corpus cache
// is flushed between runs so each run regenerates (and re-joins) its
// own corpora.
func TestSweepsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog sweeps")
	}
	defer SetParallelism(0)
	runners := []struct {
		id  string
		run Runner
	}{
		{"table3", RunTable3},
		{"tune", RunTune},
	}
	for _, r := range runners {
		t.Run(r.id, func(t *testing.T) {
			var baseline Result
			for _, workers := range []int{1, 2, 8} {
				workload.FlushCache()
				SetParallelism(workers)
				res, err := r.run(testSeed)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if baseline == nil {
					baseline = res
					continue
				}
				if !reflect.DeepEqual(baseline, res) {
					t.Errorf("workers=%d: result differs from workers=1", workers)
				}
				if baseline.Render() != res.Render() {
					t.Errorf("workers=%d: rendered table differs from workers=1", workers)
				}
			}
		})
	}
}

// TestCorpusCacheSharedAcrossSweeps verifies the sweeps actually hit
// the cache: table3 and fig16 request the same (app, seed) corpora, so
// running both must not grow the cache beyond what table3 populated
// (fig16's CheckAll baseline reuses the same corpora).
func TestCorpusCacheSharedAcrossSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog sweeps")
	}
	workload.FlushCache()
	defer workload.FlushCache()
	if _, err := RunTable3(testSeed); err != nil {
		t.Fatal(err)
	}
	after3 := workload.CacheLen()
	if after3 == 0 {
		t.Fatal("table3 did not populate the corpus cache")
	}
	if _, err := RunFig16(testSeed); err != nil {
		t.Fatal(err)
	}
	if got := workload.CacheLen(); got != after3 {
		t.Errorf("fig16 grew the cache from %d to %d entries; expected full reuse", after3, got)
	}
}
