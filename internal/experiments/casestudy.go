package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

// CaseStudyResult reproduces one §IV-C case study: the per-step vectors
// of one impacted trace (Figs 9/12/15) and the ranked event table
// (Tables IV/V/VI), plus the code-reduction line.
type CaseStudyResult struct {
	ID             string
	AppName        string
	Manifestations int
	EventRows      []string
	DiagnosisLines int
	TotalLines     int
	PaperDiagLines int
	PaperTotal     int
	// ExpectedEvents are paper-reported event names that should appear
	// among the reported events (checked by tests, rendered for
	// comparison).
	ExpectedEvents []string
	FoundExpected  []string
}

// ExperimentID implements Result.
func (r *CaseStudyResult) ExperimentID() string { return r.ID }

// Render implements Result.
func (r *CaseStudyResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Case study: %s\n", r.AppName)
	fmt.Fprintf(&sb, "manifestation points across impacted traces: %d\n", r.Manifestations)
	fmt.Fprintf(&sb, "events reported to developers:\n")
	for _, row := range r.EventRows {
		fmt.Fprintln(&sb, "  "+row)
	}
	fmt.Fprintf(&sb, "search space: %d of %d lines (paper: %d of %d)\n",
		r.DiagnosisLines, r.TotalLines, r.PaperDiagLines, r.PaperTotal)
	fmt.Fprintf(&sb, "paper-reported events found in our report: %s\n",
		strings.Join(r.FoundExpected, ", "))
	return sb.String()
}

// caseStudy runs the shared case-study pipeline.
func caseStudy(id string, build func() (*apps.App, error), seed int64,
	paperDiag, paperTotal int, expected []string) (Result, error) {
	app, err := build()
	if err != nil {
		return nil, err
	}
	corpus, err := genCorpus(app, seed)
	if err != nil {
		return nil, err
	}
	report, err := diagnose(corpus)
	if err != nil {
		return nil, err
	}
	res := &CaseStudyResult{
		ID:             id,
		AppName:        app.Name,
		PaperDiagLines: paperDiag,
		PaperTotal:     paperTotal,
		ExpectedEvents: expected,
	}
	for _, at := range report.Traces {
		res.Manifestations += len(at.Manifestations)
	}
	// The developer receives the full ranked list; the tables render the
	// first six rows (as the paper's tables do) while the expected-event
	// check scans twice that depth, since percentage ties reorder rows
	// within a band.
	reported := make(map[string]bool)
	for i, im := range report.TopEvents(2 * reportedEvents) {
		short := trace.ShortKey(im.Key)
		reported[short] = true
		if i < reportedEvents {
			res.EventRows = append(res.EventRows, fmt.Sprintf("%d, [%s] %s", i+1, short, fmtPct(im.Percent)))
		}
	}
	for _, want := range expected {
		if reported[want] {
			res.FoundExpected = append(res.FoundExpected, want)
		}
	}
	cr, err := core.ComputeCodeReduction(report, app.Package(), reportedEvents)
	if err != nil {
		return nil, err
	}
	res.DiagnosisLines = cr.DiagnosisLines
	res.TotalLines = cr.TotalLines
	return res, nil
}

// RunOpenGPS regenerates the OpenGPS case study (Figs 9-10, Table IV).
func RunOpenGPS(seed int64) (Result, error) {
	return caseStudy("opengps", apps.OpenGPS, seed, 569, 5060, []string{
		"LoggerMap:onPause", "Idle:Idle(No_Display)", "LoggerMap:onResume",
	})
}

// RunWallabag regenerates the Wallabag case study (Figs 12-13, Table V).
func RunWallabag(seed int64) (Result, error) {
	return caseStudy("wallabag", apps.Wallabag, seed, 306, 21424, []string{
		"ReadArticle:menuDeleted", "ReadArticle:onResume", "ReadArticle:onPause",
	})
}

// RunTinfoil regenerates the Tinfoil case study (Fig 15, Table VI).
func RunTinfoil(seed int64) (Result, error) {
	return caseStudy("tinfoil", apps.Tinfoil, seed, 236, 4226, []string{
		"FbWrapper:menu_item_newsfeed", "Idle:Idle(No_Display)",
	})
}

// BreakdownResult is a power breakdown during an ABD window (paper
// Fig 11: OpenGPS — GPS draws power while display power is zero;
// Fig 14: Wallabag — the retry loop burns CPU).
type BreakdownResult struct {
	ID          string
	AppName     string
	WindowMS    [2]int64
	Components  []string
	Dominant    string
	DisplayMW   float64
	MeanTotalMW float64
	PaperClaim  string
}

// ExperimentID implements Result.
func (r *BreakdownResult) ExperimentID() string { return r.ID }

// Render implements Result.
func (r *BreakdownResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Power breakdown of %s while the ABD manifests (window %d-%d ms)\n",
		r.AppName, r.WindowMS[0], r.WindowMS[1])
	for _, c := range r.Components {
		fmt.Fprintln(&sb, "  "+c)
	}
	fmt.Fprintf(&sb, "dominant component: %s (mean total %.0f mW)\n", r.Dominant, r.MeanTotalMW)
	fmt.Fprintf(&sb, "paper: %s\n", r.PaperClaim)
	return sb.String()
}

// breakdownDuringABD generates one fully-impacted session and breaks the
// post-trigger background window down by component.
func breakdownDuringABD(id string, build func() (*apps.App, error), seed int64, claim string) (Result, error) {
	app, err := build()
	if err != nil {
		return nil, err
	}
	cfg := workload.DefaultConfig(app, seed)
	cfg.Users = 1
	cfg.ImpactedFraction = 1
	cfg.Devices = []string{"nexus6"}
	corpus, err := workload.GenerateCached(cfg)
	if err != nil {
		return nil, err
	}
	b := corpus.Bundles[0]
	model := power.NewModel(device.Nexus6())
	pt, err := model.Estimate(&b.Util)
	if err != nil {
		return nil, err
	}
	// The ABD window: the final background idle of the session, where
	// only the leak/loop draws power.
	last := pt.Samples[len(pt.Samples)-1].TimestampMS
	window := [2]int64{last - 10_000, last}
	bd, err := power.BreakdownBetween(pt, window[0], window[1])
	if err != nil {
		return nil, err
	}
	res := &BreakdownResult{
		ID:          id,
		AppName:     app.Name,
		WindowMS:    window,
		MeanTotalMW: bd.MeanTotalMW,
		DisplayMW:   bd.ByComponent[trace.Display],
		PaperClaim:  claim,
	}
	var maxMW float64
	for _, c := range trace.Components() {
		mw := bd.ByComponent[c]
		res.Components = append(res.Components, fmt.Sprintf("%-9s %8.1f mW", c, mw))
		if mw > maxMW {
			maxMW = mw
			res.Dominant = c.String()
		}
	}
	return res, nil
}

// RunFig11 regenerates the OpenGPS power breakdown.
func RunFig11(seed int64) (Result, error) {
	return breakdownDuringABD("fig11", apps.OpenGPS, seed,
		"GPS keeps consuming power in the background while display power is 0")
}

// RunFig14 regenerates the Wallabag power breakdown.
func RunFig14(seed int64) (Result, error) {
	return breakdownDuringABD("fig14", apps.Wallabag, seed,
		"the app consumes high CPU power when the ABD manifests")
}
