package experiments

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/collect"
	"repro/internal/collect/seglog"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Fleet-scale ingest benchmark: N synthetic phone sessions across M
// apps upload through the sharded binary ingest path (router → hashed
// collectd shards → segmented group-commit log → per-shard incremental
// analysis) while the benchmark samples how stale the freshest report
// is. The defaults keep `reproduce -exp all` and the registry test
// quick; the headline configuration from the paper-scale run is
//
//	FLEET_SESSIONS=1000000 FLEET_APPS=10000 reproduce -exp fleet
//
// and the CI fleet gate pins floors at FLEET_SESSIONS=10000
// FLEET_APPS=500 (see fleet_gate_test.go).

// fleetDefaults are the quick-run parameters; every one has a FLEET_*
// environment override so the same runner serves the smoke run, the CI
// gate and the 1M-session headline without recompiling.
const (
	fleetDefaultSessions  = 20000
	fleetDefaultApps      = 1000
	fleetDefaultShards    = 4
	fleetDefaultUploaders = 64
	// fleetChunk is how many sessions one Upload call carries: one TCP
	// connection, one codec negotiation, chunk acks.
	fleetChunk = 100
	// fleetDebounce is the serving layer's quiet period; report
	// staleness under sustained load oscillates around it.
	fleetDebounce = 200 * time.Millisecond
	// fleetSamplePeriod is how often the staleness probe reads
	// Fanout.OldestDirtyAge.
	fleetSamplePeriod = 20 * time.Millisecond
)

// FleetConfig is one fleet run's resolved shape.
type FleetConfig struct {
	Sessions  int
	Apps      int
	Shards    int
	Uploaders int
}

// FleetConfigFromEnv resolves the run shape from FLEET_SESSIONS,
// FLEET_APPS, FLEET_SHARDS and FLEET_UPLOADERS, falling back to the
// quick-run defaults.
func FleetConfigFromEnv() FleetConfig {
	return FleetConfig{
		Sessions:  envPosInt("FLEET_SESSIONS", fleetDefaultSessions),
		Apps:      envPosInt("FLEET_APPS", fleetDefaultApps),
		Shards:    envPosInt("FLEET_SHARDS", fleetDefaultShards),
		Uploaders: envPosInt("FLEET_UPLOADERS", fleetDefaultUploaders),
	}
}

// envPosInt reads a positive integer from the environment.
func envPosInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// FleetResult reports the fleet benchmark.
type FleetResult struct {
	Config  FleetConfig
	Elapsed time.Duration
	// QPS is sustained accepted sessions per second of ingest wall time.
	QPS float64
	// AckP50/AckP99 are per-bundle send→ack round trips across all
	// uploaders.
	AckP50, AckP99 time.Duration
	// FsyncsPerBundle is total seglog fsyncs over accepted bundles;
	// group commit's whole point is a value well under 1.
	FsyncsPerBundle float64
	// StalenessP50/StalenessP99 are quantiles of the worst per-shard
	// report staleness (Fanout.OldestDirtyAge), sampled every
	// fleetSamplePeriod while the fleet uploads.
	StalenessP50, StalenessP99 time.Duration
	// Accepted/Duplicated/Quarantined are fleet-wide ingest counters.
	Accepted, Duplicated, Quarantined int64
	// WireBytes is the total bytes offered to ingestion.
	WireBytes int64
	// Fsyncs and Commits detail: fsyncs is the summed seglog commit
	// count, appends the summed record count.
	Fsyncs, Appends int64
	// AnalyzedApps is how many apps had a report after the final drain.
	AnalyzedApps int
}

// ExperimentID implements Result.
func (r *FleetResult) ExperimentID() string { return "fleet" }

// Render implements Result.
func (r *FleetResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet (extension): sharded binary ingest at fleet scale\n")
	fmt.Fprintf(&sb, "  %d sessions / %d apps / %d shards / %d uploaders in %v\n",
		r.Config.Sessions, r.Config.Apps, r.Config.Shards, r.Config.Uploaders,
		r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  sustained ingest:   %.0f sessions/s (%d accepted, %d dup, %d quarantined, %.1f MiB wire)\n",
		r.QPS, r.Accepted, r.Duplicated, r.Quarantined, float64(r.WireBytes)/(1<<20))
	fmt.Fprintf(&sb, "  ack latency:        p50 %v, p99 %v\n",
		r.AckP50.Round(time.Microsecond), r.AckP99.Round(time.Microsecond))
	fmt.Fprintf(&sb, "  group commit:       %.4f fsyncs/bundle (%d fsyncs over %d appends)\n",
		r.FsyncsPerBundle, r.Fsyncs, r.Appends)
	fmt.Fprintf(&sb, "  report staleness:   p50 %v, p99 %v (%d apps analyzed)\n",
		r.StalenessP50.Round(time.Millisecond), r.StalenessP99.Round(time.Millisecond),
		r.AnalyzedApps)
	return sb.String()
}

// CSVFiles implements CSVExporter.
func (r *FleetResult) CSVFiles() map[string][][]string {
	return map[string][][]string{
		"fleet.csv": {
			{"sessions", "apps", "shards", "uploaders", "elapsed_s", "qps",
				"ack_p50_us", "ack_p99_us", "fsyncs_per_bundle",
				"staleness_p50_ms", "staleness_p99_ms"},
			{
				strconv.Itoa(r.Config.Sessions), strconv.Itoa(r.Config.Apps),
				strconv.Itoa(r.Config.Shards), strconv.Itoa(r.Config.Uploaders),
				ftoa(r.Elapsed.Seconds()), ftoa(r.QPS),
				ftoa(float64(r.AckP50.Microseconds())), ftoa(float64(r.AckP99.Microseconds())),
				ftoa(r.FsyncsPerBundle),
				ftoa(float64(r.StalenessP50.Milliseconds())), ftoa(float64(r.StalenessP99.Milliseconds())),
			},
		},
	}
}

var _ CSVExporter = (*FleetResult)(nil)

// fleetSession synthesizes one phone session: a short callback trace
// (three balanced enter/exit pairs) plus a matching utilization trace.
// Sessions are tiny on purpose — the fleet benchmark stresses the
// ingest path's per-session costs (framing, dedup, group commit,
// routing), not per-record analysis throughput.
func fleetSession(cfg FleetConfig, i int) *trace.TraceBundle {
	app := fmt.Sprintf("fleet%04d", i%cfg.Apps)
	base := int64(1 + i)
	recs := make([]trace.Record, 0, 6)
	for p := 0; p < 3; p++ {
		key := trace.EventKey{Class: "Lfleet/Worker", Callback: fmt.Sprintf("cb%d", p)}
		recs = append(recs,
			trace.Record{TimestampMS: base + int64(p*10), Dir: trace.Enter, Key: key},
			trace.Record{TimestampMS: base + int64(p*10+4), Dir: trace.Exit, Key: key},
		)
	}
	return &trace.TraceBundle{
		Event: trace.EventTrace{
			AppID:   app,
			UserID:  fmt.Sprintf("user%d", i),
			Device:  "nexus6",
			TraceID: fmt.Sprintf("s%08d", i),
			Records: recs,
		},
		Util: trace.UtilizationTrace{
			AppID: app, PID: 100 + i%1000, PeriodMS: 500,
			Samples: []trace.UtilizationSample{
				{TimestampMS: base}, {TimestampMS: base + 10}, {TimestampMS: base + 20},
			},
		},
	}
}

// durQuantile returns the q-quantile (0..1) of sorted durations.
func durQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// RunFleet drives the fleet benchmark: per-shard SegStores behind the
// ingest router, per-shard serving layers fed by ingest hooks, and
// FLEET_UPLOADERS concurrent binary clients uploading FLEET_SESSIONS
// synthetic sessions. It reports sustained QPS, ack-latency and
// report-staleness quantiles, and the group-commit fsync amortization.
func RunFleet(seed int64) (Result, error) {
	cfg := FleetConfigFromEnv()
	if cfg.Uploaders > cfg.Sessions {
		cfg.Uploaders = cfg.Sessions
	}

	dir, err := os.MkdirTemp("", "fleet-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// One serving layer and one segmented store per shard, exactly the
	// sharded collectd topology.
	svcs := make([]*serve.Service, cfg.Shards)
	stores := make([]*collect.SegStore, cfg.Shards)
	defer func() {
		for _, s := range svcs {
			if s != nil {
				s.Close()
			}
		}
		for _, st := range stores {
			if st != nil {
				st.Close()
			}
		}
	}()
	for i := range svcs {
		svc, err := serve.New(serve.Config{Analysis: core.DefaultConfig(), Debounce: fleetDebounce})
		if err != nil {
			return nil, err
		}
		svcs[i] = svc
	}
	var storeErr error
	ss, err := collect.NewShardedServer("127.0.0.1:0", cfg.Shards, func(i int) []collect.ServerOption {
		store, err := collect.NewSegStore(fmt.Sprintf("%s/shard-%d", dir, i), seglog.Options{})
		if err != nil {
			storeErr = err
			return nil
		}
		stores[i] = store
		return []collect.ServerOption{
			collect.WithStore(store),
			collect.WithIngestHook(svcs[i].Notify),
		}
	})
	if storeErr != nil {
		return nil, storeErr
	}
	if err != nil {
		return nil, err
	}
	defer ss.Close()

	fan, err := serve.NewFanout(svcs...)
	if err != nil {
		return nil, err
	}

	// Staleness probe: sample the fleet's worst report age while the
	// uploaders run.
	var (
		stalenessMu sync.Mutex
		staleness   []time.Duration
		probeDone   = make(chan struct{})
		probeStop   = make(chan struct{})
	)
	go func() {
		defer close(probeDone)
		tick := time.NewTicker(fleetSamplePeriod)
		defer tick.Stop()
		for {
			select {
			case <-probeStop:
				return
			case <-tick.C:
				age := fan.OldestDirtyAge()
				stalenessMu.Lock()
				staleness = append(staleness, age)
				stalenessMu.Unlock()
			}
		}
	}()

	// The uploader fleet: each goroutine is one phone's binary client,
	// uploading its share of sessions in fleetChunk-sized batches and
	// recording every bundle's send→ack round trip.
	perUploader := (cfg.Sessions + cfg.Uploaders - 1) / cfg.Uploaders
	ackSamples := make([][]time.Duration, cfg.Uploaders)
	uploadErrs := make([]error, cfg.Uploaders)
	start := time.Now()
	var wg sync.WaitGroup
	for u := 0; u < cfg.Uploaders; u++ {
		lo := u * perUploader
		hi := lo + perUploader
		if hi > cfg.Sessions {
			hi = cfg.Sessions
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(u, lo, hi int) {
			defer wg.Done()
			client := collect.NewClient(ss.Addr(),
				collect.WithBinary(),
				collect.WithJitterSeed(seed+int64(u)),
				collect.WithAckObserver(func(d time.Duration) {
					ackSamples[u] = append(ackSamples[u], d)
				}))
			state := collect.PhoneState{Charging: true, OnWiFi: true}
			for at := lo; at < hi; at += fleetChunk {
				end := at + fleetChunk
				if end > hi {
					end = hi
				}
				chunk := make([]*trace.TraceBundle, 0, end-at)
				for i := at; i < end; i++ {
					chunk = append(chunk, fleetSession(cfg, i))
				}
				if err := client.Upload(state, chunk); err != nil {
					uploadErrs[u] = err
					return
				}
			}
		}(u, lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(probeStop)
	<-probeDone
	for u, err := range uploadErrs {
		if err != nil {
			return nil, fmt.Errorf("experiments: fleet uploader %d: %w", u, err)
		}
	}

	// Drain the serving layer so AnalyzedApps reflects the whole fleet.
	fan.Flush()

	stats := ss.Stats()
	if stats.Accepted != int64(cfg.Sessions) {
		return nil, fmt.Errorf("experiments: fleet accepted %d of %d sessions", stats.Accepted, cfg.Sessions)
	}

	res := &FleetResult{
		Config:      cfg,
		Elapsed:     elapsed,
		QPS:         float64(stats.Accepted) / elapsed.Seconds(),
		Accepted:    stats.Accepted,
		Duplicated:  stats.Duplicated,
		Quarantined: stats.Quarantined,
		WireBytes:   stats.BytesIngested,
	}
	for _, st := range stores {
		ls := st.Log().Stats()
		res.Fsyncs += ls.Commits
		res.Appends += ls.Appends
	}
	if res.Accepted > 0 {
		res.FsyncsPerBundle = float64(res.Fsyncs) / float64(res.Accepted)
	}

	var acks []time.Duration
	for _, s := range ackSamples {
		acks = append(acks, s...)
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] < acks[j] })
	res.AckP50 = durQuantile(acks, 0.50)
	res.AckP99 = durQuantile(acks, 0.99)

	stalenessMu.Lock()
	sort.Slice(staleness, func(i, j int) bool { return staleness[i] < staleness[j] })
	res.StalenessP50 = durQuantile(staleness, 0.50)
	res.StalenessP99 = durQuantile(staleness, 0.99)
	stalenessMu.Unlock()

	res.AnalyzedApps = len(fan.Statuses())
	return res, nil
}
