package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// updateMatrix regenerates the matrix golden files instead of comparing:
//
//	go test ./internal/experiments -run TestMatrixGolden -update-matrix
//
// Regenerate only for intentional scenario/detector changes and review
// the golden diff like code.
var updateMatrix = flag.Bool("update-matrix", false, "rewrite the matrix golden files under testdata")

func runMatrix(t *testing.T, seed int64) *MatrixResult {
	t.Helper()
	r, err := RunMatrix(seed)
	if err != nil {
		t.Fatal(err)
	}
	return r.(*MatrixResult)
}

func TestMatrixShape(t *testing.T) {
	res := runMatrix(t, testSeed)
	if len(res.Families) < 7 {
		t.Errorf("matrix has %d scenario families, want >= 7", len(res.Families))
	}
	if len(res.Detectors) != 5 {
		t.Errorf("matrix has %d detectors, want 5", len(res.Detectors))
	}
	if want := len(res.Families) * len(res.Detectors); len(res.Cells) != want {
		t.Errorf("matrix has %d cells, want %d", len(res.Cells), want)
	}
	if len(res.Notes) != len(res.Families) {
		t.Errorf("notes rows = %d, want one per family", len(res.Notes))
	}
	for _, c := range res.Cells {
		if c.Runs < 2 {
			t.Errorf("cell %s/%s aggregates %d runs, want >= 2", c.Family, c.Detector, c.Runs)
		}
		for name, iv := range map[string]struct{ lo, mean, hi float64 }{
			"accuracy":  {c.Accuracy.Lo, c.Accuracy.Mean, c.Accuracy.Hi},
			"reduction": {c.Reduction.Lo, c.Reduction.Mean, c.Reduction.Hi},
		} {
			if iv.lo > iv.mean || iv.mean > iv.hi {
				t.Errorf("cell %s/%s %s interval malformed: lo=%v mean=%v hi=%v",
					c.Family, c.Detector, name, iv.lo, iv.mean, iv.hi)
			}
			if iv.lo < 0 || iv.hi > 100 {
				t.Errorf("cell %s/%s %s interval outside [0, 100]: [%v, %v]",
					c.Family, c.Detector, name, iv.lo, iv.hi)
			}
		}
	}
	for _, det := range MatrixDetectors {
		if res.OverallFor(det) == nil {
			t.Errorf("no overall row for %s", det)
		}
	}
}

// matrixBytes flattens every rendered artifact (markdown + each CSV in
// name order) into one byte stream for identity comparison.
func matrixBytes(res *MatrixResult) []byte {
	var buf bytes.Buffer
	buf.WriteString(res.Render())
	files := res.CSVFiles()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		buf.WriteString(name + "\n")
		_ = WriteCSV(&buf, files[name])
	}
	return buf.Bytes()
}

// TestMatrixDeterministicAcrossParallelism pins the acceptance
// criterion: the matrix output is byte-identical at -parallelism 1, 4
// and 8, and across repeated runs at the same setting.
func TestMatrixDeterministicAcrossParallelism(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)

	SetParallelism(1)
	want := matrixBytes(runMatrix(t, testSeed))
	for _, workers := range []int{4, 8} {
		SetParallelism(workers)
		got := matrixBytes(runMatrix(t, testSeed))
		if !bytes.Equal(want, got) {
			t.Errorf("matrix output at parallelism %d differs from serial run", workers)
		}
	}
	SetParallelism(8)
	again := matrixBytes(runMatrix(t, testSeed))
	if !bytes.Equal(want, again) {
		t.Error("repeated matrix run at fixed seed differs")
	}
}

// TestMatrixGolden locks the rendered markdown and CSV artifacts
// byte-for-byte against checked-in files; regenerate with -update-matrix.
func TestMatrixGolden(t *testing.T) {
	res := runMatrix(t, testSeed)
	artifacts := map[string][]byte{"matrix_render.md": []byte(res.Render())}
	for name, rows := range res.CSVFiles() {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		artifacts[name+".golden"] = buf.Bytes()
	}
	names := make([]string, 0, len(artifacts))
	for name := range artifacts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join("testdata", name)
		if *updateMatrix {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, artifacts[name], 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", path, len(artifacts[name]))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file %s (run with -update-matrix): %v", path, err)
		}
		if !bytes.Equal(want, artifacts[name]) {
			t.Errorf("%s drifted from golden; if intentional, regenerate with -update-matrix", name)
		}
	}
}

func TestMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"EnergyDx":       "energydx",
		"No-sleep":       "no_sleep",
		"gps-navigation": "gps_navigation",
		"eDelta":         "edelta",
	} {
		if got := metricName(in); got != want {
			t.Errorf("metricName(%q) = %q, want %q", in, got, want)
		}
	}
}
