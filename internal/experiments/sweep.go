package experiments

import (
	"fmt"
	"strings"

	"repro/internal/android"
	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/parallel"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

// AppReduction is one app's code-reduction measurement.
type AppReduction struct {
	ID       int
	AppID    string
	Cause    string
	Lines    int
	Total    int
	Measured float64 // percent
	PaperPct float64
	Detected bool
}

// Table3Result is the 40-app code-reduction sweep (paper Table III and
// the §IV-B headline: 93% average reduction).
type Table3Result struct {
	Apps        []AppReduction
	AverageMeas float64
	AveragePap  float64
}

// ExperimentID implements Result.
func (r *Table3Result) ExperimentID() string { return "table3" }

// Render implements Result.
func (r *Table3Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table III: code reduction across the 40 evaluated apps\n")
	fmt.Fprintf(&sb, "%-3s %-16s %-14s %9s %9s %10s %10s\n",
		"id", "app", "root cause", "lines", "total", "measured", "paper")
	for _, a := range r.Apps {
		fmt.Fprintf(&sb, "%-3d %-16s %-14s %9d %9d %9.1f%% %9.2f%%\n",
			a.ID, a.AppID, a.Cause, a.Lines, a.Total, a.Measured, a.PaperPct)
	}
	fmt.Fprintf(&sb, "\naverage code reduction: measured %.1f%% (paper: 93%%)\n", r.AverageMeas)
	return sb.String()
}

// RunTable3 measures EnergyDx's code reduction on every catalog app.
// The per-app pipelines are independent (each carries its own seed) and
// fan out through the shared pool; rows land in catalog order, so the
// table is identical at any worker count.
func RunTable3(seed int64) (Result, error) {
	catalog, err := apps.Catalog()
	if err != nil {
		return nil, err
	}
	reductions, err := parallel.Map(sweepParallelism, len(catalog), func(i int) (AppReduction, error) {
		red, err := measureReduction(catalog[i], seed+int64(i))
		if err != nil {
			return AppReduction{}, fmt.Errorf("%s: %w", catalog[i].AppID, err)
		}
		return red, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table3Result{Apps: reductions}
	var sumM, sumP float64
	for _, red := range reductions {
		sumM += red.Measured
		sumP += red.PaperPct
	}
	res.AverageMeas = sumM / float64(len(res.Apps))
	res.AveragePap = sumP / float64(len(res.Apps))
	return res, nil
}

// measureReduction runs the full pipeline for one app.
func measureReduction(app *apps.App, seed int64) (AppReduction, error) {
	corpus, err := genCorpus(app, seed)
	if err != nil {
		return AppReduction{}, err
	}
	report, err := diagnose(corpus)
	if err != nil {
		return AppReduction{}, err
	}
	cr, err := core.ComputeCodeReduction(report, app.Package(), reportedEvents)
	if err != nil {
		return AppReduction{}, err
	}
	return AppReduction{
		ID:       app.ID,
		AppID:    app.AppID,
		Cause:    app.RootCause.String(),
		Lines:    cr.DiagnosisLines,
		Total:    cr.TotalLines,
		Measured: cr.Reduction * 100,
		PaperPct: app.PaperCodeReduction,
		Detected: report.ImpactedTraces > 0,
	}, nil
}

// BaselinesResult is the §IV-B three-way comparison. Per the paper's
// accounting, a detection baseline scores 100% code reduction on an app
// when it identifies the root cause and 0% otherwise.
type BaselinesResult struct {
	EnergyDxAvg float64
	NoSleepAvg  float64
	EDeltaAvg   float64
	NoSleepHits int
	EDeltaHits  int
	Apps        int
	PaperLine   string
	Rows        []string
}

// ExperimentID implements Result.
func (r *BaselinesResult) ExperimentID() string { return "baselines" }

// Render implements Result.
func (r *BaselinesResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "§IV-B: comparison with existing approaches (%d apps)\n", r.Apps)
	for _, row := range r.Rows {
		fmt.Fprintln(&sb, "  "+row)
	}
	fmt.Fprintf(&sb, "\n%-22s %8s\n", "approach", "avg code reduction")
	fmt.Fprintf(&sb, "%-22s %7.1f%%\n", "EnergyDx", r.EnergyDxAvg)
	fmt.Fprintf(&sb, "%-22s %7.1f%%  (%d/%d detected)\n", "No-sleep Detection", r.NoSleepAvg, r.NoSleepHits, r.Apps)
	fmt.Fprintf(&sb, "%-22s %7.1f%%  (%d/%d detected)\n", "eDelta", r.EDeltaAvg, r.EDeltaHits, r.Apps)
	fmt.Fprintf(&sb, "paper: %s\n", r.PaperLine)
	return sb.String()
}

// RunBaselines compares EnergyDx against No-sleep Detection and eDelta
// across the catalog.
func RunBaselines(seed int64) (Result, error) {
	catalog, err := apps.Catalog()
	if err != nil {
		return nil, err
	}
	res := &BaselinesResult{
		Apps:      len(catalog),
		PaperLine: "EnergyDx 93%, No-sleep Detection 52.5% (21/40 per its text; its own Table III lists 24 no-sleep apps), eDelta 65% (26/40)",
	}
	// All three approaches run per app, independently across apps; the
	// fan-out joins in catalog order so rows and totals are stable.
	type appOutcome struct {
		measured     float64
		nsHit, edHit bool
		row          string
	}
	outcomes, err := parallel.Map(sweepParallelism, len(catalog), func(i int) (appOutcome, error) {
		app := catalog[i]
		red, err := measureReduction(app, seed+int64(i))
		if err != nil {
			return appOutcome{}, fmt.Errorf("%s: %w", app.AppID, err)
		}
		ns, err := baseline.DetectNoSleep(app.Package())
		if err != nil {
			return appOutcome{}, fmt.Errorf("%s: no-sleep: %w", app.AppID, err)
		}
		nsHit := false
		for _, f := range ns.Findings {
			if f.Key == app.Fault.Trigger {
				nsHit = true
			}
		}
		corpus, err := genCorpus(app, seed+1000+int64(i))
		if err != nil {
			return appOutcome{}, err
		}
		ed, err := baseline.EDelta(baseline.DefaultEDeltaConfig(), corpus.Bundles)
		if err != nil {
			return appOutcome{}, fmt.Errorf("%s: eDelta: %w", app.AppID, err)
		}
		edHit := false
		for _, f := range ed.Findings {
			if eDeltaRelated(f.Key, app) {
				edHit = true
			}
		}
		return appOutcome{
			measured: red.Measured,
			nsHit:    nsHit,
			edHit:    edHit,
			row: fmt.Sprintf("%-16s %-14s EnergyDx %5.1f%%  no-sleep:%-5v eDelta:%v",
				app.AppID, app.RootCause, red.Measured, nsHit, edHit),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var sumDx float64
	for _, o := range outcomes {
		sumDx += o.measured
		if o.nsHit {
			res.NoSleepHits++
		}
		if o.edHit {
			res.EDeltaHits++
		}
		res.Rows = append(res.Rows, o.row)
	}
	res.EnergyDxAvg = sumDx / float64(res.Apps)
	res.NoSleepAvg = 100 * float64(res.NoSleepHits) / float64(res.Apps)
	res.EDeltaAvg = 100 * float64(res.EDeltaHits) / float64(res.Apps)
	return res, nil
}

// eDeltaRelated decides whether a flagged API actually points at the
// app's ABD: the trigger itself, anything in the trigger's class, the
// missed release point, or the background-idle pseudo-event the drain
// elevates.
func eDeltaRelated(key trace.EventKey, app *apps.App) bool {
	return key == app.Fault.Trigger ||
		key == app.Fault.ReleasePoint ||
		key.Class == app.Fault.Trigger.Class ||
		key == android.IdleKey()
}

// Fig16Row is one app's EnergyDx-vs-CheckAll measurement.
type Fig16Row struct {
	ID         int
	AppID      string
	DxLines    int
	CheckLines int
}

// Fig16Result compares EnergyDx with the CheckAll baseline per app
// (paper Fig 16: 168 vs 1,205 lines on average; 93% vs 67%).
type Fig16Result struct {
	PerApp        []Fig16Row
	DxAvgLines    float64
	CheckAvgLines float64
	DxAvgPct      float64
	CheckAvgPct   float64
}

// ExperimentID implements Result.
func (r *Fig16Result) ExperimentID() string { return "fig16" }

// Render implements Result.
func (r *Fig16Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 16: code reduction, EnergyDx vs CheckAll\n")
	fmt.Fprintf(&sb, "%-3s %-16s %12s %12s\n", "id", "app", "EnergyDx", "CheckAll")
	for _, row := range r.PerApp {
		fmt.Fprintf(&sb, "%-3d %-16s %6d lines %6d lines\n",
			row.ID, row.AppID, row.DxLines, row.CheckLines)
	}
	fmt.Fprintf(&sb, "\naverage lines to inspect: EnergyDx %.0f, CheckAll %.0f (paper: 168 vs 1205)\n",
		r.DxAvgLines, r.CheckAvgLines)
	fmt.Fprintf(&sb, "average code reduction:   EnergyDx %.1f%%, CheckAll %.1f%% (paper: 93%% vs 67%%)\n",
		r.DxAvgPct, r.CheckAvgPct)
	return sb.String()
}

// RunFig16 runs both schemes over every app.
func RunFig16(seed int64) (Result, error) {
	catalog, err := apps.Catalog()
	if err != nil {
		return nil, err
	}
	res := &Fig16Result{}
	type fig16Outcome struct {
		row                    Fig16Row
		dxL, caL, dxPct, caPct float64
	}
	outcomes, err := parallel.Map(sweepParallelism, len(catalog), func(i int) (fig16Outcome, error) {
		app := catalog[i]
		corpus, err := genCorpus(app, seed+int64(i))
		if err != nil {
			return fig16Outcome{}, fmt.Errorf("%s: %w", app.AppID, err)
		}
		report, err := diagnose(corpus)
		if err != nil {
			return fig16Outcome{}, fmt.Errorf("%s: %w", app.AppID, err)
		}
		cr, err := core.ComputeCodeReduction(report, app.Package(), reportedEvents)
		if err != nil {
			return fig16Outcome{}, fmt.Errorf("%s: %w", app.AppID, err)
		}
		ca, err := baseline.CheckAll(baseline.DefaultCheckAllConfig(), corpus.Bundles)
		if err != nil {
			return fig16Outcome{}, fmt.Errorf("%s: %w", app.AppID, err)
		}
		caLines := app.Package().LinesFor(ca.Keys)
		total := app.TotalSourceLines()
		return fig16Outcome{
			row: Fig16Row{
				ID: app.ID, AppID: app.AppID,
				DxLines: cr.DiagnosisLines, CheckLines: caLines,
			},
			dxL:   float64(cr.DiagnosisLines),
			caL:   float64(caLines),
			dxPct: cr.Reduction * 100,
			caPct: 100 * float64(total-caLines) / float64(total),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var sumDxL, sumCaL, sumDxP, sumCaP float64
	for _, o := range outcomes {
		sumDxL += o.dxL
		sumCaL += o.caL
		sumDxP += o.dxPct
		sumCaP += o.caPct
		res.PerApp = append(res.PerApp, o.row)
	}
	n := float64(len(catalog))
	res.DxAvgLines, res.CheckAvgLines = sumDxL/n, sumCaL/n
	res.DxAvgPct, res.CheckAvgPct = sumDxP/n, sumCaP/n
	return res, nil
}

// Fig17Row is one app's before/after-fix power measurement.
type Fig17Row struct {
	ID      int
	AppID   string
	BuggyMW float64
	FixedMW float64
	DropPct float64
}

// Fig17Result is the before/after-fix power comparison (paper Fig 17:
// average app power drops 27.2% after the ABDs are fixed).
type Fig17Result struct {
	PerApp     []Fig17Row
	AvgDropPct float64
}

// ExperimentID implements Result.
func (r *Fig17Result) ExperimentID() string { return "fig17" }

// Render implements Result.
func (r *Fig17Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 17: average app power before vs after the ABD fix\n")
	fmt.Fprintf(&sb, "%-3s %-16s %10s %10s %8s\n", "id", "app", "buggy", "fixed", "drop")
	for _, row := range r.PerApp {
		fmt.Fprintf(&sb, "%-3d %-16s %7.0f mW %7.0f mW %6.1f%%\n",
			row.ID, row.AppID, row.BuggyMW, row.FixedMW, row.DropPct)
	}
	fmt.Fprintf(&sb, "\naverage power reduction: %.1f%% (paper: 27.2%%)\n", r.AvgDropPct)
	return sb.String()
}

// RunFig17 measures each app's mean power on identical ABD-triggering
// workloads with the buggy and fixed behaviors.
func RunFig17(seed int64) (Result, error) {
	catalog, err := apps.Catalog()
	if err != nil {
		return nil, err
	}
	// The noise-free power model is stateless, so one instance serves
	// every worker.
	model := power.NewModel(device.Nexus6())
	rows, err := parallel.Map(sweepParallelism, len(catalog), func(i int) (Fig17Row, error) {
		app := catalog[i]
		cfg := workload.DefaultConfig(app, seed+int64(i))
		cfg.Users = 6
		cfg.ImpactedFraction = 1 // every session exercises the ABD flow
		cfg.Devices = []string{"nexus6"}
		buggy, err := workload.GenerateCached(cfg)
		if err != nil {
			return Fig17Row{}, fmt.Errorf("%s: %w", app.AppID, err)
		}
		cfg.Fixed = true
		fixed, err := workload.GenerateCached(cfg)
		if err != nil {
			return Fig17Row{}, fmt.Errorf("%s: %w", app.AppID, err)
		}
		mb, err := corpusMeanPower(model, buggy)
		if err != nil {
			return Fig17Row{}, fmt.Errorf("%s: %w", app.AppID, err)
		}
		mf, err := corpusMeanPower(model, fixed)
		if err != nil {
			return Fig17Row{}, fmt.Errorf("%s: %w", app.AppID, err)
		}
		return Fig17Row{
			ID: app.ID, AppID: app.AppID, BuggyMW: mb, FixedMW: mf,
			DropPct: 100 * (mb - mf) / mb,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig17Result{PerApp: rows}
	var sumDrop float64
	for _, row := range rows {
		sumDrop += row.DropPct
	}
	res.AvgDropPct = sumDrop / float64(len(catalog))
	return res, nil
}

// corpusMeanPower averages the estimated power of all bundles.
func corpusMeanPower(model *power.Model, res *workload.Result) (float64, error) {
	var sum float64
	for _, b := range res.Bundles {
		pt, err := model.Estimate(&b.Util)
		if err != nil {
			return 0, err
		}
		m, err := power.MeanPowerMW(pt)
		if err != nil {
			return 0, err
		}
		sum += m
	}
	return sum / float64(len(res.Bundles)), nil
}

// OverheadsResult reproduces §IV-F: event-latency overhead of the
// injected probes (paper: +8.3%, average latency < 9.38 ms) and the
// power overhead of collection (paper: 32 mW, ~4.5%).
type OverheadsResult struct {
	LatencyOverheadPct float64
	MeanLatencyMS      float64
	PowerOverheadMW    float64
	PowerOverheadPct   float64
}

// ExperimentID implements Result.
func (r *OverheadsResult) ExperimentID() string { return "overheads" }

// Render implements Result.
func (r *OverheadsResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "§IV-F: EnergyDx instrumentation overheads\n")
	fmt.Fprintf(&sb, "event latency increase: %.1f%% (paper: 8.3%%)\n", r.LatencyOverheadPct)
	fmt.Fprintf(&sb, "mean event latency:     %.2f ms (paper: < 9.38 ms)\n", r.MeanLatencyMS)
	fmt.Fprintf(&sb, "power overhead:         %.1f mW = %.1f%% of app power (paper: 32 mW, 4.5%%)\n",
		r.PowerOverheadMW, r.PowerOverheadPct)
	return sb.String()
}

// RunOverheads compares instrumented and uninstrumented runs of clean
// (no-ABD) workloads across a subset of the catalog.
func RunOverheads(seed int64) (Result, error) {
	catalog, err := apps.Catalog()
	if err != nil {
		return nil, err
	}
	model := power.NewModel(device.Nexus6())
	res := &OverheadsResult{}
	var picked []int
	for i := range catalog {
		if i%4 == 0 {
			picked = append(picked, i) // a representative quarter keeps the sweep quick
		}
	}
	type overheadOutcome struct {
		latFrac, latMean, powMW, powPct float64
	}
	outcomes, err := parallel.Map(sweepParallelism, len(picked), func(p int) (overheadOutcome, error) {
		i := picked[p]
		app := catalog[i]
		base := workload.DefaultConfig(app, seed+int64(i))
		base.Users = 4
		base.ImpactedFraction = 0
		base.Devices = []string{"nexus6"}

		instrumented, err := workload.GenerateCached(base)
		if err != nil {
			return overheadOutcome{}, fmt.Errorf("%s: %w", app.AppID, err)
		}
		plainCfg := base
		plainCfg.Instrument = android.InstrumentationConfig{}
		plain, err := workload.GenerateCached(plainCfg)
		if err != nil {
			return overheadOutcome{}, fmt.Errorf("%s: %w", app.AppID, err)
		}
		mi, err := corpusMeanPower(model, instrumented)
		if err != nil {
			return overheadOutcome{}, err
		}
		mp, err := corpusMeanPower(model, plain)
		if err != nil {
			return overheadOutcome{}, err
		}
		return overheadOutcome{
			latFrac: instrumented.Stats.OverheadFraction(),
			latMean: instrumented.Stats.MeanLatencyMS(),
			powMW:   mi - mp,
			powPct:  100 * (mi - mp) / mi,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var latFrac, latMean, powMW, powPct float64
	n := 0
	for _, o := range outcomes {
		latFrac += o.latFrac
		latMean += o.latMean
		powMW += o.powMW
		powPct += o.powPct
		n++
	}
	res.LatencyOverheadPct = 100 * latFrac / float64(n)
	res.MeanLatencyMS = latMean / float64(n)
	res.PowerOverheadMW = powMW / float64(n)
	res.PowerOverheadPct = powPct / float64(n)
	return res, nil
}
