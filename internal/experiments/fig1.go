package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Fig1Result is the event-distance distribution across the 40 ABD cases
// (paper Fig 1: the 90th percentile of event distances is 3 or shorter,
// confirming the trigger event sits near the manifestation point).
type Fig1Result struct {
	// Distances maps app ID to its median event distance across
	// impacted traces.
	Distances map[string]float64
	// CDF is the empirical distribution over apps.
	CDF []stats.CDFPoint
	// P90 is the 90th percentile of the distances.
	P90 float64
	// PaperP90 is the paper's reported 90th percentile.
	PaperP90 float64
	// Undetected lists apps where no impacted trace had both the
	// trigger and a manifestation point (excluded from the CDF).
	Undetected []string
}

// ExperimentID implements Result.
func (r *Fig1Result) ExperimentID() string { return "fig1" }

// Render implements Result.
func (r *Fig1Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 1: event distance between ABD trigger and manifestation point\n")
	fmt.Fprintf(&sb, "%-18s %s\n", "app", "median event distance")
	for _, id := range sortedKeys(r.Distances) {
		fmt.Fprintf(&sb, "%-18s %.1f\n", id, r.Distances[id])
	}
	fmt.Fprintf(&sb, "\nempirical CDF:\n")
	for _, p := range r.CDF {
		fmt.Fprintf(&sb, "  distance <= %4.1f : %5.1f%% of apps\n", p.Value, p.Fraction*100)
	}
	fmt.Fprintf(&sb, "\n90th percentile: measured %.1f events (paper: <= %.0f)\n", r.P90, r.PaperP90)
	if len(r.Undetected) > 0 {
		fmt.Fprintf(&sb, "apps without usable manifestation pairs: %s\n",
			strings.Join(r.Undetected, ", "))
	}
	return sb.String()
}

// RunFig1 measures, for every catalog app, how many events separate the
// ABD's trigger event from the detected manifestation point.
func RunFig1(seed int64) (Result, error) {
	catalog, err := apps.Catalog()
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{Distances: make(map[string]float64), PaperP90: 3}
	// Per-app diagnosis fans out; medians join in catalog order so the
	// CDF input sequence is stable at any worker count.
	type fig1Outcome struct {
		median   float64
		detected bool
	}
	outcomes, err := parallel.Map(Parallelism(), len(catalog), func(i int) (fig1Outcome, error) {
		app := catalog[i]
		corpus, err := genCorpus(app, seed+int64(i))
		if err != nil {
			return fig1Outcome{}, fmt.Errorf("%s: %w", app.AppID, err)
		}
		report, err := diagnose(corpus)
		if err != nil {
			return fig1Outcome{}, fmt.Errorf("%s: %w", app.AppID, err)
		}
		var dists []float64
		for _, at := range report.Traces {
			if d, ok := eventDistance(at, app); ok {
				dists = append(dists, float64(d))
			}
		}
		if len(dists) == 0 {
			return fig1Outcome{}, nil
		}
		sort.Float64s(dists)
		median, err := stats.Percentile(dists, 50)
		if err != nil {
			return fig1Outcome{}, err
		}
		return fig1Outcome{median: median, detected: true}, nil
	})
	if err != nil {
		return nil, err
	}
	var all []float64
	for i, o := range outcomes {
		if !o.detected {
			res.Undetected = append(res.Undetected, catalog[i].AppID)
			continue
		}
		res.Distances[catalog[i].AppID] = o.median
		all = append(all, o.median)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("fig1: no app produced a manifestation point")
	}
	res.CDF, err = stats.EmpiricalCDF(all)
	if err != nil {
		return nil, err
	}
	res.P90, err = stats.Percentile(all, 90)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// eventDistance returns the number of events strictly between the last
// trigger-event instance and the nearest manifestation point at or after
// it (the paper's definition: exclusive on both ends).
func eventDistance(at *core.AnalyzedTrace, app *apps.App) (int, bool) {
	trigger := app.Fault.Trigger
	best := -1
	for _, m := range at.Manifestations {
		// Last trigger instance at or before the manifestation point.
		for i := m; i >= 0; i-- {
			if at.Events[i].Instance.Key == trigger {
				d := m - i - 1
				if d < 0 {
					d = 0
				}
				if best == -1 || d < best {
					best = d
				}
				break
			}
		}
	}
	if best == -1 {
		return 0, false
	}
	return best, true
}
