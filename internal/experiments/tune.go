package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/evaluate"
	"repro/internal/parallel"
	"repro/internal/power"
	"repro/internal/workload"
)

// TuneResult is the parameter-training extension: the paper notes the
// Step-3 base percentile "can be adjusted for different training sets"
// and that the Step-4 fence parameters "are decided through
// experiments"; this experiment runs that training loop on labelled
// simulated corpora.
type TuneResult struct {
	Candidates []evaluate.Candidate
	Best       evaluate.Candidate
	// PaperPoint is the paper's published operating point's rank and
	// score in our grid.
	PaperRank int
	PaperF1   float64
}

// ExperimentID implements Result.
func (r *TuneResult) ExperimentID() string { return "tune" }

// Render implements Result.
func (r *TuneResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Parameter training (extension): grid search over Step-3/Step-4 knobs\n")
	fmt.Fprintf(&sb, "%-6s %-12s %-12s %-12s %6s\n", "rank", "norm base", "fence", "min ampl", "F1")
	for i, c := range r.Candidates {
		marker := " "
		if c.NormBasePercentile == 10 && c.FenceMultiplier == 3 && c.MinAmplitude == 0.5 {
			marker = "*" // the published/default operating point
		}
		fmt.Fprintf(&sb, "%-5d%s p%-11.0f %-12.1f %-12.2f %6.3f\n",
			i+1, marker, c.NormBasePercentile, c.FenceMultiplier, c.MinAmplitude, c.MeanF1)
	}
	fmt.Fprintf(&sb, "\nbest: p%.0f / %.1fxIQR (F1 %.3f); paper's p10 / 3xIQR ranks %d (F1 %.3f)\n",
		r.Best.NormBasePercentile, r.Best.FenceMultiplier, r.Best.MeanF1,
		r.PaperRank, r.PaperF1)
	return sb.String()
}

// RunTune trains the knobs on labelled corpora covering all three ABD
// classes, including a *weak* drain (opencamera's leaked sensor draws
// only ~54 mW) and the paper's 2.5% power-model estimation error, so
// the grid actually discriminates: loose fences trip on noise, tight
// ones lose the weak drain.
func RunTune(seed int64) (Result, error) {
	trainingApps := []string{"opengps", "tinfoil", "k9mail", "opencamera"}
	sets, err := parallel.Map(Parallelism(), len(trainingApps), func(i int) (evaluate.TrainingSet, error) {
		app, err := apps.ByAppID(trainingApps[i])
		if err != nil {
			return evaluate.TrainingSet{}, err
		}
		cfg := workload.DefaultConfig(app, seed+int64(i))
		cfg.Users = corpusUsers
		cfg.ImpactedFraction = defaultImpacted
		corpus, err := workload.GenerateCached(cfg)
		if err != nil {
			return evaluate.TrainingSet{}, fmt.Errorf("%s: %w", trainingApps[i], err)
		}
		return evaluate.TrainingSet{
			Bundles:       corpus.Bundles,
			ImpactedUsers: corpus.ImpactedUsers,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	base := core.DefaultConfig()
	base.EstimationNoiseFrac = power.PaperNoiseFrac
	base.NoiseSeed = seed
	candidates, err := evaluate.Tune(sets, evaluate.TuneOptions{
		Base:                &base,
		NormBasePercentiles: []float64{10, 50},
		FenceMultipliers:    []float64{1.5, 3, 4.5},
		MinAmplitudes:       []float64{0, 0.5, 2, 8},
		Parallelism:         Parallelism(),
	})
	if err != nil {
		return nil, err
	}
	res := &TuneResult{Candidates: candidates, Best: candidates[0]}
	for i, c := range candidates {
		if c.NormBasePercentile == 10 && c.FenceMultiplier == 3 && c.MinAmplitude == 0.5 {
			res.PaperRank = i + 1
			res.PaperF1 = c.MeanF1
		}
	}
	return res, nil
}
