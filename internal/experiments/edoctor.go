package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// EDoctorResult contrasts app-level detection (related-work category 1,
// eDoctor/Carat style) with EnergyDx's event-level diagnosis on the same
// phone: the app-level tool names the right app but gives the developer
// nothing to go on inside it, while EnergyDx pinpoints the events
// (paper §V: app-level information "is often too coarse-grained for
// developers").
type EDoctorResult struct {
	Phones        int
	CorrectApp    int
	ABDApp        string
	EnergyDxLines int
	TotalLines    int
	TopEvents     []string
}

// ExperimentID implements Result.
func (r *EDoctorResult) ExperimentID() string { return "edoctor" }

// Render implements Result.
func (r *EDoctorResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "App-level vs event-level diagnosis (extension, paper §V)\n")
	fmt.Fprintf(&sb, "eDoctor-style detector: top suspect correct on %d of %d phones\n",
		r.CorrectApp, r.Phones)
	fmt.Fprintf(&sb, "  -> verdict granularity: %q (the whole %d-line app; 0%% in-app reduction)\n",
		r.ABDApp, r.TotalLines)
	fmt.Fprintf(&sb, "EnergyDx on the same phones' traces:\n")
	for _, e := range r.TopEvents {
		fmt.Fprintln(&sb, "  "+e)
	}
	fmt.Fprintf(&sb, "  -> %d of %d lines to inspect\n", r.EnergyDxLines, r.TotalLines)
	return sb.String()
}

// RunEDoctor simulates several multi-app phones with the same draining
// app, runs both detectors, and contrasts their outputs.
func RunEDoctor(seed int64) (Result, error) {
	var installed []*apps.App
	for _, id := range []string{"opengps", "tinfoil", "simplenote"} {
		a, err := apps.ByAppID(id)
		if err != nil {
			return nil, err
		}
		installed = append(installed, a)
	}
	abdApp := installed[0] // opengps drains on every phone

	const phones = 8
	res := &EDoctorResult{Phones: phones, ABDApp: abdApp.AppID, TotalLines: abdApp.TotalSourceLines()}
	var abdBundles []*trace.TraceBundle
	for i := 0; i < phones; i++ {
		phone, err := workload.GeneratePhone(workload.PhoneConfig{
			Apps: installed, ABDApp: 0, Seed: seed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("phone %d: %w", i, err)
		}
		report, err := baseline.EDoctor(baseline.DefaultEDoctorConfig(), phone.Utils)
		if err != nil {
			return nil, fmt.Errorf("phone %d: %w", i, err)
		}
		if flagged := report.Flagged(); len(flagged) > 0 && flagged[0].AppID == phone.ABDAppID {
			res.CorrectApp++
		}
		for _, b := range phone.Bundles {
			if b.Event.AppID == abdApp.AppID {
				// Distinct pseudo-users per phone so Step 5 counts phones.
				scrubbed := trace.ScrubBundle(b)
				scrubbed.Event.UserID = fmt.Sprintf("user-phone-%d", i)
				abdBundles = append(abdBundles, scrubbed)
			}
		}
	}

	// EnergyDx over the same phones' traces of the draining app: every
	// phone triggered the ABD, so the developer percentage is 100.
	cfg := core.DefaultConfig()
	cfg.DeveloperImpactPercent = 100
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	report, err := analyzer.Analyze(abdBundles)
	if err != nil {
		return nil, err
	}
	for i, im := range report.TopEvents(4) {
		res.TopEvents = append(res.TopEvents,
			fmt.Sprintf("%d, [%s] %s", i+1, trace.ShortKey(im.Key), fmtPct(im.Percent)))
	}
	cr, err := core.ComputeCodeReduction(report, abdApp.Package(), reportedEvents)
	if err != nil {
		return nil, err
	}
	res.EnergyDxLines = cr.DiagnosisLines
	return res, nil
}
