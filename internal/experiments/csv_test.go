package experiments

import (
	"strings"
	"testing"

	"repro/internal/evaluate"
	"repro/internal/stats"
)

func TestCSVExports(t *testing.T) {
	fig1 := &Fig1Result{
		Distances: map[string]float64{"k9mail": 1, "tinfoil": 2},
		CDF:       []stats.CDFPoint{{Value: 1, Fraction: 0.5}, {Value: 2, Fraction: 1}},
	}
	files := fig1.CSVFiles()
	if len(files) != 2 {
		t.Fatalf("fig1 files = %d", len(files))
	}
	cdf := files["fig1_cdf.csv"]
	if len(cdf) != 3 || cdf[0][0] != "distance" || cdf[2][1] != "1" {
		t.Errorf("fig1 cdf rows = %v", cdf)
	}

	fig3 := &Fig3Result{Series: []float64{100, 200.5}}
	rows := fig3.CSVFiles()["fig3_power_trace.csv"]
	if len(rows) != 3 || rows[2][1] != "200.5" {
		t.Errorf("fig3 rows = %v", rows)
	}

	t3 := &Table3Result{Apps: []AppReduction{
		{ID: 1, AppID: "a", Cause: "loop", Lines: 10, Total: 100, Measured: 90, PaperPct: 93},
	}}
	rows = t3.CSVFiles()["table3_code_reduction.csv"]
	if len(rows) != 2 || rows[1][2] != "loop" || rows[1][5] != "90" {
		t.Errorf("table3 rows = %v", rows)
	}

	f16 := &Fig16Result{PerApp: []Fig16Row{{ID: 1, AppID: "a", DxLines: 5, CheckLines: 50}}}
	rows = f16.CSVFiles()["fig16_vs_checkall.csv"]
	if len(rows) != 2 || rows[1][3] != "50" {
		t.Errorf("fig16 rows = %v", rows)
	}

	f17 := &Fig17Result{PerApp: []Fig17Row{{ID: 1, AppID: "a", BuggyMW: 900, FixedMW: 500, DropPct: 44.4}}}
	rows = f17.CSVFiles()["fig17_power_fix.csv"]
	if len(rows) != 2 || rows[1][2] != "900" {
		t.Errorf("fig17 rows = %v", rows)
	}
}

func TestTuneCSV(t *testing.T) {
	tr := &TuneResult{Candidates: []evaluate.Candidate{
		{NormBasePercentile: 10, FenceMultiplier: 3, MinAmplitude: 0.5, MeanF1: 0.95},
	}}
	rows := tr.CSVFiles()["tune_grid.csv"]
	if len(rows) != 2 || rows[1][3] != "0.95" {
		t.Errorf("tune rows = %v", rows)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteCSV(&sb, [][]string{{"a", "b"}, {"1", "2"}})
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != "a,b\n1,2\n" {
		t.Errorf("csv = %q", sb.String())
	}
}
