package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig3Result is the K-9 Mail whole-app power trace of one impacted
// session (paper Fig 3: normal-usage spikes early, then a sustained
// transition to abnormal power when the ABD manifests).
type Fig3Result struct {
	Samples        int
	MeanBeforeMW   float64
	MeanAfterMW    float64
	TransitionIdx  int
	Sparkline      []string
	PaperStatement string
	// Series is the full power trace (mW per 500 ms sample), retained
	// for CSV export so the figure can be re-plotted.
	Series []float64
}

// ExperimentID implements Result.
func (r *Fig3Result) ExperimentID() string { return "fig3" }

// Render implements Result.
func (r *Fig3Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 3: K-9 Mail power trace (one impacted session)\n")
	fmt.Fprintf(&sb, "samples: %d, sustained transition near sample %d\n", r.Samples, r.TransitionIdx)
	fmt.Fprintf(&sb, "mean power before transition: %.0f mW, after: %.0f mW\n",
		r.MeanBeforeMW, r.MeanAfterMW)
	for _, row := range r.Sparkline {
		fmt.Fprintln(&sb, row)
	}
	fmt.Fprintf(&sb, "paper: %s\n", r.PaperStatement)
	return sb.String()
}

// RunFig3 regenerates the K-9 Mail power trace.
func RunFig3(seed int64) (Result, error) {
	app, err := apps.K9Mail()
	if err != nil {
		return nil, err
	}
	cfg := workload.DefaultConfig(app, seed)
	cfg.Users = 1
	cfg.ImpactedFraction = 1
	cfg.Devices = []string{"nexus6"}
	corpus, err := workload.GenerateCached(cfg)
	if err != nil {
		return nil, err
	}
	b := corpus.Bundles[0]
	model := power.NewModel(device.Nexus6())
	pt, err := model.Estimate(&b.Util)
	if err != nil {
		return nil, err
	}
	powers := make([]float64, len(pt.Samples))
	for i, s := range pt.Samples {
		powers[i] = s.PowerMW
	}
	idx := sustainedTransition(powers)
	res := &Fig3Result{
		Samples:        len(powers),
		TransitionIdx:  idx,
		Series:         powers,
		Sparkline:      sparkline(powers, 64, 8),
		PaperStatement: "normal spikes while composing email, then a sustained transition when the misconfiguration ABD manifests (around sample 238 in the paper's trace)",
	}
	if idx > 0 && idx < len(powers) {
		before, err := stats.Mean(powers[:idx])
		if err != nil {
			return nil, err
		}
		after, err := stats.Mean(powers[idx:])
		if err != nil {
			return nil, err
		}
		res.MeanBeforeMW, res.MeanAfterMW = before, after
	}
	return res, nil
}

// sustainedTransition finds the sample index after which the mean power
// stays highest: the split point maximizing (after-mean - before-mean).
func sustainedTransition(powers []float64) int {
	if len(powers) < 4 {
		return 0
	}
	// Prefix sums for O(n) sweep.
	prefix := make([]float64, len(powers)+1)
	for i, p := range powers {
		prefix[i+1] = prefix[i] + p
	}
	bestIdx, bestGap := 0, 0.0
	for i := 2; i < len(powers)-1; i++ {
		before := prefix[i] / float64(i)
		after := (prefix[len(powers)] - prefix[i]) / float64(len(powers)-i)
		if gap := after - before; gap > bestGap {
			bestGap, bestIdx = gap, i
		}
	}
	return bestIdx
}

// sparkline renders a power series as ASCII rows (highest row first).
func sparkline(values []float64, width, height int) []string {
	if len(values) == 0 || width <= 0 || height <= 0 {
		return nil
	}
	// Downsample to width buckets by max (peaks matter in power plots).
	buckets := make([]float64, width)
	for i := range buckets {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(values) {
			hi = len(values)
		}
		for _, v := range values[lo:hi] {
			if v > buckets[i] {
				buckets[i] = v
			}
		}
	}
	maxV := buckets[0]
	for _, v := range buckets {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	rows := make([]string, height)
	for r := 0; r < height; r++ {
		level := float64(height-r) / float64(height)
		var row strings.Builder
		for _, v := range buckets {
			if v/maxV >= level {
				row.WriteByte('#')
			} else {
				row.WriteByte(' ')
			}
		}
		rows[r] = fmt.Sprintf("%7.0fmW |%s", level*maxV, row.String())
	}
	return rows
}

// Fig7Result summarizes the K-9 diagnosis pipeline on one impacted trace
// (paper Figs 7-8): raw power transitions caused by event power
// differences disappear after normalization, and the IQR fence selects
// only the real manifestation points.
type Fig7Result struct {
	TraceID            string
	Events             int
	RawTransitions     int // amplitude outliers on RAW power
	NormManifestations int // amplitude outliers after normalization
	Fence              float64
	TopAmplitudes      []string
	NormalTracesClean  int // normal traces with zero manifestation points
	NormalTraces       int
}

// ExperimentID implements Result.
func (r *Fig7Result) ExperimentID() string { return "fig7" }

// Render implements Result.
func (r *Fig7Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figs 7-8: K-9 Mail manifestation analysis\n")
	fmt.Fprintf(&sb, "impacted trace %s: %d event instances\n", r.TraceID, r.Events)
	fmt.Fprintf(&sb, "transition points on RAW power:        %d (Fig 7a: misleading)\n", r.RawTransitions)
	fmt.Fprintf(&sb, "manifestation points after Steps 2-4:  %d (fence %.2f)\n",
		r.NormManifestations, r.Fence)
	for _, l := range r.TopAmplitudes {
		fmt.Fprintln(&sb, "  "+l)
	}
	fmt.Fprintf(&sb, "normal traces with zero manifestation points: %d of %d\n",
		r.NormalTracesClean, r.NormalTraces)
	return sb.String()
}

// RunFig7 regenerates the K-9 diagnosis pipeline summary.
func RunFig7(seed int64) (Result, error) {
	app, err := apps.K9Mail()
	if err != nil {
		return nil, err
	}
	corpus, err := genCorpus(app, seed)
	if err != nil {
		return nil, err
	}
	report, err := diagnose(corpus)
	if err != nil {
		return nil, err
	}
	var impactedTrace *core.AnalyzedTrace
	res := &Fig7Result{}
	for _, at := range report.Traces {
		impacted := corpus.ImpactedUsers[at.UserID]
		if impacted && impactedTrace == nil && len(at.Manifestations) > 0 {
			impactedTrace = at
		}
		if !impacted {
			res.NormalTraces++
			if len(at.Manifestations) == 0 {
				res.NormalTracesClean++
			}
		}
	}
	if impactedTrace == nil {
		return nil, fmt.Errorf("fig7: no impacted trace produced a manifestation point")
	}
	at := impactedTrace
	res.TraceID = at.TraceID
	res.Events = len(at.Events)
	res.NormManifestations = len(at.Manifestations)
	res.Fence = at.Fence

	// Fig 7a: raw power transitions (|delta| above 25% of the trace's
	// mean power, the CheckAll criterion) show the misleading points
	// that normalization removes.
	raw := make([]float64, len(at.Events))
	for i, ep := range at.Events {
		raw[i] = ep.PowerMW
	}
	mean, err := stats.Mean(raw)
	if err != nil {
		return nil, err
	}
	for i := 0; i+1 < len(raw); i++ {
		delta := raw[i+1] - raw[i]
		if delta < 0 {
			delta = -delta
		}
		if delta > 0.25*mean {
			res.RawTransitions++
		}
	}

	for _, m := range at.Manifestations {
		res.TopAmplitudes = append(res.TopAmplitudes, fmt.Sprintf(
			"manifestation @%d %-40s amplitude %.2f", m,
			trace.ShortKey(at.Events[m].Instance.Key), at.Amplitude[m]))
	}
	return res, nil
}

// Table2Result is the ranked K-9 event table (paper Table II) plus the
// code-reduction line the paper derives from it (98,532 -> 161 lines).
type Table2Result struct {
	Rows            []string
	DiagnosisLines  int
	TotalLines      int
	Reduction       float64
	PaperDiagLines  int
	PaperTotalLines int
}

// ExperimentID implements Result.
func (r *Table2Result) ExperimentID() string { return "table2" }

// Render implements Result.
func (r *Table2Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table II: top K-9 Mail events reported by EnergyDx\n")
	for _, row := range r.Rows {
		fmt.Fprintln(&sb, row)
	}
	fmt.Fprintf(&sb, "\nsearch space: %d of %d lines (reduction %s)\n",
		r.DiagnosisLines, r.TotalLines, fmtPct(r.Reduction*100))
	fmt.Fprintf(&sb, "paper:        %d of %d lines\n", r.PaperDiagLines, r.PaperTotalLines)
	return sb.String()
}

// RunTable2 regenerates the ranked K-9 event table.
func RunTable2(seed int64) (Result, error) {
	app, err := apps.K9Mail()
	if err != nil {
		return nil, err
	}
	corpus, err := genCorpus(app, seed)
	if err != nil {
		return nil, err
	}
	report, err := diagnose(corpus)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{PaperDiagLines: 161, PaperTotalLines: 98532}
	for i, im := range report.TopEvents(reportedEvents) {
		res.Rows = append(res.Rows, fmt.Sprintf("%d, %-40s %s",
			i+1, trace.ShortKey(im.Key), fmtPct(im.Percent)))
	}
	cr, err := core.ComputeCodeReduction(report, app.Package(), reportedEvents)
	if err != nil {
		return nil, err
	}
	res.DiagnosisLines = cr.DiagnosisLines
	res.TotalLines = cr.TotalLines
	res.Reduction = cr.Reduction
	return res, nil
}
