package trace

import (
	"fmt"
	"sort"
	"sync"
)

// Interner assigns dense uint32 IDs to event keys. IDs are append-only
// and stable for the interner's lifetime, so flat slices indexed by ID
// replace map[EventKey] lookups on the analysis hot path. Safe for
// concurrent use; reads take only an RLock.
type Interner struct {
	mu   sync.RWMutex
	ids  map[EventKey]uint32
	keys []EventKey
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[EventKey]uint32)}
}

// ID returns the dense ID for k, assigning the next free one on first
// sight.
func (in *Interner) ID(k EventKey) uint32 {
	in.mu.RLock()
	id, ok := in.ids[k]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok = in.ids[k]; ok {
		return id
	}
	id = uint32(len(in.keys))
	in.ids[k] = id
	in.keys = append(in.keys, k)
	return id
}

// Key returns the event key for a previously assigned ID (the zero key
// for IDs never handed out).
func (in *Interner) Key(id uint32) EventKey {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if int(id) >= len(in.keys) {
		return EventKey{}
	}
	return in.keys[id]
}

// Len returns the number of interned keys; every assigned ID is < Len.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.keys)
}

// pairState is the per-key pairing state retained by a PairBuffer across
// calls: the interned ID and the LIFO stack of open enter timestamps.
type pairState struct {
	key     EventKey
	id      uint32
	stack   []int64
	touched bool // key seen by the current PairInto call
}

// PairBuffer is reusable scratch for EventTrace.PairInto. It memoizes
// key lookups (EventKey -> state index, and the interned ID) across
// calls, so pairing a stream of similar traces does per-record map work
// only on first sight of each key. A buffer is bound to at most one
// interner and must not be used concurrently; pool buffers per analyzer.
type PairBuffer struct {
	in      *Interner
	byKey   map[EventKey]int32
	states  []pairState
	touched []int32 // state indices entered this call, in first-entry order

	insts []Instance
	ids   []uint32
}

// NewPairBuffer returns an empty buffer whose interned-ID column is
// assigned by in (nil for callers that ignore the ID column).
func NewPairBuffer(in *Interner) *PairBuffer {
	return &PairBuffer{in: in, byKey: make(map[EventKey]int32)}
}

// pairSorter sorts the instance and key-ID columns in lockstep with the
// same ordering Pair has always used: by start time, ties by end time.
type pairSorter struct {
	insts []Instance
	ids   []uint32
}

func (s *pairSorter) Len() int { return len(s.insts) }
func (s *pairSorter) Less(a, b int) bool {
	if s.insts[a].StartMS != s.insts[b].StartMS {
		return s.insts[a].StartMS < s.insts[b].StartMS
	}
	return s.insts[a].EndMS < s.insts[b].EndMS
}
func (s *pairSorter) Swap(a, b int) {
	s.insts[a], s.insts[b] = s.insts[b], s.insts[a]
	s.ids[a], s.ids[b] = s.ids[b], s.ids[a]
}

// PairInto is the zero-allocation (steady-state) form of Pair: it
// validates and pairs in one pass, writing the instance column and the
// parallel interned-key-ID column into buf and returning slices that
// remain valid until the next call on buf. Validation checks run in
// Validate's per-record order, so the first error reported is identical
// to Validate-then-pair; the one divergence is the end-of-trace
// unbalanced error, which names the first-entered unbalanced key instead
// of a random one (Validate ranges over a map there, so no caller can
// depend on which key it picks).
func (t *EventTrace) PairInto(buf *PairBuffer) (insts []Instance, ids []uint32, err error) {
	buf.insts = buf.insts[:0]
	buf.ids = buf.ids[:0]
	defer func() {
		// Reset per-call state so the buffer is clean for reuse even on
		// the error paths; the key -> state memo survives.
		for _, si := range buf.touched {
			st := &buf.states[si]
			st.stack = st.stack[:0]
			st.touched = false
		}
		buf.touched = buf.touched[:0]
	}()
	var last int64
	for i := range t.Records {
		r := &t.Records[i]
		if r.TimestampMS < 0 {
			return nil, nil, fmt.Errorf("%w: record %d at %d", ErrBadTimestamp, i, r.TimestampMS)
		}
		if i > 0 && r.TimestampMS < last {
			return nil, nil, fmt.Errorf("%w: record %d at %d after %d", ErrUnsortedRecords, i, r.TimestampMS, last)
		}
		last = r.TimestampMS
		si, ok := buf.byKey[r.Key]
		if !ok {
			if err := r.Key.Validate(); err != nil {
				return nil, nil, fmt.Errorf("%w: record %d: %v", ErrBadKey, i, err)
			}
			var id uint32
			if buf.in != nil {
				id = buf.in.ID(r.Key)
			}
			si = int32(len(buf.states))
			buf.states = append(buf.states, pairState{key: r.Key, id: id})
			buf.byKey[r.Key] = si
		}
		st := &buf.states[si]
		if !st.touched {
			st.touched = true
			buf.touched = append(buf.touched, si)
		}
		switch r.Dir {
		case Enter:
			st.stack = append(st.stack, r.TimestampMS)
		case Exit:
			if len(st.stack) == 0 {
				return nil, nil, fmt.Errorf("%w: %s at %d", ErrExitBeforeEnter, r.Key, r.TimestampMS)
			}
			start := st.stack[len(st.stack)-1]
			st.stack = st.stack[:len(st.stack)-1]
			buf.insts = append(buf.insts, Instance{Key: r.Key, StartMS: start, EndMS: r.TimestampMS})
			buf.ids = append(buf.ids, st.id)
		default:
			return nil, nil, fmt.Errorf("trace: record %d has invalid direction %d", i, r.Dir)
		}
	}
	for _, si := range buf.touched {
		if st := &buf.states[si]; len(st.stack) != 0 {
			return nil, nil, fmt.Errorf("%w: %s left open %d time(s)", ErrUnbalanced, st.key, len(st.stack))
		}
	}
	sorter := pairSorter{insts: buf.insts, ids: buf.ids}
	sort.Sort(&sorter)
	return buf.insts, buf.ids, nil
}
