package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// These tests pin the edge cases the codec grammar deliberately
// accepts (empty trace, zero-duration events, duplicate timestamps)
// and the ones it rejects, plus the lenient readers' accounting.

func TestEmptyTraceRoundTripsAndValidates(t *testing.T) {
	empty := &EventTrace{}
	if err := empty.Validate(); err != nil {
		t.Errorf("empty trace invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := empty.WriteText(&buf); err != nil {
		t.Fatalf("empty trace does not serialize: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty trace serialized to %q", buf.String())
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 0 {
		t.Errorf("empty trace read back %d records", len(back.Records))
	}
}

func TestZeroDurationEventIsValid(t *testing.T) {
	tr := &EventTrace{Records: []Record{
		{TimestampMS: 10, Dir: Enter, Key: EventKey{Class: "La/B", Callback: "onCreate"}},
		{TimestampMS: 10, Dir: Exit, Key: EventKey{Class: "La/B", Callback: "onCreate"}},
	}}
	if err := tr.Validate(); err != nil {
		t.Errorf("zero-duration event rejected: %v", err)
	}
}

func TestDuplicateTimestampsAreValid(t *testing.T) {
	tr := &EventTrace{Records: []Record{
		{TimestampMS: 5, Dir: Enter, Key: EventKey{Class: "La/B", Callback: "a"}},
		{TimestampMS: 5, Dir: Enter, Key: EventKey{Class: "Lc/D", Callback: "b"}},
		{TimestampMS: 5, Dir: Exit, Key: EventKey{Class: "Lc/D", Callback: "b"}},
		{TimestampMS: 5, Dir: Exit, Key: EventKey{Class: "La/B", Callback: "a"}},
	}}
	if err := tr.Validate(); err != nil {
		t.Errorf("duplicate timestamps rejected: %v", err)
	}
}

func TestExitBeforeEnterParsesButFailsValidate(t *testing.T) {
	// The grammar accepts the line (tooling can inspect broken traces);
	// structural validation rejects it.
	tr, err := ReadText(strings.NewReader("5 - La/B; onStop\n"))
	if err != nil {
		t.Fatalf("exit-before-enter must parse: %v", err)
	}
	if err := tr.Validate(); !errors.Is(err, ErrExitBeforeEnter) {
		t.Errorf("Validate = %v, want ErrExitBeforeEnter", err)
	}
}

func TestValidateRejectsNegativeTimestampAndBadKey(t *testing.T) {
	neg := &EventTrace{Records: []Record{
		{TimestampMS: -1, Dir: Enter, Key: EventKey{Class: "La/B", Callback: "cb"}},
	}}
	if err := neg.Validate(); !errors.Is(err, ErrBadTimestamp) {
		t.Errorf("negative timestamp: Validate = %v, want ErrBadTimestamp", err)
	}
	for _, key := range []EventKey{
		{Class: "", Callback: "cb"},
		{Class: "La/B;", Callback: "cb"},
		{Class: " La/B", Callback: "cb"},
		{Class: "La/B", Callback: "cb\n"},
	} {
		bad := &EventTrace{Records: []Record{
			{TimestampMS: 0, Dir: Enter, Key: key},
		}}
		if err := bad.Validate(); !errors.Is(err, ErrBadKey) {
			t.Errorf("key %+v: Validate = %v, want ErrBadKey", key, err)
		}
	}
}

func TestWriteTextRejectsUnwritableRecords(t *testing.T) {
	for _, tr := range []*EventTrace{
		{Records: []Record{{TimestampMS: 0, Dir: Enter, Key: EventKey{Class: "La;B", Callback: "cb"}}}},
		{Records: []Record{{TimestampMS: -5, Dir: Enter, Key: EventKey{Class: "La/B", Callback: "cb"}}}},
	} {
		var buf bytes.Buffer
		if err := tr.WriteText(&buf); err == nil {
			t.Errorf("unwritable trace %+v serialized to %q", tr.Records[0], buf.String())
		}
		if buf.Len() != 0 {
			t.Errorf("rejected trace still wrote %q (validation must precede output)", buf.String())
		}
	}
}

func TestUtilizationValidateRejectsBadSamples(t *testing.T) {
	base := func() *UtilizationTrace {
		return &UtilizationTrace{PeriodMS: 500, Samples: []UtilizationSample{
			{TimestampMS: 0}, {TimestampMS: 500},
		}}
	}
	neg := base()
	neg.Samples[1].TimestampMS = -500
	if err := neg.Validate(); !errors.Is(err, ErrBadTimestamp) {
		t.Errorf("negative sample timestamp: Validate = %v, want ErrBadTimestamp", err)
	}
	out := base()
	out.Samples[0].Util[0] = 1.5 // bypass Set's clamping, as a decoded wire value can
	if err := out.Validate(); !errors.Is(err, ErrBadUtilization) {
		t.Errorf("out-of-range utilization: Validate = %v, want ErrBadUtilization", err)
	}
}

func TestReadTextLenientAccounting(t *testing.T) {
	input := strings.Join([]string{
		"# header comment",
		"1 + La/B; onCreate",
		"bogus line",
		"",
		"2 - La/B; onCreate",
		"3 ? La/B; onCreate",
	}, "\n") + "\n"
	tr, stats, err := ReadTextLenient(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 {
		t.Errorf("kept %d records, want 2", len(tr.Records))
	}
	if stats.Lines != 6 || stats.Records != 2 || stats.Skipped != 2 {
		t.Errorf("stats = %+v, want 6 lines, 2 records, 2 skipped", stats)
	}
	if len(stats.Errors) != 2 {
		t.Fatalf("retained %d errors, want 2", len(stats.Errors))
	}
	if stats.Errors[0].Line != 3 || stats.Errors[1].Line != 6 {
		t.Errorf("error lines = %d, %d; want 3 and 6", stats.Errors[0].Line, stats.Errors[1].Line)
	}
}

func TestReadTextLenientCapsRetainedErrors(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < maxRetainedLineErrors+10; i++ {
		sb.WriteString("broken\n")
	}
	_, stats, err := ReadTextLenient(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != maxRetainedLineErrors+10 {
		t.Errorf("skipped = %d, want every line counted", stats.Skipped)
	}
	if len(stats.Errors) != maxRetainedLineErrors {
		t.Errorf("retained %d errors, want the cap %d", len(stats.Errors), maxRetainedLineErrors)
	}
}

func TestScanBundlesLenientAccounting(t *testing.T) {
	var corpus bytes.Buffer
	good := &TraceBundle{Event: EventTrace{AppID: "app", UserID: "u", TraceID: "t"}}
	_ = EncodeBundle(&corpus, good)
	corpus.WriteString("garbage\n")
	_ = EncodeBundle(&corpus, good)

	var kept int
	var bad []BadBundleLine
	err := ScanBundlesLenient(&corpus,
		func(b *TraceBundle) error { kept++; return nil },
		func(b BadBundleLine) error { bad = append(bad, b); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 {
		t.Errorf("kept %d bundles, want 2", kept)
	}
	if len(bad) != 1 || bad[0].Line != 2 || bad[0].Text != "garbage" {
		t.Fatalf("bad = %+v, want line 2 %q", bad, "garbage")
	}
	if bad[0].Err == nil {
		t.Error("bad line carries no error")
	}
}

func TestContentKeyDetectsMutationAndIgnoresKeyField(t *testing.T) {
	b := &TraceBundle{Event: EventTrace{AppID: "app", UserID: "user-1", TraceID: "t1"}}
	key := ContentKey(b)
	if len(key) != 16 {
		t.Fatalf("key %q, want 16 hex chars", key)
	}
	b.Key = key
	if err := VerifyContentKey(b); err != nil {
		t.Fatalf("stamped key does not verify: %v", err)
	}
	if ContentKey(b) != key {
		t.Error("content key depends on the Key field itself")
	}
	// Any content mutation invalidates the stamp.
	b.Event.TraceID = "t2"
	if err := VerifyContentKey(b); err == nil {
		t.Error("mutated bundle still verifies")
	}
	// Legacy bundles without a key pass verification.
	if err := VerifyContentKey(&TraceBundle{Event: EventTrace{AppID: "x"}}); err != nil {
		t.Errorf("keyless bundle rejected: %v", err)
	}
}
