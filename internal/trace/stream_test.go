package trace

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func streamBundle(user, id string) *TraceBundle {
	return &TraceBundle{
		Event: EventTrace{AppID: "app", UserID: user, TraceID: id,
			Records: []Record{rec(1, Enter, "L", "f"), rec(2, Exit, "L", "f")}},
		Util: UtilizationTrace{AppID: "app", PeriodMS: 500},
	}
}

func TestScanBundlesStopsOnBadLine(t *testing.T) {
	var sb strings.Builder
	if err := WriteBundles(&sb, []*TraceBundle{streamBundle("u", "t1")}); err != nil {
		t.Fatal(err)
	}
	sb.WriteString("this is not json\n")
	n := 0
	err := ScanBundles(strings.NewReader(sb.String()), func(*TraceBundle) error {
		n++
		return nil
	})
	if err == nil {
		t.Fatal("bad line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks line number: %v", err)
	}
	if n != 1 {
		t.Errorf("callback ran %d times, want 1", n)
	}
}

func TestScanBundlesPropagatesCallbackError(t *testing.T) {
	var sb strings.Builder
	if err := WriteBundles(&sb, []*TraceBundle{
		streamBundle("u", "t1"), streamBundle("u", "t2"),
	}); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	err := ScanBundles(strings.NewReader(sb.String()), func(*TraceBundle) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestScanBundlesSkipsBlankLines(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("\n\n")
	if err := WriteBundles(&sb, []*TraceBundle{streamBundle("u", "t1")}); err != nil {
		t.Fatal(err)
	}
	sb.WriteString("\n")
	bundles, err := ReadBundles(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Errorf("bundles = %d", len(bundles))
	}
}

// Property: Write/Read bundle streams round-trip any count of bundles.
func TestBundleStreamRoundTripProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw % 20)
		in := make([]*TraceBundle, 0, n)
		for i := 0; i < n; i++ {
			in = append(in, streamBundle("u", "t"+string(rune('a'+i%26))))
		}
		var sb strings.Builder
		if err := WriteBundles(&sb, in); err != nil {
			return false
		}
		out, err := ReadBundles(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i].Event.TraceID != in[i].Event.TraceID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
