package trace

import (
	"fmt"
	"regexp"
	"strings"
)

// This file implements the privacy scrubbing pass the paper requires
// before traces leave the phone: "traces collected by EnergyDx are
// preprocessed to remove any user identifiers, such as phone numbers or
// IP addresses" (§II-B).

var (
	// reIPv4 matches dotted-quad IP addresses.
	reIPv4 = regexp.MustCompile(`\b(?:\d{1,3}\.){3}\d{1,3}\b`)
	// rePhone matches common phone-number shapes (7+ digits with optional
	// separators and country prefix).
	rePhone = regexp.MustCompile(`\+?\d[\d\-\. ]{6,}\d`)
	// reEmail matches email addresses.
	reEmail = regexp.MustCompile(`[A-Za-z0-9._%+\-]+@[A-Za-z0-9.\-]+\.[A-Za-z]{2,}`)
)

const redacted = "<redacted>"

// ScrubString removes IP addresses, phone numbers and email addresses
// from a free-form string.
func ScrubString(s string) string {
	s = reEmail.ReplaceAllString(s, redacted)
	s = reIPv4.ReplaceAllString(s, redacted)
	s = rePhone.ReplaceAllString(s, redacted)
	return s
}

// ScrubUserID replaces a raw user identifier with a stable pseudonym so
// Step 5 can still count distinct impacted users without learning who
// they are. The pseudonym is a short FNV-based tag.
func ScrubUserID(userID string) string {
	if strings.HasPrefix(userID, "user-") {
		// Already pseudonymous (produced by a previous scrub).
		return userID
	}
	return fmt.Sprintf("user-%08x", fnv32(userID))
}

// fnv32 is the 32-bit FNV-1a hash (inlined to avoid importing hash/fnv
// for four lines).
func fnv32(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

// ScrubBundle returns a deep copy of the bundle with user identifiers
// pseudonymized and free-form fields scrubbed of PII. The original
// bundle is not modified, and scrubbing is idempotent: scrubbing an
// already-scrubbed bundle is a no-op, so the server can re-scrub
// uploads (defense in depth) without invalidating the content key a
// client stamped on the scrubbed bundle. A nil bundle scrubs to nil.
func ScrubBundle(b *TraceBundle) *TraceBundle {
	if b == nil {
		return nil
	}
	out := &TraceBundle{
		Key: b.Key,
		Event: EventTrace{
			AppID:   ScrubString(b.Event.AppID),
			UserID:  ScrubUserID(b.Event.UserID),
			Device:  b.Event.Device,
			TraceID: b.Event.TraceID,
			Records: make([]Record, len(b.Event.Records)),
		},
		Util: UtilizationTrace{
			AppID:    ScrubString(b.Util.AppID),
			PID:      0, // PID is device-local and dropped on upload
			PeriodMS: b.Util.PeriodMS,
			Samples:  make([]UtilizationSample, len(b.Util.Samples)),
		},
	}
	for i, r := range b.Event.Records {
		r.Key.Class = ScrubString(r.Key.Class)
		r.Key.Callback = ScrubString(r.Key.Callback)
		out.Event.Records[i] = r
	}
	copy(out.Util.Samples, b.Util.Samples)
	return out
}
