package trace

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func rec(ts int64, dir Direction, cls, cb string) Record {
	return Record{TimestampMS: ts, Dir: dir, Key: EventKey{Class: cls, Callback: cb}}
}

func TestComponentString(t *testing.T) {
	want := map[Component]string{
		CPU: "cpu", Display: "display", WiFi: "wifi", Cellular: "cellular",
		GPS: "gps", Audio: "audio", Sensor: "sensor",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if got := Component(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown component String = %q", got)
	}
	if len(Components()) != NumComponents {
		t.Errorf("Components() has %d entries, want %d", len(Components()), NumComponents)
	}
}

func TestUtilizationVectorClamping(t *testing.T) {
	var u UtilizationVector
	u.Set(CPU, 1.5)
	if u.Get(CPU) != 1 {
		t.Errorf("Set clamps high: got %v", u.Get(CPU))
	}
	u.Set(CPU, -0.5)
	if u.Get(CPU) != 0 {
		t.Errorf("Set clamps low: got %v", u.Get(CPU))
	}
	u.Set(CPU, 0.7)
	u.Add(CPU, 0.6)
	if u.Get(CPU) != 1 {
		t.Errorf("Add clamps: got %v", u.Get(CPU))
	}
	// Unknown components are ignored, not panics.
	u.Set(Component(0), 0.5)
	u.Set(Component(42), 0.5)
	if u.Get(Component(42)) != 0 {
		t.Error("unknown component should read 0")
	}
}

func TestValidateOK(t *testing.T) {
	tr := &EventTrace{Records: []Record{
		rec(10, Enter, "LA", "onCreate"),
		rec(20, Exit, "LA", "onCreate"),
		rec(20, Enter, "LA", "onResume"),
		rec(25, Exit, "LA", "onResume"),
	}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		records []Record
		wantErr error
	}{
		{
			"unsorted",
			[]Record{rec(20, Enter, "LA", "x"), rec(10, Exit, "LA", "x")},
			ErrUnsortedRecords,
		},
		{
			"exit without enter",
			[]Record{rec(10, Exit, "LA", "x")},
			ErrExitBeforeEnter,
		},
		{
			"unbalanced open",
			[]Record{rec(10, Enter, "LA", "x")},
			ErrUnbalanced,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := &EventTrace{Records: tt.records}
			if err := tr.Validate(); !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestValidateBadDirection(t *testing.T) {
	tr := &EventTrace{Records: []Record{{TimestampMS: 1, Dir: Direction(9)}}}
	if err := tr.Validate(); err == nil {
		t.Error("invalid direction accepted")
	}
}

func TestPairSimple(t *testing.T) {
	tr := &EventTrace{Records: []Record{
		rec(10, Enter, "LA", "onCreate"),
		rec(30, Exit, "LA", "onCreate"),
		rec(40, Enter, "LB", "onClick"),
		rec(45, Exit, "LB", "onClick"),
	}}
	ins, err := tr.Pair()
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 {
		t.Fatalf("got %d instances, want 2", len(ins))
	}
	if ins[0].DurationMS() != 20 || ins[1].DurationMS() != 5 {
		t.Errorf("durations = %d, %d", ins[0].DurationMS(), ins[1].DurationMS())
	}
	if ins[0].StartMS != 10 || ins[1].StartMS != 40 {
		t.Errorf("starts = %d, %d", ins[0].StartMS, ins[1].StartMS)
	}
}

func TestPairNested(t *testing.T) {
	// Re-entrant callback: the same key nests; matching is LIFO.
	tr := &EventTrace{Records: []Record{
		rec(10, Enter, "LA", "f"),
		rec(12, Enter, "LA", "f"),
		rec(14, Exit, "LA", "f"),
		rec(20, Exit, "LA", "f"),
	}}
	ins, err := tr.Pair()
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 {
		t.Fatalf("got %d instances, want 2", len(ins))
	}
	// Sorted by start: outer first.
	if ins[0].StartMS != 10 || ins[0].EndMS != 20 {
		t.Errorf("outer = %+v", ins[0])
	}
	if ins[1].StartMS != 12 || ins[1].EndMS != 14 {
		t.Errorf("inner = %+v", ins[1])
	}
}

func TestKeysSortedDistinct(t *testing.T) {
	tr := &EventTrace{Records: []Record{
		rec(10, Enter, "LB", "z"),
		rec(11, Exit, "LB", "z"),
		rec(12, Enter, "LA", "a"),
		rec(13, Exit, "LA", "a"),
		rec(14, Enter, "LA", "a"),
		rec(15, Exit, "LA", "a"),
	}}
	keys := tr.Keys()
	if len(keys) != 2 {
		t.Fatalf("got %d keys, want 2", len(keys))
	}
	if keys[0].Class != "LA" || keys[1].Class != "LB" {
		t.Errorf("keys not sorted: %v", keys)
	}
}

func TestSpan(t *testing.T) {
	tr := &EventTrace{}
	if f, l := tr.SpanMS(); f != 0 || l != 0 {
		t.Errorf("empty span = %d, %d", f, l)
	}
	tr.Records = []Record{rec(5, Enter, "L", "f"), rec(9, Exit, "L", "f")}
	if f, l := tr.SpanMS(); f != 5 || l != 9 {
		t.Errorf("span = %d, %d", f, l)
	}
}

func TestUtilizationBetween(t *testing.T) {
	ut := &UtilizationTrace{PeriodMS: 500}
	for i := 0; i < 10; i++ {
		var u UtilizationVector
		u.Set(CPU, float64(i)/10)
		ut.Samples = append(ut.Samples, UtilizationSample{TimestampMS: int64(i) * 500, Util: u})
	}
	// Window covering samples at 1000, 1500 (CPU 0.2, 0.3) -> 0.25.
	got, ok := ut.UtilizationBetween(1000, 1500)
	if !ok {
		t.Fatal("no utilization returned")
	}
	if cpu := got.Get(CPU); cpu != 0.25 {
		t.Errorf("avg CPU = %v, want 0.25", cpu)
	}
	// Window between samples: nearest fallback (midpoint 1240 -> sample 1000, wait:
	// window [1210,1270], mid=1240, nearest is 1000 or 1500 -> 1000 distance 240, 1500 distance 260).
	got, ok = ut.UtilizationBetween(1210, 1270)
	if !ok {
		t.Fatal("no utilization returned for narrow window")
	}
	if cpu := got.Get(CPU); cpu != 0.2 {
		t.Errorf("nearest CPU = %v, want 0.2", cpu)
	}
}

func TestUtilizationBetweenEmpty(t *testing.T) {
	ut := &UtilizationTrace{PeriodMS: 500}
	if _, ok := ut.UtilizationBetween(0, 100); ok {
		t.Error("empty trace should return ok=false")
	}
}

func TestUtilizationValidate(t *testing.T) {
	ut := &UtilizationTrace{PeriodMS: 0}
	if err := ut.Validate(); !errors.Is(err, ErrBadPeriod) {
		t.Errorf("zero period: %v", err)
	}
	ut = &UtilizationTrace{PeriodMS: 500, Samples: []UtilizationSample{
		{TimestampMS: 100}, {TimestampMS: 50},
	}}
	if err := ut.Validate(); !errors.Is(err, ErrUnsortedRecords) {
		t.Errorf("unsorted samples: %v", err)
	}
}

func TestMerge(t *testing.T) {
	a := &EventTrace{AppID: "k9", UserID: "u1", Records: []Record{
		rec(10, Enter, "L", "f"), rec(20, Exit, "L", "f"),
	}}
	b := &EventTrace{AppID: "k9", UserID: "u1", Records: []Record{
		rec(15, Enter, "M", "g"), rec(16, Exit, "M", "g"),
	}}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Records) != 4 {
		t.Fatalf("merged %d records, want 4", len(m.Records))
	}
	for i := 1; i < len(m.Records); i++ {
		if m.Records[i].TimestampMS < m.Records[i-1].TimestampMS {
			t.Fatalf("merged records unsorted: %v", m.Records)
		}
	}
}

func TestMergeMismatch(t *testing.T) {
	a := &EventTrace{AppID: "k9", UserID: "u1"}
	b := &EventTrace{AppID: "other", UserID: "u1"}
	if _, err := Merge(a, b); err == nil {
		t.Error("mismatched apps merged")
	}
	c := &EventTrace{AppID: "k9", UserID: "u2"}
	if _, err := Merge(a, c); err == nil {
		t.Error("mismatched users merged")
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := &EventTrace{Records: []Record{
		rec(28223867, Enter, "Lcom/fsck/k9/service/MailService", "onDestroy"),
		rec(28223867, Exit, "Lcom/fsck/k9/service/MailService", "onDestroy"),
		rec(28224781, Enter, "Lcom/fsck/k9/activity/MessageList", "onItemClick"),
		rec(28224844, Exit, "Lcom/fsck/k9/activity/MessageList", "onItemClick"),
	}}
	text := tr.Text()
	// Exactly the paper's Fig 5 content.
	if !strings.Contains(text, "28223867 + Lcom/fsck/k9/service/MailService; onDestroy") {
		t.Errorf("text format mismatch:\n%s", text)
	}
	back, err := ReadText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(tr.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(back.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if back.Records[i] != tr.Records[i] {
			t.Errorf("record %d: got %+v, want %+v", i, back.Records[i], tr.Records[i])
		}
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n10 + LA; f\n11 - LA; f\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 {
		t.Errorf("got %d records, want 2", len(tr.Records))
	}
}

func TestReadTextErrors(t *testing.T) {
	bad := []string{
		"notanumber + LA; f",
		"10 * LA; f",
		"10 + LAnosemicolon f",
		"10 +",
		"10 + ; f",
	}
	for _, line := range bad {
		if _, err := ReadText(strings.NewReader(line)); err == nil {
			t.Errorf("line %q accepted", line)
		} else {
			var pe *ParseTextError
			if !errors.As(err, &pe) {
				t.Errorf("line %q: error %T, want *ParseTextError", line, err)
			}
		}
	}
}

func TestBundleJSONRoundTrip(t *testing.T) {
	b := &TraceBundle{
		Event: EventTrace{
			AppID: "k9", UserID: "u1", Device: "nexus6", TraceID: "t1",
			Records: []Record{rec(1, Enter, "L", "f"), rec(2, Exit, "L", "f")},
		},
		Util: UtilizationTrace{
			AppID: "k9", PID: 1234, PeriodMS: 500,
			Samples: []UtilizationSample{{TimestampMS: 1}},
		},
	}
	var sb strings.Builder
	if err := EncodeBundle(&sb, b); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBundle(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Event.AppID != "k9" || len(back.Event.Records) != 2 || back.Util.PID != 1234 {
		t.Errorf("round trip = %+v", back)
	}
}

func TestDecodeBundleError(t *testing.T) {
	if _, err := DecodeBundle(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestScrubString(t *testing.T) {
	tests := []struct{ in, wantGone string }{
		{"connect to 192.168.1.100 failed", "192.168.1.100"},
		{"call +1 614-555-0199 now", "614-555-0199"},
		{"mail bob@example.com", "bob@example.com"},
	}
	for _, tt := range tests {
		got := ScrubString(tt.in)
		if strings.Contains(got, tt.wantGone) {
			t.Errorf("ScrubString(%q) = %q still contains PII", tt.in, got)
		}
		if !strings.Contains(got, "<redacted>") {
			t.Errorf("ScrubString(%q) = %q lacks redaction marker", tt.in, got)
		}
	}
	if got := ScrubString("Lcom/fsck/k9/activity/MessageList"); got != "Lcom/fsck/k9/activity/MessageList" {
		t.Errorf("class name mangled: %q", got)
	}
}

func TestScrubUserIDStableAndPseudonymous(t *testing.T) {
	a := ScrubUserID("alice@example.com")
	b := ScrubUserID("alice@example.com")
	c := ScrubUserID("bob@example.com")
	if a != b {
		t.Errorf("scrub not stable: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("distinct users collide: %q", a)
	}
	if strings.Contains(a, "alice") {
		t.Errorf("pseudonym leaks identity: %q", a)
	}
	if ScrubUserID(a) != a {
		t.Errorf("double scrub changed pseudonym: %q -> %q", a, ScrubUserID(a))
	}
}

func TestScrubBundleDeepCopy(t *testing.T) {
	b := &TraceBundle{
		Event: EventTrace{
			AppID: "k9", UserID: "alice@example.com",
			Records: []Record{rec(1, Enter, "L", "f"), rec(2, Exit, "L", "f")},
		},
		Util: UtilizationTrace{PID: 42, PeriodMS: 500},
	}
	s := ScrubBundle(b)
	if s.Event.UserID == "alice@example.com" {
		t.Error("user ID not scrubbed")
	}
	if s.Util.PID != 0 {
		t.Error("PID not dropped")
	}
	// Mutating the copy must not touch the original.
	s.Event.Records[0].TimestampMS = 999
	if b.Event.Records[0].TimestampMS != 1 {
		t.Error("scrub is not a deep copy")
	}
	if b.Event.UserID != "alice@example.com" {
		t.Error("original mutated")
	}
}

func TestShortKey(t *testing.T) {
	tests := []struct {
		key  EventKey
		want string
	}{
		{EventKey{"Lcom/fsck/k9/activity/MessageList;", "onResume"}, "MessageList:onResume"},
		{EventKey{"Lcom/fsck/k9/activity/MessageList", "onResume"}, "MessageList:onResume"},
		{EventKey{"Plain", "f"}, "Plain:f"},
	}
	for _, tt := range tests {
		if got := ShortKey(tt.key); got != tt.want {
			t.Errorf("ShortKey(%v) = %q, want %q", tt.key, got, tt.want)
		}
	}
}

// Property: any well-formed generated trace validates and pairs into
// exactly half as many instances as records.
func TestPairProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 1
		tr := &EventTrace{}
		ts := int64(0)
		classes := []string{"LA", "LB", "LC"}
		var openStack []EventKey
		for i := 0; i < n; i++ {
			key := EventKey{Class: classes[rng.Intn(len(classes))], Callback: "f"}
			ts += int64(rng.Intn(100))
			tr.Records = append(tr.Records, Record{TimestampMS: ts, Dir: Enter, Key: key})
			openStack = append(openStack, key)
			// Randomly close some open events (LIFO to keep nesting valid).
			for len(openStack) > 0 && rng.Intn(2) == 0 {
				k := openStack[len(openStack)-1]
				openStack = openStack[:len(openStack)-1]
				ts += int64(rng.Intn(100))
				tr.Records = append(tr.Records, Record{TimestampMS: ts, Dir: Exit, Key: k})
			}
		}
		for len(openStack) > 0 {
			k := openStack[len(openStack)-1]
			openStack = openStack[:len(openStack)-1]
			ts += int64(rng.Intn(100))
			tr.Records = append(tr.Records, Record{TimestampMS: ts, Dir: Exit, Key: k})
		}
		ins, err := tr.Pair()
		if err != nil {
			return false
		}
		if len(ins) != len(tr.Records)/2 {
			return false
		}
		for _, in := range ins {
			if in.DurationMS() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: text round-trip is lossless for arbitrary timestamps.
func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 30)
		tr := &EventTrace{}
		ts := int64(rng.Intn(1_000_000))
		for i := 0; i < n; i++ {
			ts += int64(rng.Intn(5000))
			dir := Enter
			if i%2 == 1 {
				dir = Exit
			}
			tr.Records = append(tr.Records, rec(ts, dir, "Lcom/app/Class", "onEvent"))
		}
		back, err := ReadText(strings.NewReader(tr.Text()))
		if err != nil {
			return false
		}
		if len(back.Records) != len(tr.Records) {
			return false
		}
		for i := range tr.Records {
			if back.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
