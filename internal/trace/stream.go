package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// This file provides JSON-lines corpus streaming shared by the CLI
// tools and the collection server's file store: one bundle per line,
// blank lines ignored.

// maxBundleBytes bounds one serialized bundle when scanning (64 MiB).
const maxBundleBytes = 64 << 20

// ReadBundles decodes every JSON-line bundle from r.
func ReadBundles(r io.Reader) ([]*TraceBundle, error) {
	var bundles []*TraceBundle
	err := ScanBundles(r, func(b *TraceBundle) error {
		bundles = append(bundles, b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return bundles, nil
}

// ScanBundles streams bundles from r to fn, stopping at the first
// error. Use this instead of ReadBundles when the corpus may not fit in
// memory at once.
func ScanBundles(r io.Reader, fn func(*TraceBundle) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxBundleBytes)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		b, err := DecodeBundle(bytes.NewReader(text))
		if err != nil {
			return fmt.Errorf("trace: line %d: %w", line, err)
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace: scan bundles: %w", err)
	}
	return nil
}

// BadBundleLine describes one undecodable line met during a lenient
// corpus scan.
type BadBundleLine struct {
	// Line is the 1-based line number in the stream.
	Line int
	// Text is a prefix of the offending line (at most 120 bytes).
	Text string
	// Err is the decode error.
	Err error
}

// ScanBundlesLenient streams bundles from r to fn like ScanBundles, but
// survives undecodable lines: each one is reported to onBad (when
// non-nil) and skipped. A crash can leave a torn trailing line in an
// append-only corpus file, and a reloading server must keep every
// bundle it already acknowledged rather than fail the whole file, so
// this is the loader the durable store uses. fn or onBad returning an
// error stops the scan.
func ScanBundlesLenient(r io.Reader, fn func(*TraceBundle) error, onBad func(BadBundleLine) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxBundleBytes)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		b, err := DecodeBundle(bytes.NewReader(text))
		if err != nil {
			if onBad != nil {
				prefix := text
				if len(prefix) > 120 {
					prefix = prefix[:120]
				}
				if err := onBad(BadBundleLine{Line: line, Text: string(prefix), Err: err}); err != nil {
					return err
				}
			}
			continue
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace: scan bundles: %w", err)
	}
	return nil
}

// WriteBundles encodes bundles to w as JSON lines.
func WriteBundles(w io.Writer, bundles []*TraceBundle) error {
	bw := bufio.NewWriter(w)
	for i, b := range bundles {
		if err := EncodeBundle(bw, b); err != nil {
			return fmt.Errorf("trace: bundle %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: write bundles: %w", err)
	}
	return nil
}
