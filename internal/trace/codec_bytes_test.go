package trace

import (
	"bytes"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// This file pins the byte-level Fig-5 line parser to the
// strings.SplitN-based parser it replaced: parseTextLineReference below
// is that implementation, kept verbatim as the executable spec. Every
// edge case from codec_edge_test.go and every fuzz seed corpus line
// must decode to the identical record — or fail with the identical
// error text — under both.

func parseTextLineReference(line string) (Record, error) {
	// Format: "<ts> <+|-> <class>; <callback>"
	fields := strings.SplitN(line, " ", 3)
	if len(fields) != 3 {
		return Record{}, fmt.Errorf("want 3 fields, got %d", len(fields))
	}
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad timestamp: %v", err)
	}
	if ts < 0 {
		return Record{}, fmt.Errorf("negative timestamp %d", ts)
	}
	var dir Direction
	switch fields[1] {
	case "+":
		dir = Enter
	case "-":
		dir = Exit
	default:
		return Record{}, fmt.Errorf("bad direction %q", fields[1])
	}
	cls, cb, ok := strings.Cut(fields[2], ";")
	if !ok {
		return Record{}, fmt.Errorf("missing %q separator", ";")
	}
	cls = strings.TrimSpace(cls)
	cb = strings.TrimSpace(cb)
	if cls == "" || cb == "" {
		return Record{}, fmt.Errorf("empty class or callback")
	}
	if strings.ContainsAny(cls, "\r") || strings.ContainsAny(cb, "\r") {
		return Record{}, fmt.Errorf("control character in class or callback")
	}
	return Record{TimestampMS: ts, Dir: dir, Key: EventKey{Class: cls, Callback: cb}}, nil
}

// conformanceLines is the union of the codec edge cases, the fuzz seed
// corpus (line by line), and inputs aimed at the byte parser's specific
// risk spots: the manual int fast path (signs, overflow, leading zeros,
// non-ASCII digits), the two-space field split, and the dedup cache.
var conformanceLines = []string{
	// Well-formed records.
	"28223867 + Lcom/fsck/k9/service/MailService; onDestroy",
	"28223868 - Lcom/fsck/k9/service/MailService; onDestroy",
	"10 + La/B; onCreate",
	"10 - La/B; onCreate",
	"5 + La/B; onStart",
	"5 - La/B; onStop",
	"1 + La/B; run;sub", // callback containing the separator
	"0 + La/B;cb",       // no space after ";"
	"7 + La/B;  spaced  ",
	"+5 + La/B; cb", // explicit plus sign timestamp
	"007 + La/B; cb",
	"9223372036854775807 + La/B; cb", // max int64
	// Malformed lines of every kind (fuzz seeds + edge tests).
	"x + La/B; cb",
	"-1 + La/B; cb",
	"-0 + La/B; cb", // ParseInt accepts, value 0
	"1 * La/B; cb",
	"1 + ; cb",
	"1 + La/B cb",
	"1 +",
	"bogus line",
	"3 ? La/B; onCreate",
	"1  + La/B; cb",                   // double space: empty direction field
	"9223372036854775808 + La/B; cb",  // int64 overflow (range error)
	"99999999999999999999 + La/B; cb", // 20 digits
	"1_0 + La/B; cb",                  // underscore rejected in base 10
	"0x10 + La/B; cb",
	"١٢٣ + La/B; cb", // non-ASCII digits
	"1.5 + La/B; cb",
	"++ + La/B; cb",
	"- + La/B; cb",
	"1 ++ La/B; cb",
	"1 +- La/B; cb",
	"1 + La/B; cb\rx", // carriage return inside callback
	"1 + \r; cb",
}

func TestByteParserMatchesReference(t *testing.T) {
	p := getLineParser()
	defer putLineParser(p)
	for _, line := range conformanceLines {
		// The readers hand the parser trimmed lines; mirror that.
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		wantRec, wantErr := parseTextLineReference(trimmed)
		gotRec, gotErr := p.parseLine([]byte(trimmed))
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("%q: reference err %v, byte parser err %v", line, wantErr, gotErr)
			continue
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Errorf("%q: error text diverged:\n  reference: %s\n  byte:      %s", line, wantErr, gotErr)
			}
			continue
		}
		if !reflect.DeepEqual(wantRec, gotRec) {
			t.Errorf("%q: record diverged: reference %+v, byte parser %+v", line, wantRec, gotRec)
		}
	}
}

// readTextReference is ReadText as it was before the byte-level
// rewrite, driving the reference line parser.
func readTextReference(input string) (*EventTrace, error) {
	t := &EventTrace{}
	lineNo := 0
	sc := bytes.NewBufferString(input)
	for {
		raw, err := sc.ReadString('\n')
		if raw == "" && err != nil {
			break
		}
		lineNo++
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			if err != nil {
				break
			}
			continue
		}
		rec, perr := parseTextLineReference(line)
		if perr != nil {
			return nil, &ParseTextError{Line: lineNo, Text: line, Msg: perr.Error()}
		}
		t.Records = append(t.Records, rec)
		if err != nil {
			break
		}
	}
	return t, nil
}

// conformanceDocs are whole-document inputs: the fuzz seed corpus plus
// mixed documents exercising lenient accounting and the dedup cache.
var conformanceDocs = []string{
	"",
	"# comment only\n\n",
	"28223867 + Lcom/fsck/k9/service/MailService; onDestroy\n" +
		"28223868 - Lcom/fsck/k9/service/MailService; onDestroy\n",
	"10 + La/B; onCreate\n10 - La/B; onCreate\n",
	"5 + La/B; onStart\n5 + Lc/D; onStart\n6 - Lc/D; onStart\n6 - La/B; onStart\n",
	"5 - La/B; onStop\n",
	"1 + La/B; run;sub\n",
	"x + La/B; cb\n",
	"-1 + La/B; cb\n",
	"1 * La/B; cb\n",
	"1 + ; cb\n",
	"1 + La/B cb\n",
	"1 +\n",
	"# header comment\n1 + La/B; onCreate\nbogus line\n\n2 - La/B; onCreate\n3 ? La/B; onCreate\n",
	"   10 + La/B; cb   \n\t11 - La/B; cb\t\n", // surrounding whitespace trimmed per line
	"1 + La/B; cb", // no trailing newline
}

func TestReadTextMatchesReference(t *testing.T) {
	for _, doc := range conformanceDocs {
		want, wantErr := readTextReference(doc)
		got, gotErr := ReadText(strings.NewReader(doc))
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("doc %q: reference err %v, got err %v", doc, wantErr, gotErr)
			continue
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Errorf("doc %q: error diverged:\n  reference: %s\n  got:       %s", doc, wantErr, gotErr)
			}
			continue
		}
		if !reflect.DeepEqual(want.Records, got.Records) {
			t.Errorf("doc %q: records diverged:\n  reference: %+v\n  got:       %+v", doc, want.Records, got.Records)
		}
	}
}

func TestReadTextLenientMatchesStrictOnDocs(t *testing.T) {
	// On every conformance document the lenient reader must keep
	// exactly the lines the reference parser accepts, in order.
	for _, doc := range conformanceDocs {
		var want []Record
		lineNo := 0
		wantSkipped := 0
		for _, raw := range strings.Split(doc, "\n") {
			lineNo++
			line := strings.TrimSpace(raw)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			rec, err := parseTextLineReference(line)
			if err != nil {
				wantSkipped++
				continue
			}
			want = append(want, rec)
		}
		got, stats, err := ReadTextLenient(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("doc %q: lenient read failed: %v", doc, err)
		}
		if !reflect.DeepEqual(want, got.Records) && !(len(want) == 0 && len(got.Records) == 0) {
			t.Errorf("doc %q: lenient records diverged:\n  reference: %+v\n  got:       %+v", doc, want, got.Records)
		}
		if stats.Skipped != wantSkipped {
			t.Errorf("doc %q: skipped %d lines, reference skips %d", doc, stats.Skipped, wantSkipped)
		}
	}
}

func TestLineParserDedupesAndSurvivesCacheReset(t *testing.T) {
	// More distinct names than the cache bound: parsing must stay
	// correct across the reset, and repeated names within capacity must
	// share one materialized string.
	var sb strings.Builder
	n := maxInternedNames + 100
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d + Lcls%d/X; cb%d\n", 2*i, i, i)
		fmt.Fprintf(&sb, "%d - Lcls%d/X; cb%d\n", 2*i+1, i, i)
	}
	tr, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2*n {
		t.Fatalf("parsed %d records, want %d", len(tr.Records), 2*n)
	}
	for i := 0; i < n; i++ {
		enter, exit := tr.Records[2*i], tr.Records[2*i+1]
		if want := fmt.Sprintf("Lcls%d/X", i); enter.Key.Class != want {
			t.Fatalf("record %d class %q, want %q", 2*i, enter.Key.Class, want)
		}
		if enter.Key != exit.Key {
			t.Fatalf("enter/exit keys diverged at %d: %+v vs %+v", i, enter.Key, exit.Key)
		}
	}
}

func TestParseTimestampMatchesStrconv(t *testing.T) {
	cases := []string{
		"0", "1", "42", "007", "+5", "-5", "-0", "9223372036854775807",
		"9223372036854775808", "-9223372036854775808", "-9223372036854775809",
		"99999999999999999999", "", "+", "-", "x", "1x", "1_0", "0x10",
		"١٢٣", "1.5", " 1", "1 ",
	}
	for _, c := range cases {
		wantV, wantErr := strconv.ParseInt(c, 10, 64)
		gotV, gotErr := parseTimestamp([]byte(c))
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("%q: strconv err %v, parseTimestamp err %v", c, wantErr, gotErr)
			continue
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Errorf("%q: error text diverged: %v vs %v", c, wantErr, gotErr)
			}
			continue
		}
		if wantV != gotV {
			t.Errorf("%q: value diverged: %d vs %d", c, wantV, gotV)
		}
	}
}
