package binenc

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/trace"
)

// FuzzBinaryBundle throws arbitrary bytes at the payload decoder. The
// decoder must never panic; any payload it accepts must re-encode
// canonically — decode(encode(decode(p))) equals decode(p) — and its
// routable header must agree with the full decode. (Raw-byte inputs may
// decode successfully yet re-encode to different bytes when a varint
// was non-minimally encoded, so the invariant is canonical-form
// convergence, not byte identity of the input.)
func FuzzBinaryBundle(f *testing.F) {
	for _, b := range edgeBundles() {
		payload, err := EncodeBundle(nil, b)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(payload)
		if len(payload) > 4 {
			mut := append([]byte(nil), payload...)
			mut[len(mut)/2] ^= 0xff
			f.Add(mut)
			f.Add(payload[:len(payload)/2])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Fuzz(func(t *testing.T, payload []byte) {
		b, err := DecodeBundle(payload)
		if err != nil {
			return
		}
		h, err := FrameHeader(payload)
		if err != nil {
			t.Fatalf("accepted payload rejected by FrameHeader: %v", err)
		}
		if h.Key != b.Key || h.AppID != b.Event.AppID {
			t.Fatalf("header {%q %q} disagrees with decode {%q %q}", h.Key, h.AppID, b.Key, b.Event.AppID)
		}
		re, err := EncodeBundle(nil, b)
		if err != nil {
			t.Fatalf("re-encode of accepted payload failed: %v", err)
		}
		b2, err := DecodeBundle(re)
		if err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v", err)
		}
		re2, err := EncodeBundle(nil, b2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("canonical form not a fixed point")
		}
		// Frame round trip of the canonical payload.
		fr := AppendFrame(nil, re)
		got, err := ReadFrame(bytes.NewReader(fr), 0)
		if err != nil || !bytes.Equal(got, re) {
			t.Fatalf("frame round trip: %v", err)
		}
		// ContentKey round-trips through JSON, which rejects NaN/Inf
		// utilization floats — the binary codec carries them (it is a
		// pure serialization layer), so only hash finite bundles.
		finite := true
		for i := range b.Util.Samples {
			for _, v := range b.Util.Samples[i].Util {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					finite = false
				}
			}
		}
		if finite {
			_ = trace.ContentKey(b)
		}
	})
}
