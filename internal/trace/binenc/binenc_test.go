package binenc

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/trace"
	"repro/internal/workload"
)

// edgeBundles are hand-built bundles covering the encoding's corner
// cases: nil vs empty slices, unicode strings, negative and unsorted
// timestamps, direction bit packing across byte boundaries, repeated
// dictionary keys, and extreme integer values.
func edgeBundles() []*trace.TraceBundle {
	k := func(class, cb string) trace.EventKey { return trace.EventKey{Class: class, Callback: cb} }
	rec := func(ts int64, dir trace.Direction, key trace.EventKey) trace.Record {
		return trace.Record{TimestampMS: ts, Dir: dir, Key: key}
	}
	manyRecs := make([]trace.Record, 19) // crosses two direction-bit bytes
	for i := range manyRecs {
		dir := trace.Enter
		if i%3 == 0 {
			dir = trace.Exit
		}
		manyRecs[i] = rec(int64(i)*250, dir, k("Cls", "cb"))
	}
	var extremeUtil trace.UtilizationVector
	for i := range extremeUtil {
		extremeUtil[i] = -1.7e308 / float64(i+1) // huge but finite: JSON-representable
	}
	return []*trace.TraceBundle{
		{}, // zero value: nil records, nil samples, empty strings
		{
			Event: trace.EventTrace{AppID: "app", Records: []trace.Record{}},
			Util:  trace.UtilizationTrace{AppID: "app", Samples: []trace.UtilizationSample{}},
		},
		{
			Key: "0123456789abcdef",
			Event: trace.EventTrace{
				AppID: "com.example.mail", UserID: "u-1", Device: "nexus6", TraceID: "t-9",
				Records: []trace.Record{
					rec(1000, trace.Enter, k("MainActivity", "onCreate")),
					rec(1004, trace.Exit, k("MainActivity", "onCreate")),
					rec(1010, trace.Enter, k("SyncService", "onStartCommand")),
					rec(1500, trace.Exit, k("SyncService", "onStartCommand")),
				},
			},
			Util: trace.UtilizationTrace{
				AppID: "com.example.mail", PID: 4321, PeriodMS: 500,
				Samples: []trace.UtilizationSample{
					{TimestampMS: 1000, Util: trace.UtilizationVector{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}},
					{TimestampMS: 1500, Util: trace.UtilizationVector{0, 0, 0, 0, 0, 0, 1}},
				},
			},
		},
		{
			Event: trace.EventTrace{
				AppID: "приложение/テスト", UserID: strings.Repeat("長", 40), Device: "déjà-vu",
				Records: []trace.Record{
					rec(-5000, trace.Exit, k("雪", "溶ける")),
					rec(9_223_372_036_854_000, trace.Enter, k("", "")),
					rec(-9_000_000_000_000_000, trace.Exit, k("雪", "溶ける")),
				},
			},
			Util: trace.UtilizationTrace{
				AppID: "приложение/テスト", PID: -7, PeriodMS: -250,
				Samples: []trace.UtilizationSample{
					{TimestampMS: -1, Util: extremeUtil},
				},
			},
		},
		{
			Event: trace.EventTrace{AppID: "bitpack", Records: manyRecs},
			Util:  trace.UtilizationTrace{AppID: "bitpack", PID: 1},
		},
	}
}

// corpus returns the differential corpus: a full workload generation
// (what production encodes) plus the hand-built edge bundles.
func corpus(t *testing.T) []*trace.TraceBundle {
	t.Helper()
	app, err := apps.ByAppID("k9mail")
	if err != nil {
		t.Fatalf("ByAppID: %v", err)
	}
	cfg := workload.DefaultConfig(app, 42)
	cfg.Users = 6
	res, err := workload.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	bs := append([]*trace.TraceBundle{}, res.Bundles...)
	for _, b := range res.Bundles[:min(4, len(res.Bundles))] {
		stamped := *b
		stamped.Key = trace.ContentKey(b)
		bs = append(bs, &stamped)
	}
	return append(bs, edgeBundles()...)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func mustEncode(t *testing.T, b *trace.TraceBundle) []byte {
	t.Helper()
	payload, err := EncodeBundle(nil, b)
	if err != nil {
		t.Fatalf("EncodeBundle: %v", err)
	}
	return payload
}

func textLine(t *testing.T, b *trace.TraceBundle) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.EncodeBundle(&buf, b); err != nil {
		t.Fatalf("text EncodeBundle: %v", err)
	}
	return buf.Bytes()
}

// TestDifferentialVsTextCodec is the conformance gate: for every bundle
// in the corpus, decoding the binary payload and re-serializing through
// the Fig-5 text codec must be byte-identical to serializing the
// original bundle directly — the two wire formats describe the same
// bundles exactly, nil/empty distinction included.
func TestDifferentialVsTextCodec(t *testing.T) {
	for i, b := range corpus(t) {
		want := textLine(t, b)
		got, err := DecodeBundle(mustEncode(t, b))
		if err != nil {
			t.Fatalf("bundle %d: DecodeBundle: %v", i, err)
		}
		if line := textLine(t, got); !bytes.Equal(line, want) {
			t.Fatalf("bundle %d: binary round trip diverges from text codec\n text: %s\n  bin: %s", i, want, line)
		}
		if !reflect.DeepEqual(got, b) {
			t.Fatalf("bundle %d: decoded bundle not deeply equal", i)
		}
		// The text codec's own round trip must agree too (decoded
		// structs equal, not just serialized bytes).
		fromText, err := trace.DecodeBundle(bytes.NewReader(want))
		if err != nil {
			t.Fatalf("bundle %d: text DecodeBundle: %v", i, err)
		}
		if !reflect.DeepEqual(got, fromText) {
			t.Fatalf("bundle %d: binary and text decodes disagree", i)
		}
	}
}

// TestContentKeySurvivesBinaryRoundTrip: the idempotency key computed
// from a binary-decoded bundle matches the original — the dedup
// machinery cannot tell the two wire formats apart.
func TestContentKeySurvivesBinaryRoundTrip(t *testing.T) {
	for i, b := range corpus(t) {
		got, err := DecodeBundle(mustEncode(t, b))
		if err != nil {
			t.Fatalf("bundle %d: %v", i, err)
		}
		if gk, wk := trace.ContentKey(got), trace.ContentKey(b); gk != wk {
			t.Fatalf("bundle %d: content key %s != %s after round trip", i, gk, wk)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var payloads [][]byte
	for _, b := range edgeBundles() {
		p := mustEncode(t, b)
		payloads = append(payloads, p)
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	// AppendFrame and WriteFrame must produce identical bytes.
	var appended []byte
	for _, p := range payloads {
		appended = AppendFrame(appended, p)
	}
	if !bytes.Equal(appended, buf.Bytes()) {
		t.Fatal("AppendFrame and WriteFrame disagree")
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range payloads {
		got, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("frame %d: ReadFrame: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, err := ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("want clean io.EOF at end of stream, got %v", err)
	}
}

// TestFrameTornTail: every strict prefix of a framed stream must fail
// with io.ErrUnexpectedEOF (torn mid-frame), except prefixes ending at a
// frame boundary, which end with clean io.EOF. This is the signal the
// segment replay uses to truncate a torn tail without discarding the
// preceding good records.
func TestFrameTornTail(t *testing.T) {
	payload := mustEncode(t, edgeBundles()[2])
	framed := AppendFrame(nil, payload)
	framed = AppendFrame(framed, payload)
	boundary := frameHeaderLen + len(payload)
	for cut := 0; cut < len(framed); cut++ {
		r := bytes.NewReader(framed[:cut])
		var err error
		for err == nil {
			_, err = ReadFrame(r, 0)
		}
		if cut == 0 || cut == boundary {
			if err != io.EOF {
				t.Fatalf("cut %d (boundary): want io.EOF, got %v", cut, err)
			}
		} else if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: want io.ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

// TestCorruptFrameErrorParity flips every single byte of a framed
// binary bundle and asserts the frame reader rejects each mutation —
// matching the text codec, where corrupting a stored line is caught by
// JSON/grammar validation. No single-byte corruption is silent in
// either format.
func TestCorruptFrameErrorParity(t *testing.T) {
	payload := mustEncode(t, edgeBundles()[2])
	framed := AppendFrame(nil, payload)
	for i := range framed {
		mut := append([]byte(nil), framed...)
		mut[i] ^= 0x40
		got, err := ReadFrame(bytes.NewReader(mut), 0)
		if err == nil {
			// A flip in the length prefix can shorten the declared
			// length so the CRC no longer matches — ReadFrame must
			// never return a payload that differs from the original.
			t.Fatalf("byte %d: corruption accepted (payload %d bytes)", i, len(got))
		}
		if !errors.Is(err, ErrCRCMismatch) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("byte %d: unexpected error class %v", i, err)
		}
	}

	// Text-side parity: corrupting the stored JSON line is detected
	// either by the decoder or by content-key verification.
	b := edgeBundles()[2]
	b.Key = trace.ContentKey(b)
	line := textLine(t, b)
	for i := 0; i < len(line)-1; i++ { // skip trailing newline
		mut := append([]byte(nil), line...)
		mut[i] ^= 0x40
		dec, err := trace.DecodeBundle(bytes.NewReader(mut))
		if err != nil || trace.VerifyContentKey(dec) != nil {
			continue // rejected — parity holds
		}
		// The one tolerated mutation class: corrupting the "key" field
		// *name* makes it an unknown JSON field, so the bundle decodes
		// as a legacy unkeyed upload, which key verification permits
		// by design. Anything else slipping through is a real gap.
		if dec.Key == "" && b.Key != "" {
			continue
		}
		t.Fatalf("text codec: silent corruption at byte %d (%q -> %q)", i, line[i], mut[i])
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	framed := AppendFrame(nil, make([]byte, 100))
	if _, err := ReadFrame(bytes.NewReader(framed), 50); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(framed), 100); err != nil {
		t.Fatalf("payload at limit must pass: %v", err)
	}
}

func TestEncodeRejectsInvalidDirection(t *testing.T) {
	b := &trace.TraceBundle{Event: trace.EventTrace{
		Records: []trace.Record{{TimestampMS: 1, Dir: 3}},
	}}
	if _, err := EncodeBundle(nil, b); err == nil {
		t.Fatal("want error for invalid direction")
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	payload := mustEncode(t, edgeBundles()[2])
	payload[0] = 99
	if _, err := DecodeBundle(payload); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	payload := mustEncode(t, edgeBundles()[2])
	if _, err := DecodeBundle(append(payload, 0)); err == nil {
		t.Fatal("want error for trailing bytes")
	}
}

// TestDecodeTruncatedPayload: every strict prefix of a valid payload
// must error, never silently decode.
func TestDecodeTruncatedPayload(t *testing.T) {
	for i, b := range edgeBundles() {
		payload := mustEncode(t, b)
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeBundle(payload[:cut]); err == nil {
				t.Fatalf("bundle %d: prefix of %d/%d bytes decoded without error", i, cut, len(payload))
			}
		}
	}
}

func TestFrameHeader(t *testing.T) {
	for i, b := range corpus(t) {
		payload := mustEncode(t, b)
		h, err := FrameHeader(payload)
		if err != nil {
			t.Fatalf("bundle %d: FrameHeader: %v", i, err)
		}
		if h.Key != b.Key || h.AppID != b.Event.AppID {
			t.Fatalf("bundle %d: header {%q %q}, want {%q %q}", i, h.Key, h.AppID, b.Key, b.Event.AppID)
		}
	}
	if _, err := FrameHeader(nil); err == nil {
		t.Fatal("want error for empty payload")
	}
}

// TestBinarySmallerThanText sanity-checks the size win that motivates
// the codec on realistic workload traffic.
func TestBinarySmallerThanText(t *testing.T) {
	app, err := apps.ByAppID("k9mail")
	if err != nil {
		t.Fatalf("ByAppID: %v", err)
	}
	cfg := workload.DefaultConfig(app, 7)
	cfg.Users = 4
	res, err := workload.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var textN, binN int
	for _, b := range res.Bundles {
		textN += len(textLine(t, b))
		binN += frameHeaderLen + len(mustEncode(t, b))
	}
	if binN >= textN {
		t.Fatalf("binary frames (%d B) not smaller than text lines (%d B)", binN, textN)
	}
	t.Logf("corpus size: text %d B, binary %d B (%.1f%%)", textN, binN, 100*float64(binN)/float64(textN))
}
