// Package binenc implements the binary columnar trace-bundle codec the
// fleet-scale collection tier negotiates alongside the JSON-lines text
// format (protocol hello "EDX1 bin"). The same frames serve as the
// on-disk record format of the segmented bundle log
// (internal/collect/seglog), so one codec covers wire and disk.
//
// # Frame layout
//
// A frame is a length-prefixed, checksummed payload:
//
//	u32le  payload length
//	u32le  CRC-32C (Castagnoli) of the payload
//	bytes  payload
//
// The checksum makes torn or bit-flipped frames detectable at the
// framing layer, before any field is interpreted — the disk replay path
// uses it for torn-tail truncation and the wire path for quarantine.
//
// # Payload layout (version 1)
//
// Strings are uvarint length + bytes. Slices that must round-trip the
// nil/empty distinction (JSON marshals nil as null and empty as [])
// encode their length as uvarint(len+1) with 0 meaning nil. Signed
// integers use zigzag varints; timestamps are delta-encoded against the
// previous value in their column, so the sorted millisecond columns of
// real traces compress to one or two bytes per record.
//
//	u8       payload version (= 1)
//	str      bundle content key        } decodable by FrameHeader alone,
//	str      event appID               } so a router can pick a shard
//	str      event userID                without decoding the columns
//	str      event device
//	str      event traceID
//	uvarint  #dictionary keys, then per key: str class, str callback
//	         (keys in first-appearance order — the dense IDs a
//	         trace.Interner assigns while encoding)
//	len+1    #event records, then three columns:
//	           zigzag-delta timestampMS per record
//	           packed direction bits, 1 bit per record (0=enter, 1=exit)
//	           uvarint dictionary ID per record
//	str      util appID
//	zigzag   util PID
//	zigzag   util periodMS
//	len+1    #utilization samples, then two columns:
//	           zigzag-delta timestampMS per sample
//	           NumComponents × f64le utilization per sample
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/trace"
)

// Version is the payload format version this package encodes.
const Version = 1

// MaxFrameBytes is the default bound a frame reader enforces on the
// declared payload length, mirroring the collect tier's default
// line-size limit so a corrupted length prefix cannot ask for gigabytes.
const MaxFrameBytes = 16 << 20

// FrameOverhead is the fixed frame prefix before the payload: u32le
// length + u32le CRC. A frame occupies FrameOverhead+len(payload) bytes.
const FrameOverhead = 8

// frameHeaderLen is the fixed prefix before the payload: length + CRC.
const frameHeaderLen = FrameOverhead

// castagnoli is the CRC-32C table shared by all frame writers/readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Codec errors.
var (
	ErrFrameTooLarge = errors.New("binenc: frame exceeds size limit")
	ErrCRCMismatch   = errors.New("binenc: frame CRC mismatch")
	ErrTruncated     = errors.New("binenc: truncated payload")
	ErrBadVersion    = errors.New("binenc: unsupported payload version")
)

// AppendFrame appends the frame encoding of payload (header + payload)
// to dst and returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// WriteFrame writes one frame (header + payload) to w.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("binenc: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("binenc: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame from r and returns its verified payload.
// max bounds the declared payload length (<= 0 means MaxFrameBytes).
// io.EOF is returned untouched at a clean frame boundary; a header or
// payload cut short mid-frame surfaces as io.ErrUnexpectedEOF, and a
// checksum failure as ErrCRCMismatch — the two torn-tail signals the
// segment replay distinguishes from a clean end of log.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = MaxFrameBytes
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // clean EOF stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("%w: %d bytes declared, limit %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: stored %08x, payload hashes to %08x", ErrCRCMismatch, want, got)
	}
	return payload, nil
}

// appendUvarint / appendZigzag are the integer encoders.

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendLenNil encodes a slice length preserving the nil/empty
// distinction: 0 means nil, n+1 means a (possibly empty) slice of n.
func appendLenNil(dst []byte, n int, isNil bool) []byte {
	if isNil {
		return appendUvarint(dst, 0)
	}
	return appendUvarint(dst, uint64(n)+1)
}

// EncodeBundle appends the version-1 binary payload of b to dst and
// returns the extended slice. Bundles whose records carry an invalid
// direction are rejected (the direction column is one bit wide); every
// other structurally odd bundle — unsorted or negative timestamps,
// unbalanced pairs, out-of-range utilization — encodes faithfully, so
// the codec stays a pure serialization layer and validation remains the
// ingest tier's job, exactly as with the JSON codec.
func EncodeBundle(dst []byte, b *trace.TraceBundle) ([]byte, error) {
	dst = append(dst, Version)
	dst = appendString(dst, b.Key)
	dst = appendString(dst, b.Event.AppID)
	dst = appendString(dst, b.Event.UserID)
	dst = appendString(dst, b.Event.Device)
	dst = appendString(dst, b.Event.TraceID)

	// Dictionary of distinct event keys in first-appearance order: the
	// dense IDs a fresh interner assigns while walking the records.
	in := trace.NewInterner()
	for i := range b.Event.Records {
		r := &b.Event.Records[i]
		if r.Dir != trace.Enter && r.Dir != trace.Exit {
			return nil, fmt.Errorf("binenc: record %d has invalid direction %d", i, r.Dir)
		}
		in.ID(r.Key)
	}
	dst = appendUvarint(dst, uint64(in.Len()))
	for id := 0; id < in.Len(); id++ {
		k := in.Key(uint32(id))
		dst = appendString(dst, k.Class)
		dst = appendString(dst, k.Callback)
	}

	recs := b.Event.Records
	dst = appendLenNil(dst, len(recs), recs == nil)
	var prev int64
	for i := range recs {
		dst = appendZigzag(dst, recs[i].TimestampMS-prev)
		prev = recs[i].TimestampMS
	}
	for i := 0; i < len(recs); i += 8 {
		var bits byte
		for j := 0; j < 8 && i+j < len(recs); j++ {
			if recs[i+j].Dir == trace.Exit {
				bits |= 1 << j
			}
		}
		dst = append(dst, bits)
	}
	for i := range recs {
		dst = appendUvarint(dst, uint64(in.ID(recs[i].Key)))
	}

	dst = appendString(dst, b.Util.AppID)
	dst = appendZigzag(dst, int64(b.Util.PID))
	dst = appendZigzag(dst, b.Util.PeriodMS)
	samples := b.Util.Samples
	dst = appendLenNil(dst, len(samples), samples == nil)
	prev = 0
	for i := range samples {
		dst = appendZigzag(dst, samples[i].TimestampMS-prev)
		prev = samples[i].TimestampMS
	}
	for i := range samples {
		for c := 0; c < trace.NumComponents; c++ {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(samples[i].Util[c]))
		}
	}
	return dst, nil
}

// decoder walks a payload with bounds-checked reads.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) u8() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, ErrTruncated
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.off += n
	return v, nil
}

func (d *decoder) zigzag() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.off += n
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)-d.off) {
		return "", ErrTruncated
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// lenNil decodes an appendLenNil length: (n, isNil). A declared length
// is sanity-bounded by the remaining payload bytes assuming at least
// min bytes per element, so a corrupt count cannot drive a huge
// allocation before the payload runs out.
func (d *decoder) lenNil(min int) (int, bool, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, false, err
	}
	if v == 0 {
		return 0, true, nil
	}
	n := v - 1
	if min < 1 {
		min = 1
	}
	if n > uint64((len(d.buf)-d.off)/min)+1 {
		return 0, false, fmt.Errorf("%w: %d elements declared with %d bytes left", ErrTruncated, n, len(d.buf)-d.off)
	}
	return int(n), false, nil
}

// DecodeBundle decodes a version-1 binary payload. The decoded bundle
// is deeply equal — including the nil/empty slice distinction, so JSON
// re-serialization is byte-identical — to the bundle the payload was
// encoded from.
func DecodeBundle(payload []byte) (*trace.TraceBundle, error) {
	d := &decoder{buf: payload}
	ver, err := d.u8()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	b := &trace.TraceBundle{}
	if b.Key, err = d.str(); err != nil {
		return nil, fmt.Errorf("binenc: key: %w", err)
	}
	if b.Event.AppID, err = d.str(); err != nil {
		return nil, fmt.Errorf("binenc: appID: %w", err)
	}
	if b.Event.UserID, err = d.str(); err != nil {
		return nil, fmt.Errorf("binenc: userID: %w", err)
	}
	if b.Event.Device, err = d.str(); err != nil {
		return nil, fmt.Errorf("binenc: device: %w", err)
	}
	if b.Event.TraceID, err = d.str(); err != nil {
		return nil, fmt.Errorf("binenc: traceID: %w", err)
	}

	nDict, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("binenc: dictionary: %w", err)
	}
	if nDict > uint64(len(d.buf)-d.off)/2+1 {
		return nil, fmt.Errorf("%w: %d dictionary keys declared", ErrTruncated, nDict)
	}
	dict := make([]trace.EventKey, nDict)
	for i := range dict {
		if dict[i].Class, err = d.str(); err != nil {
			return nil, fmt.Errorf("binenc: dictionary key %d: %w", i, err)
		}
		if dict[i].Callback, err = d.str(); err != nil {
			return nil, fmt.Errorf("binenc: dictionary key %d: %w", i, err)
		}
	}

	nRecs, recsNil, err := d.lenNil(1)
	if err != nil {
		return nil, fmt.Errorf("binenc: records: %w", err)
	}
	if !recsNil {
		b.Event.Records = make([]trace.Record, nRecs)
		var prev int64
		for i := 0; i < nRecs; i++ {
			dt, err := d.zigzag()
			if err != nil {
				return nil, fmt.Errorf("binenc: record %d timestamp: %w", i, err)
			}
			prev += dt
			b.Event.Records[i].TimestampMS = prev
		}
		for i := 0; i < nRecs; i += 8 {
			bits, err := d.u8()
			if err != nil {
				return nil, fmt.Errorf("binenc: direction bits: %w", err)
			}
			for j := 0; j < 8 && i+j < nRecs; j++ {
				if bits&(1<<j) != 0 {
					b.Event.Records[i+j].Dir = trace.Exit
				} else {
					b.Event.Records[i+j].Dir = trace.Enter
				}
			}
		}
		for i := 0; i < nRecs; i++ {
			id, err := d.uvarint()
			if err != nil {
				return nil, fmt.Errorf("binenc: record %d key ID: %w", i, err)
			}
			if id >= nDict {
				return nil, fmt.Errorf("binenc: record %d references dictionary ID %d of %d", i, id, nDict)
			}
			b.Event.Records[i].Key = dict[id]
		}
	}

	if b.Util.AppID, err = d.str(); err != nil {
		return nil, fmt.Errorf("binenc: util appID: %w", err)
	}
	pid, err := d.zigzag()
	if err != nil {
		return nil, fmt.Errorf("binenc: util PID: %w", err)
	}
	b.Util.PID = int(pid)
	if b.Util.PeriodMS, err = d.zigzag(); err != nil {
		return nil, fmt.Errorf("binenc: util period: %w", err)
	}
	nSamples, samplesNil, err := d.lenNil(1 + 8*trace.NumComponents)
	if err != nil {
		return nil, fmt.Errorf("binenc: samples: %w", err)
	}
	if !samplesNil {
		b.Util.Samples = make([]trace.UtilizationSample, nSamples)
		var prev int64
		for i := 0; i < nSamples; i++ {
			dt, err := d.zigzag()
			if err != nil {
				return nil, fmt.Errorf("binenc: sample %d timestamp: %w", i, err)
			}
			prev += dt
			b.Util.Samples[i].TimestampMS = prev
		}
		for i := 0; i < nSamples; i++ {
			if len(d.buf)-d.off < 8*trace.NumComponents {
				return nil, fmt.Errorf("binenc: sample %d utilization: %w", i, ErrTruncated)
			}
			for c := 0; c < trace.NumComponents; c++ {
				bits := binary.LittleEndian.Uint64(d.buf[d.off:])
				d.off += 8
				b.Util.Samples[i].Util[c] = math.Float64frombits(bits)
			}
		}
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("binenc: %d trailing bytes after payload", len(d.buf)-d.off)
	}
	return b, nil
}

// Header is the routable prefix of a payload: enough to deduplicate and
// shard a frame without decoding its columns.
type Header struct {
	// Key is the bundle's stamped content key ("" for legacy bundles).
	Key string
	// AppID is the event trace's app ID — the shard-routing key.
	AppID string
}

// FrameHeader decodes only the leading fields of a version-1 payload.
// The router uses it to pick a shard per frame in O(header) work.
func FrameHeader(payload []byte) (Header, error) {
	d := &decoder{buf: payload}
	ver, err := d.u8()
	if err != nil {
		return Header{}, err
	}
	if ver != Version {
		return Header{}, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	var h Header
	if h.Key, err = d.str(); err != nil {
		return Header{}, fmt.Errorf("binenc: key: %w", err)
	}
	if h.AppID, err = d.str(); err != nil {
		return Header{}, fmt.Errorf("binenc: appID: %w", err)
	}
	return h, nil
}
