package trace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadText pins down the Fig-5 text codec: parsing never panics,
// every successfully parsed trace re-serializes, and the serialized
// form parses back to the identical records (the grammar in codec.go is
// exactly the set of strings WriteText can produce). The lenient reader
// must agree with the strict one on well-formed input and must absorb
// the malformed lines the strict one rejects.
func FuzzReadText(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n\n",
		"28223867 + Lcom/fsck/k9/service/MailService; onDestroy\n" +
			"28223868 - Lcom/fsck/k9/service/MailService; onDestroy\n",
		// Zero-duration event: enter and exit in the same millisecond.
		"10 + La/B; onCreate\n10 - La/B; onCreate\n",
		// Duplicate timestamps across distinct events.
		"5 + La/B; onStart\n5 + Lc/D; onStart\n6 - Lc/D; onStart\n6 - La/B; onStart\n",
		// Structurally broken but grammatically fine: exit before enter.
		"5 - La/B; onStop\n",
		// Callback containing the separator.
		"1 + La/B; run;sub\n",
		// Malformed lines of every kind.
		"x + La/B; cb\n",
		"-1 + La/B; cb\n",
		"1 * La/B; cb\n",
		"1 + ; cb\n",
		"1 + La/B cb\n",
		"1 +\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadText(bytes.NewReader(data))
		lenTr, stats, lenErr := ReadTextLenient(bytes.NewReader(data))
		if err != nil {
			var pe *ParseTextError
			if errors.As(err, &pe) {
				// A line-level reject must not sink the lenient reader.
				if lenErr != nil {
					t.Fatalf("strict failed with line error %v but lenient failed too: %v", err, lenErr)
				}
				if stats.Skipped == 0 {
					t.Fatalf("strict rejected a line (%v) but lenient skipped none", err)
				}
			}
			return
		}
		// Strict and lenient agree on well-formed input.
		if lenErr != nil {
			t.Fatalf("strict parsed but lenient failed: %v", lenErr)
		}
		if stats.Skipped != 0 || len(stats.Errors) != 0 {
			t.Fatalf("strict parsed cleanly but lenient skipped %d lines", stats.Skipped)
		}
		if !reflect.DeepEqual(tr.Records, lenTr.Records) {
			t.Fatalf("strict and lenient disagree: %v vs %v", tr.Records, lenTr.Records)
		}
		if stats.Records != len(tr.Records) {
			t.Fatalf("stats.Records = %d, parsed %d", stats.Records, len(tr.Records))
		}
		// Round trip: everything the parser accepts, the writer accepts,
		// and the written form parses back identically.
		var buf bytes.Buffer
		if werr := tr.WriteText(&buf); werr != nil {
			t.Fatalf("parsed trace does not re-serialize: %v", werr)
		}
		again, rerr := ReadText(&buf)
		if rerr != nil {
			t.Fatalf("re-parse of serialized trace failed: %v", rerr)
		}
		if !reflect.DeepEqual(tr.Records, again.Records) {
			t.Fatalf("round trip changed records:\n  first  %v\n  second %v", tr.Records, again.Records)
		}
	})
}

// FuzzDecodeBundle pins down the JSON-lines wire codec and everything
// the ingestion path runs on a decoded bundle: Validate, ScrubBundle,
// ContentKey and VerifyContentKey must be panic-free on arbitrary
// decodable input, the encode/decode round trip must be the identity,
// and the content key must be deterministic, Key-independent and
// stable across scrubbing (scrubbing is idempotent, so the server
// re-scrubbing a scrubbed bundle must preserve the client's key).
func FuzzDecodeBundle(f *testing.F) {
	var sample bytes.Buffer
	_ = EncodeBundle(&sample, &TraceBundle{
		Event: EventTrace{
			AppID: "k9mail", UserID: "user-1", Device: "nexus6", TraceID: "t1",
			Records: []Record{
				{TimestampMS: 1, Dir: Enter, Key: EventKey{Class: "La/B", Callback: "onCreate"}},
				{TimestampMS: 1, Dir: Exit, Key: EventKey{Class: "La/B", Callback: "onCreate"}},
			},
		},
		Util: UtilizationTrace{AppID: "k9mail", PID: 7, PeriodMS: 500,
			Samples: []UtilizationSample{{TimestampMS: 0}}},
	})
	seeds := [][]byte{
		sample.Bytes(),
		[]byte("{}"),
		[]byte(`{"key":"deadbeefdeadbeef","event":{"appId":"a"},"util":{}}`),
		[]byte(`{"event":{"records":[{"timestampMillis":-1,"dir":9,"key":{"class":";","callback":""}}]}}`),
		[]byte(`{"util":{"samples":[{"timestampMillis":0,"util":[2,0,0,0,0,0,0]}]}}`),
		[]byte(`not json`),
		[]byte(""),
		[]byte(`{"event":`),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBundle(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Everything the server runs on a freshly decoded bundle must be
		// panic-free, whatever the bundle holds.
		_ = b.Event.Validate()
		_ = b.Util.Validate()
		key := ContentKey(b)
		if key2 := ContentKey(b); key2 != key {
			t.Fatalf("content key not deterministic: %s vs %s", key, key2)
		}
		stamped := *b
		stamped.Key = key
		if verr := VerifyContentKey(&stamped); verr != nil {
			t.Fatalf("freshly stamped key does not verify: %v", verr)
		}
		if ContentKey(&stamped) != key {
			t.Fatal("content key depends on the Key field")
		}
		scrubbed := ScrubBundle(&stamped)
		if ContentKey(ScrubBundle(scrubbed)) != ContentKey(scrubbed) {
			t.Fatal("scrubbing is not idempotent: re-scrub changed the content key")
		}
		// Wire round trip is the identity.
		var buf bytes.Buffer
		if err := EncodeBundle(&buf, b); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if n := strings.Count(buf.String(), "\n"); n != 1 {
			t.Fatalf("encoded bundle spans %d lines, want 1", n)
		}
		again, err := DecodeBundle(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(b, again) {
			t.Fatalf("wire round trip changed the bundle:\n  first  %+v\n  second %+v", b, again)
		}
	})
}
