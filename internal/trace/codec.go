package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the two serialization formats used by EnergyDx:
//
//   - the Fig-5 text format for event traces, one record per line:
//       28223867 + Lcom/fsck/k9/service/MailService; onDestroy
//     (timestamp, +/- direction, class, callback), and
//   - a JSON-lines envelope used by the collection protocol for bundles.

// WriteText serializes the event trace in the paper's Fig-5 line format.
func (t *EventTrace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Records {
		if _, err := bw.WriteString(strconv.FormatInt(r.TimestampMS, 10)); err != nil {
			return fmt.Errorf("write record: %w", err)
		}
		if _, err := bw.WriteString(" " + r.Dir.String() + " " + r.Key.Class + "; " + r.Key.Callback + "\n"); err != nil {
			return fmt.Errorf("write record: %w", err)
		}
	}
	return bw.Flush()
}

// Text renders the event trace to a string in the Fig-5 format.
func (t *EventTrace) Text() string {
	var sb strings.Builder
	_ = t.WriteText(&sb) // strings.Builder never errors
	return sb.String()
}

// ParseTextError reports a malformed line in a Fig-5 text trace.
type ParseTextError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseTextError) Error() string {
	return fmt.Sprintf("trace: line %d %q: %s", e.Line, e.Text, e.Msg)
}

// ReadText parses an event trace from the Fig-5 line format. Metadata
// (AppID, UserID, ...) is not part of the text format and is left zero.
func ReadText(r io.Reader) (*EventTrace, error) {
	t := &EventTrace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseTextLine(line)
		if err != nil {
			return nil, &ParseTextError{Line: lineNo, Text: line, Msg: err.Error()}
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan trace: %w", err)
	}
	return t, nil
}

func parseTextLine(line string) (Record, error) {
	// Format: "<ts> <+|-> <class>; <callback>"
	fields := strings.SplitN(line, " ", 3)
	if len(fields) != 3 {
		return Record{}, fmt.Errorf("want 3 fields, got %d", len(fields))
	}
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad timestamp: %v", err)
	}
	var dir Direction
	switch fields[1] {
	case "+":
		dir = Enter
	case "-":
		dir = Exit
	default:
		return Record{}, fmt.Errorf("bad direction %q", fields[1])
	}
	cls, cb, ok := strings.Cut(fields[2], ";")
	if !ok {
		return Record{}, fmt.Errorf("missing %q separator", ";")
	}
	cls = strings.TrimSpace(cls)
	cb = strings.TrimSpace(cb)
	if cls == "" || cb == "" {
		return Record{}, fmt.Errorf("empty class or callback")
	}
	return Record{TimestampMS: ts, Dir: dir, Key: EventKey{Class: cls, Callback: cb}}, nil
}

// EncodeBundle writes a trace bundle as a single JSON line, the unit of
// the collection protocol.
func EncodeBundle(w io.Writer, b *TraceBundle) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("encode bundle: %w", err)
	}
	return nil
}

// DecodeBundle reads one JSON-line trace bundle.
func DecodeBundle(r io.Reader) (*TraceBundle, error) {
	var b TraceBundle
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("decode bundle: %w", err)
	}
	return &b, nil
}
