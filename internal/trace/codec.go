package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the two serialization formats used by EnergyDx:
//
//   - the Fig-5 text format for event traces, one record per line:
//       28223867 + Lcom/fsck/k9/service/MailService; onDestroy
//     (timestamp, +/- direction, class, callback), and
//   - a JSON-lines envelope used by the collection protocol for bundles.
//
// # Accepted Fig-5 grammar
//
// A text trace is a sequence of newline-terminated lines. Each line is,
// after trimming surrounding whitespace, one of:
//
//	blank    =                              (ignored)
//	comment  = "#" <anything>               (ignored)
//	record   = timestamp SP dir SP class ";" [SP] callback
//
//	timestamp = decimal int64, milliseconds, >= 0
//	dir       = "+" (callback entrance) | "-" (callback exit)
//	class     = non-empty, no ";", no control characters,
//	            no surrounding whitespace (smali descriptors are
//	            stored without their trailing ";", which the codec
//	            re-inserts as the separator)
//	callback  = non-empty, no control characters, no surrounding
//	            whitespace; may itself contain ";" (only the first
//	            ";" on the line separates class from callback)
//
// Semantic edge cases the codec deliberately accepts (and that the fuzz
// corpus pins down): an empty trace (zero records), duplicate
// timestamps (two records in the same millisecond keep their file
// order), and zero-duration events (enter and exit in the same
// millisecond). Structural violations — unsorted timestamps, an exit
// with no matching enter, unbalanced enter/exit pairs — parse fine and
// are rejected later by Validate, so line-level tooling can still
// inspect a structurally broken trace.

// errUnwritableKey reports an event key that cannot survive a Fig-5
// round trip (WriteText would emit a line ReadText parses differently).
func errUnwritableKey(k EventKey, msg string) error {
	return fmt.Errorf("trace: key %q: %s", k.String(), msg)
}

// checkTextKey verifies that a key serializes losslessly in the Fig-5
// line format.
func checkTextKey(k EventKey) error {
	switch {
	case k.Class == "" || k.Callback == "":
		return errUnwritableKey(k, "empty class or callback")
	case strings.ContainsRune(k.Class, ';'):
		return errUnwritableKey(k, `class contains ";"`)
	case k.Class != strings.TrimSpace(k.Class) || k.Callback != strings.TrimSpace(k.Callback):
		return errUnwritableKey(k, "surrounding whitespace")
	case strings.ContainsAny(k.Class, "\n\r") || strings.ContainsAny(k.Callback, "\n\r"):
		return errUnwritableKey(k, "control character")
	}
	return nil
}

// WriteText serializes the event trace in the paper's Fig-5 line
// format. Records whose keys cannot round-trip through the text format
// (see the grammar above) are rejected before anything is written.
func (t *EventTrace) WriteText(w io.Writer) error {
	for _, r := range t.Records {
		if err := checkTextKey(r.Key); err != nil {
			return err
		}
		if r.TimestampMS < 0 {
			return fmt.Errorf("trace: negative timestamp %d", r.TimestampMS)
		}
	}
	bw := bufio.NewWriter(w)
	for _, r := range t.Records {
		if _, err := bw.WriteString(strconv.FormatInt(r.TimestampMS, 10)); err != nil {
			return fmt.Errorf("write record: %w", err)
		}
		if _, err := bw.WriteString(" " + r.Dir.String() + " " + r.Key.Class + "; " + r.Key.Callback + "\n"); err != nil {
			return fmt.Errorf("write record: %w", err)
		}
	}
	return bw.Flush()
}

// Text renders the event trace to a string in the Fig-5 format.
// Unwritable records render as the empty string; use WriteText when the
// error matters.
func (t *EventTrace) Text() string {
	var sb strings.Builder
	_ = t.WriteText(&sb)
	return sb.String()
}

// ParseTextError reports a malformed line in a Fig-5 text trace.
type ParseTextError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseTextError) Error() string {
	return fmt.Sprintf("trace: line %d %q: %s", e.Line, e.Text, e.Msg)
}

// ReadText parses an event trace from the Fig-5 line format, rejecting
// the whole trace at the first malformed line. Metadata (AppID, UserID,
// ...) is not part of the text format and is left zero.
func ReadText(r io.Reader) (*EventTrace, error) {
	t := &EventTrace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseTextLine(line)
		if err != nil {
			return nil, &ParseTextError{Line: lineNo, Text: line, Msg: err.Error()}
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan trace: %w", err)
	}
	return t, nil
}

// maxRetainedLineErrors bounds the per-line errors a lenient read keeps
// (all malformed lines are still counted in Skipped).
const maxRetainedLineErrors = 64

// TextReadStats accounts for a lenient Fig-5 read, line by line.
type TextReadStats struct {
	// Lines is the number of lines scanned (including blanks/comments).
	Lines int
	// Records is the number of well-formed records kept.
	Records int
	// Skipped is the number of malformed lines dropped.
	Skipped int
	// Errors holds the first maxRetainedLineErrors per-line errors.
	Errors []*ParseTextError
}

// ReadTextLenient parses a Fig-5 text trace, skipping malformed lines
// instead of failing, and accounts for every skipped line. It returns
// an error only when reading itself fails (I/O error, line too long).
// This is the ingestion-side entry point: one mangled line in an
// uploaded trace costs that line, not the whole trace.
func ReadTextLenient(r io.Reader) (*EventTrace, *TextReadStats, error) {
	t := &EventTrace{}
	stats := &TextReadStats{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		stats.Lines++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseTextLine(line)
		if err != nil {
			stats.Skipped++
			if len(stats.Errors) < maxRetainedLineErrors {
				stats.Errors = append(stats.Errors, &ParseTextError{Line: stats.Lines, Text: line, Msg: err.Error()})
			}
			continue
		}
		stats.Records++
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, stats, fmt.Errorf("scan trace: %w", err)
	}
	return t, stats, nil
}

func parseTextLine(line string) (Record, error) {
	// Format: "<ts> <+|-> <class>; <callback>"
	fields := strings.SplitN(line, " ", 3)
	if len(fields) != 3 {
		return Record{}, fmt.Errorf("want 3 fields, got %d", len(fields))
	}
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad timestamp: %v", err)
	}
	if ts < 0 {
		return Record{}, fmt.Errorf("negative timestamp %d", ts)
	}
	var dir Direction
	switch fields[1] {
	case "+":
		dir = Enter
	case "-":
		dir = Exit
	default:
		return Record{}, fmt.Errorf("bad direction %q", fields[1])
	}
	cls, cb, ok := strings.Cut(fields[2], ";")
	if !ok {
		return Record{}, fmt.Errorf("missing %q separator", ";")
	}
	cls = strings.TrimSpace(cls)
	cb = strings.TrimSpace(cb)
	if cls == "" || cb == "" {
		return Record{}, fmt.Errorf("empty class or callback")
	}
	if strings.ContainsAny(cls, "\r") || strings.ContainsAny(cb, "\r") {
		return Record{}, fmt.Errorf("control character in class or callback")
	}
	return Record{TimestampMS: ts, Dir: dir, Key: EventKey{Class: cls, Callback: cb}}, nil
}

// EncodeBundle writes a trace bundle as a single JSON line, the unit of
// the collection protocol.
func EncodeBundle(w io.Writer, b *TraceBundle) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("encode bundle: %w", err)
	}
	return nil
}

// DecodeBundle reads one JSON-line trace bundle.
func DecodeBundle(r io.Reader) (*TraceBundle, error) {
	var b TraceBundle
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("decode bundle: %w", err)
	}
	return &b, nil
}

// ContentKey computes the bundle's canonical content hash: 64-bit
// FNV-1a over the canonical JSON serialization with the Key field
// cleared. Clients stamp it into Bundle.Key before uploading; because
// the hash covers the content, it serves two purposes at once:
//
//   - idempotency: a retry after a lost ack carries the same key, so
//     the server stores the bundle exactly once, and
//   - integrity: any in-flight mutation that changes the decoded
//     content changes the recomputed hash, so the server can detect a
//     corrupted line even when it still parses as valid JSON.
func ContentKey(b *TraceBundle) string {
	c := *b // shallow copy: only Key is modified, slices are shared read-only
	c.Key = ""
	data, err := json.Marshal(&c)
	if err != nil {
		// TraceBundle contains no unmarshalable types; keep the
		// signature ergonomic and make failures loud if that changes.
		panic(fmt.Sprintf("trace: marshal bundle: %v", err))
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, by := range data {
		h ^= uint64(by)
		h *= prime
	}
	return fmt.Sprintf("%016x", h)
}

// VerifyContentKey checks a bundle's stamped Key against its content.
// Bundles without a key (legacy uploaders) pass; a stamped key that no
// longer matches the content means the line was altered in flight.
func VerifyContentKey(b *TraceBundle) error {
	if b.Key == "" {
		return nil
	}
	if got := ContentKey(b); got != b.Key {
		return fmt.Errorf("trace: content key mismatch: stamped %s, content hashes to %s", b.Key, got)
	}
	return nil
}
