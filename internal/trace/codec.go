package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// This file implements the two serialization formats used by EnergyDx:
//
//   - the Fig-5 text format for event traces, one record per line:
//       28223867 + Lcom/fsck/k9/service/MailService; onDestroy
//     (timestamp, +/- direction, class, callback), and
//   - a JSON-lines envelope used by the collection protocol for bundles.
//
// # Accepted Fig-5 grammar
//
// A text trace is a sequence of newline-terminated lines. Each line is,
// after trimming surrounding whitespace, one of:
//
//	blank    =                              (ignored)
//	comment  = "#" <anything>               (ignored)
//	record   = timestamp SP dir SP class ";" [SP] callback
//
//	timestamp = decimal int64, milliseconds, >= 0
//	dir       = "+" (callback entrance) | "-" (callback exit)
//	class     = non-empty, no ";", no control characters,
//	            no surrounding whitespace (smali descriptors are
//	            stored without their trailing ";", which the codec
//	            re-inserts as the separator)
//	callback  = non-empty, no control characters, no surrounding
//	            whitespace; may itself contain ";" (only the first
//	            ";" on the line separates class from callback)
//
// Semantic edge cases the codec deliberately accepts (and that the fuzz
// corpus pins down): an empty trace (zero records), duplicate
// timestamps (two records in the same millisecond keep their file
// order), and zero-duration events (enter and exit in the same
// millisecond). Structural violations — unsorted timestamps, an exit
// with no matching enter, unbalanced enter/exit pairs — parse fine and
// are rejected later by Validate, so line-level tooling can still
// inspect a structurally broken trace.

// errUnwritableKey reports an event key that cannot survive a Fig-5
// round trip (WriteText would emit a line ReadText parses differently).
func errUnwritableKey(k EventKey, msg string) error {
	return fmt.Errorf("trace: key %q: %s", k.String(), msg)
}

// checkTextKey verifies that a key serializes losslessly in the Fig-5
// line format.
func checkTextKey(k EventKey) error {
	switch {
	case k.Class == "" || k.Callback == "":
		return errUnwritableKey(k, "empty class or callback")
	case strings.ContainsRune(k.Class, ';'):
		return errUnwritableKey(k, `class contains ";"`)
	case k.Class != strings.TrimSpace(k.Class) || k.Callback != strings.TrimSpace(k.Callback):
		return errUnwritableKey(k, "surrounding whitespace")
	case strings.ContainsAny(k.Class, "\n\r") || strings.ContainsAny(k.Callback, "\n\r"):
		return errUnwritableKey(k, "control character")
	}
	return nil
}

// WriteText serializes the event trace in the paper's Fig-5 line
// format. Records whose keys cannot round-trip through the text format
// (see the grammar above) are rejected before anything is written.
func (t *EventTrace) WriteText(w io.Writer) error {
	for _, r := range t.Records {
		if err := checkTextKey(r.Key); err != nil {
			return err
		}
		if r.TimestampMS < 0 {
			return fmt.Errorf("trace: negative timestamp %d", r.TimestampMS)
		}
	}
	bw := bufio.NewWriter(w)
	for _, r := range t.Records {
		if _, err := bw.WriteString(strconv.FormatInt(r.TimestampMS, 10)); err != nil {
			return fmt.Errorf("write record: %w", err)
		}
		if _, err := bw.WriteString(" " + r.Dir.String() + " " + r.Key.Class + "; " + r.Key.Callback + "\n"); err != nil {
			return fmt.Errorf("write record: %w", err)
		}
	}
	return bw.Flush()
}

// Text renders the event trace to a string in the Fig-5 format.
// Unwritable records render as the empty string; use WriteText when the
// error matters.
func (t *EventTrace) Text() string {
	var sb strings.Builder
	_ = t.WriteText(&sb)
	return sb.String()
}

// ParseTextError reports a malformed line in a Fig-5 text trace.
type ParseTextError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseTextError) Error() string {
	return fmt.Sprintf("trace: line %d %q: %s", e.Line, e.Text, e.Msg)
}

// ReadText parses an event trace from the Fig-5 line format, rejecting
// the whole trace at the first malformed line. Metadata (AppID, UserID,
// ...) is not part of the text format and is left zero.
func ReadText(r io.Reader) (*EventTrace, error) {
	t := &EventTrace{}
	p := getLineParser()
	defer putLineParser(p)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		rec, err := p.parseLine(line)
		if err != nil {
			return nil, &ParseTextError{Line: lineNo, Text: string(line), Msg: err.Error()}
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan trace: %w", err)
	}
	return t, nil
}

// maxRetainedLineErrors bounds the per-line errors a lenient read keeps
// (all malformed lines are still counted in Skipped).
const maxRetainedLineErrors = 64

// TextReadStats accounts for a lenient Fig-5 read, line by line.
type TextReadStats struct {
	// Lines is the number of lines scanned (including blanks/comments).
	Lines int
	// Records is the number of well-formed records kept.
	Records int
	// Skipped is the number of malformed lines dropped.
	Skipped int
	// Errors holds the first maxRetainedLineErrors per-line errors.
	Errors []*ParseTextError
}

// ReadTextLenient parses a Fig-5 text trace, skipping malformed lines
// instead of failing, and accounts for every skipped line. It returns
// an error only when reading itself fails (I/O error, line too long).
// This is the ingestion-side entry point: one mangled line in an
// uploaded trace costs that line, not the whole trace.
func ReadTextLenient(r io.Reader) (*EventTrace, *TextReadStats, error) {
	t := &EventTrace{}
	stats := &TextReadStats{}
	p := getLineParser()
	defer putLineParser(p)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		stats.Lines++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		rec, err := p.parseLine(line)
		if err != nil {
			stats.Skipped++
			if len(stats.Errors) < maxRetainedLineErrors {
				stats.Errors = append(stats.Errors, &ParseTextError{Line: stats.Lines, Text: string(line), Msg: err.Error()})
			}
			continue
		}
		stats.Records++
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, stats, fmt.Errorf("scan trace: %w", err)
	}
	return t, stats, nil
}

// lineParser is the pooled per-reader state of the byte-level Fig-5
// line parser: a bounded string-dedup cache so the class/callback of
// every record in a trace (typically a few dozen distinct names over
// thousands of lines) is materialized once instead of per line. The
// parser consumes the scanner's reused byte buffer directly — no
// per-line string conversion, no strings.Split garbage.
type lineParser struct {
	names map[string]string
}

// maxInternedNames bounds the dedup cache; an adversarial trace with
// endless distinct names resets the cache instead of growing it.
const maxInternedNames = 4096

var lineParserPool = sync.Pool{
	New: func() any { return &lineParser{names: make(map[string]string, 64)} },
}

func getLineParser() *lineParser  { return lineParserPool.Get().(*lineParser) }
func putLineParser(p *lineParser) { lineParserPool.Put(p) }

// intern returns b as a string, reusing a previously materialized copy
// when the same bytes were seen before. The map lookup with a
// string-converted key does not allocate (compiler-recognized pattern);
// only first sight of a name pays the copy.
func (p *lineParser) intern(b []byte) string {
	if s, ok := p.names[string(b)]; ok {
		return s
	}
	if len(p.names) >= maxInternedNames {
		p.names = make(map[string]string, 64)
	}
	s := string(b)
	p.names[s] = s
	return s
}

// parseLine parses one trimmed, non-empty, non-comment Fig-5 line:
// "<ts> <+|-> <class>; <callback>". It accepts exactly the language of
// the strings.SplitN-based parser it replaced and produces identical
// records and error text (codec_bytes_test.go pins the equivalence
// against the reference implementation).
func (p *lineParser) parseLine(line []byte) (Record, error) {
	// strings.SplitN(line, " ", 3) equivalent: fields 0 and 1 end at the
	// first two spaces, field 2 is the raw remainder.
	i := bytes.IndexByte(line, ' ')
	if i < 0 {
		return Record{}, fmt.Errorf("want 3 fields, got %d", 1)
	}
	j := bytes.IndexByte(line[i+1:], ' ')
	if j < 0 {
		return Record{}, fmt.Errorf("want 3 fields, got %d", 2)
	}
	tsField := line[:i]
	dirField := line[i+1 : i+1+j]
	rest := line[i+1+j+1:]

	ts, err := parseTimestamp(tsField)
	if err != nil {
		return Record{}, fmt.Errorf("bad timestamp: %v", err)
	}
	if ts < 0 {
		return Record{}, fmt.Errorf("negative timestamp %d", ts)
	}
	var dir Direction
	switch {
	case len(dirField) == 1 && dirField[0] == '+':
		dir = Enter
	case len(dirField) == 1 && dirField[0] == '-':
		dir = Exit
	default:
		return Record{}, fmt.Errorf("bad direction %q", dirField)
	}
	sep := bytes.IndexByte(rest, ';')
	if sep < 0 {
		return Record{}, fmt.Errorf("missing %q separator", ";")
	}
	cls := bytes.TrimSpace(rest[:sep])
	cb := bytes.TrimSpace(rest[sep+1:])
	if len(cls) == 0 || len(cb) == 0 {
		return Record{}, fmt.Errorf("empty class or callback")
	}
	if bytes.IndexByte(cls, '\r') >= 0 || bytes.IndexByte(cb, '\r') >= 0 {
		return Record{}, fmt.Errorf("control character in class or callback")
	}
	return Record{TimestampMS: ts, Dir: dir, Key: EventKey{Class: p.intern(cls), Callback: p.intern(cb)}}, nil
}

// parseTimestamp parses a base-10 int64 from bytes without allocating.
// The fast path covers an optional sign followed by 1–19 ASCII digits
// with no overflow; anything else falls back to strconv.ParseInt on a
// copied string, so rejected inputs carry strconv's exact error text.
func parseTimestamp(b []byte) (int64, error) {
	s := b
	neg := false
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		s = s[1:]
	}
	// 19 digits can overflow int64 but never uint64, so any wrapped
	// value shows up as negative and falls back.
	if len(s) == 0 || len(s) > 19 {
		return strconv.ParseInt(string(b), 10, 64)
	}
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return strconv.ParseInt(string(b), 10, 64)
		}
		v = v*10 + int64(c-'0')
	}
	if v < 0 {
		return strconv.ParseInt(string(b), 10, 64)
	}
	if neg {
		return -v, nil
	}
	return v, nil
}

// EncodeBundle writes a trace bundle as a single JSON line, the unit of
// the collection protocol.
func EncodeBundle(w io.Writer, b *TraceBundle) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("encode bundle: %w", err)
	}
	return nil
}

// DecodeBundle reads one JSON-line trace bundle.
func DecodeBundle(r io.Reader) (*TraceBundle, error) {
	var b TraceBundle
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("decode bundle: %w", err)
	}
	return &b, nil
}

// ContentKey computes the bundle's canonical content hash: 64-bit
// FNV-1a over the canonical JSON serialization with the Key field
// cleared. Clients stamp it into Bundle.Key before uploading; because
// the hash covers the content, it serves two purposes at once:
//
//   - idempotency: a retry after a lost ack carries the same key, so
//     the server stores the bundle exactly once, and
//   - integrity: any in-flight mutation that changes the decoded
//     content changes the recomputed hash, so the server can detect a
//     corrupted line even when it still parses as valid JSON.
func ContentKey(b *TraceBundle) string {
	c := *b // shallow copy: only Key is modified, slices are shared read-only
	c.Key = ""
	data, err := json.Marshal(&c)
	if err != nil {
		// TraceBundle contains no unmarshalable types; keep the
		// signature ergonomic and make failures loud if that changes.
		panic(fmt.Sprintf("trace: marshal bundle: %v", err))
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, by := range data {
		h ^= uint64(by)
		h *= prime
	}
	return fmt.Sprintf("%016x", h)
}

// VerifyContentKey checks a bundle's stamped Key against its content.
// Bundles without a key (legacy uploaders) pass; a stamped key that no
// longer matches the content means the line was altered in flight.
func VerifyContentKey(b *TraceBundle) error {
	if b.Key == "" {
		return nil
	}
	if got := ContentKey(b); got != b.Key {
		return fmt.Errorf("trace: content key mismatch: stamped %s, content hashes to %s", b.Key, got)
	}
	return nil
}
