package trace

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestInternerAssignsDenseStableIDs(t *testing.T) {
	in := NewInterner()
	a := EventKey{Class: "La/B", Callback: "x"}
	b := EventKey{Class: "La/B", Callback: "y"}
	if got := in.ID(a); got != 0 {
		t.Fatalf("first key got ID %d, want 0", got)
	}
	if got := in.ID(b); got != 1 {
		t.Fatalf("second key got ID %d, want 1", got)
	}
	if got := in.ID(a); got != 0 {
		t.Fatalf("re-interning changed the ID to %d", got)
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	if got := in.Key(1); got != b {
		t.Fatalf("Key(1) = %+v, want %+v", got, b)
	}
	if got := in.Key(99); got != (EventKey{}) {
		t.Fatalf("out-of-range Key = %+v, want zero", got)
	}
}

func TestInternerConcurrentAgreement(t *testing.T) {
	in := NewInterner()
	keys := make([]EventKey, 64)
	for i := range keys {
		keys[i] = EventKey{Class: fmt.Sprintf("LC%d", i), Callback: "cb"}
	}
	var wg sync.WaitGroup
	got := make([][]uint32, 8)
	for g := range got {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]uint32, len(keys))
			for i, k := range keys {
				ids[i] = in.ID(k)
			}
			got[g] = ids
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(got); g++ {
		if !reflect.DeepEqual(got[0], got[g]) {
			t.Fatalf("goroutine %d saw different IDs", g)
		}
	}
	for i, id := range got[0] {
		if in.Key(id) != keys[i] {
			t.Fatalf("ID %d resolves to %+v, want %+v", id, in.Key(id), keys[i])
		}
	}
}

// pairCases are event traces covering the pairing state machine: LIFO
// nesting, interleaving, zero duration, duplicate timestamps, and every
// validation failure.
func pairCases() map[string]*EventTrace {
	k := func(c, cb string) EventKey { return EventKey{Class: c, Callback: cb} }
	r := func(ts int64, d Direction, key EventKey) Record {
		return Record{TimestampMS: ts, Dir: d, Key: key}
	}
	ab := k("La/B", "onCreate")
	cd := k("Lc/D", "onStart")
	return map[string]*EventTrace{
		"empty": {},
		"single": {Records: []Record{
			r(1, Enter, ab), r(5, Exit, ab),
		}},
		"nested-same-key": {Records: []Record{
			r(1, Enter, ab), r(2, Enter, ab), r(3, Exit, ab), r(9, Exit, ab),
		}},
		"interleaved": {Records: []Record{
			r(1, Enter, ab), r(2, Enter, cd), r(3, Exit, ab), r(4, Exit, cd),
		}},
		"zero-duration": {Records: []Record{
			r(7, Enter, ab), r(7, Exit, ab),
		}},
		"duplicate-timestamps": {Records: []Record{
			r(5, Enter, ab), r(5, Enter, cd), r(5, Exit, cd), r(5, Exit, ab),
		}},
		"equal-start-ties": {Records: []Record{
			r(1, Enter, ab), r(1, Enter, cd), r(2, Exit, cd), r(3, Exit, ab),
			r(4, Enter, ab), r(4, Enter, cd), r(5, Exit, ab), r(5, Exit, cd),
		}},
		"negative-timestamp": {Records: []Record{
			r(-1, Enter, ab),
		}},
		"unsorted": {Records: []Record{
			r(5, Enter, ab), r(3, Exit, ab),
		}},
		"bad-key": {Records: []Record{
			r(1, Enter, k("", "cb")),
		}},
		"exit-before-enter": {Records: []Record{
			r(1, Exit, ab),
		}},
		"bad-direction": {Records: []Record{
			{TimestampMS: 1, Dir: Direction(9), Key: ab},
		}},
		"unbalanced": {Records: []Record{
			r(1, Enter, ab), r(2, Enter, ab), r(3, Exit, ab),
		}},
		"later-record-error-after-pairs": {Records: []Record{
			r(1, Enter, ab), r(2, Exit, ab), r(3, Enter, k("bad key ", "x")),
		}},
	}
}

func TestPairIntoMatchesPair(t *testing.T) {
	in := NewInterner()
	buf := NewPairBuffer(in)
	for name, tr := range pairCases() {
		want, wantErr := tr.Pair()
		got, ids, gotErr := tr.PairInto(buf)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("%s: Pair err %v, PairInto err %v", name, wantErr, gotErr)
			continue
		}
		if wantErr != nil {
			// Same sentinel; the unbalanced end-of-trace message may name
			// a different (map-ordered) key, every other text matches.
			for _, sentinel := range []error{
				ErrBadTimestamp, ErrUnsortedRecords, ErrBadKey,
				ErrExitBeforeEnter, ErrUnbalanced,
			} {
				if errors.Is(wantErr, sentinel) != errors.Is(gotErr, sentinel) {
					t.Errorf("%s: sentinel %v: Pair=%v PairInto=%v", name, sentinel, wantErr, gotErr)
				}
			}
			if !errors.Is(wantErr, ErrUnbalanced) && wantErr.Error() != gotErr.Error() {
				t.Errorf("%s: error text diverged:\n  Pair:     %s\n  PairInto: %s", name, wantErr, gotErr)
			}
			continue
		}
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: instances diverged:\n  Pair:     %+v\n  PairInto: %+v", name, want, got)
		}
		if len(ids) != len(got) {
			t.Fatalf("%s: %d ids for %d instances", name, len(ids), len(got))
		}
		for i, id := range ids {
			if in.Key(id) != got[i].Key {
				t.Errorf("%s: ids[%d] = %d resolves to %+v, want %+v", name, i, id, in.Key(id), got[i].Key)
			}
		}
	}
}

func TestPairBufferReuseAcrossTraces(t *testing.T) {
	// Run every case twice through one buffer: results must not depend
	// on buffer history (stale stacks, dirty touched flags).
	in := NewInterner()
	buf := NewPairBuffer(in)
	for round := 0; round < 2; round++ {
		for name, tr := range pairCases() {
			want, wantErr := tr.Pair()
			got, _, gotErr := tr.PairInto(buf)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("round %d %s: Pair err %v, PairInto err %v", round, name, wantErr, gotErr)
			}
			if wantErr == nil && len(want) > 0 && !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d %s: instances diverged", round, name)
			}
		}
	}
}

func TestPairIntoNilInterner(t *testing.T) {
	buf := NewPairBuffer(nil)
	tr := &EventTrace{Records: []Record{
		{TimestampMS: 1, Dir: Enter, Key: EventKey{Class: "La/B", Callback: "x"}},
		{TimestampMS: 2, Dir: Exit, Key: EventKey{Class: "La/B", Callback: "x"}},
	}}
	insts, ids, err := tr.PairInto(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 || len(ids) != 1 {
		t.Fatalf("got %d instances, %d ids", len(insts), len(ids))
	}
}
