// Package trace defines the on-the-wire and in-memory trace formats that
// flow through EnergyDx: event traces (entry/exit records of instrumented
// callbacks, paper Fig 5), utilization traces (per-component hardware
// utilization of the suspect app sampled from procfs every 500 ms, paper
// §II-C), and power traces derived from them by the power model.
//
// A TraceBundle pairs one event trace with one utilization trace for a
// single user session; the EnergyDx backend consumes corpora of bundles
// collected from many users.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Component identifies a hardware component whose utilization is tracked
// by the background procfs sampler. The set mirrors the paper's "CPU,
// display, WiFi, etc." enumeration plus the components exercised by the
// case studies (GPS for OpenGPS, cellular/audio/sensors for the wider
// 40-app corpus).
type Component int

const (
	CPU Component = iota + 1
	Display
	WiFi
	Cellular
	GPS
	Audio
	Sensor
)

// NumComponents is the number of tracked hardware components.
const NumComponents = 7

// Components lists all tracked components in canonical order.
func Components() []Component {
	return []Component{CPU, Display, WiFi, Cellular, GPS, Audio, Sensor}
}

// String returns the human-readable component name.
func (c Component) String() string {
	switch c {
	case CPU:
		return "cpu"
	case Display:
		return "display"
	case WiFi:
		return "wifi"
	case Cellular:
		return "cellular"
	case GPS:
		return "gps"
	case Audio:
		return "audio"
	case Sensor:
		return "sensor"
	default:
		return fmt.Sprintf("component(%d)", int(c))
	}
}

// ParseComponent resolves a canonical component name (as produced by
// Component.String) back to the component.
func ParseComponent(name string) (Component, bool) {
	for _, c := range Components() {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

// index maps a component to its slot in a UtilizationVector.
func (c Component) index() (int, bool) {
	i := int(c) - 1
	if i < 0 || i >= NumComponents {
		return 0, false
	}
	return i, true
}

// UtilizationVector holds one utilization fraction in [0, 1] per component.
type UtilizationVector [NumComponents]float64

// Get returns the utilization of component c (0 for unknown components).
func (u UtilizationVector) Get(c Component) float64 {
	i, ok := c.index()
	if !ok {
		return 0
	}
	return u[i]
}

// Set stores the utilization of component c, clamping to [0, 1].
func (u *UtilizationVector) Set(c Component, v float64) {
	i, ok := c.index()
	if !ok {
		return
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	u[i] = v
}

// Add accumulates v into component c, clamping the result to [0, 1].
func (u *UtilizationVector) Add(c Component, v float64) {
	u.Set(c, u.Get(c)+v)
}

// EventKey identifies an instrumented event: the class it belongs to and
// the callback invoked, e.g. {"Lcom/fsck/k9/activity/MessageList", "onResume"}.
type EventKey struct {
	Class    string `json:"class"`
	Callback string `json:"callback"`
}

// String renders the key in the paper's "Class; callback" notation.
func (k EventKey) String() string { return k.Class + "; " + k.Callback }

// Validate rejects keys that cannot survive the Fig-5 text round trip:
// empty parts, a ";" inside the class, surrounding whitespace, or
// embedded line breaks (see the grammar in codec.go).
func (k EventKey) Validate() error { return checkTextKey(k) }

// Direction marks whether a record is a callback entrance or exit.
type Direction int

const (
	// Enter marks the entrance point of an event callback ("+").
	Enter Direction = iota + 1
	// Exit marks the exit point of an event callback ("-").
	Exit
)

// String returns the Fig-5 sigil for the direction.
func (d Direction) String() string {
	switch d {
	case Enter:
		return "+"
	case Exit:
		return "-"
	default:
		return "?"
	}
}

// Record is one line of an event trace: a timestamped entrance or exit of
// an instrumented callback (paper Fig 5).
type Record struct {
	TimestampMS int64     `json:"timestampMillis"`
	Dir         Direction `json:"dir"`
	Key         EventKey  `json:"key"`
}

// EventTrace is the ordered sequence of entry/exit records logged by one
// instrumented app during one user session.
type EventTrace struct {
	AppID   string   `json:"appId"`
	UserID  string   `json:"userId"`
	Device  string   `json:"device"` // device profile name, for power scaling
	TraceID string   `json:"traceId"`
	Records []Record `json:"records"`
}

// UtilizationSample is one procfs observation of the suspect app's
// per-component utilization.
type UtilizationSample struct {
	TimestampMS int64             `json:"timestampMillis"`
	Util        UtilizationVector `json:"util"`
}

// UtilizationTrace is the 500 ms-period utilization log recorded by the
// EnergyDx background service for the suspect app (identified by PID).
type UtilizationTrace struct {
	AppID    string              `json:"appId"`
	PID      int                 `json:"pid"`
	PeriodMS int64               `json:"periodMillis"`
	Samples  []UtilizationSample `json:"samples"`
}

// PowerSample is one power estimate produced by the power model.
type PowerSample struct {
	TimestampMS int64   `json:"timestampMillis"`
	PowerMW     float64 `json:"powerMilliwatts"`
	// Breakdown attributes the total to components (Fig 11 / Fig 14).
	Breakdown UtilizationVector `json:"breakdownMilliwatts"`
}

// PowerTrace is the per-sample estimated power of the suspect app.
type PowerTrace struct {
	AppID   string        `json:"appId"`
	Device  string        `json:"device"`
	Samples []PowerSample `json:"samples"`
}

// TraceBundle pairs the two traces collected for one user session, the
// unit uploaded to the EnergyDx backend.
type TraceBundle struct {
	// Key is the idempotent upload key: the bundle's content hash
	// (ContentKey), stamped by the uploading client. The server dedupes
	// re-uploads by it and rejects bundles whose content no longer
	// matches (in-flight corruption). Empty for legacy uploaders.
	Key   string           `json:"key,omitempty"`
	Event EventTrace       `json:"event"`
	Util  UtilizationTrace `json:"util"`
}

// Validation errors.
var (
	ErrUnsortedRecords  = errors.New("trace: records not in timestamp order")
	ErrUnbalanced       = errors.New("trace: unbalanced enter/exit records")
	ErrExitBeforeEnter  = errors.New("trace: exit record without matching enter")
	ErrNegativeDuration = errors.New("trace: event exits before it enters")
	ErrBadPeriod        = errors.New("trace: non-positive sampling period")
	ErrBadTimestamp     = errors.New("trace: negative timestamp")
	ErrBadKey           = errors.New("trace: malformed event key")
	ErrBadUtilization   = errors.New("trace: utilization outside [0, 1]")
)

// Validate checks structural invariants of an event trace: records
// sorted by non-negative timestamps, keys that survive the Fig-5 text
// round trip, and enter/exit balanced per event key (nesting allowed).
// Duplicate timestamps and zero-duration events (enter and exit in the
// same millisecond) are valid; both occur in real traces whenever two
// callbacks fire within one millisecond.
func (t *EventTrace) Validate() error {
	open := make(map[EventKey]int)
	var last int64
	for i, r := range t.Records {
		if r.TimestampMS < 0 {
			return fmt.Errorf("%w: record %d at %d", ErrBadTimestamp, i, r.TimestampMS)
		}
		if i > 0 && r.TimestampMS < last {
			return fmt.Errorf("%w: record %d at %d after %d", ErrUnsortedRecords, i, r.TimestampMS, last)
		}
		last = r.TimestampMS
		if err := r.Key.Validate(); err != nil {
			return fmt.Errorf("%w: record %d: %v", ErrBadKey, i, err)
		}
		switch r.Dir {
		case Enter:
			open[r.Key]++
		case Exit:
			if open[r.Key] == 0 {
				return fmt.Errorf("%w: %s at %d", ErrExitBeforeEnter, r.Key, r.TimestampMS)
			}
			open[r.Key]--
		default:
			return fmt.Errorf("trace: record %d has invalid direction %d", i, r.Dir)
		}
	}
	for k, n := range open {
		if n != 0 {
			return fmt.Errorf("%w: %s left open %d time(s)", ErrUnbalanced, k, n)
		}
	}
	return nil
}

// Validate checks structural invariants of a utilization trace: a
// positive sampling period, non-negative sorted timestamps, and every
// component utilization a finite fraction in [0, 1]. Out-of-range or
// non-finite utilization would silently distort the Step-1 power
// estimates, so it is rejected at ingestion instead.
func (t *UtilizationTrace) Validate() error {
	if t.PeriodMS <= 0 {
		return fmt.Errorf("%w: %d ms", ErrBadPeriod, t.PeriodMS)
	}
	var last int64
	for i, s := range t.Samples {
		if s.TimestampMS < 0 {
			return fmt.Errorf("%w: sample %d at %d", ErrBadTimestamp, i, s.TimestampMS)
		}
		if i > 0 && s.TimestampMS < last {
			return fmt.Errorf("%w: sample %d at %d after %d", ErrUnsortedRecords, i, s.TimestampMS, last)
		}
		last = s.TimestampMS
		for c, v := range s.Util {
			if math.IsNaN(v) || v < 0 || v > 1 {
				return fmt.Errorf("%w: sample %d component %s = %v", ErrBadUtilization, i, Component(c+1), v)
			}
		}
	}
	return nil
}

// Instance is a paired enter/exit occurrence of an event: the unit whose
// power consumption Step 1 estimates.
type Instance struct {
	Key     EventKey `json:"key"`
	StartMS int64    `json:"startMillis"`
	EndMS   int64    `json:"endMillis"`
}

// DurationMS returns the event instance's duration in milliseconds.
func (in Instance) DurationMS() int64 { return in.EndMS - in.StartMS }

// Pair matches enter and exit records into instances, allowing nested
// invocations of the same key (matched LIFO, as real re-entrant callbacks
// log). The result is sorted by start time, breaking ties by end time.
func (t *EventTrace) Pair() ([]Instance, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	open := make(map[EventKey][]int64)
	instances := make([]Instance, 0, len(t.Records)/2)
	for _, r := range t.Records {
		switch r.Dir {
		case Enter:
			open[r.Key] = append(open[r.Key], r.TimestampMS)
		case Exit:
			starts := open[r.Key]
			start := starts[len(starts)-1]
			open[r.Key] = starts[:len(starts)-1]
			if r.TimestampMS < start {
				return nil, fmt.Errorf("%w: %s", ErrNegativeDuration, r.Key)
			}
			instances = append(instances, Instance{Key: r.Key, StartMS: start, EndMS: r.TimestampMS})
		}
	}
	sort.Slice(instances, func(a, b int) bool {
		if instances[a].StartMS != instances[b].StartMS {
			return instances[a].StartMS < instances[b].StartMS
		}
		return instances[a].EndMS < instances[b].EndMS
	})
	return instances, nil
}

// Keys returns the distinct event keys appearing in the trace, sorted
// lexicographically for deterministic iteration.
func (t *EventTrace) Keys() []EventKey {
	seen := make(map[EventKey]struct{})
	for _, r := range t.Records {
		seen[r.Key] = struct{}{}
	}
	keys := make([]EventKey, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Class != keys[b].Class {
			return keys[a].Class < keys[b].Class
		}
		return keys[a].Callback < keys[b].Callback
	})
	return keys
}

// SpanMS returns the [first, last] timestamp covered by the trace, or
// (0, 0) for an empty trace.
func (t *EventTrace) SpanMS() (first, last int64) {
	if len(t.Records) == 0 {
		return 0, 0
	}
	return t.Records[0].TimestampMS, t.Records[len(t.Records)-1].TimestampMS
}

// UtilizationBetween averages the samples whose timestamps fall inside
// [startMS, endMS]. When no sample falls inside the window (events shorter
// than the sampling period), the nearest sample is used so short events
// still receive a power estimate, matching the paper's mapping of power
// samples onto event intervals by timestamp.
func (t *UtilizationTrace) UtilizationBetween(startMS, endMS int64) (UtilizationVector, bool) {
	var acc UtilizationVector
	if len(t.Samples) == 0 {
		return acc, false
	}
	n := 0
	for _, s := range t.Samples {
		if s.TimestampMS >= startMS && s.TimestampMS <= endMS {
			for i := range acc {
				acc[i] += s.Util[i]
			}
			n++
		}
	}
	if n > 0 {
		for i := range acc {
			acc[i] /= float64(n)
		}
		return acc, true
	}
	// Nearest sample fallback.
	mid := (startMS + endMS) / 2
	best := t.Samples[0]
	bestDist := absInt64(best.TimestampMS - mid)
	for _, s := range t.Samples[1:] {
		if d := absInt64(s.TimestampMS - mid); d < bestDist {
			best, bestDist = s, d
		}
	}
	return best.Util, true
}

func absInt64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Merge concatenates event traces that belong to the same app and user,
// keeping records sorted by timestamp. It is used by the collection server
// when a session's upload is split across reconnects.
func Merge(traces ...*EventTrace) (*EventTrace, error) {
	if len(traces) == 0 {
		return nil, errors.New("trace: nothing to merge")
	}
	out := &EventTrace{
		AppID:   traces[0].AppID,
		UserID:  traces[0].UserID,
		Device:  traces[0].Device,
		TraceID: traces[0].TraceID,
	}
	total := 0
	for _, t := range traces {
		if t.AppID != out.AppID {
			return nil, fmt.Errorf("trace: cannot merge app %q with %q", t.AppID, out.AppID)
		}
		if t.UserID != out.UserID {
			return nil, fmt.Errorf("trace: cannot merge user %q with %q", t.UserID, out.UserID)
		}
		total += len(t.Records)
	}
	out.Records = make([]Record, 0, total)
	for _, t := range traces {
		out.Records = append(out.Records, t.Records...)
	}
	sort.SliceStable(out.Records, func(a, b int) bool {
		return out.Records[a].TimestampMS < out.Records[b].TimestampMS
	})
	return out, nil
}

// ShortKey renders an event key the way the paper's tables do:
// "MessageList:onResume" (simple class name, colon, callback).
func ShortKey(k EventKey) string {
	cls := k.Class
	if i := strings.LastIndex(cls, "/"); i >= 0 {
		cls = cls[i+1:]
	}
	cls = strings.TrimSuffix(cls, ";")
	return cls + ":" + k.Callback
}
