package faults

import (
	"bytes"
	"testing"
	"time"
)

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, CorruptProb: 0.2, TruncateProb: 0.1, DuplicateProb: 0.1, DropProb: 0.1}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if ka, kb := a.Draw(), b.Draw(); ka != kb {
			t.Fatalf("draw %d diverged: %v vs %v", i, ka, kb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %v vs %v", a.Stats(), b.Stats())
	}
}

func TestDrawDistribution(t *testing.T) {
	in, err := New(Config{Seed: 7, CorruptProb: 0.25, TruncateProb: 0.25, DuplicateProb: 0.25, DropProb: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		in.Draw()
	}
	s := in.Stats()
	if s.Lines != 4000 {
		t.Fatalf("lines = %d", s.Lines)
	}
	for name, n := range map[string]int{
		"corrupted": s.Corrupted, "truncated": s.Truncated,
		"duplicated": s.Duplicated, "dropped": s.Dropped,
	} {
		if n < 800 || n > 1200 {
			t.Errorf("%s = %d, want ~1000", name, n)
		}
	}
}

func TestCorruptAlwaysChangesLine(t *testing.T) {
	in, err := New(Config{Seed: 1, CorruptProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	orig := []byte(`{"event":{"appId":"k9mail"}}`)
	for i := 0; i < 200; i++ {
		lines, drop := in.Apply(orig)
		if drop || len(lines) != 1 {
			t.Fatalf("apply returned %d lines, drop=%v", len(lines), drop)
		}
		if bytes.Equal(lines[0], orig) {
			t.Fatal("corrupted line identical to input")
		}
		if !bytes.Equal(orig, []byte(`{"event":{"appId":"k9mail"}}`)) {
			t.Fatal("input mutated in place")
		}
	}
}

func TestTruncateShortens(t *testing.T) {
	in, err := New(Config{Seed: 3, TruncateProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	orig := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 100; i++ {
		lines, _ := in.Apply(orig)
		if len(lines[0]) >= len(orig) || len(lines[0]) < 1 {
			t.Fatalf("truncated to %d bytes from %d", len(lines[0]), len(orig))
		}
	}
}

func TestDuplicateAndDrop(t *testing.T) {
	dup, err := New(Config{Seed: 5, DuplicateProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	lines, drop := dup.Apply([]byte("abc"))
	if drop || len(lines) != 2 || !bytes.Equal(lines[0], lines[1]) {
		t.Errorf("duplicate: lines=%v drop=%v", lines, drop)
	}

	drp, err := New(Config{Seed: 5, DropProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	lines, drop = drp.Apply([]byte("abc"))
	if !drop || lines != nil {
		t.Errorf("drop: lines=%v drop=%v", lines, drop)
	}
}

func TestDelayBounded(t *testing.T) {
	in, err := New(Config{Seed: 9, DelayProb: 1, MaxDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d := in.Delay()
		if d <= 0 || d > 2*time.Millisecond {
			t.Fatalf("delay %v outside (0, 2ms]", d)
		}
	}
	off, err := New(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if d := off.Delay(); d != 0 {
		t.Errorf("delay with DelayProb=0: %v", d)
	}
}

func TestPerm(t *testing.T) {
	id, err := New(Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	p := id.Perm(5)
	for i, v := range p {
		if v != i {
			t.Fatalf("identity perm = %v", p)
		}
	}

	sh, err := New(Config{Seed: 11, ReorderProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	shuffled := false
	for i := 0; i < 50 && !shuffled; i++ {
		p := sh.Perm(6)
		seen := make([]bool, 6)
		for j, v := range p {
			seen[v] = true
			if v != j {
				shuffled = true
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("perm %v missing element %d", p, v)
			}
		}
	}
	if !shuffled {
		t.Error("50 forced reorders never produced a non-identity permutation")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{CorruptProb: -0.1}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := New(Config{CorruptProb: 0.5, DropProb: 0.6}); err == nil {
		t.Error("line fault probabilities summing over 1 accepted")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("corrupt=0.1,truncate=0.05,duplicate=0.1,drop=0.05,delay=0.2,reorder=0.3,seed=7,maxdelayms=3")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, CorruptProb: 0.1, TruncateProb: 0.05, DuplicateProb: 0.1,
		DropProb: 0.05, DelayProb: 0.2, ReorderProb: 0.3, MaxDelay: 3 * time.Millisecond,
	}
	if cfg != want {
		t.Errorf("cfg = %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseSpec(""); err != nil || cfg != (Config{}) {
		t.Errorf("empty spec: %+v, %v", cfg, err)
	}
	for _, bad := range []string{"corrupt", "bogus=1", "corrupt=x", "corrupt=2"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
