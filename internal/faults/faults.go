// Package faults provides a deterministic fault-injection harness for
// the trace ingestion path. A production-scale deployment of the
// EnergyDx collection tier sees truncated uploads, flipped bytes,
// duplicated lines after ack loss, reordered batches and stalled
// connections; the Injector reproduces all of those behind a seeded RNG
// so the exact same fault schedule can be replayed in tests, in the
// soak harness, and live against cmd/collectd via its -faults flag.
//
// Faults are drawn per wire line and are mutually exclusive: each line
// suffers at most one of corrupt, truncate, duplicate or drop. Delay
// and reorder are drawn independently because they perturb timing and
// batch order, not line content. Given a fixed seed and a fixed,
// single-goroutine call sequence the injector is fully deterministic;
// under concurrent callers the draws remain from the same seeded
// stream, so aggregate statistics are stable even though the
// per-caller interleaving is not.
package faults

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Injected-fault counters on the process registry, aggregated across
// every injector in the process; per-injector numbers stay on
// Injector.Stats. A chaos run's /metrics therefore shows the fault
// pressure next to the retry/quarantine counters it provokes.
var (
	mFaultLines     = obs.Default.Counter("faults_lines_total", "wire lines offered to fault injectors")
	mFaultCorrupt   = obs.Default.Counter("faults_corrupt_total", "lines corrupted by fault injection")
	mFaultTruncate  = obs.Default.Counter("faults_truncate_total", "lines truncated by fault injection")
	mFaultDuplicate = obs.Default.Counter("faults_duplicate_total", "lines duplicated by fault injection")
	mFaultDrop      = obs.Default.Counter("faults_drop_total", "connections cut by fault injection")
	mFaultDelay     = obs.Default.Counter("faults_delay_total", "lines delayed by fault injection")
	mFaultReorder   = obs.Default.Counter("faults_reorder_total", "batches reordered by fault injection")
)

// Kind identifies the fault applied to one wire line.
type Kind int

const (
	// None leaves the line untouched.
	None Kind = iota
	// Corrupt flips a few bytes in the line.
	Corrupt
	// Truncate cuts the line short.
	Truncate
	// Duplicate transmits the line twice (a retransmit after a lost ack).
	Duplicate
	// Drop cuts the connection before the line is transmitted.
	Drop
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	case Duplicate:
		return "duplicate"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config sets the per-line fault probabilities. All probabilities are
// in [0, 1]; the line-fault probabilities (corrupt, truncate,
// duplicate, drop) must sum to at most 1 because they are exclusive.
type Config struct {
	// Seed drives every draw. The same seed replays the same schedule.
	Seed int64

	// CorruptProb is the probability a line has bytes flipped.
	CorruptProb float64
	// TruncateProb is the probability a line is cut short.
	TruncateProb float64
	// DuplicateProb is the probability a line is transmitted twice.
	DuplicateProb float64
	// DropProb is the probability the connection is cut at this line.
	DropProb float64

	// DelayProb is the probability a line is delayed before transmission.
	DelayProb float64
	// MaxDelay bounds an injected delay (default 5ms when DelayProb > 0).
	MaxDelay time.Duration

	// ReorderProb is the probability Perm shuffles a batch instead of
	// returning the identity permutation.
	ReorderProb float64
}

// validate checks probability ranges.
func (c Config) validate() error {
	probs := map[string]float64{
		"corrupt":   c.CorruptProb,
		"truncate":  c.TruncateProb,
		"duplicate": c.DuplicateProb,
		"drop":      c.DropProb,
		"delay":     c.DelayProb,
		"reorder":   c.ReorderProb,
	}
	for name, p := range probs {
		if p < 0 || p > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0, 1]", name, p)
		}
	}
	if sum := c.CorruptProb + c.TruncateProb + c.DuplicateProb + c.DropProb; sum > 1 {
		return fmt.Errorf("faults: line fault probabilities sum to %v > 1", sum)
	}
	return nil
}

// Stats counts the faults the injector has applied.
type Stats struct {
	Lines      int // lines offered to Draw/Apply
	Corrupted  int
	Truncated  int
	Duplicated int
	Dropped    int
	Delayed    int
	Reordered  int
}

// String renders the counters on one line.
func (s Stats) String() string {
	return fmt.Sprintf("lines=%d corrupted=%d truncated=%d duplicated=%d dropped=%d delayed=%d reordered=%d",
		s.Lines, s.Corrupted, s.Truncated, s.Duplicated, s.Dropped, s.Delayed, s.Reordered)
}

// Injector draws faults from a seeded RNG. It is safe for concurrent
// use.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	stats Stats
}

// New builds an injector for the configuration.
func New(cfg Config) (*Injector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Draw picks the fault for the next line.
func (in *Injector) Draw() Kind {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Lines++
	mFaultLines.Inc()
	p := in.rng.Float64()
	switch {
	case p < in.cfg.CorruptProb:
		in.stats.Corrupted++
		mFaultCorrupt.Inc()
		return Corrupt
	case p < in.cfg.CorruptProb+in.cfg.TruncateProb:
		in.stats.Truncated++
		mFaultTruncate.Inc()
		return Truncate
	case p < in.cfg.CorruptProb+in.cfg.TruncateProb+in.cfg.DuplicateProb:
		in.stats.Duplicated++
		mFaultDuplicate.Inc()
		return Duplicate
	case p < in.cfg.CorruptProb+in.cfg.TruncateProb+in.cfg.DuplicateProb+in.cfg.DropProb:
		in.stats.Dropped++
		mFaultDrop.Inc()
		return Drop
	default:
		return None
	}
}

// Apply draws a fault for line and returns the wire lines to transmit
// in its place plus whether the connection should be cut instead. The
// input is never modified; corrupting faults operate on a copy.
func (in *Injector) Apply(line []byte) (lines [][]byte, drop bool) {
	switch in.Draw() {
	case Corrupt:
		return [][]byte{in.corrupt(line)}, false
	case Truncate:
		return [][]byte{in.truncate(line)}, false
	case Duplicate:
		return [][]byte{line, line}, false
	case Drop:
		return nil, true
	default:
		return [][]byte{line}, false
	}
}

// corrupt flips one to four bytes of a copy of line. Flipping a bit
// always changes the byte, so the corrupted line is never identical to
// the input (for non-empty lines).
func (in *Injector) corrupt(line []byte) []byte {
	out := append([]byte(nil), line...)
	if len(out) == 0 {
		return []byte{0xff}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 1 + in.rng.Intn(4)
	for i := 0; i < n; i++ {
		pos := in.rng.Intn(len(out))
		out[pos] ^= byte(1 << in.rng.Intn(8))
	}
	return out
}

// truncate cuts a copy of line to a strict prefix (at least one byte is
// removed; at least one byte survives when the input has two or more).
func (in *Injector) truncate(line []byte) []byte {
	if len(line) <= 1 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	keep := 1 + in.rng.Intn(len(line)-1)
	return append([]byte(nil), line[:keep]...)
}

// Delay returns the injected transmission delay for the next line, or 0.
func (in *Injector) Delay() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.DelayProb <= 0 || in.rng.Float64() >= in.cfg.DelayProb {
		return 0
	}
	in.stats.Delayed++
	mFaultDelay.Inc()
	return time.Duration(1 + in.rng.Int63n(int64(in.cfg.MaxDelay)))
}

// Perm returns the transmission order for a batch of n items: a random
// permutation with probability ReorderProb, the identity otherwise.
func (in *Injector) Perm(n int) []int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n > 1 && in.cfg.ReorderProb > 0 && in.rng.Float64() < in.cfg.ReorderProb {
		in.stats.Reordered++
		mFaultReorder.Inc()
		return in.rng.Perm(n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// ParseSpec parses the -faults command-line syntax: a comma-separated
// list of <kind>=<prob> pairs with an optional seed, e.g.
//
//	corrupt=0.1,truncate=0.05,duplicate=0.1,drop=0.05,delay=0.2,reorder=0.3,seed=7
//
// Unknown kinds and out-of-range probabilities are errors. An empty
// spec returns a zero Config (no faults).
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if spec == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("faults: bad spec element %q (want kind=prob)", part)
		}
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err != nil {
			return Config{}, fmt.Errorf("faults: bad value in %q: %v", part, err)
		}
		switch key {
		case "corrupt":
			cfg.CorruptProb = f
		case "truncate":
			cfg.TruncateProb = f
		case "duplicate":
			cfg.DuplicateProb = f
		case "drop":
			cfg.DropProb = f
		case "delay":
			cfg.DelayProb = f
		case "reorder":
			cfg.ReorderProb = f
		case "seed":
			cfg.Seed = int64(f)
		case "maxdelayms":
			cfg.MaxDelay = time.Duration(f * float64(time.Millisecond))
		default:
			return Config{}, fmt.Errorf("faults: unknown fault kind %q", key)
		}
	}
	return cfg, cfg.validate()
}
