package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasic(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"single", []float64{5}, 50, 5},
		{"single p0", []float64{5}, 0, 5},
		{"single p100", []float64{5}, 100, 5},
		{"median even", []float64{1, 2, 3, 4}, 50, 2.5},
		{"median odd", []float64{1, 2, 3}, 50, 2},
		{"p0 is min", []float64{9, 1, 5}, 0, 1},
		{"p100 is max", []float64{9, 1, 5}, 100, 9},
		{"p25 type7", []float64{1, 2, 3, 4}, 25, 1.75},
		{"p10 of 1..10", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 10, 1.9},
		{"unsorted input", []float64{10, 1, 7, 3}, 50, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Percentile(tt.xs, tt.p)
			if err != nil {
				t.Fatalf("Percentile(%v, %v) error: %v", tt.xs, tt.p, err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Percentile(%v, %v) = %v, want %v", tt.xs, tt.p, got, tt.want)
			}
		})
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty input: got %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("p=-1: want error, got nil")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("p=101: want error, got nil")
	}
	if _, err := Percentile([]float64{math.NaN()}, 50); err == nil {
		t.Error("NaN sample: want error, got nil")
	}
	if _, err := Percentile([]float64{math.Inf(1)}, 50); err == nil {
		t.Error("Inf sample: want error, got nil")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuartilesKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	q, err := ComputeQuartiles(xs)
	if err != nil {
		t.Fatal(err)
	}
	if q.Q1 != 3 || q.Median != 5 || q.Q3 != 7 {
		t.Errorf("quartiles = %+v, want Q1=3 Median=5 Q3=7", q)
	}
	if q.IQR() != 4 {
		t.Errorf("IQR = %v, want 4", q.IQR())
	}
}

func TestFencesPaperMultiplier(t *testing.T) {
	// A flat trace with a single large spike: the spike must exceed the
	// upper outer fence with the paper's multiplier k=3.
	xs := []float64{1, 1.1, 0.9, 1, 1.05, 0.95, 1, 12, 1, 1.02}
	f, err := ComputeFences(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.UpperOuter >= 12 {
		t.Errorf("upper outer fence %v should be below the spike 12", f.UpperOuter)
	}
	out, err := UpperOutliers(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 7 {
		t.Errorf("UpperOutliers = %v, want [7]", out)
	}
}

func TestFencesNoOutlierOnFlat(t *testing.T) {
	xs := []float64{1, 1.01, 0.99, 1.02, 0.98, 1, 1.01, 0.99}
	out, err := UpperOutliers(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("flat trace produced outliers %v", out)
	}
}

func TestFencesInvalidMultiplier(t *testing.T) {
	for _, k := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := ComputeFences([]float64{1, 2, 3}, k); err == nil {
			t.Errorf("multiplier %v: want error, got nil", k)
		}
	}
}

func TestRanksNoTies(t *testing.T) {
	ranks, err := Ranks([]float64{30, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 1, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", ranks, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	// Two values tied for ranks 2 and 3 each get 2.5.
	ranks, err := Ranks([]float64{1, 5, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", ranks, want)
		}
	}
}

func TestRanksEmpty(t *testing.T) {
	ranks, err := Ranks(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 0 {
		t.Errorf("Ranks(nil) = %v, want empty", ranks)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Min != 2 || s.Max != 9 || s.Mean != 5 {
		t.Errorf("summary = %+v", s)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.Stddev, want)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stddev != 0 {
		t.Errorf("stddev of single sample = %v, want 0", s.Stddev)
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Errorf("Mean = %v, want 2", m)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	pts, err := EmpiricalCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(pts) != len(want) {
		t.Fatalf("CDF = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("CDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestEmpiricalCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.Float64() * 10
	}
	pts, err := EmpiricalCDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value {
			t.Fatalf("values not strictly increasing at %d: %v", i, pts)
		}
		if pts[i].Fraction <= pts[i-1].Fraction {
			t.Fatalf("fractions not strictly increasing at %d: %v", i, pts)
		}
	}
	if pts[len(pts)-1].Fraction != 1 {
		t.Errorf("final fraction = %v, want 1", pts[len(pts)-1].Fraction)
	}
}

// Property: the percentile function is monotone in p and bounded by
// min/max for any sample set.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Clamp to avoid pathological float overflow during
			// interpolation arithmetic.
			if math.Abs(x) > 1e100 {
				x = math.Mod(x, 1e100)
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		pa := float64(p1) / 255 * 100
		pb := float64(p2) / 255 * 100
		if pa > pb {
			pa, pb = pb, pa
		}
		va, err1 := Percentile(xs, pa)
		vb, err2 := Percentile(xs, pb)
		if err1 != nil || err2 != nil {
			return false
		}
		sorted := sortedCopy(xs)
		lo, hi := sorted[0], sorted[len(sorted)-1]
		return va <= vb && va >= lo && vb <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ranks form a permutation-invariant assignment whose sum equals
// n(n+1)/2 regardless of ties.
func TestRanksSumProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
		}
		ranks, err := Ranks(xs)
		if err != nil {
			return false
		}
		var sum float64
		for _, r := range ranks {
			sum += r
		}
		n := float64(len(xs))
		return math.Abs(sum-n*(n+1)/2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: fences always bracket the quartiles.
func TestFencesBracketProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		f, err := ComputeFences(xs, 3)
		if err != nil {
			t.Fatal(err)
		}
		if f.LowerOuter > f.Quartiles.Q1 || f.UpperOuter < f.Quartiles.Q3 {
			t.Fatalf("fences do not bracket quartiles: %+v", f)
		}
	}
}

func sortedFloats(xs []float64) []float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return cp
}

// Property: EmpiricalCDF evaluated at the max equals 1 and is a valid CDF.
func TestCDFProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		pts, err := EmpiricalCDF(xs)
		if err != nil {
			return false
		}
		srt := sortedFloats(xs)
		return pts[len(pts)-1].Fraction == 1 && pts[len(pts)-1].Value == srt[len(srt)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
