// Package orderstat provides an exact, mergeable order-statistic
// multiset over float64 values: Add, Remove, Rank, Kth, Percentile and
// Fences all run in O(log n). It is the summary structure behind the
// sublinear re-analysis path — one multiset per interned event key
// replaces the corpus-wide counting sort of the batch pipeline, while
// returning bit-identical answers.
//
// Exactness, not approximation: unlike quantile sketches, a Multiset
// stores every distinct value (with a multiplicity count), so
// Percentile reproduces stats.Percentile and FracRank reproduces the
// tied-block mean of stats.Ranks to the last bit. The differential
// harness in internal/core leans on exactly this property.
//
// The tree is a treap whose priorities are a fixed hash of the value's
// bit pattern, which makes the shape a pure function of the value set:
// any add/remove history reaching the same multiset yields the same
// tree, so performance (and the node count checked by the thrash tests)
// is history-independent. Nodes live in one flat slice with index links
// and a free list — no per-node allocations in steady state.
//
// A Multiset is not safe for concurrent use; callers serialize access
// (the incremental analyzer holds its own lock).
package orderstat

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// nilIdx marks an absent child link.
const nilIdx = int32(-1)

// node is one distinct value with its multiplicity and subtree
// aggregate. total is the multiset cardinality of the subtree (counts,
// not nodes), which Rank and Kth walk.
type node struct {
	val   float64
	pri   uint64
	l, r  int32
	cnt   uint32
	total uint32
}

// Multiset is an order-statistic multiset of finite float64 values.
// The zero value is an empty multiset ready for use.
type Multiset struct {
	nodes []node
	free  []int32
	root  int32
	init  bool
}

// priority hashes the value's bit pattern (splitmix64 finalizer) so the
// treap shape is canonical for a given value set. NaNs are rejected
// before hashing; -0 and +0 compare equal and coalesce into one node.
func priority(v float64) uint64 {
	z := math.Float64bits(v) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (m *Multiset) ensureInit() {
	if !m.init {
		m.root = nilIdx
		m.init = true
	}
}

// Len returns the number of values in the multiset (with multiplicity).
func (m *Multiset) Len() int {
	if !m.init || m.root == nilIdx {
		return 0
	}
	return int(m.nodes[m.root].total)
}

// Nodes returns the number of distinct values currently stored. The
// thrash tests pin this as the leak detector: any add/remove history
// returning to the same multiset must return to the same node count.
func (m *Multiset) Nodes() int {
	return len(m.nodes) - len(m.free)
}

// Bytes returns the retained memory of the node arena in bytes
// (capacity, not live nodes: freed nodes stay pooled for reuse).
func (m *Multiset) Bytes() int {
	const nodeSize = 32 // unsafe.Sizeof(node{}) on 64-bit, kept literal to stay portable
	return cap(m.nodes)*nodeSize + cap(m.free)*4
}

func (m *Multiset) alloc(v float64) int32 {
	if n := len(m.free); n > 0 {
		i := m.free[n-1]
		m.free = m.free[:n-1]
		m.nodes[i] = node{val: v, pri: priority(v), l: nilIdx, r: nilIdx, cnt: 1, total: 1}
		return i
	}
	m.nodes = append(m.nodes, node{val: v, pri: priority(v), l: nilIdx, r: nilIdx, cnt: 1, total: 1})
	return int32(len(m.nodes) - 1)
}

func (m *Multiset) subTotal(i int32) uint32 {
	if i == nilIdx {
		return 0
	}
	return m.nodes[i].total
}

// pull recomputes i's aggregate from its children.
func (m *Multiset) pull(i int32) {
	n := &m.nodes[i]
	n.total = n.cnt + m.subTotal(n.l) + m.subTotal(n.r)
}

// rotateRight lifts i's left child above it and returns the new
// subtree root.
func (m *Multiset) rotateRight(i int32) int32 {
	l := m.nodes[i].l
	m.nodes[i].l = m.nodes[l].r
	m.nodes[l].r = i
	m.pull(i)
	m.pull(l)
	return l
}

// rotateLeft lifts i's right child above it and returns the new
// subtree root.
func (m *Multiset) rotateLeft(i int32) int32 {
	r := m.nodes[i].r
	m.nodes[i].r = m.nodes[r].l
	m.nodes[r].l = i
	m.pull(i)
	m.pull(r)
	return r
}

// Add inserts one occurrence of v. Non-finite values are rejected with
// an error so a corrupted sample cannot silently poison the summary
// (mirroring stats.ErrNonFinite at the batch layer).
func (m *Multiset) Add(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w: %v", stats.ErrNonFinite, v)
	}
	m.ensureInit()
	m.root = m.add(m.root, v)
	return nil
}

func (m *Multiset) add(i int32, v float64) int32 {
	if i == nilIdx {
		return m.alloc(v)
	}
	n := &m.nodes[i]
	switch {
	case v < n.val:
		l := m.add(n.l, v)
		m.nodes[i].l = l
		m.pull(i)
		if m.nodes[l].pri > m.nodes[i].pri {
			return m.rotateRight(i)
		}
	case v > n.val:
		r := m.add(n.r, v)
		m.nodes[i].r = r
		m.pull(i)
		if m.nodes[r].pri > m.nodes[i].pri {
			return m.rotateLeft(i)
		}
	default:
		n.cnt++
		n.total++
	}
	return i
}

// Remove deletes one occurrence of v, reporting whether it was present.
func (m *Multiset) Remove(v float64) bool {
	if !m.init || m.root == nilIdx || math.IsNaN(v) {
		return false
	}
	var ok bool
	m.root, ok = m.remove(m.root, v)
	return ok
}

func (m *Multiset) remove(i int32, v float64) (int32, bool) {
	if i == nilIdx {
		return nilIdx, false
	}
	n := &m.nodes[i]
	switch {
	case v < n.val:
		l, ok := m.remove(n.l, v)
		if !ok {
			return i, false
		}
		m.nodes[i].l = l
		m.pull(i)
		return i, true
	case v > n.val:
		r, ok := m.remove(n.r, v)
		if !ok {
			return i, false
		}
		m.nodes[i].r = r
		m.pull(i)
		return i, true
	default:
		if n.cnt > 1 {
			n.cnt--
			n.total--
			return i, true
		}
		root := m.dropNode(i)
		m.free = append(m.free, i)
		return root, true
	}
}

// dropNode rotates i down until it is a leaf (choosing the
// higher-priority child to preserve the heap property) and returns the
// subtree that replaces it.
func (m *Multiset) dropNode(i int32) int32 {
	n := &m.nodes[i]
	switch {
	case n.l == nilIdx && n.r == nilIdx:
		return nilIdx
	case n.l == nilIdx:
		return n.r
	case n.r == nilIdx:
		return n.l
	case m.nodes[n.l].pri > m.nodes[n.r].pri:
		// The higher-priority left child becomes the subtree root and i
		// its right child; keep sinking i from there.
		root := m.rotateRight(i)
		m.nodes[root].r = m.dropNode(i)
		m.pull(root)
		return root
	default:
		root := m.rotateLeft(i)
		m.nodes[root].l = m.dropNode(i)
		m.pull(root)
		return root
	}
}

// Rank returns how many stored values are strictly less than v and how
// many equal it.
func (m *Multiset) Rank(v float64) (less, equal int) {
	if !m.init {
		return 0, 0
	}
	i := m.root
	for i != nilIdx {
		n := &m.nodes[i]
		switch {
		case v < n.val:
			i = n.l
		case v > n.val:
			less += int(m.subTotal(n.l)) + int(n.cnt)
			i = n.r
		default:
			less += int(m.subTotal(n.l))
			return less, int(n.cnt)
		}
	}
	return less, 0
}

// FracRank returns the 1-based fractional (mean-of-ties) ascending rank
// of v, exactly as stats.Ranks assigns it: the tied block spanning
// 0-based positions [less, less+equal-1] receives float64(less +
// (less+equal-1))/2 + 1. v must be present in the multiset.
func (m *Multiset) FracRank(v float64) (float64, error) {
	less, equal := m.Rank(v)
	if equal == 0 {
		return 0, fmt.Errorf("orderstat: value %v not in multiset", v)
	}
	// Identical integer arithmetic to the batch tie loop (i=less,
	// j=less+equal-1; mean = float64(i+j)/2 + 1), so the float result is
	// bit-identical.
	return float64(less+(less+equal-1))/2 + 1, nil
}

// Kth returns the k-th smallest value (0-based, counting multiplicity).
func (m *Multiset) Kth(k int) (float64, error) {
	if k < 0 || k >= m.Len() {
		return 0, fmt.Errorf("orderstat: order statistic %d out of range [0, %d)", k, m.Len())
	}
	i := m.root
	for {
		n := &m.nodes[i]
		lt := int(m.subTotal(n.l))
		switch {
		case k < lt:
			i = n.l
		case k < lt+int(n.cnt):
			return n.val, nil
		default:
			k -= lt + int(n.cnt)
			i = n.r
		}
	}
}

// Percentile computes the p-th percentile (0 <= p <= 100) with the same
// type-7 linear interpolation — and the same operation order, so the
// same bits — as stats.Percentile over the sorted value slice.
func (m *Multiset) Percentile(p float64) (float64, error) {
	n := m.Len()
	if n == 0 {
		return 0, stats.ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("%w: %v", stats.ErrBadPercentile, p)
	}
	if n == 1 {
		return m.Kth(0)
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	vlo, err := m.Kth(lo)
	if err != nil {
		return 0, err
	}
	if lo == hi {
		return vlo, nil
	}
	vhi, err := m.Kth(hi)
	if err != nil {
		return 0, err
	}
	frac := rank - float64(lo)
	return vlo*(1-frac) + vhi*frac, nil
}

// Quartiles returns Q1/median/Q3 with stats.ComputeQuartiles parity.
func (m *Multiset) Quartiles() (stats.Quartiles, error) {
	q1, err := m.Percentile(25)
	if err != nil {
		return stats.Quartiles{}, err
	}
	med, err := m.Percentile(50)
	if err != nil {
		return stats.Quartiles{}, err
	}
	q3, err := m.Percentile(75)
	if err != nil {
		return stats.Quartiles{}, err
	}
	return stats.Quartiles{Q1: q1, Median: med, Q3: q3}, nil
}

// Fences derives Tukey outlier fences with the given multiplier,
// matching stats.ComputeFences (validation order and arithmetic) over
// the stored values.
func (m *Multiset) Fences(multiplier float64) (stats.Fences, error) {
	if multiplier < 0 || math.IsNaN(multiplier) || math.IsInf(multiplier, 0) {
		return stats.Fences{}, fmt.Errorf("stats: invalid fence multiplier %v", multiplier)
	}
	q, err := m.Quartiles()
	if err != nil {
		return stats.Fences{}, err
	}
	iqr := q.IQR()
	return stats.Fences{
		Quartiles:  q,
		Multiplier: multiplier,
		LowerOuter: q.Q1 - multiplier*iqr,
		UpperOuter: q.Q3 + multiplier*iqr,
	}, nil
}

// Reset empties the multiset, retaining the node arena for reuse.
func (m *Multiset) Reset() {
	m.nodes = m.nodes[:0]
	m.free = m.free[:0]
	m.root = nilIdx
	m.init = true
}

// AppendValues appends every stored value in ascending order (each
// repeated by its multiplicity) to dst and returns it; a debugging and
// test helper, O(n).
func (m *Multiset) AppendValues(dst []float64) []float64 {
	if !m.init {
		return dst
	}
	return m.appendValues(dst, m.root)
}

func (m *Multiset) appendValues(dst []float64, i int32) []float64 {
	if i == nilIdx {
		return dst
	}
	n := &m.nodes[i]
	dst = m.appendValues(dst, n.l)
	for c := uint32(0); c < n.cnt; c++ {
		dst = append(dst, n.val)
	}
	return m.appendValues(dst, n.r)
}
