package orderstat

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stats"
)

// refMultiset is the oracle: a plain slice kept alongside the tree.
type refMultiset struct{ vals []float64 }

func (r *refMultiset) add(v float64) { r.vals = append(r.vals, v) }
func (r *refMultiset) remove(v float64) bool {
	for i, x := range r.vals {
		if x == v {
			r.vals = append(r.vals[:i:i], r.vals[i+1:]...)
			return true
		}
	}
	return false
}

// drawValue produces values with heavy ties so the fractional-rank tie
// handling is exercised, not just the distinct-value path.
func drawValue(rng *rand.Rand) float64 {
	if rng.Intn(3) == 0 {
		return float64(rng.Intn(12)) * 1.5 // tied pool
	}
	return rng.NormFloat64()*100 + 400
}

// TestParityUnderChurn drives random add/remove churn and, at every
// step, checks Len, Kth, Rank, FracRank, Percentile and Fences against
// the stats package over the sorted oracle slice — bit-identical, not
// approximately equal.
func TestParityUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var m Multiset
	var ref refMultiset
	for step := 0; step < 4000; step++ {
		if len(ref.vals) == 0 || rng.Intn(5) < 3 {
			v := drawValue(rng)
			if err := m.Add(v); err != nil {
				t.Fatalf("step %d: add %v: %v", step, v, err)
			}
			ref.add(v)
		} else {
			v := ref.vals[rng.Intn(len(ref.vals))]
			if !m.Remove(v) {
				t.Fatalf("step %d: remove of present value %v returned false", step, v)
			}
			ref.remove(v)
		}
		if step%37 != 0 { // full verification is O(n log n); sample it
			continue
		}
		verifyAgainst(t, &m, ref.vals, step)
	}
}

func verifyAgainst(t *testing.T, m *Multiset, vals []float64, step int) {
	t.Helper()
	if m.Len() != len(vals) {
		t.Fatalf("step %d: Len %d, want %d", step, m.Len(), len(vals))
	}
	if len(vals) == 0 {
		if _, err := m.Percentile(50); err != stats.ErrEmpty {
			t.Fatalf("step %d: empty percentile error %v", step, err)
		}
		return
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for k := 0; k < len(sorted); k += 1 + len(sorted)/13 {
		got, err := m.Kth(k)
		if err != nil {
			t.Fatalf("step %d: Kth(%d): %v", step, k, err)
		}
		if got != sorted[k] {
			t.Fatalf("step %d: Kth(%d) = %v, want %v", step, k, got, sorted[k])
		}
	}
	wantRanks, err := stats.Ranks(vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		got, err := m.FracRank(v)
		if err != nil {
			t.Fatalf("step %d: FracRank(%v): %v", step, v, err)
		}
		if got != wantRanks[i] {
			t.Fatalf("step %d: FracRank(%v) = %v, want %v (bit parity with stats.Ranks)",
				step, v, got, wantRanks[i])
		}
	}
	for _, p := range []float64{0, 10, 25, 33.3, 50, 75, 90, 100} {
		want, err := stats.Percentile(vals, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Percentile(p)
		if err != nil {
			t.Fatalf("step %d: Percentile(%v): %v", step, p, err)
		}
		if got != want {
			t.Fatalf("step %d: Percentile(%v) = %v, want %v (bit parity with stats.Percentile)",
				step, p, got, want)
		}
	}
	wantF, err := stats.ComputeFences(vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotF, err := m.Fences(3)
	if err != nil {
		t.Fatalf("step %d: Fences: %v", step, err)
	}
	if gotF != wantF {
		t.Fatalf("step %d: Fences = %+v, want %+v", step, gotF, wantF)
	}
}

// TestShapeAndNodesHistoryIndependent: the treap's priorities are a
// function of the value bits, so any insertion order over the same
// multiset must produce identical node counts, identical value walks
// and identical query answers.
func TestShapeAndNodesHistoryIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = drawValue(rng)
	}
	var a, b Multiset
	for _, v := range vals {
		if err := a.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	perm := rng.Perm(len(vals))
	for _, i := range perm {
		if err := b.Add(vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if a.Nodes() != b.Nodes() || a.Len() != b.Len() {
		t.Fatalf("node/len diverged across insertion orders: (%d,%d) vs (%d,%d)",
			a.Nodes(), a.Len(), b.Nodes(), b.Len())
	}
	av := a.AppendValues(nil)
	bv := b.AppendValues(nil)
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("value walk diverged at %d: %v vs %v", i, av[i], bv[i])
		}
	}
}

// TestThrashNoLeak: adding and removing the same values many times must
// return the multiset to its exact initial state with no node growth.
func TestThrashNoLeak(t *testing.T) {
	var m Multiset
	base := []float64{3, 1, 4, 1, 5, 9, 2.5, 6, 5.25, 3}
	for _, v := range base {
		if err := m.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	nodes0, len0 := m.Nodes(), m.Len()
	vals0 := m.AppendValues(nil)
	rng := rand.New(rand.NewSource(11))
	for cycle := 0; cycle < 1000; cycle++ {
		v := drawValue(rng)
		if err := m.Add(v); err != nil {
			t.Fatal(err)
		}
		if !m.Remove(v) {
			t.Fatalf("cycle %d: value %v vanished", cycle, v)
		}
	}
	if m.Nodes() != nodes0 || m.Len() != len0 {
		t.Fatalf("thrash leaked: nodes %d -> %d, len %d -> %d", nodes0, m.Nodes(), len0, m.Len())
	}
	vals1 := m.AppendValues(nil)
	for i := range vals0 {
		if vals0[i] != vals1[i] {
			t.Fatalf("thrash changed stored values at %d: %v vs %v", i, vals0[i], vals1[i])
		}
	}
}

// TestRejectsNonFinite: NaN/Inf must be refused at the boundary.
func TestRejectsNonFinite(t *testing.T) {
	var m Multiset
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := m.Add(v); err == nil {
			t.Fatalf("Add(%v) accepted a non-finite value", v)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("rejected values still counted: len %d", m.Len())
	}
	if m.Remove(math.NaN()) {
		t.Fatal("Remove(NaN) reported success on an empty multiset")
	}
}

// TestEdgeQueries covers the degenerate shapes and error contracts.
func TestEdgeQueries(t *testing.T) {
	var m Multiset
	if _, err := m.Kth(0); err == nil {
		t.Fatal("Kth on empty multiset did not error")
	}
	if _, err := m.FracRank(1); err == nil {
		t.Fatal("FracRank of absent value did not error")
	}
	if err := m.Add(42); err != nil {
		t.Fatal(err)
	}
	if v, err := m.Percentile(10); err != nil || v != 42 {
		t.Fatalf("single-value percentile = %v, %v", v, err)
	}
	if _, err := m.Percentile(-1); err == nil {
		t.Fatal("out-of-range percentile did not error")
	}
	if _, err := m.Fences(math.NaN()); err == nil {
		t.Fatal("NaN fence multiplier did not error")
	}
	less, equal := m.Rank(42)
	if less != 0 || equal != 1 {
		t.Fatalf("Rank(42) = (%d,%d), want (0,1)", less, equal)
	}
	m.Reset()
	if m.Len() != 0 || m.Nodes() != 0 {
		t.Fatal("Reset left residue")
	}
}

func BenchmarkAddRemove(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var m Multiset
	for i := 0; i < 10000; i++ {
		_ = m.Add(rng.NormFloat64())
	}
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vals[i%len(vals)]
		_ = m.Add(v)
		m.Remove(v)
	}
}

func BenchmarkPercentile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var m Multiset
	for i := 0; i < 10000; i++ {
		_ = m.Add(rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Percentile(10); err != nil {
			b.Fatal(err)
		}
	}
}
