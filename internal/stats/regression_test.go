package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestLeastSquaresExactLine(t *testing.T) {
	// y = 3 + 2x fit exactly.
	x := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{3, 5, 7, 9}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-3) > 1e-9 || math.Abs(beta[1]-2) > 1e-9 {
		t.Errorf("beta = %v, want [3 2]", beta)
	}
}

func TestLeastSquaresRecoversMultivariate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth := []float64{25, 900, 1100, 700} // base + 3 components
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		row := []float64{1, rng.Float64(), rng.Float64(), rng.Float64()}
		x = append(x, row)
		v := 0.0
		for j, b := range truth {
			v += b * row[j]
		}
		// Small measurement noise.
		y = append(y, v+rng.NormFloat64()*5)
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for j, b := range truth {
		if math.Abs(beta[j]-b) > 0.05*b+5 {
			t.Errorf("beta[%d] = %.1f, want ~%.1f", j, beta[j], b)
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LeastSquares([][]float64{{}}, []float64{1}); err == nil {
		t.Error("no regressors accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := LeastSquares([][]float64{{math.NaN(), 1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("NaN regressor accepted")
	}
	// Perfect collinearity: second column is 2x the first.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if _, err := LeastSquares(x, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("collinear system: %v", err)
	}
}

func TestRSquared(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	r2, err := RSquared(obs, obs) // perfect prediction
	if err != nil {
		t.Fatal(err)
	}
	if r2 != 1 {
		t.Errorf("perfect R2 = %v", r2)
	}
	// Predicting the mean gives R2 = 0.
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	r2, err = RSquared(mean, obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2) > 1e-12 {
		t.Errorf("mean-prediction R2 = %v", r2)
	}
	if _, err := RSquared([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	// Constant observations: 1 when matched, 0 when not.
	r2, err = RSquared([]float64{5, 5}, []float64{5, 5})
	if err != nil || r2 != 1 {
		t.Errorf("constant match R2 = %v, %v", r2, err)
	}
	r2, err = RSquared([]float64{4, 6}, []float64{5, 5})
	if err != nil || r2 != 0 {
		t.Errorf("constant mismatch R2 = %v, %v", r2, err)
	}
}
