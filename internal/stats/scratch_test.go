package stats

import (
	"math"
	"math/rand"
	"testing"
)

// scratchInputs covers the shapes that matter for rank/percentile
// equivalence: empties, singletons, ties (whole-vector and block),
// sorted/reverse runs, and seeded random vectors of varied length.
func scratchInputs() [][]float64 {
	ins := [][]float64{
		{},
		{3.5},
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1},
		{2, 2, 2, 2},
		{1, 2, 2, 3, 3, 3, 10},
		{-4, 0, 0, 7.5, -4},
	}
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 3, 17, 100, 1001} {
		xs := make([]float64, n)
		for i := range xs {
			// Quantize so random vectors still contain ties.
			xs[i] = math.Floor(rng.Float64()*50) / 2
		}
		ins = append(ins, xs)
	}
	return ins
}

// TestScratchMatchesAllocatingFunctions pins the pooled scratch paths
// to the allocating originals they replaced, including error parity,
// across repeated reuse of one Scratch.
func TestScratchMatchesAllocatingFunctions(t *testing.T) {
	var sc Scratch
	bad := [][]float64{
		{1, math.NaN(), 2},
		{math.Inf(1)},
		{0, math.Inf(-1), 5},
	}
	for round := 0; round < 2; round++ {
		for _, xs := range append(scratchInputs(), bad...) {
			want, wantErr := Ranks(xs)
			dst := make([]float64, len(xs))
			gotErr := sc.Ranks(xs, dst)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("Ranks(%v): err %v vs scratch %v", xs, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Errorf("Ranks(%v): error text %q vs %q", xs, wantErr, gotErr)
				}
			} else {
				for i := range want {
					if want[i] != dst[i] {
						t.Fatalf("Ranks(%v)[%d] = %v, scratch %v", xs, i, want[i], dst[i])
					}
				}
			}

			for _, p := range []float64{-1, 0, 10, 50, 99.9, 100, 101} {
				wantV, wantErr := Percentile(xs, p)
				gotV, gotErr := sc.Percentile(xs, p)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("Percentile(%v, %v): err %v vs scratch %v", xs, p, wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Errorf("Percentile(%v, %v): error text %q vs %q", xs, p, wantErr, gotErr)
					}
					continue
				}
				if wantV != gotV {
					t.Fatalf("Percentile(%v, %v) = %v, scratch %v", xs, p, wantV, gotV)
				}
			}

			for _, k := range []float64{0, 1.5, 3} {
				wantF, wantErr := ComputeFences(xs, k)
				gotF, gotErr := sc.Fences(xs, k)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("Fences(%v, %v): err %v vs scratch %v", xs, k, wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Errorf("Fences(%v, %v): error text %q vs %q", xs, k, wantErr, gotErr)
					}
					continue
				}
				if wantF != gotF {
					t.Fatalf("Fences(%v, %v) = %+v, scratch %+v", xs, k, wantF, gotF)
				}
			}
		}
	}
}

func TestScratchRanksDstLengthMismatch(t *testing.T) {
	var sc Scratch
	if err := sc.Ranks([]float64{1, 2}, make([]float64, 3)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestScratchDoesNotMutateInput guards the argsort contract: callers
// hand Ranks live report vectors.
func TestScratchDoesNotMutateInput(t *testing.T) {
	var sc Scratch
	xs := []float64{5, 1, 4, 1, 3}
	orig := append([]float64(nil), xs...)
	dst := make([]float64, len(xs))
	if err := sc.Ranks(xs, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Percentile(xs, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Fences(xs, 3); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("input mutated at %d: %v vs %v", i, xs[i], orig[i])
		}
	}
}
