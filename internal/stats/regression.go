package stats

import (
	"errors"
	"fmt"
	"math"
)

// This file implements ordinary least squares, the fitting procedure
// behind utilization-based smartphone power models: Zhang et al. [20]
// regress measured battery power against component utilization to
// obtain per-component coefficients. package power uses it to train
// device profiles from labelled samples.

// ErrSingular is returned when the normal equations are (numerically)
// singular — e.g. two regressors are perfectly collinear or a component
// never varies in the training data.
var ErrSingular = errors.New("stats: singular regression system")

// LeastSquares solves min ||X·beta - y||² via the normal equations with
// Gaussian elimination and partial pivoting. X is row-major: X[i] is
// observation i's regressors (include a constant 1 column for an
// intercept). Returns beta with len(X[0]) coefficients.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(y) != n {
		return nil, fmt.Errorf("stats: %d observations but %d targets", n, len(y))
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("stats: no regressors")
	}
	if n < p {
		return nil, fmt.Errorf("stats: %d observations cannot determine %d coefficients", n, p)
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("stats: row %d has %d regressors, want %d", i, len(row), p)
		}
		if err := checkFinite(row); err != nil {
			return nil, err
		}
	}
	if err := checkFinite(y); err != nil {
		return nil, err
	}

	// Form XtX (p x p) and Xty (p).
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for _, row := range x {
		for i := 0; i < p; i++ {
			for j := i; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	for k, row := range x {
		for i := 0; i < p; i++ {
			xty[i] += row[i] * y[k]
		}
	}
	return solve(xtx, xty)
}

// solve runs Gaussian elimination with partial pivoting on a (mutated)
// square system a·beta = b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	p := len(a)
	for col := 0; col < p; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("%w: pivot %d", ErrSingular, col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < p; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < p; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	beta := make([]float64, p)
	for i := p - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < p; j++ {
			sum -= a[i][j] * beta[j]
		}
		beta[i] = sum / a[i][i]
	}
	return beta, nil
}

// RSquared returns the coefficient of determination of predictions
// against observations.
func RSquared(predicted, observed []float64) (float64, error) {
	if len(predicted) != len(observed) {
		return 0, fmt.Errorf("stats: %d predictions vs %d observations", len(predicted), len(observed))
	}
	mean, err := Mean(observed)
	if err != nil {
		return 0, err
	}
	if err := checkFinite(predicted); err != nil {
		return 0, err
	}
	var ssRes, ssTot float64
	for i := range observed {
		r := observed[i] - predicted[i]
		ssRes += r * r
		d := observed[i] - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}
