package stats

import (
	"fmt"
	"math"
	"sort"
)

func isNaNOrInf(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) }

// Scratch holds reusable buffers for the allocation-free variants of
// the hot-path primitives (Ranks, Percentile, ComputeFences). The
// variants compute exactly what their package-level counterparts do —
// same validation order, same error text, same arithmetic — but sort in
// retained buffers instead of fresh copies. A Scratch is not safe for
// concurrent use; pool one per worker.
type Scratch struct {
	buf []float64
	arg []argEntry
	srt argSorter
}

// argEntry pairs a sample with its original index for the rank argsort.
type argEntry struct {
	v float64
	i int32
}

type argSorter struct{ a []argEntry }

func (s *argSorter) Len() int           { return len(s.a) }
func (s *argSorter) Less(a, b int) bool { return s.a[a].v < s.a[b].v }
func (s *argSorter) Swap(a, b int)      { s.a[a], s.a[b] = s.a[b], s.a[a] }

// Ranks writes the fractional ascending ranks of xs into dst (which
// must have len(xs)), producing the same values as the package-level
// Ranks: ties are permutation-independent because every tied block
// receives the block's mean rank.
func (sc *Scratch) Ranks(xs, dst []float64) error {
	if err := checkFinite(xs); err != nil {
		return err
	}
	n := len(xs)
	if len(dst) != n {
		return fmt.Errorf("stats: rank destination has %d slots for %d samples", len(dst), n)
	}
	if cap(sc.arg) < n {
		sc.arg = make([]argEntry, n)
	}
	sc.arg = sc.arg[:n]
	for i, x := range xs {
		sc.arg[i] = argEntry{v: x, i: int32(i)}
	}
	sc.srt.a = sc.arg
	sort.Sort(&sc.srt)
	for i := 0; i < n; {
		j := i
		for j+1 < n && sc.arg[j+1].v == sc.arg[i].v {
			j++
		}
		mean := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			dst[sc.arg[k].i] = mean
		}
		i = j + 1
	}
	return nil
}

// sorted fills the scratch buffer with xs in ascending order.
func (sc *Scratch) sorted(xs []float64) []float64 {
	n := len(xs)
	if cap(sc.buf) < n {
		sc.buf = make([]float64, n)
	}
	sc.buf = sc.buf[:n]
	copy(sc.buf, xs)
	sort.Float64s(sc.buf)
	return sc.buf
}

// Percentile is the scratch-backed Percentile: identical checks, error
// text and type-7 interpolation, without the sorted copy allocation.
func (sc *Scratch) Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("%w: %v", ErrBadPercentile, p)
	}
	if err := checkFinite(xs); err != nil {
		return 0, err
	}
	return percentileSorted(sc.sorted(xs), p), nil
}

// Fences is the scratch-backed ComputeFences: identical validation
// order and quartile arithmetic, one retained sort buffer.
func (sc *Scratch) Fences(xs []float64, multiplier float64) (Fences, error) {
	if multiplier < 0 || isNaNOrInf(multiplier) {
		return Fences{}, fmt.Errorf("stats: invalid fence multiplier %v", multiplier)
	}
	if len(xs) == 0 {
		return Fences{}, ErrEmpty
	}
	if err := checkFinite(xs); err != nil {
		return Fences{}, err
	}
	sorted := sc.sorted(xs)
	q := Quartiles{
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
	}
	iqr := q.IQR()
	return Fences{
		Quartiles:  q,
		Multiplier: multiplier,
		LowerOuter: q.Q1 - multiplier*iqr,
		UpperOuter: q.Q3 + multiplier*iqr,
	}, nil
}
