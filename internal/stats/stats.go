// Package stats provides the statistical primitives used throughout the
// EnergyDx pipeline: percentiles, quartiles, interquartile-range outlier
// fences, rank assignment, cumulative distributions, and summary
// statistics.
//
// All functions are pure and operate on float64 slices. Inputs are never
// mutated; functions that need ordering work on an internal copy. NaN and
// Inf values are rejected with ErrNonFinite so that corrupted utilization
// samples cannot silently poison a diagnosis.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

var (
	// ErrEmpty is returned when a computation requires at least one sample.
	ErrEmpty = errors.New("stats: empty sample set")

	// ErrNonFinite is returned when a sample contains NaN or Inf.
	ErrNonFinite = errors.New("stats: non-finite sample")

	// ErrBadPercentile is returned when a percentile is outside [0, 100].
	ErrBadPercentile = errors.New("stats: percentile out of range [0, 100]")
)

// checkFinite verifies every sample is a finite float.
func checkFinite(xs []float64) error {
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: sample %d is %v", ErrNonFinite, i, x)
		}
	}
	return nil
}

// sortedCopy returns the samples in ascending order without mutating xs.
func sortedCopy(xs []float64) []float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return cp
}

// Percentile computes the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks (the "exclusive" variant used
// by R type-7 quantiles, which is also what the paper's R-based prototype
// computes by default).
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("%w: %v", ErrBadPercentile, p)
	}
	if err := checkFinite(xs); err != nil {
		return 0, err
	}
	sorted := sortedCopy(xs)
	return percentileSorted(sorted, p), nil
}

// percentileSorted computes a type-7 quantile on pre-sorted data.
func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quartiles holds the three quartiles of a sample set.
type Quartiles struct {
	Q1     float64 // 25th percentile
	Median float64 // 50th percentile
	Q3     float64 // 75th percentile
}

// IQR returns the interquartile range Q3 - Q1.
func (q Quartiles) IQR() float64 { return q.Q3 - q.Q1 }

// ComputeQuartiles returns Q1, median and Q3 of xs.
func ComputeQuartiles(xs []float64) (Quartiles, error) {
	if len(xs) == 0 {
		return Quartiles{}, ErrEmpty
	}
	if err := checkFinite(xs); err != nil {
		return Quartiles{}, err
	}
	sorted := sortedCopy(xs)
	return Quartiles{
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
	}, nil
}

// Fences holds Tukey-style outlier fences derived from quartiles.
//
// EnergyDx Step 4 uses the *upper outer fence* Q3 + 3*IQR to select
// manifestation points (paper §III-A, Step 4).
type Fences struct {
	Quartiles  Quartiles
	Multiplier float64 // fence multiplier k; the paper uses 3 (outer fence)

	LowerOuter float64 // Q1 - k*IQR
	UpperOuter float64 // Q3 + k*IQR
}

// ComputeFences derives outlier fences with the given multiplier. A
// multiplier of 1.5 yields the classic inner fences; 3.0 yields the outer
// fences used by the paper.
func ComputeFences(xs []float64, multiplier float64) (Fences, error) {
	if multiplier < 0 || math.IsNaN(multiplier) || math.IsInf(multiplier, 0) {
		return Fences{}, fmt.Errorf("stats: invalid fence multiplier %v", multiplier)
	}
	q, err := ComputeQuartiles(xs)
	if err != nil {
		return Fences{}, err
	}
	iqr := q.IQR()
	return Fences{
		Quartiles:  q,
		Multiplier: multiplier,
		LowerOuter: q.Q1 - multiplier*iqr,
		UpperOuter: q.Q3 + multiplier*iqr,
	}, nil
}

// UpperOutliers returns the indices of samples strictly greater than the
// upper outer fence, in ascending index order.
func UpperOutliers(xs []float64, multiplier float64) ([]int, error) {
	f, err := ComputeFences(xs, multiplier)
	if err != nil {
		return nil, err
	}
	var out []int
	for i, x := range xs {
		if x > f.UpperOuter {
			out = append(out, i)
		}
	}
	return out, nil
}

// Ranks assigns each sample its ascending rank (1-based). Ties receive the
// mean of the ranks they span ("fractional ranking"), which keeps the rank
// distribution stable across traces where many event instances consume
// identical estimated power.
func Ranks(xs []float64) ([]float64, error) {
	if err := checkFinite(xs); err != nil {
		return nil, err
	}
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })

	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Mean rank of the tied block [i, j].
		mean := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mean
		}
		i = j + 1
	}
	return ranks, nil
}

// Summary captures the descriptive statistics of a sample set.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
	Median float64
}

// Summarize computes descriptive statistics for xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	if err := checkFinite(xs); err != nil {
		return Summary{}, err
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := sortedCopy(xs)
	s.Median = percentileSorted(sorted, 50)
	return s, nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if err := checkFinite(xs); err != nil {
		return 0, err
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// CDFPoint is one point of an empirical cumulative distribution function.
type CDFPoint struct {
	Value    float64 `json:"value"`
	Fraction float64 `json:"fraction"` // P(X <= Value), in (0, 1]
}

// EmpiricalCDF returns the empirical CDF of xs as a step function sampled
// at each distinct value. It is used to reproduce Fig 1 (the event-distance
// distribution across the 40 ABD cases).
func EmpiricalCDF(xs []float64) ([]CDFPoint, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if err := checkFinite(xs); err != nil {
		return nil, err
	}
	sorted := sortedCopy(xs)
	n := float64(len(sorted))
	var points []CDFPoint
	for i := 0; i < len(sorted); i++ {
		// Collapse ties: emit one point per distinct value at the
		// highest cumulative fraction it reaches.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		points = append(points, CDFPoint{
			Value:    sorted[i],
			Fraction: float64(i+1) / n,
		})
	}
	return points, nil
}
