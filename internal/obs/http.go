package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
)

// Health is the liveness/readiness state served by the debug mux.
// A fresh Health is live but not ready; mark it ready once the
// component is accepting work, and call ShuttingDown when a graceful
// stop begins so load balancers drain the instance.
type Health struct {
	live  atomic.Bool
	ready atomic.Bool
}

// NewHealth returns a live, not-yet-ready health state.
func NewHealth() *Health {
	h := &Health{}
	h.live.Store(true)
	return h
}

// SetReady flips readiness.
func (h *Health) SetReady(ready bool) { h.ready.Store(ready) }

// Ready reports the readiness state.
func (h *Health) Ready() bool { return h.ready.Load() }

// Live reports the liveness state.
func (h *Health) Live() bool { return h.live.Load() }

// ShuttingDown marks the component unready and not live: both /healthz
// and /readyz flip to 503 for the remainder of the drain.
func (h *Health) ShuttingDown() {
	h.ready.Store(false)
	h.live.Store(false)
}

func (h *Health) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	if !h.Live() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (h *Health) serveReadyz(w http.ResponseWriter, _ *http.Request) {
	if !h.Ready() {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// MetricsHandler serves the registry: Prometheus text by default,
// expvar-style JSON with ?format=json or an Accept: application/json
// header.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// publishOnce guards the one-time expvar publication of the Default
// registry (expvar.Publish panics on duplicate names).
var publishOnce sync.Once

// DebugMux builds the standard debug surface over a registry and a
// health state:
//
//	/metrics      Prometheus text (?format=json for expvar-style JSON)
//	/healthz      liveness  (503 once shutdown begins)
//	/readyz       readiness (503 until ready and during drain)
//	/debug/vars   expvar JSON (Go runtime vars + the Default registry)
//	/debug/pprof  the full net/http/pprof suite
func DebugMux(reg *Registry, h *Health) *http.ServeMux {
	if reg == Default {
		publishOnce.Do(func() {
			expvar.Publish("energydx", expvar.Func(func() any {
				names, metrics := Default.snapshot()
				obj := make(map[string]any, len(names))
				for i, name := range names {
					obj[name] = metrics[i].jsonValue()
				}
				return obj
			}))
		})
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.MetricsHandler())
	mux.HandleFunc("/healthz", h.serveHealthz)
	mux.HandleFunc("/readyz", h.serveReadyz)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts the handler on addr (e.g. "127.0.0.1:0") and
// serves until Close.
func ServeDebug(addr string, handler http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and any open connections.
func (d *DebugServer) Close() error { return d.srv.Close() }
