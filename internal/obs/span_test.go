package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("analyze")
	child := root.Child("step1")
	child.End()
	root.End()

	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	// Records come back sorted by start offset, so the root is first.
	if recs[0].Name != "analyze" || recs[0].Parent != "" {
		t.Errorf("root record = %+v", recs[0])
	}
	if recs[1].Name != "step1" || recs[1].Parent != "analyze" {
		t.Errorf("child record = %+v", recs[1])
	}
	if recs[1].StartUS < recs[0].StartUS {
		t.Errorf("child starts (%dus) before its parent (%dus)", recs[1].StartUS, recs[0].StartUS)
	}
	if recs[1].WallUS > recs[0].WallUS {
		t.Errorf("child wall %dus exceeds enclosing parent wall %dus", recs[1].WallUS, recs[0].WallUS)
	}
}

func TestSpanDurationMonotonic(t *testing.T) {
	const sleep = 10 * time.Millisecond
	tr := NewTracer()
	sp := tr.Start("slow")
	time.Sleep(sleep)
	rec := sp.End()
	// Wall time comes from the monotonic clock, so it can never
	// undercount the enclosed sleep (or go backwards across a clock step).
	if rec.Wall() < sleep {
		t.Errorf("span wall %v shorter than the %v it enclosed", rec.Wall(), sleep)
	}
	if rec.StartUS < 0 || rec.CPUUS < 0 {
		t.Errorf("negative span fields: %+v", rec)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("once")
	first := sp.End()
	second := sp.End()
	if second != (SpanRecord{}) {
		t.Errorf("second End returned %+v, want zero record", second)
	}
	if first.Name != "once" {
		t.Errorf("first End returned %+v", first)
	}
	if n := len(tr.Records()); n != 1 {
		t.Errorf("double End appended %d records, want 1", n)
	}
}

func TestTracerConcurrent(t *testing.T) {
	const goroutines, perG = 8, 50
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Start("task").End()
			}
		}()
	}
	wg.Wait()
	recs := tr.Records()
	if len(recs) != goroutines*perG {
		t.Fatalf("%d records, want %d", len(recs), goroutines*perG)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].StartUS < recs[i-1].StartUS {
			t.Fatalf("records not sorted by start: [%d]=%d < [%d]=%d",
				i, recs[i].StartUS, i-1, recs[i-1].StartUS)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("a")
	root.Child("b").End()
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSONL lines, want 2", len(lines))
	}
	for _, line := range lines {
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("line %q does not parse: %v", line, err)
		}
	}
}

func TestSummary(t *testing.T) {
	tr := NewTracer()
	a1 := tr.Start("stage_a")
	a1.End()
	b := tr.Start("stage_b")
	b.End()
	a2 := tr.Start("stage_a")
	a2.End()

	sum := tr.Summary()
	if len(sum) != 2 {
		t.Fatalf("%d summaries, want 2", len(sum))
	}
	// Ordered by each name's first start: stage_a opened first.
	if sum[0].Name != "stage_a" || sum[0].Count != 2 {
		t.Errorf("summary[0] = %+v, want stage_a count 2", sum[0])
	}
	if sum[1].Name != "stage_b" || sum[1].Count != 1 {
		t.Errorf("summary[1] = %+v, want stage_b count 1", sum[1])
	}
	if sum[0].Wall < 0 || sum[0].CPU < 0 {
		t.Errorf("negative aggregate durations: %+v", sum[0])
	}
}
