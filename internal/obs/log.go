package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a leveled slog logger writing to w. format selects
// the handler: "text" (default) for human-readable key=value lines,
// "json" for machine-ingestible output.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
	return slog.New(h), nil
}
