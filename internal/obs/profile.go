package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile into path and returns the stop
// function to defer. An empty path is a no-op.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes an allocation profile to path after a GC, so
// the profile reflects live heap rather than collectible garbage. An
// empty path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
