//go:build !(linux || darwin)

package obs

import "time"

// ProcessCPUTime returns 0 on platforms without getrusage; span CPU
// columns read as zero there, wall timings are unaffected.
func ProcessCPUTime() time.Duration { return 0 }
