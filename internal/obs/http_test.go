package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get runs one request through the mux and returns status and body.
func get(t *testing.T, mux http.Handler, target string, header ...string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String(), rec.Header()
}

func TestHealthEndpoints(t *testing.T) {
	h := NewHealth()
	mux := DebugMux(NewRegistry(), h)

	if code, _, _ := get(t, mux, "/healthz"); code != http.StatusOK {
		t.Errorf("fresh /healthz = %d, want 200", code)
	}
	if code, _, _ := get(t, mux, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("pre-ready /readyz = %d, want 503", code)
	}
	h.SetReady(true)
	if code, _, _ := get(t, mux, "/readyz"); code != http.StatusOK {
		t.Errorf("ready /readyz = %d, want 200", code)
	}
	h.ShuttingDown()
	if code, _, _ := get(t, mux, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz = %d, want 503", code)
	}
	if code, _, _ := get(t, mux, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz = %d, want 503", code)
	}
}

func TestMetricsHandlerFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_hits_total", "hits").Add(4)
	mux := DebugMux(reg, NewHealth())

	code, body, hdr := get(t, mux, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("text Content-Type = %q", ct)
	}
	if !strings.Contains(body, "# TYPE test_hits_total counter\ntest_hits_total 4\n") {
		t.Errorf("Prometheus body missing counter:\n%s", body)
	}

	for _, req := range [][]string{
		{"/metrics?format=json"},
		{"/metrics", "Accept", "application/json"},
	} {
		code, body, hdr := get(t, mux, req[0], req[1:]...)
		if code != http.StatusOK {
			t.Fatalf("%v = %d", req, code)
		}
		if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("%v Content-Type = %q", req, ct)
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(body), &obj); err != nil {
			t.Fatalf("%v body does not parse: %v", req, err)
		}
		if obj["test_hits_total"] != float64(4) {
			t.Errorf("%v counter = %v, want 4", req, obj["test_hits_total"])
		}
	}
}

func TestServeDebug(t *testing.T) {
	h := NewHealth()
	h.SetReady(true)
	srv, err := ServeDebug("127.0.0.1:0", DebugMux(NewRegistry(), h))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestParseLevelAndNewLogger(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "": "INFO", "warn": "WARN", "error": "ERROR",
	} {
		lvl, err := ParseLevel(in)
		if err != nil {
			t.Errorf("ParseLevel(%q): %v", in, err)
		} else if lvl.String() != want {
			t.Errorf("ParseLevel(%q) = %v, want %s", in, lvl, want)
		}
	}
	if _, err := ParseLevel("shout"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
	if _, err := NewLogger(io.Discard, "info", "yaml"); err == nil {
		t.Error("NewLogger accepted an unknown format")
	}

	var buf strings.Builder
	logger, err := NewLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("filtered out")
	logger.Warn("kept", "k", 1)
	out := buf.String()
	if strings.Contains(out, "filtered out") {
		t.Error("info line passed a warn-level logger")
	}
	var line map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &line); err != nil {
		t.Fatalf("JSON log line does not parse: %v (%q)", err, out)
	}
	if line["msg"] != "kept" || line["k"] != float64(1) {
		t.Errorf("log line = %v", line)
	}
}
