package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestInstrumentHTTP: the middleware accounts every request to a
// per-endpoint counter keyed by status class plus a latency histogram,
// with path cardinality bounded by the normalizer.
func TestInstrumentHTTP(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(200)
	})
	mux.HandleFunc("/analysis/report", func(w http.ResponseWriter, req *http.Request) {
		http.Error(w, "missing app", http.StatusBadRequest)
	})
	mux.HandleFunc("/silent", func(w http.ResponseWriter, req *http.Request) {
		// Writes nothing: net/http sends 200 on return; the middleware
		// must account it as 2xx, not 0.
	})
	h := reg.InstrumentHTTP(mux, nil)

	do := func(path string) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	}
	do("/healthz")
	do("/healthz")
	do("/analysis/report")
	do("/silent")
	do("/some/unknown/path")

	checks := []struct {
		name string
		want float64
	}{
		{"http_requests_healthz_2xx_total", 2},
		{"http_requests_analysis_report_4xx_total", 1},
		{"http_requests_other_2xx_total", 1},
		{"http_requests_other_4xx_total", 1}, // /some/unknown/path is a mux 404
	}
	for _, c := range checks {
		got, ok := reg.Value(c.name)
		if !ok || got != c.want {
			t.Fatalf("%s = %v (present=%v), want %v", c.name, got, ok, c.want)
		}
	}
	// Histograms are per endpoint, not per status class.
	text := scrape(reg)
	for _, name := range []string{"http_request_seconds_healthz", "http_request_seconds_analysis_report", "http_request_seconds_other"} {
		if !strings.Contains(text, name+"_count") {
			t.Fatalf("missing latency histogram %s in scrape:\n%s", name, text)
		}
	}
	// /silent must not leak its literal path into a metric name.
	if strings.Contains(text, "silent") {
		t.Fatalf("unbounded path leaked into metric names:\n%s", text)
	}
}

// TestInstrumentHTTPFlusher: the status-capturing writer must forward
// Flush, or SSE and long-poll handlers stall behind the middleware.
func TestInstrumentHTTPFlusher(t *testing.T) {
	reg := NewRegistry()
	flushed := false
	h := reg.InstrumentHTTP(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("middleware hid the Flusher interface")
		}
		w.WriteHeader(200)
		fl.Flush()
		flushed = true
	}), nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !flushed || !rr.Flushed {
		t.Fatalf("Flush not forwarded (handler flushed=%v, recorder flushed=%v)", flushed, rr.Flushed)
	}
	if v, ok := reg.Value("http_requests_metrics_2xx_total"); !ok || v != 1 {
		t.Fatalf("streaming request not accounted: %v %v", v, ok)
	}
}

// TestDebugEndpointBounded: every known surface maps to its token and
// arbitrary paths collapse to "other".
func TestDebugEndpointBounded(t *testing.T) {
	cases := map[string]string{
		"/metrics":                  "metrics",
		"/healthz":                  "healthz",
		"/readyz":                   "readyz",
		"/debug/vars":               "debug_vars",
		"/debug/pprof/heap":         "debug_pprof",
		"/analysis/apps":            "analysis_apps",
		"/analysis/report":          "analysis_report",
		"/analysis/report/history":  "analysis_history",
		"/analysis/flush":           "analysis_flush",
		"/analysis/remove":          "analysis_remove",
		"/analysis/events":          "analysis_events",
		"/analysis/whatif":          "analysis_whatif",
		"/ui":                       "ui",
		"/ui/app":                   "ui",
		"/etc/passwd":               "other",
		"/analysis/unknown":         "other",
		"/a/very/long/unseen/path/": "other",
	}
	for path, want := range cases {
		if got := DebugEndpoint(path); got != want {
			t.Fatalf("DebugEndpoint(%q) = %q, want %q", path, got, want)
		}
	}
}

// scrape renders the registry in the Prometheus text format.
func scrape(reg *Registry) string {
	rr := httptest.NewRecorder()
	reg.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	return rr.Body.String()
}
