//go:build linux || darwin

package obs

import (
	"syscall"
	"time"
)

// ProcessCPUTime returns the CPU time (user + system) consumed by the
// whole process so far, or 0 when the platform cannot report it.
func ProcessCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
