package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer collects lightweight spans against a single monotonic epoch.
// Spans are cheap enough to wrap every pipeline stage and every worker
// task: Start reads the monotonic clock once, End reads it again and
// appends one record under a mutex. A Tracer is safe for concurrent
// use; spans from parallel workers interleave and are ordered by start
// offset at export time.
type Tracer struct {
	epoch time.Time

	mu   sync.Mutex
	done []SpanRecord
}

// SpanRecord is one completed span. Start offsets and durations come
// from the monotonic clock, so wall times never go backwards even
// across a clock step. CPU is the process CPU time consumed while the
// span was open — exact for serial stages, an upper bound when spans
// overlap.
type SpanRecord struct {
	Name    string `json:"name"`
	Parent  string `json:"parent,omitempty"`
	StartUS int64  `json:"startMicros"`
	WallUS  int64  `json:"wallMicros"`
	CPUUS   int64  `json:"cpuMicros"`
}

// Wall returns the span's wall-clock duration.
func (r SpanRecord) Wall() time.Duration { return time.Duration(r.WallUS) * time.Microsecond }

// CPU returns the process CPU time consumed during the span.
func (r SpanRecord) CPU() time.Duration { return time.Duration(r.CPUUS) * time.Microsecond }

// NewTracer creates a tracer whose span offsets count from now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Span is an open span; call End exactly once.
type Span struct {
	tr     *Tracer
	name   string
	parent string
	start  time.Time
	cpu0   time.Duration
	ended  bool
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span {
	return &Span{tr: t, name: name, start: time.Now(), cpu0: ProcessCPUTime()}
}

// Child opens a span nested under s (the parent is recorded by name).
func (s *Span) Child(name string) *Span {
	sp := s.tr.Start(name)
	sp.parent = s.name
	return sp
}

// End closes the span and returns its record. A second End is a no-op
// returning a zero record.
func (s *Span) End() SpanRecord {
	if s.ended {
		return SpanRecord{}
	}
	s.ended = true
	rec := SpanRecord{
		Name:    s.name,
		Parent:  s.parent,
		StartUS: s.start.Sub(s.tr.epoch).Microseconds(),
		WallUS:  time.Since(s.start).Microseconds(),
		CPUUS:   (ProcessCPUTime() - s.cpu0).Microseconds(),
	}
	s.tr.mu.Lock()
	s.tr.done = append(s.tr.done, rec)
	s.tr.mu.Unlock()
	return rec
}

// Records returns the completed spans sorted by start offset (name
// breaks ties), a stable order regardless of worker interleaving.
func (t *Tracer) Records() []SpanRecord {
	t.mu.Lock()
	out := make([]SpanRecord, len(t.done))
	copy(out, t.done)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartUS != out[j].StartUS {
			return out[i].StartUS < out[j].StartUS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteJSONL exports every completed span as one JSON object per line,
// in start-offset order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range t.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SpanSummary aggregates every span sharing one name.
type SpanSummary struct {
	Name  string
	Count int
	Wall  time.Duration
	CPU   time.Duration
}

// Summary aggregates completed spans by name, ordered by each name's
// first start offset — for a staged pipeline that is pipeline order.
func (t *Tracer) Summary() []SpanSummary {
	recs := t.Records()
	idx := make(map[string]int)
	var out []SpanSummary
	for _, r := range recs {
		i, ok := idx[r.Name]
		if !ok {
			i = len(out)
			idx[r.Name] = i
			out = append(out, SpanSummary{Name: r.Name})
		}
		out[i].Count++
		out[i].Wall += r.Wall()
		out[i].CPU += r.CPU()
	}
	return out
}
