package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 16, 1000
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterAddIgnoresNegative(t *testing.T) {
	c := NewRegistry().Counter("test_total", "")
	c.Add(5)
	c.Add(-3)
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d after negative Add, want 5", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	const goroutines, perG = 8, 1000
	g := NewRegistry().Gauge("test_depth", "")
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("balanced inc/dec gauge = %v, want 0", got)
	}
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %v, want 2", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewRegistry().Histogram("test_seconds", "", []float64{1, 2, 5})
	// Prometheus le is inclusive: a value exactly on a bound lands in
	// that bound's bucket, one epsilon above spills into the next.
	for _, v := range []float64{0.5, 1, 1.5, 2, 5, 7} {
		h.Observe(v)
	}
	want := []int64{2, 4, 5, 6} // cumulative: le=1, le=2, le=5, +Inf
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cumulative bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 17 {
		t.Errorf("sum = %v, want 17", h.Sum())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	const goroutines, perG = 8, 1000
	h := NewRegistry().Histogram("test_seconds", "", nil)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(0.5) // exact in binary, so the sum is exact too
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("count = %d, want %d", got, goroutines*perG)
	}
	if got := h.Sum(); got != goroutines*perG*0.5 {
		t.Errorf("sum = %v, want %v", got, goroutines*perG*0.5)
	}
	cum := h.BucketCounts()
	if last := cum[len(cum)-1]; last != goroutines*perG {
		t.Errorf("+Inf cumulative = %d, want %d", last, goroutines*perG)
	}
}

func TestHistogramDefaultAndBadBuckets(t *testing.T) {
	h := NewRegistry().Histogram("test_seconds", "", nil)
	if got, want := len(h.BucketCounts()), len(DefBuckets)+1; got != want {
		t.Errorf("nil buckets: %d slots, want %d (DefBuckets + +Inf)", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-increasing buckets did not panic")
		}
	}()
	NewRegistry().Histogram("test_bad", "", []float64{1, 1})
}

func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "requests served").Add(3)
	r.Gauge("test_temp", "room temperature").Set(1.5)
	h := r.Histogram("test_lat_seconds", "latency", []float64{0.25, 1})
	for _, v := range []float64{0.25, 0.5, 2} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_lat_seconds latency
# TYPE test_lat_seconds histogram
test_lat_seconds_bucket{le="0.25"} 1
test_lat_seconds_bucket{le="1"} 2
test_lat_seconds_bucket{le="+Inf"} 3
test_lat_seconds_sum 2.75
test_lat_seconds_count 3
# HELP test_requests_total requests served
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_temp room temperature
# TYPE test_temp gauge
test_temp 1.5
`
	if got := buf.String(); got != want {
		t.Errorf("Prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "").Add(7)
	r.Gauge("test_temp", "").Set(-1.5)
	r.Histogram("test_lat_seconds", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("JSON export does not parse: %v", err)
	}
	if string(obj["test_requests_total"]) != "7" {
		t.Errorf("counter JSON = %s, want 7", obj["test_requests_total"])
	}
	if string(obj["test_temp"]) != "-1.5" {
		t.Errorf("gauge JSON = %s, want -1.5", obj["test_temp"])
	}
	var hist struct {
		Count   int64   `json:"count"`
		Sum     float64 `json:"sum"`
		Buckets []struct {
			LE    string `json:"le"`
			Count int64  `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(obj["test_lat_seconds"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Count != 1 || hist.Sum != 0.5 {
		t.Errorf("histogram JSON count=%d sum=%v, want 1/0.5", hist.Count, hist.Sum)
	}
	if len(hist.Buckets) != 2 || hist.Buckets[1].LE != "+Inf" {
		t.Errorf("histogram JSON buckets = %+v", hist.Buckets)
	}
}

func TestRegisterIdempotentAndKindClash(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "first")
	b := r.Counter("test_total", "second registration ignored")
	if a != b {
		t.Error("re-registering the same counter returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	r.Gauge("test_total", "")
}

func TestInvalidMetricName(t *testing.T) {
	for _, name := range []string{"", "9leading", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
}

func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_live", "", func() float64 { return 1 })
	r.GaugeFunc("test_live", "", func() float64 { return 2 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test_live 2\n") {
		t.Errorf("re-registered gauge func not replaced:\n%s", buf.String())
	}
}
