package obs

import (
	"net/http"
	"strings"
	"time"
)

// statusWriter captures the response status class without disturbing the
// handler's view of the ResponseWriter. Flush is forwarded so streaming
// handlers (SSE, long-poll) keep working behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// DebugEndpoint maps a debug-mux request path to a bounded metric-name
// token. The registry has no metric labels (names only), so per-endpoint
// HTTP metrics encode the endpoint in the name; this normalizer keeps
// that cardinality finite by mapping every known debug surface to a
// fixed token and everything else to "other".
func DebugEndpoint(path string) string {
	switch {
	case path == "/metrics":
		return "metrics"
	case path == "/healthz":
		return "healthz"
	case path == "/readyz":
		return "readyz"
	case path == "/debug/vars":
		return "debug_vars"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "debug_pprof"
	case path == "/analysis/apps":
		return "analysis_apps"
	case path == "/analysis/report/history":
		return "analysis_history"
	case path == "/analysis/report":
		return "analysis_report"
	case path == "/analysis/flush":
		return "analysis_flush"
	case path == "/analysis/remove":
		return "analysis_remove"
	case path == "/analysis/events":
		return "analysis_events"
	case path == "/analysis/whatif":
		return "analysis_whatif"
	case path == "/ui" || strings.HasPrefix(path, "/ui/"):
		return "ui"
	default:
		return "other"
	}
}

// statusClass buckets a status code into the conventional 1xx..5xx
// classes.
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	case code >= 200:
		return "2xx"
	default:
		return "1xx"
	}
}

// InstrumentHTTP wraps a handler with per-endpoint request accounting:
// a request counter per (endpoint, status class) and a latency histogram
// per endpoint, all on this registry. normalize maps a request path to a
// bounded endpoint token (nil means DebugEndpoint). Metric names follow
//
//	http_requests_<endpoint>_<class>_total
//	http_request_seconds_<endpoint>
//
// because the registry is name-keyed with no label support; the
// normalizer bounds the name cardinality. Latency for streaming
// endpoints (SSE, long-poll) is connection lifetime — long by design.
func (r *Registry) InstrumentHTTP(next http.Handler, normalize func(string) string) http.Handler {
	if normalize == nil {
		normalize = DebugEndpoint
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ep := normalize(req.URL.Path)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, req)
		if sw.status == 0 {
			// Handler wrote nothing: net/http will send 200 on return.
			sw.status = http.StatusOK
		}
		r.Counter("http_requests_"+ep+"_"+statusClass(sw.status)+"_total",
			"requests handled on the "+ep+" debug endpoint(s) by status class").Inc()
		r.Histogram("http_request_seconds_"+ep,
			"request latency on the "+ep+" debug endpoint(s)", nil).
			Observe(time.Since(start).Seconds())
	})
}
