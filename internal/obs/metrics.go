// Package obs is the observability layer of the EnergyDx backend: a
// zero-external-dependency metrics registry (counters, gauges,
// histograms) exported in Prometheus text and expvar-style JSON, span
// tracing over the monotonic clock, structured-logging construction on
// log/slog, an HTTP debug mux (/metrics, /healthz, /readyz,
// /debug/vars, net/http/pprof), and CPU/heap profiling helpers.
//
// The production north star is a collection tier ingesting traces from
// millions of phones; a diagnosis pipeline is only trustworthy when its
// own measurement path is itself measurable. Every layer of the system
// (core's 5-step analysis, the collect client/server, the parallel
// pool, the fault injector, the power index) registers its hot counters
// on the Default registry at package init, so any binary that links a
// layer exposes that layer's metrics with no further wiring.
//
// All metric operations are lock-free atomics on the hot path; the
// registry lock is only taken to create or enumerate metrics. Snapshots
// (Prometheus text, JSON) read each field atomically but are not a
// consistent cut across metrics — the usual scrape semantics.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. Library packages register their
// metrics here at init; binaries expose it through DebugMux.
var Default = NewRegistry()

// DefBuckets is the default histogram bucket layout (seconds), the
// conventional Prometheus latency spread.
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// metric is one registered instrument.
type metric interface {
	// kind is the Prometheus TYPE string.
	kind() string
	// help is the HELP string.
	help() string
	// writeProm appends the sample lines (no HELP/TYPE header).
	writeProm(w io.Writer, name string)
	// jsonValue is the expvar-style JSON representation.
	jsonValue() any
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// validName enforces the Prometheus metric-name charset.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		letter := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register installs (or returns the existing) metric under name. A kind
// clash is a programming error and panics.
func (r *Registry) register(name, help string, fresh func() metric) metric {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		want := fresh()
		if m.kind() != want.kind() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, want.kind(), m.kind()))
		}
		return m
	}
	m := fresh()
	r.metrics[name] = m
	return m
}

// Counter returns the named monotonically increasing counter,
// registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, func() metric { return &Counter{helpText: help} }).(*Counter)
}

// Gauge returns the named gauge (a value that can go up and down),
// registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, func() metric { return &Gauge{helpText: help} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at export
// time (live state like ring sizes or open connections). Re-registering
// the same name replaces the callback, so per-run wiring (e.g. a test's
// server instance) stays simple.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		gf, ok2 := m.(*gaugeFunc)
		if !ok2 {
			panic(fmt.Sprintf("obs: metric %q re-registered as gaugefunc, was %s", name, m.kind()))
		}
		gf.mu.Lock()
		gf.fn = fn
		gf.mu.Unlock()
		return
	}
	r.metrics[name] = &gaugeFunc{helpText: help, fn: fn}
}

// Histogram returns the named histogram with the given bucket upper
// bounds (nil means DefBuckets), registering it on first use. Bounds
// must be strictly increasing.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, func() metric { return newHistogram(help, buckets) }).(*Histogram)
}

// Value reads the current value of the named scalar metric (counter,
// gauge, or gauge func). The second result is false when the metric is
// not registered or is not scalar (histograms have no single value).
// It exists for consumers that render live values outside the exposition
// formats — the embedded dashboard's fleet overview, tests asserting on
// one metric without parsing the whole scrape.
func (r *Registry) Value(name string) (float64, bool) {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	switch v := m.(type) {
	case *Counter:
		return float64(v.Value()), true
	case *Gauge:
		return v.Value(), true
	case *gaugeFunc:
		return v.value(), true
	}
	return 0, false
}

// snapshot returns the metrics sorted by name.
func (r *Registry) snapshot() (names []string, metrics []metric) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names = make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	metrics = make([]metric, len(names))
	for i, name := range names {
		metrics[i] = r.metrics[name]
	}
	return names, metrics
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names, metrics := r.snapshot()
	for i, name := range names {
		m := metrics[i]
		if h := m.help(); h != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, m.kind())
		m.writeProm(bw, name)
	}
	return bw.Flush()
}

// WriteJSON renders every metric as one JSON object keyed by metric
// name (expvar style: scalars for counters/gauges, an object with
// count/sum/buckets for histograms).
func (r *Registry) WriteJSON(w io.Writer) error {
	names, metrics := r.snapshot()
	obj := make(map[string]any, len(names))
	for i, name := range names {
		obj[name] = metrics[i].jsonValue()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj) // encoding/json sorts map keys
}

// formatFloat renders a float the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v        atomic.Int64
	helpText string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must be non-negative; negative
// deltas are ignored to preserve monotonicity).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) kind() string { return "counter" }
func (c *Counter) help() string { return c.helpText }
func (c *Counter) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, c.Value())
}
func (c *Counter) jsonValue() any { return c.Value() }

// Gauge is a float metric that can move in both directions.
type Gauge struct {
	bits     atomic.Uint64
	helpText string
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one. Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) help() string { return g.helpText }
func (g *Gauge) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value()))
}
func (g *Gauge) jsonValue() any { return g.Value() }

// gaugeFunc is a gauge computed at export time.
type gaugeFunc struct {
	helpText string
	mu       sync.Mutex
	fn       func() float64
}

func (g *gaugeFunc) value() float64 {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	return fn()
}

func (g *gaugeFunc) kind() string { return "gauge" }
func (g *gaugeFunc) help() string { return g.helpText }
func (g *gaugeFunc) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.value()))
}
func (g *gaugeFunc) jsonValue() any { return g.value() }

// Histogram counts observations into fixed buckets. Buckets hold
// non-cumulative counts internally and render cumulatively (Prometheus
// semantics) at export.
type Histogram struct {
	bounds   []float64 // strictly increasing upper bounds; +Inf implicit
	counts   []atomic.Int64
	count    atomic.Int64
	sumBits  atomic.Uint64
	helpText string
}

func newHistogram(help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram buckets must be strictly increasing")
		}
	}
	h := &Histogram{
		bounds:   append([]float64(nil), bounds...),
		counts:   make([]atomic.Int64, len(bounds)+1), // last slot is +Inf
		helpText: help,
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound contains v; the +Inf overflow slot
	// catches the rest.
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCounts returns the cumulative count at each bound plus the
// +Inf bucket (Prometheus semantics).
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

func (h *Histogram) kind() string { return "histogram" }
func (h *Histogram) help() string { return h.helpText }

func (h *Histogram) writeProm(w io.Writer, name string) {
	cum := h.BucketCounts()
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

// histBucketJSON is one bucket in the JSON export.
type histBucketJSON struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

func (h *Histogram) jsonValue() any {
	cum := h.BucketCounts()
	buckets := make([]histBucketJSON, 0, len(cum))
	for i, b := range h.bounds {
		buckets = append(buckets, histBucketJSON{LE: formatFloat(b), Count: cum[i]})
	}
	buckets = append(buckets, histBucketJSON{LE: "+Inf", Count: cum[len(cum)-1]})
	return struct {
		Count   int64            `json:"count"`
		Sum     float64          `json:"sum"`
		Buckets []histBucketJSON `json:"buckets"`
	}{Count: h.Count(), Sum: h.Sum(), Buckets: buckets}
}
