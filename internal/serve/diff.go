package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/obs"
	"repro/internal/revision"
)

var mDiffs = obs.Default.Counter("serve_diffs_total", "version diffs computed by the serving layer")

// VersionDiff is the /analysis/diff response: the revision report
// between two retained report versions of one app, with the snapshot
// metadata of both endpoints.
type VersionDiff struct {
	App  string         `json:"app"`
	From Snapshot       `json:"from"`
	To   Snapshot       `json:"to"`
	Diff *revision.Diff `json:"diff"`
}

// DiffVersions compares two report versions of an app that are still in
// the history ring. Version 0 selects a default: the latest version for
// `to`, the version preceding `to` for `from`. ok is false when the app
// is unknown; err reports versions that were never installed or have
// aged out of the ring.
func (s *Service) DiffVersions(app string, from, to int64) (*VersionDiff, bool, error) {
	s.mu.Lock()
	st, ok := s.apps[app]
	if !ok {
		s.mu.Unlock()
		return nil, false, nil
	}
	history := make([]historyEntry, len(st.history))
	copy(history, st.history)
	s.mu.Unlock()

	if len(history) < 2 {
		return nil, true, fmt.Errorf("app %s has %d retained report versions; a diff needs 2", app, len(history))
	}
	if to == 0 {
		to = history[len(history)-1].snap.Version
	}
	if from == 0 {
		from = to - 1
	}
	find := func(version int64) (historyEntry, error) {
		for _, e := range history {
			if e.snap.Version == version {
				return e, nil
			}
		}
		return historyEntry{}, fmt.Errorf("report version %d of %s is not retained (ring holds %d..%d)",
			version, app, history[0].snap.Version, history[len(history)-1].snap.Version)
	}
	base, err := find(from)
	if err != nil {
		return nil, true, err
	}
	cand, err := find(to)
	if err != nil {
		return nil, true, err
	}
	mDiffs.Inc()
	return &VersionDiff{
		App:  app,
		From: base.snap,
		To:   cand.snap,
		Diff: revision.Compare(base.report, cand.report),
	}, true, nil
}

// serveDiff handles GET /analysis/diff?app=X[&from=N][&to=M]: the
// revision report between two retained versions as JSON. Omitted
// versions default to the latest hop (to = newest, from = to-1).
func (s *Service) serveDiff(w http.ResponseWriter, req *http.Request) {
	if !requireGET(w, req) {
		return
	}
	q := req.URL.Query()
	app := q.Get("app")
	if app == "" {
		http.Error(w, "missing ?app= parameter", http.StatusBadRequest)
		return
	}
	parseVersion := func(name string) (int64, bool) {
		raw := q.Get(name)
		if raw == "" {
			return 0, true
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 1 {
			http.Error(w, "bad ?"+name+"= parameter: want a positive report version", http.StatusBadRequest)
			return 0, false
		}
		return v, true
	}
	from, ok := parseVersion("from")
	if !ok {
		return
	}
	to, ok := parseVersion("to")
	if !ok {
		return
	}
	vd, tracked, err := s.DiffVersions(app, from, to)
	if !tracked {
		http.Error(w, "unknown app "+app, http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(vd)
}
