package serve

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// twoShardFanout builds two services, feeds k9mail into shard 0 and
// opengps into shard 1, flushes, and returns the fanout.
func twoShardFanout(t *testing.T) (*Fanout, []*Service) {
	t.Helper()
	mk := func(appID string, seed int64) []*trace.TraceBundle {
		app, err := apps.ByAppID(appID)
		if err != nil {
			t.Fatal(err)
		}
		cfg := workload.DefaultConfig(app, seed)
		cfg.Users = 4
		res, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Bundles
	}
	svcs := make([]*Service, 2)
	for i := range svcs {
		svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		svcs[i] = svc
	}
	for _, b := range mk("k9mail", 3) {
		svcs[0].Notify(b)
	}
	for _, b := range mk("opengps", 4) {
		svcs[1].Notify(b)
	}
	fan, err := NewFanout(svcs...)
	if err != nil {
		t.Fatal(err)
	}
	fan.Flush()
	return fan, svcs
}

// TestFanoutMergesApps: /analysis/apps lists every shard's apps in one
// sorted response with the single-service row shape.
func TestFanoutMergesApps(t *testing.T) {
	fan, _ := twoShardFanout(t)
	h := fan.Handler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/apps", nil))
	if rr.Code != 200 {
		t.Fatalf("apps status %d: %s", rr.Code, rr.Body.String())
	}
	var rows []AppStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].App != "k9mail" || rows[1].App != "opengps" {
		t.Fatalf("merged rows = %+v", rows)
	}
	for _, row := range rows {
		if row.Version != 1 || row.Traces == 0 {
			t.Errorf("row %s missing analysis state: %+v", row.App, row)
		}
	}
}

// TestFanoutRoutesReportToOwner: ?app= endpoints answer from the shard
// tracking the app, byte-identical to asking that shard directly.
func TestFanoutRoutesReportToOwner(t *testing.T) {
	fan, svcs := twoShardFanout(t)
	h := fan.Handler()
	for i, app := range []string{"k9mail", "opengps"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/report?app="+app, nil))
		if rr.Code != 200 {
			t.Fatalf("report %s status %d: %s", app, rr.Code, rr.Body.String())
		}
		direct := httptest.NewRecorder()
		svcs[i].Handler().ServeHTTP(direct, httptest.NewRequest("GET", "/analysis/report?app="+app, nil))
		if rr.Body.String() != direct.Body.String() {
			t.Errorf("fanout report for %s differs from owning shard's", app)
		}
		// ETag validation flows through the delegation.
		req := httptest.NewRequest("GET", "/analysis/report?app="+app, nil)
		req.Header.Set("If-None-Match", rr.Header().Get("ETag"))
		rr304 := httptest.NewRecorder()
		h.ServeHTTP(rr304, req)
		if rr304.Code != 304 {
			t.Errorf("conditional report for %s = %d, want 304", app, rr304.Code)
		}
	}
}

// TestFanoutErrorSurface: unknown app 404, missing app 400, events 501,
// flush re-analyzes every shard.
func TestFanoutErrorSurface(t *testing.T) {
	fan, svcs := twoShardFanout(t)
	h := fan.Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/report?app=nosuch", nil))
	if rr.Code != 404 {
		t.Errorf("unknown app status %d, want 404", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/report", nil))
	if rr.Code != 400 {
		t.Errorf("missing app status %d, want 400", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/events", nil))
	if rr.Code != 501 {
		t.Errorf("events status %d, want 501", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/flush", nil))
	if rr.Code != 405 {
		t.Errorf("GET flush status %d, want 405", rr.Code)
	}

	// New arrivals on both shards, one fanout flush covers both.
	for i, appID := range []string{"k9mail", "opengps"} {
		app, err := apps.ByAppID(appID)
		if err != nil {
			t.Fatal(err)
		}
		cfg := workload.DefaultConfig(app, int64(40+i))
		cfg.Users = 2
		res, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range res.Bundles {
			svcs[i].Notify(b)
		}
	}
	if fan.OldestDirtyAge() <= 0 {
		t.Error("dirty shards report zero staleness")
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/analysis/flush", nil))
	if rr.Code != 200 {
		t.Fatalf("flush status %d: %s", rr.Code, rr.Body.String())
	}
	if fan.OldestDirtyAge() != 0 {
		t.Error("staleness nonzero after fanout flush")
	}
	for i, app := range []string{"k9mail", "opengps"} {
		_, snap, ok := svcs[i].AppReport(app)
		if !ok || snap.Version != 2 {
			t.Errorf("%s version = %d after fanout flush, want 2", app, snap.Version)
		}
	}
}
