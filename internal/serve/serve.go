// Package serve turns the EnergyDx backend from a batch pipeline into
// an online service: it keeps one incremental analyzer
// (core.IncrementalAnalyzer) per app, re-analyzes a corpus shortly
// after new bundles arrive (debounced, so an upload burst costs one
// re-analysis rather than one per bundle), and serves the latest
// diagnosis report per app over HTTP — mounted on the same debug mux
// that serves /metrics (collectd -serve-analysis).
//
// Every installed report is a versioned snapshot: a per-app
// monotonically increasing version plus a strong ETag (content hash of
// the served JSON). Clients cache-validate with If-None-Match (304),
// long-poll for the next snapshot with ?wait=, resume missed updates
// over the /analysis/events SSE stream with Last-Event-ID, and read
// the drift of recent snapshots from /analysis/report/history.
//
// Endpoints (all GET unless noted):
//
//	/analysis/apps            apps tracked, versions, corpus sizes,
//	                          cache and summary stats
//	/analysis/report?app=X    latest report snapshot (JSON; ?format=text
//	                          for the developer-facing rendering).
//	                          Honors If-None-Match (ETag) with 304;
//	                          ?wait=<dur> long-polls: a stale client
//	                          gets the current snapshot immediately,
//	                          a fresh one parks until the next flush
//	                          or the timeout (304).
//	/analysis/report/history?app=X
//	                          bounded ring of recent snapshot summaries
//	                          (version, ETag, analyzedAt, top keys,
//	                          manifestation count, wall time)
//	/analysis/events          SSE stream of report-update events (see
//	                          stream.go for the backpressure contract)
//	/analysis/whatif?app=X&window=&fence=&norm=&impacted=
//	                          read-only what-if re-analysis under
//	                          overridden knobs; never touches serving
//	                          state (see whatif.go)
//	/analysis/flush           POST: synchronously re-analyze dirty apps
//	/analysis/remove?app=X&key=K
//	                          DELETE (or POST): retract one bundle by
//	                          content key (quarantine reversals,
//	                          version-diff workloads) and schedule
//	                          re-analysis — sublinear, no corpus rebuild
//
// The served report bytes are a snapshot: the incremental engine's
// reports are detached from analyzer state, so a long-lived client can
// never observe (or cause) mutation of a later analysis.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Serving-layer metrics on the process registry. Per-endpoint HTTP
// request counts and latencies come from obs.(*Registry).InstrumentHTTP
// wrapped around the debug mux, not from this package.
var (
	mAnalyses = obs.Default.Counter("serve_analyses_total", "debounced per-app re-analyses run by the serving layer")
	mNotifies = obs.Default.Counter("serve_notifies_total", "bundle arrivals offered to the serving layer")
	mErrors   = obs.Default.Counter("serve_analysis_errors_total", "per-app re-analyses that failed")
	hAnalysis = obs.Default.Histogram("serve_analysis_seconds", "wall time of one debounced per-app re-analysis", nil)
	mRemoves  = obs.Default.Counter("serve_removes_total", "bundle retractions accepted by the serving layer")
	mNotMod   = obs.Default.Counter("serve_report_not_modified_total", "report requests answered 304 from the client's ETag")
	mPollPark = obs.Default.Counter("serve_longpoll_parked_total", "report long-polls that parked waiting for the next snapshot")
	mWhatIfs  = obs.Default.Counter("serve_whatif_total", "read-only what-if re-analyses served")
)

// Config parameterizes the serving layer.
type Config struct {
	// Analysis is the core pipeline configuration every per-app
	// incremental analyzer runs with. SkipInvalidTraces is forced on:
	// an online service must degrade per trace, never refuse a corpus.
	Analysis core.Config
	// CacheCap bounds each app's Step-1 LRU cache (<= 0 means
	// core.DefaultStepCacheCap).
	CacheCap int
	// Debounce is the quiet period after the last arrival before a
	// dirty app is re-analyzed (default 500ms). Shorter means fresher
	// reports; longer coalesces bursts harder.
	Debounce time.Duration
	// MaxDelay caps how long a continuously-arriving stream can defer
	// re-analysis (default 10x Debounce): under sustained load the
	// report still refreshes at least this often.
	MaxDelay time.Duration
	// HistoryCap bounds the per-app snapshot-history ring (default 32).
	HistoryCap int
	// TopKeys is how many leading event keys a snapshot summary carries
	// (default 5).
	TopKeys int
	// MaxWait caps a report long-poll's ?wait= duration (default 30s).
	MaxWait time.Duration
	// StreamQueue bounds each SSE client's event queue (default 64).
	// A full queue drops its oldest event rather than blocking the
	// flush path; clients detect the gap from the event-ID sequence.
	StreamQueue int
	// StreamReplay bounds the hub's replay ring for Last-Event-ID
	// resume (default 256 events).
	StreamReplay int
	// StreamHeartbeat is the SSE keep-alive comment interval
	// (default 15s).
	StreamHeartbeat time.Duration
	// Logger receives analysis outcomes (nil means slog.Default).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Debounce <= 0 {
		c.Debounce = 500 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 10 * c.Debounce
	}
	if c.HistoryCap <= 0 {
		c.HistoryCap = 32
	}
	if c.TopKeys <= 0 {
		c.TopKeys = 5
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 30 * time.Second
	}
	if c.StreamQueue <= 0 {
		c.StreamQueue = 64
	}
	if c.StreamReplay <= 0 {
		c.StreamReplay = 256
	}
	if c.StreamHeartbeat <= 0 {
		c.StreamHeartbeat = 15 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	c.Analysis.SkipInvalidTraces = true
	return c
}

// Snapshot is the metadata of one installed report version: what the
// history ring retains and what a stream event carries. AnalyzedAt is
// RFC3339Nano UTC.
type Snapshot struct {
	Version    int64              `json:"version"`
	ETag       string             `json:"etag"`
	AnalyzedAt string             `json:"analyzedAt"`
	WallMillis float64            `json:"wallMillis"`
	Summary    core.ReportSummary `json:"summary"`
}

// appState is the serving state of one app.
type appState struct {
	inc *core.IncrementalAnalyzer

	dirty      bool
	dirtySince time.Time    // first un-analyzed arrival, for staleness
	report     *core.Report // latest successful analysis (detached)
	reportJSON []byte       // its serialized form, served verbatim
	version    int64        // bumps on every successful install
	etag       string       // strong ETag: content hash of reportJSON
	summary    core.ReportSummary
	analyzedAt time.Time
	lastWall   time.Duration
	analyses   int64
	lastErr    string
	history    []historyEntry // ring of the last HistoryCap versions
	waitCh     chan struct{}  // closed on install; wakes long-polls
}

// historyEntry is one retained report version: the snapshot metadata
// the history endpoint serves plus the detached report itself, kept so
// /analysis/diff can compare any two versions still in the ring.
type historyEntry struct {
	snap   Snapshot
	report *core.Report
}

// Service owns the per-app incremental analyzers and the debounce
// machinery. Create with New, feed with Notify (typically wired as
// collect.WithIngestHook), serve with Handler, stop with Close.
type Service struct {
	cfg Config
	hub *hub

	mu         sync.Mutex
	apps       map[string]*appState
	timer      *time.Timer
	firstDirty time.Time // first un-flushed Notify, for the MaxDelay cap
	closed     bool

	// snapMu guards the cached fleet metrics snapshot so one /metrics
	// scrape takes the service lock once, not once per gauge (and walks
	// the per-app summaries once). See metricsSnap.
	snapMu sync.Mutex
	snapAt time.Time
	snap   fleetSnap

	// flushMu serializes re-analysis passes so two timer firings (or a
	// timer racing an explicit Flush) never analyze the same app
	// concurrently or store results out of order.
	flushMu sync.Mutex
	wg      sync.WaitGroup
}

// New builds a serving layer. The configuration is validated eagerly so
// a bad analysis config fails at startup, not on first upload.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	// Validate by constructing a throwaway analyzer.
	if _, err := core.NewIncrementalAnalyzer(cfg.Analysis, cfg.CacheCap); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Service{
		cfg:  cfg,
		hub:  newHub(cfg.StreamReplay, cfg.StreamQueue),
		apps: make(map[string]*appState),
	}
	// All fleet gauges read the one cached snapshot: a scrape exports
	// five gauges for one service-lock acquisition and one summary walk.
	obs.Default.GaugeFunc("serve_apps_tracked", "apps with a live incremental analyzer", func() float64 {
		return float64(s.metricsSnap().apps)
	})
	obs.Default.GaugeFunc("serve_apps_dirty", "apps with arrivals not yet re-analyzed", func() float64 {
		return float64(s.metricsSnap().dirty)
	})
	obs.Default.GaugeFunc("serve_report_staleness_seconds", "age of the oldest dirty app's served report (0 when no app is dirty)", func() float64 {
		return s.metricsSnap().staleness
	})
	// Per-app summary state rolled up across the fleet of analyzers;
	// the per-app breakdown is served by /analysis/apps.
	obs.Default.GaugeFunc("analysis_summary_keys", "event keys with a live per-key power summary across all apps", func() float64 {
		return s.metricsSnap().summaryKeys
	})
	obs.Default.GaugeFunc("analysis_summary_bytes", "retained per-key summary memory across all apps", func() float64 {
		return s.metricsSnap().summaryBytes
	})
	obs.Default.GaugeFunc("analysis_dirty_traces", "traces re-ranked by the most recent incremental re-analyses across all apps", func() float64 {
		return s.metricsSnap().dirtyTraces
	})
	return s, nil
}

// fleetSnap is the cached roll-up behind the fleet gauges.
type fleetSnap struct {
	apps, dirty  int
	summaryKeys  float64
	summaryBytes float64
	dirtyTraces  float64
	staleness    float64
}

// metricsSnapTTL is how long a computed fleet snapshot serves gauge
// reads before the next scrape recomputes it. One Prometheus scrape
// reads several gauges within microseconds; the TTL collapses those
// into a single service-lock acquisition without a scrape ever seeing
// state older than a second.
const metricsSnapTTL = time.Second

// metricsSnap returns the cached fleet snapshot, recomputing it when
// stale. A flush invalidates the cache so post-flush scrapes see the
// new dirty set immediately.
func (s *Service) metricsSnap() fleetSnap {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if !s.snapAt.IsZero() && time.Since(s.snapAt) < metricsSnapTTL {
		return s.snap
	}
	var fs fleetSnap
	now := time.Now()
	s.mu.Lock()
	fs.apps = len(s.apps)
	for _, st := range s.apps {
		if st.dirty {
			fs.dirty++
			ref := st.analyzedAt
			if ref.IsZero() {
				ref = st.dirtySince
			}
			if !ref.IsZero() {
				if age := now.Sub(ref).Seconds(); age > fs.staleness {
					fs.staleness = age
				}
			}
		}
		ss := st.inc.SummaryStats()
		fs.summaryKeys += float64(ss.Keys)
		fs.summaryBytes += float64(ss.Bytes)
		fs.dirtyTraces += float64(ss.RankDirtyTraces)
	}
	s.mu.Unlock()
	s.snap, s.snapAt = fs, now
	return fs
}

// invalidateMetricsSnap forces the next gauge read to recompute.
func (s *Service) invalidateMetricsSnap() {
	s.snapMu.Lock()
	s.snapAt = time.Time{}
	s.snapMu.Unlock()
}

// Notify offers one accepted bundle to the serving layer: it joins the
// app's incremental corpus (content-key deduplicated) and schedules a
// debounced re-analysis. Safe for concurrent use; cheap enough for the
// ingest hot path (no analysis runs here).
func (s *Service) Notify(b *trace.TraceBundle) {
	if b == nil || b.Event.AppID == "" {
		return
	}
	mNotifies.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	st, ok := s.apps[b.Event.AppID]
	if !ok {
		inc, err := core.NewIncrementalAnalyzer(s.cfg.Analysis, s.cfg.CacheCap)
		if err != nil {
			// New() validated the config; this cannot fail afterwards.
			s.cfg.Logger.Error("serve: analyzer construction failed", "app", b.Event.AppID, "err", err)
			return
		}
		st = &appState{inc: inc}
		s.apps[b.Event.AppID] = st
	}
	if _, added := st.inc.Add(b); !added {
		return // duplicate content: nothing changed, no re-analysis
	}
	s.scheduleLocked(st)
}

// scheduleLocked marks the app dirty and (re)arms the debounce timer.
// Callers hold s.mu.
func (s *Service) scheduleLocked(st *appState) {
	now := time.Now()
	if !st.dirty {
		st.dirty = true
		st.dirtySince = now
	}
	switch {
	case s.timer == nil:
		s.firstDirty = now
		s.timer = time.AfterFunc(s.cfg.Debounce, s.flushAsync)
	case now.Sub(s.firstDirty) < s.cfg.MaxDelay:
		// Still inside the burst window: push the deadline out.
		s.timer.Reset(s.cfg.Debounce)
	default:
		// MaxDelay exceeded: leave the pending timer alone so the flush
		// fires even under a sustained arrival stream.
	}
}

// Remove retracts the bundle with the given content key from app's
// corpus and schedules a debounced re-analysis, reporting whether the
// bundle was present. The retraction itself is queued O(1); the next
// re-analysis pays only the touched keys' summary updates (sublinear in
// corpus size), never a full rebuild.
func (s *Service) Remove(app, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	st, ok := s.apps[app]
	if !ok {
		return false
	}
	if !st.inc.Remove(key) {
		return false
	}
	mRemoves.Inc()
	s.scheduleLocked(st)
	return true
}

// flushAsync is the timer callback: run the flush off the timer
// goroutine, tracked for Close.
func (s *Service) flushAsync() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.Flush()
	}()
}

// etagFor derives the strong ETag of a serialized report snapshot: a
// content hash, so byte-identical reports (across processes, restarts,
// or the batch pipeline) validate against the same tag.
func etagFor(data []byte) string {
	sum := sha256.Sum256(data)
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// Flush synchronously re-analyzes every dirty app and installs the new
// report snapshots (version bump, ETag, history entry), wakes parked
// long-polls, and publishes one stream event per installed snapshot. It
// is the debounce timer's target and may also be called directly
// (tests, the /analysis/flush endpoint, startup warm-up).
func (s *Service) Flush() {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()

	s.mu.Lock()
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	type job struct {
		app string
		st  *appState
	}
	var jobs []job
	for app, st := range s.apps {
		if st.dirty {
			st.dirty = false
			st.dirtySince = time.Time{}
			jobs = append(jobs, job{app, st})
		}
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].app < jobs[j].app })

	for _, j := range jobs {
		start := time.Now()
		report, err := j.st.inc.Report() // analyzer-internal locking; s.mu not held
		wall := time.Since(start)
		mAnalyses.Inc()
		hAnalysis.Observe(wall.Seconds())
		cs := j.st.inc.CacheStats()
		s.mu.Lock()
		j.st.analyses++
		j.st.analyzedAt = time.Now()
		j.st.lastWall = wall
		if err != nil {
			j.st.lastErr = err.Error()
			s.mu.Unlock()
			mErrors.Inc()
			s.cfg.Logger.Error("re-analysis failed", "app", j.app, "err", err)
			continue
		}
		data, merr := json.Marshal(report)
		if merr != nil {
			j.st.lastErr = merr.Error()
			s.mu.Unlock()
			mErrors.Inc()
			s.cfg.Logger.Error("report serialization failed", "app", j.app, "err", merr)
			continue
		}
		j.st.lastErr = ""
		snap := s.installLocked(j.st, report, data, wall)
		s.mu.Unlock()
		s.hub.publish(Event{App: j.app, Snapshot: snap})
		s.cfg.Logger.Info("re-analyzed corpus",
			"app", j.app, "version", snap.Version, "traces", report.TotalTraces,
			"skipped", len(report.Skipped), "impacted_traces", report.ImpactedTraces,
			"wall", wall.Round(time.Microsecond),
			"step1_cache_hit_rate", fmt.Sprintf("%.3f", cs.HitRate()))
	}
	s.invalidateMetricsSnap()
}

// installLocked stores a freshly analyzed report as the app's current
// snapshot: version bump, ETag, history ring append, long-poll wake.
// Callers hold s.mu.
func (s *Service) installLocked(st *appState, report *core.Report, data []byte, wall time.Duration) Snapshot {
	st.report = report
	st.reportJSON = data
	st.version++
	st.etag = etagFor(data)
	st.summary = report.Summarize(s.cfg.TopKeys)
	snap := Snapshot{
		Version:    st.version,
		ETag:       st.etag,
		AnalyzedAt: st.analyzedAt.UTC().Format(time.RFC3339Nano),
		WallMillis: float64(wall) / float64(time.Millisecond),
		Summary:    st.summary,
	}
	entry := historyEntry{snap: snap, report: report}
	if len(st.history) == s.cfg.HistoryCap {
		copy(st.history, st.history[1:])
		st.history[len(st.history)-1] = entry
	} else {
		st.history = append(st.history, entry)
	}
	if st.waitCh != nil {
		close(st.waitCh)
		st.waitCh = nil
	}
	return snap
}

// Close stops the debounce timer, waits for in-flight flushes, wakes
// parked long-polls, and terminates the event stream (subscribers see
// their channel closed). Pending dirty apps are not analyzed; callers
// wanting a final report call Flush first.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	for _, st := range s.apps {
		if st.waitCh != nil {
			close(st.waitCh)
			st.waitCh = nil
		}
	}
	s.mu.Unlock()
	s.hub.close()
	s.wg.Wait()
}

// AppStatus is one row of the /analysis/apps listing (and the
// dashboard's fleet overview).
type AppStatus struct {
	App            string             `json:"app"`
	Version        int64              `json:"version"`
	ETag           string             `json:"etag,omitempty"`
	Traces         int                `json:"traces"`
	Dirty          bool               `json:"dirty"`
	Analyses       int64              `json:"analyses"`
	LastAnalysisMS float64            `json:"lastAnalysisMillis"`
	AnalyzedAt     string             `json:"analyzedAt,omitempty"`
	LastError      string             `json:"lastError,omitempty"`
	Summary        core.ReportSummary `json:"summary"`
	Cache          core.CacheStats    `json:"step1Cache"`
	// Summaries is the incremental engine's per-key summary and
	// dirty-set state (the per-app view of the analysis_summary_* and
	// analysis_dirty_traces gauges).
	Summaries core.SummaryStats `json:"summaries"`
}

// statusLocked builds one app's status row. Callers hold s.mu.
func statusLocked(app string, st *appState) AppStatus {
	row := AppStatus{
		App:            app,
		Version:        st.version,
		ETag:           st.etag,
		Traces:         st.inc.Len(),
		Dirty:          st.dirty,
		Analyses:       st.analyses,
		LastAnalysisMS: float64(st.lastWall) / float64(time.Millisecond),
		LastError:      st.lastErr,
		Summary:        st.summary,
		Cache:          st.inc.CacheStats(),
		Summaries:      st.inc.SummaryStats(),
	}
	if !st.analyzedAt.IsZero() {
		row.AnalyzedAt = st.analyzedAt.UTC().Format(time.RFC3339Nano)
	}
	return row
}

// Statuses returns the status of every tracked app, sorted by app ID.
func (s *Service) Statuses() []AppStatus {
	s.mu.Lock()
	out := make([]AppStatus, 0, len(s.apps))
	for app, st := range s.apps {
		out = append(out, statusLocked(app, st))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// AppReport returns the app's current detached report with its snapshot
// metadata. ok is false when the app is unknown; a tracked-but-not-yet-
// analyzed app returns ok with a nil report. Callers must treat the
// report as read-only — it is the same detached object served over
// HTTP, shared across readers.
func (s *Service) AppReport(app string) (report *core.Report, snap Snapshot, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.apps[app]
	if !ok {
		return nil, Snapshot{}, false
	}
	if st.reportJSON == nil {
		return nil, Snapshot{}, true
	}
	snap = Snapshot{
		Version:    st.version,
		ETag:       st.etag,
		AnalyzedAt: st.analyzedAt.UTC().Format(time.RFC3339Nano),
		WallMillis: float64(st.lastWall) / float64(time.Millisecond),
		Summary:    st.summary,
	}
	return st.report, snap, true
}

// History returns the app's snapshot-history ring, oldest first.
func (s *Service) History(app string) ([]Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.apps[app]
	if !ok {
		return nil, false
	}
	out := make([]Snapshot, len(st.history))
	for i, e := range st.history {
		out[i] = e.snap
	}
	return out, true
}

// OldestDirtyAge returns the age of the oldest arrival not yet covered
// by an installed report (0 when nothing is dirty). It is the
// report-staleness probe the fleet benchmark samples: unlike the
// serve_report_staleness_seconds gauge it reads live state with no
// snapshot TTL.
func (s *Service) OldestDirtyAge() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	var worst time.Duration
	for _, st := range s.apps {
		if st.dirty && !st.dirtySince.IsZero() {
			if age := now.Sub(st.dirtySince); age > worst {
				worst = age
			}
		}
	}
	return worst
}

// AnalysisConfig returns the effective analysis configuration the
// serving layer runs with (SkipInvalidTraces forced on) — the defaults
// a what-if form is pre-filled from.
func (s *Service) AnalysisConfig() core.Config { return s.cfg.Analysis }

// Handler returns the HTTP handler for the /analysis/ endpoints; mount
// it at the mux root (paths are absolute).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analysis/apps", s.serveApps)
	mux.HandleFunc("/analysis/report", s.serveReport)
	mux.HandleFunc("/analysis/report/history", s.serveHistory)
	mux.HandleFunc("/analysis/events", s.serveEvents)
	mux.HandleFunc("/analysis/whatif", s.serveWhatIf)
	mux.HandleFunc("/analysis/diff", s.serveDiff)
	mux.HandleFunc("/analysis/flush", s.serveFlush)
	mux.HandleFunc("/analysis/remove", s.serveRemove)
	return mux
}

// requireGET enforces the read-only endpoints' method contract.
func requireGET(w http.ResponseWriter, req *http.Request) bool {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func (s *Service) serveApps(w http.ResponseWriter, req *http.Request) {
	if !requireGET(w, req) {
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Statuses())
}

// etagMatches reports whether the request's If-None-Match header
// matches the given strong ETag ("*" matches anything).
func etagMatches(req *http.Request, etag string) bool {
	inm := req.Header.Get("If-None-Match")
	if inm == "" || etag == "" {
		return false
	}
	for _, cand := range strings.Split(inm, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag || cand == "*" {
			return true
		}
	}
	return false
}

func (s *Service) serveReport(w http.ResponseWriter, req *http.Request) {
	if !requireGET(w, req) {
		return
	}
	q := req.URL.Query()
	app := q.Get("app")
	if app == "" {
		http.Error(w, "missing ?app= parameter", http.StatusBadRequest)
		return
	}
	var wait time.Duration
	if ws := q.Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d < 0 {
			http.Error(w, "bad ?wait= duration", http.StatusBadRequest)
			return
		}
		if d > s.cfg.MaxWait {
			d = s.cfg.MaxWait
		}
		wait = d
	}
	clientVer := int64(0)
	if vs := q.Get("version"); vs != "" {
		v, err := strconv.ParseInt(vs, 10, 64)
		if err != nil || v < 0 {
			http.Error(w, "bad ?version= parameter", http.StatusBadRequest)
			return
		}
		clientVer = v
	}

	s.mu.Lock()
	st, ok := s.apps[app]
	if !ok {
		s.mu.Unlock()
		http.Error(w, "unknown app "+app, http.StatusNotFound)
		return
	}
	// Fresh means the client already holds the current snapshot: its
	// ETag validates or its reported version is current. A stale client
	// is answered immediately; a fresh one parks when it asked to wait.
	fresh := st.reportJSON != nil &&
		(etagMatches(req, st.etag) || (clientVer > 0 && clientVer >= st.version))
	needsWait := wait > 0 && (st.reportJSON == nil || fresh)
	if needsWait {
		if st.waitCh == nil {
			st.waitCh = make(chan struct{})
		}
		waitCh := st.waitCh
		s.mu.Unlock()
		mPollPark.Inc()
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-waitCh:
		case <-timer.C:
		case <-req.Context().Done():
			return
		}
		s.mu.Lock()
		// Re-evaluate against whatever is installed now.
		fresh = st.reportJSON != nil &&
			(etagMatches(req, st.etag) || (clientVer > 0 && clientVer >= st.version))
	}

	data, report := st.reportJSON, st.report
	etag, version := st.etag, st.version
	s.mu.Unlock()

	if data == nil {
		// Tracked but not yet analyzed (inside the debounce window).
		http.Error(w, "no analysis yet for "+app+"; retry shortly or POST /analysis/flush", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("X-Analysis-Version", strconv.FormatInt(version, 10))
	if fresh {
		mNotMod.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if q.Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = report.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(data)
}

func (s *Service) serveHistory(w http.ResponseWriter, req *http.Request) {
	if !requireGET(w, req) {
		return
	}
	app := req.URL.Query().Get("app")
	if app == "" {
		http.Error(w, "missing ?app= parameter", http.StatusBadRequest)
		return
	}
	history, ok := s.History(app)
	if !ok {
		http.Error(w, "unknown app "+app, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(history)
}

func (s *Service) serveFlush(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	s.Flush()
	fmt.Fprintln(w, "flushed")
}

func (s *Service) serveRemove(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodDelete && req.Method != http.MethodPost {
		w.Header().Set("Allow", "DELETE, POST")
		http.Error(w, "DELETE or POST required", http.StatusMethodNotAllowed)
		return
	}
	q := req.URL.Query()
	app, key := q.Get("app"), q.Get("key")
	if app == "" || key == "" {
		http.Error(w, "missing ?app= or ?key= parameter", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	st, tracked := s.apps[app]
	s.mu.Unlock()
	if !tracked {
		http.Error(w, "unknown app "+app, http.StatusNotFound)
		return
	}
	if !s.Remove(app, key) {
		http.Error(w, "no bundle with key "+key+" in corpus of "+app, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"removed": true,
		"app":     app,
		"key":     key,
		"traces":  st.inc.Len(),
	})
}
