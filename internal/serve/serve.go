// Package serve turns the EnergyDx backend from a batch pipeline into
// an online service: it keeps one incremental analyzer
// (core.IncrementalAnalyzer) per app, re-analyzes a corpus shortly
// after new bundles arrive (debounced, so an upload burst costs one
// re-analysis rather than one per bundle), and serves the latest
// diagnosis report per app over HTTP — mounted on the same debug mux
// that serves /metrics (collectd -serve-analysis).
//
// Endpoints (all GET unless noted):
//
//	/analysis/apps            apps tracked, corpus sizes, cache and
//	                          summary stats
//	/analysis/report?app=X    latest report (JSON; ?format=text for the
//	                          developer-facing rendering)
//	/analysis/flush           POST: synchronously re-analyze dirty apps
//	/analysis/remove?app=X&key=K
//	                          DELETE (or POST): retract one bundle by
//	                          content key (quarantine reversals,
//	                          version-diff workloads) and schedule
//	                          re-analysis — sublinear, no corpus rebuild
//
// The served report bytes are a snapshot: the incremental engine's
// reports are detached from analyzer state, so a long-lived client can
// never observe (or cause) mutation of a later analysis.
package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Serving-layer metrics on the process registry.
var (
	mAnalyses = obs.Default.Counter("serve_analyses_total", "debounced per-app re-analyses run by the serving layer")
	mNotifies = obs.Default.Counter("serve_notifies_total", "bundle arrivals offered to the serving layer")
	mErrors   = obs.Default.Counter("serve_analysis_errors_total", "per-app re-analyses that failed")
	hAnalysis = obs.Default.Histogram("serve_analysis_seconds", "wall time of one debounced per-app re-analysis", nil)
	mRequests = obs.Default.Counter("serve_http_requests_total", "HTTP requests handled by the analysis endpoints")
	mRemoves  = obs.Default.Counter("serve_removes_total", "bundle retractions accepted by the serving layer")
)

// Config parameterizes the serving layer.
type Config struct {
	// Analysis is the core pipeline configuration every per-app
	// incremental analyzer runs with. SkipInvalidTraces is forced on:
	// an online service must degrade per trace, never refuse a corpus.
	Analysis core.Config
	// CacheCap bounds each app's Step-1 LRU cache (<= 0 means
	// core.DefaultStepCacheCap).
	CacheCap int
	// Debounce is the quiet period after the last arrival before a
	// dirty app is re-analyzed (default 500ms). Shorter means fresher
	// reports; longer coalesces bursts harder.
	Debounce time.Duration
	// MaxDelay caps how long a continuously-arriving stream can defer
	// re-analysis (default 10x Debounce): under sustained load the
	// report still refreshes at least this often.
	MaxDelay time.Duration
	// Logger receives analysis outcomes (nil means slog.Default).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Debounce <= 0 {
		c.Debounce = 500 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 10 * c.Debounce
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	c.Analysis.SkipInvalidTraces = true
	return c
}

// appState is the serving state of one app.
type appState struct {
	inc *core.IncrementalAnalyzer

	dirty      bool
	report     *core.Report // latest successful analysis (detached)
	reportJSON []byte       // its serialized form, served verbatim
	analyzedAt time.Time
	lastWall   time.Duration
	analyses   int64
	lastErr    string
}

// Service owns the per-app incremental analyzers and the debounce
// machinery. Create with New, feed with Notify (typically wired as
// collect.WithIngestHook), serve with Handler, stop with Close.
type Service struct {
	cfg Config

	mu         sync.Mutex
	apps       map[string]*appState
	timer      *time.Timer
	firstDirty time.Time // first un-flushed Notify, for the MaxDelay cap
	closed     bool

	// flushMu serializes re-analysis passes so two timer firings (or a
	// timer racing an explicit Flush) never analyze the same app
	// concurrently or store results out of order.
	flushMu sync.Mutex
	wg      sync.WaitGroup
}

// New builds a serving layer. The configuration is validated eagerly so
// a bad analysis config fails at startup, not on first upload.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	// Validate by constructing a throwaway analyzer.
	if _, err := core.NewIncrementalAnalyzer(cfg.Analysis, cfg.CacheCap); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Service{cfg: cfg, apps: make(map[string]*appState)}
	obs.Default.GaugeFunc("serve_apps_tracked", "apps with a live incremental analyzer", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.apps))
	})
	obs.Default.GaugeFunc("serve_apps_dirty", "apps with arrivals not yet re-analyzed", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for _, st := range s.apps {
			if st.dirty {
				n++
			}
		}
		return float64(n)
	})
	// Per-app summary state rolled up across the fleet of analyzers;
	// the per-app breakdown is served by /analysis/apps.
	obs.Default.GaugeFunc("analysis_summary_keys", "event keys with a live per-key power summary across all apps", func() float64 {
		return s.sumSummaries(func(st core.SummaryStats) float64 { return float64(st.Keys) })
	})
	obs.Default.GaugeFunc("analysis_summary_bytes", "retained per-key summary memory across all apps", func() float64 {
		return s.sumSummaries(func(st core.SummaryStats) float64 { return float64(st.Bytes) })
	})
	obs.Default.GaugeFunc("analysis_dirty_traces", "traces re-ranked by the most recent incremental re-analyses across all apps", func() float64 {
		return s.sumSummaries(func(st core.SummaryStats) float64 { return float64(st.RankDirtyTraces) })
	})
	return s, nil
}

// sumSummaries folds one SummaryStats field across every tracked app.
func (s *Service) sumSummaries(f func(core.SummaryStats) float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total float64
	for _, st := range s.apps {
		total += f(st.inc.SummaryStats())
	}
	return total
}

// Notify offers one accepted bundle to the serving layer: it joins the
// app's incremental corpus (content-key deduplicated) and schedules a
// debounced re-analysis. Safe for concurrent use; cheap enough for the
// ingest hot path (no analysis runs here).
func (s *Service) Notify(b *trace.TraceBundle) {
	if b == nil || b.Event.AppID == "" {
		return
	}
	mNotifies.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	st, ok := s.apps[b.Event.AppID]
	if !ok {
		inc, err := core.NewIncrementalAnalyzer(s.cfg.Analysis, s.cfg.CacheCap)
		if err != nil {
			// New() validated the config; this cannot fail afterwards.
			s.cfg.Logger.Error("serve: analyzer construction failed", "app", b.Event.AppID, "err", err)
			return
		}
		st = &appState{inc: inc}
		s.apps[b.Event.AppID] = st
	}
	if _, added := st.inc.Add(b); !added {
		return // duplicate content: nothing changed, no re-analysis
	}
	s.scheduleLocked(st)
}

// scheduleLocked marks the app dirty and (re)arms the debounce timer.
// Callers hold s.mu.
func (s *Service) scheduleLocked(st *appState) {
	st.dirty = true
	now := time.Now()
	switch {
	case s.timer == nil:
		s.firstDirty = now
		s.timer = time.AfterFunc(s.cfg.Debounce, s.flushAsync)
	case now.Sub(s.firstDirty) < s.cfg.MaxDelay:
		// Still inside the burst window: push the deadline out.
		s.timer.Reset(s.cfg.Debounce)
	default:
		// MaxDelay exceeded: leave the pending timer alone so the flush
		// fires even under a sustained arrival stream.
	}
}

// Remove retracts the bundle with the given content key from app's
// corpus and schedules a debounced re-analysis, reporting whether the
// bundle was present. The retraction itself is queued O(1); the next
// re-analysis pays only the touched keys' summary updates (sublinear in
// corpus size), never a full rebuild.
func (s *Service) Remove(app, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	st, ok := s.apps[app]
	if !ok {
		return false
	}
	if !st.inc.Remove(key) {
		return false
	}
	mRemoves.Inc()
	s.scheduleLocked(st)
	return true
}

// flushAsync is the timer callback: run the flush off the timer
// goroutine, tracked for Close.
func (s *Service) flushAsync() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.Flush()
	}()
}

// Flush synchronously re-analyzes every dirty app and installs the new
// reports. It is the debounce timer's target and may also be called
// directly (tests, the /analysis/flush endpoint, startup warm-up).
func (s *Service) Flush() {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()

	s.mu.Lock()
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	type job struct {
		app string
		st  *appState
	}
	var jobs []job
	for app, st := range s.apps {
		if st.dirty {
			st.dirty = false
			jobs = append(jobs, job{app, st})
		}
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].app < jobs[j].app })

	for _, j := range jobs {
		start := time.Now()
		report, err := j.st.inc.Report() // analyzer-internal locking; s.mu not held
		wall := time.Since(start)
		mAnalyses.Inc()
		hAnalysis.Observe(wall.Seconds())
		cs := j.st.inc.CacheStats()
		s.mu.Lock()
		j.st.analyses++
		j.st.analyzedAt = time.Now()
		j.st.lastWall = wall
		if err != nil {
			j.st.lastErr = err.Error()
			s.mu.Unlock()
			mErrors.Inc()
			s.cfg.Logger.Error("re-analysis failed", "app", j.app, "err", err)
			continue
		}
		data, merr := json.Marshal(report)
		if merr != nil {
			j.st.lastErr = merr.Error()
			s.mu.Unlock()
			mErrors.Inc()
			s.cfg.Logger.Error("report serialization failed", "app", j.app, "err", merr)
			continue
		}
		j.st.lastErr = ""
		j.st.report = report
		j.st.reportJSON = data
		s.mu.Unlock()
		s.cfg.Logger.Info("re-analyzed corpus",
			"app", j.app, "traces", report.TotalTraces, "skipped", len(report.Skipped),
			"impacted_traces", report.ImpactedTraces, "wall", wall.Round(time.Microsecond),
			"step1_cache_hit_rate", fmt.Sprintf("%.3f", cs.HitRate()))
	}
}

// Close stops the debounce timer and waits for in-flight flushes.
// Pending dirty apps are not analyzed; callers wanting a final report
// call Flush first.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// appSummary is one row of the /analysis/apps listing.
type appSummary struct {
	App            string          `json:"app"`
	Traces         int             `json:"traces"`
	Dirty          bool            `json:"dirty"`
	Analyses       int64           `json:"analyses"`
	LastAnalysisMS float64         `json:"lastAnalysisMillis"`
	AnalyzedAt     string          `json:"analyzedAt,omitempty"`
	LastError      string          `json:"lastError,omitempty"`
	Cache          core.CacheStats `json:"step1Cache"`
	// Summaries is the incremental engine's per-key summary and
	// dirty-set state (the per-app view of the analysis_summary_* and
	// analysis_dirty_traces gauges).
	Summaries core.SummaryStats `json:"summaries"`
}

// Handler returns the HTTP handler for the /analysis/ endpoints; mount
// it at the mux root (paths are absolute).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analysis/apps", s.serveApps)
	mux.HandleFunc("/analysis/report", s.serveReport)
	mux.HandleFunc("/analysis/flush", s.serveFlush)
	mux.HandleFunc("/analysis/remove", s.serveRemove)
	return mux
}

func (s *Service) serveApps(w http.ResponseWriter, _ *http.Request) {
	mRequests.Inc()
	s.mu.Lock()
	out := make([]appSummary, 0, len(s.apps))
	for app, st := range s.apps {
		row := appSummary{
			App:            app,
			Traces:         st.inc.Len(),
			Dirty:          st.dirty,
			Analyses:       st.analyses,
			LastAnalysisMS: float64(st.lastWall) / float64(time.Millisecond),
			LastError:      st.lastErr,
			Cache:          st.inc.CacheStats(),
			Summaries:      st.inc.SummaryStats(),
		}
		if !st.analyzedAt.IsZero() {
			row.AnalyzedAt = st.analyzedAt.UTC().Format(time.RFC3339Nano)
		}
		out = append(out, row)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

func (s *Service) serveReport(w http.ResponseWriter, req *http.Request) {
	mRequests.Inc()
	app := req.URL.Query().Get("app")
	if app == "" {
		http.Error(w, "missing ?app= parameter", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	st, ok := s.apps[app]
	var (
		data   []byte
		report *core.Report
	)
	if ok {
		data, report = st.reportJSON, st.report
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown app "+app, http.StatusNotFound)
		return
	}
	if data == nil {
		// Tracked but not yet analyzed (inside the debounce window).
		http.Error(w, "no analysis yet for "+app+"; retry shortly or POST /analysis/flush", http.StatusServiceUnavailable)
		return
	}
	if req.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = report.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(data)
}

func (s *Service) serveFlush(w http.ResponseWriter, req *http.Request) {
	mRequests.Inc()
	if req.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	s.Flush()
	fmt.Fprintln(w, "flushed")
}

func (s *Service) serveRemove(w http.ResponseWriter, req *http.Request) {
	mRequests.Inc()
	if req.Method != http.MethodDelete && req.Method != http.MethodPost {
		http.Error(w, "DELETE or POST required", http.StatusMethodNotAllowed)
		return
	}
	q := req.URL.Query()
	app, key := q.Get("app"), q.Get("key")
	if app == "" || key == "" {
		http.Error(w, "missing ?app= or ?key= parameter", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	st, tracked := s.apps[app]
	s.mu.Unlock()
	if !tracked {
		http.Error(w, "unknown app "+app, http.StatusNotFound)
		return
	}
	if !s.Remove(app, key) {
		http.Error(w, "no bundle with key "+key+" in corpus of "+app, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"removed": true,
		"app":     app,
		"key":     key,
		"traces":  st.inc.Len(),
	})
}
