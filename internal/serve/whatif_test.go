package serve

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// TestWhatIfIsolation is the differential test behind the what-if
// isolation guarantee: however many what-ifs run with whatever knobs,
// the served snapshot (bytes, version, ETag) and the incremental
// engine's summary state are bit-for-bit unchanged.
func TestWhatIfIsolation(t *testing.T) {
	bundles := testCorpus(t, 8, 53)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()
	for _, b := range bundles {
		svc.Notify(b)
	}
	svc.Flush()

	before := httptest.NewRecorder()
	h.ServeHTTP(before, httptest.NewRequest("GET", "/analysis/report?app=k9mail", nil))
	if before.Code != 200 {
		t.Fatalf("baseline report: %d", before.Code)
	}
	svc.mu.Lock()
	st := svc.apps["k9mail"]
	sumBefore := st.inc.SummaryStats()
	verBefore, etagBefore := st.version, st.etag
	svc.mu.Unlock()

	// A spread of overrides, including ones that change the outcome.
	for _, qs := range []string{
		"", "window=5", "fence=1.1", "norm=50", "impacted=90",
		"window=1&fence=6&norm=5&impacted=10",
	} {
		url := "/analysis/whatif?app=k9mail"
		if qs != "" {
			url += "&" + qs
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		if rr.Code != 200 {
			t.Fatalf("whatif %q: %d: %s", qs, rr.Code, rr.Body.String())
		}
		if rr.Header().Get("X-WhatIf") != "true" || rr.Header().Get("Cache-Control") != "no-store" {
			t.Fatalf("whatif %q: missing isolation headers", qs)
		}
	}

	after := httptest.NewRecorder()
	h.ServeHTTP(after, httptest.NewRequest("GET", "/analysis/report?app=k9mail", nil))
	if after.Body.String() != before.Body.String() {
		t.Fatal("what-if runs mutated the served report bytes")
	}
	svc.mu.Lock()
	sumAfter := st.inc.SummaryStats()
	verAfter, etagAfter := st.version, st.etag
	svc.mu.Unlock()
	if verAfter != verBefore || etagAfter != etagBefore {
		t.Fatalf("what-if bumped the snapshot: v%d->%d etag %q->%q",
			verBefore, verAfter, etagBefore, etagAfter)
	}
	if !reflect.DeepEqual(sumBefore, sumAfter) {
		t.Fatalf("what-if touched summary state: %+v -> %+v", sumBefore, sumAfter)
	}
}

// TestWhatIfMatchesBatch: a what-if under overridden knobs returns
// exactly what a batch analyzer configured with those knobs returns.
func TestWhatIfMatchesBatch(t *testing.T) {
	bundles := testCorpus(t, 8, 59)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for _, b := range bundles {
		svc.Notify(b)
	}
	svc.Flush()

	window, fence := 4, 1.5
	got, cfg, ok, err := svc.WhatIf("k9mail", WhatIfParams{WindowEvents: &window, FenceMultiplier: &fence})
	if !ok || err != nil {
		t.Fatalf("what-if failed: ok=%v err=%v", ok, err)
	}
	if cfg.WindowEvents != window || cfg.FenceMultiplier != fence {
		t.Fatalf("effective config did not take the overrides: %+v", cfg)
	}

	want := core.DefaultConfig()
	want.SkipInvalidTraces = true
	want.WindowEvents = window
	want.FenceMultiplier = fence
	batch, err := core.NewAnalyzer(want)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := batch.Analyze(bundles)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	refJSON, _ := json.Marshal(ref)
	if string(gotJSON) != string(refJSON) {
		t.Fatal("what-if report diverged from a batch run with the same knobs")
	}

	if _, _, ok, _ := svc.WhatIf("nope", WhatIfParams{}); ok {
		t.Fatal("what-if of unknown app reported ok")
	}
}

// TestWhatIfEndpointErrors covers the HTTP error contract of
// /analysis/whatif.
func TestWhatIfEndpointErrors(t *testing.T) {
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()
	if c := getCode(h, "/analysis/whatif"); c != 400 {
		t.Fatalf("missing app: %d, want 400", c)
	}
	if c := getCode(h, "/analysis/whatif?app=nope"); c != 404 {
		t.Fatalf("unknown app: %d, want 404", c)
	}
	svc.Notify(testCorpus(t, 2, 61)[0])
	if c := getCode(h, "/analysis/whatif?app=k9mail&window=zero"); c != 400 {
		t.Fatalf("bad override: %d, want 400", c)
	}
	// A config the core rejects (negative fence) is the caller's error.
	if c := getCode(h, "/analysis/whatif?app=k9mail&fence=-3"); c != 422 {
		t.Fatalf("invalid config: %d, want 422", c)
	}
}
