package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/collect"
	"repro/internal/core"
)

// TestETagRoundTrip: the report endpoint serves a strong ETag, answers a
// matching If-None-Match with 304, and bumps the ETag when the corpus
// changes so the same client revalidates back to 200.
func TestETagRoundTrip(t *testing.T) {
	bundles := testCorpus(t, 6, 29)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()
	for _, b := range bundles[:3] {
		svc.Notify(b)
	}
	svc.Flush()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/report?app=k9mail", nil))
	if rr.Code != 200 {
		t.Fatalf("first fetch: %d", rr.Code)
	}
	etag := rr.Header().Get("ETag")
	if etag == "" || etag[0] != '"' {
		t.Fatalf("missing or weak ETag: %q", etag)
	}
	if v := rr.Header().Get("X-Analysis-Version"); v != "1" {
		t.Fatalf("first snapshot version %q, want 1", v)
	}

	req := httptest.NewRequest("GET", "/analysis/report?app=k9mail", nil)
	req.Header.Set("If-None-Match", etag)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != 304 {
		t.Fatalf("revalidation: %d, want 304", rr.Code)
	}
	if rr.Body.Len() != 0 {
		t.Fatalf("304 carried a body: %q", rr.Body.String())
	}

	// Corpus change invalidates: same If-None-Match now misses.
	for _, b := range bundles[3:] {
		svc.Notify(b)
	}
	svc.Flush()
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != 200 {
		t.Fatalf("after corpus change: %d, want 200", rr.Code)
	}
	if got := rr.Header().Get("ETag"); got == etag {
		t.Fatal("ETag did not change with the report")
	}
	if v := rr.Header().Get("X-Analysis-Version"); v != "2" {
		t.Fatalf("second snapshot version %q, want 2", v)
	}
}

// TestLongPollWakesOnInstall: a fresh client parked on ?wait= is woken
// by the next flush and gets the new snapshot; a fresh client whose
// wait expires gets a clean 304.
func TestLongPollWakesOnInstall(t *testing.T) {
	bundles := testCorpus(t, 6, 31)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()
	svc.Notify(bundles[0])
	svc.Flush()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/report?app=k9mail", nil))
	etag := rr.Header().Get("ETag")

	// Timeout path: still fresh after the wait elapses -> 304.
	req := httptest.NewRequest("GET", "/analysis/report?app=k9mail&wait=30ms", nil)
	req.Header.Set("If-None-Match", etag)
	start := time.Now()
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != 304 {
		t.Fatalf("timed-out long-poll: %d, want 304", rr.Code)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("long-poll returned before the wait elapsed")
	}

	// Wake path: park, then install a new snapshot.
	type result struct {
		code    int
		version string
	}
	done := make(chan result, 1)
	go func() {
		req := httptest.NewRequest("GET", "/analysis/report?app=k9mail&wait=5s&version=1", nil)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		done <- result{rr.Code, rr.Header().Get("X-Analysis-Version")}
	}()
	time.Sleep(50 * time.Millisecond) // let the poller park
	svc.Notify(bundles[1])
	svc.Flush()
	select {
	case res := <-done:
		if res.code != 200 || res.version != "2" {
			t.Fatalf("woken long-poll got %d v%s, want 200 v2", res.code, res.version)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll was not woken by the flush")
	}

	// A stale client asking to wait is answered immediately.
	start = time.Now()
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/report?app=k9mail&wait=5s", nil))
	if rr.Code != 200 {
		t.Fatalf("stale long-poll: %d, want immediate 200", rr.Code)
	}
	if time.Since(start) > time.Second {
		t.Fatal("stale long-poll parked instead of answering immediately")
	}
}

// TestSSEConnectAndResume: events flow over a real HTTP connection, and
// a reconnect with Last-Event-ID replays exactly the missed events from
// the ring.
func TestSSEConnectAndResume(t *testing.T) {
	bundles := testCorpus(t, 8, 37)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events := make(chan StreamEvent, 16)
	watchErr := make(chan error, 1)
	go func() {
		watchErr <- WatchEvents(ctx, nil, ts.URL, "", 0, func(ev StreamEvent) error {
			events <- ev
			return nil
		})
	}()
	waitForSubscriber(t, svc) // a fresh client (lastID 0) gets no replay
	svc.Notify(bundles[0])
	svc.Flush()

	var first StreamEvent
	select {
	case first = <-events:
	case <-time.After(5 * time.Second):
		t.Fatal("no SSE event after the first flush")
	}
	if first.Event.App != "k9mail" || first.Event.Version != 1 || first.Event.ETag == "" {
		t.Fatalf("bad first event: %+v", first.Event)
	}
	if first.Event.Summary.TotalTraces != 1 {
		t.Fatalf("event summary has %d traces, want 1", first.Event.Summary.TotalTraces)
	}
	cancel()
	if err := <-watchErr; err != context.Canceled {
		t.Fatalf("watch exit: %v, want context.Canceled", err)
	}

	// Two more flushes while no client is connected...
	svc.Notify(bundles[1])
	svc.Flush()
	svc.Notify(bundles[2])
	svc.Flush()

	// ...then resume after the first event's ID: exactly v2 and v3 replay.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	var replayed []StreamEvent
	err = WatchEvents(ctx2, nil, ts.URL, "", first.ID, func(ev StreamEvent) error {
		replayed = append(replayed, ev)
		if len(replayed) == 2 {
			return fmt.Errorf("got both")
		}
		return nil
	})
	if err == nil || err.Error() != "got both" {
		t.Fatalf("resume watch exit: %v", err)
	}
	if replayed[0].ID != first.ID+1 || replayed[1].ID != first.ID+2 {
		t.Fatalf("replayed IDs %d,%d, want %d,%d", replayed[0].ID, replayed[1].ID, first.ID+1, first.ID+2)
	}
	if replayed[0].Event.Version != 2 || replayed[1].Event.Version != 3 {
		t.Fatalf("replayed versions %d,%d, want 2,3", replayed[0].Event.Version, replayed[1].Event.Version)
	}
}

// TestSlowConsumerNeverBlocksPublish: a subscriber that never drains
// must not stall publish. The queue drops oldest; the newest events
// survive; drops are counted.
func TestSlowConsumerNeverBlocksPublish(t *testing.T) {
	const queue = 4
	h := newHub(16, queue)
	sub, _, _, ok := h.subscribe("", 0)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer h.unsubscribe(sub)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			h.publish(Event{App: "a", Snapshot: Snapshot{Version: int64(i + 1)}})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a slow consumer")
	}
	if got := sub.dropped.Load(); got != 100-queue {
		t.Fatalf("dropped %d events, want %d", got, 100-queue)
	}
	// The surviving queue is the newest `queue` events in order.
	want := int64(100 - queue + 1)
	for i := 0; i < queue; i++ {
		se := <-sub.ch
		if se.ev.Version != want {
			t.Fatalf("queued event %d has version %d, want %d (drop-oldest)", i, se.ev.Version, want)
		}
		want++
	}
}

// TestStreamRace hammers Notify+Flush (publishing), subscribe/drain/
// unsubscribe, and Close concurrently; run under -race this pins the
// hub's locking discipline (no send-on-closed-channel, no data races).
func TestStreamRace(t *testing.T) {
	bundles := testCorpus(t, 8, 41)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour, StreamQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				svc.Notify(bundles[(g*10+i)%len(bundles)])
				svc.Flush()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sub, backlog, _, ok := svc.hub.subscribe("k9mail", uint64(i))
				if !ok {
					return // closed mid-hammer: expected
				}
				_ = backlog
				select {
				case <-sub.ch:
				default:
				}
				svc.hub.unsubscribe(sub)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		svc.Close()
	}()
	wg.Wait()
}

// TestIngestToEventToReport is the acceptance path: a bundle ingested
// through collect.WithIngestHook produces an SSE event whose version
// and ETag match the subsequently fetched report, and the fetched bytes
// are byte-identical to a batch analysis of the same corpus.
func TestIngestToEventToReport(t *testing.T) {
	bundles := testCorpus(t, 5, 43)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv, err := collect.NewServer("127.0.0.1:0", collect.WithIngestHook(svc.Notify))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events := make(chan StreamEvent, 4)
	go func() {
		_ = WatchEvents(ctx, nil, ts.URL, "k9mail", 0, func(ev StreamEvent) error {
			events <- ev
			return nil
		})
	}()

	waitForSubscriber(t, svc)
	client := collect.NewClient(srv.Addr())
	if err := client.Upload(collect.PhoneState{Charging: true, OnWiFi: true}, bundles); err != nil {
		t.Fatal(err)
	}
	svc.Flush()

	var ev StreamEvent
	select {
	case ev = <-events:
	case <-time.After(5 * time.Second):
		t.Fatal("ingest did not surface as an SSE event")
	}

	resp, err := http.Get(ts.URL + "/analysis/report?app=k9mail")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 0, 1<<20)
	buf := make([]byte, 32*1024)
	for {
		n, rerr := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("report fetch: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != ev.Event.ETag {
		t.Fatalf("event ETag %q != fetched ETag %q", ev.Event.ETag, got)
	}
	if got := resp.Header.Get("X-Analysis-Version"); got != fmt.Sprint(ev.Event.Version) {
		t.Fatalf("event version %d != fetched version %s", ev.Event.Version, got)
	}

	cfg := core.DefaultConfig()
	cfg.SkipInvalidTraces = true
	batch, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batch.Analyze(bundles)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	if string(body) != string(wantJSON) {
		t.Fatal("served report bytes diverged from batch analysis")
	}
	if etagFor(wantJSON) != ev.Event.ETag {
		t.Fatal("event ETag is not the content hash of the batch-identical report")
	}
}

// TestHistoryRing: /analysis/report/history returns the bounded ring of
// snapshot summaries, oldest first, evicting beyond HistoryCap.
func TestHistoryRing(t *testing.T) {
	bundles := testCorpus(t, 8, 47)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour, HistoryCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()
	for i := 0; i < 5; i++ {
		svc.Notify(bundles[i])
		svc.Flush()
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/report/history?app=k9mail", nil))
	if rr.Code != 200 {
		t.Fatalf("history: %d", rr.Code)
	}
	var ring []Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring) != 3 {
		t.Fatalf("history length %d, want capped at 3", len(ring))
	}
	for i, snap := range ring {
		if snap.Version != int64(i+3) {
			t.Fatalf("ring[%d] version %d, want %d (oldest evicted first)", i, snap.Version, i+3)
		}
		if snap.ETag == "" || snap.AnalyzedAt == "" {
			t.Fatalf("ring[%d] missing metadata: %+v", i, snap)
		}
		if snap.Summary.TotalTraces != i+3 {
			t.Fatalf("ring[%d] has %d traces, want %d", i, snap.Summary.TotalTraces, i+3)
		}
	}
	if rr := getCode(h, "/analysis/report/history?app=nope"); rr != 404 {
		t.Fatalf("history of unknown app: %d", rr)
	}
	if rr := getCode(h, "/analysis/report/history"); rr != 400 {
		t.Fatalf("history without app: %d", rr)
	}
}

// TestMethodHygiene: all read endpoints reject non-GET with 405 + Allow.
func TestMethodHygiene(t *testing.T) {
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()
	for _, path := range []string{
		"/analysis/apps", "/analysis/report", "/analysis/report/history",
		"/analysis/events", "/analysis/whatif",
	} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("POST", path, nil))
		if rr.Code != 405 {
			t.Fatalf("POST %s: %d, want 405", path, rr.Code)
		}
		if rr.Header().Get("Allow") != "GET" {
			t.Fatalf("POST %s: Allow=%q, want GET", path, rr.Header().Get("Allow"))
		}
	}
}

// waitForSubscriber blocks until at least one SSE client is registered
// on the hub (events published before the subscription would be lost to
// a fresh client, which carries no Last-Event-ID to replay from).
func waitForSubscriber(t *testing.T, svc *Service) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		svc.hub.mu.Lock()
		n := len(svc.hub.subs)
		svc.hub.mu.Unlock()
		if n > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("SSE client never subscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getCode(h http.Handler, path string) int {
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr.Code
}
