package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testCorpus(t *testing.T, users int, seed int64) []*trace.TraceBundle {
	t.Helper()
	app, err := apps.K9Mail()
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, seed)
	cfg.Users = users
	cfg.ImpactedFraction = 0.25
	corpus, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return corpus.Bundles
}

// TestServedReportMatchesBatch: after Notify+Flush, the served JSON is
// byte-identical to a batch analysis of the same bundles under the
// service's effective config (SkipInvalidTraces forced on).
func TestServedReportMatchesBatch(t *testing.T) {
	bundles := testCorpus(t, 8, 11)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for _, b := range bundles {
		svc.Notify(b)
	}
	svc.Flush()

	rr := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/report?app=k9mail", nil))
	if rr.Code != 200 {
		t.Fatalf("report status %d: %s", rr.Code, rr.Body.String())
	}

	cfg := core.DefaultConfig()
	cfg.SkipInvalidTraces = true
	batch, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batch.Analyze(bundles)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(rr.Body.Bytes()), wantJSON) {
		t.Fatal("served report diverged from batch analysis")
	}

	// Text rendering serves the same report.
	rr = httptest.NewRecorder()
	svc.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/report?app=k9mail&format=text", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "EnergyDx diagnosis report for k9mail") {
		t.Fatalf("text report wrong: status %d body %.120s", rr.Code, rr.Body.String())
	}
}

// TestDebounceCoalescesBursts: a burst of arrivals triggers one
// re-analysis, not one per bundle.
func TestDebounceCoalescesBursts(t *testing.T) {
	bundles := testCorpus(t, 6, 13)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for _, b := range bundles {
		svc.Notify(b)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		svc.mu.Lock()
		st := svc.apps["k9mail"]
		analyses := int64(0)
		ready := false
		if st != nil {
			analyses = st.analyses
			ready = st.reportJSON != nil
		}
		svc.mu.Unlock()
		if ready {
			if analyses != 1 {
				t.Fatalf("burst of %d bundles ran %d analyses, want 1", len(bundles), analyses)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("debounced analysis never ran")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A duplicate re-delivery is not a corpus change: no new analysis.
	svc.Notify(bundles[0])
	time.Sleep(150 * time.Millisecond)
	svc.mu.Lock()
	analyses := svc.apps["k9mail"].analyses
	svc.mu.Unlock()
	if analyses != 1 {
		t.Fatalf("duplicate notify triggered re-analysis (%d runs)", analyses)
	}
}

// TestHandlerStatusCodes covers the endpoint error contract.
func TestHandlerStatusCodes(t *testing.T) {
	bundles := testCorpus(t, 4, 17)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		return rr
	}
	if rr := get("/analysis/report"); rr.Code != 400 {
		t.Fatalf("missing app param: %d", rr.Code)
	}
	if rr := get("/analysis/report?app=nope"); rr.Code != 404 {
		t.Fatalf("unknown app: %d", rr.Code)
	}
	svc.Notify(bundles[0])
	if rr := get("/analysis/report?app=k9mail"); rr.Code != 503 {
		t.Fatalf("tracked-but-unanalyzed app: %d, want 503", rr.Code)
	}
	if rr := get("/analysis/flush"); rr.Code != 405 {
		t.Fatalf("GET flush: %d, want 405", rr.Code)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/analysis/flush", nil))
	if rr.Code != 200 {
		t.Fatalf("POST flush: %d", rr.Code)
	}
	if rr := get("/analysis/report?app=k9mail"); rr.Code != 200 {
		t.Fatalf("report after flush: %d", rr.Code)
	}
	rr = get("/analysis/apps")
	if rr.Code != 200 {
		t.Fatalf("apps listing: %d", rr.Code)
	}
	var rows []AppStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &rows); err != nil {
		t.Fatalf("apps listing not JSON: %v", err)
	}
	if len(rows) != 1 || rows[0].App != "k9mail" || rows[0].Traces != 1 {
		t.Fatalf("apps listing wrong: %+v", rows)
	}
	if rows[0].Cache.Hits+rows[0].Cache.Misses != rows[0].Cache.Lookups {
		t.Fatalf("cache stats in listing do not reconcile: %+v", rows[0].Cache)
	}
}

// TestRemoveEndpoint covers bundle retraction end to end: DELETE
// /analysis/remove drops the bundle from the corpus, schedules a
// re-analysis, and the next served report is byte-identical to a batch
// analysis of the remaining bundles. The /analysis/apps listing
// surfaces the per-key summary state alongside.
func TestRemoveEndpoint(t *testing.T) {
	bundles := testCorpus(t, 6, 23)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()
	keys := make([]string, len(bundles))
	for i, b := range bundles {
		svc.Notify(b)
		keys[i] = b.Key
		if keys[i] == "" {
			keys[i] = trace.ContentKey(b)
		}
	}
	svc.Flush()

	do := func(method, path string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(method, path, nil))
		return rr
	}
	if rr := do("GET", "/analysis/remove?app=k9mail&key="+keys[2]); rr.Code != 405 {
		t.Fatalf("GET remove: %d, want 405", rr.Code)
	}
	if rr := do("DELETE", "/analysis/remove?app=k9mail"); rr.Code != 400 {
		t.Fatalf("missing key param: %d, want 400", rr.Code)
	}
	if rr := do("DELETE", "/analysis/remove?app=nope&key="+keys[2]); rr.Code != 404 {
		t.Fatalf("unknown app: %d, want 404", rr.Code)
	}
	if rr := do("DELETE", "/analysis/remove?app=k9mail&key=not-a-content-key"); rr.Code != 404 {
		t.Fatalf("unknown key: %d, want 404", rr.Code)
	}
	rr := do("DELETE", "/analysis/remove?app=k9mail&key="+keys[2])
	if rr.Code != 200 {
		t.Fatalf("remove: %d: %s", rr.Code, rr.Body.String())
	}
	var resp struct {
		Removed bool `json:"removed"`
		Traces  int  `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil || !resp.Removed || resp.Traces != len(bundles)-1 {
		t.Fatalf("remove response wrong (%v): %s", err, rr.Body.String())
	}
	// Retraction marked the app dirty; the flush must serve the shrunken
	// corpus, byte-identical to a batch run without the removed bundle.
	if rr := do("DELETE", "/analysis/remove?app=k9mail&key="+keys[2]); rr.Code != 404 {
		t.Fatalf("double remove: %d, want 404", rr.Code)
	}
	svc.Flush()
	rr = do("GET", "/analysis/report?app=k9mail")
	if rr.Code != 200 {
		t.Fatalf("report after remove: %d", rr.Code)
	}
	remaining := append(append([]*trace.TraceBundle(nil), bundles[:2]...), bundles[3:]...)
	cfg := core.DefaultConfig()
	cfg.SkipInvalidTraces = true
	batch, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batch.Analyze(remaining)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(bytes.TrimSpace(rr.Body.Bytes()), wantJSON) {
		t.Fatal("report after retraction diverged from batch over the remaining bundles")
	}

	rr = do("GET", "/analysis/apps")
	var rows []AppStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &rows); err != nil {
		t.Fatalf("apps listing not JSON: %v", err)
	}
	if len(rows) != 1 || rows[0].Traces != len(bundles)-1 {
		t.Fatalf("apps listing wrong after remove: %+v", rows)
	}
	sum := rows[0].Summaries
	if sum.Keys == 0 || sum.Values == 0 || sum.Nodes == 0 || sum.Bytes == 0 {
		t.Fatalf("summary stats missing from listing: %+v", sum)
	}
	if sum.PendingMutations != 0 {
		t.Fatalf("flushed corpus still has %d pending mutations", sum.PendingMutations)
	}
}

// TestEndToEndIngestToServe wires the real collection server to the
// serving layer through WithIngestHook and drives it with the real
// upload client: uploaded bundles must surface in the served report,
// and re-uploads must not.
func TestEndToEndIngestToServe(t *testing.T) {
	bundles := testCorpus(t, 5, 19)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv, err := collect.NewServer("127.0.0.1:0", collect.WithIngestHook(svc.Notify))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := collect.NewClient(srv.Addr())
	state := collect.PhoneState{Charging: true, OnWiFi: true}
	if err := client.Upload(state, bundles); err != nil {
		t.Fatal(err)
	}
	if err := client.Upload(state, bundles); err != nil { // idempotent re-upload
		t.Fatal(err)
	}
	svc.Flush()

	rr := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/report?app=k9mail", nil))
	if rr.Code != 200 {
		t.Fatalf("report status %d: %s", rr.Code, rr.Body.String())
	}
	var report core.Report
	if err := json.Unmarshal(rr.Body.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if report.TotalTraces != len(bundles) {
		t.Fatalf("served %d traces, want %d (re-upload must not inflate the corpus)",
			report.TotalTraces, len(bundles))
	}
}
