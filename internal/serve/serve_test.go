package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testCorpus(t *testing.T, users int, seed int64) []*trace.TraceBundle {
	t.Helper()
	app, err := apps.K9Mail()
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, seed)
	cfg.Users = users
	cfg.ImpactedFraction = 0.25
	corpus, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return corpus.Bundles
}

// TestServedReportMatchesBatch: after Notify+Flush, the served JSON is
// byte-identical to a batch analysis of the same bundles under the
// service's effective config (SkipInvalidTraces forced on).
func TestServedReportMatchesBatch(t *testing.T) {
	bundles := testCorpus(t, 8, 11)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for _, b := range bundles {
		svc.Notify(b)
	}
	svc.Flush()

	rr := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/report?app=k9mail", nil))
	if rr.Code != 200 {
		t.Fatalf("report status %d: %s", rr.Code, rr.Body.String())
	}

	cfg := core.DefaultConfig()
	cfg.SkipInvalidTraces = true
	batch, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batch.Analyze(bundles)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(rr.Body.Bytes()), wantJSON) {
		t.Fatal("served report diverged from batch analysis")
	}

	// Text rendering serves the same report.
	rr = httptest.NewRecorder()
	svc.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/report?app=k9mail&format=text", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "EnergyDx diagnosis report for k9mail") {
		t.Fatalf("text report wrong: status %d body %.120s", rr.Code, rr.Body.String())
	}
}

// TestDebounceCoalescesBursts: a burst of arrivals triggers one
// re-analysis, not one per bundle.
func TestDebounceCoalescesBursts(t *testing.T) {
	bundles := testCorpus(t, 6, 13)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for _, b := range bundles {
		svc.Notify(b)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		svc.mu.Lock()
		st := svc.apps["k9mail"]
		analyses := int64(0)
		ready := false
		if st != nil {
			analyses = st.analyses
			ready = st.reportJSON != nil
		}
		svc.mu.Unlock()
		if ready {
			if analyses != 1 {
				t.Fatalf("burst of %d bundles ran %d analyses, want 1", len(bundles), analyses)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("debounced analysis never ran")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A duplicate re-delivery is not a corpus change: no new analysis.
	svc.Notify(bundles[0])
	time.Sleep(150 * time.Millisecond)
	svc.mu.Lock()
	analyses := svc.apps["k9mail"].analyses
	svc.mu.Unlock()
	if analyses != 1 {
		t.Fatalf("duplicate notify triggered re-analysis (%d runs)", analyses)
	}
}

// TestHandlerStatusCodes covers the endpoint error contract.
func TestHandlerStatusCodes(t *testing.T) {
	bundles := testCorpus(t, 4, 17)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		return rr
	}
	if rr := get("/analysis/report"); rr.Code != 400 {
		t.Fatalf("missing app param: %d", rr.Code)
	}
	if rr := get("/analysis/report?app=nope"); rr.Code != 404 {
		t.Fatalf("unknown app: %d", rr.Code)
	}
	svc.Notify(bundles[0])
	if rr := get("/analysis/report?app=k9mail"); rr.Code != 503 {
		t.Fatalf("tracked-but-unanalyzed app: %d, want 503", rr.Code)
	}
	if rr := get("/analysis/flush"); rr.Code != 405 {
		t.Fatalf("GET flush: %d, want 405", rr.Code)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/analysis/flush", nil))
	if rr.Code != 200 {
		t.Fatalf("POST flush: %d", rr.Code)
	}
	if rr := get("/analysis/report?app=k9mail"); rr.Code != 200 {
		t.Fatalf("report after flush: %d", rr.Code)
	}
	rr = get("/analysis/apps")
	if rr.Code != 200 {
		t.Fatalf("apps listing: %d", rr.Code)
	}
	var rows []appSummary
	if err := json.Unmarshal(rr.Body.Bytes(), &rows); err != nil {
		t.Fatalf("apps listing not JSON: %v", err)
	}
	if len(rows) != 1 || rows[0].App != "k9mail" || rows[0].Traces != 1 {
		t.Fatalf("apps listing wrong: %+v", rows)
	}
	if rows[0].Cache.Hits+rows[0].Cache.Misses != rows[0].Cache.Lookups {
		t.Fatalf("cache stats in listing do not reconcile: %+v", rows[0].Cache)
	}
}

// TestEndToEndIngestToServe wires the real collection server to the
// serving layer through WithIngestHook and drives it with the real
// upload client: uploaded bundles must surface in the served report,
// and re-uploads must not.
func TestEndToEndIngestToServe(t *testing.T) {
	bundles := testCorpus(t, 5, 19)
	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv, err := collect.NewServer("127.0.0.1:0", collect.WithIngestHook(svc.Notify))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := collect.NewClient(srv.Addr())
	state := collect.PhoneState{Charging: true, OnWiFi: true}
	if err := client.Upload(state, bundles); err != nil {
		t.Fatal(err)
	}
	if err := client.Upload(state, bundles); err != nil { // idempotent re-upload
		t.Fatal(err)
	}
	svc.Flush()

	rr := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/report?app=k9mail", nil))
	if rr.Code != 200 {
		t.Fatalf("report status %d: %s", rr.Code, rr.Body.String())
	}
	var report core.Report
	if err := json.Unmarshal(rr.Body.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if report.TotalTraces != len(bundles) {
		t.Fatalf("served %d traces, want %d (re-upload must not inflate the corpus)",
			report.TotalTraces, len(bundles))
	}
}
