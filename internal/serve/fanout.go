package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// Fanout is the read side of a sharded deployment: one serving layer
// per ingest shard (each owning its shard's apps and incremental
// analyzers), with the HTTP surface re-unified here. App-scoped
// endpoints delegate to the owning service; fleet-scoped endpoints
// merge across every service. Ownership needs no routing table: each
// app is tracked by exactly one service (the ingest router partitions
// by app ID), so the owner is the service that knows the app.
type Fanout struct {
	svcs     []*Service
	handlers []http.Handler
}

// NewFanout builds the read fan-out over per-shard services.
func NewFanout(svcs ...*Service) (*Fanout, error) {
	if len(svcs) == 0 {
		return nil, fmt.Errorf("serve: fanout needs at least one service")
	}
	f := &Fanout{svcs: svcs}
	for _, s := range svcs {
		f.handlers = append(f.handlers, s.Handler())
	}
	return f, nil
}

// Services returns the per-shard services, in shard order.
func (f *Fanout) Services() []*Service { return f.svcs }

// ownerOf finds the service tracking an app (-1 when none does).
func (f *Fanout) ownerOf(app string) int {
	for i, s := range f.svcs {
		if _, _, ok := s.AppReport(app); ok {
			return i
		}
	}
	return -1
}

// Statuses merges every shard's app statuses, sorted by app ID.
func (f *Fanout) Statuses() []AppStatus {
	var out []AppStatus
	for _, s := range f.svcs {
		out = append(out, s.Statuses()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// Flush synchronously re-analyzes dirty apps on every shard.
func (f *Fanout) Flush() {
	for _, s := range f.svcs {
		s.Flush()
	}
}

// OldestDirtyAge returns the worst report staleness across shards.
func (f *Fanout) OldestDirtyAge() time.Duration {
	var worst time.Duration
	for _, s := range f.svcs {
		if age := s.OldestDirtyAge(); age > worst {
			worst = age
		}
	}
	return worst
}

// Close closes every shard's service.
func (f *Fanout) Close() {
	for _, s := range f.svcs {
		s.Close()
	}
}

// Handler returns the unified /analysis/ surface. App-scoped requests
// (?app=X) are delegated verbatim to the owning shard's handler, so
// their semantics — ETag validation, long-poll, what-if, diff,
// retraction — are exactly the single-service ones. /analysis/events
// is the one endpoint without a sharded equivalent (one SSE stream
// cannot interleave N independent version sequences losslessly) and
// answers 501; per-shard streams remain available on the shards.
func (f *Fanout) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analysis/apps", func(w http.ResponseWriter, req *http.Request) {
		if !requireGET(w, req) {
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(f.Statuses())
	})
	mux.HandleFunc("/analysis/flush", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		f.Flush()
		fmt.Fprintln(w, "flushed")
	})
	mux.HandleFunc("/analysis/events", func(w http.ResponseWriter, req *http.Request) {
		http.Error(w, "event stream is per-shard in a sharded deployment", http.StatusNotImplemented)
	})
	delegate := func(w http.ResponseWriter, req *http.Request) {
		app := req.URL.Query().Get("app")
		if app == "" {
			http.Error(w, "missing ?app= parameter", http.StatusBadRequest)
			return
		}
		i := f.ownerOf(app)
		if i < 0 {
			http.Error(w, "unknown app "+app, http.StatusNotFound)
			return
		}
		f.handlers[i].ServeHTTP(w, req)
	}
	mux.HandleFunc("/analysis/report", delegate)
	mux.HandleFunc("/analysis/report/history", delegate)
	mux.HandleFunc("/analysis/whatif", delegate)
	mux.HandleFunc("/analysis/diff", delegate)
	mux.HandleFunc("/analysis/remove", delegate)
	return mux
}
