// Event stream: a broadcast hub fanning report-update events out to SSE
// clients at /analysis/events.
//
// Backpressure contract: publish never blocks the flush path. Every
// subscriber has a bounded queue; when it is full the OLDEST queued
// event is dropped in favor of the new one, because the newest snapshot
// supersedes the ones before it (report updates are state notifications,
// not a ledger). Clients detect drops from gaps in the monotonically
// increasing event-ID sequence and resume missed events — as far as the
// bounded replay ring reaches — with the standard SSE Last-Event-ID
// header. A resume past the ring's horizon is answered with a
// "resume-gap" comment so the client knows to refetch current state.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

var (
	mStreamEvents  = obs.Default.Counter("serve_stream_events_total", "report-update events published to the SSE hub")
	mStreamDropped = obs.Default.Counter("serve_stream_dropped_total", "events dropped from slow SSE clients' queues (drop-oldest)")
	gStreamClients = obs.Default.Gauge("serve_stream_clients", "SSE clients currently connected to /analysis/events")
)

// Event is one report-update notification: which app flushed, the new
// snapshot's version and ETag, and the delta summary an operator (or
// the dashboard) renders without refetching the full report.
type Event struct {
	App string `json:"app"`
	Snapshot
}

// streamEvent pairs an Event with its hub-assigned sequence ID (the SSE
// "id:" field).
type streamEvent struct {
	id uint64
	ev Event
}

// subscriber is one connected stream client.
type subscriber struct {
	app     string // filter: only events for this app ("" = all)
	ch      chan streamEvent
	dropped atomic.Uint64
}

// hub fans events out to subscribers and retains a bounded replay ring
// for Last-Event-ID resume.
type hub struct {
	mu        sync.Mutex
	nextID    uint64
	ring      []streamEvent
	replayCap int
	queueCap  int
	subs      map[*subscriber]struct{}
	closed    bool
}

func newHub(replayCap, queueCap int) *hub {
	return &hub{
		replayCap: replayCap,
		queueCap:  queueCap,
		subs:      make(map[*subscriber]struct{}),
	}
}

// publish assigns the next event ID, appends to the replay ring, and
// offers the event to every matching subscriber. It never blocks: a
// full subscriber queue drops its oldest event. Safe to call from the
// flush path.
func (h *hub) publish(ev Event) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0
	}
	h.nextID++
	se := streamEvent{id: h.nextID, ev: ev}
	if len(h.ring) == h.replayCap {
		copy(h.ring, h.ring[1:])
		h.ring[len(h.ring)-1] = se
	} else {
		h.ring = append(h.ring, se)
	}
	mStreamEvents.Inc()
	for s := range h.subs {
		if s.app != "" && s.app != ev.App {
			continue
		}
		// Drop-oldest, never block: this loop terminates because the hub
		// is the only sender — once we pop an element (or the consumer
		// does), the send succeeds.
		for sent := false; !sent; {
			select {
			case s.ch <- se:
				sent = true
			default:
				select {
				case <-s.ch:
					s.dropped.Add(1)
					mStreamDropped.Inc()
				default:
					// Consumer drained it first; retry the send.
				}
			}
		}
	}
	return h.nextID
}

// subscribe registers a new client and returns the replayable backlog
// after lastID (filtered by app), plus the oldest ID still in the ring
// so the caller can detect a resume gap. ok is false once the hub is
// closed.
func (h *hub) subscribe(app string, lastID uint64) (sub *subscriber, backlog []streamEvent, oldest uint64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil, 0, false
	}
	sub = &subscriber{app: app, ch: make(chan streamEvent, h.queueCap)}
	h.subs[sub] = struct{}{}
	if len(h.ring) > 0 {
		oldest = h.ring[0].id
	}
	if lastID > 0 {
		for _, se := range h.ring {
			if se.id > lastID && (app == "" || se.ev.App == app) {
				backlog = append(backlog, se)
			}
		}
	}
	return sub, backlog, oldest, true
}

func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, s)
}

// close terminates every subscriber (they observe a closed channel).
// Publishing and closing both happen under h.mu, so a send on a closed
// channel is impossible.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		close(s.ch)
		delete(h.subs, s)
	}
}

// lastEventID extracts the client's resume position: the standard
// Last-Event-ID header (set by browser EventSource on reconnect) or the
// ?last_event_id= query parameter (curl-friendly).
func lastEventID(req *http.Request) uint64 {
	raw := req.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = req.URL.Query().Get("last_event_id")
	}
	if raw == "" {
		return 0
	}
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// writeSSE renders one event in the text/event-stream framing.
func writeSSE(w io.Writer, se streamEvent) error {
	data, err := json.Marshal(se.ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: report\ndata: %s\n\n", se.id, data)
	return err
}

// serveEvents is the GET /analysis/events SSE endpoint. Query
// parameters: ?app=X filters to one app; ?last_event_id=N resumes
// (equivalent to the Last-Event-ID header).
func (s *Service) serveEvents(w http.ResponseWriter, req *http.Request) {
	if !requireGET(w, req) {
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	lastID := lastEventID(req)
	sub, backlog, oldest, ok := s.hub.subscribe(req.URL.Query().Get("app"), lastID)
	if !ok {
		http.Error(w, "service closed", http.StatusServiceUnavailable)
		return
	}
	defer s.hub.unsubscribe(sub)
	gStreamClients.Inc()
	defer gStreamClients.Dec()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, "retry: 2000\n\n")
	if lastID > 0 && oldest > lastID+1 {
		// The ring no longer reaches the client's position: anything
		// between lastID and the ring is unrecoverable here. Tell the
		// client so it refetches current snapshots before trusting the
		// stream's deltas.
		fmt.Fprint(w, ": resume-gap\n\n")
	}
	for _, se := range backlog {
		if writeSSE(w, se) != nil {
			return
		}
	}
	fl.Flush()

	heartbeat := time.NewTicker(s.cfg.StreamHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case se, open := <-sub.ch:
			if !open {
				return // service closed
			}
			if writeSSE(w, se) != nil {
				return
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-req.Context().Done():
			return
		}
	}
}

// StreamEvent is one decoded server-sent event, as delivered to a
// WatchEvents callback.
type StreamEvent struct {
	ID    uint64
	Event Event
}

// WatchEvents connects to baseURL's /analysis/events stream (optionally
// filtered to one app) and invokes fn for every report event until ctx
// is canceled, the connection breaks, or fn returns an error. lastID
// resumes after a previously seen event ID. It returns ctx.Err() on
// cancellation, fn's error verbatim, or the transport error — the
// caller owns the reconnect policy (energydx -watch reconnects with the
// last delivered ID).
func WatchEvents(ctx context.Context, client *http.Client, baseURL, app string, lastID uint64, fn func(StreamEvent) error) error {
	if client == nil {
		client = http.DefaultClient
	}
	u := strings.TrimSuffix(baseURL, "/") + "/analysis/events"
	if app != "" {
		u += "?app=" + url.QueryEscape(app)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: event stream %s: status %s", u, resp.Status)
	}

	// Minimal SSE parser: accumulate id/event/data fields, dispatch on
	// each blank line. Comment lines (":" prefix) are heartbeats.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		id    uint64
		kind  string
		data  strings.Builder
		seen  bool
		flush = func() error {
			defer func() { id, kind, seen = 0, "", false; data.Reset() }()
			if !seen || kind != "report" {
				return nil
			}
			var ev Event
			if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
				return fmt.Errorf("serve: bad stream event: %w", err)
			}
			return fn(StreamEvent{ID: id, Event: ev})
		}
	)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, ":"):
			// comment / heartbeat
		case strings.HasPrefix(line, "id:"):
			id, _ = strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64)
			seen = true
		case strings.HasPrefix(line, "event:"):
			kind = strings.TrimSpace(line[6:])
			seen = true
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimSpace(line[5:]))
			seen = true
		case strings.HasPrefix(line, "retry:"):
			// server reconnect hint; the caller owns reconnect policy
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return io.EOF // server closed the stream
}
