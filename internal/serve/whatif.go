// Read-only what-if analysis: re-run the diagnosis over an app's
// current corpus under overridden knobs without touching serving state.
//
// Isolation guarantee: a what-if builds a FRESH core.Analyzer over a
// point-in-time snapshot of the app's bundle list
// (IncrementalAnalyzer.Bundles). It shares no caches, no per-key
// summaries, and no report storage with the serving path, so the served
// snapshot (version, ETag, bytes) and the incremental engine's summary
// state are bit-for-bit unaffected — however many what-ifs run, with
// whatever parameters. The differential test pins this.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
)

// WhatIfParams are the per-request analysis knobs a what-if may
// override; nil fields inherit the serving configuration.
type WhatIfParams struct {
	// WindowEvents is the manifestation-window half-width (Step 5).
	WindowEvents *int
	// FenceMultiplier is the Step-4 IQR fence multiplier.
	FenceMultiplier *float64
	// NormBasePercentile is the Step-3 normalization base percentile.
	NormBasePercentile *float64
	// DeveloperImpactPercent is the Step-5 impacted-percentage target.
	DeveloperImpactPercent *float64
}

// apply overlays the overrides on a copy of the base configuration.
func (p WhatIfParams) apply(cfg core.Config) core.Config {
	if p.WindowEvents != nil {
		cfg.WindowEvents = *p.WindowEvents
	}
	if p.FenceMultiplier != nil {
		cfg.FenceMultiplier = *p.FenceMultiplier
	}
	if p.NormBasePercentile != nil {
		cfg.NormBasePercentile = *p.NormBasePercentile
	}
	if p.DeveloperImpactPercent != nil {
		cfg.DeveloperImpactPercent = *p.DeveloperImpactPercent
	}
	return cfg
}

// WhatIf runs a read-only what-if analysis of the app's current corpus
// under the overridden knobs and returns the resulting report together
// with the effective configuration. The app's served snapshot and
// incremental state are untouched. ok is false when the app is unknown.
func (s *Service) WhatIf(app string, p WhatIfParams) (report *core.Report, cfg core.Config, ok bool, err error) {
	s.mu.Lock()
	st, ok := s.apps[app]
	s.mu.Unlock()
	if !ok {
		return nil, core.Config{}, false, nil
	}
	bundles := st.inc.Bundles() // point-in-time snapshot, own slice
	cfg = p.apply(s.cfg.Analysis)
	cfg.SkipInvalidTraces = true
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return nil, cfg, true, fmt.Errorf("serve: what-if config: %w", err)
	}
	report, err = analyzer.Analyze(bundles)
	if err != nil {
		return nil, cfg, true, fmt.Errorf("serve: what-if analysis: %w", err)
	}
	mWhatIfs.Inc()
	return report, cfg, true, nil
}

// parseWhatIfQuery decodes the what-if override parameters shared by
// the JSON endpoint and the dashboard form: window, fence, norm,
// impacted. Absent or empty parameters inherit the serving config.
func parseWhatIfQuery(get func(string) string) (WhatIfParams, error) {
	var p WhatIfParams
	if v := get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return p, fmt.Errorf("bad window=%q", v)
		}
		p.WindowEvents = &n
	}
	float := func(name string, dst **float64) error {
		v := get(name)
		if v == "" {
			return nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("bad %s=%q", name, v)
		}
		*dst = &f
		return nil
	}
	if err := float("fence", &p.FenceMultiplier); err != nil {
		return p, err
	}
	if err := float("norm", &p.NormBasePercentile); err != nil {
		return p, err
	}
	if err := float("impacted", &p.DeveloperImpactPercent); err != nil {
		return p, err
	}
	return p, nil
}

// ParseWhatIfParams decodes what-if overrides from query-style getters
// (window, fence, norm, impacted) — exported for the dashboard's form
// handler so both surfaces accept identical parameters.
func ParseWhatIfParams(get func(string) string) (WhatIfParams, error) {
	return parseWhatIfQuery(get)
}

// serveWhatIf is the GET /analysis/whatif endpoint: the app's current
// corpus re-analyzed under ?window=&fence=&norm=&impacted= overrides,
// returned as JSON with an X-WhatIf marker header. Serving state is
// untouched; responses are never cacheable (no ETag — the result is
// not the served snapshot).
func (s *Service) serveWhatIf(w http.ResponseWriter, req *http.Request) {
	if !requireGET(w, req) {
		return
	}
	q := req.URL.Query()
	app := q.Get("app")
	if app == "" {
		http.Error(w, "missing ?app= parameter", http.StatusBadRequest)
		return
	}
	params, err := parseWhatIfQuery(q.Get)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	report, cfg, ok, err := s.WhatIf(app, params)
	if !ok {
		http.Error(w, "unknown app "+app, http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("X-WhatIf", "true")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(struct {
		App    string       `json:"app"`
		Config whatIfConfig `json:"config"`
		Report *core.Report `json:"report"`
	}{App: app, Config: whatIfConfigOf(cfg), Report: report})
}

// whatIfConfig is the echoed effective-knob subset of a what-if run.
type whatIfConfig struct {
	WindowEvents           int     `json:"windowEvents"`
	FenceMultiplier        float64 `json:"fenceMultiplier"`
	NormBasePercentile     float64 `json:"normBasePercentile"`
	DeveloperImpactPercent float64 `json:"developerImpactPercent"`
}

func whatIfConfigOf(cfg core.Config) whatIfConfig {
	return whatIfConfig{
		WindowEvents:           cfg.WindowEvents,
		FenceMultiplier:        cfg.FenceMultiplier,
		NormBasePercentile:     cfg.NormBasePercentile,
		DeveloperImpactPercent: cfg.DeveloperImpactPercent,
	}
}
