package serve

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/revision"
	"repro/internal/trace"
)

// diffTestService installs two report versions of k9mail: a clean base
// version and a regression version from a generated revision chain.
// Returns the service and the chain's ground-truth culprit.
func diffTestService(t *testing.T) (*Service, trace.EventKey) {
	t.Helper()
	app, err := apps.K9Mail()
	if err != nil {
		t.Fatal(err)
	}
	// Seed 2 draws a culprit the small test corpus actually exercises
	// (checkMail fires in every session; list taps need longer sessions).
	ccfg := revision.ChainConfig{App: app, Versions: 2, Seed: 2, RegressionAt: 1, Kind: revision.KindHold}
	chain, err := revision.GenerateChain(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	corpora, err := revision.ChainCorpora(chain, ccfg, revision.CorpusConfig{Users: 6, Seed: 5, BrowsePhases: 4, Cached: true})
	if err != nil {
		t.Fatal(err)
	}

	svc, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	for _, b := range corpora[0] {
		svc.Notify(b)
	}
	svc.Flush() // version 1: the baseline

	// Sync the corpus to the candidate version: add its bundles, retract
	// the baseline's bundles that did not survive the edit.
	live := make(map[string]bool, len(corpora[1]))
	for _, b := range corpora[1] {
		live[trace.ContentKey(b)] = true
		svc.Notify(b)
	}
	for _, b := range corpora[0] {
		if key := trace.ContentKey(b); !live[key] {
			svc.Remove("k9mail", key)
		}
	}
	svc.Flush() // version 2: the regressed candidate
	return svc, chain.Culprit
}

// TestDiffVersionsEndpoint: /analysis/diff compares two retained report
// versions; with the versions omitted it diffs the latest hop, and the
// revision report's top suspect is the chain's ground-truth culprit.
func TestDiffVersionsEndpoint(t *testing.T) {
	svc, culprit := diffTestService(t)

	rr := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/diff?app=k9mail", nil))
	if rr.Code != 200 {
		t.Fatalf("diff status %d: %s", rr.Code, rr.Body.String())
	}
	var vd VersionDiff
	if err := json.Unmarshal(rr.Body.Bytes(), &vd); err != nil {
		t.Fatal(err)
	}
	if vd.App != "k9mail" || vd.From.Version != 1 || vd.To.Version != 2 {
		t.Fatalf("diff endpoints: app=%s from=%d to=%d, want k9mail 1->2", vd.App, vd.From.Version, vd.To.Version)
	}
	if vd.Diff == nil || vd.Diff.Empty() {
		t.Fatal("regression hop produced an empty diff")
	}
	top, ok := vd.Diff.TopSuspect()
	if !ok || top.Key != culprit {
		t.Fatalf("top suspect = %v (ok=%v), want culprit %v", top.Key, ok, culprit)
	}

	// Explicit versions select the same pair.
	rr = httptest.NewRecorder()
	svc.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/diff?app=k9mail&from=1&to=2", nil))
	if rr.Code != 200 {
		t.Fatalf("explicit diff status %d: %s", rr.Code, rr.Body.String())
	}
	var explicit VersionDiff
	if err := json.Unmarshal(rr.Body.Bytes(), &explicit); err != nil {
		t.Fatal(err)
	}
	if explicit.From.Version != vd.From.Version || explicit.To.Version != vd.To.Version {
		t.Fatalf("explicit selection diverged: %+v", explicit)
	}
}

// TestDiffVersionsErrors pins the endpoint's failure modes.
func TestDiffVersionsErrors(t *testing.T) {
	svc, _ := diffTestService(t)
	cases := []struct {
		name string
		url  string
		code int
	}{
		{"missing-app", "/analysis/diff", 400},
		{"unknown-app", "/analysis/diff?app=nope", 404},
		{"bad-version", "/analysis/diff?app=k9mail&from=zero", 400},
		{"negative-version", "/analysis/diff?app=k9mail&to=-1", 400},
		{"unretained-version", "/analysis/diff?app=k9mail&from=99", 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := httptest.NewRecorder()
			svc.Handler().ServeHTTP(rr, httptest.NewRequest("GET", tc.url, nil))
			if rr.Code != tc.code {
				t.Fatalf("status %d, want %d: %s", rr.Code, tc.code, rr.Body.String())
			}
		})
	}

	// A single-version app cannot be diffed yet.
	single, err := New(Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	for _, b := range testCorpus(t, 4, 7) {
		single.Notify(b)
	}
	single.Flush()
	rr := httptest.NewRecorder()
	single.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/analysis/diff?app=k9mail", nil))
	if rr.Code != 404 {
		t.Fatalf("single-version diff status %d, want 404: %s", rr.Code, rr.Body.String())
	}
}
