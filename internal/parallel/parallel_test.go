package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersClamping(t *testing.T) {
	cases := []struct {
		requested, n, want int
	}{
		{1, 10, 1},
		{4, 10, 4},
		{16, 4, 4},                             // never more workers than items
		{3, 0, 1},                              // degenerate item count still yields one worker
		{-5, 8, min(runtime.GOMAXPROCS(0), 8)}, // negative = auto
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
	if got := Workers(0, 1000); got != min(runtime.GOMAXPROCS(0), 1000) {
		t.Errorf("Workers(0, 1000) = %d, want GOMAXPROCS", got)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 8, 0} {
		out, err := Map(workers, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(out), n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(i int) (string, error) { return "x", nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("got %d results for empty input", len(out))
	}
}

// TestForEachFirstErrorSemantics injects errors at several indices and
// asserts the pool reports the lowest-index one under every worker
// count, matching a serial loop. Run under -race this also exercises
// the pool's synchronization around the shared error slice.
func TestForEachFirstErrorSemantics(t *testing.T) {
	const n = 64
	failAt := map[int]bool{7: true, 23: true, 55: true}
	for _, workers := range []int{1, 2, 8, 0} {
		err := ForEach(workers, n, func(i int) error {
			if failAt[i] {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected an error", workers)
		}
		if got, want := err.Error(), "item 7 failed"; got != want {
			t.Fatalf("workers=%d: got error %q, want %q (lowest index)", workers, got, want)
		}
	}
}

// TestForEachRunsEverythingOnError verifies the parallel pool does not
// abandon later items when an early one fails (errors are aggregated,
// not short-circuited, so which error surfaces stays deterministic).
func TestForEachRunsEverythingOnError(t *testing.T) {
	const n = 50
	var ran atomic.Int64
	err := ForEach(4, n, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d of %d items", got, n)
	}
}

// TestForEachBoundsConcurrency checks that at most `workers` goroutines
// execute fn at any instant.
func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := ForEach(workers, 200, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent executions, want <= %d", p, workers)
	}
}

// TestMapSharedWriteRace writes from every item into a shared slice
// (each item its own slot) — the supported sharing pattern — and is
// meaningful mainly under -race.
func TestMapSharedWriteRace(t *testing.T) {
	const n = 256
	shared := make([]int, n)
	_, err := Map(8, n, func(i int) (struct{}, error) {
		shared[i] = i
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range shared {
		if v != i {
			t.Fatalf("shared[%d] = %d", i, v)
		}
	}
}
