// Package parallel is the shared deterministic fan-out layer used by the
// analysis pipeline, the experiment sweeps and the CLI tools: a bounded,
// order-preserving worker pool over an index space.
//
// Determinism contract: results are written to the slot of their input
// index, so Map output order always matches input order regardless of
// worker count, and the returned error is always the one belonging to
// the lowest failing index — the same error a serial left-to-right loop
// would surface. Callers therefore get byte-identical results at any
// parallelism as long as each item's work depends only on its own index
// (no shared mutable state, per-item RNG seeds).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Pool saturation metrics: every ForEach/Map fan-out in the process
// (analysis steps, experiment sweeps, shutdown dumps) reports through
// these, so /metrics answers "is the pool the bottleneck" live.
var (
	mTasks    = obs.Default.Counter("parallel_tasks_total", "tasks executed by the worker pool")
	gInflight = obs.Default.Gauge("parallel_tasks_inflight", "tasks currently executing")
	gQueued   = obs.Default.Gauge("parallel_queue_depth", "tasks accepted by ForEach/Map but not yet started")
	hTask     = obs.Default.Histogram("parallel_task_seconds", "per-task latency through the pool", nil)
)

// instrument wraps one task execution with the pool metrics.
func instrument(fn func(i int) error, i int) error {
	gQueued.Dec()
	gInflight.Inc()
	start := time.Now()
	err := fn(i)
	hTask.Observe(time.Since(start).Seconds())
	gInflight.Dec()
	mTasks.Inc()
	return err
}

// Workers resolves a requested worker count against n items: a request
// of 0 (or any non-positive value) means one worker per available CPU
// (GOMAXPROCS), and the result is clamped to [1, n] so a pool never
// spawns idle goroutines.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn over the index space [0, n) with the given number of
// workers (0 = GOMAXPROCS) and returns the results in input order. On
// error it returns the error of the lowest failing index, matching the
// first-error semantics of a serial loop.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach runs fn over the index space [0, n) with the given number of
// workers (0 = GOMAXPROCS). With one worker it degenerates to a plain
// serial loop that stops at the first error; with more, every item runs
// and the error of the lowest failing index is returned.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		// Serial fast path: skip the per-task metric plumbing (two gauge
		// swings, a histogram observation, two clock reads per item) that
		// made a single-worker ForEach measurably slower than the bare
		// loop it degenerates to. The task counter still advances — in
		// one batch per call instead of one increment per item — so the
		// pool's throughput metric stays live at parallelism 1.
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				mTasks.Add(int64(i + 1))
				return err
			}
		}
		mTasks.Add(int64(n))
		return nil
	}
	gQueued.Add(float64(n))

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = instrument(fn, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
