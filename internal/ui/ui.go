// Package ui is the embedded operator dashboard of the EnergyDx serving
// layer: a zero-dependency web UI (stdlib embed.FS + html/template, a
// hand-rolled SSE client, inline SVG charts — no JS framework, no CDN)
// mounted on the debug mux at /ui/.
//
// Pages:
//
//	/ui/            fleet overview: tracked apps with snapshot versions,
//	                dirty state, summary memory, quarantine and ingest
//	                counters from the obs registry; rows update live
//	                from the /analysis/events SSE stream
//	/ui/app?app=X   per-app drill-down: power-vs-rank charts with
//	                manifestation points, window membership and the
//	                Step-4 amplitude fence, the impacted-trace table,
//	                snapshot history, cache/summary stats, and what-if
//	                knobs (window size n, fence multiplier, impacted
//	                percentage target) that re-run a READ-ONLY analysis
//	                without touching serving state
//	/ui/diff?app=X  version diff: the energy revision report between two
//	                retained report versions (per-key power deltas,
//	                newly-manifesting points, culprit-ranked suspects),
//	                linked from each history row
//
// The dashboard only reads: every handler is GET, and the what-if path
// goes through serve.Service.WhatIf, whose isolation guarantee (fresh
// analyzer over a bundle snapshot, no shared caches) is differentially
// tested in the serve package.
package ui

import (
	"embed"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

//go:embed templates/*.html
var tmplFS embed.FS

// Server renders the dashboard over a serving layer and a metrics
// registry.
type Server struct {
	svc  *serve.Service
	reg  *obs.Registry
	tmpl *template.Template
}

// New parses the embedded templates and builds the dashboard server.
// reg supplies the overview's live counters (nil means obs.Default).
func New(svc *serve.Service, reg *obs.Registry) (*Server, error) {
	if reg == nil {
		reg = obs.Default
	}
	tmpl, err := template.ParseFS(tmplFS, "templates/*.html")
	if err != nil {
		return nil, fmt.Errorf("ui: templates: %w", err)
	}
	return &Server{svc: svc, reg: reg, tmpl: tmpl}, nil
}

// Handler returns the /ui/ handler; mount it at the mux root (paths are
// absolute).
func (u *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ui", u.serveOverview)
	mux.HandleFunc("/ui/", u.serveOverview)
	mux.HandleFunc("/ui/app", u.serveApp)
	mux.HandleFunc("/ui/diff", u.serveDiff)
	return mux
}

func (u *Server) render(w http.ResponseWriter, name string, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := u.tmpl.ExecuteTemplate(w, name, data); err != nil {
		// Headers are gone; all we can do is log-free best effort.
		fmt.Fprintf(w, "\n<!-- template error: %v -->", err)
	}
}

func requireGET(w http.ResponseWriter, req *http.Request) bool {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

// metricRow is one live counter on the overview.
type metricRow struct {
	Label string
	Value string
}

// fmtMetric renders a metric value compactly (bytes and counts).
func fmtMetric(v float64, bytes bool) string {
	if bytes {
		switch {
		case v >= 1<<30:
			return fmt.Sprintf("%.1f GiB", v/(1<<30))
		case v >= 1<<20:
			return fmt.Sprintf("%.1f MiB", v/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.1f KiB", v/(1<<10))
		}
	}
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// liveMetrics reads the overview's counters off the registry; absent
// metrics (layer not linked or not yet active) render as an em dash.
func (u *Server) liveMetrics() []metricRow {
	defs := []struct {
		label, name string
		bytes       bool
	}{
		{"bundles accepted", "collect_bundles_accepted_total", false},
		{"re-uploads deduplicated", "collect_bundles_duplicated_total", false},
		{"quarantined lines", "collect_bundles_quarantined_total", false},
		{"bytes ingested", "collect_bytes_ingested_total", true},
		{"connections open", "collect_connections_open", false},
		{"re-analyses", "serve_analyses_total", false},
		{"analysis errors", "serve_analysis_errors_total", false},
		{"stream clients", "serve_stream_clients", false},
		{"report staleness (s)", "serve_report_staleness_seconds", false},
		{"summary memory", "analysis_summary_bytes", true},
	}
	rows := make([]metricRow, 0, len(defs))
	for _, d := range defs {
		val := "—"
		if v, ok := u.reg.Value(d.name); ok {
			val = fmtMetric(v, d.bytes)
		}
		rows = append(rows, metricRow{Label: d.label, Value: val})
	}
	return rows
}

// overviewData feeds templates/overview.html.
type overviewData struct {
	Now         string
	Apps        []serve.AppStatus
	TotalTraces int
	DirtyApps   int
	Metrics     []metricRow
}

func (u *Server) serveOverview(w http.ResponseWriter, req *http.Request) {
	if !requireGET(w, req) {
		return
	}
	if req.URL.Path != "/ui" && req.URL.Path != "/ui/" {
		http.NotFound(w, req)
		return
	}
	data := overviewData{
		Now:     time.Now().UTC().Format(time.RFC3339),
		Apps:    u.svc.Statuses(),
		Metrics: u.liveMetrics(),
	}
	for _, st := range data.Apps {
		data.TotalTraces += st.Traces
		if st.Dirty {
			data.DirtyApps++
		}
	}
	u.render(w, "overview", data)
}

// whatIfForm carries the drill-down form state: current (or overridden)
// knob values, pre-filled from the serving configuration.
type whatIfForm struct {
	Window   int
	Fence    float64
	Norm     float64
	Impacted float64
}

// whatIfResult is the rendered outcome of a read-only what-if run.
type whatIfResult struct {
	Form     whatIfForm
	Summary  core.ReportSummary
	Impacted []core.Impact
	Charts   []traceChart
	Err      string
}

// appData feeds templates/app.html.
type appData struct {
	App      string
	Status   serve.AppStatus
	Snap     serve.Snapshot
	HasData  bool
	Impacted []core.Impact
	Charts   []traceChart
	History  []serve.Snapshot // newest first
	Form     whatIfForm
	WhatIf   *whatIfResult
}

func formOf(cfg core.Config) whatIfForm {
	return whatIfForm{
		Window:   cfg.WindowEvents,
		Fence:    cfg.FenceMultiplier,
		Norm:     cfg.NormBasePercentile,
		Impacted: cfg.DeveloperImpactPercent,
	}
}

func (u *Server) serveApp(w http.ResponseWriter, req *http.Request) {
	if !requireGET(w, req) {
		return
	}
	q := req.URL.Query()
	app := q.Get("app")
	if app == "" {
		http.Error(w, "missing ?app= parameter", http.StatusBadRequest)
		return
	}
	report, snap, ok := u.svc.AppReport(app)
	if !ok {
		http.Error(w, "unknown app "+app, http.StatusNotFound)
		return
	}
	var status serve.AppStatus
	for _, st := range u.svc.Statuses() {
		if st.App == app {
			status = st
			break
		}
	}
	history, _ := u.svc.History(app)
	// Newest first for display.
	for i, j := 0, len(history)-1; i < j; i, j = i+1, j-1 {
		history[i], history[j] = history[j], history[i]
	}
	cfg := u.svc.AnalysisConfig()
	data := appData{
		App:     app,
		Status:  status,
		Snap:    snap,
		History: history,
		Form:    formOf(cfg),
	}
	if report != nil {
		data.HasData = true
		data.Impacted = report.Impacted
		data.Charts = buildCharts(report, cfg.WindowEvents, maxCharts)
	}
	if q.Get("whatif") == "1" {
		data.WhatIf = u.runWhatIf(app, q.Get)
	}
	u.render(w, "app", data)
}

// maxCharts caps the per-page chart count: one per impacted trace up to
// this many (a 10k-trace corpus must not render 10k SVGs).
const maxCharts = 6

// diffData feeds templates/diff.html.
type diffData struct {
	App string
	VD  *serve.VersionDiff
	Err string
}

// serveDiff renders the version-diff page: the revision report between
// two retained report versions, with culprit-ranked suspects. Version
// selection errors render inline so the operator can correct the form.
func (u *Server) serveDiff(w http.ResponseWriter, req *http.Request) {
	if !requireGET(w, req) {
		return
	}
	q := req.URL.Query()
	app := q.Get("app")
	if app == "" {
		http.Error(w, "missing ?app= parameter", http.StatusBadRequest)
		return
	}
	data := diffData{App: app}
	parse := func(name string) (int64, bool) {
		raw := q.Get(name)
		if raw == "" {
			return 0, true
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 1 {
			data.Err = "bad " + name + " version: want a positive report version"
			return 0, false
		}
		return v, true
	}
	from, okFrom := parse("from")
	to, okTo := parse("to")
	if okFrom && okTo {
		vd, tracked, err := u.svc.DiffVersions(app, from, to)
		if !tracked {
			http.Error(w, "unknown app "+app, http.StatusNotFound)
			return
		}
		if err != nil {
			data.Err = err.Error()
		} else {
			data.VD = vd
		}
	}
	u.render(w, "diff", data)
}

// runWhatIf executes the read-only what-if for the dashboard form and
// packages the outcome for rendering; parameter and analysis errors
// render inline rather than failing the page.
func (u *Server) runWhatIf(app string, get func(string) string) *whatIfResult {
	params, err := serve.ParseWhatIfParams(get)
	if err != nil {
		return &whatIfResult{Err: err.Error()}
	}
	report, cfg, ok, err := u.svc.WhatIf(app, params)
	res := &whatIfResult{Form: formOf(cfg)}
	if !ok {
		res.Err = "unknown app " + app
		return res
	}
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Summary = report.Summarize(5)
	res.Impacted = report.Impacted
	res.Charts = buildCharts(report, cfg.WindowEvents, 4)
	return res
}
