package ui

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testService(t *testing.T, users int, seed int64) (*serve.Service, []*trace.TraceBundle) {
	t.Helper()
	app, err := apps.K9Mail()
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig(app, seed)
	wcfg.Users = users
	wcfg.ImpactedFraction = 0.25
	corpus, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := serve.New(serve.Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	for _, b := range corpus.Bundles {
		svc.Notify(b)
	}
	svc.Flush()
	return svc, corpus.Bundles
}

func newUI(t *testing.T, svc *serve.Service) *Server {
	t.Helper()
	u, err := New(svc, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func get(t *testing.T, u *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	u.Handler().ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr
}

// TestOverviewRenders: the fleet page lists the app with its snapshot
// version and live-updates hook (SSE client + data-app row anchors).
func TestOverviewRenders(t *testing.T) {
	svc, _ := testService(t, 6, 83)
	u := newUI(t, svc)
	rr := get(t, u, "/ui/")
	if rr.Code != 200 {
		t.Fatalf("overview: %d", rr.Code)
	}
	body := rr.Body.String()
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		`data-app="k9mail"`,               // live-update row anchor
		`/ui/app?app=k9mail`,              // drill-down link
		`EventSource("/analysis/events")`, // hand-rolled SSE client
		"apps tracked",
		"re-analyses",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("overview missing %q", want)
		}
	}
	if strings.Contains(body, "template error") {
		t.Fatalf("template error in overview:\n%s", body)
	}
	// /ui without slash renders too; other subpaths 404.
	if rr := get(t, u, "/ui"); rr.Code != 200 {
		t.Fatalf("/ui: %d", rr.Code)
	}
	if rr := get(t, u, "/ui/nope"); rr.Code != 404 {
		t.Fatalf("/ui/nope: %d", rr.Code)
	}
}

// TestAppPageRenders: the drill-down shows the snapshot, the impacted
// table, inline SVG charts with fence and manifestation markup, and the
// history table.
func TestAppPageRenders(t *testing.T) {
	svc, _ := testService(t, 8, 89)
	u := newUI(t, svc)
	rr := get(t, u, "/ui/app?app=k9mail")
	if rr.Code != 200 {
		t.Fatalf("app page: %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"<svg",                        // inline chart
		`class="fence"`,               // Step-4 fence line
		`class="d-manifest"`,          // manifestation dots
		"Impacted event keys",         // Step-5 table
		"Snapshot history",            // ring table
		`name="fence"`,                // what-if knob
		"/analysis/events?app=k9mail", // filtered SSE stream
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("app page missing %q", want)
		}
	}
	if strings.Contains(body, "template error") {
		t.Fatalf("template error in app page:\n%s", body)
	}

	if rr := get(t, u, "/ui/app"); rr.Code != 400 {
		t.Fatalf("missing app param: %d", rr.Code)
	}
	if rr := get(t, u, "/ui/app?app=nope"); rr.Code != 404 {
		t.Fatalf("unknown app: %d", rr.Code)
	}
}

// TestWhatIfFormIsReadOnly: submitting the what-if form renders a
// result block and leaves the served snapshot untouched.
func TestWhatIfFormIsReadOnly(t *testing.T) {
	svc, _ := testService(t, 8, 97)
	u := newUI(t, svc)
	_, before, _ := svc.AppReport("k9mail")

	rr := get(t, u, "/ui/app?app=k9mail&whatif=1&window=4&fence=1.2")
	if rr.Code != 200 {
		t.Fatalf("what-if page: %d", rr.Code)
	}
	body := rr.Body.String()
	if !strings.Contains(body, "What-if result") || !strings.Contains(body, `class="badge whatif"`) {
		t.Fatal("what-if result block not rendered")
	}
	if strings.Contains(body, "template error") {
		t.Fatalf("template error in what-if page:\n%s", body)
	}
	// A bad knob renders inline, it does not fail the page.
	rr = get(t, u, "/ui/app?app=k9mail&whatif=1&window=abc")
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "bad window") {
		t.Fatalf("param error not rendered inline: %d", rr.Code)
	}

	_, after, _ := svc.AppReport("k9mail")
	if after.Version != before.Version || after.ETag != before.ETag {
		t.Fatalf("dashboard what-if moved the snapshot: v%d->%d", before.Version, after.Version)
	}
}

// TestUIMethodHygiene: the dashboard is strictly read-only — non-GET is
// rejected.
func TestUIMethodHygiene(t *testing.T) {
	svc, _ := testService(t, 2, 101)
	u := newUI(t, svc)
	for _, path := range []string{"/ui/", "/ui/app?app=k9mail"} {
		rr := httptest.NewRecorder()
		u.Handler().ServeHTTP(rr, httptest.NewRequest("POST", path, nil))
		if rr.Code != 405 || rr.Header().Get("Allow") != "GET" {
			t.Fatalf("POST %s: %d Allow=%q", path, rr.Code, rr.Header().Get("Allow"))
		}
	}
}

// TestBuildChartGeometry: chart coordinates stay inside the panel
// boxes, manifestation dots are preserved through thinning, and the
// fence line is suppressed when above scale.
func TestBuildChartGeometry(t *testing.T) {
	svc, _ := testService(t, 8, 103)
	report, _, ok := svc.AppReport("k9mail")
	if !ok || report == nil {
		t.Fatal("no report")
	}
	cfg := svc.AnalysisConfig()
	charts := buildCharts(report, cfg.WindowEvents, 4)
	if len(charts) == 0 {
		t.Fatal("no charts built")
	}
	manifest := 0
	for _, c := range charts {
		for _, d := range append(append(append([]chartDot{}, c.Normal...), c.Window...), c.Manifest...) {
			if d.X < float64(c.MarginL)-0.5 || d.X > float64(c.PlotR)+0.5 {
				t.Fatalf("dot x %.1f outside plot [%d,%d]", d.X, c.MarginL, c.PlotR)
			}
			if d.Y < float64(c.MarginT)-0.5 || d.Y > float64(c.PowerBot)+0.5 {
				t.Fatalf("dot y %.1f outside power panel [%d,%d]", d.Y, c.MarginT, c.PowerBot)
			}
		}
		if c.FenceY >= 0 && (c.FenceY < float64(c.AmpTop) || c.FenceY > float64(c.AmpBot)+0.5) {
			t.Fatalf("fence y %.1f outside amplitude panel [%d,%d]", c.FenceY, c.AmpTop, c.AmpBot)
		}
		manifest += len(c.Manifest)
	}
	if manifest == 0 {
		t.Fatal("no manifestation dots across charts (corpus has impacted traces)")
	}
}
