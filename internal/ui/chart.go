package ui

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Inline-SVG chart geometry. Everything is precomputed in Go — the
// templates only splice coordinate strings — so the pages ship no
// charting JS at all.
const (
	chartW     = 620
	chartH     = 240
	marginL    = 46
	marginR    = 12
	marginT    = 10
	powerH     = 120 // upper panel: normalized power vs rank
	panelGap   = 26
	ampH       = chartH - marginT - powerH - panelGap - 18 // lower panel: amplitude + fence
	ampTop     = marginT + powerH + panelGap
	plotW      = chartW - marginL - marginR
	powerBot   = marginT + powerH
	ampBot     = ampTop + ampH
	maxDotsPer = 400 // thin dense traces so one SVG stays small
)

// chartDot is one plotted event instance.
type chartDot struct {
	X, Y float64
}

// traceChart is the render-ready power-vs-rank chart of one trace: the
// paper's diagnosis view (normalized power over cross-trace rank, the
// variation amplitude underneath, the Step-4 fence, manifestation
// points and their report windows).
type traceChart struct {
	TraceID string
	UserID  string
	W, H    int
	// PowerLine/AmpLine are rank-ordered polyline coordinates.
	PowerLine string
	AmpLine   string
	// Dots by class: normal instances, manifestation-window members,
	// detected manifestation points (upper panel).
	Normal   []chartDot
	Window   []chartDot
	Manifest []chartDot
	// FenceY is the fence's pixel y on the amplitude panel (< 0 when
	// the fence is above the panel's scale).
	FenceY     float64
	FenceLabel string
	// Axis labels.
	PowerMaxLabel string
	AmpMaxLabel   string
	RankMaxLabel  string
	// Panel geometry exported for the template.
	MarginL, MarginT, PlotW, PlotR, PowerBot, AmpTop, AmpBot int
	PowerPanelH, AmpPanelH                                   int
}

func coord(v float64) string { return fmt.Sprintf("%.1f", v) }

// buildCharts picks up to max traces — manifestation-bearing traces
// first, in corpus order — and lays each out as a power-vs-rank chart.
// windowEvents is the config's manifestation-window half-width, used to
// mark window membership.
func buildCharts(r *core.Report, windowEvents, max int) []traceChart {
	if max <= 0 {
		return nil
	}
	var picked []*core.AnalyzedTrace
	for _, at := range r.Traces {
		if len(at.Manifestations) > 0 {
			picked = append(picked, at)
			if len(picked) == max {
				break
			}
		}
	}
	for _, at := range r.Traces {
		if len(picked) == max {
			break
		}
		if len(at.Manifestations) == 0 {
			picked = append(picked, at)
		}
	}
	charts := make([]traceChart, 0, len(picked))
	for _, at := range picked {
		charts = append(charts, buildChart(at, windowEvents))
	}
	return charts
}

func buildChart(at *core.AnalyzedTrace, windowEvents int) traceChart {
	c := traceChart{
		TraceID: at.TraceID,
		UserID:  at.UserID,
		W:       chartW,
		H:       chartH,
		MarginL: marginL, MarginT: marginT, PlotW: plotW, PlotR: marginL + plotW,
		PowerBot: powerBot, AmpTop: ampTop, AmpBot: ampBot,
		PowerPanelH: powerH, AmpPanelH: ampH,
	}
	n := len(at.Events)
	if n == 0 || len(at.Rank) != n || len(at.NormPower) != n {
		return c
	}

	// Rank-sorted order without mutating the (shared, read-only) trace.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort: n is one trace's events
		for j := i; j > 0 && at.Rank[idx[j]] < at.Rank[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}

	minRank, maxRank := at.Rank[idx[0]], at.Rank[idx[n-1]]
	maxPower, maxAmp := 0.0, 0.0
	minAmp := 0.0
	for i := 0; i < n; i++ {
		if at.NormPower[i] > maxPower {
			maxPower = at.NormPower[i]
		}
		if i < len(at.Amplitude) {
			if at.Amplitude[i] > maxAmp {
				maxAmp = at.Amplitude[i]
			}
			if at.Amplitude[i] < minAmp {
				minAmp = at.Amplitude[i]
			}
		}
	}
	if maxPower <= 0 {
		maxPower = 1
	}
	ampHi := maxAmp
	if at.Fence > ampHi {
		ampHi = at.Fence
	}
	if ampHi <= minAmp {
		ampHi = minAmp + 1
	}

	x := func(rank float64) float64 {
		if maxRank == minRank {
			return marginL + plotW/2
		}
		return marginL + (rank-minRank)/(maxRank-minRank)*plotW
	}
	yPower := func(p float64) float64 {
		return float64(powerBot) - p/maxPower*float64(powerH)
	}
	yAmp := func(a float64) float64 {
		return float64(ampBot) - (a-minAmp)/(ampHi-minAmp)*float64(ampH)
	}

	inWindow := make([]bool, n)
	isManifest := make([]bool, n)
	for _, m := range at.Manifestations {
		if m < 0 || m >= n {
			continue
		}
		isManifest[m] = true
		for j := m - windowEvents; j <= m+windowEvents; j++ {
			if j >= 0 && j < n {
				inWindow[j] = true
			}
		}
	}

	// Thin dense traces for the polylines and the normal dots; window
	// and manifestation dots always render.
	step := 1
	if n > maxDotsPer {
		step = (n + maxDotsPer - 1) / maxDotsPer
	}
	var power, amp strings.Builder
	for k, i := range idx {
		keep := k%step == 0 || k == n-1 || inWindow[i] || isManifest[i]
		if !keep {
			continue
		}
		px, py := x(at.Rank[i]), yPower(at.NormPower[i])
		power.WriteString(coord(px) + "," + coord(py) + " ")
		if i < len(at.Amplitude) {
			amp.WriteString(coord(px) + "," + coord(yAmp(at.Amplitude[i])) + " ")
		}
		dot := chartDot{X: px, Y: py}
		switch {
		case isManifest[i]:
			c.Manifest = append(c.Manifest, dot)
		case inWindow[i]:
			c.Window = append(c.Window, dot)
		default:
			c.Normal = append(c.Normal, dot)
		}
	}
	c.PowerLine = strings.TrimSpace(power.String())
	c.AmpLine = strings.TrimSpace(amp.String())
	c.FenceY = yAmp(at.Fence)
	if c.FenceY < float64(ampTop) {
		c.FenceY = -1
	}
	c.FenceLabel = fmt.Sprintf("fence %.2f", at.Fence)
	c.PowerMaxLabel = fmt.Sprintf("%.1f", maxPower)
	c.AmpMaxLabel = fmt.Sprintf("%.1f", ampHi)
	c.RankMaxLabel = fmt.Sprintf("%.0f", maxRank)
	return c
}
