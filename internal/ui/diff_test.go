package ui

import (
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/revision"
	"repro/internal/serve"
	"repro/internal/trace"
)

// diffService installs two report versions of k9mail from a revision
// chain whose second version carries a hold regression.
func diffService(t *testing.T) *serve.Service {
	t.Helper()
	app, err := apps.K9Mail()
	if err != nil {
		t.Fatal(err)
	}
	ccfg := revision.ChainConfig{App: app, Versions: 2, Seed: 2, RegressionAt: 1, Kind: revision.KindHold}
	chain, err := revision.GenerateChain(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	corpora, err := revision.ChainCorpora(chain, ccfg, revision.CorpusConfig{Users: 6, Seed: 5, BrowsePhases: 4, Cached: true})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := serve.New(serve.Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	for _, b := range corpora[0] {
		svc.Notify(b)
	}
	svc.Flush()
	live := make(map[string]bool, len(corpora[1]))
	for _, b := range corpora[1] {
		live[trace.ContentKey(b)] = true
		svc.Notify(b)
	}
	for _, b := range corpora[0] {
		if key := trace.ContentKey(b); !live[key] {
			svc.Remove("k9mail", key)
		}
	}
	svc.Flush()
	return svc
}

// TestDiffPageRenders: /ui/diff renders the latest hop's revision
// report with the culprit in the suspects table.
func TestDiffPageRenders(t *testing.T) {
	u := newUI(t, diffService(t))
	rr := get(t, u, "/ui/diff?app=k9mail")
	if rr.Code != 200 {
		t.Fatalf("diff page: %d: %s", rr.Code, rr.Body.String())
	}
	body := rr.Body.String()
	for _, want := range []string{
		"Version diff",
		"comparing v1",
		"v2",
		"Suspected culprits",
		"checkMail", // the chain's regression callback
		"corpus event energy",
		"/analysis/diff?app=k9mail", // raw JSON link
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("diff page missing %q:\n%.600s", want, body)
		}
	}
}

// TestDiffPageErrors: inline errors for unusable versions, 404 for
// unknown apps, and the history table links to the page.
func TestDiffPageErrors(t *testing.T) {
	u := newUI(t, diffService(t))
	if rr := get(t, u, "/ui/diff?app=nope"); rr.Code != 404 {
		t.Fatalf("unknown app: %d", rr.Code)
	}
	if rr := get(t, u, "/ui/diff"); rr.Code != 400 {
		t.Fatalf("missing app: %d", rr.Code)
	}
	rr := get(t, u, "/ui/diff?app=k9mail&from=99&to=100")
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "not retained") {
		t.Fatalf("unretained versions should render inline: %d\n%.300s", rr.Code, rr.Body.String())
	}
	rr = get(t, u, "/ui/diff?app=k9mail&from=x")
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "bad from version") {
		t.Fatalf("bad version should render inline: %d", rr.Code)
	}
	rr = get(t, u, "/ui/app?app=k9mail")
	if !strings.Contains(rr.Body.String(), "/ui/diff?app=k9mail&to=2") {
		t.Fatal("history table does not link to the diff page")
	}
}
