package android

import "fmt"

// StepKind enumerates scripted user actions. Scripts are the simulator's
// analogue of UI test scripts: the workload generator composes them into
// user sessions.
type StepKind int

const (
	// StepLaunch starts (or switches to) an activity.
	StepLaunch StepKind = iota + 1
	// StepTap taps a widget on the current activity.
	StepTap
	// StepTapOn taps a widget on an explicit class.
	StepTapOn
	// StepBack presses the back button.
	StepBack
	// StepBackground presses home.
	StepBackground
	// StepForeground returns the app to the foreground.
	StepForeground
	// StepIdle advances time without interaction.
	StepIdle
	// StepStartService starts a background service.
	StepStartService
	// StepStopService stops a background service.
	StepStopService
	// StepSetConfig writes an app configuration value (modelling a
	// settings change the user makes through the UI).
	StepSetConfig
	// StepBatterySaver toggles battery-saver mode (dimmed display),
	// perturbing the app's baseline power mid-session.
	StepBatterySaver
)

// Step is one scripted user action.
type Step struct {
	Kind     StepKind
	Class    string // activity/service/widget class, when relevant
	Callback string // widget callback for StepTap/StepTapOn
	DurMS    int64  // idle duration for StepIdle
	Key      string // config key for StepSetConfig
	Value    string // config value for StepSetConfig
	On       bool   // saver state for StepBatterySaver
}

// Convenience constructors keep scripts readable.

// Launch returns a step that opens an activity.
func Launch(activity string) Step { return Step{Kind: StepLaunch, Class: activity} }

// Tap returns a step that taps a widget on the current activity.
func Tap(callback string) Step { return Step{Kind: StepTap, Callback: callback} }

// TapOn returns a step that taps a widget on an explicit class.
func TapOn(class, callback string) Step {
	return Step{Kind: StepTapOn, Class: class, Callback: callback}
}

// Back returns a back-button step.
func Back() Step { return Step{Kind: StepBack} }

// Home returns a background (home-button) step.
func Home() Step { return Step{Kind: StepBackground} }

// Resume returns a foreground step.
func Resume() Step { return Step{Kind: StepForeground} }

// Wait returns an idle step.
func Wait(durMS int64) Step { return Step{Kind: StepIdle, DurMS: durMS} }

// StartSvc returns a start-service step.
func StartSvc(class string) Step { return Step{Kind: StepStartService, Class: class} }

// StopSvc returns a stop-service step.
func StopSvc(class string) Step { return Step{Kind: StepStopService, Class: class} }

// SetCfg returns a configuration-change step.
func SetCfg(key, value string) Step { return Step{Kind: StepSetConfig, Key: key, Value: value} }

// Saver returns a battery-saver toggle step.
func Saver(on bool) Step { return Step{Kind: StepBatterySaver, On: on} }

// RunScript executes the steps against a process, stopping at the first
// error.
func RunScript(p *Process, steps []Step) error {
	for i, s := range steps {
		if err := runStep(p, s); err != nil {
			return fmt.Errorf("step %d (%v): %w", i, s.Kind, err)
		}
	}
	return nil
}

func runStep(p *Process, s Step) error {
	switch s.Kind {
	case StepLaunch:
		return p.LaunchActivity(s.Class)
	case StepTap:
		return p.Tap(s.Callback)
	case StepTapOn:
		return p.TapOn(s.Class, s.Callback)
	case StepBack:
		return p.Back()
	case StepBackground:
		return p.Background()
	case StepForeground:
		return p.ForegroundApp()
	case StepIdle:
		return p.Idle(s.DurMS)
	case StepStartService:
		return p.StartService(s.Class)
	case StepStopService:
		return p.StopService(s.Class)
	case StepSetConfig:
		p.SetConfig(s.Key, s.Value)
		return nil
	case StepBatterySaver:
		p.SetBatterySaver(s.On)
		return nil
	default:
		return fmt.Errorf("android: unknown step kind %d", s.Kind)
	}
}
