package android

import (
	"repro/internal/trace"
)

// ComponentUsage describes one hardware-usage burst caused by a callback:
// the component runs at Level for DurationMS starting when the callback
// begins. DurationMS may exceed the callback latency (asynchronous work
// such as a network fetch kicked off by onClick).
type ComponentUsage struct {
	Component  trace.Component
	Level      float64
	DurationMS int64
}

// EffectKind enumerates the state-changing side effects a callback can
// have on its process. These are the hooks through which ABD faults are
// injected: a no-sleep bug is an Acquire whose matching Release was
// removed, a loop bug is a StartLoop that is never stopped, and a
// configuration bug conditionally starts a retry loop.
type EffectKind int

const (
	// EffectAcquire opens a named long-lived resource hold (wakelock,
	// GPS listener, sensor registration).
	EffectAcquire EffectKind = iota + 1
	// EffectRelease closes a named resource hold.
	EffectRelease
	// EffectStartLoop starts a named periodic task.
	EffectStartLoop
	// EffectStopLoop stops a named periodic task.
	EffectStopLoop
	// EffectSetConfig stores a key/value in the app's configuration.
	EffectSetConfig
	// EffectConditionalStartLoop starts the named loop only when the
	// app's configuration matches ConfigKey=ConfigValue. This models
	// misconfiguration ABDs (e.g. K-9 Mail's connection-limit setting).
	EffectConditionalStartLoop
	// EffectStopApp terminates all holds and loops (process teardown).
	EffectStopApp
)

// Effect is one side effect of a callback.
type Effect struct {
	Kind EffectKind

	// Name identifies the hold or loop for Acquire/Release/Start/Stop.
	Name string

	// Hold parameters (EffectAcquire).
	HoldComponent trace.Component
	HoldLevel     float64

	// Loop parameters (EffectStartLoop / EffectConditionalStartLoop).
	Loop LoopSpec

	// Config parameters (EffectSetConfig and the conditional guard).
	ConfigKey   string
	ConfigValue string
}

// LoopSpec describes a periodic background task: every PeriodMS the task
// runs for BurstMS, consuming the listed component usages.
type LoopSpec struct {
	PeriodMS int64
	BurstMS  int64
	Usages   []ComponentUsage
}

// Behavior describes what one callback does when invoked.
type Behavior struct {
	// LatencyMS is the callback's execution time on the main thread.
	LatencyMS int64
	// Usages are hardware bursts started at callback entry.
	Usages []ComponentUsage
	// Effects are applied after the usages are recorded.
	Effects []Effect
}

// BehaviorMap assigns behaviors to event keys. Keys without an entry get
// DefaultBehavior.
type BehaviorMap map[trace.EventKey]Behavior

// DefaultBehavior is the behavior of an un-modelled callback: a modest
// CPU burst for the framework dispatch plus the UI work it fronts. The
// duration is kept at or above the 500 ms utilization sampling period so
// every instance contains at least one procfs sample — events shorter
// than the sampling period cannot be attributed stable power (the same
// resolution limit the paper's 500 ms trade-off accepts).
func DefaultBehavior() Behavior {
	return Behavior{
		LatencyMS: 520,
		Usages: []ComponentUsage{
			{Component: trace.CPU, Level: 0.30, DurationMS: 520},
		},
	}
}
