package android

import (
	"errors"
	"testing"

	"repro/internal/procfs"
	"repro/internal/trace"
)

func newForegroundApp(t *testing.T) (*System, *Process) {
	t.Helper()
	sys := NewSystem(0)
	p := sys.NewProcess("app", WithInstrumentation(DefaultInstrumentation()))
	if err := p.LaunchActivity("LMain"); err != nil {
		t.Fatal(err)
	}
	return sys, p
}

func TestClockMonotone(t *testing.T) {
	c := NewClock(100)
	if c.NowMS() != 100 {
		t.Errorf("start = %d", c.NowMS())
	}
	if err := c.advance(50); err != nil {
		t.Fatal(err)
	}
	if c.NowMS() != 150 {
		t.Errorf("now = %d", c.NowMS())
	}
	if err := c.advance(-1); err == nil {
		t.Error("negative advance accepted")
	}
}

func TestLaunchFirstActivityEmitsCreateStartResume(t *testing.T) {
	_, p := newForegroundApp(t)
	tr := p.EventTrace()
	ins, err := tr.Pair()
	if err != nil {
		t.Fatal(err)
	}
	var callbacks []string
	for _, in := range ins {
		callbacks = append(callbacks, in.Key.Callback)
	}
	want := []string{OnCreate, OnStart, OnResume}
	if len(callbacks) != 3 {
		t.Fatalf("callbacks = %v", callbacks)
	}
	for i := range want {
		if callbacks[i] != want[i] {
			t.Errorf("callback %d = %q, want %q", i, callbacks[i], want[i])
		}
	}
	if !p.Foreground() {
		t.Error("app should be foreground")
	}
	if p.ActivityState("LMain") != StateResumed {
		t.Errorf("state = %v", p.ActivityState("LMain"))
	}
}

func TestActivitySwitchFiveEvents(t *testing.T) {
	// Paper §II-A: "five events will typically be generated when a user
	// simply switches from one activity to another."
	_, p := newForegroundApp(t)
	before := len(p.records) / 2
	if err := p.LaunchActivity("LSettings"); err != nil {
		t.Fatal(err)
	}
	after := len(p.records) / 2
	if got := after - before; got != 5 {
		t.Fatalf("activity switch generated %d events, want 5", got)
	}
	tr := p.EventTrace()
	ins, err := tr.Pair()
	if err != nil {
		t.Fatal(err)
	}
	seq := ins[len(ins)-5:]
	wantSeq := []struct{ cls, cb string }{
		{"LMain", OnPause},
		{"LSettings", OnCreate},
		{"LSettings", OnStart},
		{"LSettings", OnResume},
		{"LMain", OnStop},
	}
	for i, w := range wantSeq {
		if seq[i].Key.Class != w.cls || seq[i].Key.Callback != w.cb {
			t.Errorf("event %d = %v, want %s;%s", i, seq[i].Key, w.cls, w.cb)
		}
	}
	if p.CurrentActivity() != "LSettings" {
		t.Errorf("current = %q", p.CurrentActivity())
	}
	if p.ActivityState("LMain") != StateStopped {
		t.Errorf("LMain state = %v", p.ActivityState("LMain"))
	}
}

func TestBackPopsStack(t *testing.T) {
	_, p := newForegroundApp(t)
	if err := p.LaunchActivity("LSettings"); err != nil {
		t.Fatal(err)
	}
	if err := p.Back(); err != nil {
		t.Fatal(err)
	}
	if p.CurrentActivity() != "LMain" {
		t.Errorf("current = %q", p.CurrentActivity())
	}
	if p.ActivityState("LSettings") != StateDestroyed {
		t.Errorf("LSettings state = %v", p.ActivityState("LSettings"))
	}
	if p.ActivityState("LMain") != StateResumed {
		t.Errorf("LMain state = %v", p.ActivityState("LMain"))
	}
}

func TestBackOnRootBackgrounds(t *testing.T) {
	_, p := newForegroundApp(t)
	if err := p.Back(); err != nil {
		t.Fatal(err)
	}
	if p.Foreground() {
		t.Error("root back should background the app")
	}
}

func TestBackgroundForegroundCycle(t *testing.T) {
	sys, p := newForegroundApp(t)
	if err := p.Background(); err != nil {
		t.Fatal(err)
	}
	if p.Foreground() {
		t.Error("still foreground after Background")
	}
	// Display released: no display utilization after backgrounding.
	u := sys.Ledger().UtilizationAt(p.PID(), sys.NowMS()+1)
	if u.Get(trace.Display) != 0 {
		t.Errorf("display still on in background: %v", u.Get(trace.Display))
	}
	if err := p.Background(); !errors.Is(err, ErrNotForeground) {
		t.Errorf("double background: %v", err)
	}
	if err := p.ForegroundApp(); err != nil {
		t.Fatal(err)
	}
	if !p.Foreground() {
		t.Error("not foreground after ForegroundApp")
	}
	if err := p.ForegroundApp(); !errors.Is(err, ErrAlreadyForeground) {
		t.Errorf("double foreground: %v", err)
	}
	u = sys.Ledger().UtilizationAt(p.PID(), sys.NowMS())
	if u.Get(trace.Display) == 0 {
		t.Error("display off while foreground")
	}
}

func TestBackgroundIdleLogsIdleEvent(t *testing.T) {
	_, p := newForegroundApp(t)
	if err := p.Background(); err != nil {
		t.Fatal(err)
	}
	if err := p.Idle(5_000); err != nil {
		t.Fatal(err)
	}
	tr := p.EventTrace()
	found := false
	for _, r := range tr.Records {
		if r.Key == IdleKey() {
			found = true
		}
	}
	if !found {
		t.Error("Idle(No_Display) event not logged for background idle")
	}
}

func TestIdleInBackgroundSpansEvent(t *testing.T) {
	_, p := newForegroundApp(t)
	if err := p.Background(); err != nil {
		t.Fatal(err)
	}
	if err := p.Idle(60_000); err != nil {
		t.Fatal(err)
	}
	ins, err := p.EventTrace().Pair()
	if err != nil {
		t.Fatal(err)
	}
	var longest int64
	for _, in := range ins {
		if in.Key == IdleKey() && in.DurationMS() > longest {
			longest = in.DurationMS()
		}
	}
	if longest != 60_000 {
		t.Errorf("idle event duration = %d, want 60000", longest)
	}
}

func TestIdleRejectsNonPositive(t *testing.T) {
	_, p := newForegroundApp(t)
	if err := p.Idle(0); err == nil {
		t.Error("zero idle accepted")
	}
}

func TestTapRequiresForeground(t *testing.T) {
	_, p := newForegroundApp(t)
	if err := p.Tap("onClick"); err != nil {
		t.Fatal(err)
	}
	if err := p.Background(); err != nil {
		t.Fatal(err)
	}
	if err := p.Tap("onClick"); !errors.Is(err, ErrNotForeground) {
		t.Errorf("background tap: %v", err)
	}
	if err := p.TapOn("LWidget", "onTouch"); !errors.Is(err, ErrNotForeground) {
		t.Errorf("background TapOn: %v", err)
	}
}

func TestBehaviorUsageRecorded(t *testing.T) {
	sys := NewSystem(0)
	key := trace.EventKey{Class: "LMail", Callback: "checkMail"}
	behaviors := BehaviorMap{
		key: {
			LatencyMS: 10,
			Usages: []ComponentUsage{
				{Component: trace.WiFi, Level: 0.8, DurationMS: 3000},
			},
		},
	}
	p := sys.NewProcess("k9", WithBehaviors(behaviors), WithInstrumentation(DefaultInstrumentation()))
	if err := p.LaunchActivity("LMail"); err != nil {
		t.Fatal(err)
	}
	start := sys.NowMS()
	if err := p.Tap("checkMail"); err != nil {
		t.Fatal(err)
	}
	u := sys.Ledger().UtilizationAt(p.PID(), start+1000)
	if u.Get(trace.WiFi) != 0.8 {
		t.Errorf("wifi = %v, want 0.8", u.Get(trace.WiFi))
	}
	u = sys.Ledger().UtilizationAt(p.PID(), start+3001)
	if u.Get(trace.WiFi) != 0 {
		t.Errorf("wifi after burst = %v, want 0", u.Get(trace.WiFi))
	}
}

func TestAcquireReleaseHold(t *testing.T) {
	sys := NewSystem(0)
	acquire := trace.EventKey{Class: "LTracker", Callback: "startGPS"}
	release := trace.EventKey{Class: "LTracker", Callback: "stopGPS"}
	behaviors := BehaviorMap{
		acquire: {LatencyMS: 5, Effects: []Effect{{
			Kind: EffectAcquire, Name: "gps", HoldComponent: trace.GPS, HoldLevel: 1,
		}}},
		release: {LatencyMS: 5, Effects: []Effect{{Kind: EffectRelease, Name: "gps"}}},
	}
	p := sys.NewProcess("gpsapp", WithBehaviors(behaviors))
	if err := p.LaunchActivity("LTracker"); err != nil {
		t.Fatal(err)
	}
	if err := p.Tap("startGPS"); err != nil {
		t.Fatal(err)
	}
	if !p.HoldActive("gps") {
		t.Fatal("gps hold not active")
	}
	// Re-acquire is a no-op, not a leak.
	if err := p.Tap("startGPS"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Sleep(10_000); err != nil {
		t.Fatal(err)
	}
	u := sys.Ledger().UtilizationAt(p.PID(), sys.NowMS()-1)
	if u.Get(trace.GPS) != 1 {
		t.Errorf("gps = %v while held", u.Get(trace.GPS))
	}
	if err := p.Tap("stopGPS"); err != nil {
		t.Fatal(err)
	}
	if p.HoldActive("gps") {
		t.Error("gps hold still active after release")
	}
	if err := sys.Sleep(1000); err != nil {
		t.Fatal(err)
	}
	u = sys.Ledger().UtilizationAt(p.PID(), sys.NowMS()-1)
	if u.Get(trace.GPS) != 0 {
		t.Errorf("gps = %v after release", u.Get(trace.GPS))
	}
	// Releasing an unheld resource is a no-op.
	if err := p.Tap("stopGPS"); err != nil {
		t.Fatal(err)
	}
}

func TestLoopTicksMaterialize(t *testing.T) {
	sys := NewSystem(0)
	start := trace.EventKey{Class: "LSync", Callback: "startSync"}
	behaviors := BehaviorMap{
		start: {LatencyMS: 5, Effects: []Effect{{
			Kind: EffectStartLoop, Name: "sync",
			Loop: LoopSpec{
				PeriodMS: 1000, BurstMS: 400,
				Usages: []ComponentUsage{{Component: trace.WiFi, Level: 0.9}},
			},
		}}},
	}
	p := sys.NewProcess("syncapp", WithBehaviors(behaviors))
	if err := p.LaunchActivity("LSync"); err != nil {
		t.Fatal(err)
	}
	t0 := sys.NowMS()
	if err := p.Tap("startSync"); err != nil {
		t.Fatal(err)
	}
	if !p.LoopActive("sync") {
		t.Fatal("loop not active")
	}
	if err := sys.Sleep(5000); err != nil {
		t.Fatal(err)
	}
	// Inside a burst window (t0 + period*k + small offset).
	inBurst := sys.Ledger().UtilizationAt(p.PID(), t0+2005+100)
	_ = inBurst
	var burstSeen, gapSeen bool
	for off := int64(0); off < 1000; off += 50 {
		u := sys.Ledger().UtilizationAt(p.PID(), t0+3000+off)
		if u.Get(trace.WiFi) > 0 {
			burstSeen = true
		} else {
			gapSeen = true
		}
	}
	if !burstSeen {
		t.Error("loop bursts never observed")
	}
	if !gapSeen {
		t.Error("loop runs continuously; duty cycle lost")
	}
}

func TestConditionalLoopRespectsConfig(t *testing.T) {
	sys := NewSystem(0)
	resume := trace.EventKey{Class: "LMail", Callback: OnResume}
	behaviors := BehaviorMap{
		resume: {LatencyMS: 5, Effects: []Effect{{
			Kind: EffectConditionalStartLoop, Name: "retry",
			ConfigKey: "imapConnections", ConfigValue: "50",
			Loop: LoopSpec{PeriodMS: 2000, BurstMS: 800,
				Usages: []ComponentUsage{{Component: trace.WiFi, Level: 0.9}}},
		}}},
	}
	p := sys.NewProcess("k9", WithBehaviors(behaviors))
	if err := p.LaunchActivity("LMail"); err != nil {
		t.Fatal(err)
	}
	if p.LoopActive("retry") {
		t.Fatal("loop started without misconfiguration")
	}
	p.SetConfig("imapConnections", "50")
	if err := p.ForegroundApp(); err == nil {
		t.Fatal("expected already-foreground error")
	}
	if err := p.Background(); err != nil {
		t.Fatal(err)
	}
	if err := p.ForegroundApp(); err != nil { // re-fires onResume
		t.Fatal(err)
	}
	if !p.LoopActive("retry") {
		t.Error("loop not started after misconfiguration")
	}
}

func TestSetConfigEffect(t *testing.T) {
	sys := NewSystem(0)
	key := trace.EventKey{Class: "LSettings", Callback: "onClick"}
	behaviors := BehaviorMap{
		key: {LatencyMS: 3, Effects: []Effect{{
			Kind: EffectSetConfig, ConfigKey: "sync", ConfigValue: "aggressive",
		}}},
	}
	p := sys.NewProcess("app", WithBehaviors(behaviors))
	if err := p.LaunchActivity("LSettings"); err != nil {
		t.Fatal(err)
	}
	if err := p.Tap("onClick"); err != nil {
		t.Fatal(err)
	}
	if p.Config("sync") != "aggressive" {
		t.Errorf("config = %q", p.Config("sync"))
	}
}

func TestKillClosesEverything(t *testing.T) {
	sys := NewSystem(0)
	key := trace.EventKey{Class: "LA", Callback: "go"}
	behaviors := BehaviorMap{
		key: {LatencyMS: 3, Effects: []Effect{
			{Kind: EffectAcquire, Name: "wl", HoldComponent: trace.CPU, HoldLevel: 0.1},
			{Kind: EffectStartLoop, Name: "l", Loop: LoopSpec{PeriodMS: 100, BurstMS: 50,
				Usages: []ComponentUsage{{Component: trace.CPU, Level: 0.5}}}},
		}},
	}
	p := sys.NewProcess("app", WithBehaviors(behaviors))
	if err := p.LaunchActivity("LA"); err != nil {
		t.Fatal(err)
	}
	if err := p.Tap("go"); err != nil {
		t.Fatal(err)
	}
	p.Kill()
	if p.HoldActive("wl") || p.LoopActive("l") || p.Foreground() {
		t.Error("Kill left state behind")
	}
	after := sys.NowMS() + 10_000
	u := sys.Ledger().UtilizationAt(p.PID(), after)
	if u.Get(trace.CPU) != 0 || u.Get(trace.Display) != 0 {
		t.Errorf("utilization after kill: %v", u)
	}
}

func TestInstrumentationOverheadAccounting(t *testing.T) {
	sys := NewSystem(0)
	plain := sys.NewProcess("app")
	instr := sys.NewProcess("app", WithInstrumentation(DefaultInstrumentation()))
	for _, p := range []*Process{plain, instr} {
		if err := p.LaunchActivity("LMain"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := p.Tap("onClick"); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, lat0, ovh0 := plain.Stats()
	_, lat1, ovh1 := instr.Stats()
	if ovh0 != 0 {
		t.Errorf("uninstrumented overhead = %d", ovh0)
	}
	if ovh1 == 0 {
		t.Error("instrumented overhead is zero")
	}
	if lat0 != lat1 {
		t.Errorf("base latency differs: %d vs %d", lat0, lat1)
	}
	// Uninstrumented apps must not log records.
	if n := len(plain.EventTrace().Records); n != 0 {
		t.Errorf("uninstrumented app logged %d records", n)
	}
	if n := len(instr.EventTrace().Records); n == 0 {
		t.Error("instrumented app logged nothing")
	}
}

func TestEventTraceValidates(t *testing.T) {
	_, p := newForegroundApp(t)
	for i := 0; i < 5; i++ {
		if err := p.Tap("onClick"); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.LaunchActivity("LOther"); err != nil {
		t.Fatal(err)
	}
	if err := p.Background(); err != nil {
		t.Fatal(err)
	}
	tr := p.EventTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v\n%s", err, tr.Text())
	}
}

func TestServices(t *testing.T) {
	sys := NewSystem(0)
	p := sys.NewProcess("app", WithInstrumentation(DefaultInstrumentation()))
	if err := p.StartService("LMailService"); err != nil {
		t.Fatal(err)
	}
	if err := p.StopService("LMailService"); err != nil {
		t.Fatal(err)
	}
	ins, err := p.EventTrace().Pair()
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 || ins[0].Key.Callback != OnCreate || ins[1].Key.Callback != OnDestroy {
		t.Errorf("service events = %v", ins)
	}
}

func TestMultiProcessIsolationViaSampler(t *testing.T) {
	sys := NewSystem(0)
	a := sys.NewProcess("appA")
	b := sys.NewProcess("appB")
	if err := a.LaunchActivity("LA"); err != nil {
		t.Fatal(err)
	}
	if err := a.Background(); err != nil {
		t.Fatal(err)
	}
	backgroundedAt := sys.NowMS()
	if err := b.LaunchActivity("LB"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Sleep(5000); err != nil {
		t.Fatal(err)
	}
	s := procfs.NewSampler(sys.Ledger(), 500)
	ta := s.Trace("appA", a.PID(), 0, sys.NowMS())
	for _, smp := range ta.Samples {
		if smp.TimestampMS > backgroundedAt && smp.Util.Get(trace.Display) > 0 {
			t.Errorf("appA shows display power from appB at %d", smp.TimestampMS)
		}
	}
}

func TestStateString(t *testing.T) {
	states := []ActivityState{StateNotCreated, StateCreated, StateStarted,
		StateResumed, StatePaused, StateStopped, StateDestroyed, ActivityState(99)}
	for _, s := range states {
		if s.String() == "" {
			t.Errorf("state %d has empty string", s)
		}
	}
}
