// Package android simulates the slice of the Android runtime that
// EnergyDx instruments and observes: activity lifecycle state machines,
// widget event dispatch, background services, wakelocks, the location and
// connectivity managers, and foreground/background transitions. Apps run
// against a simulated millisecond clock; their component usage is
// attributed to their PID in a procfs ledger, from which the EnergyDx
// background sampler produces utilization traces.
//
// The simulation is fully deterministic: all timing comes from the
// simulated clock and all randomness is injected by callers.
package android

import "fmt"

// Clock is a simulated millisecond clock shared by all processes in a
// System. It only moves forward.
type Clock struct {
	nowMS int64
}

// NewClock returns a clock starting at startMS.
func NewClock(startMS int64) *Clock {
	return &Clock{nowMS: startMS}
}

// NowMS returns the current simulated time in milliseconds.
func (c *Clock) NowMS() int64 { return c.nowMS }

// advance moves the clock forward by d milliseconds.
func (c *Clock) advance(d int64) error {
	if d < 0 {
		return fmt.Errorf("android: clock cannot move backwards (%d ms)", d)
	}
	c.nowMS += d
	return nil
}
