package android

import (
	"errors"
	"testing"

	"repro/internal/trace"
)

func TestRunScriptFullSession(t *testing.T) {
	sys := NewSystem(0)
	p := sys.NewProcess("app", WithInstrumentation(DefaultInstrumentation()))
	script := []Step{
		Launch("LMain"),
		Tap("onClick"),
		Launch("LSettings"),
		TapOn("LWidget", "onTouch"),
		SetCfg("theme", "dark"),
		Back(),
		StartSvc("LSyncService"),
		StopSvc("LSyncService"),
		Home(),
		Wait(5_000),
		Resume(),
	}
	if err := RunScript(p, script); err != nil {
		t.Fatal(err)
	}
	if p.Config("theme") != "dark" {
		t.Errorf("config = %q", p.Config("theme"))
	}
	if !p.Foreground() {
		t.Error("should be foreground after Resume")
	}
	if p.CurrentActivity() != "LMain" {
		t.Errorf("current = %q", p.CurrentActivity())
	}
	if err := p.EventTrace().Validate(); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
}

func TestRunScriptStopsAtFirstError(t *testing.T) {
	sys := NewSystem(0)
	p := sys.NewProcess("app")
	// Tap before any activity exists must fail at step 0 and not
	// execute the rest.
	err := RunScript(p, []Step{Tap("onClick"), Launch("LMain")})
	if err == nil {
		t.Fatal("invalid script succeeded")
	}
	if !errors.Is(err, ErrNotForeground) {
		t.Errorf("err = %v", err)
	}
	if p.CurrentActivity() != "" {
		t.Error("later steps executed after failure")
	}
}

func TestRunScriptUnknownStep(t *testing.T) {
	sys := NewSystem(0)
	p := sys.NewProcess("app")
	if err := RunScript(p, []Step{{Kind: StepKind(99)}}); err == nil {
		t.Error("unknown step kind accepted")
	}
}

func TestScriptConstructors(t *testing.T) {
	tests := []struct {
		step Step
		kind StepKind
	}{
		{Launch("A"), StepLaunch},
		{Tap("cb"), StepTap},
		{TapOn("C", "cb"), StepTapOn},
		{Back(), StepBack},
		{Home(), StepBackground},
		{Resume(), StepForeground},
		{Wait(10), StepIdle},
		{StartSvc("S"), StepStartService},
		{StopSvc("S"), StepStopService},
		{SetCfg("k", "v"), StepSetConfig},
	}
	for i, tt := range tests {
		if tt.step.Kind != tt.kind {
			t.Errorf("constructor %d: kind = %v, want %v", i, tt.step.Kind, tt.kind)
		}
	}
}

func TestBackOnBackgroundedApp(t *testing.T) {
	sys := NewSystem(0)
	p := sys.NewProcess("app")
	if err := p.LaunchActivity("LMain"); err != nil {
		t.Fatal(err)
	}
	if err := p.Background(); err != nil {
		t.Fatal(err)
	}
	if err := p.Back(); !errors.Is(err, ErrNotForeground) {
		t.Errorf("Back in background: %v", err)
	}
}

func TestForegroundWithoutActivity(t *testing.T) {
	sys := NewSystem(0)
	p := sys.NewProcess("app")
	if err := p.ForegroundApp(); !errors.Is(err, ErrNoActivity) {
		t.Errorf("foreground with empty stack: %v", err)
	}
}

func TestDeepBackStack(t *testing.T) {
	sys := NewSystem(0)
	p := sys.NewProcess("app", WithInstrumentation(DefaultInstrumentation()))
	activities := []string{"LA", "LB", "LC", "LD"}
	for _, a := range activities {
		if err := p.LaunchActivity(a); err != nil {
			t.Fatal(err)
		}
	}
	// Unwind the whole stack.
	for i := len(activities) - 1; i > 0; i-- {
		if err := p.Back(); err != nil {
			t.Fatalf("back from %s: %v", activities[i], err)
		}
		if p.CurrentActivity() != activities[i-1] {
			t.Fatalf("after back: current = %q, want %q", p.CurrentActivity(), activities[i-1])
		}
	}
	// Back on the root backgrounds.
	if err := p.Back(); err != nil {
		t.Fatal(err)
	}
	if p.Foreground() {
		t.Error("root back should background")
	}
	if err := p.EventTrace().Validate(); err != nil {
		t.Errorf("trace invalid after deep unwind: %v", err)
	}
}

func TestRotateRecreatesActivity(t *testing.T) {
	sys := NewSystem(0)
	p := sys.NewProcess("app", WithInstrumentation(DefaultInstrumentation()))
	if err := p.LaunchActivity("LMain"); err != nil {
		t.Fatal(err)
	}
	before := len(p.EventTrace().Records) / 2
	if err := p.Rotate(); err != nil {
		t.Fatal(err)
	}
	after := len(p.EventTrace().Records) / 2
	if got := after - before; got != 6 {
		t.Errorf("rotation generated %d events, want 6", got)
	}
	if p.ActivityState("LMain") != StateResumed {
		t.Errorf("state after rotation = %v", p.ActivityState("LMain"))
	}
	if p.CurrentActivity() != "LMain" {
		t.Errorf("current = %q", p.CurrentActivity())
	}
	if err := p.EventTrace().Validate(); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
	// Rotation in the background is impossible.
	if err := p.Background(); err != nil {
		t.Fatal(err)
	}
	if err := p.Rotate(); !errors.Is(err, ErrNotForeground) {
		t.Errorf("background rotate: %v", err)
	}
}

func TestProcessOptions(t *testing.T) {
	sys := NewSystem(0)
	p := sys.NewProcess("app",
		WithUser("alice"),
		WithDevice("motog"),
		WithDisplayBrightness(0.4),
		WithInstrumentation(DefaultInstrumentation()),
	)
	if p.AppID() != "app" {
		t.Errorf("AppID = %q", p.AppID())
	}
	if err := p.LaunchActivity("LMain"); err != nil {
		t.Fatal(err)
	}
	tr := p.EventTrace()
	if tr.UserID != "alice" || tr.Device != "motog" {
		t.Errorf("trace metadata = %q/%q", tr.UserID, tr.Device)
	}
	// Custom brightness flows into the display hold level.
	u := sys.Ledger().UtilizationAt(p.PID(), sys.NowMS())
	if got := u.Get(trace.Display); got != 0.4 {
		t.Errorf("display level = %v, want 0.4", got)
	}
}

func TestStartLoopIgnoresInvalidSpecs(t *testing.T) {
	sys := NewSystem(0)
	behaviors := BehaviorMap{
		{Class: "LA", Callback: "bad"}: {LatencyMS: 5, Effects: []Effect{
			{Kind: EffectStartLoop, Name: "zero-period", Loop: LoopSpec{PeriodMS: 0, BurstMS: 100}},
			{Kind: EffectStartLoop, Name: "zero-burst", Loop: LoopSpec{PeriodMS: 100, BurstMS: 0}},
		}},
		{Class: "LA", Callback: "dup"}: {LatencyMS: 5, Effects: []Effect{
			{Kind: EffectStartLoop, Name: "l", Loop: LoopSpec{PeriodMS: 100, BurstMS: 50,
				Usages: []ComponentUsage{{Component: trace.CPU, Level: 0.5}}}},
			{Kind: EffectStartLoop, Name: "l", Loop: LoopSpec{PeriodMS: 999, BurstMS: 999}},
		}},
	}
	p := sys.NewProcess("app", WithBehaviors(behaviors))
	if err := p.LaunchActivity("LA"); err != nil {
		t.Fatal(err)
	}
	if err := p.Tap("bad"); err != nil {
		t.Fatal(err)
	}
	if p.LoopActive("zero-period") || p.LoopActive("zero-burst") {
		t.Error("invalid loop specs started")
	}
	if err := p.Tap("dup"); err != nil {
		t.Fatal(err)
	}
	if !p.LoopActive("l") {
		t.Error("loop not started")
	}
}

func TestInvokeUnknownEffectKind(t *testing.T) {
	sys := NewSystem(0)
	behaviors := BehaviorMap{
		{Class: "LA", Callback: "weird"}: {LatencyMS: 5, Effects: []Effect{{Kind: EffectKind(42)}}},
	}
	p := sys.NewProcess("app", WithBehaviors(behaviors))
	if err := p.LaunchActivity("LA"); err != nil {
		t.Fatal(err)
	}
	if err := p.Tap("weird"); err == nil {
		t.Error("unknown effect kind accepted")
	}
}

func TestStopAppEffect(t *testing.T) {
	sys := NewSystem(0)
	behaviors := BehaviorMap{
		{Class: "LA", Callback: "setup"}: {LatencyMS: 5, Effects: []Effect{
			{Kind: EffectAcquire, Name: "wl", HoldComponent: trace.CPU, HoldLevel: 0.2},
			{Kind: EffectStartLoop, Name: "l", Loop: LoopSpec{PeriodMS: 100, BurstMS: 50,
				Usages: []ComponentUsage{{Component: trace.CPU, Level: 0.5}}}},
		}},
		{Class: "LA", Callback: "shutdown"}: {LatencyMS: 5, Effects: []Effect{
			{Kind: EffectStopApp},
		}},
	}
	p := sys.NewProcess("app", WithBehaviors(behaviors))
	if err := p.LaunchActivity("LA"); err != nil {
		t.Fatal(err)
	}
	if err := p.Tap("setup"); err != nil {
		t.Fatal(err)
	}
	if err := p.Tap("shutdown"); err != nil {
		t.Fatal(err)
	}
	if p.HoldActive("wl") || p.LoopActive("l") {
		t.Error("StopApp left holds or loops running")
	}
}

func TestIdleKeyStable(t *testing.T) {
	k := IdleKey()
	if k.Class != IdleClass || k.Callback != "Idle(No_Display)" {
		t.Errorf("IdleKey = %+v", k)
	}
	if got := trace.ShortKey(k); got != "Idle:Idle(No_Display)" {
		t.Errorf("ShortKey(IdleKey) = %q", got)
	}
}
