package android

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/procfs"
	"repro/internal/trace"
)

// Standard Android lifecycle callback names (paper Table I).
const (
	OnCreate  = "onCreate"
	OnStart   = "onStart"
	OnRestart = "onRestart"
	OnResume  = "onResume"
	OnPause   = "onPause"
	OnStop    = "onStop"
	OnDestroy = "onDestroy"
)

// IdleClass is the pseudo-class under which the simulator logs the
// Idle(No_Display) event the paper's case-study tables report for
// backgrounded apps (Tables IV and VI).
const IdleClass = "Landroid/system/Idle"

// IdleKey is the event key of the backgrounded-idle pseudo-event.
func IdleKey() trace.EventKey {
	return trace.EventKey{Class: IdleClass, Callback: "Idle(No_Display)"}
}

// ActivityState tracks where an activity is in its lifecycle.
type ActivityState int

const (
	StateNotCreated ActivityState = iota + 1
	StateCreated
	StateStarted
	StateResumed
	StatePaused
	StateStopped
	StateDestroyed
)

// String names the state for diagnostics.
func (s ActivityState) String() string {
	switch s {
	case StateNotCreated:
		return "not-created"
	case StateCreated:
		return "created"
	case StateStarted:
		return "started"
	case StateResumed:
		return "resumed"
	case StatePaused:
		return "paused"
	case StateStopped:
		return "stopped"
	case StateDestroyed:
		return "destroyed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Lifecycle errors.
var (
	ErrNotForeground     = errors.New("android: app is not in the foreground")
	ErrAlreadyForeground = errors.New("android: app is already in the foreground")
	ErrNoActivity        = errors.New("android: no activity on the back stack")
)

// System owns the simulated clock, the procfs ledger and the running
// processes. It is the root object a workload drives.
type System struct {
	clock     *Clock
	ledger    *procfs.Ledger
	nextPID   int
	processes []*Process
}

// NewSystem creates a system with its clock at startMS.
func NewSystem(startMS int64) *System {
	return &System{
		clock:   NewClock(startMS),
		ledger:  procfs.NewLedger(),
		nextPID: 1000,
	}
}

// NowMS returns the current simulated time.
func (s *System) NowMS() int64 { return s.clock.NowMS() }

// Ledger exposes the procfs ledger for the utilization sampler.
func (s *System) Ledger() *procfs.Ledger { return s.ledger }

// Sleep advances simulated time by d milliseconds, materializing loop
// ticks in every process along the way.
func (s *System) Sleep(d int64) error {
	if err := s.clock.advance(d); err != nil {
		return err
	}
	now := s.clock.NowMS()
	for _, p := range s.processes {
		p.materializeLoops(now)
	}
	return nil
}

// InstrumentationConfig models the cost of EnergyDx's injected probes
// (paper §IV-F: average event-latency increase of 8.3%, average power
// overhead 32 mW on a Nexus 6).
type InstrumentationConfig struct {
	// Enabled turns event logging on.
	Enabled bool
	// ProbeLatencyFracx1000 is the per-event latency overhead in
	// thousandths (83 = +8.3% per event).
	ProbeLatencyFracx1000 int64
	// ProbeCPULevel is the extra CPU utilization drawn while a probe
	// writes its log records.
	ProbeCPULevel float64
}

// DefaultInstrumentation returns probes calibrated to the paper's
// reported overheads.
func DefaultInstrumentation() InstrumentationConfig {
	return InstrumentationConfig{
		Enabled:               true,
		ProbeLatencyFracx1000: 83,
		ProbeCPULevel:         0.03,
	}
}

// Process is one running app instance.
type Process struct {
	sys *System

	pid    int
	appID  string
	device string
	userID string

	instr InstrumentationConfig

	behaviors BehaviorMap
	config    map[string]string

	records []trace.Record

	// Activity back stack; the top is the visible activity when
	// foreground is true.
	stack      []string
	states     map[string]ActivityState
	foreground bool

	displayHold  *procfs.OpenUsage
	holds        map[string]*procfs.OpenUsage
	loops        map[string]*runningLoop
	batterySaver bool

	// Aggregate instrumentation accounting for the overhead experiment.
	eventCount        int64
	totalLatencyMS    int64
	totalOverheadMS   int64
	displayBrightness float64
}

// runningLoop is a started periodic task.
type runningLoop struct {
	spec       LoopSpec
	nextTickMS int64
}

// ProcessOption configures a new process.
type ProcessOption func(*Process)

// WithInstrumentation sets the instrumentation configuration.
func WithInstrumentation(cfg InstrumentationConfig) ProcessOption {
	return func(p *Process) { p.instr = cfg }
}

// WithBehaviors sets the app's callback behaviors.
func WithBehaviors(b BehaviorMap) ProcessOption {
	return func(p *Process) { p.behaviors = b }
}

// WithUser tags the process with the interacting user's ID.
func WithUser(userID string) ProcessOption {
	return func(p *Process) { p.userID = userID }
}

// WithDevice tags the process with the device profile name.
func WithDevice(device string) ProcessOption {
	return func(p *Process) { p.device = device }
}

// WithDisplayBrightness overrides the display utilization level used
// while the app is foreground (default 0.65).
func WithDisplayBrightness(level float64) ProcessOption {
	return func(p *Process) { p.displayBrightness = level }
}

// NewProcess starts a new app process. The app begins backgrounded with
// an empty back stack; call LaunchActivity to bring up its first UI.
func (s *System) NewProcess(appID string, opts ...ProcessOption) *Process {
	p := &Process{
		sys:               s,
		pid:               s.nextPID,
		appID:             appID,
		behaviors:         BehaviorMap{},
		config:            make(map[string]string),
		states:            make(map[string]ActivityState),
		holds:             make(map[string]*procfs.OpenUsage),
		loops:             make(map[string]*runningLoop),
		displayBrightness: 0.65,
	}
	s.nextPID++
	for _, o := range opts {
		o(p)
	}
	s.processes = append(s.processes, p)
	return p
}

// PID returns the process ID used for procfs attribution.
func (p *Process) PID() int { return p.pid }

// AppID returns the app identifier.
func (p *Process) AppID() string { return p.appID }

// Foreground reports whether the app currently owns the display.
func (p *Process) Foreground() bool { return p.foreground }

// CurrentActivity returns the top of the back stack ("" when empty).
func (p *Process) CurrentActivity() string {
	if len(p.stack) == 0 {
		return ""
	}
	return p.stack[len(p.stack)-1]
}

// ActivityState returns the lifecycle state of the named activity.
func (p *Process) ActivityState(name string) ActivityState {
	st, ok := p.states[name]
	if !ok {
		return StateNotCreated
	}
	return st
}

// Config returns the app's configuration value for key.
func (p *Process) Config(key string) string { return p.config[key] }

// SetConfig stores a configuration value directly (used by workloads to
// model pre-existing settings).
func (p *Process) SetConfig(key, value string) { p.config[key] = value }

// HoldActive reports whether a named resource hold is currently open.
func (p *Process) HoldActive(name string) bool {
	_, ok := p.holds[name]
	return ok
}

// LoopActive reports whether a named loop is currently running.
func (p *Process) LoopActive(name string) bool {
	_, ok := p.loops[name]
	return ok
}

// EventTrace returns the instrumentation log collected so far.
func (p *Process) EventTrace() *trace.EventTrace {
	t := &trace.EventTrace{
		AppID:   p.appID,
		UserID:  p.userID,
		Device:  p.device,
		Records: make([]trace.Record, len(p.records)),
	}
	copy(t.Records, p.records)
	// Entries are appended in time order, but exits of nested events can
	// interleave; restore global order defensively.
	sort.SliceStable(t.Records, func(a, b int) bool {
		return t.Records[a].TimestampMS < t.Records[b].TimestampMS
	})
	return t
}

// Stats returns aggregate event accounting for the overhead experiment:
// events dispatched, their total base latency, and the added probe time.
func (p *Process) Stats() (events, totalLatencyMS, totalOverheadMS int64) {
	return p.eventCount, p.totalLatencyMS, p.totalOverheadMS
}

// Invoke dispatches one callback: logs the entry record, records hardware
// bursts, applies effects, advances the clock by the callback latency
// (plus probe overhead when instrumented), and logs the exit record.
func (p *Process) Invoke(key trace.EventKey) error {
	b, ok := p.behaviors[key]
	if !ok {
		b = DefaultBehavior()
	}
	return p.invokeBehavior(key, b)
}

func (p *Process) invokeBehavior(key trace.EventKey, b Behavior) error {
	start := p.sys.NowMS()
	latency := b.LatencyMS
	if latency < 1 {
		latency = 1
	}
	var overhead int64
	if p.instr.Enabled {
		overhead = latency * p.instr.ProbeLatencyFracx1000 / 1000
		if overhead < 1 {
			overhead = 1
		}
		p.records = append(p.records, trace.Record{TimestampMS: start, Dir: trace.Enter, Key: key})
		if p.instr.ProbeCPULevel > 0 {
			if err := p.sys.ledger.Record(p.pid, trace.CPU, start, start+latency+overhead, p.instr.ProbeCPULevel); err != nil {
				return fmt.Errorf("record probe cpu: %w", err)
			}
		}
	}

	for _, u := range b.Usages {
		if u.DurationMS <= 0 || u.Level <= 0 {
			continue
		}
		if err := p.sys.ledger.Record(p.pid, u.Component, start, start+u.DurationMS, u.Level); err != nil {
			return fmt.Errorf("record usage for %s: %w", key, err)
		}
	}
	for _, e := range b.Effects {
		if err := p.applyEffect(e, start); err != nil {
			return fmt.Errorf("apply effect of %s: %w", key, err)
		}
	}

	if err := p.sys.Sleep(latency + overhead); err != nil {
		return err
	}
	p.eventCount++
	p.totalLatencyMS += latency
	p.totalOverheadMS += overhead

	if p.instr.Enabled {
		p.records = append(p.records, trace.Record{TimestampMS: p.sys.NowMS(), Dir: trace.Exit, Key: key})
	}
	return nil
}

// applyEffect mutates process state for one callback side effect.
func (p *Process) applyEffect(e Effect, nowMS int64) error {
	switch e.Kind {
	case EffectAcquire:
		if _, exists := p.holds[e.Name]; exists {
			return nil // re-acquiring an already-held resource is a no-op
		}
		p.holds[e.Name] = p.sys.ledger.Open(p.pid, e.HoldComponent, nowMS, e.HoldLevel)
	case EffectRelease:
		if h, exists := p.holds[e.Name]; exists {
			h.Close(nowMS)
			delete(p.holds, e.Name)
		}
	case EffectStartLoop:
		p.startLoop(e.Name, e.Loop, nowMS)
	case EffectConditionalStartLoop:
		if p.config[e.ConfigKey] == e.ConfigValue {
			p.startLoop(e.Name, e.Loop, nowMS)
		}
	case EffectStopLoop:
		delete(p.loops, e.Name)
	case EffectSetConfig:
		p.config[e.ConfigKey] = e.ConfigValue
	case EffectStopApp:
		p.stopAll(nowMS)
	default:
		return fmt.Errorf("android: unknown effect kind %d", e.Kind)
	}
	return nil
}

func (p *Process) startLoop(name string, spec LoopSpec, nowMS int64) {
	if spec.PeriodMS <= 0 || spec.BurstMS <= 0 {
		return
	}
	if _, exists := p.loops[name]; exists {
		return
	}
	p.loops[name] = &runningLoop{spec: spec, nextTickMS: nowMS}
}

// materializeLoops records the bursts of all running loops whose ticks
// fall before nowMS.
func (p *Process) materializeLoops(nowMS int64) {
	for _, l := range p.loops {
		for l.nextTickMS < nowMS {
			start := l.nextTickMS
			end := start + l.spec.BurstMS
			for _, u := range l.spec.Usages {
				if u.Level <= 0 {
					continue
				}
				// Loop bursts last BurstMS regardless of per-usage duration.
				_ = p.sys.ledger.Record(p.pid, u.Component, start, end, u.Level)
			}
			l.nextTickMS += l.spec.PeriodMS
		}
	}
}

// stopAll closes every hold and loop (process teardown).
func (p *Process) stopAll(nowMS int64) {
	for name, h := range p.holds {
		h.Close(nowMS)
		delete(p.holds, name)
	}
	for name := range p.loops {
		delete(p.loops, name)
	}
}

// lifecycle invokes one lifecycle callback on an activity class and
// transitions its state.
func (p *Process) lifecycle(activity, callback string, to ActivityState) error {
	if err := p.Invoke(trace.EventKey{Class: activity, Callback: callback}); err != nil {
		return err
	}
	p.states[activity] = to
	return nil
}

// LaunchActivity brings a new activity to the foreground. If another
// activity is currently resumed, the paper's canonical 5-event switch
// sequence is generated: onPause(old), onCreate(new), onStart(new),
// onResume(new), onStop(old). Launching the first activity also moves the
// app to the foreground.
func (p *Process) LaunchActivity(name string) error {
	old := ""
	if p.foreground {
		old = p.CurrentActivity()
	}
	if old != "" {
		if err := p.lifecycle(old, OnPause, StatePaused); err != nil {
			return err
		}
	}
	if !p.foreground {
		p.openDisplay()
		p.foreground = true
	}
	if err := p.lifecycle(name, OnCreate, StateCreated); err != nil {
		return err
	}
	if err := p.lifecycle(name, OnStart, StateStarted); err != nil {
		return err
	}
	if err := p.lifecycle(name, OnResume, StateResumed); err != nil {
		return err
	}
	p.stack = append(p.stack, name)
	if old != "" {
		if err := p.lifecycle(old, OnStop, StateStopped); err != nil {
			return err
		}
	}
	return nil
}

// Back finishes the current activity and returns to the previous one:
// onPause(cur), onRestart/onStart/onResume(prev), onStop(cur),
// onDestroy(cur). With a single activity on the stack, Back backgrounds
// the app instead (like pressing back on the root activity).
func (p *Process) Back() error {
	if !p.foreground {
		return ErrNotForeground
	}
	if len(p.stack) == 0 {
		return ErrNoActivity
	}
	cur := p.stack[len(p.stack)-1]
	if len(p.stack) == 1 {
		if err := p.Background(); err != nil {
			return err
		}
		return nil
	}
	prev := p.stack[len(p.stack)-2]
	if err := p.lifecycle(cur, OnPause, StatePaused); err != nil {
		return err
	}
	if err := p.lifecycle(prev, OnRestart, StateStarted); err != nil {
		return err
	}
	if err := p.lifecycle(prev, OnStart, StateStarted); err != nil {
		return err
	}
	if err := p.lifecycle(prev, OnResume, StateResumed); err != nil {
		return err
	}
	if err := p.lifecycle(cur, OnStop, StateStopped); err != nil {
		return err
	}
	if err := p.lifecycle(cur, OnDestroy, StateDestroyed); err != nil {
		return err
	}
	p.stack = p.stack[:len(p.stack)-1]
	return nil
}

// Background sends the app to the background (home button): the current
// activity is paused and stopped and the display is released. Subsequent
// background Idle() calls log the Idle(No_Display) pseudo-event spanning
// the idle period.
func (p *Process) Background() error {
	if !p.foreground {
		return ErrNotForeground
	}
	cur := p.CurrentActivity()
	if cur != "" {
		if err := p.lifecycle(cur, OnPause, StatePaused); err != nil {
			return err
		}
		if err := p.lifecycle(cur, OnStop, StateStopped); err != nil {
			return err
		}
	}
	p.closeDisplay()
	p.foreground = false
	return nil
}

// Foreground returns the app to the foreground: onRestart, onStart,
// onResume of the top activity, display re-acquired.
func (p *Process) ForegroundApp() error {
	if p.foreground {
		return ErrAlreadyForeground
	}
	cur := p.CurrentActivity()
	if cur == "" {
		return ErrNoActivity
	}
	p.openDisplay()
	p.foreground = true
	if err := p.lifecycle(cur, OnRestart, StateStarted); err != nil {
		return err
	}
	if err := p.lifecycle(cur, OnStart, StateStarted); err != nil {
		return err
	}
	return p.lifecycle(cur, OnResume, StateResumed)
}

// Rotate simulates a configuration change (screen rotation): Android
// destroys and recreates the visible activity, generating the
// onPause/onStop/onDestroy/onCreate/onStart/onResume burst that real
// traces are full of. The cited energy-bug study [19] notes that
// mishandled lifecycle interactions like this are a common ABD source.
func (p *Process) Rotate() error {
	if !p.foreground {
		return ErrNotForeground
	}
	cur := p.CurrentActivity()
	if cur == "" {
		return ErrNoActivity
	}
	for _, step := range []struct {
		cb string
		to ActivityState
	}{
		{OnPause, StatePaused},
		{OnStop, StateStopped},
		{OnDestroy, StateDestroyed},
		{OnCreate, StateCreated},
		{OnStart, StateStarted},
		{OnResume, StateResumed},
	} {
		if err := p.lifecycle(cur, step.cb, step.to); err != nil {
			return err
		}
	}
	return nil
}

// Tap dispatches a widget interaction callback (onClick, onItemClick,
// onTouch, menu selections, ...) on the current activity. The app must be
// foreground: you cannot tap an invisible widget.
func (p *Process) Tap(callback string) error {
	if !p.foreground {
		return ErrNotForeground
	}
	cur := p.CurrentActivity()
	if cur == "" {
		return ErrNoActivity
	}
	return p.Invoke(trace.EventKey{Class: cur, Callback: callback})
}

// TapOn dispatches a widget interaction on an explicit class (for widgets
// owned by fragments or custom views whose class differs from the
// activity).
func (p *Process) TapOn(class, callback string) error {
	if !p.foreground {
		return ErrNotForeground
	}
	return p.Invoke(trace.EventKey{Class: class, Callback: callback})
}

// StartService dispatches a service lifecycle callback (services run
// regardless of foreground state).
func (p *Process) StartService(class string) error {
	return p.Invoke(trace.EventKey{Class: class, Callback: OnCreate})
}

// StopService dispatches the service's onDestroy.
func (p *Process) StopService(class string) error {
	return p.Invoke(trace.EventKey{Class: class, Callback: OnDestroy})
}

// Idle advances simulated time with no user interaction. While the app is
// backgrounded, an Idle(No_Display) event instance spans the idle period
// so background power is attributable to an observable event, matching
// the Idle(No_Display) rows of the paper's Tables IV and VI.
func (p *Process) Idle(durationMS int64) error {
	if durationMS <= 0 {
		return fmt.Errorf("android: idle duration must be positive, got %d", durationMS)
	}
	if !p.foreground && p.instr.Enabled {
		start := p.sys.NowMS()
		p.records = append(p.records, trace.Record{TimestampMS: start, Dir: trace.Enter, Key: IdleKey()})
		if err := p.sys.Sleep(durationMS); err != nil {
			return err
		}
		p.records = append(p.records, trace.Record{TimestampMS: p.sys.NowMS(), Dir: trace.Exit, Key: IdleKey()})
		p.eventCount++
		return nil
	}
	return p.sys.Sleep(durationMS)
}

// Kill tears the process down, closing every hold and loop.
func (p *Process) Kill() {
	p.closeDisplay()
	p.stopAll(p.sys.NowMS())
	p.foreground = false
}

// SaverBrightnessFactor is the fraction of configured brightness the
// display runs at while battery-saver mode is on. Android's saver mode
// dims the panel and throttles background work; the simulator models
// the dominant effect, the display drop, which perturbs an app's
// baseline power mid-session without touching its fault behavior.
const SaverBrightnessFactor = 0.45

// SetBatterySaver toggles battery-saver mode. While on, the display is
// held at SaverBrightnessFactor of the configured brightness; if the
// app is foreground the display hold is reopened immediately so the
// power change lands at the current simulated instant.
func (p *Process) SetBatterySaver(on bool) {
	if p.batterySaver == on {
		return
	}
	wasOpen := p.displayHold != nil
	if wasOpen {
		p.closeDisplay()
	}
	p.batterySaver = on
	if wasOpen {
		p.openDisplay()
	}
}

// BatterySaver reports whether battery-saver mode is on.
func (p *Process) BatterySaver() bool { return p.batterySaver }

func (p *Process) brightness() float64 {
	if p.batterySaver {
		return p.displayBrightness * SaverBrightnessFactor
	}
	return p.displayBrightness
}

func (p *Process) openDisplay() {
	if p.displayHold == nil {
		p.displayHold = p.sys.ledger.Open(p.pid, trace.Display, p.sys.NowMS(), p.brightness())
	}
}

func (p *Process) closeDisplay() {
	if p.displayHold != nil {
		p.displayHold.Close(p.sys.NowMS())
		p.displayHold = nil
	}
}
