// Package workload simulates the paper's trace-collection deployment:
// "real-world phone usage and power traces are collected from more than
// 30 different volunteer users with various smartphones" (§IV-A). Each
// user runs one session of the instrumented app on their own device; a
// configurable fraction of users performs the interaction sequence that
// triggers the app's ABD, while the rest only browse normally. Sessions
// are driven by seeded RNGs, so a corpus is reproducible bit-for-bit.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/android"
	"repro/internal/apps"
	"repro/internal/procfs"
	"repro/internal/trace"
)

// Config parameterizes a corpus generation run.
type Config struct {
	// App is the application under test.
	App *apps.App
	// Users is the number of volunteer users (the paper uses 30+).
	Users int
	// ImpactedFraction is the fraction of users whose session triggers
	// the ABD.
	ImpactedFraction float64
	// Seed drives all randomness.
	Seed int64
	// Devices are the device profile names users run on; users cycle
	// through them. Empty means a default heterogeneous fleet.
	Devices []string
	// Fixed selects the fixed app variant (for the before/after-fix
	// power comparison).
	Fixed bool
	// Instrument configures the probes; the zero value means
	// uninstrumented (for the overhead baseline).
	Instrument android.InstrumentationConfig
	// SamplePeriodMS is the utilization sampling period (default 500).
	SamplePeriodMS int64
	// BrowsePhases is the number of interaction phases per session
	// (default 12).
	BrowsePhases int
	// Scrub applies the privacy pass to uploaded bundles (default on
	// via DefaultConfig; the raw generator leaves it to the caller).
	Scrub bool
	// BatterySaverPhase, when positive, toggles battery-saver mode on at
	// that browse phase (dimming the display and perturbing the app's
	// baseline power mid-session) and back off two phases later. Phases
	// are counted from 1 so the zero value means "never".
	BatterySaverPhase int
	// Variant is an opaque discriminator folded into the GenerateCached
	// key. The cache otherwise keys on App.AppID, so two distinct App
	// values sharing an ID — e.g. revisions of the same app in a version
	// chain — would silently alias; callers analyzing app variants set a
	// distinct Variant per variant. Generation itself ignores it.
	Variant string
}

// DefaultConfig returns the evaluation defaults: 30 users, 6 device
// models, 500 ms sampling, instrumented, scrubbed uploads.
func DefaultConfig(app *apps.App, seed int64) Config {
	return Config{
		App:              app,
		Users:            30,
		ImpactedFraction: 0.15,
		Seed:             seed,
		Devices:          []string{"nexus6", "nexus5", "galaxys5", "motog", "xperiaz3", "lgg3"},
		Instrument:       android.DefaultInstrumentation(),
		SamplePeriodMS:   procfs.DefaultPeriodMS,
		BrowsePhases:     12,
		Scrub:            true,
	}
}

// SessionStats aggregates instrumentation accounting across sessions.
type SessionStats struct {
	Sessions        int
	Events          int64
	TotalLatencyMS  int64
	TotalOverheadMS int64
}

// MeanLatencyMS returns the average base event latency.
func (s SessionStats) MeanLatencyMS() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.TotalLatencyMS) / float64(s.Events)
}

// OverheadFraction returns added probe time over base latency.
func (s SessionStats) OverheadFraction() float64 {
	if s.TotalLatencyMS == 0 {
		return 0
	}
	return float64(s.TotalOverheadMS) / float64(s.TotalLatencyMS)
}

// Result is a generated corpus with its ground truth.
type Result struct {
	Bundles []*trace.TraceBundle
	// ImpactedUsers holds the (scrubbed) user IDs whose sessions
	// triggered the ABD.
	ImpactedUsers map[string]bool
	// ImpactedPercent is the ground-truth impacted-user percentage, the
	// value a developer would feed into Step 5.
	ImpactedPercent float64
	// Stats aggregates event-latency accounting.
	Stats SessionStats
}

// Generate produces one corpus, materialized in memory.
func Generate(cfg Config) (*Result, error) {
	var bundles []*trace.TraceBundle
	res, err := GenerateStream(cfg, func(b *trace.TraceBundle) error {
		bundles = append(bundles, b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Bundles = bundles
	return res, nil
}

// GenerateStream produces the same corpus as Generate but hands each
// bundle to emit as soon as its session completes, so callers writing
// to disk never hold more than one user's traces in memory. Bundles
// arrive in user order; an emit error aborts generation. The returned
// Result carries the ground truth and session stats with Bundles nil.
func GenerateStream(cfg Config, emit func(*trace.TraceBundle) error) (*Result, error) {
	if cfg.App == nil {
		return nil, fmt.Errorf("workload: no app configured")
	}
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("workload: users must be positive, got %d", cfg.Users)
	}
	if cfg.ImpactedFraction < 0 || cfg.ImpactedFraction > 1 {
		return nil, fmt.Errorf("workload: impacted fraction %v out of [0, 1]", cfg.ImpactedFraction)
	}
	if cfg.SamplePeriodMS <= 0 {
		cfg.SamplePeriodMS = procfs.DefaultPeriodMS
	}
	if cfg.BrowsePhases <= 0 {
		cfg.BrowsePhases = 12
	}
	devices := cfg.Devices
	if len(devices) == 0 {
		devices = []string{"nexus6"}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	impacted := pickImpacted(cfg.Users, cfg.ImpactedFraction, rng)

	res := &Result{ImpactedUsers: make(map[string]bool)}
	for u := 0; u < cfg.Users; u++ {
		userID := fmt.Sprintf("volunteer-%03d@study", u)
		sessRng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(u)))
		bundle, stats, err := runSession(cfg, userID, devices[u%len(devices)], impacted[u], sessRng)
		if err != nil {
			return nil, fmt.Errorf("user %d: %w", u, err)
		}
		res.Stats.Sessions++
		res.Stats.Events += stats.Events
		res.Stats.TotalLatencyMS += stats.TotalLatencyMS
		res.Stats.TotalOverheadMS += stats.TotalOverheadMS

		if cfg.Scrub {
			bundle = trace.ScrubBundle(bundle)
		}
		if impacted[u] {
			res.ImpactedUsers[bundle.Event.UserID] = true
		}
		if err := emit(bundle); err != nil {
			return nil, fmt.Errorf("user %d: %w", u, err)
		}
	}
	nImpacted := 0
	for _, im := range impacted {
		if im {
			nImpacted++
		}
	}
	res.ImpactedPercent = 100 * float64(nImpacted) / float64(cfg.Users)
	return res, nil
}

// pickImpacted deterministically selects which users trigger the ABD.
func pickImpacted(users int, frac float64, rng *rand.Rand) []bool {
	n := int(frac*float64(users) + 0.5)
	if n > users {
		n = users
	}
	impacted := make([]bool, users)
	perm := rng.Perm(users)
	for i := 0; i < n; i++ {
		impacted[perm[i]] = true
	}
	return impacted
}

// runSession simulates one user's session and returns its trace bundle.
func runSession(cfg Config, userID, deviceName string, triggersABD bool, rng *rand.Rand) (*trace.TraceBundle, SessionStats, error) {
	app := cfg.App
	sys := android.NewSystem(0)
	p := sys.NewProcess(app.AppID,
		android.WithBehaviors(app.Behaviors(cfg.Fixed)),
		android.WithInstrumentation(cfg.Instrument),
		android.WithUser(userID),
		android.WithDevice(deviceName),
	)
	if err := p.LaunchActivity(app.MainActivity); err != nil {
		return nil, SessionStats{}, err
	}

	phases := cfg.BrowsePhases + rng.Intn(cfg.BrowsePhases/2+1)
	triggerAt := -1
	if triggersABD {
		// Trigger somewhere in the middle so both normal and impacted
		// behaviour appear in the same trace (the Fig-3 shape).
		triggerAt = phases/3 + rng.Intn(phases/3+1)
	}
	for phase := 0; phase < phases; phase++ {
		if cfg.BatterySaverPhase > 0 {
			// Battery-saver spans two phases: the mid-session baseline
			// perturbation every detector must not mistake for an ABD.
			if phase+1 == cfg.BatterySaverPhase {
				p.SetBatterySaver(true)
			} else if phase+1 == cfg.BatterySaverPhase+2 {
				p.SetBatterySaver(false)
			}
		}
		if phase == triggerAt {
			if err := android.RunScript(p, app.TriggerScript); err != nil {
				return nil, SessionStats{}, fmt.Errorf("trigger: %w", err)
			}
			// The drain manifests over the following background idle.
			if err := p.Idle(20_000 + int64(rng.Intn(20_000))); err != nil {
				return nil, SessionStats{}, err
			}
			continue
		}
		if err := browsePhase(p, app, rng); err != nil {
			return nil, SessionStats{}, fmt.Errorf("phase %d: %w", phase, err)
		}
	}
	if p.Foreground() {
		if err := p.Background(); err != nil {
			return nil, SessionStats{}, err
		}
	}
	if err := p.Idle(15_000 + int64(rng.Intn(15_000))); err != nil {
		return nil, SessionStats{}, err
	}

	events, lat, ovh := p.Stats()
	stats := SessionStats{Sessions: 1, Events: events, TotalLatencyMS: lat, TotalOverheadMS: ovh}

	ev := p.EventTrace()
	ev.TraceID = fmt.Sprintf("%s-%s-%s", app.AppID, userID, deviceName)
	sampler := procfs.NewSampler(sys.Ledger(), cfg.SamplePeriodMS)
	util := sampler.Trace(app.AppID, p.PID(), 0, sys.NowMS())
	return &trace.TraceBundle{Event: *ev, Util: *util}, stats, nil
}

// browsePhase performs one normal interaction phase: return to the
// foreground if needed, then tap, switch activity, or idle.
func browsePhase(p *android.Process, app *apps.App, rng *rand.Rand) error {
	if !p.Foreground() {
		if err := p.ForegroundApp(); err != nil {
			return err
		}
	}
	switch rng.Intn(10) {
	case 0, 1, 2: // switch to a different activity
		next := app.BrowseActivities[rng.Intn(len(app.BrowseActivities))]
		if next == p.CurrentActivity() {
			return p.Idle(1_000 + int64(rng.Intn(3_000)))
		}
		return p.LaunchActivity(next)
	case 3, 4, 5, 6: // tap a widget on the current activity
		widgets := app.Widgets[p.CurrentActivity()]
		if len(widgets) == 0 {
			return p.Idle(1_000 + int64(rng.Intn(3_000)))
		}
		if err := p.Tap(widgets[rng.Intn(len(widgets))]); err != nil {
			return err
		}
		// Dwell while the action's work completes.
		return p.Idle(2_000 + int64(rng.Intn(4_000)))
	case 7: // read/think
		return p.Idle(3_000 + int64(rng.Intn(6_000)))
	case 8: // rotate the phone (configuration change)
		return p.Rotate()
	default: // briefly leave the app and come back
		if err := p.Background(); err != nil {
			return err
		}
		if err := p.Idle(4_000 + int64(rng.Intn(8_000))); err != nil {
			return err
		}
		return p.ForegroundApp()
	}
}
