package workload

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/trace"
)

func installedApps(t *testing.T) []*apps.App {
	t.Helper()
	var out []*apps.App
	for _, id := range []string{"opengps", "tinfoil"} {
		a, err := apps.ByAppID(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

func TestGeneratePhoneShape(t *testing.T) {
	installed := installedApps(t)
	res, err := GeneratePhone(PhoneConfig{Apps: installed, ABDApp: 0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.ABDAppID != "opengps" {
		t.Errorf("ABD app = %q", res.ABDAppID)
	}
	if len(res.Utils) != 2 || len(res.Bundles) != 2 {
		t.Fatalf("utils=%d bundles=%d", len(res.Utils), len(res.Bundles))
	}
	for i, b := range res.Bundles {
		if err := b.Event.Validate(); err != nil {
			t.Errorf("bundle %d: %v", i, err)
		}
		if err := b.Util.Validate(); err != nil {
			t.Errorf("bundle %d: %v", i, err)
		}
		if b.Event.AppID != installed[i].AppID {
			t.Errorf("bundle %d app = %q", i, b.Event.AppID)
		}
	}
	// The draining app shows sustained GPS at session end; the other
	// does not.
	last := res.Utils[0].Samples[len(res.Utils[0].Samples)-1]
	if last.Util.Get(trace.GPS) == 0 {
		t.Error("ABD app shows no GPS at session end")
	}
	lastOther := res.Utils[1].Samples[len(res.Utils[1].Samples)-1]
	if lastOther.Util.Get(trace.GPS) != 0 {
		t.Error("healthy app shows GPS")
	}
}

func TestGeneratePhoneHealthy(t *testing.T) {
	installed := installedApps(t)
	res, err := GeneratePhone(PhoneConfig{Apps: installed, ABDApp: -1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.ABDAppID != "" {
		t.Errorf("healthy phone has ABD app %q", res.ABDAppID)
	}
}

func TestGeneratePhoneDeterministic(t *testing.T) {
	installed := installedApps(t)
	cfg := PhoneConfig{Apps: installed, ABDApp: 1, Seed: 11}
	r1, err := GeneratePhone(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := GeneratePhone(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Bundles[0].Event.Records) != len(r2.Bundles[0].Event.Records) {
		t.Error("phone generation not deterministic")
	}
}

func TestSessionStatsHelpers(t *testing.T) {
	var zero SessionStats
	if zero.MeanLatencyMS() != 0 || zero.OverheadFraction() != 0 {
		t.Error("zero stats should report 0")
	}
	s := SessionStats{Events: 4, TotalLatencyMS: 400, TotalOverheadMS: 40}
	if s.MeanLatencyMS() != 100 {
		t.Errorf("mean latency = %v", s.MeanLatencyMS())
	}
	if s.OverheadFraction() != 0.1 {
		t.Errorf("overhead fraction = %v", s.OverheadFraction())
	}
}
