package workload

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/trace"
)

// TestGenerateStreamMatchesGenerate checks the streaming generator is
// the batch generator minus materialization: same bundles in the same
// order, same ground truth, same session accounting.
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	app, err := apps.K9Mail()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(app, 7)
	cfg.Users = 6
	cfg.ImpactedFraction = 0.5

	want, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []*trace.TraceBundle
	res, err := GenerateStream(cfg, func(b *trace.TraceBundle) error {
		got = append(got, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bundles != nil {
		t.Errorf("stream result materialized %d bundles", len(res.Bundles))
	}
	if len(got) != len(want.Bundles) {
		t.Fatalf("stream emitted %d bundles, batch produced %d", len(got), len(want.Bundles))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want.Bundles[i]) {
			t.Errorf("bundle %d diverged (trace %s vs %s)", i, got[i].Event.TraceID, want.Bundles[i].Event.TraceID)
		}
	}
	if !reflect.DeepEqual(res.ImpactedUsers, want.ImpactedUsers) {
		t.Errorf("impacted users diverged: %v vs %v", res.ImpactedUsers, want.ImpactedUsers)
	}
	if res.ImpactedPercent != want.ImpactedPercent {
		t.Errorf("impacted percent %v, batch %v", res.ImpactedPercent, want.ImpactedPercent)
	}
	if res.Stats != want.Stats {
		t.Errorf("stats diverged: %+v vs %+v", res.Stats, want.Stats)
	}
}

// TestGenerateStreamEmitError checks an emit failure aborts generation
// with the user attributed.
func TestGenerateStreamEmitError(t *testing.T) {
	app, err := apps.K9Mail()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(app, 7)
	cfg.Users = 4
	sentinel := errors.New("disk full")
	emitted := 0
	_, err = GenerateStream(cfg, func(b *trace.TraceBundle) error {
		if emitted == 2 {
			return sentinel
		}
		emitted++
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if emitted != 2 {
		t.Fatalf("emitted %d bundles before the failing one, want 2", emitted)
	}
}
