package workload

import (
	"strings"
	"sync"

	"repro/internal/android"
	"repro/internal/procfs"
)

// cacheKey identifies one reproducible corpus: the app, the seed, and a
// hash of every Config field that influences generation. Generation is
// fully deterministic (seeded RNGs, simulated clock), so two calls with
// the same key produce bit-identical corpora — there is no reason to
// run the simulation twice.
type cacheKey struct {
	AppID             string
	Users             int
	ImpactedFraction  float64
	Seed              int64
	Devices           string
	Fixed             bool
	Instrument        android.InstrumentationConfig
	SamplePeriodMS    int64
	BrowsePhases      int
	Scrub             bool
	BatterySaverPhase int
	Variant           string
}

// keyFor normalizes a Config into its cache key, applying the same
// defaulting Generate does so equivalent configs share an entry.
func keyFor(cfg Config) cacheKey {
	period := cfg.SamplePeriodMS
	if period <= 0 {
		period = procfs.DefaultPeriodMS
	}
	phases := cfg.BrowsePhases
	if phases <= 0 {
		phases = 12
	}
	devices := cfg.Devices
	if len(devices) == 0 {
		devices = []string{"nexus6"}
	}
	return cacheKey{
		AppID:             cfg.App.AppID,
		Users:             cfg.Users,
		ImpactedFraction:  cfg.ImpactedFraction,
		Seed:              cfg.Seed,
		Devices:           strings.Join(devices, ","),
		Fixed:             cfg.Fixed,
		Instrument:        cfg.Instrument,
		SamplePeriodMS:    period,
		BrowsePhases:      phases,
		Scrub:             cfg.Scrub,
		BatterySaverPhase: cfg.BatterySaverPhase,
		Variant:           cfg.Variant,
	}
}

// cacheEntry is a singleflight slot: the first caller generates, every
// concurrent or later caller with the same key waits for (or reuses)
// that result.
type cacheEntry struct {
	once sync.Once
	res  *Result
	err  error
}

var (
	cacheMu sync.Mutex
	cache   = make(map[cacheKey]*cacheEntry)
)

// GenerateCached is Generate behind a process-wide corpus cache keyed
// by (app, seed, config hash). The experiment sweeps re-request
// identical corpora constantly (table3 then fig16 then the baselines,
// every benchmark iteration, every stability seed); the cache makes
// each distinct corpus cost one simulation per process.
//
// Callers share the returned *Result and must treat it — bundles
// included — as immutable. Concurrent callers with the same key block
// on a single generation instead of duplicating it.
func GenerateCached(cfg Config) (*Result, error) {
	if cfg.App == nil {
		return Generate(cfg) // surface the validation error uncached
	}
	key := keyFor(cfg)
	cacheMu.Lock()
	e := cache[key]
	if e == nil {
		e = &cacheEntry{}
		cache[key] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() { e.res, e.err = Generate(cfg) })
	return e.res, e.err
}

// FlushCache drops every cached corpus (benchmarks use it to measure
// cold-cache sweeps; long-lived processes can use it to bound memory).
func FlushCache() {
	cacheMu.Lock()
	cache = make(map[cacheKey]*cacheEntry)
	cacheMu.Unlock()
}

// CacheLen reports how many corpora are currently cached.
func CacheLen() int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return len(cache)
}
