package workload

// Scenario is one evaluation family for the scenario × detector matrix:
// a named root-cause class (or workload perturbation), the catalog apps
// that exercise it, and any session-shape knobs the family needs.
type Scenario struct {
	// Family names the row of the matrix (a root-cause kind, or a
	// workload perturbation like "battery-saver").
	Family string
	// AppIDs are the catalog apps run for this family (resolved via
	// apps.ByAppID).
	AppIDs []string
	// BatterySaverPhase, when positive, is copied into Config so every
	// session of the family toggles battery-saver mid-session.
	BatterySaverPhase int
	// Notes explains what makes the family hard — rendered in the
	// matrix markdown.
	Notes string
}

// Scenarios returns the matrix's scenario families: the paper's three
// root causes, the four new ABD kinds, and the battery-saver
// perturbation family (new-kind apps with the baseline power dimmed
// mid-session). Order is fixed — it is the row order of every rendered
// matrix, so determinism tests can compare output bytes directly.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Family: "no-sleep",
			AppIDs: []string{"facebook", "opencamera"},
			Notes:  "paper root cause: resource acquired, never released",
		},
		{
			Family: "loop",
			AppIDs: []string{"bostonbusmap", "artwatch"},
			Notes:  "paper root cause: periodic task never stopped",
		},
		{
			Family: "configuration",
			AppIDs: []string{"sofianav", "pedometer"},
			Notes:  "paper root cause: drain only under a bad setting",
		},
		{
			Family: "gps-navigation",
			AppIDs: []string{"navtracker", "cyclemaps"},
			Notes:  "sustained GPS fix + reroute loop leak; acquire-shaped statically",
		},
		{
			Family: "media-stream",
			AppIDs: []string{"podstream", "radioloud"},
			Notes:  "decoder/audio pipeline held after pause; no wakelock involved",
		},
		{
			Family: "sync-storm",
			AppIDs: []string{"syncmania", "notebridge"},
			Notes:  "staggered repeating alarms never cancelled; fan-out of weak loops",
		},
		{
			Family: "tail-energy",
			AppIDs: []string{"chatterbox", "pingwall"},
			Notes:  "weak-but-long radio tail, below eDelta's absolute threshold",
		},
		{
			Family:            "battery-saver",
			AppIDs:            []string{"navtracker", "podstream"},
			BatterySaverPhase: 4,
			Notes:             "saver mode dims baseline power mid-session; detectors must not confuse the step with the ABD",
		},
	}
}
