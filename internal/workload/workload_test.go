package workload

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/android"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/trace"

	"repro/internal/device"
)

func mustApp(t *testing.T, id string) *apps.App {
	t.Helper()
	a, err := apps.ByAppID(id)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGenerateValidation(t *testing.T) {
	app := mustApp(t, "tinfoil")
	bad := []Config{
		{},
		{App: app, Users: 0},
		{App: app, Users: 5, ImpactedFraction: -0.1},
		{App: app, Users: 5, ImpactedFraction: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGenerateCorpusShape(t *testing.T) {
	app := mustApp(t, "tinfoil")
	cfg := DefaultConfig(app, 42)
	cfg.Users = 10
	cfg.ImpactedFraction = 0.2
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bundles) != 10 {
		t.Fatalf("bundles = %d", len(res.Bundles))
	}
	if len(res.ImpactedUsers) != 2 {
		t.Errorf("impacted users = %d, want 2", len(res.ImpactedUsers))
	}
	if res.ImpactedPercent != 20 {
		t.Errorf("impacted percent = %v", res.ImpactedPercent)
	}
	for i, b := range res.Bundles {
		if err := b.Event.Validate(); err != nil {
			t.Errorf("bundle %d event trace invalid: %v", i, err)
		}
		if err := b.Util.Validate(); err != nil {
			t.Errorf("bundle %d util trace invalid: %v", i, err)
		}
		if len(b.Event.Records) == 0 {
			t.Errorf("bundle %d has no event records", i)
		}
		if len(b.Util.Samples) == 0 {
			t.Errorf("bundle %d has no utilization samples", i)
		}
		if b.Util.PID != 0 {
			t.Errorf("bundle %d leaked PID %d through scrubbing", i, b.Util.PID)
		}
	}
	if res.Stats.Events == 0 || res.Stats.Sessions != 10 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Stats.OverheadFraction() <= 0 {
		t.Error("instrumented corpus has zero probe overhead")
	}
}

func TestScrubbingPseudonymizesUsers(t *testing.T) {
	app := mustApp(t, "tinfoil")
	cfg := DefaultConfig(app, 1)
	cfg.Users = 4
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Bundles {
		if b.Event.UserID == "" {
			t.Error("empty user ID")
		}
		if json.Valid([]byte(`"`+b.Event.UserID+`"`)) && len(b.Event.UserID) > 0 &&
			(b.Event.UserID[0] != 'u') {
			t.Errorf("user ID %q not pseudonymized", b.Event.UserID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	app := mustApp(t, "wallabag")
	cfg := DefaultConfig(app, 99)
	cfg.Users = 6
	r1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r1.Bundles)
	b2, _ := json.Marshal(r2.Bundles)
	if string(b1) != string(b2) {
		t.Error("same seed produced different corpora")
	}
	cfg.Seed = 100
	r3, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b3, _ := json.Marshal(r3.Bundles)
	if string(b1) == string(b3) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestImpactedSessionsDrainMore(t *testing.T) {
	app := mustApp(t, "opengps")
	cfg := DefaultConfig(app, 7)
	cfg.Users = 12
	cfg.ImpactedFraction = 0.25
	cfg.Devices = []string{"nexus6"} // same device isolates the effect
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := power.NewModel(device.Nexus6())
	var impactedMean, normalMean float64
	var ni, nn int
	for _, b := range res.Bundles {
		pt, err := model.Estimate(&b.Util)
		if err != nil {
			t.Fatal(err)
		}
		mean, err := power.MeanPowerMW(pt)
		if err != nil {
			t.Fatal(err)
		}
		if res.ImpactedUsers[b.Event.UserID] {
			impactedMean += mean
			ni++
		} else {
			normalMean += mean
			nn++
		}
	}
	if ni == 0 || nn == 0 {
		t.Fatalf("degenerate split: %d impacted, %d normal", ni, nn)
	}
	impactedMean /= float64(ni)
	normalMean /= float64(nn)
	if impactedMean <= normalMean*1.2 {
		t.Errorf("impacted sessions draw %.0f mW vs normal %.0f mW; ABD invisible",
			impactedMean, normalMean)
	}
}

func TestFixedCorpusDrainsLess(t *testing.T) {
	app := mustApp(t, "opengps")
	base := DefaultConfig(app, 7)
	base.Users = 8
	base.ImpactedFraction = 0.5
	base.Devices = []string{"nexus6"}

	buggy, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	fixedCfg := base
	fixedCfg.Fixed = true
	fixed, err := Generate(fixedCfg)
	if err != nil {
		t.Fatal(err)
	}
	model := power.NewModel(device.Nexus6())
	mean := func(bundles []*trace.TraceBundle) float64 {
		var sum float64
		for _, b := range bundles {
			pt, err := model.Estimate(&b.Util)
			if err != nil {
				t.Fatal(err)
			}
			m, err := power.MeanPowerMW(pt)
			if err != nil {
				t.Fatal(err)
			}
			sum += m
		}
		return sum / float64(len(bundles))
	}
	mb, mf := mean(buggy.Bundles), mean(fixed.Bundles)
	if mf >= mb {
		t.Errorf("fixed corpus draws %.0f mW >= buggy %.0f mW", mf, mb)
	}
}

// End-to-end: the full pipeline (workload -> EnergyDx analysis) must
// report the ABD trigger event for the K-9 Mail case study.
func TestEndToEndK9Diagnosis(t *testing.T) {
	app := mustApp(t, "k9mail")
	cfg := DefaultConfig(app, 2020)
	cfg.Users = 20
	cfg.ImpactedFraction = 0.15
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg := core.DefaultConfig()
	acfg.DeveloperImpactPercent = res.ImpactedPercent
	analyzer, err := core.NewAnalyzer(acfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := analyzer.Analyze(res.Bundles)
	if err != nil {
		t.Fatal(err)
	}
	if report.ImpactedTraces == 0 {
		t.Fatal("no manifestation points found in K-9 corpus")
	}
	// The reported events must include K-9 surfaces related to the ABD
	// flow — the AccountSettings -> MessageList path (with MailService
	// restarts) of paper Fig 2 / Table II.
	top := report.TopEvents(8)
	related := 0
	for _, im := range top {
		switch {
		case strings.Contains(im.Key.Class, "AccountSettings"),
			strings.Contains(im.Key.Class, "MessageList"),
			strings.Contains(im.Key.Class, "MailService"):
			related++
		}
	}
	if related < 3 {
		t.Errorf("only %d of the top events touch the ABD flow: %+v", related, top)
	}
	// Code reduction must be substantial on the 98k-line app.
	cr, err := core.ComputeCodeReduction(report, app.Package(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Reduction < 0.9 {
		t.Errorf("K-9 code reduction = %.3f, want > 0.9", cr.Reduction)
	}
}

func TestUninstrumentedCorpusHasNoEvents(t *testing.T) {
	app := mustApp(t, "tinfoil")
	cfg := DefaultConfig(app, 5)
	cfg.Users = 2
	cfg.Instrument = android.InstrumentationConfig{} // disabled
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Bundles {
		if len(b.Event.Records) != 0 {
			t.Errorf("uninstrumented session logged %d records", len(b.Event.Records))
		}
	}
	if res.Stats.TotalOverheadMS != 0 {
		t.Errorf("uninstrumented overhead = %d", res.Stats.TotalOverheadMS)
	}
}
