package workload

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/apps"
)

func cacheTestConfig(t *testing.T, seed int64) Config {
	t.Helper()
	app, err := apps.K9Mail()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(app, seed)
	cfg.Users = 4
	return cfg
}

func TestGenerateCachedReusesCorpus(t *testing.T) {
	FlushCache()
	defer FlushCache()
	cfg := cacheTestConfig(t, 11)

	a, err := GenerateCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical configs did not share the cached corpus")
	}
	if CacheLen() != 1 {
		t.Errorf("cache holds %d corpora, want 1", CacheLen())
	}

	// A different seed is a different corpus.
	cfg2 := cfg
	cfg2.Seed = 12
	c, err := GenerateCached(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different seeds shared a corpus")
	}
	// So is any config field that changes generation.
	cfg3 := cfg
	cfg3.Fixed = true
	d, err := GenerateCached(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("fixed-variant config shared the buggy corpus")
	}
	if CacheLen() != 3 {
		t.Errorf("cache holds %d corpora, want 3", CacheLen())
	}
}

func TestGenerateCachedMatchesGenerate(t *testing.T) {
	FlushCache()
	defer FlushCache()
	cfg := cacheTestConfig(t, 23)
	cached, err := GenerateCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, fresh) {
		t.Error("cached corpus differs from a fresh generation")
	}
}

func TestGenerateCachedNormalizesDefaults(t *testing.T) {
	FlushCache()
	defer FlushCache()
	cfg := cacheTestConfig(t, 31)
	cfg.SamplePeriodMS = 0 // Generate defaults this to procfs.DefaultPeriodMS
	a, err := GenerateCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SamplePeriodMS = 500
	b, err := GenerateCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("defaulted and explicit sampling periods did not share an entry")
	}
}

// TestGenerateCachedSingleflight hammers one key from many goroutines;
// under -race this also proves the cache's synchronization.
func TestGenerateCachedSingleflight(t *testing.T) {
	FlushCache()
	defer FlushCache()
	cfg := cacheTestConfig(t, 47)
	const goroutines = 8
	results := make([]*Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := GenerateCached(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = res
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d got a different corpus instance", g)
		}
	}
	if CacheLen() != 1 {
		t.Errorf("cache holds %d corpora, want 1", CacheLen())
	}
}

func TestGenerateCachedErrorPath(t *testing.T) {
	FlushCache()
	defer FlushCache()
	if _, err := GenerateCached(Config{}); err == nil {
		t.Error("nil app should error")
	}
	cfg := cacheTestConfig(t, 53)
	cfg.Users = -1
	if _, err := GenerateCached(cfg); err == nil {
		t.Error("invalid user count should error")
	}
}
