package workload

import "testing"

// TestGenerateCachedVariantKey: Variant is an opaque cache-key
// discriminator — behaviorally distinct app versions share every other
// Config field, so without it the cache would hand version N's corpus
// to version N+1. Same Variant shares the entry; a different Variant
// forces a fresh generation even though the rest of the config is
// identical.
func TestGenerateCachedVariantKey(t *testing.T) {
	FlushCache()
	defer FlushCache()

	cfg := cacheTestConfig(t, 31)
	cfg.Variant = "rev:1"
	a, err := GenerateCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same Variant did not share the cached corpus")
	}

	cfg2 := cfg
	cfg2.Variant = "rev:2"
	c, err := GenerateCached(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different Variants shared a corpus entry")
	}
	if CacheLen() != 2 {
		t.Errorf("cache holds %d corpora, want 2", CacheLen())
	}
}
