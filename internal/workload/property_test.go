package workload

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
)

// Property sweep: across many seeds and all three root-cause classes,
// every generated corpus is structurally valid and every ABD is found by
// the default analysis without flooding normal traces. This is the
// repository's randomized end-to-end soak test.
func TestEveryCorpusValidAndDiagnosable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed soak in short mode")
	}
	appIDs := []string{"opengps", "tinfoil", "k9mail"} // one per ABD class
	for _, appID := range appIDs {
		app, err := apps.ByAppID(appID)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 5; seed++ {
			cfg := DefaultConfig(app, seed)
			cfg.Users = 10
			cfg.ImpactedFraction = 0.3
			res, err := Generate(cfg)
			if err != nil {
				t.Fatalf("%s seed %d: %v", appID, seed, err)
			}
			for i, b := range res.Bundles {
				if err := b.Event.Validate(); err != nil {
					t.Fatalf("%s seed %d bundle %d: %v", appID, seed, i, err)
				}
				if err := b.Util.Validate(); err != nil {
					t.Fatalf("%s seed %d bundle %d: %v", appID, seed, i, err)
				}
			}
			acfg := core.DefaultConfig()
			acfg.DeveloperImpactPercent = res.ImpactedPercent
			analyzer, err := core.NewAnalyzer(acfg)
			if err != nil {
				t.Fatal(err)
			}
			report, err := analyzer.Analyze(res.Bundles)
			if err != nil {
				t.Fatalf("%s seed %d: %v", appID, seed, err)
			}
			impacted := 3 // 30% of 10
			if report.ImpactedTraces < impacted-1 {
				t.Errorf("%s seed %d: found %d of %d impacted traces",
					appID, seed, report.ImpactedTraces, impacted)
			}
			if report.ImpactedTraces > impacted+2 {
				t.Errorf("%s seed %d: %d detections for %d impacted (false positives)",
					appID, seed, report.ImpactedTraces, impacted)
			}
		}
	}
}
