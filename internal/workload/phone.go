package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/android"
	"repro/internal/apps"
	"repro/internal/procfs"
	"repro/internal/trace"
)

// This file simulates a whole phone running several apps concurrently,
// the setting the app-level detectors of the paper's related work
// (eDoctor, Carat) operate in: given one device's per-app utilization,
// identify *which app* drains the battery. It also demonstrates the
// procfs ledger's per-PID isolation in a production path.

// PhoneConfig parameterizes a multi-app phone session.
type PhoneConfig struct {
	// Apps installed on the phone; the user switches between them.
	Apps []*apps.App
	// ABDApp is the index of the app whose ABD the user triggers
	// (-1 for a healthy phone).
	ABDApp int
	// Seed drives all randomness.
	Seed int64
	// Phases is the number of app-usage phases (default 12).
	Phases int
	// SamplePeriodMS is the utilization sampling period (default 500).
	SamplePeriodMS int64
}

// PhoneResult is one phone's session: a per-app utilization trace (what
// an app-level detector consumes) plus the per-app event bundles (what
// EnergyDx consumes).
type PhoneResult struct {
	Utils   []*trace.UtilizationTrace
	Bundles []*trace.TraceBundle
	// ABDAppID names the app with the triggered ABD ("" if none).
	ABDAppID string
}

// GeneratePhone simulates one phone where the user hops between several
// apps; at most one app's ABD is triggered mid-session.
func GeneratePhone(cfg PhoneConfig) (*PhoneResult, error) {
	if len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("workload: no apps installed")
	}
	if cfg.ABDApp >= len(cfg.Apps) {
		return nil, fmt.Errorf("workload: ABD app index %d out of range", cfg.ABDApp)
	}
	if cfg.Phases <= 0 {
		cfg.Phases = 12
	}
	if cfg.SamplePeriodMS <= 0 {
		cfg.SamplePeriodMS = procfs.DefaultPeriodMS
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sys := android.NewSystem(0)

	procs := make([]*android.Process, len(cfg.Apps))
	for i, app := range cfg.Apps {
		procs[i] = sys.NewProcess(app.AppID,
			android.WithBehaviors(app.Behaviors(false)),
			android.WithInstrumentation(android.DefaultInstrumentation()),
			android.WithUser("phone-owner"),
			android.WithDevice("nexus6"),
		)
	}

	current := -1
	triggerAt := -1
	if cfg.ABDApp >= 0 {
		triggerAt = cfg.Phases/3 + rng.Intn(cfg.Phases/3+1)
	}
	for phase := 0; phase < cfg.Phases; phase++ {
		next := rng.Intn(len(cfg.Apps))
		if phase == triggerAt {
			next = cfg.ABDApp
		}
		if next != current {
			if current >= 0 && procs[current].Foreground() {
				if err := procs[current].Background(); err != nil {
					return nil, fmt.Errorf("phase %d: background %s: %w", phase, cfg.Apps[current].AppID, err)
				}
			}
			current = next
		}
		p, app := procs[current], cfg.Apps[current]
		if !p.Foreground() {
			if p.CurrentActivity() == "" {
				if err := p.LaunchActivity(app.MainActivity); err != nil {
					return nil, fmt.Errorf("phase %d: launch %s: %w", phase, app.AppID, err)
				}
			} else if err := p.ForegroundApp(); err != nil {
				return nil, fmt.Errorf("phase %d: foreground %s: %w", phase, app.AppID, err)
			}
		}
		if phase == triggerAt {
			if err := android.RunScript(p, app.TriggerScript); err != nil {
				return nil, fmt.Errorf("phase %d: trigger %s: %w", phase, app.AppID, err)
			}
			if err := p.Idle(15_000 + int64(rng.Intn(15_000))); err != nil {
				return nil, err
			}
			continue
		}
		if err := browsePhase(p, app, rng); err != nil {
			return nil, fmt.Errorf("phase %d: browse %s: %w", phase, app.AppID, err)
		}
	}
	for _, p := range procs {
		if p.Foreground() {
			if err := p.Background(); err != nil {
				return nil, err
			}
		}
	}
	// A long shared idle at the end: on a healthy phone everything is
	// quiet; with an ABD one app keeps drawing power.
	if err := procs[0].Idle(30_000); err != nil {
		return nil, err
	}

	res := &PhoneResult{}
	if cfg.ABDApp >= 0 {
		res.ABDAppID = cfg.Apps[cfg.ABDApp].AppID
	}
	sampler := procfs.NewSampler(sys.Ledger(), cfg.SamplePeriodMS)
	for i, app := range cfg.Apps {
		ut := sampler.Trace(app.AppID, procs[i].PID(), 0, sys.NowMS())
		res.Utils = append(res.Utils, ut)
		ev := procs[i].EventTrace()
		ev.TraceID = fmt.Sprintf("phone-%s", app.AppID)
		res.Bundles = append(res.Bundles, &trace.TraceBundle{Event: *ev, Util: *ut})
	}
	return res, nil
}
