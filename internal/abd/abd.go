// Package abd models the classes of abnormal-battery-drain root causes
// the evaluation injects. The paper evaluates three (§IV-A): no-sleep
// (a resource such as a wakelock, GPS listener or sensor registration
// is not released), loop (the app periodically performs unnecessary
// work), and configuration (a misconfiguration makes the app burn
// power, e.g. K-9 Mail retrying connections after the user sets an
// IMAP connection count the server rejects). Per the paper's cited
// study [2], these three classes cover about 89.3% of real ABD causes.
//
// The scenario-matrix extension adds four more families from the
// energy-issue taxonomy of Li et al., "Detecting and Diagnosing Energy
// Issues for Mobile Applications" (PAPERS.md):
//
//   - gps-navigation: a sustained-fix leak — navigation keeps a
//     high-accuracy GPS fix plus a fix-processing loop alive after the
//     user leaves the route view (sensory-data underutilization).
//   - media-stream: a decoder hold — playback teardown forgets to stop
//     the decoder pipeline, so audio output and decode work continue in
//     the background. The hold is behavioral (a media session), not an
//     acquire in the code, so acquire/release static analysis is blind
//     to it.
//   - sync-storm: an alarm fan-out — one action schedules several
//     repeating sync alarms that are never cancelled, multiplying
//     periodic background work.
//   - tail-energy: a chatty radio teardown — frequent tiny transfers
//     each pay the radio's tail energy, a weak but long-lasting drain
//     that deviation-threshold detectors (eDelta) sit right under.
//
// A Fault can be injected both dynamically (into an app's behavior map,
// so the simulated app actually drains power) and statically (into its
// APK model, so the static No-sleep Detection baseline has real code
// paths to analyze). Each fault also knows how to produce the *fixed*
// behavior, which the Fig-17 before/after power comparison needs.
package abd

import (
	"fmt"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/trace"
)

// Kind classifies an ABD root cause.
type Kind int

const (
	// NoSleep is an acquire-without-release resource leak.
	NoSleep Kind = iota + 1
	// Loop is an unnecessary periodic task that is never stopped.
	Loop
	// Configuration is a misconfiguration-driven drain.
	Configuration
	// GPSNavigation is a sustained-fix leak: a held GPS fix plus a
	// fix-processing loop survive past the release point.
	GPSNavigation
	// MediaStream is a decoder hold: the playback pipeline (audio
	// output hold + decode loop) keeps running after teardown.
	MediaStream
	// SyncStorm is an alarm fan-out: several repeating sync alarms are
	// scheduled and never cancelled.
	SyncStorm
	// TailEnergy is a chatty radio teardown: frequent tiny transfers
	// each pay the radio tail, a weak-but-long drain.
	TailEnergy
)

// Kinds lists every root-cause class, paper classes first.
func Kinds() []Kind {
	return []Kind{NoSleep, Loop, Configuration, GPSNavigation, MediaStream, SyncStorm, TailEnergy}
}

// String names the root-cause class as Table III (and the scenario
// matrix) does.
func (k Kind) String() string {
	switch k {
	case NoSleep:
		return "no-sleep"
	case Loop:
		return "loop"
	case Configuration:
		return "configuration"
	case GPSNavigation:
		return "gps-navigation"
	case MediaStream:
		return "media-stream"
	case SyncStorm:
		return "sync-storm"
	case TailEnergy:
		return "tail-energy"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind parses a root-cause string (Table III or scenario-matrix
// spelling).
func ParseKind(s string) (Kind, error) {
	switch s {
	case "no-sleep":
		return NoSleep, nil
	case "loop":
		return Loop, nil
	case "configuration":
		return Configuration, nil
	case "gps-navigation":
		return GPSNavigation, nil
	case "media-stream":
		return MediaStream, nil
	case "sync-storm":
		return SyncStorm, nil
	case "tail-energy":
		return TailEnergy, nil
	default:
		return 0, fmt.Errorf("abd: unknown root cause %q", s)
	}
}

// Fault describes one injectable ABD.
type Fault struct {
	// Kind is the root-cause class.
	Kind Kind

	// Trigger is the callback whose execution starts the drain (the
	// root-cause event in the paper's event-distance analysis).
	Trigger trace.EventKey

	// ReleasePoint is the callback that *should* stop the drain; the
	// buggy app omits it, the fixed app performs it. For a no-sleep GPS
	// leak this is typically onPause of the tracking activity.
	ReleasePoint trace.EventKey

	// Resource names the leaked resource or runaway loop.
	Resource string

	// Component and Level describe the hardware drain of a no-sleep
	// hold. GPSNavigation and MediaStream reuse them for the sustained
	// fix / decoder-output hold that rides alongside their work loop.
	Component trace.Component
	Level     float64

	// LoopSpec describes the periodic drain of loop/configuration ABDs,
	// the fix-processing/decode loop of gps-navigation/media-stream,
	// each alarm of a sync-storm, and the chatty transfer cadence of a
	// tail-energy fault.
	LoopSpec android.LoopSpec

	// FanOut is how many repeating alarms a sync-storm schedules.
	FanOut int

	// ConfigKey/ConfigValue guard configuration ABDs: the drain starts
	// only when the app's config matches (the user misconfigured it).
	ConfigKey   string
	ConfigValue string
}

// holdName/loopName/alarmName derive the per-resource identifiers the
// compound faults install, so buggy and fixed variants always agree.
func (f *Fault) holdName() string { return f.Resource + "-hold" }
func (f *Fault) loopName() string { return f.Resource + "-work" }
func (f *Fault) alarmName(i int) string {
	return fmt.Sprintf("%s-alarm-%d", f.Resource, i)
}

// Validate checks the fault is fully specified for its kind.
func (f *Fault) Validate() error {
	if f.Trigger.Class == "" || f.Trigger.Callback == "" {
		return fmt.Errorf("abd: fault has no trigger event")
	}
	if f.Resource == "" {
		return fmt.Errorf("abd: fault has no resource name")
	}
	switch f.Kind {
	case NoSleep:
		if f.Level <= 0 {
			return fmt.Errorf("abd: no-sleep fault needs a positive hold level")
		}
	case Loop:
		if f.LoopSpec.PeriodMS <= 0 || f.LoopSpec.BurstMS <= 0 {
			return fmt.Errorf("abd: loop fault needs a loop spec")
		}
	case Configuration:
		if f.LoopSpec.PeriodMS <= 0 || f.LoopSpec.BurstMS <= 0 {
			return fmt.Errorf("abd: configuration fault needs a loop spec")
		}
		if f.ConfigKey == "" {
			return fmt.Errorf("abd: configuration fault needs a config key")
		}
	case GPSNavigation:
		if f.Level <= 0 {
			return fmt.Errorf("abd: gps-navigation fault needs a positive fix-hold level")
		}
		if f.LoopSpec.PeriodMS <= 0 || f.LoopSpec.BurstMS <= 0 {
			return fmt.Errorf("abd: gps-navigation fault needs a fix-processing loop spec")
		}
	case MediaStream:
		if f.Level <= 0 {
			return fmt.Errorf("abd: media-stream fault needs a positive decoder-hold level")
		}
		if f.LoopSpec.PeriodMS <= 0 || f.LoopSpec.BurstMS <= 0 {
			return fmt.Errorf("abd: media-stream fault needs a decode loop spec")
		}
	case SyncStorm:
		if f.LoopSpec.PeriodMS <= 0 || f.LoopSpec.BurstMS <= 0 {
			return fmt.Errorf("abd: sync-storm fault needs an alarm loop spec")
		}
		if f.FanOut < 2 {
			return fmt.Errorf("abd: sync-storm fault needs a fan-out of at least 2, got %d", f.FanOut)
		}
	case TailEnergy:
		if f.LoopSpec.PeriodMS <= 0 || f.LoopSpec.BurstMS <= 0 {
			return fmt.Errorf("abd: tail-energy fault needs a transfer loop spec")
		}
	default:
		return fmt.Errorf("abd: unknown fault kind %d", f.Kind)
	}
	return nil
}

// InjectBehavior adds the buggy drain to a behavior map. When fixed is
// true the *correct* behavior is installed instead: the drain still
// starts (the feature is legitimate) but the release point stops it.
func (f *Fault) InjectBehavior(b android.BehaviorMap, fixed bool) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if f.Kind == Configuration && fixed {
		// The real-world fix for configuration ABDs validates the
		// setting (e.g. K-9 Mail clamping the IMAP connection count), so
		// the drain never starts at all.
		return nil
	}
	tb := b[f.Trigger]
	switch f.Kind {
	case NoSleep:
		tb.Effects = append(tb.Effects, android.Effect{
			Kind:          android.EffectAcquire,
			Name:          f.Resource,
			HoldComponent: f.Component,
			HoldLevel:     f.Level,
		})
	case Loop, TailEnergy:
		// A tail-energy drain has the same dynamic skeleton as a loop —
		// a periodic task that should have been stopped — but its spec
		// is a weak, radio-tail-dominated cadence and its static shape
		// (InjectAPK) is a chatty transfer, not a timer.
		tb.Effects = append(tb.Effects, android.Effect{
			Kind: android.EffectStartLoop,
			Name: f.Resource,
			Loop: f.LoopSpec,
		})
	case Configuration:
		tb.Effects = append(tb.Effects, android.Effect{
			Kind:        android.EffectConditionalStartLoop,
			Name:        f.Resource,
			Loop:        f.LoopSpec,
			ConfigKey:   f.ConfigKey,
			ConfigValue: f.ConfigValue,
		})
	case GPSNavigation, MediaStream:
		// A sustained hold (the GPS fix / the decoder's audio output)
		// plus the periodic work that consumes it.
		tb.Effects = append(tb.Effects,
			android.Effect{
				Kind:          android.EffectAcquire,
				Name:          f.holdName(),
				HoldComponent: f.Component,
				HoldLevel:     f.Level,
			},
			android.Effect{
				Kind: android.EffectStartLoop,
				Name: f.loopName(),
				Loop: f.LoopSpec,
			},
		)
	case SyncStorm:
		// The fan-out: every alarm repeats at a staggered period so the
		// bursts interleave instead of aliasing onto one tick.
		for i := 0; i < f.FanOut; i++ {
			spec := f.LoopSpec
			spec.PeriodMS += int64(i) * f.LoopSpec.PeriodMS / 3
			tb.Effects = append(tb.Effects, android.Effect{
				Kind: android.EffectStartLoop,
				Name: f.alarmName(i),
				Loop: spec,
			})
		}
	}
	b[f.Trigger] = tb

	if !fixed {
		return nil
	}
	if f.ReleasePoint.Class == "" {
		return fmt.Errorf("abd: fixed variant needs a release point")
	}
	rb := b[f.ReleasePoint]
	switch f.Kind {
	case NoSleep:
		rb.Effects = append(rb.Effects, android.Effect{
			Kind: android.EffectRelease,
			Name: f.Resource,
		})
	case Loop, Configuration, TailEnergy:
		rb.Effects = append(rb.Effects, android.Effect{
			Kind: android.EffectStopLoop,
			Name: f.Resource,
		})
	case GPSNavigation, MediaStream:
		rb.Effects = append(rb.Effects,
			android.Effect{Kind: android.EffectRelease, Name: f.holdName()},
			android.Effect{Kind: android.EffectStopLoop, Name: f.loopName()},
		)
	case SyncStorm:
		for i := 0; i < f.FanOut; i++ {
			rb.Effects = append(rb.Effects, android.Effect{
				Kind: android.EffectStopLoop,
				Name: f.alarmName(i),
			})
		}
	}
	b[f.ReleasePoint] = rb
	return nil
}

// InjectAPK rewrites the trigger method's body so the static structure of
// the bug is analyzable: a no-sleep (or gps-navigation) fault becomes an
// acquire with a leaking early-return path, a loop fault a scheduling
// call, a configuration fault a config-guarded scheduling call, a
// media-stream fault a media-session start (no acquire to pair), a
// sync-storm a fan of alarm registrations, and a tail-energy fault a
// per-message connect/disconnect. When fixed is true the acquire-shaped
// bodies release on every path.
func (f *Fault) InjectAPK(p *apk.Package, fixed bool) error {
	if err := f.Validate(); err != nil {
		return err
	}
	m, err := p.Lookup(f.Trigger)
	if err != nil {
		return fmt.Errorf("abd: trigger method: %w", err)
	}
	switch f.Kind {
	case NoSleep:
		if fixed {
			m.Body = []apk.Instruction{
				{Op: apk.OpAcquire, Args: []string{f.Resource}},
				{Op: apk.OpWork},
				{Op: apk.OpRelease, Args: []string{f.Resource}},
				{Op: apk.OpReturn},
			}
		} else {
			// The classic shape from [9]: an early-return path that
			// skips the release.
			m.Body = []apk.Instruction{
				{Op: apk.OpAcquire, Args: []string{f.Resource}},
				{Op: apk.OpIf, Args: []string{"early"}},
				{Op: apk.OpWork},
				{Op: apk.OpRelease, Args: []string{f.Resource}},
				{Op: apk.OpReturn},
				{Op: apk.OpLabel, Args: []string{"early"}},
				{Op: apk.OpReturn},
			}
		}
	case Loop:
		m.Body = []apk.Instruction{
			{Op: apk.OpWork},
			{Op: apk.OpCall, Args: []string{"Ljava/util/Timer;->schedule"}},
			{Op: apk.OpReturn},
		}
	case Configuration:
		m.Body = []apk.Instruction{
			{Op: apk.OpCall, Args: []string{"Landroid/content/SharedPreferences;->get"}},
			{Op: apk.OpIf, Args: []string{"skip"}},
			{Op: apk.OpCall, Args: []string{"Ljava/util/Timer;->schedule"}},
			{Op: apk.OpLabel, Args: []string{"skip"}},
			{Op: apk.OpReturn},
		}
	case GPSNavigation:
		// The sustained fix IS an acquire-shaped leak, so acquire/release
		// static analysis (No-sleep Detection) has a real path to find —
		// it is the one non-paper family that detector can credit.
		if fixed {
			m.Body = []apk.Instruction{
				{Op: apk.OpAcquire, Args: []string{f.holdName()}},
				{Op: apk.OpCall, Args: []string{"Landroid/location/LocationManager;->requestLocationUpdates"}},
				{Op: apk.OpWork},
				{Op: apk.OpRelease, Args: []string{f.holdName()}},
				{Op: apk.OpReturn},
			}
		} else {
			m.Body = []apk.Instruction{
				{Op: apk.OpAcquire, Args: []string{f.holdName()}},
				{Op: apk.OpCall, Args: []string{"Landroid/location/LocationManager;->requestLocationUpdates"}},
				{Op: apk.OpIf, Args: []string{"reroute"}},
				{Op: apk.OpWork},
				{Op: apk.OpRelease, Args: []string{f.holdName()}},
				{Op: apk.OpReturn},
				{Op: apk.OpLabel, Args: []string{"reroute"}},
				{Op: apk.OpReturn},
			}
		}
	case MediaStream:
		// The decoder hold is a media-session object, not an acquire:
		// statically there is nothing to pair, which is exactly why
		// acquire/release analysis misses this family.
		m.Body = []apk.Instruction{
			{Op: apk.OpCall, Args: []string{"Landroid/media/MediaCodec;->start"}},
			{Op: apk.OpCall, Args: []string{"Landroid/media/AudioTrack;->play"}},
			{Op: apk.OpWork},
			{Op: apk.OpReturn},
		}
	case SyncStorm:
		// One scheduling call per fanned-out alarm.
		body := make([]apk.Instruction, 0, f.FanOut+2)
		body = append(body, apk.Instruction{Op: apk.OpWork})
		for i := 0; i < f.FanOut; i++ {
			body = append(body, apk.Instruction{
				Op: apk.OpCall, Args: []string{"Landroid/app/AlarmManager;->setRepeating"},
			})
		}
		m.Body = append(body, apk.Instruction{Op: apk.OpReturn})
	case TailEnergy:
		// A per-message connect/send/disconnect: each call pays the
		// radio tail instead of batching.
		m.Body = []apk.Instruction{
			{Op: apk.OpCall, Args: []string{"Ljava/net/HttpURLConnection;->connect"}},
			{Op: apk.OpWork},
			{Op: apk.OpCall, Args: []string{"Ljava/net/HttpURLConnection;->disconnect"}},
			{Op: apk.OpCall, Args: []string{"Landroid/os/Handler;->postDelayed"}},
			{Op: apk.OpReturn},
		}
	}
	return nil
}
