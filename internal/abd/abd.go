// Package abd models the three classes of abnormal-battery-drain root
// causes the paper evaluates (§IV-A): no-sleep (a resource such as a
// wakelock, GPS listener or sensor registration is not released), loop
// (the app periodically performs unnecessary work), and configuration
// (a misconfiguration makes the app burn power, e.g. K-9 Mail retrying
// connections after the user sets an IMAP connection count the server
// rejects). Per the paper's cited study [2], these three classes cover
// about 89.3% of real ABD causes.
//
// A Fault can be injected both dynamically (into an app's behavior map,
// so the simulated app actually drains power) and statically (into its
// APK model, so the static No-sleep Detection baseline has real code
// paths to analyze). Each fault also knows how to produce the *fixed*
// behavior, which the Fig-17 before/after power comparison needs.
package abd

import (
	"fmt"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/trace"
)

// Kind classifies an ABD root cause.
type Kind int

const (
	// NoSleep is an acquire-without-release resource leak.
	NoSleep Kind = iota + 1
	// Loop is an unnecessary periodic task that is never stopped.
	Loop
	// Configuration is a misconfiguration-driven drain.
	Configuration
)

// String names the root-cause class as Table III does.
func (k Kind) String() string {
	switch k {
	case NoSleep:
		return "no-sleep"
	case Loop:
		return "loop"
	case Configuration:
		return "configuration"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind parses a Table III root-cause string.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "no-sleep":
		return NoSleep, nil
	case "loop":
		return Loop, nil
	case "configuration":
		return Configuration, nil
	default:
		return 0, fmt.Errorf("abd: unknown root cause %q", s)
	}
}

// Fault describes one injectable ABD.
type Fault struct {
	// Kind is the root-cause class.
	Kind Kind

	// Trigger is the callback whose execution starts the drain (the
	// root-cause event in the paper's event-distance analysis).
	Trigger trace.EventKey

	// ReleasePoint is the callback that *should* stop the drain; the
	// buggy app omits it, the fixed app performs it. For a no-sleep GPS
	// leak this is typically onPause of the tracking activity.
	ReleasePoint trace.EventKey

	// Resource names the leaked resource or runaway loop.
	Resource string

	// Component and Level describe the hardware drain of a no-sleep
	// hold.
	Component trace.Component
	Level     float64

	// LoopSpec describes the periodic drain of loop/configuration ABDs.
	LoopSpec android.LoopSpec

	// ConfigKey/ConfigValue guard configuration ABDs: the drain starts
	// only when the app's config matches (the user misconfigured it).
	ConfigKey   string
	ConfigValue string
}

// Validate checks the fault is fully specified for its kind.
func (f *Fault) Validate() error {
	if f.Trigger.Class == "" || f.Trigger.Callback == "" {
		return fmt.Errorf("abd: fault has no trigger event")
	}
	if f.Resource == "" {
		return fmt.Errorf("abd: fault has no resource name")
	}
	switch f.Kind {
	case NoSleep:
		if f.Level <= 0 {
			return fmt.Errorf("abd: no-sleep fault needs a positive hold level")
		}
	case Loop:
		if f.LoopSpec.PeriodMS <= 0 || f.LoopSpec.BurstMS <= 0 {
			return fmt.Errorf("abd: loop fault needs a loop spec")
		}
	case Configuration:
		if f.LoopSpec.PeriodMS <= 0 || f.LoopSpec.BurstMS <= 0 {
			return fmt.Errorf("abd: configuration fault needs a loop spec")
		}
		if f.ConfigKey == "" {
			return fmt.Errorf("abd: configuration fault needs a config key")
		}
	default:
		return fmt.Errorf("abd: unknown fault kind %d", f.Kind)
	}
	return nil
}

// InjectBehavior adds the buggy drain to a behavior map. When fixed is
// true the *correct* behavior is installed instead: the drain still
// starts (the feature is legitimate) but the release point stops it.
func (f *Fault) InjectBehavior(b android.BehaviorMap, fixed bool) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if f.Kind == Configuration && fixed {
		// The real-world fix for configuration ABDs validates the
		// setting (e.g. K-9 Mail clamping the IMAP connection count), so
		// the drain never starts at all.
		return nil
	}
	tb := b[f.Trigger]
	switch f.Kind {
	case NoSleep:
		tb.Effects = append(tb.Effects, android.Effect{
			Kind:          android.EffectAcquire,
			Name:          f.Resource,
			HoldComponent: f.Component,
			HoldLevel:     f.Level,
		})
	case Loop:
		tb.Effects = append(tb.Effects, android.Effect{
			Kind: android.EffectStartLoop,
			Name: f.Resource,
			Loop: f.LoopSpec,
		})
	case Configuration:
		tb.Effects = append(tb.Effects, android.Effect{
			Kind:        android.EffectConditionalStartLoop,
			Name:        f.Resource,
			Loop:        f.LoopSpec,
			ConfigKey:   f.ConfigKey,
			ConfigValue: f.ConfigValue,
		})
	}
	b[f.Trigger] = tb

	if !fixed {
		return nil
	}
	if f.ReleasePoint.Class == "" {
		return fmt.Errorf("abd: fixed variant needs a release point")
	}
	rb := b[f.ReleasePoint]
	switch f.Kind {
	case NoSleep:
		rb.Effects = append(rb.Effects, android.Effect{
			Kind: android.EffectRelease,
			Name: f.Resource,
		})
	case Loop, Configuration:
		rb.Effects = append(rb.Effects, android.Effect{
			Kind: android.EffectStopLoop,
			Name: f.Resource,
		})
	}
	b[f.ReleasePoint] = rb
	return nil
}

// InjectAPK rewrites the trigger method's body so the static structure of
// the bug is analyzable: a no-sleep fault becomes an acquire with a
// leaking early-return path, a loop fault a scheduling call, and a
// configuration fault a config-guarded scheduling call. When fixed is
// true the no-sleep body releases on every path.
func (f *Fault) InjectAPK(p *apk.Package, fixed bool) error {
	if err := f.Validate(); err != nil {
		return err
	}
	m, err := p.Lookup(f.Trigger)
	if err != nil {
		return fmt.Errorf("abd: trigger method: %w", err)
	}
	switch f.Kind {
	case NoSleep:
		if fixed {
			m.Body = []apk.Instruction{
				{Op: apk.OpAcquire, Args: []string{f.Resource}},
				{Op: apk.OpWork},
				{Op: apk.OpRelease, Args: []string{f.Resource}},
				{Op: apk.OpReturn},
			}
		} else {
			// The classic shape from [9]: an early-return path that
			// skips the release.
			m.Body = []apk.Instruction{
				{Op: apk.OpAcquire, Args: []string{f.Resource}},
				{Op: apk.OpIf, Args: []string{"early"}},
				{Op: apk.OpWork},
				{Op: apk.OpRelease, Args: []string{f.Resource}},
				{Op: apk.OpReturn},
				{Op: apk.OpLabel, Args: []string{"early"}},
				{Op: apk.OpReturn},
			}
		}
	case Loop:
		m.Body = []apk.Instruction{
			{Op: apk.OpWork},
			{Op: apk.OpCall, Args: []string{"Ljava/util/Timer;->schedule"}},
			{Op: apk.OpReturn},
		}
	case Configuration:
		m.Body = []apk.Instruction{
			{Op: apk.OpCall, Args: []string{"Landroid/content/SharedPreferences;->get"}},
			{Op: apk.OpIf, Args: []string{"skip"}},
			{Op: apk.OpCall, Args: []string{"Ljava/util/Timer;->schedule"}},
			{Op: apk.OpLabel, Args: []string{"skip"}},
			{Op: apk.OpReturn},
		}
	}
	return nil
}
