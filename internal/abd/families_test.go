package abd

import (
	"testing"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/trace"
)

func gpsNavFault() Fault {
	return Fault{
		Kind:         GPSNavigation,
		Trigger:      trace.EventKey{Class: "LNav/RouteActivity", Callback: "onClick"},
		ReleasePoint: trace.EventKey{Class: "LNav/RouteActivity", Callback: android.OnPause},
		Resource:     "navigation",
		Component:    trace.GPS,
		Level:        1,
		LoopSpec: android.LoopSpec{
			PeriodMS: 1000, BurstMS: 700,
			Usages: []android.ComponentUsage{{Component: trace.CPU, Level: 0.4}},
		},
	}
}

func mediaStreamFault() Fault {
	return Fault{
		Kind:         MediaStream,
		Trigger:      trace.EventKey{Class: "LPlayer/PlayerActivity", Callback: "onClick"},
		ReleasePoint: trace.EventKey{Class: "LPlayer/PlayerActivity", Callback: android.OnPause},
		Resource:     "playback",
		Component:    trace.Audio,
		Level:        0.85,
		LoopSpec: android.LoopSpec{
			PeriodMS: 800, BurstMS: 600,
			Usages: []android.ComponentUsage{{Component: trace.CPU, Level: 0.45}},
		},
	}
}

func syncStormFault() Fault {
	return Fault{
		Kind:         SyncStorm,
		Trigger:      trace.EventKey{Class: "LSync/AccountsActivity", Callback: "onClick"},
		ReleasePoint: trace.EventKey{Class: "LSync/AccountsActivity", Callback: android.OnPause},
		Resource:     "accounts",
		FanOut:       3,
		LoopSpec: android.LoopSpec{
			PeriodMS: 2000, BurstMS: 900,
			Usages: []android.ComponentUsage{{Component: trace.WiFi, Level: 0.55}},
		},
	}
}

func tailEnergyFault() Fault {
	return Fault{
		Kind:         TailEnergy,
		Trigger:      trace.EventKey{Class: "LChat/ChatActivity", Callback: "onClick"},
		ReleasePoint: trace.EventKey{Class: "LChat/ChatActivity", Callback: android.OnPause},
		Resource:     "presence-ping",
		LoopSpec: android.LoopSpec{
			PeriodMS: 3000, BurstMS: 2400,
			Usages: []android.ComponentUsage{{Component: trace.Cellular, Level: 0.25}},
		},
	}
}

// drainNames lists the dynamic resources (holds and loops) a fault
// installs at its trigger, so the table-driven test can assert the
// fault is inert before the trigger and torn down by the fix.
func drainNames(f Fault) (holds, loops []string) {
	switch f.Kind {
	case GPSNavigation, MediaStream:
		return []string{f.holdName()}, []string{f.loopName()}
	case SyncStorm:
		for i := 0; i < f.FanOut; i++ {
			loops = append(loops, f.alarmName(i))
		}
		return nil, loops
	case TailEnergy:
		return nil, []string{f.Resource}
	default:
		return nil, []string{f.Resource}
	}
}

// TestNewFamiliesBuggyVsFixed mirrors TestNoSleepBuggyVsFixed for every
// new root-cause family: the fault is inert until its trigger event
// fires, the buggy variant keeps draining after the release point, and
// the fixed variant tears everything down.
func TestNewFamiliesBuggyVsFixed(t *testing.T) {
	cases := []struct {
		name  string
		fault Fault
		// holdComponent is the component whose utilization the hold pins
		// during background idle (zero Component means loop-only fault).
		holdComponent trace.Component
		holdLevel     float64
	}{
		{"gps-navigation", gpsNavFault(), trace.GPS, 1},
		{"media-stream", mediaStreamFault(), trace.Audio, 0.85},
		{"sync-storm", syncStormFault(), 0, 0},
		{"tail-energy", tailEnergyFault(), 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, fixed := range []bool{false, true} {
				f := tc.fault
				behaviors := android.BehaviorMap{}
				if err := f.InjectBehavior(behaviors, fixed); err != nil {
					t.Fatal(err)
				}
				sys := android.NewSystem(0)
				p := sys.NewProcess(tc.name, android.WithBehaviors(behaviors))
				if err := p.LaunchActivity(f.Trigger.Class); err != nil {
					t.Fatal(err)
				}
				// Before the trigger event nothing drains: browsing the
				// trigger activity alone must not start the fault.
				holds, loops := drainNames(f)
				for _, h := range holds {
					if p.HoldActive(h) {
						t.Fatalf("fixed=%v: hold %q active before trigger", fixed, h)
					}
				}
				for _, l := range loops {
					if p.LoopActive(l) {
						t.Fatalf("fixed=%v: loop %q active before trigger", fixed, l)
					}
				}
				if err := p.Tap(f.Trigger.Callback); err != nil {
					t.Fatal(err)
				}
				// The drain starts at the trigger in both variants (the
				// feature itself is legitimate).
				for _, l := range loops {
					if !p.LoopActive(l) {
						t.Fatalf("fixed=%v: loop %q not started by trigger", fixed, l)
					}
				}
				// Backgrounding fires onPause — the release point.
				if err := p.Background(); err != nil {
					t.Fatal(err)
				}
				if err := p.Idle(60_000); err != nil {
					t.Fatal(err)
				}
				for _, h := range holds {
					if got := p.HoldActive(h); got == fixed {
						t.Errorf("fixed=%v: hold %q active in background = %v", fixed, h, got)
					}
				}
				for _, l := range loops {
					if got := p.LoopActive(l); got == fixed {
						t.Errorf("fixed=%v: loop %q active in background = %v", fixed, l, got)
					}
				}
				if tc.holdComponent != 0 {
					u := sys.Ledger().UtilizationAt(p.PID(), sys.NowMS()-1)
					want := tc.holdLevel
					if fixed {
						want = 0
					}
					if got := u.Get(tc.holdComponent); got != want {
						t.Errorf("fixed=%v: background %s utilization = %v, want %v",
							fixed, tc.holdComponent, got, want)
					}
				}
			}
		})
	}
}

// TestNewKindsRoundTrip pins ParseKind/String over the full taxonomy.
func TestNewKindsRoundTrip(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 7 {
		t.Fatalf("Kinds() lists %d kinds, want 7", len(kinds))
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
		back, err := ParseKind(s)
		if err != nil {
			t.Errorf("ParseKind(%q): %v", s, err)
		}
		if back != k {
			t.Errorf("round trip %v -> %v", k, back)
		}
	}
}

// TestNewFamiliesValidate exercises the per-kind validation rules.
func TestNewFamiliesValidate(t *testing.T) {
	for _, f := range []Fault{gpsNavFault(), mediaStreamFault(), syncStormFault(), tailEnergyFault()} {
		if err := f.Validate(); err != nil {
			t.Errorf("valid %v fault rejected: %v", f.Kind, err)
		}
	}
	bad := gpsNavFault()
	bad.Level = 0
	if err := bad.Validate(); err == nil {
		t.Error("gps-navigation without fix-hold level accepted")
	}
	bad = gpsNavFault()
	bad.LoopSpec.BurstMS = 0
	if err := bad.Validate(); err == nil {
		t.Error("gps-navigation without fix loop accepted")
	}
	bad = mediaStreamFault()
	bad.Level = 0
	if err := bad.Validate(); err == nil {
		t.Error("media-stream without decoder-hold level accepted")
	}
	bad = syncStormFault()
	bad.FanOut = 1
	if err := bad.Validate(); err == nil {
		t.Error("sync-storm with fan-out 1 accepted")
	}
	bad = tailEnergyFault()
	bad.LoopSpec.PeriodMS = 0
	if err := bad.Validate(); err == nil {
		t.Error("tail-energy without transfer loop accepted")
	}
}

// TestNewFamiliesInjectAPKShapes checks each family's static signature:
// gps-navigation leaks an acquire (the one new family acquire/release
// analysis can credit); the other three must NOT look like no-sleep
// bugs to the static baseline.
func TestNewFamiliesInjectAPKShapes(t *testing.T) {
	f := gpsNavFault()
	pkg := triggerPkg(f)
	if err := f.InjectAPK(pkg, false); err != nil {
		t.Fatal(err)
	}
	m, err := pkg.Lookup(f.Trigger)
	if err != nil {
		t.Fatal(err)
	}
	g, err := apk.BuildCFG(m.Body)
	if err != nil {
		t.Fatal(err)
	}
	acq := apk.Acquires(m.Body)
	if len(acq) != 1 {
		t.Fatalf("gps-navigation acquires = %v, want 1", acq)
	}
	if !g.LeakPathExists(acq[0].Index, acq[0].Resource) {
		t.Error("buggy gps-navigation body has no leaking path")
	}
	fixedPkg := triggerPkg(f)
	if err := f.InjectAPK(fixedPkg, true); err != nil {
		t.Fatal(err)
	}
	m, err = fixedPkg.Lookup(f.Trigger)
	if err != nil {
		t.Fatal(err)
	}
	g, err = apk.BuildCFG(m.Body)
	if err != nil {
		t.Fatal(err)
	}
	acq = apk.Acquires(m.Body)
	if g.LeakPathExists(acq[0].Index, acq[0].Resource) {
		t.Error("fixed gps-navigation body still leaks")
	}

	for _, f := range []Fault{mediaStreamFault(), syncStormFault(), tailEnergyFault()} {
		pkg := triggerPkg(f)
		if err := f.InjectAPK(pkg, false); err != nil {
			t.Fatal(err)
		}
		m, err := pkg.Lookup(f.Trigger)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := apk.BuildCFG(m.Body); err != nil {
			t.Errorf("%v body has invalid CFG: %v", f.Kind, err)
		}
		if len(apk.Acquires(m.Body)) != 0 {
			t.Errorf("%v body contains acquires", f.Kind)
		}
	}
}
