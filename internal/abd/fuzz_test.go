package abd

import "testing"

// FuzzParseKind checks ParseKind never panics and stays consistent
// with String: any input that parses must round-trip exactly.
func FuzzParseKind(f *testing.F) {
	for _, k := range Kinds() {
		f.Add(k.String())
	}
	f.Add("")
	f.Add("no-sleep ")
	f.Add("GPS-NAVIGATION")
	f.Add("tail-energy\x00")
	f.Add("sync-storm-storm")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseKind(s)
		if err != nil {
			return
		}
		if k.String() != s {
			t.Errorf("ParseKind(%q) = %v, String() = %q", s, k, k.String())
		}
	})
}
