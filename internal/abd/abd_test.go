package abd

import (
	"strings"
	"testing"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/trace"
)

func gpsFault() Fault {
	return Fault{
		Kind:         NoSleep,
		Trigger:      trace.EventKey{Class: "LTracker/LoggerMap", Callback: "onResume"},
		ReleasePoint: trace.EventKey{Class: "LTracker/LoggerMap", Callback: "onPause"},
		Resource:     "gps",
		Component:    trace.GPS,
		Level:        1,
	}
}

func loopFault() Fault {
	return Fault{
		Kind:         Loop,
		Trigger:      trace.EventKey{Class: "LFeed", Callback: "menu_item_newsfeed"},
		ReleasePoint: trace.EventKey{Class: "LFeed", Callback: "onPause"},
		Resource:     "sync",
		LoopSpec: android.LoopSpec{
			PeriodMS: 2000, BurstMS: 500,
			Usages: []android.ComponentUsage{{Component: trace.WiFi, Level: 0.9}},
		},
	}
}

func configFault() Fault {
	return Fault{
		Kind:         Configuration,
		Trigger:      trace.EventKey{Class: "LMail/MessageList", Callback: "onResume"},
		ReleasePoint: trace.EventKey{Class: "LMail/MessageList", Callback: "onPause"},
		Resource:     "retry",
		ConfigKey:    "imapConnections",
		ConfigValue:  "50",
		LoopSpec: android.LoopSpec{
			PeriodMS: 3000, BurstMS: 1000,
			Usages: []android.ComponentUsage{{Component: trace.WiFi, Level: 0.85}},
		},
	}
}

func TestKindStringAndParse(t *testing.T) {
	for _, k := range []Kind{NoSleep, Loop, Configuration} {
		back, err := ParseKind(k.String())
		if err != nil {
			t.Errorf("ParseKind(%q): %v", k.String(), err)
		}
		if back != k {
			t.Errorf("round trip %v -> %v", k, back)
		}
	}
	if _, err := ParseKind("cosmic-rays"); err == nil {
		t.Error("unknown kind parsed")
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind String")
	}
}

func TestValidate(t *testing.T) {
	valid := []Fault{gpsFault(), loopFault(), configFault()}
	for i, f := range valid {
		if err := f.Validate(); err != nil {
			t.Errorf("valid fault %d rejected: %v", i, err)
		}
	}
	bad := gpsFault()
	bad.Trigger = trace.EventKey{}
	if err := bad.Validate(); err == nil {
		t.Error("missing trigger accepted")
	}
	bad = gpsFault()
	bad.Resource = ""
	if err := bad.Validate(); err == nil {
		t.Error("missing resource accepted")
	}
	bad = gpsFault()
	bad.Level = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero level accepted")
	}
	bad = loopFault()
	bad.LoopSpec.PeriodMS = 0
	if err := bad.Validate(); err == nil {
		t.Error("loop without spec accepted")
	}
	bad = configFault()
	bad.ConfigKey = ""
	if err := bad.Validate(); err == nil {
		t.Error("config fault without key accepted")
	}
	bad = Fault{Kind: Kind(9), Trigger: gpsFault().Trigger, Resource: "x"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
}

// driveGPS runs a session that triggers the fault and backgrounds the app.
func driveGPS(t *testing.T, behaviors android.BehaviorMap) (*android.System, *android.Process) {
	t.Helper()
	sys := android.NewSystem(0)
	p := sys.NewProcess("opengps", WithBehaviorsForTest(behaviors))
	if err := p.LaunchActivity("LTracker/LoggerMap"); err != nil {
		t.Fatal(err)
	}
	if err := p.Background(); err != nil { // fires onPause -> release point
		t.Fatal(err)
	}
	if err := p.Idle(60_000); err != nil {
		t.Fatal(err)
	}
	return sys, p
}

// WithBehaviorsForTest adapts android.WithBehaviors for brevity here.
func WithBehaviorsForTest(b android.BehaviorMap) android.ProcessOption {
	return android.WithBehaviors(b)
}

func TestNoSleepBuggyVsFixed(t *testing.T) {
	f := gpsFault()

	buggy := android.BehaviorMap{}
	if err := f.InjectBehavior(buggy, false); err != nil {
		t.Fatal(err)
	}
	sysB, pB := driveGPS(t, buggy)
	uB := sysB.Ledger().UtilizationAt(pB.PID(), sysB.NowMS()-1)
	if uB.Get(trace.GPS) != 1 {
		t.Errorf("buggy app GPS in background = %v, want 1 (leak)", uB.Get(trace.GPS))
	}

	fixed := android.BehaviorMap{}
	if err := f.InjectBehavior(fixed, true); err != nil {
		t.Fatal(err)
	}
	sysF, pF := driveGPS(t, fixed)
	uF := sysF.Ledger().UtilizationAt(pF.PID(), sysF.NowMS()-1)
	if uF.Get(trace.GPS) != 0 {
		t.Errorf("fixed app GPS in background = %v, want 0", uF.Get(trace.GPS))
	}
}

func TestLoopBuggyNeverStops(t *testing.T) {
	f := loopFault()
	buggy := android.BehaviorMap{}
	if err := f.InjectBehavior(buggy, false); err != nil {
		t.Fatal(err)
	}
	sys := android.NewSystem(0)
	p := sys.NewProcess("tinfoil", android.WithBehaviors(buggy))
	if err := p.LaunchActivity("LFeed"); err != nil {
		t.Fatal(err)
	}
	if err := p.Tap("menu_item_newsfeed"); err != nil {
		t.Fatal(err)
	}
	if err := p.Background(); err != nil {
		t.Fatal(err)
	}
	if !p.LoopActive("sync") {
		t.Error("buggy loop stopped by backgrounding")
	}

	fixed := android.BehaviorMap{}
	if err := f.InjectBehavior(fixed, true); err != nil {
		t.Fatal(err)
	}
	p2 := sys.NewProcess("tinfoil-fixed", android.WithBehaviors(fixed))
	if err := p2.LaunchActivity("LFeed"); err != nil {
		t.Fatal(err)
	}
	if err := p2.Tap("menu_item_newsfeed"); err != nil {
		t.Fatal(err)
	}
	if err := p2.Background(); err != nil { // onPause stops the loop
		t.Fatal(err)
	}
	if p2.LoopActive("sync") {
		t.Error("fixed loop still running after release point")
	}
}

func TestConfigurationOnlyDrainsWhenMisconfigured(t *testing.T) {
	f := configFault()
	behaviors := android.BehaviorMap{}
	if err := f.InjectBehavior(behaviors, false); err != nil {
		t.Fatal(err)
	}
	sys := android.NewSystem(0)
	good := sys.NewProcess("k9-good", android.WithBehaviors(behaviors))
	if err := good.LaunchActivity("LMail/MessageList"); err != nil {
		t.Fatal(err)
	}
	if good.LoopActive("retry") {
		t.Error("well-configured app drains")
	}
	badP := sys.NewProcess("k9-bad", android.WithBehaviors(behaviors))
	badP.SetConfig("imapConnections", "50")
	if err := badP.LaunchActivity("LMail/MessageList"); err != nil {
		t.Fatal(err)
	}
	if !badP.LoopActive("retry") {
		t.Error("misconfigured app does not drain")
	}
}

func TestInjectBehaviorFixedNeedsReleasePoint(t *testing.T) {
	f := gpsFault()
	f.ReleasePoint = trace.EventKey{}
	if err := f.InjectBehavior(android.BehaviorMap{}, true); err == nil {
		t.Error("fixed variant without release point accepted")
	}
}

func triggerPkg(f Fault) *apk.Package {
	return &apk.Package{
		AppID: "app",
		Classes: []apk.Class{{
			Name: f.Trigger.Class,
			Methods: []apk.Method{
				{Name: f.Trigger.Callback, SourceLines: 40,
					Body: []apk.Instruction{{Op: apk.OpReturn}}},
			},
		}},
	}
}

func TestInjectAPKNoSleepShapes(t *testing.T) {
	f := gpsFault()
	pkg := triggerPkg(f)
	if err := f.InjectAPK(pkg, false); err != nil {
		t.Fatal(err)
	}
	m, err := pkg.Lookup(f.Trigger)
	if err != nil {
		t.Fatal(err)
	}
	g, err := apk.BuildCFG(m.Body)
	if err != nil {
		t.Fatal(err)
	}
	acq := apk.Acquires(m.Body)
	if len(acq) != 1 {
		t.Fatalf("acquires = %v", acq)
	}
	if !g.LeakPathExists(acq[0].Index, f.Resource) {
		t.Error("buggy body has no leaking path")
	}

	fixedPkg := triggerPkg(f)
	if err := f.InjectAPK(fixedPkg, true); err != nil {
		t.Fatal(err)
	}
	m, err = fixedPkg.Lookup(f.Trigger)
	if err != nil {
		t.Fatal(err)
	}
	g, err = apk.BuildCFG(m.Body)
	if err != nil {
		t.Fatal(err)
	}
	acq = apk.Acquires(m.Body)
	if g.LeakPathExists(acq[0].Index, f.Resource) {
		t.Error("fixed body still leaks")
	}
}

func TestInjectAPKLoopAndConfigBodiesBuild(t *testing.T) {
	for _, f := range []Fault{loopFault(), configFault()} {
		pkg := triggerPkg(f)
		if err := f.InjectAPK(pkg, false); err != nil {
			t.Fatal(err)
		}
		m, err := pkg.Lookup(f.Trigger)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := apk.BuildCFG(m.Body); err != nil {
			t.Errorf("%v body has invalid CFG: %v", f.Kind, err)
		}
		// Loop/config bugs must not look like no-sleep bugs to the
		// static baseline.
		if len(apk.Acquires(m.Body)) != 0 {
			t.Errorf("%v body contains acquires", f.Kind)
		}
	}
}

func TestInjectAPKMissingMethod(t *testing.T) {
	f := gpsFault()
	pkg := &apk.Package{AppID: "empty"}
	if err := f.InjectAPK(pkg, false); err == nil {
		t.Error("missing trigger method accepted")
	}
}
