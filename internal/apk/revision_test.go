package apk

import (
	"errors"
	"testing"

	"repro/internal/trace"
)

var (
	onResumeKey = trace.EventKey{Class: "Lcom/fsck/k9/activity/MessageList", Callback: "onResume"}
	onCreateKey = trace.EventKey{Class: "Lcom/fsck/k9/activity/MessageList", Callback: "onCreate"}
	missingKey  = trace.EventKey{Class: "LMissing", Callback: "x"}
)

func TestStampAndID(t *testing.T) {
	p := samplePackage()
	if got := p.ID(); got != "k9mail@0" {
		t.Errorf("unstamped ID = %q, want k9mail@0", got)
	}
	p.Stamp(0, "seed")
	if p.Rev.Parent != "" {
		t.Errorf("seed revision has parent %q", p.Rev.Parent)
	}
	p.Stamp(3, "add polling")
	if got := p.ID(); got != "k9mail@3" {
		t.Errorf("ID = %q, want k9mail@3", got)
	}
	if p.Rev.Parent != "k9mail@2" {
		t.Errorf("parent = %q, want k9mail@2", p.Rev.Parent)
	}
	if p.Rev.Label != "add polling" {
		t.Errorf("label = %q", p.Rev.Label)
	}
}

func TestCloneCopiesRevisionInfo(t *testing.T) {
	p := samplePackage()
	p.Stamp(2, "v2")
	c := p.Clone()
	if c.Rev == nil || *c.Rev != *p.Rev {
		t.Fatalf("clone revision info = %+v, want %+v", c.Rev, p.Rev)
	}
	c.Rev.Revision = 9
	if p.Rev.Revision != 2 {
		t.Error("mutating the clone's revision info reached the original")
	}
	if (&Package{AppID: "a"}).Clone().Rev != nil {
		t.Error("clone invented revision info for an unversioned package")
	}
}

func TestTweakMethodClamps(t *testing.T) {
	p := samplePackage()
	if err := p.TweakMethod(onResumeKey, 25); err != nil {
		t.Fatal(err)
	}
	if m, _ := p.Lookup(onResumeKey); m.SourceLines != 67 {
		t.Errorf("lines after +25 = %d, want 67", m.SourceLines)
	}
	if err := p.TweakMethod(onResumeKey, -1000); err != nil {
		t.Fatal(err)
	}
	if m, _ := p.Lookup(onResumeKey); m.SourceLines != 1 {
		t.Errorf("lines after huge removal = %d, want clamp to 1", m.SourceLines)
	}
	if err := p.TweakMethod(missingKey, 1); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("missing key err = %v", err)
	}
}

func TestAddCallBeforeReturn(t *testing.T) {
	p := samplePackage()
	callee := "Landroid/util/Log;->d"
	if err := p.AddCall(onCreateKey, callee); err != nil {
		t.Fatal(err)
	}
	m, _ := p.Lookup(onCreateKey)
	n := len(m.Body)
	if m.Body[n-1].Op != OpReturn {
		t.Fatalf("final instruction is %s, not return", m.Body[n-1].Op)
	}
	if ins := m.Body[n-2]; ins.Op != OpCall || ins.Args[0] != callee {
		t.Fatalf("instruction before return = %s, want call %s", ins, callee)
	}

	// A body with no trailing return gets the call appended.
	p.Class(onCreateKey.Class).Methods[0].Body = []Instruction{{Op: OpWork}}
	if err := p.AddCall(onCreateKey, callee); err != nil {
		t.Fatal(err)
	}
	m, _ = p.Lookup(onCreateKey)
	if last := m.Body[len(m.Body)-1]; last.Op != OpCall || last.Args[0] != callee {
		t.Fatalf("returnless body: last instruction = %s, want call %s", last, callee)
	}
	if err := p.AddCall(missingKey, callee); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("missing key err = %v", err)
	}
}

func TestRemoveCall(t *testing.T) {
	p := samplePackage()
	callee := "Lcom/fsck/k9/K9;->checkMail"
	found, err := p.RemoveCall(onResumeKey, callee)
	if err != nil || !found {
		t.Fatalf("remove of present call: found=%v err=%v", found, err)
	}
	m, _ := p.Lookup(onResumeKey)
	for _, ins := range m.Body {
		if ins.Op == OpCall {
			t.Fatalf("call survived removal: %s", ins)
		}
	}
	if found, err = p.RemoveCall(onResumeKey, callee); err != nil || found {
		t.Fatalf("remove of absent call: found=%v err=%v", found, err)
	}
	if _, err := p.RemoveCall(missingKey, callee); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("missing key err = %v", err)
	}
}

func TestAddAcquirePrepends(t *testing.T) {
	p := samplePackage()
	if err := p.AddAcquire(onResumeKey, "wakelock"); err != nil {
		t.Fatal(err)
	}
	m, _ := p.Lookup(onResumeKey)
	if first := m.Body[0]; first.Op != OpAcquire || first.Args[0] != "wakelock" {
		t.Fatalf("first instruction = %s, want acquire wakelock", first)
	}
	if err := p.AddAcquire(missingKey, "wakelock"); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("missing key err = %v", err)
	}
}
