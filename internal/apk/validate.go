package apk

import (
	"errors"
	"fmt"
)

// Validation errors.
var (
	ErrDuplicateClass  = errors.New("apk: duplicate class")
	ErrDuplicateMethod = errors.New("apk: duplicate method")
)

// Validate checks the structural integrity of the package: non-empty
// app ID, unique class names, unique method names per class,
// non-negative line counts, and control-flow graphs that build for
// every method body. App models are validated at construction so a
// malformed catalog entry fails fast instead of skewing an experiment.
func (p *Package) Validate() error {
	if p.AppID == "" {
		return errors.New("apk: package has no app ID")
	}
	classes := make(map[string]struct{}, len(p.Classes))
	for _, c := range p.Classes {
		if c.Name == "" {
			return errors.New("apk: class with empty name")
		}
		if _, dup := classes[c.Name]; dup {
			return fmt.Errorf("%w: %s", ErrDuplicateClass, c.Name)
		}
		classes[c.Name] = struct{}{}
		methods := make(map[string]struct{}, len(c.Methods))
		for _, m := range c.Methods {
			if m.Name == "" {
				return fmt.Errorf("apk: class %s has a method with empty name", c.Name)
			}
			if _, dup := methods[m.Name]; dup {
				return fmt.Errorf("%w: %s.%s", ErrDuplicateMethod, c.Name, m.Name)
			}
			methods[m.Name] = struct{}{}
			if m.SourceLines < 0 {
				return fmt.Errorf("apk: %s.%s has negative line count %d", c.Name, m.Name, m.SourceLines)
			}
			if _, err := BuildCFG(m.Body); err != nil {
				return fmt.Errorf("apk: %s.%s: %w", c.Name, m.Name, err)
			}
		}
	}
	return nil
}
