package apk

import "fmt"

// This file builds intra-method control-flow graphs over the smali-like
// instruction set. The No-sleep Detection baseline (Pathak et al. [9])
// uses them for its acquire/release path analysis: a no-sleep bug exists
// when some path from an `acquire R` reaches a `return` without passing
// a `release R`.

// CFG is the control-flow graph of one method body: succ[i] lists the
// instruction indices reachable directly from instruction i.
type CFG struct {
	Body []Instruction
	Succ [][]int
}

// BuildCFG constructs the control-flow graph of a method body.
// `if L` has two successors (fallthrough and the label), `goto L` one
// (the label), `return` none, everything else falls through.
func BuildCFG(body []Instruction) (*CFG, error) {
	labels := make(map[string]int)
	for i, ins := range body {
		if ins.Op == OpLabel {
			if len(ins.Args) != 1 {
				return nil, fmt.Errorf("apk: label at %d needs exactly one name", i)
			}
			if _, dup := labels[ins.Args[0]]; dup {
				return nil, fmt.Errorf("apk: duplicate label %q", ins.Args[0])
			}
			labels[ins.Args[0]] = i
		}
	}
	g := &CFG{Body: body, Succ: make([][]int, len(body))}
	for i, ins := range body {
		switch ins.Op {
		case OpReturn:
			// no successors
		case OpGoto:
			if len(ins.Args) != 1 {
				return nil, fmt.Errorf("apk: goto at %d needs a label", i)
			}
			tgt, ok := labels[ins.Args[0]]
			if !ok {
				return nil, fmt.Errorf("apk: goto to unknown label %q", ins.Args[0])
			}
			g.Succ[i] = []int{tgt}
		case OpIf:
			if len(ins.Args) != 1 {
				return nil, fmt.Errorf("apk: if at %d needs a label", i)
			}
			tgt, ok := labels[ins.Args[0]]
			if !ok {
				return nil, fmt.Errorf("apk: if to unknown label %q", ins.Args[0])
			}
			succ := []int{tgt}
			if i+1 < len(body) {
				succ = append(succ, i+1)
			}
			g.Succ[i] = succ
		default:
			if i+1 < len(body) {
				g.Succ[i] = []int{i + 1}
			}
		}
	}
	return g, nil
}

// LeakPathExists reports whether a path from instruction `from` reaches
// either a return or the end of the method without executing
// `release resource`. This is the core query of the no-sleep dataflow
// analysis.
func (g *CFG) LeakPathExists(from int, resource string) bool {
	if from < 0 || from >= len(g.Body) {
		return false
	}
	visited := make([]bool, len(g.Body))
	var dfs func(i int) bool
	dfs = func(i int) bool {
		if visited[i] {
			return false
		}
		visited[i] = true
		ins := g.Body[i]
		if ins.Op == OpRelease && len(ins.Args) == 1 && ins.Args[0] == resource {
			return false // this path releases; stop exploring it
		}
		if ins.Op == OpReturn || len(g.Succ[i]) == 0 {
			return true // reached an exit while still holding
		}
		for _, s := range g.Succ[i] {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	// Start the search *after* the acquire itself.
	for _, s := range g.Succ[from] {
		if dfs(s) {
			return true
		}
	}
	// Acquire with no successors: method ends immediately while holding.
	return len(g.Succ[from]) == 0
}

// Acquires returns the indices and resources of all acquire instructions
// in the body.
func Acquires(body []Instruction) []struct {
	Index    int
	Resource string
} {
	var out []struct {
		Index    int
		Resource string
	}
	for i, ins := range body {
		if ins.Op == OpAcquire && len(ins.Args) == 1 {
			out = append(out, struct {
				Index    int
				Resource string
			}{i, ins.Args[0]})
		}
	}
	return out
}
