package apk

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/trace"
)

func samplePackage() *Package {
	return &Package{
		AppID: "k9mail",
		Classes: []Class{
			{
				Name: "Lcom/fsck/k9/activity/MessageList",
				Methods: []Method{
					{Name: "onCreate", SourceLines: 80, Body: []Instruction{
						{Op: OpWork}, {Op: OpReturn},
					}},
					{Name: "onResume", SourceLines: 42, Body: []Instruction{
						{Op: OpWork},
						{Op: OpCall, Args: []string{"Lcom/fsck/k9/K9;->checkMail"}},
						{Op: OpReturn},
					}},
				},
			},
			{
				Name: "Lcom/fsck/k9/service/MailService",
				Methods: []Method{
					{Name: "onCreate", SourceLines: 39, Body: []Instruction{
						{Op: OpAcquire, Args: []string{"wakelock"}},
						{Op: OpWork},
						{Op: OpRelease, Args: []string{"wakelock"}},
						{Op: OpReturn},
					}},
				},
			},
		},
	}
}

func TestLookupAndLines(t *testing.T) {
	p := samplePackage()
	m, err := p.Lookup(trace.EventKey{Class: "Lcom/fsck/k9/activity/MessageList", Callback: "onResume"})
	if err != nil {
		t.Fatal(err)
	}
	if m.SourceLines != 42 {
		t.Errorf("lines = %d", m.SourceLines)
	}
	if _, err := p.Lookup(trace.EventKey{Class: "LMissing", Callback: "x"}); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("missing class err = %v", err)
	}
	if _, err := p.Lookup(trace.EventKey{Class: "Lcom/fsck/k9/service/MailService", Callback: "nope"}); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("missing method err = %v", err)
	}
	if got := p.TotalSourceLines(); got != 161 {
		t.Errorf("total lines = %d, want 161", got)
	}
}

func TestLinesFor(t *testing.T) {
	p := samplePackage()
	keys := []trace.EventKey{
		{Class: "Lcom/fsck/k9/activity/MessageList", Callback: "onResume"},
		{Class: "Lcom/fsck/k9/service/MailService", Callback: "onCreate"},
		{Class: "Lcom/fsck/k9/activity/MessageList", Callback: "onResume"}, // duplicate
		{Class: "Landroid/system/Idle", Callback: "Idle(No_Display)"},      // pseudo-event
	}
	if got := p.LinesFor(keys); got != 81 {
		t.Errorf("LinesFor = %d, want 81 (42+39, dup and pseudo ignored)", got)
	}
}

func TestEventKeysSorted(t *testing.T) {
	keys := samplePackage().EventKeys()
	if len(keys) != 3 {
		t.Fatalf("got %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		a, b := keys[i-1], keys[i]
		if a.Class > b.Class || (a.Class == b.Class && a.Callback > b.Callback) {
			t.Errorf("keys not sorted: %v before %v", a, b)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := samplePackage()
	c := p.Clone()
	c.Classes[0].Methods[0].Body[0].Op = OpNop
	c.Classes[0].Methods[0].SourceLines = 9999
	if p.Classes[0].Methods[0].Body[0].Op != OpWork {
		t.Error("clone shares instruction storage")
	}
	if p.Classes[0].Methods[0].SourceLines != 80 {
		t.Error("clone shares method storage")
	}
}

func TestSmaliRoundTrip(t *testing.T) {
	p := samplePackage()
	text := DisassembleString(p)
	if !strings.Contains(text, ".class Lcom/fsck/k9/service/MailService") {
		t.Fatalf("disassembly missing class:\n%s", text)
	}
	if !strings.Contains(text, "acquire wakelock") {
		t.Fatalf("disassembly missing instruction:\n%s", text)
	}
	back, err := Assemble(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.AppID != p.AppID {
		t.Errorf("appID = %q", back.AppID)
	}
	if DisassembleString(back) != text {
		t.Error("round trip not stable")
	}
	if back.TotalSourceLines() != p.TotalSourceLines() {
		t.Error("line counts lost in round trip")
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		".class A\n.class B\n",                             // nested class
		".end class\n",                                     // end outside
		".method m\n",                                      // method outside class
		".class A\n.method m\n.method n\n",                 // nested method
		".class A\n.end method\n",                          // end method outside
		".class A\nwork\n",                                 // instruction outside method
		".class A\n.method m lines=abc\n",                  // bad lines
		".class A\n.method m foo=1\n",                      // unknown attribute
		".class A\n.method m lines=1\n.end class\n",        // end class inside method
		".class A\n.method m lines=1\nwork\n.end method\n", // unterminated class
		".class A\n.method m lines=1\nwork\n",              // unterminated method
	}
	for _, in := range bad {
		if _, err := Assemble(strings.NewReader(in)); err == nil {
			t.Errorf("input accepted:\n%s", in)
		}
	}
}

func TestAssembleSkipsComments(t *testing.T) {
	in := "# generated\n.app x\n.class A\n.method m lines=3\n\nwork\n.end method\n.end class\n"
	p, err := Assemble(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Classes) != 1 || len(p.Classes[0].Methods) != 1 {
		t.Errorf("parsed = %+v", p)
	}
}

func TestBuildCFGLinear(t *testing.T) {
	body := []Instruction{{Op: OpWork}, {Op: OpWork}, {Op: OpReturn}}
	g, err := BuildCFG(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Succ[0]) != 1 || g.Succ[0][0] != 1 {
		t.Errorf("succ[0] = %v", g.Succ[0])
	}
	if len(g.Succ[2]) != 0 {
		t.Errorf("return has successors: %v", g.Succ[2])
	}
}

func TestBuildCFGBranches(t *testing.T) {
	body := []Instruction{
		{Op: OpIf, Args: []string{"skip"}}, // 0 -> 2 (label), 1
		{Op: OpWork},                       // 1 -> 2
		{Op: OpLabel, Args: []string{"skip"}},
		{Op: OpGoto, Args: []string{"skip"}}, // 3 -> 2 (loop)
	}
	g, err := BuildCFG(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Succ[0]) != 2 {
		t.Errorf("if succ = %v", g.Succ[0])
	}
	if len(g.Succ[3]) != 1 || g.Succ[3][0] != 2 {
		t.Errorf("goto succ = %v", g.Succ[3])
	}
}

func TestBuildCFGErrors(t *testing.T) {
	cases := [][]Instruction{
		{{Op: OpGoto, Args: []string{"missing"}}},
		{{Op: OpIf, Args: []string{"missing"}}},
		{{Op: OpGoto}},
		{{Op: OpIf}},
		{{Op: OpLabel}},
		{{Op: OpLabel, Args: []string{"a"}}, {Op: OpLabel, Args: []string{"a"}}},
	}
	for i, body := range cases {
		if _, err := BuildCFG(body); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLeakPathBalanced(t *testing.T) {
	body := []Instruction{
		{Op: OpAcquire, Args: []string{"wakelock"}},
		{Op: OpWork},
		{Op: OpRelease, Args: []string{"wakelock"}},
		{Op: OpReturn},
	}
	g, err := BuildCFG(body)
	if err != nil {
		t.Fatal(err)
	}
	if g.LeakPathExists(0, "wakelock") {
		t.Error("balanced acquire/release flagged as leak")
	}
}

func TestLeakPathOnBranch(t *testing.T) {
	// The classic no-sleep shape from [9]: an early-return path skips
	// the release.
	body := []Instruction{
		{Op: OpAcquire, Args: []string{"wakelock"}}, // 0
		{Op: OpIf, Args: []string{"early"}},         // 1
		{Op: OpRelease, Args: []string{"wakelock"}}, // 2
		{Op: OpReturn},                         // 3
		{Op: OpLabel, Args: []string{"early"}}, // 4
		{Op: OpReturn},                         // 5  <- leaks
	}
	g, err := BuildCFG(body)
	if err != nil {
		t.Fatal(err)
	}
	if !g.LeakPathExists(0, "wakelock") {
		t.Error("leaking branch not detected")
	}
	// A different resource is not leaked by this acquire.
	if g.LeakPathExists(0, "gps") {
		// the path never releases "gps" but also never acquired it;
		// LeakPathExists only answers for the resource asked about, so
		// this returning true is expected behaviour of the query —
		// the *baseline* pairs it with Acquires(). Document by asserting
		// the raw query result.
		t.Log("raw query flags unrelated resource; baseline filters via Acquires()")
	}
}

func TestLeakPathNoReturnFallsOffEnd(t *testing.T) {
	body := []Instruction{
		{Op: OpAcquire, Args: []string{"gps"}},
		{Op: OpWork},
	}
	g, err := BuildCFG(body)
	if err != nil {
		t.Fatal(err)
	}
	if !g.LeakPathExists(0, "gps") {
		t.Error("falling off the end while holding not detected")
	}
}

func TestLeakPathWithLoop(t *testing.T) {
	// Release inside a loop that always executes before return.
	body := []Instruction{
		{Op: OpAcquire, Args: []string{"sensor"}}, // 0
		{Op: OpLabel, Args: []string{"top"}},      // 1
		{Op: OpWork},                              // 2
		{Op: OpIf, Args: []string{"top"}},         // 3 (loop back or fall through)
		{Op: OpRelease, Args: []string{"sensor"}}, // 4
		{Op: OpReturn},                            // 5
	}
	g, err := BuildCFG(body)
	if err != nil {
		t.Fatal(err)
	}
	if g.LeakPathExists(0, "sensor") {
		t.Error("loop with guaranteed release flagged as leak")
	}
}

func TestAcquires(t *testing.T) {
	body := []Instruction{
		{Op: OpWork},
		{Op: OpAcquire, Args: []string{"wakelock"}},
		{Op: OpAcquire, Args: []string{"gps"}},
	}
	acq := Acquires(body)
	if len(acq) != 2 || acq[0].Resource != "wakelock" || acq[1].Index != 2 {
		t.Errorf("Acquires = %v", acq)
	}
}

func TestLeakPathOutOfRange(t *testing.T) {
	g, err := BuildCFG([]Instruction{{Op: OpReturn}})
	if err != nil {
		t.Fatal(err)
	}
	if g.LeakPathExists(-1, "x") || g.LeakPathExists(5, "x") {
		t.Error("out-of-range index flagged")
	}
}
