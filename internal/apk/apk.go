// Package apk models Android application packages at the level EnergyDx
// needs: classes, callback methods, smali-like bytecode bodies, and
// source-line accounting. The instrumenter (package instrument) consumes
// this model to inject entry/exit probes, and the No-sleep Detection
// baseline runs static dataflow analysis over method bodies.
//
// The paper's pipeline — "EnergyDx first unpacks the APK file and
// disassembles the Dalvik byte code files into assembly-like format ...
// then compiles the instrumented files back" (§II-C) — is reproduced by
// the Assemble/Disassemble text codec.
package apk

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Opcodes of the simplified smali-like instruction set. The set is small
// but sufficient to express the control flow and resource usage that the
// static baseline analyzes.
const (
	OpNop     = "nop"
	OpWork    = "work"    // arbitrary computation
	OpCall    = "call"    // call <Class;->method>
	OpAcquire = "acquire" // acquire <resource>
	OpRelease = "release" // release <resource>
	OpIf      = "if"      // if <label> (conditional branch)
	OpGoto    = "goto"    // goto <label>
	OpLabel   = "label"   // label <name>
	OpReturn  = "return"
	OpLog     = "log" // log <enter|exit> (injected by the instrumenter)
)

// Instruction is one smali-like instruction.
type Instruction struct {
	Op   string   `json:"op"`
	Args []string `json:"args,omitempty"`
}

// String renders the instruction in disassembly syntax.
func (i Instruction) String() string {
	if len(i.Args) == 0 {
		return i.Op
	}
	return i.Op + " " + strings.Join(i.Args, " ")
}

// Method is one method of a class.
type Method struct {
	// Name is the method name (e.g. "onResume").
	Name string `json:"name"`
	// SourceLines is the number of source lines backing the method; the
	// code-reduction metric sums these.
	SourceLines int `json:"sourceLines"`
	// Body is the method's bytecode.
	Body []Instruction `json:"body"`
}

// Class is one class in the package.
type Class struct {
	// Name is the class descriptor (e.g. "Lcom/fsck/k9/activity/MessageList").
	Name    string   `json:"name"`
	Methods []Method `json:"methods"`
}

// Method returns the named method, or nil.
func (c *Class) Method(name string) *Method {
	for i := range c.Methods {
		if c.Methods[i].Name == name {
			return &c.Methods[i]
		}
	}
	return nil
}

// Package is the APK model.
type Package struct {
	// AppID identifies the app (e.g. "k9mail").
	AppID   string  `json:"appId"`
	Classes []Class `json:"classes"`

	// Rev carries revision metadata for versioned APKs (package
	// revision). Nil for an unversioned package. The Assemble/
	// Disassemble text codec does not carry it: disassembly output
	// models one concrete APK, not its place in a version chain.
	Rev *RevisionInfo `json:"rev,omitempty"`
}

// ErrNoSuchMethod is returned when a lookup misses.
var ErrNoSuchMethod = errors.New("apk: no such method")

// Class returns the named class, or nil.
func (p *Package) Class(name string) *Class {
	for i := range p.Classes {
		if p.Classes[i].Name == name {
			return &p.Classes[i]
		}
	}
	return nil
}

// Lookup resolves an event key to its method.
func (p *Package) Lookup(key trace.EventKey) (*Method, error) {
	c := p.Class(key.Class)
	if c == nil {
		return nil, fmt.Errorf("%w: class %q", ErrNoSuchMethod, key.Class)
	}
	m := c.Method(key.Callback)
	if m == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchMethod, key)
	}
	return m, nil
}

// TotalSourceLines sums the source lines of every method, the paper's
// N_All in the code-reduction metric.
func (p *Package) TotalSourceLines() int {
	total := 0
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			total += m.SourceLines
		}
	}
	return total
}

// LinesFor sums the source lines of the methods behind the given event
// keys (the paper's N_Diagnosis). Unknown keys contribute zero lines:
// pseudo-events like Idle(No_Display) have no app code behind them.
func (p *Package) LinesFor(keys []trace.EventKey) int {
	total := 0
	seen := make(map[trace.EventKey]struct{}, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if m, err := p.Lookup(k); err == nil {
			total += m.SourceLines
		}
	}
	return total
}

// EventKeys lists every (class, method) pair in the package as event
// keys, sorted, for exhaustive instrumentation-pool matching.
func (p *Package) EventKeys() []trace.EventKey {
	var keys []trace.EventKey
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			keys = append(keys, trace.EventKey{Class: c.Name, Callback: m.Name})
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Class != keys[b].Class {
			return keys[a].Class < keys[b].Class
		}
		return keys[a].Callback < keys[b].Callback
	})
	return keys
}

// Clone deep-copies the package so instrumentation never mutates the
// original APK.
func (p *Package) Clone() *Package {
	out := &Package{AppID: p.AppID, Classes: make([]Class, len(p.Classes))}
	if p.Rev != nil {
		rev := *p.Rev
		out.Rev = &rev
	}
	for i, c := range p.Classes {
		nc := Class{Name: c.Name, Methods: make([]Method, len(c.Methods))}
		for j, m := range c.Methods {
			nm := Method{Name: m.Name, SourceLines: m.SourceLines, Body: make([]Instruction, len(m.Body))}
			for k, ins := range m.Body {
				args := make([]string, len(ins.Args))
				copy(args, ins.Args)
				nm.Body[k] = Instruction{Op: ins.Op, Args: args}
			}
			nc.Methods[j] = nm
		}
		out.Classes[i] = nc
	}
	return out
}
