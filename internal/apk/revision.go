package apk

import (
	"fmt"

	"repro/internal/trace"
)

// RevisionInfo identifies one version of an APK in a version chain.
// Revision 0 is the seed version; every later revision names its parent
// so a chain v0→vN is reconstructible from the packages alone.
type RevisionInfo struct {
	// Revision is the version index within the chain (0 = seed).
	Revision int `json:"revision"`
	// Parent is the parent version's identifier ("appID@N"), empty for
	// the seed.
	Parent string `json:"parent,omitempty"`
	// Label is a free-form description of the change set.
	Label string `json:"label,omitempty"`
}

// ID renders the package's chain identifier ("appID@N").
func (p *Package) ID() string {
	if p.Rev == nil {
		return p.AppID + "@0"
	}
	return fmt.Sprintf("%s@%d", p.AppID, p.Rev.Revision)
}

// Stamp records revision metadata on the package, deriving the parent
// identifier from the previous revision index.
func (p *Package) Stamp(revision int, label string) {
	info := &RevisionInfo{Revision: revision, Label: label}
	if revision > 0 {
		info.Parent = fmt.Sprintf("%s@%d", p.AppID, revision-1)
	}
	p.Rev = info
}

// The mutation operators below are the bytecode-level half of the
// revision model: each one applies a small, deterministic edit to a
// method body, the static shadow of a behavioral change applied by
// package revision. They mutate the receiver, so callers version a
// package by Clone()-ing the parent first.

// TweakMethod perturbs a method's source-line count by deltaLines,
// clamped so the method keeps at least one line (a revision edits code,
// it does not erase the method).
func (p *Package) TweakMethod(key trace.EventKey, deltaLines int) error {
	m, err := p.Lookup(key)
	if err != nil {
		return err
	}
	m.SourceLines += deltaLines
	if m.SourceLines < 1 {
		m.SourceLines = 1
	}
	return nil
}

// AddCall inserts a `call <callee>` instruction before the method's
// final return (or appends it when the body has no trailing return),
// modelling an API-call addition.
func (p *Package) AddCall(key trace.EventKey, callee string) error {
	m, err := p.Lookup(key)
	if err != nil {
		return err
	}
	ins := Instruction{Op: OpCall, Args: []string{callee}}
	if n := len(m.Body); n > 0 && m.Body[n-1].Op == OpReturn {
		m.Body = append(m.Body[:n-1:n-1], ins, m.Body[n-1])
	} else {
		m.Body = append(m.Body, ins)
	}
	return nil
}

// RemoveCall deletes the first `call <callee>` instruction from the
// method body, modelling an API-call removal. It reports whether a
// matching call was found.
func (p *Package) RemoveCall(key trace.EventKey, callee string) (bool, error) {
	m, err := p.Lookup(key)
	if err != nil {
		return false, err
	}
	for i, ins := range m.Body {
		if ins.Op == OpCall && len(ins.Args) == 1 && ins.Args[0] == callee {
			m.Body = append(m.Body[:i:i], m.Body[i+1:]...)
			return true, nil
		}
	}
	return false, nil
}

// AddAcquire inserts an `acquire <resource>` instruction at the top of
// the method body: the static shadow of a revision that starts holding
// a resource in this callback (the no-sleep regression shape).
func (p *Package) AddAcquire(key trace.EventKey, resource string) error {
	m, err := p.Lookup(key)
	if err != nil {
		return err
	}
	m.Body = append([]Instruction{{Op: OpAcquire, Args: []string{resource}}}, m.Body...)
	return nil
}
