package apk

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the assembly-like text format the EnergyDx
// instrumenter works on: the analogue of baksmali/smali in the paper's
// unpack → disassemble → instrument → reassemble → repack pipeline.
//
// Format:
//
//	.class Lcom/fsck/k9/activity/MessageList
//	.method onResume lines=42
//	    work
//	    acquire wakelock
//	    if skip
//	    release wakelock
//	    label skip
//	    return
//	.end method
//	.end class

// Disassemble renders the package in the text format.
func Disassemble(p *Package, w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".app %s\n", p.AppID)
	for _, c := range p.Classes {
		fmt.Fprintf(bw, ".class %s\n", c.Name)
		for _, m := range c.Methods {
			fmt.Fprintf(bw, ".method %s lines=%d\n", m.Name, m.SourceLines)
			for _, ins := range m.Body {
				fmt.Fprintf(bw, "    %s\n", ins.String())
			}
			fmt.Fprintln(bw, ".end method")
		}
		fmt.Fprintln(bw, ".end class")
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("disassemble: %w", err)
	}
	return nil
}

// DisassembleString renders the package to a string.
func DisassembleString(p *Package) string {
	var sb strings.Builder
	_ = Disassemble(p, &sb) // strings.Builder never errors
	return sb.String()
}

// AssembleError reports a malformed disassembly line.
type AssembleError struct {
	Line int
	Text string
	Msg  string
}

func (e *AssembleError) Error() string {
	return fmt.Sprintf("apk: line %d %q: %s", e.Line, e.Text, e.Msg)
}

// Assemble parses the text format back into a package.
func Assemble(r io.Reader) (*Package, error) {
	p := &Package{}
	var curClass *Class
	var curMethod *Method
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	fail := func(text, msg string) error {
		return &AssembleError{Line: lineNo, Text: text, Msg: msg}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, ".app "):
			p.AppID = strings.TrimSpace(strings.TrimPrefix(line, ".app "))
		case strings.HasPrefix(line, ".class "):
			if curClass != nil {
				return nil, fail(line, "nested .class")
			}
			p.Classes = append(p.Classes, Class{Name: strings.TrimSpace(strings.TrimPrefix(line, ".class "))})
			curClass = &p.Classes[len(p.Classes)-1]
		case line == ".end class":
			if curClass == nil {
				return nil, fail(line, ".end class outside class")
			}
			if curMethod != nil {
				return nil, fail(line, ".end class inside method")
			}
			curClass = nil
		case strings.HasPrefix(line, ".method "):
			if curClass == nil {
				return nil, fail(line, ".method outside class")
			}
			if curMethod != nil {
				return nil, fail(line, "nested .method")
			}
			rest := strings.TrimSpace(strings.TrimPrefix(line, ".method "))
			name, attr, _ := strings.Cut(rest, " ")
			lines := 0
			if attr != "" {
				val, found := strings.CutPrefix(strings.TrimSpace(attr), "lines=")
				if !found {
					return nil, fail(line, "unknown method attribute")
				}
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fail(line, "bad lines= value")
				}
				lines = n
			}
			curClass.Methods = append(curClass.Methods, Method{Name: name, SourceLines: lines})
			curMethod = &curClass.Methods[len(curClass.Methods)-1]
		case line == ".end method":
			if curMethod == nil {
				return nil, fail(line, ".end method outside method")
			}
			curMethod = nil
		default:
			if curMethod == nil {
				return nil, fail(line, "instruction outside method")
			}
			fields := strings.Fields(line)
			ins := Instruction{Op: fields[0]}
			if len(fields) > 1 {
				ins.Args = fields[1:]
			}
			curMethod.Body = append(curMethod.Body, ins)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("assemble: %w", err)
	}
	if curClass != nil || curMethod != nil {
		return nil, fmt.Errorf("apk: unexpected end of input (unterminated %s)",
			map[bool]string{true: "method", false: "class"}[curMethod != nil])
	}
	return p, nil
}
