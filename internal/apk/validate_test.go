package apk

import (
	"errors"
	"testing"
)

func validPkg() *Package {
	return &Package{
		AppID: "app",
		Classes: []Class{
			{Name: "LA", Methods: []Method{
				{Name: "m", SourceLines: 10, Body: []Instruction{{Op: OpReturn}}},
			}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validPkg().Validate(); err != nil {
		t.Errorf("valid package rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	noID := validPkg()
	noID.AppID = ""
	if err := noID.Validate(); err == nil {
		t.Error("missing app ID accepted")
	}

	dupClass := validPkg()
	dupClass.Classes = append(dupClass.Classes, Class{Name: "LA"})
	if err := dupClass.Validate(); !errors.Is(err, ErrDuplicateClass) {
		t.Errorf("duplicate class: %v", err)
	}

	dupMethod := validPkg()
	dupMethod.Classes[0].Methods = append(dupMethod.Classes[0].Methods,
		Method{Name: "m", Body: []Instruction{{Op: OpReturn}}})
	if err := dupMethod.Validate(); !errors.Is(err, ErrDuplicateMethod) {
		t.Errorf("duplicate method: %v", err)
	}

	emptyClass := validPkg()
	emptyClass.Classes[0].Name = ""
	if err := emptyClass.Validate(); err == nil {
		t.Error("empty class name accepted")
	}

	emptyMethod := validPkg()
	emptyMethod.Classes[0].Methods[0].Name = ""
	if err := emptyMethod.Validate(); err == nil {
		t.Error("empty method name accepted")
	}

	negLines := validPkg()
	negLines.Classes[0].Methods[0].SourceLines = -1
	if err := negLines.Validate(); err == nil {
		t.Error("negative line count accepted")
	}

	badBody := validPkg()
	badBody.Classes[0].Methods[0].Body = []Instruction{{Op: OpGoto, Args: []string{"nowhere"}}}
	if err := badBody.Validate(); err == nil {
		t.Error("broken CFG accepted")
	}
}
