package instrument

import (
	"strings"
	"testing"

	"repro/internal/apk"
	"repro/internal/trace"
)

func pkg() *apk.Package {
	return &apk.Package{
		AppID: "demo",
		Classes: []apk.Class{
			{
				Name: "Lcom/demo/Main",
				Methods: []apk.Method{
					{Name: "onResume", SourceLines: 20, Body: []apk.Instruction{
						{Op: apk.OpWork}, {Op: apk.OpReturn},
					}},
					{Name: "helper", SourceLines: 50, Body: []apk.Instruction{
						{Op: apk.OpWork}, {Op: apk.OpReturn},
					}},
					{Name: "onClick", SourceLines: 12, Body: []apk.Instruction{
						{Op: apk.OpIf, Args: []string{"done"}},
						{Op: apk.OpReturn},
						{Op: apk.OpLabel, Args: []string{"done"}},
						{Op: apk.OpWork},
					}},
					{Name: "menuDeleted", SourceLines: 8, Body: []apk.Instruction{
						{Op: apk.OpWork},
					}},
				},
			},
		},
	}
}

func TestDefaultPoolTableI(t *testing.T) {
	pool := DefaultPool()
	for _, cb := range []string{"onCreate", "onStart", "onResume", "onPause", "onStop",
		"onClick", "onLongClick", "onKey", "onTouch"} {
		if !pool.Contains(cb) {
			t.Errorf("pool missing Table I callback %q", cb)
		}
	}
	if pool.Contains("helper") || pool.Contains("computeChecksum") {
		t.Error("pool matches non-event methods")
	}
	if !pool.Contains("menu_item_newsfeed") || !pool.Contains("menuDeleted") {
		t.Error("pool should match menu callbacks from the case studies")
	}
	if len(pool.Names()) == 0 {
		t.Error("pool names empty")
	}
	var nilPool *Pool
	if nilPool.Contains("onCreate") {
		t.Error("nil pool matched")
	}
}

func TestInstrumentInjectsProbes(t *testing.T) {
	res, err := Instrument(pkg(), DefaultPool())
	if err != nil {
		t.Fatal(err)
	}
	// onResume, onClick, menuDeleted instrumented; helper untouched.
	if len(res.Keys) != 3 {
		t.Fatalf("instrumented keys = %v", res.Keys)
	}
	m, err := res.Package.Lookup(trace.EventKey{Class: "Lcom/demo/Main", Callback: "onResume"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Body[0].Op != apk.OpLog || m.Body[0].Args[0] != "enter" {
		t.Errorf("first instruction = %v", m.Body[0])
	}
	// Exit probe before the return.
	foundExitBeforeReturn := false
	for i, ins := range m.Body {
		if ins.Op == apk.OpReturn && i > 0 && m.Body[i-1].Op == apk.OpLog && m.Body[i-1].Args[0] == "exit" {
			foundExitBeforeReturn = true
		}
	}
	if !foundExitBeforeReturn {
		t.Errorf("no exit probe before return: %v", m.Body)
	}
	if !IsInstrumented(m) {
		t.Error("IsInstrumented false on instrumented method")
	}
	helper, err := res.Package.Lookup(trace.EventKey{Class: "Lcom/demo/Main", Callback: "helper"})
	if err != nil {
		t.Fatal(err)
	}
	if IsInstrumented(helper) {
		t.Error("helper method instrumented despite not being in the pool")
	}
}

func TestInstrumentMultipleReturns(t *testing.T) {
	res, err := Instrument(pkg(), DefaultPool())
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Package.Lookup(trace.EventKey{Class: "Lcom/demo/Main", Callback: "onClick"})
	if err != nil {
		t.Fatal(err)
	}
	// onClick has a mid-body return and falls off the end: expect one
	// enter probe + exit before the return + exit at the end = 3 probes.
	exits := 0
	for _, ins := range m.Body {
		if ins.Op == apk.OpLog && ins.Args[0] == "exit" {
			exits++
		}
	}
	if exits != 2 {
		t.Errorf("exit probes = %d, want 2: %v", exits, m.Body)
	}
	if m.Body[len(m.Body)-1].Op != apk.OpLog {
		t.Errorf("falling-off path not probed: %v", m.Body)
	}
}

func TestInstrumentDoesNotMutateOriginal(t *testing.T) {
	original := pkg()
	before := len(original.Classes[0].Methods[0].Body)
	if _, err := Instrument(original, DefaultPool()); err != nil {
		t.Fatal(err)
	}
	if len(original.Classes[0].Methods[0].Body) != before {
		t.Error("Instrument mutated its input")
	}
}

func TestInstrumentNilInputs(t *testing.T) {
	if _, err := Instrument(nil, DefaultPool()); err == nil {
		t.Error("nil package accepted")
	}
	// Nil pool falls back to the default pool.
	res, err := Instrument(pkg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) == 0 {
		t.Error("nil pool instrumented nothing")
	}
}

func TestInstrumentTextPipeline(t *testing.T) {
	text := apk.DisassembleString(pkg())
	var out strings.Builder
	res, err := InstrumentText(strings.NewReader(text), DefaultPool(), &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbeCount == 0 {
		t.Error("no probes injected")
	}
	if !strings.Contains(out.String(), "log enter") {
		t.Errorf("repacked text lacks probes:\n%s", out.String())
	}
	// The repacked text is a valid disassembly.
	back, err := apk.Assemble(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("repacked text does not assemble: %v", err)
	}
	if back.TotalSourceLines() != pkg().TotalSourceLines() {
		t.Error("source line accounting changed by instrumentation")
	}
}

func TestInstrumentTextBadInput(t *testing.T) {
	var out strings.Builder
	if _, err := InstrumentText(strings.NewReader(".class A\n.class B\n"), nil, &out); err == nil {
		t.Error("bad input accepted")
	}
}
