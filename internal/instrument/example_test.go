package instrument_test

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/instrument"
	"repro/internal/trace"
)

// Example shows the paper's instrumentation pipeline: disassemble an
// APK, inject entry/exit probes into the Table I event pool, and
// reassemble.
func Example() {
	disassembly := strings.TrimSpace(`
.app demo
.class Lcom/demo/Main
.method onResume lines=20
    work
    return
.end method
.method computeChecksum lines=300
    work
    return
.end method
.end class
`)
	var repacked strings.Builder
	res, err := instrument.InstrumentText(strings.NewReader(disassembly),
		instrument.DefaultPool(), &repacked)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumented callbacks: %d, probes: %d\n", len(res.Keys), res.ProbeCount)
	m, err := res.Package.Lookup(res.Keys[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s body starts with: %s\n", res.Keys[0].Callback, m.Body[0])
	// The 300-line helper is not an interaction/lifecycle event, so the
	// instrumenter leaves it alone (runtime overhead control).
	helper, err := res.Package.Lookup(trace.EventKey{
		Class: "Lcom/demo/Main", Callback: "computeChecksum",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("helper instrumented: %v\n", instrument.IsInstrumented(helper))
	// Output:
	// instrumented callbacks: 1, probes: 2
	// onResume body starts with: log enter
	// helper instrumented: false
}
