// Package instrument implements the EnergyDx instrumenter (paper §II-C):
// given an APK, it injects entry/exit logging probes into every callback
// that belongs to the pool of user-interaction and activity-lifecycle
// events (paper Table I), then repacks the APK. Developers "are not
// required to manually instrument every event and just need to run the
// instrumenter".
//
// The pipeline mirrors the paper's: unpack the APK, disassemble the
// bytecode into an assembly-like format, inject probes, reassemble, and
// repack. In this reproduction the unpack/repack steps operate on the
// apk package's text disassembly.
package instrument

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/apk"
	"repro/internal/trace"
)

// Pool is the set of callback names to instrument. The paper reduces
// runtime overhead by instrumenting only events "related to user
// interaction and activity lifecycle".
type Pool struct {
	callbacks map[string]struct{}
}

// NewPool builds a pool from callback names.
func NewPool(callbacks ...string) *Pool {
	p := &Pool{callbacks: make(map[string]struct{}, len(callbacks))}
	for _, cb := range callbacks {
		p.callbacks[cb] = struct{}{}
	}
	return p
}

// DefaultPool returns the paper's Table I event pool: activity-lifecycle
// callbacks (android.app.Activity) and UI callbacks (android.View),
// extended with the service lifecycle and the widget callbacks the case
// studies report (onItemClick, menu selections).
func DefaultPool() *Pool {
	return NewPool(
		// Activity lifecycle (Table I row 1).
		"onCreate", "onStart", "onRestart", "onResume", "onPause", "onStop", "onDestroy",
		// UI related (Table I row 2).
		"onClick", "onLongClick", "onKey", "onTouch", "onItemClick",
		"onMenuItemSelected", "onOptionsItemSelected",
	)
}

// Contains reports whether the callback name is in the pool.
func (p *Pool) Contains(callback string) bool {
	if p == nil {
		return false
	}
	// Menu items in the case-study apps are logged under their specific
	// menu callback names (e.g. menu_item_newsfeed, menuDeleted); the
	// instrumenter treats any "menu*" callback as UI-related.
	if _, ok := p.callbacks[callback]; ok {
		return true
	}
	return strings.HasPrefix(callback, "menu")
}

// Names returns the pool's explicit callback names, sorted.
func (p *Pool) Names() []string {
	names := make([]string, 0, len(p.callbacks))
	for n := range p.callbacks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Result is the outcome of instrumenting a package.
type Result struct {
	// Package is the instrumented copy; the input is never modified.
	Package *apk.Package
	// Keys lists the event keys that received probes, sorted.
	Keys []trace.EventKey
	// ProbeCount is the number of injected log instructions.
	ProbeCount int
}

// Instrument injects `log enter` at the start and `log exit` before every
// return (and at the end of methods that fall off) of each pool callback.
func Instrument(p *apk.Package, pool *Pool) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("instrument: nil package")
	}
	if pool == nil {
		pool = DefaultPool()
	}
	out := p.Clone()
	res := &Result{Package: out}
	for ci := range out.Classes {
		cls := &out.Classes[ci]
		for mi := range cls.Methods {
			m := &cls.Methods[mi]
			if !pool.Contains(m.Name) {
				continue
			}
			probes := instrumentBody(m)
			res.ProbeCount += probes
			res.Keys = append(res.Keys, trace.EventKey{Class: cls.Name, Callback: m.Name})
		}
	}
	sort.Slice(res.Keys, func(a, b int) bool {
		if res.Keys[a].Class != res.Keys[b].Class {
			return res.Keys[a].Class < res.Keys[b].Class
		}
		return res.Keys[a].Callback < res.Keys[b].Callback
	})
	return res, nil
}

// instrumentBody rewrites one method body in place and returns the number
// of probes inserted.
func instrumentBody(m *apk.Method) int {
	logEnter := apk.Instruction{Op: apk.OpLog, Args: []string{"enter"}}
	logExit := apk.Instruction{Op: apk.OpLog, Args: []string{"exit"}}

	body := make([]apk.Instruction, 0, len(m.Body)+2)
	probes := 1
	body = append(body, logEnter)
	sawTrailingReturn := false
	for i, ins := range m.Body {
		if ins.Op == apk.OpReturn {
			body = append(body, logExit)
			probes++
			if i == len(m.Body)-1 {
				sawTrailingReturn = true
			}
		}
		body = append(body, ins)
	}
	if !sawTrailingReturn && (len(m.Body) == 0 || m.Body[len(m.Body)-1].Op != apk.OpReturn) {
		body = append(body, logExit)
		probes++
	}
	m.Body = body
	return probes
}

// InstrumentText runs the full pipeline on a disassembled APK: assemble
// the text (the "unpack + disassemble" product), instrument, and
// disassemble again (ready to "reassemble + repack"). It is the
// text-level entry point matching the paper's workflow.
func InstrumentText(r io.Reader, pool *Pool, w io.Writer) (*Result, error) {
	pkg, err := apk.Assemble(r)
	if err != nil {
		return nil, fmt.Errorf("instrument: %w", err)
	}
	res, err := Instrument(pkg, pool)
	if err != nil {
		return nil, err
	}
	if err := apk.Disassemble(res.Package, w); err != nil {
		return nil, fmt.Errorf("instrument: %w", err)
	}
	return res, nil
}

// IsInstrumented reports whether a method already carries probes, which
// guards against double instrumentation.
func IsInstrumented(m *apk.Method) bool {
	for _, ins := range m.Body {
		if ins.Op == apk.OpLog {
			return true
		}
	}
	return false
}
