package collect

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// These tests speak the wire protocol directly to verify the server
// survives malformed clients.

func dialRaw(t *testing.T, s *Server) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestServerRejectsGarbageLine(t *testing.T) {
	s := startServer(t)
	conn := dialRaw(t, s)
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	ack, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ack, "ERR ") {
		t.Errorf("ack = %q, want ERR", ack)
	}
	if s.Count() != 0 {
		t.Error("garbage stored")
	}
}

func TestServerSurvivesGarbageThenAcceptsValid(t *testing.T) {
	s := startServer(t)
	conn := dialRaw(t, s)
	r := bufio.NewReader(conn)
	if _, err := conn.Write([]byte("{\"broken\": \n")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	// The server keeps serving: a fresh client upload still works.
	c := NewClient(s.Addr())
	err := c.Upload(PhoneState{Charging: true, OnWiFi: true},
		[]*trace.TraceBundle{bundle("app", "u", "t1")})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 {
		t.Errorf("count = %d", s.Count())
	}
}

func TestServerEmptyLinesIgnored(t *testing.T) {
	s := startServer(t)
	conn := dialRaw(t, s)
	if _, err := conn.Write([]byte("\n\n\n")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// Give the handler a moment, then confirm nothing was stored and
	// the server still accepts uploads.
	c := NewClient(s.Addr())
	err := c.Upload(PhoneState{Charging: true, OnWiFi: true},
		[]*trace.TraceBundle{bundle("app", "u", "t2")})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 {
		t.Errorf("count = %d", s.Count())
	}
}
