package collect

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// flakyDialer fails the first n dials, then delegates to the real
// dialer.
type flakyDialer struct {
	mu       sync.Mutex
	failures int
	dials    int
}

func (f *flakyDialer) dial(addr string, timeout time.Duration) (net.Conn, error) {
	f.mu.Lock()
	f.dials++
	fail := f.dials <= f.failures
	f.mu.Unlock()
	if fail {
		return nil, errors.New("injected dial failure")
	}
	return net.DialTimeout("tcp", addr, timeout)
}

func TestClientRetriesThroughDialFailures(t *testing.T) {
	srv := startServer(t)
	fd := &flakyDialer{failures: 2}
	var slept []time.Duration
	c := NewClient(srv.Addr(),
		WithDialer(fd.dial),
		WithRetry(5, time.Millisecond, 8*time.Millisecond),
		WithJitterSeed(1))
	c.sleep = func(d time.Duration) { slept = append(slept, d) }

	err := c.Upload(PhoneState{Charging: true, OnWiFi: true},
		[]*trace.TraceBundle{bundle("app", "u", "t1")})
	if err != nil {
		t.Fatalf("upload did not survive %d dial failures: %v", fd.failures, err)
	}
	if fd.dials != 3 {
		t.Errorf("dialed %d times, want 3 (2 failures + 1 success)", fd.dials)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times between attempts, want 2", len(slept))
	}
	if srv.Count() != 1 {
		t.Errorf("server stores %d bundles, want 1", srv.Count())
	}
}

func TestClientBackoffGrowsAndCaps(t *testing.T) {
	fd := &flakyDialer{failures: 1 << 30} // never succeeds
	var slept []time.Duration
	const (
		base = 100 * time.Millisecond
		max  = 300 * time.Millisecond
	)
	c := NewClient("unused:0",
		WithDialer(fd.dial),
		WithRetry(5, base, max),
		WithJitterSeed(7))
	c.sleep = func(d time.Duration) { slept = append(slept, d) }

	err := c.Upload(PhoneState{Charging: true, OnWiFi: true},
		[]*trace.TraceBundle{bundle("app", "u", "t1")})
	if err == nil {
		t.Fatal("upload succeeded with a dialer that always fails")
	}
	if !strings.Contains(err.Error(), "after 5 attempts") {
		t.Errorf("error does not report the attempt budget: %v", err)
	}
	if len(slept) != 4 {
		t.Fatalf("slept %d times for 5 attempts, want 4", len(slept))
	}
	// base<<(n-1) capped at max, plus at most 50% jitter.
	wantFloor := []time.Duration{base, 2 * base, max, max}
	for i, d := range slept {
		if d < wantFloor[i] || d > wantFloor[i]+wantFloor[i]/2 {
			t.Errorf("backoff %d = %v, want within [%v, %v]", i, d, wantFloor[i], wantFloor[i]*3/2)
		}
	}
}

// TestClientResumesFromFirstUnacked verifies that a connection cut
// mid-batch does not restart the upload from scratch: acknowledged
// bundles stay acknowledged, and the retry resumes at the first
// unacknowledged one (the server-side dedup then absorbs any overlap).
func TestClientResumesFromFirstUnacked(t *testing.T) {
	srv := startServer(t)
	batch := []*trace.TraceBundle{
		bundle("app", "u1", "t1"),
		bundle("app", "u2", "t2"),
		bundle("app", "u3", "t3"),
	}

	// A proxy connection that dies after forwarding one bundle's worth
	// of traffic on the first dial, then behaves.
	dials := 0
	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		dials++
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		if dials == 1 {
			return &droppingConn{Conn: conn, writesLeft: 1}, nil
		}
		return conn, nil
	}
	c := NewClient(srv.Addr(),
		WithDialer(dial),
		WithRetry(3, time.Millisecond, 2*time.Millisecond),
		WithJitterSeed(3))
	if err := c.Upload(PhoneState{Charging: true, OnWiFi: true}, batch); err != nil {
		t.Fatalf("upload did not recover from the cut connection: %v", err)
	}
	if srv.Count() != len(batch) {
		t.Errorf("server stores %d bundles, want %d", srv.Count(), len(batch))
	}
	if dials != 2 {
		t.Errorf("dialed %d times, want 2", dials)
	}
}

// droppingConn forwards writesLeft writes, then fails everything.
type droppingConn struct {
	net.Conn
	writesLeft int
}

func (d *droppingConn) Write(b []byte) (int, error) {
	if d.writesLeft <= 0 {
		d.Conn.Close()
		return 0, errors.New("connection cut (test)")
	}
	d.writesLeft--
	return d.Conn.Write(b)
}

// TestPermanentRejectionSurfacesAfterRetries pins the error shape for a
// bundle the server will never accept: the upload fails with the
// rejection (not a generic timeout), wrapped in the attempts report.
func TestPermanentRejectionSurfacesAfterRetries(t *testing.T) {
	srv := startServer(t)
	bad := bundle("", "u", "t") // no app id: deterministic rejection
	c := NewClient(srv.Addr(),
		WithRetry(3, time.Millisecond, 2*time.Millisecond),
		WithJitterSeed(9))
	err := c.Upload(PhoneState{Charging: true, OnWiFi: true}, []*trace.TraceBundle{bad})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want a wrapped *RejectedError", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error does not report the attempt budget: %v", err)
	}
	if srv.Count() != 0 {
		t.Errorf("rejected bundle was stored")
	}
}
