package collect

import (
	"bytes"
	"encoding/json"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestFullPipelineOverNetwork exercises the deployed topology end to
// end: phones generate traces, upload them over TCP under the
// charging/WiFi policy, and the backend diagnoses the server's stored
// corpus. This is the system-level integration test.
func TestFullPipelineOverNetwork(t *testing.T) {
	srv := startServer(t)

	app, err := apps.ByAppID("opengps")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, 77)
	cfg.Users = 15
	cfg.ImpactedFraction = 0.2
	cfg.Scrub = false // clients scrub on upload
	corpus, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	client := NewClient(srv.Addr())
	if err := client.Upload(PhoneState{Charging: true, OnWiFi: true}, corpus.Bundles); err != nil {
		t.Fatal(err)
	}
	stored := srv.Bundles(app.AppID)
	if len(stored) != 15 {
		t.Fatalf("server stored %d bundles", len(stored))
	}

	acfg := core.DefaultConfig()
	acfg.DeveloperImpactPercent = corpus.ImpactedPercent
	analyzer, err := core.NewAnalyzer(acfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := analyzer.Analyze(stored)
	if err != nil {
		t.Fatal(err)
	}
	if report.ImpactedTraces == 0 {
		t.Fatal("no manifestation points detected over the network path")
	}
	// The scrubbed user IDs must still let Step 5 count distinct users.
	if len(report.Impacted) == 0 {
		t.Fatal("no events reported")
	}
	cr, err := core.ComputeCodeReduction(report, app.Package(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Reduction < 0.8 {
		t.Errorf("network-path code reduction = %.2f", cr.Reduction)
	}
}

// TestSoakFaultInjectedConvergence is the ingestion soak test: N
// concurrent clients push a corpus through a fault injector that
// corrupts, truncates, duplicates and drops well over 10% of the wire
// traffic, and the system must converge to the exact fault-free state —
// every bundle stored exactly once, every mangled line quarantined, and
// the analysis report byte-identical to the one computed without any
// faults. The injectors and jitter RNGs are seeded, so the fault
// schedule (and therefore the test) is deterministic.
func TestSoakFaultInjectedConvergence(t *testing.T) {
	const (
		soakClients    = 6
		usersPerClient = 5
	)
	app, err := apps.ByAppID("opengps")
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig(app, 41)
	wcfg.Users = soakClients * usersPerClient
	wcfg.ImpactedFraction = 0.25
	wcfg.Scrub = false // clients scrub on upload
	corpus, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}

	// Fault-free golden: what the server must hold after the chaos. The
	// client scrubs and stamps before sending, and the server's re-scrub
	// is idempotent, so the stored bundles must equal this exactly.
	golden := make([]*trace.TraceBundle, len(corpus.Bundles))
	for i, b := range corpus.Bundles {
		sb := trace.ScrubBundle(b)
		sb.Key = trace.ContentKey(sb)
		golden[i] = sb
	}
	goldenReport := soakReport(t, golden, corpus.ImpactedPercent)

	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", WithFileStore(store))
	if err != nil {
		t.Fatal(err)
	}

	// Well over the acceptance floor: 12% corrupt, 12% dropped
	// connections, plus truncation, duplication, delays and batch
	// reordering.
	fcfg := faults.Config{
		CorruptProb:   0.12,
		TruncateProb:  0.10,
		DuplicateProb: 0.10,
		DropProb:      0.12,
		DelayProb:     0.05,
		MaxDelay:      time.Millisecond,
		ReorderProb:   0.5,
	}
	injectors := make([]*faults.Injector, soakClients)
	uploadErrs := make([]error, soakClients)
	var wg sync.WaitGroup
	for ci := 0; ci < soakClients; ci++ {
		// Widely spaced seeds: adjacent math/rand seeds produce
		// correlated early draws, which skews the aggregate schedule.
		fcfg.Seed = int64(ci+1) * 2654435761
		in, err := faults.New(fcfg)
		if err != nil {
			t.Fatal(err)
		}
		injectors[ci] = in
		chunk := corpus.Bundles[ci*usersPerClient : (ci+1)*usersPerClient]
		wg.Add(1)
		go func(ci int, in *faults.Injector, chunk []*trace.TraceBundle) {
			defer wg.Done()
			client := NewClient(srv.Addr(),
				WithFaults(in),
				WithJitterSeed(int64(ci)),
				WithRetry(60, time.Millisecond, 4*time.Millisecond),
				WithTimeout(500*time.Millisecond))
			uploadErrs[ci] = client.Upload(PhoneState{Charging: true, OnWiFi: true}, chunk)
		}(ci, in, chunk)
	}
	wg.Wait()
	for ci, err := range uploadErrs {
		if err != nil {
			t.Fatalf("client %d did not converge: %v", ci, err)
		}
	}

	var total faults.Stats
	for _, in := range injectors {
		s := in.Stats()
		total.Lines += s.Lines
		total.Corrupted += s.Corrupted
		total.Truncated += s.Truncated
		total.Duplicated += s.Duplicated
		total.Dropped += s.Dropped
	}
	t.Logf("injected faults: %s", total)
	if total.Corrupted == 0 || total.Truncated == 0 || total.Duplicated == 0 || total.Dropped == 0 {
		t.Fatalf("fault schedule did not exercise every kind: %s", total)
	}

	// Exactly-once storage despite duplicates and retries.
	if srv.Count() != len(corpus.Bundles) {
		t.Fatalf("server stores %d bundles, want exactly %d", srv.Count(), len(corpus.Bundles))
	}
	// Every mangled line was quarantined, never stored. (A corrupted
	// byte can become a newline and split one line into several
	// rejected fragments, so the count is a floor, not an equality.)
	qcount := srv.QuarantineCount()
	if qcount < total.Corrupted+total.Truncated {
		t.Errorf("quarantined %d lines, want at least %d (corrupted %d + truncated %d)",
			qcount, total.Corrupted+total.Truncated, total.Corrupted, total.Truncated)
	}

	// The diagnosis over the survivors is byte-identical to the
	// fault-free analysis.
	stored := srv.Bundles(app.AppID)
	if got := soakReport(t, stored, corpus.ImpactedPercent); !bytes.Equal(got, goldenReport) {
		t.Errorf("analysis over fault-injected corpus differs from fault-free golden (%d vs %d bytes)",
			len(got), len(goldenReport))
	}

	// A restart over the same store sees the identical corpus and the
	// full quarantine.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	srv2, err := NewServer("127.0.0.1:0", WithFileStore(store2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if srv2.Count() != len(corpus.Bundles) {
		t.Fatalf("restarted server stores %d bundles, want %d", srv2.Count(), len(corpus.Bundles))
	}
	if got := soakReport(t, srv2.Bundles(app.AppID), corpus.ImpactedPercent); !bytes.Equal(got, goldenReport) {
		t.Errorf("analysis after restart differs from fault-free golden")
	}
	entries, err := store2.LoadQuarantine()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != qcount {
		t.Errorf("durable quarantine holds %d entries, server counted %d", len(entries), qcount)
	}
}

// soakReport renders the analysis of a bundle set as indented JSON,
// after sorting by (user, trace) so arrival order — scrambled by
// concurrency, reordering and retries — cannot leak into the bytes.
func soakReport(t *testing.T, bundles []*trace.TraceBundle, impactedPct float64) []byte {
	t.Helper()
	sorted := make([]*trace.TraceBundle, len(bundles))
	copy(sorted, bundles)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Event.UserID != sorted[j].Event.UserID {
			return sorted[i].Event.UserID < sorted[j].Event.UserID
		}
		return sorted[i].Event.TraceID < sorted[j].Event.TraceID
	})
	cfg := core.DefaultConfig()
	cfg.DeveloperImpactPercent = impactedPct
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := analyzer.Analyze(sorted)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}
