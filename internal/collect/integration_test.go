package collect

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestFullPipelineOverNetwork exercises the deployed topology end to
// end: phones generate traces, upload them over TCP under the
// charging/WiFi policy, and the backend diagnoses the server's stored
// corpus. This is the system-level integration test.
func TestFullPipelineOverNetwork(t *testing.T) {
	srv := startServer(t)

	app, err := apps.ByAppID("opengps")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, 77)
	cfg.Users = 15
	cfg.ImpactedFraction = 0.2
	cfg.Scrub = false // clients scrub on upload
	corpus, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	client := NewClient(srv.Addr())
	if err := client.Upload(PhoneState{Charging: true, OnWiFi: true}, corpus.Bundles); err != nil {
		t.Fatal(err)
	}
	stored := srv.Bundles(app.AppID)
	if len(stored) != 15 {
		t.Fatalf("server stored %d bundles", len(stored))
	}

	acfg := core.DefaultConfig()
	acfg.DeveloperImpactPercent = corpus.ImpactedPercent
	analyzer, err := core.NewAnalyzer(acfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := analyzer.Analyze(stored)
	if err != nil {
		t.Fatal(err)
	}
	if report.ImpactedTraces == 0 {
		t.Fatal("no manifestation points detected over the network path")
	}
	// The scrubbed user IDs must still let Step 5 count distinct users.
	if len(report.Impacted) == 0 {
		t.Fatal("no events reported")
	}
	cr, err := core.ComputeCodeReduction(report, app.Package(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Reduction < 0.8 {
		t.Errorf("network-path code reduction = %.2f", cr.Reduction)
	}
}
