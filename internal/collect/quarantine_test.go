package collect

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// wireLine serializes a bundle as the client would put it on the wire
// (scrubbed, key-stamped, newline-terminated).
func wireLine(t *testing.T, b *trace.TraceBundle) []byte {
	t.Helper()
	sb := trace.ScrubBundle(b)
	sb.Key = trace.ContentKey(sb)
	var buf bytes.Buffer
	if err := trace.EncodeBundle(&buf, sb); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestQuarantineKeepsRejectedLines(t *testing.T) {
	s := startServer(t)
	conn := dialRaw(t, s)
	r := bufio.NewReader(conn)

	garbage := "definitely not json\n"
	if _, err := conn.Write([]byte(garbage)); err != nil {
		t.Fatal(err)
	}
	ack, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ack, "ERR ? ") {
		t.Errorf("undecodable line acked %q, want ERR with unknown key", ack)
	}
	if s.QuarantineCount() != 1 {
		t.Fatalf("quarantine count = %d, want 1", s.QuarantineCount())
	}
	entries := s.Quarantine()
	if len(entries) != 1 {
		t.Fatalf("quarantine holds %d entries, want 1", len(entries))
	}
	if string(entries[0].Line) != strings.TrimSuffix(garbage, "\n") {
		t.Errorf("quarantined line = %q, want the offending bytes", entries[0].Line)
	}
	if !strings.Contains(entries[0].Reason, "decode") {
		t.Errorf("reason = %q, want a decode error", entries[0].Reason)
	}
	if s.Count() != 0 {
		t.Error("rejected line reached the store")
	}
}

func TestQuarantineOnIntegrityMismatch(t *testing.T) {
	s := startServer(t)
	conn := dialRaw(t, s)
	r := bufio.NewReader(conn)

	// A validly stamped bundle whose content is then altered in a way
	// that still parses: the server must catch the key mismatch.
	line := wireLine(t, bundle("app", "u1", "t1"))
	tampered := bytes.Replace(line, []byte(`"t1"`), []byte(`"t2"`), 1)
	if bytes.Equal(tampered, line) {
		t.Fatal("tampering had no effect; test setup broken")
	}
	if _, err := conn.Write(tampered); err != nil {
		t.Fatal(err)
	}
	ack, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ack, "ERR ") || !strings.Contains(ack, "integrity") {
		t.Errorf("tampered line acked %q, want an integrity rejection", ack)
	}
	// The rejection carries the stamped key, so the client (and the
	// quarantine) can attribute it to the original upload.
	entries := s.Quarantine()
	if len(entries) != 1 || entries[0].Key == "" {
		t.Fatalf("quarantine = %+v, want one entry carrying the stamped key", entries)
	}
	if s.Count() != 0 {
		t.Error("tampered bundle reached the store")
	}
}

func TestLimitsRejectOversizeAndOverlongTraces(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithLimits(Limits{MaxLineBytes: 512, MaxRecords: 1}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	// More records than MaxRecords: rejected with a per-line ERR.
	conn := dialRaw(t, s)
	r := bufio.NewReader(conn)
	if _, err := conn.Write(wireLine(t, bundle("app", "u1", "t1"))); err != nil { // 2 records
		t.Fatal(err)
	}
	ack, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ack, "ERR ") || !strings.Contains(ack, "limit") {
		t.Errorf("overlong trace acked %q, want a limit rejection", ack)
	}

	// A line over MaxLineBytes: quarantined by size class, connection
	// closed (the scanner cannot resync mid-line).
	conn2 := dialRaw(t, s)
	r2 := bufio.NewReader(conn2)
	huge := append(bytes.Repeat([]byte("x"), 600), '\n')
	if _, err := conn2.Write(huge); err != nil {
		t.Fatal(err)
	}
	ack2, err := r2.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ack2, "byte limit") {
		t.Errorf("oversize line acked %q, want a byte-limit rejection", ack2)
	}
	if _, err := r2.ReadString('\n'); err == nil {
		t.Error("connection survived an oversize line")
	}
	if got := s.QuarantineCount(); got != 2 {
		t.Errorf("quarantine count = %d, want 2", got)
	}
	if s.Count() != 0 {
		t.Error("limited bundle reached the store")
	}
}

func TestBadLineBudgetClosesConnection(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithLimits(Limits{MaxBadLinesPerConn: 2}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	conn := dialRaw(t, s)
	r := bufio.NewReader(conn)
	for i := 0; i < 3; i++ {
		if _, err := conn.Write([]byte(fmt.Sprintf("garbage %d\n", i))); err != nil {
			t.Fatal(err)
		}
	}
	acks := 0
	for {
		if _, err := r.ReadString('\n'); err != nil {
			break
		}
		acks++
	}
	if acks != 3 {
		t.Errorf("got %d ERR acks before the close, want 3", acks)
	}
	// A good client can still connect afterwards.
	c := NewClient(s.Addr())
	if err := c.Upload(PhoneState{Charging: true, OnWiFi: true},
		[]*trace.TraceBundle{bundle("app", "u", "t")}); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantineRingIsBounded(t *testing.T) {
	s := startServer(t)
	for i := 0; i < maxQuarantineKept+50; i++ {
		s.quarantineLine([]byte(fmt.Sprintf("junk %d", i)), "", errors.New("test reject"), nil)
	}
	if got := s.QuarantineCount(); got != maxQuarantineKept+50 {
		t.Errorf("total count = %d, want %d", got, maxQuarantineKept+50)
	}
	entries := s.Quarantine()
	if len(entries) != maxQuarantineKept {
		t.Fatalf("in-memory quarantine holds %d entries, want the cap %d", len(entries), maxQuarantineKept)
	}
	// The ring keeps the most recent entries.
	if want := fmt.Sprintf("junk %d", maxQuarantineKept+49); string(entries[len(entries)-1].Line) != want {
		t.Errorf("newest entry = %q, want %q", entries[len(entries)-1].Line, want)
	}
}

func TestQuarantinePersistsAndNeverLoadsAsCorpus(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer("127.0.0.1:0", WithFileStore(store))
	if err != nil {
		t.Fatal(err)
	}
	conn := dialRaw(t, s)
	r := bufio.NewReader(conn)
	if _, err := conn.Write([]byte("broken line\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	c := NewClient(s.Addr())
	if err := c.Upload(PhoneState{Charging: true, OnWiFi: true},
		[]*trace.TraceBundle{bundle("app", "u", "t")}); err != nil {
		t.Fatal(err)
	}
	// The raw connection must be gone before Close, which waits for
	// in-flight handlers.
	conn.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	entries, err := store2.LoadQuarantine()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || string(entries[0].Line) != "broken line" {
		t.Fatalf("persisted quarantine = %+v, want the rejected line", entries)
	}
	// Load returns only accepted bundles: the quarantine subdirectory
	// must never be picked up as a corpus file.
	loaded, skipped, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("clean store load skipped %d lines", skipped)
	}
	total := 0
	for _, bs := range loaded {
		total += len(bs)
	}
	if total != 1 {
		t.Errorf("loaded %d bundles, want 1 (quarantine must not load)", total)
	}
}

func TestStoreLoadToleratesTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(bundle("app", "u1", "t1")); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, unterminated partial record.
	path := filepath.Join(dir, "app.jsonl")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"event":{"appId":"app","rec`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	store2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	loaded, skipped, err := store2.Load()
	if err != nil {
		t.Fatalf("torn trailing line must not fail the load: %v", err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d torn lines, want 1", skipped)
	}
	if len(loaded["app"]) != 1 {
		t.Errorf("loaded %d bundles, want the 1 intact one", len(loaded["app"]))
	}
}
