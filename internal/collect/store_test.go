package collect

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestFileStoreAppendAndLoad(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range []*trace.TraceBundle{
		bundle("k9mail", "u1", "t1"),
		bundle("k9mail", "u2", "t2"),
		bundle("opengps", "u1", "t1"),
	} {
		if err := store.Append(b); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	loaded, skipped, err := reopened.Load()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d lines on a clean store", skipped)
	}
	if len(loaded["k9mail"]) != 2 || len(loaded["opengps"]) != 1 {
		t.Errorf("loaded = %d k9, %d gps", len(loaded["k9mail"]), len(loaded["opengps"]))
	}
}

func TestFileStoreSanitizesNames(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	evil := bundle("../../etc/passwd", "u", "t")
	if err := store.Append(evil); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	if filepath.Dir(filepath.Join(dir, entries[0].Name())) != dir {
		t.Errorf("store escaped its directory: %q", entries[0].Name())
	}
}

func TestServerSurvivesRestartWithStore(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", WithFileStore(store))
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv.Addr())
	st := PhoneState{Charging: true, OnWiFi: true}
	if err := c.Upload(st, []*trace.TraceBundle{
		bundle("k9mail", "u1", "t1"), bundle("k9mail", "u2", "t2"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same directory sees the old
	// bundles and deduplicates re-uploads against them.
	store2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	srv2, err := NewServer("127.0.0.1:0", WithFileStore(store2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if srv2.Count() != 2 {
		t.Fatalf("restarted server holds %d bundles, want 2", srv2.Count())
	}
	c2 := NewClient(srv2.Addr())
	if err := c2.Upload(st, []*trace.TraceBundle{
		bundle("k9mail", "u1", "t1"), // duplicate of a persisted bundle
		bundle("k9mail", "u3", "t3"), // new
	}); err != nil {
		t.Fatal(err)
	}
	if srv2.Count() != 3 {
		t.Errorf("after dedup + new upload: %d bundles, want 3", srv2.Count())
	}
	// And the new bundle was persisted too.
	loaded, _, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded["k9mail"]) != 3 {
		t.Errorf("persisted = %d, want 3", len(loaded["k9mail"]))
	}
}

func TestStreamHelpersRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	in := []*trace.TraceBundle{bundle("a", "u1", "t1"), bundle("a", "u2", "t2")}
	if err := trace.WriteBundles(f, in); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	out, err := trace.ReadBundles(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Event.UserID != "u1" || out[1].Event.TraceID != "t2" {
		t.Errorf("round trip = %+v", out)
	}
}
