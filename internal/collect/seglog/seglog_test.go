package seglog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

func open(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func mustAppend(t *testing.T, l *Log, key, body string) {
	t.Helper()
	if err := l.AppendBundle(key, []byte(body)); err != nil {
		t.Fatalf("AppendBundle(%s): %v", key, err)
	}
}

// collect scans the log into a map plus the in-order quarantine bodies.
func collect(t *testing.T, l *Log) (map[string]string, []string) {
	t.Helper()
	bundles := map[string]string{}
	var quarantine []string
	err := l.Scan(func(typ byte, key string, body []byte) error {
		switch typ {
		case TypeBundle:
			bundles[key] = string(body)
		case TypeQuarantine:
			quarantine = append(quarantine, string(body))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return bundles, quarantine
}

func TestAppendScanReopen(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	for i := 0; i < 20; i++ {
		mustAppend(t, l, fmt.Sprintf("k%02d", i), fmt.Sprintf("payload-%d", i))
	}
	if err := l.AppendQuarantine([]byte(`{"bad":1}`)); err != nil {
		t.Fatalf("AppendQuarantine: %v", err)
	}
	if err := l.AppendQuarantine([]byte(`{"bad":2}`)); err != nil {
		t.Fatalf("AppendQuarantine: %v", err)
	}
	if err := l.Tombstone("k03"); err != nil {
		t.Fatalf("Tombstone: %v", err)
	}
	check := func(l *Log) {
		t.Helper()
		bundles, quarantine := collect(t, l)
		if len(bundles) != 19 {
			t.Fatalf("want 19 live bundles, got %d", len(bundles))
		}
		if _, ok := bundles["k03"]; ok {
			t.Fatal("tombstoned key still live")
		}
		if bundles["k07"] != "payload-7" {
			t.Fatalf("k07 = %q", bundles["k07"])
		}
		if len(quarantine) != 2 || quarantine[0] != `{"bad":1}` || quarantine[1] != `{"bad":2}` {
			t.Fatalf("quarantine replay = %q", quarantine)
		}
		if !l.Has("k00") || l.Has("k03") {
			t.Fatal("Has disagrees with Scan")
		}
		body, typ, err := l.Get("k11")
		if err != nil || typ != TypeBundle || string(body) != "payload-11" {
			t.Fatalf("Get(k11) = %q %d %v", body, typ, err)
		}
	}
	check(l)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := open(t, dir, Options{})
	defer l2.Close()
	check(l2)
	// And the log keeps accepting after reopen.
	mustAppend(t, l2, "post-reopen", "x")
	if !l2.Has("post-reopen") {
		t.Fatal("append after reopen lost")
	}
}

func TestDuplicateKeyIdempotent(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	mustAppend(t, l, "dup", "same-bytes")
	mustAppend(t, l, "dup", "same-bytes")
	bundles, _ := collect(t, l)
	if len(bundles) != 1 || bundles["dup"] != "same-bytes" {
		t.Fatalf("bundles = %v", bundles)
	}
	st := l.Stats()
	if st.Appends != 2 || st.LiveRecords != 1 {
		t.Fatalf("stats = %+v", st)
	}
	l.Close()
	l2 := open(t, dir, Options{})
	defer l2.Close()
	bundles, _ = collect(t, l2)
	if len(bundles) != 1 {
		t.Fatalf("after reopen: %v", bundles)
	}
}

// TestGroupCommitBatching: 64 concurrent appenders must share fsyncs.
func TestGroupCommitBatching(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	defer l.Close()
	const workers, per = 64, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.AppendBundle(fmt.Sprintf("w%02d-%04d", w, i), []byte("body")); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != workers*per {
		t.Fatalf("appends = %d", st.Appends)
	}
	if st.Commits >= st.Appends {
		t.Fatalf("no batching: %d commits for %d appends", st.Commits, st.Appends)
	}
	t.Logf("fsyncs-per-append = %.3f (%d commits / %d appends)",
		float64(st.Commits)/float64(st.Appends), st.Commits, st.Appends)
	bundles, _ := collect(t, l)
	if len(bundles) != workers*per {
		t.Fatalf("live = %d", len(bundles))
	}
}

// activeSegment returns the path of the lexicographically-last segment.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("no segments")
	}
	return filepath.Join(dir, names[len(names)-1])
}

// TestCrashTruncatedTail simulates a kill mid-append: a partial frame
// at the end of the active segment. Replay must recover every acked
// record and drop the torn bytes.
func TestCrashTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	for i := 0; i < 10; i++ {
		mustAppend(t, l, fmt.Sprintf("acked-%d", i), "v")
	}
	l.Close()

	seg := activeSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A torn record: plausible length prefix, then the crash.
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := open(t, dir, Options{})
	defer l2.Close()
	if st := l2.Stats(); st.Truncated == 0 {
		t.Fatal("no tail truncation recorded")
	}
	bundles, _ := collect(t, l2)
	if len(bundles) != 10 {
		t.Fatalf("acked bundles lost: %d/10 live", len(bundles))
	}
	// The truncated log must accept and persist new records.
	mustAppend(t, l2, "after-crash", "v")
	l2.Close()
	l3 := open(t, dir, Options{})
	defer l3.Close()
	if !l3.Has("after-crash") || !l3.Has("acked-9") {
		t.Fatal("records lost after post-crash append")
	}
}

// TestCrashBadCRC flips a byte inside the final record: the torn record
// is dropped, everything before it survives.
func TestCrashBadCRC(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	for i := 0; i < 5; i++ {
		mustAppend(t, l, fmt.Sprintf("k%d", i), "v")
	}
	// Note where the last record begins, then corrupt one byte past it.
	sizeBefore := fileSizeAt(t, activeSegment(t, dir))
	mustAppend(t, l, "torn", "this one dies")
	l.Close()

	seg := activeSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[sizeBefore+12] ^= 0xff // inside the torn record's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := open(t, dir, Options{})
	defer l2.Close()
	bundles, _ := collect(t, l2)
	if len(bundles) != 5 {
		t.Fatalf("want 5 survivors, got %d", len(bundles))
	}
	if l2.Has("torn") {
		t.Fatal("corrupt record replayed")
	}
	if st := l2.Stats(); st.Truncated == 0 {
		t.Fatal("no truncation recorded")
	}
}

func fileSizeAt(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// TestSealedCorruptionFails: damage in a non-last segment is data loss,
// not a torn tail — Open must refuse rather than silently truncate.
func TestSealedCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 40; i++ {
		mustAppend(t, l, fmt.Sprintf("k%02d", i), "some payload to fill segments")
	}
	l.Close()
	ents, _ := os.ReadDir(dir)
	if len(ents) < 3 {
		t.Fatalf("want several segments, got %d", len(ents))
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	sealed := filepath.Join(dir, names[0])
	data, _ := os.ReadFile(sealed)
	data[len(data)/2] ^= 0xff
	os.WriteFile(sealed, data, 0o644)
	if _, err := Open(dir, Options{SegmentBytes: 256}); !errors.Is(err, ErrSealedTorn) {
		t.Fatalf("want ErrSealedTorn, got %v", err)
	}
}

func TestRotationReplay(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{SegmentBytes: 512})
	const n = 100
	for i := 0; i < n; i++ {
		mustAppend(t, l, fmt.Sprintf("k%03d", i), "padding padding padding")
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("no rotation: %+v", st)
	}
	l.Close()
	l2 := open(t, dir, Options{SegmentBytes: 512})
	defer l2.Close()
	bundles, _ := collect(t, l2)
	if len(bundles) != n {
		t.Fatalf("lost records across rotation: %d/%d", len(bundles), n)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{SegmentBytes: 400})
	for i := 0; i < 60; i++ {
		mustAppend(t, l, fmt.Sprintf("k%02d", i%10), fmt.Sprintf("generation-%d", i/10))
	}
	for _, dead := range []string{"k00", "k01"} {
		if err := l.Tombstone(dead); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats()
	if before.DeadBytes == 0 {
		t.Fatalf("expected dead bytes before compaction: %+v", before)
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := l.Stats()
	if after.Compactions != 1 {
		t.Fatalf("compactions = %d", after.Compactions)
	}
	if after.DeadBytes != 0 {
		t.Fatalf("dead bytes survived compaction: %+v", after)
	}
	if after.Segments >= before.Segments {
		t.Fatalf("segments %d -> %d", before.Segments, after.Segments)
	}
	verify := func(l *Log) {
		t.Helper()
		bundles, _ := collect(t, l)
		if len(bundles) != 8 {
			t.Fatalf("live = %d, want 8", len(bundles))
		}
		for i := 2; i < 10; i++ {
			if bundles[fmt.Sprintf("k%02d", i)] != "generation-5" {
				t.Fatalf("k%02d = %q, want last generation", i, bundles[fmt.Sprintf("k%02d", i)])
			}
		}
	}
	verify(l)
	l.Close()
	l2 := open(t, dir, Options{SegmentBytes: 400})
	defer l2.Close()
	verify(l2)
	// Compacted log keeps compacting (generation numbers advance).
	for i := 0; i < 30; i++ {
		mustAppend(t, l2, fmt.Sprintf("k%02d", i%10), "newer")
	}
	if err := l2.Compact(); err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	bundles, _ := collect(t, l2)
	for i := 0; i < 10; i++ {
		if bundles[fmt.Sprintf("k%02d", i)] != "newer" {
			t.Fatalf("k%02d stale after second compaction", i)
		}
	}
}

func TestQuarantineKeepCap(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{SegmentBytes: 256, QuarantineKeep: 3})
	for i := 0; i < 10; i++ {
		if err := l.AppendQuarantine([]byte(fmt.Sprintf("bad-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(t, l, "pad", "force a rotation boundary")
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	_, quarantine := collect(t, l)
	if len(quarantine) > 7 { // records still in the active segment survive the cap
		t.Fatalf("quarantine cap ineffective: %d live", len(quarantine))
	}
	// Replay order of survivors is preserved.
	for i := 1; i < len(quarantine); i++ {
		if quarantine[i-1] >= quarantine[i] {
			t.Fatalf("quarantine order broken: %q", quarantine)
		}
	}
	l.Close()
}

// TestConcurrentAppendScanCompact races the three public paths; run
// with -race in the soak job.
func TestConcurrentAppendScanCompact(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{SegmentBytes: 2048, AutoCompact: true, CompactRatio: 0.3})
	defer l.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				key := fmt.Sprintf("k%02d", (w*150+i)%25) // heavy supersession
				if err := l.AppendBundle(key, []byte("concurrent body, re-appended")); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = l.Scan(func(byte, string, []byte) error { return nil })
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := l.Compact(); err != nil && !errors.Is(err, errCompacting) {
				t.Errorf("compact: %v", err)
			}
		}
	}()
	wg.Wait()
	bundles, _ := collect(t, l)
	if len(bundles) != 25 {
		t.Fatalf("live keys = %d, want 25", len(bundles))
	}
}

// TestCloseAckInvariant: an Append that returned nil is durable even if
// Close raced it; an ErrClosed append left no trace.
func TestCloseAckInvariant(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	var mu sync.Mutex
	acked := map[string]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				key := fmt.Sprintf("w%02d-%04d", w, i)
				err := l.AppendBundle(key, []byte("v"))
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				acked[key] = true
				mu.Unlock()
			}
		}(w)
	}
	// Let the appenders get going, then slam the door.
	for l.Stats().Appends < 200 {
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()

	l2 := open(t, dir, Options{})
	defer l2.Close()
	bundles, _ := collect(t, l2)
	for key := range acked {
		if _, ok := bundles[key]; !ok {
			t.Fatalf("acked record %s lost by Close race", key)
		}
	}
}

func TestEmptyAndMissingKeys(t *testing.T) {
	l := open(t, t.TempDir(), Options{})
	defer l.Close()
	if err := l.AppendBundle("", []byte("x")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("want ErrEmptyKey, got %v", err)
	}
	if _, _, err := l.Get("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
	if err := l.Append(42, "k", nil); !errors.Is(err, ErrBadType) {
		t.Fatalf("want ErrBadType, got %v", err)
	}
}
