// Package seglog is the segmented append-only bundle log backing the
// fleet-scale collection tier: content-key-addressed records in
// fixed-size segments, per-record CRC (via the binenc frame format —
// one codec for wire and disk), torn-tail truncation on replay, group
// commit, and background compaction of superseded records.
//
// # On-disk layout
//
// A log directory holds segment files replayed in lexicographic order:
//
//	cmp-<gen>.log   at most one compacted segment (live survivors of
//	                all previously sealed segments), sorts first
//	seg-<n>.log     sealed segments, then the active tail segment
//	*.tmp           in-progress compaction output; deleted on open
//
// Each record is one binenc frame whose payload is
//
//	u8       record type (bundle=1, tombstone=2, quarantine=3)
//	str      record key (uvarint length + bytes)
//	bytes    record body (rest of the frame)
//
// Bundle records are addressed by their content key, so a key is
// immutable: re-appending it is idempotent and replay keeps the last
// occurrence. A tombstone kills the key; compaction then reclaims both.
// Quarantine records carry log-assigned keys ("q!<seq>") so rejected
// uploads replay in arrival order.
//
// # Group commit
//
// Append encodes the record, queues it, and the first queued appender
// becomes the commit leader: it drains the whole queue, writes every
// frame with ONE write syscall and ONE fsync, then acks all waiters.
// Appenders arriving while a commit is in flight pile up and form the
// next batch — batching emerges from fsync latency itself, with no
// linger timer, so an idle log still commits a lone record in one
// fsync's time while 64 concurrent uploaders amortize each fsync over
// the whole pileup. This replaces the per-bundle Sync-under-one-mutex
// of the JSONL store, whose throughput was capped at 1/fsync-latency.
//
// # Recovery
//
// Open replays every segment front to back. A frame that fails its CRC
// or runs out of bytes in the LAST file is a torn tail from a crash
// mid-commit: the file is truncated at the last good frame and the log
// continues — every acked record survives (it was fsynced before its
// ack), and the torn record was never acked. The same damage in a
// sealed segment is real data loss and fails Open.
package seglog

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/trace/binenc"
)

// Record types.
const (
	TypeBundle     byte = 1
	TypeTombstone  byte = 2
	TypeQuarantine byte = 3
)

// Errors.
var (
	ErrClosed      = errors.New("seglog: log is closed")
	ErrEmptyKey    = errors.New("seglog: empty record key")
	ErrSealedTorn  = errors.New("seglog: corrupt record in sealed segment")
	ErrBadType     = errors.New("seglog: unknown record type")
	errCompacting  = errors.New("seglog: compaction already running")
	errKeyTooLarge = errors.New("seglog: record key too large")
)

const (
	segPrefix       = "seg-"
	cmpPrefix       = "cmp-"
	logSuffix       = ".log"
	tmpSuffix       = ".tmp"
	maxKeyLen       = 1024
	defaultSegBytes = 4 << 20
)

// Options tunes a Log; the zero value gives production defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it would exceed this
	// many bytes (default 4 MiB). A record larger than the limit still
	// lands in a segment of its own.
	SegmentBytes int64
	// MaxRecordBytes bounds a replayed frame (default
	// binenc.MaxFrameBytes).
	MaxRecordBytes int
	// AutoCompact triggers a background Compact after a rotation when
	// the dead fraction of sealed bytes exceeds CompactRatio.
	AutoCompact bool
	// CompactRatio is the dead-bytes fraction that arms AutoCompact
	// (default 0.5).
	CompactRatio float64
	// QuarantineKeep caps quarantine records at compaction time,
	// dropping the oldest beyond the cap; 0 keeps all.
	QuarantineKeep int
}

// Stats is a point-in-time snapshot of log counters.
type Stats struct {
	// Appends is the number of records acked durable.
	Appends int64
	// Commits is the number of fsyncs — group commit's whole point is
	// Commits ≪ Appends under concurrency.
	Commits int64
	// Rotations counts sealed segments over the log's lifetime.
	Rotations int64
	// Compactions counts completed Compact runs.
	Compactions int64
	// Segments is the current number of segment files.
	Segments int
	// LiveRecords is the number of replayable records (bundles +
	// quarantine).
	LiveRecords int
	// DeadBytes is the sealed-segment byte count owned by superseded or
	// tombstoned records, reclaimable by Compact.
	DeadBytes int64
	// LiveBytes is the sealed-segment byte count owned by live records.
	LiveBytes int64
	// Truncated is the number of bytes cut from a torn tail at Open.
	Truncated int64
}

var (
	mAppends  = obs.Default.Counter("seglog_appends_total", "records acked durable")
	mCommits  = obs.Default.Counter("seglog_commits_total", "group-commit fsyncs")
	mRotate   = obs.Default.Counter("seglog_rotations_total", "segments sealed")
	mCompact  = obs.Default.Counter("seglog_compactions_total", "compaction runs")
	mTruncate = obs.Default.Counter("seglog_truncated_bytes_total", "torn-tail bytes dropped at replay")
	gBatch    = obs.Default.Gauge("seglog_last_commit_batch", "records in the most recent group commit")
)

// recRef locates a record: segment name, byte offset, framed length.
type recRef struct {
	seg  string
	off  int64
	size int64
	typ  byte
}

type segInfo struct {
	name  string
	bytes int64 // total framed bytes
	live  int64 // framed bytes still referenced by the index
}

type pendingOp struct {
	frame []byte
	key   string
	typ   byte
	done  chan error
}

// Log is a segmented append-only record log with group commit. All
// methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	// mu guards everything in this block. The file handle and its
	// write offset are owned by the commit leader under ioMu; nothing
	// ever waits on ioMu while holding mu.
	mu         sync.Mutex
	idle       sync.Cond // signaled when committing drops to false
	index      map[string]recRef
	segs       []segInfo // replay order; last is active
	queue      []*pendingOp
	committing bool
	compacting bool
	closed     bool
	qseq       uint64 // next quarantine sequence number
	cmpGen     uint64 // next compacted-segment generation
	stats      Stats

	ioMu     sync.Mutex
	f        *os.File
	curName  string
	curBytes int64
}

// Open replays (and repairs) the log in dir, creating it if needed.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegBytes
	}
	if opts.MaxRecordBytes <= 0 {
		opts.MaxRecordBytes = binenc.MaxFrameBytes
	}
	if opts.CompactRatio <= 0 {
		opts.CompactRatio = 0.5
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("seglog: %w", err)
	}
	l := &Log{dir: dir, opts: opts, index: make(map[string]recRef)}
	l.idle.L = &l.mu
	if err := l.replay(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Log) segPath(name string) string { return filepath.Join(l.dir, name) }

// listSegments returns replayable segment files in replay order and
// removes stray compaction temporaries.
func (l *Log) listSegments() ([]string, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("seglog: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			if err := os.Remove(l.segPath(name)); err != nil {
				return nil, fmt.Errorf("seglog: drop stray %s: %w", name, err)
			}
		case strings.HasSuffix(name, logSuffix) &&
			(strings.HasPrefix(name, segPrefix) || strings.HasPrefix(name, cmpPrefix)):
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

func segName(n uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, n, logSuffix) }
func cmpName(g uint64) string { return fmt.Sprintf("%s%016d%s", cmpPrefix, g, logSuffix) }

// segNum parses the sequence number out of seg-<n>.log, -1 otherwise.
func segNum(name string) int64 {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, logSuffix) {
		return -1
	}
	var n int64
	if _, err := fmt.Sscanf(name, segPrefix+"%d"+logSuffix, &n); err != nil {
		return -1
	}
	return n
}

func (l *Log) replay() error {
	names, err := l.listSegments()
	if err != nil {
		return err
	}
	var maxSeg int64 = -1
	for fi, name := range names {
		last := fi == len(names)-1
		if n := segNum(name); n > maxSeg {
			maxSeg = n
		}
		if strings.HasPrefix(name, cmpPrefix) {
			var g uint64
			if _, err := fmt.Sscanf(name, cmpPrefix+"%d"+logSuffix, &g); err == nil && g >= l.cmpGen {
				l.cmpGen = g + 1
			}
		}
		size, err := l.replaySegment(name, last)
		if err != nil {
			return err
		}
		l.segs = append(l.segs, segInfo{name: name, bytes: size})
	}
	// Recompute per-segment live bytes from the final index.
	liveBySeg := make(map[string]int64)
	for _, ref := range l.index {
		liveBySeg[ref.seg] += ref.size
	}
	for i := range l.segs {
		l.segs[i].live = liveBySeg[l.segs[i].name]
	}
	// Continue the highest-numbered seg file as the active segment, or
	// start a fresh one (also when only a cmp file exists: cmp files
	// are sealed by construction).
	active := segName(uint64(maxSeg + 1))
	if len(l.segs) > 0 && l.segs[len(l.segs)-1].name == segName(uint64(maxSeg)) {
		active = l.segs[len(l.segs)-1].name
	} else {
		l.segs = append(l.segs, segInfo{name: active})
	}
	f, err := os.OpenFile(l.segPath(active), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("seglog: open active segment: %w", err)
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return fmt.Errorf("seglog: seek active segment: %w", err)
	}
	l.f, l.curName, l.curBytes = f, active, end
	return nil
}

// replaySegment scans one file, indexing records; for the last file a
// torn tail is truncated instead of failing. Returns the surviving size.
func (l *Log) replaySegment(name string, last bool) (int64, error) {
	f, err := os.Open(l.segPath(name))
	if err != nil {
		return 0, fmt.Errorf("seglog: %w", err)
	}
	defer f.Close()
	truncate := func(off int64, cause error) (int64, error) {
		if !last {
			return 0, fmt.Errorf("%w: %s at offset %d: %v", ErrSealedTorn, name, off, cause)
		}
		cut := fileSize(f) - off
		if terr := os.Truncate(l.segPath(name), off); terr != nil {
			return 0, fmt.Errorf("seglog: truncate torn tail of %s: %w", name, terr)
		}
		l.stats.Truncated += cut
		mTruncate.Add(cut)
		return off, nil
	}
	var off int64
	r := bufReader(f)
	for {
		payload, err := binenc.ReadFrame(r, l.opts.MaxRecordBytes)
		if err == io.EOF {
			return off, nil
		}
		if err != nil {
			return truncate(off, err)
		}
		size := int64(len(payload)) + binenc.FrameOverhead
		typ, key, _, err := splitRecord(payload)
		if err != nil {
			return truncate(off, err)
		}
		l.applyRecord(typ, key, recRef{seg: name, off: off, size: size, typ: typ})
		off += size
	}
}

// applyRecord folds one replayed/committed record into the index.
// Caller holds mu (or is the single-threaded replay).
func (l *Log) applyRecord(typ byte, key string, ref recRef) {
	switch typ {
	case TypeTombstone:
		delete(l.index, key)
	case TypeBundle, TypeQuarantine:
		if typ == TypeQuarantine {
			if n := qseqOf(key); n >= l.qseq {
				l.qseq = n + 1
			}
		}
		l.index[key] = ref
	}
}

// qseqOf parses the sequence out of a "q!<seq>" key, or 0.
func qseqOf(key string) uint64 {
	var n uint64
	if _, err := fmt.Sscanf(key, "q!%d", &n); err != nil {
		return 0
	}
	return n
}

func fileSize(f *os.File) int64 {
	st, err := f.Stat()
	if err != nil {
		return 0
	}
	return st.Size()
}

// splitRecord parses a record payload into (type, key, body).
func splitRecord(payload []byte) (byte, string, []byte, error) {
	if len(payload) == 0 {
		return 0, "", nil, io.ErrUnexpectedEOF
	}
	typ := payload[0]
	if typ != TypeBundle && typ != TypeTombstone && typ != TypeQuarantine {
		return 0, "", nil, fmt.Errorf("%w: %d", ErrBadType, typ)
	}
	rest := payload[1:]
	n, w := uvarint(rest)
	if w <= 0 || n > maxKeyLen || n > uint64(len(rest)-w) {
		return 0, "", nil, io.ErrUnexpectedEOF
	}
	key := string(rest[w : w+int(n)])
	return typ, key, rest[w+int(n):], nil
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

func appendRecord(dst []byte, typ byte, key string, body []byte) []byte {
	payload := make([]byte, 0, 1+2+len(key)+len(body))
	payload = append(payload, typ)
	payload = appendUvarint(payload, uint64(len(key)))
	payload = append(payload, key...)
	payload = append(payload, body...)
	return binenc.AppendFrame(dst, payload)
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Append group-commits one record and returns once it is fsynced. The
// call blocks for at most ~two fsync latencies; under concurrent load
// many Appends share each fsync.
func (l *Log) Append(typ byte, key string, body []byte) error {
	if typ != TypeBundle && typ != TypeTombstone && typ != TypeQuarantine {
		return fmt.Errorf("%w: %d", ErrBadType, typ)
	}
	if len(key) > maxKeyLen {
		return errKeyTooLarge
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if typ == TypeQuarantine && key == "" {
		key = fmt.Sprintf("q!%016d", l.qseq)
		l.qseq++
	}
	if key == "" {
		l.mu.Unlock()
		return ErrEmptyKey
	}
	op := &pendingOp{frame: appendRecord(nil, typ, key, body), key: key, typ: typ, done: make(chan error, 1)}
	l.queue = append(l.queue, op)
	if l.committing {
		l.mu.Unlock() // a leader is in flight; it will pick us up
	} else {
		l.committing = true
		l.commitLoop() // unlocks mu
	}
	return <-op.done
}

// AppendBundle appends a content-key-addressed bundle record.
func (l *Log) AppendBundle(key string, payload []byte) error {
	return l.Append(TypeBundle, key, payload)
}

// AppendQuarantine appends a rejected upload; the log assigns the key.
func (l *Log) AppendQuarantine(line []byte) error {
	return l.Append(TypeQuarantine, "", line)
}

// Tombstone kills key: replay and Scan stop surfacing it and compaction
// reclaims its bytes.
func (l *Log) Tombstone(key string) error {
	return l.Append(TypeTombstone, key, nil)
}

// commitLoop runs as the commit leader. Called with mu held and
// committing set; returns with mu released. Even after Close is
// observed the loop drains every queued op (each gets an ack), because
// Append stops admitting new ops once closed is set.
func (l *Log) commitLoop() {
	for {
		batch := l.queue
		l.queue = nil
		l.mu.Unlock()

		l.ioMu.Lock()
		refs, rotated, err := l.writeBatch(batch)
		l.ioMu.Unlock()

		l.mu.Lock()
		if err == nil {
			for i, op := range batch {
				prev, had := l.index[op.key]
				l.applyRecord(op.typ, op.key, refs[i])
				liveDelta := refs[i].size
				if op.typ == TypeTombstone {
					liveDelta = 0 // a tombstone's own bytes are born dead
				}
				l.bumpSeg(refs[i].seg, refs[i].size, liveDelta)
				if had && op.typ != TypeQuarantine {
					// Superseded duplicate or tombstoned target: its
					// bytes just became reclaimable.
					l.bumpSeg(prev.seg, 0, -prev.size)
				}
			}
			l.stats.Appends += int64(len(batch))
			l.stats.Commits++
			mAppends.Add(int64(len(batch)))
			mCommits.Add(1)
			gBatch.Set(float64(len(batch)))
			if rotated {
				l.stats.Rotations++
				mRotate.Add(1)
				l.maybeAutoCompact()
			}
		}
		for _, op := range batch {
			op.done <- err
		}
		if len(l.queue) == 0 {
			l.committing = false
			l.idle.Broadcast()
			l.mu.Unlock()
			return
		}
	}
}

// bumpSeg adjusts a segment's byte accounting. Caller holds mu.
func (l *Log) bumpSeg(name string, bytes, live int64) {
	for i := range l.segs {
		if l.segs[i].name == name {
			l.segs[i].bytes += bytes
			l.segs[i].live += live
			return
		}
	}
}

// writeBatch writes all frames of a batch with one write and one fsync,
// rotating the active segment first if it is over budget. Caller holds
// ioMu. Returns the ref of every record.
func (l *Log) writeBatch(batch []*pendingOp) ([]recRef, bool, error) {
	var total int64
	for _, op := range batch {
		total += int64(len(op.frame))
	}
	rotated := false
	if l.curBytes > 0 && l.curBytes+total > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return nil, false, err
		}
		rotated = true
	}
	buf := make([]byte, 0, total)
	refs := make([]recRef, len(batch))
	off := l.curBytes
	for i, op := range batch {
		refs[i] = recRef{seg: l.curName, off: off, size: int64(len(op.frame)), typ: op.typ}
		off += int64(len(op.frame))
		buf = append(buf, op.frame...)
	}
	if _, err := l.f.Write(buf); err != nil {
		return nil, rotated, fmt.Errorf("seglog: write batch: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return nil, rotated, fmt.Errorf("seglog: fsync: %w", err)
	}
	l.curBytes = off
	return refs, rotated, nil
}

// rotateLocked seals the active segment and opens the next. Caller
// holds ioMu (and not mu).
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("seglog: seal fsync: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("seglog: seal close: %w", err)
	}
	next := segName(uint64(segNum(l.curName)) + 1)
	f, err := os.OpenFile(l.segPath(next), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("seglog: open next segment: %w", err)
	}
	l.f, l.curName, l.curBytes = f, next, 0
	l.mu.Lock()
	l.segs = append(l.segs, segInfo{name: next})
	l.mu.Unlock()
	return nil
}

// Scan streams every live record (bundles and quarantine, not
// tombstones) in replay order. The body slice is only valid during the
// callback.
func (l *Log) Scan(fn func(typ byte, key string, body []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	live := make(map[string]recRef, len(l.index))
	for k, v := range l.index {
		live[k] = v
	}
	names := make([]string, len(l.segs))
	for i, s := range l.segs {
		names[i] = s.name
	}
	l.mu.Unlock()

	for _, name := range names {
		err := l.scanFile(name, func(typ byte, key string, body []byte, off int64) error {
			ref, ok := live[key]
			if !ok || ref.seg != name || ref.off != off {
				return nil // superseded, tombstoned, or a stale copy
			}
			return fn(typ, key, body)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// errStopScan is a sentinel fn can return to stop scanFile early.
var errStopScan = errors.New("seglog: stop scan")

// scanFile reads one segment front to back. A torn or unparsable tail
// ends the scan silently — for the active segment that is the write
// frontier racing ahead of the index snapshot; sealed segments were
// integrity-checked at Open.
func (l *Log) scanFile(name string, fn func(typ byte, key string, body []byte, off int64) error) error {
	f, err := os.Open(l.segPath(name))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil // compacted away mid-scan
		}
		return fmt.Errorf("seglog: %w", err)
	}
	defer f.Close()
	var off int64
	r := bufReader(f)
	for {
		payload, err := binenc.ReadFrame(r, l.opts.MaxRecordBytes)
		if err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, binenc.ErrCRCMismatch) {
				return nil
			}
			return fmt.Errorf("seglog: scan %s: %w", name, err)
		}
		size := int64(len(payload)) + binenc.FrameOverhead
		typ, key, body, err := splitRecord(payload)
		if err != nil {
			return nil
		}
		if err := fn(typ, key, body, off); err != nil {
			if errors.Is(err, errStopScan) {
				return nil
			}
			return err
		}
		off += size
	}
}

// Get reads one live record's body by key.
func (l *Log) Get(key string) ([]byte, byte, error) {
	l.mu.Lock()
	ref, ok := l.index[key]
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return nil, 0, ErrClosed
	}
	if !ok {
		return nil, 0, os.ErrNotExist
	}
	f, err := os.Open(l.segPath(ref.seg))
	if err != nil {
		return nil, 0, fmt.Errorf("seglog: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(ref.off, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("seglog: %w", err)
	}
	payload, err := binenc.ReadFrame(f, l.opts.MaxRecordBytes)
	if err != nil {
		return nil, 0, fmt.Errorf("seglog: read %s@%d: %w", ref.seg, ref.off, err)
	}
	typ, gotKey, body, err := splitRecord(payload)
	if err != nil || gotKey != key {
		return nil, 0, fmt.Errorf("seglog: record at %s@%d does not match key %q", ref.seg, ref.off, key)
	}
	return append([]byte(nil), body...), typ, nil
}

// Has reports whether key is live.
func (l *Log) Has(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.index[key]
	return ok
}

// maybeAutoCompact arms a background compaction when sealed dead bytes
// cross the configured ratio. Caller holds mu.
func (l *Log) maybeAutoCompact() {
	if !l.opts.AutoCompact || l.compacting || l.closed {
		return
	}
	var dead, total int64
	for _, s := range l.segs[:len(l.segs)-1] {
		dead += s.bytes - s.live
		total += s.bytes
	}
	if total == 0 || float64(dead)/float64(total) < l.opts.CompactRatio {
		return
	}
	l.compacting = true
	go func() {
		defer func() {
			l.mu.Lock()
			l.compacting = false
			l.mu.Unlock()
		}()
		_ = l.compactOwned()
	}()
}

// Compact rewrites the live records of every sealed segment into one
// compacted segment and deletes the originals, reclaiming the bytes of
// superseded bundles, consumed tombstones, and (beyond QuarantineKeep)
// the oldest quarantine records. Appends proceed concurrently —
// compaction reads only sealed (immutable) files.
func (l *Log) Compact() error {
	l.mu.Lock()
	if l.compacting {
		l.mu.Unlock()
		return errCompacting
	}
	l.compacting = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		l.compacting = false
		l.mu.Unlock()
	}()
	return l.compactOwned()
}

// compactOwned does the work; the compacting flag is owned by the caller.
func (l *Log) compactOwned() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if len(l.segs) <= 1 {
		l.mu.Unlock()
		return nil // nothing sealed
	}
	sealed := make([]string, len(l.segs)-1)
	for i, s := range l.segs[:len(l.segs)-1] {
		sealed[i] = s.name
	}
	live := make(map[string]recRef, len(l.index))
	qLive := 0
	for k, v := range l.index {
		live[k] = v
		if v.typ == TypeQuarantine {
			qLive++
		}
	}
	gen := l.cmpGen
	l.cmpGen++
	l.mu.Unlock()

	qDrop := 0
	if l.opts.QuarantineKeep > 0 && qLive > l.opts.QuarantineKeep {
		qDrop = qLive - l.opts.QuarantineKeep
	}

	newName := cmpName(gen)
	tmp := l.segPath(newName + tmpSuffix)
	out, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("seglog: %w", err)
	}
	type moved struct {
		key      string
		src, dst recRef
	}
	var moves []moved
	var dropped []string
	var outOff int64
	for _, name := range sealed {
		err := l.scanFile(name, func(typ byte, key string, body []byte, off int64) error {
			src, ok := live[key]
			if !ok || src.seg != name || src.off != off {
				return nil // dead: superseded or tombstoned
			}
			if typ == TypeQuarantine && qDrop > 0 {
				qDrop--
				dropped = append(dropped, key)
				return nil
			}
			frame := appendRecord(nil, typ, key, body)
			if _, err := out.Write(frame); err != nil {
				return fmt.Errorf("seglog: compact write: %w", err)
			}
			moves = append(moves, moved{key: key, src: src,
				dst: recRef{seg: newName, off: outOff, size: int64(len(frame)), typ: typ}})
			outOff += int64(len(frame))
			return nil
		})
		if err != nil {
			out.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(tmp)
		return fmt.Errorf("seglog: compact fsync: %w", err)
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("seglog: compact close: %w", err)
	}
	if err := os.Rename(tmp, l.segPath(newName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("seglog: compact rename: %w", err)
	}

	// Repoint the index at the compacted copies, then delete the
	// originals. A record tombstoned while compaction ran simply keeps
	// its (now dangling) absence: the repoint checks the current ref
	// still equals the copied one. A crash between rename and deletes
	// leaves harmless duplicates — records are immutable per key.
	l.mu.Lock()
	for _, m := range moves {
		if cur, ok := l.index[m.key]; ok && cur == m.src {
			l.index[m.key] = m.dst
		}
	}
	for _, key := range dropped {
		if cur, ok := l.index[key]; ok && sliceHas(sealed, cur.seg) {
			delete(l.index, key)
		}
	}
	newSegs := []segInfo{{name: newName, bytes: outOff, live: outOff}}
	for _, s := range l.segs {
		if !sliceHas(sealed, s.name) {
			newSegs = append(newSegs, s)
		}
	}
	l.segs = newSegs
	l.stats.Compactions++
	mCompact.Add(1)
	l.mu.Unlock()

	for _, name := range sealed {
		if err := os.Remove(l.segPath(name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("seglog: remove compacted %s: %w", name, err)
		}
	}
	return nil
}

func sliceHas(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Segments = len(l.segs)
	s.LiveRecords = len(l.index)
	for i := 0; i < len(l.segs)-1; i++ {
		s.DeadBytes += l.segs[i].bytes - l.segs[i].live
		s.LiveBytes += l.segs[i].live
	}
	return s
}

// Close waits for the in-flight commit batch to drain and closes the
// active segment. Every previously acked record is already durable;
// Appends racing Close fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for l.committing {
		l.idle.Wait()
	}
	l.mu.Unlock()
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("seglog: close: %w", err)
	}
	return nil
}

// bufReader wraps sequential replay reads with a modest buffer.
func bufReader(r io.Reader) io.Reader {
	return &chunkReader{r: r, buf: make([]byte, 64<<10)}
}

type chunkReader struct {
	r   io.Reader
	buf []byte
	off int
	n   int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.off == c.n {
		n, err := c.r.Read(c.buf)
		if n == 0 {
			return 0, err
		}
		c.off, c.n = 0, n
	}
	n := copy(p, c.buf[c.off:c.n])
	c.off += n
	return n, nil
}
