// Package collect implements EnergyDx's trace-collection tier: phones
// upload their event and utilization traces to a backend server "when
// the smartphone is in charge with WiFi, which is a common practice to
// upload traces without impacting the normal usage of smartphone"
// (paper §II-B). Uploads are newline-delimited JSON bundles over TCP,
// acknowledged per bundle so a client can resume after a dropped
// connection without duplicating data.
//
// Privacy: the client scrubs bundles before they leave the phone, and
// the server scrubs again on receipt (defense in depth) — the backend
// never stores raw user identifiers.
package collect

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/trace"
)

const (
	// ackOK is sent after a bundle is validated and stored.
	ackOK = "OK"
	// ackErrPrefix precedes a rejection reason.
	ackErrPrefix = "ERR "
	// maxLineBytes bounds one serialized bundle (16 MiB).
	maxLineBytes = 16 << 20
)

// Server receives and stores trace bundles.
type Server struct {
	ln    net.Listener
	store *FileStore // optional durable store

	mu      sync.Mutex
	byApp   map[string][]*trace.TraceBundle
	dupes   map[string]struct{} // traceID+user dedup across reconnects
	closed  bool
	handler sync.WaitGroup
}

// ServerOption configures a server.
type ServerOption func(*Server)

// WithFileStore persists accepted bundles to a durable store and, at
// startup, reloads (and deduplicates against) everything the store
// already holds — so a restarted server continues where it stopped.
func WithFileStore(store *FileStore) ServerOption {
	return func(s *Server) { s.store = store }
}

// NewServer starts a collection server on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listen: %w", err)
	}
	s := &Server{
		ln:    ln,
		byApp: make(map[string][]*trace.TraceBundle),
		dupes: make(map[string]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	if s.store != nil {
		persisted, err := s.store.Load()
		if err != nil {
			ln.Close()
			return nil, err
		}
		for appID, bundles := range persisted {
			for _, b := range bundles {
				s.byApp[appID] = append(s.byApp[appID], b)
				s.dupes[dedupKey(b)] = struct{}{}
			}
		}
	}
	s.handler.Add(1)
	go s.acceptLoop()
	return s, nil
}

// dedupKey identifies a bundle across re-uploads and restarts.
func dedupKey(b *trace.TraceBundle) string {
	return b.Event.AppID + "/" + b.Event.UserID + "/" + b.Event.TraceID
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.handler.Wait()
	return err
}

// acceptLoop owns the listener; one goroutine per connection, all joined
// through the WaitGroup so Close is clean.
func (s *Server) acceptLoop() {
	defer s.handler.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.handler.Add(1)
		go func() {
			defer s.handler.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := s.ingest(line); err != nil {
			fmt.Fprintf(w, "%s%v\n", ackErrPrefix, err)
		} else {
			fmt.Fprintln(w, ackOK)
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// ingest validates, scrubs and stores one serialized bundle.
func (s *Server) ingest(line []byte) error {
	b, err := trace.DecodeBundle(strings.NewReader(string(line)))
	if err != nil {
		return fmt.Errorf("decode: %v", err)
	}
	if b.Event.AppID == "" {
		return errors.New("bundle has no app id")
	}
	if err := b.Event.Validate(); err != nil {
		return fmt.Errorf("event trace: %v", err)
	}
	if err := b.Util.Validate(); err != nil {
		return fmt.Errorf("utilization trace: %v", err)
	}
	scrubbed := trace.ScrubBundle(b)
	key := dedupKey(scrubbed)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("server shutting down")
	}
	if _, dup := s.dupes[key]; dup {
		return nil // idempotent: re-uploads after a lost ack are fine
	}
	if s.store != nil {
		// Persist before acknowledging: an acked bundle survives a
		// crash; a failed write is reported so the phone retries.
		if err := s.store.Append(scrubbed); err != nil {
			return err
		}
	}
	s.dupes[key] = struct{}{}
	s.byApp[scrubbed.Event.AppID] = append(s.byApp[scrubbed.Event.AppID], scrubbed)
	return nil
}

// Bundles returns the stored bundles for one app (a copy of the slice).
func (s *Server) Bundles(appID string) []*trace.TraceBundle {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.byApp[appID]
	out := make([]*trace.TraceBundle, len(src))
	copy(out, src)
	return out
}

// Count returns the total number of stored bundles.
func (s *Server) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, bs := range s.byApp {
		n += len(bs)
	}
	return n
}

// Apps returns the app IDs with stored traces.
func (s *Server) Apps() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	apps := make([]string, 0, len(s.byApp))
	for id := range s.byApp {
		apps = append(apps, id)
	}
	return apps
}
